(** BG simulation (Borowsky–Gafni [5,7]): [n_sims] simulators jointly run
    [n_codes] codes of a full-information protocol so that every code whose
    current step is not blocked by a stalled simulator keeps advancing, and
    at most one code is blocked per stalled simulator.

    The simulated protocol is in full-information normal form: code [j]
    first writes [init]; after its round-[r] write it receives an agreed
    view (every code's writes so far, its own round-[r] write included) and
    [step ~round:r ~view] yields its next write or its decision. Each view
    is agreed through one {!Safe_agreement} instance, so all simulators
    reconstruct identical code histories; views are snapshots of write-once
    cells and hence totally ordered by inclusion, which makes the simulated
    run linearizable.

    All operations perform runtime effects (call from process code). *)

type transition = Write of Value.t | Decide of Value.t

type code = {
  init : Value.t;
  step : round:int -> view:Value.t list array -> transition;
      (** [view.(j')] = code [j']'s writes so far, oldest first. Must be a
          pure function — every simulator replays it. *)
}

type t

val create : Simkit.Memory.t -> n_codes:int -> n_sims:int -> max_rounds:int -> t
(** Allocates registers and safe-agreement instances for up to [max_rounds]
    rounds per code. *)

val n_codes : t -> int

type sim
(** Per-simulator handle holding local caches (what it proposed, the agreed
    prefix it knows). *)

val make_sim : t -> me:int -> sim

type status =
  | Progress  (** a new view was agreed for the code *)
  | Decided of Value.t  (** the code just decided (decision published) *)
  | Blocked  (** someone is stalled in this code's current doorway *)
  | Done  (** the code had already decided *)
  | Exhausted  (** max_rounds reached for this code *)

val advance : sim -> codes:(int -> code) -> int -> status
(** Try to advance code [j] by one simulated step. *)

val try_advance :
  sim -> codes:(int -> code) -> order:int list -> (int * status) option
(** Advance the first code in [order] that yields [Progress] or [Decided];
    [None] if every listed code is [Done], [Blocked] or [Exhausted]. *)

val decision : t -> int -> Value.t option
(** Published decision of code [j] (one read; call from process code). *)

val decisions_view : Simkit.Memory.t -> t -> Value.t option array
(** Checker-side direct read of all decisions (not a runtime step). *)
