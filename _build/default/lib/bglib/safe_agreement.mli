(** Safe agreement (Borowsky–Gafni [5,7]): the BG simulation primitive.

    Agreement and validity always hold; termination of {!try_resolve} is
    guaranteed only once no proposer is stopped inside the doorway (between
    its two writes). A process stalled inside the doorway blocks resolution
    of this one instance — the source of BG's "one blocked code per stalled
    simulator" accounting.

    All operations perform runtime effects (call from process code). *)

type t

val create : Simkit.Memory.t -> n:int -> t
(** [n] = number of potential proposers, indexed [0..n-1]. *)

val propose : t -> me:int -> Value.t -> unit
(** Enter and leave the doorway: write (level 1, v), snapshot, then raise to
    level 2 (no level-2 seen) or retreat to level 0. Call at most once per
    process per instance. *)

val try_resolve : t -> Value.t option
(** [Some v] once resolvable: no proposer at level 1 and at least one at
    level 2; the value of the smallest-index level-2 proposer. [None] while
    empty or while someone is inside the doorway. *)

val has_proposed : t -> me:int -> bool
(** One register read: did I already propose? (For recovery; callers
    normally track this locally.) *)
