type fi_algo = { fi_name : string; fi_code : int -> Value.t -> Bg.code }

(* --- engine state encoding -------------------------------------------- *)
(* state = (marks, ticks); mark = ((c, r), level, proposal);
   levels: 1 = doorway entered, 2 = raised, 0 = retreated.
   The marks list is append-only (newest first). *)

type mark = { mc : int; mr : int; mlevel : int; mprop : Value.t }

let encode_mark m =
  Value.triple
    (Value.pair (Value.int m.mc) (Value.int m.mr))
    (Value.int m.mlevel) m.mprop

let decode_mark v =
  let key, level, prop = Value.to_triple v in
  let c, r = Value.to_pair key in
  {
    mc = Value.to_int c;
    mr = Value.to_int r;
    mlevel = Value.to_int level;
    mprop = prop;
  }

let initial_state = Value.pair (Value.list []) (Value.int 0)

let decode_state s =
  let marks, ticks = Value.to_pair s in
  (List.map decode_mark (Value.to_list marks), Value.to_int ticks)

let encode_state (marks, ticks) =
  Value.pair (Value.list (List.map encode_mark marks)) (Value.int ticks)

let marks_of s = fst (decode_state s)

(* --- view (SA proposal) encoding: as in Bg ----------------------------- *)

let encode_view view = Value.vec (Array.map Value.list view)
let decode_view v = Array.map Value.to_list (Value.to_vec v)

(* --- safe agreement status -------------------------------------------- *)

type sa_status = Unstarted | Pending | Resolved of Value.t

let instance_marks all_marks ~c ~r =
  List.map (List.filter (fun m -> m.mc = c && m.mr = r)) all_marks

let sa_status all_marks ~c ~r =
  let per_engine = instance_marks all_marks ~c ~r in
  let in_doorway ms =
    List.exists (fun m -> m.mlevel = 1) ms
    && not (List.exists (fun m -> m.mlevel = 2 || m.mlevel = 0) ms)
  in
  if List.exists in_doorway per_engine then Pending
  else
    (* smallest-id engine with a level-2 mark wins *)
    let raised =
      List.concat_map
        (fun ms -> List.filter (fun m -> m.mlevel = 2) ms)
        per_engine
    in
    match raised with
    | m :: _ -> Resolved m.mprop
    | [] ->
      if List.exists (fun ms -> ms <> []) per_engine then Pending else Unstarted

(* --- replay of a code over its agreed views --------------------------- *)

let replay (code : Bg.code) views =
  let rec go writes round = function
    | [] -> (List.rev writes, None)
    | view :: rest -> (
      match code.Bg.step ~round ~view with
      | Bg.Decide v -> (List.rev writes, Some v)
      | Bg.Write w -> go (w :: writes) (round + 1) rest)
  in
  go [ code.Bg.init ] 0 views

(* --- derivations over the joint engine states -------------------------- *)

let participants ~n_codes ~env =
  List.filter (fun c -> not (Value.is_unit env.(c))) (List.init n_codes Fun.id)

let code_histories algo ~n_codes ~states ~env =
  let all_marks = Array.to_list (Array.map marks_of states) in
  Array.init n_codes (fun c ->
      if Value.is_unit env.(c) then ([], None)
      else begin
        let code = algo.fi_code c env.(c) in
        let rec collect r acc =
          match sa_status all_marks ~c ~r with
          | Resolved prop -> collect (r + 1) (decode_view prop :: acc)
          | Pending | Unstarted -> List.rev acc
        in
        let views = collect 0 [] in
        let _, decision = replay code views in
        (views, decision)
      end)

let code_decision algo ~n_codes ~states ~env c =
  snd (code_histories algo ~n_codes ~states ~env).(c)

let simulated_started _algo ~n_codes ~states ~env:_ =
  let all_marks = List.concat_map marks_of (Array.to_list states) in
  List.filter
    (fun c -> List.exists (fun m -> m.mc = c) all_marks)
    (List.init n_codes Fun.id)

(* --- the engine step function ----------------------------------------- *)

let engine_step algo ~n_codes ~k:_ ~me ~states ~env =
  let my_marks, ticks = decode_state states.(me) in
  let all_marks = Array.to_list (Array.map marks_of states) in
  let histories = code_histories algo ~n_codes ~states ~env in
  let append mark = encode_state (mark :: my_marks, ticks + 1) in
  let idle () = encode_state (my_marks, ticks + 1) in
  (* 1. an open doorway of mine must be finished first *)
  let my_open =
    List.find_opt
      (fun m ->
        m.mlevel = 1
        && not
             (List.exists
                (fun m' -> m'.mc = m.mc && m'.mr = m.mr && m'.mlevel <> 1)
                my_marks))
      my_marks
  in
  match my_open with
  | Some m ->
    let someone_raised =
      List.exists
        (fun ms ->
          List.exists (fun m' -> m'.mc = m.mc && m'.mr = m.mr && m'.mlevel = 2) ms)
        all_marks
    in
    let level = if someone_raised then 0 else 2 in
    append { m with mlevel = level }
  | None ->
    (* 2. target the smallest participating undecided unblocked code *)
    let undecided =
      List.filter
        (fun c -> snd histories.(c) = None)
        (participants ~n_codes ~env)
    in
    let try_code c =
      let views, _ = histories.(c) in
      let r = List.length views in
      (* blocked if another engine sits in this instance's doorway *)
      let blocked =
        List.exists
          (fun (e, ms) ->
            e <> me
            && List.exists (fun m -> m.mc = c && m.mr = r && m.mlevel = 1) ms
            && not
                 (List.exists
                    (fun m -> m.mc = c && m.mr = r && m.mlevel <> 1)
                    ms))
          (List.mapi (fun e ms -> (e, ms)) all_marks)
      in
      if blocked then None
      else if List.exists (fun m -> m.mc = c && m.mr = r) my_marks then
        (* proposed and finished; waiting for others' doorways to clear *)
        None
      else begin
        (* Enter the doorway with my proposed view for (c, r). Only codes
           that have visibly started (some mark exists) contribute writes:
           exposing an unstarted code's first write would make the
           simulated run more concurrent than the engines' discipline. *)
        let flat_marks = List.concat all_marks in
        let started c' =
          c' = c || List.exists (fun m -> m.mc = c') flat_marks
        in
        let view =
          Array.init n_codes (fun c' ->
              if Value.is_unit env.(c') || not (started c') then []
              else
                let views', _ = histories.(c') in
                let code' = algo.fi_code c' env.(c') in
                let writes, _ = replay code' views' in
                writes)
        in
        Some (append { mc = c; mr = r; mlevel = 1; mprop = encode_view view })
      end
    in
    let rec scan = function
      | [] -> idle ()
      | c :: rest -> ( match try_code c with Some s -> s | None -> scan rest)
    in
    scan undecided

let engines ~k ~n_codes algo =
  Array.init k (fun _ ->
      {
        Machine.m_name = Printf.sprintf "bg-engine(%s)" algo.fi_name;
        m_init = initial_state;
        m_step = (fun ~me ~states ~env -> engine_step algo ~n_codes ~k ~me ~states ~env);
        m_decided = (fun _ -> None);
      })
