(** Concrete algorithms in full-information normal form — the "algorithm A"
    instances the Theorem-9 machinery simulates ({!Sm_engine.fi_algo}).
    Each is the normal-form twin of an effectful algorithm in [Efd]. *)

val adoption : Sm_engine.fi_algo
(** k-concurrent set agreement by adoption: round 0 announces arrival; a
    code that sees a published value adopts the smallest publisher's value,
    otherwise publishes its own input and decides it next round. In any
    k-concurrent run at most [k] codes publish. *)

val echo : Sm_engine.fi_algo
(** Decide own input after one write — wait-free identity. *)

val fig4_renaming : Sm_engine.fi_algo
(** The Figure-4 renaming algorithm: writes are (suggestion, undecided?)
    pairs; conflicts trigger re-suggestion by rank among undecided codes;
    a conflict-free suggestion is sealed with (name, false) and decided the
    following round. Solves (j, j+k−1)-renaming in k-concurrent runs. *)

val wsb : j:int -> Sm_engine.fi_algo
(** The 2-concurrent weak-symmetry-breaking algorithm in full-information
    form (the machine twin of [Efd.Wsb_algo.two_concurrent]): arrival
    marker first; decide 0 on a published 1 or an incomplete house; the
    lone undecided code breaks symmetry; of two undecided codes the
    smaller publishes 0 and the larger waits (emitting no-op writes).
    Through the Theorem-9 tower this solves WSB with ¬Ω2 in EFD — the
    hierarchy made constructive. *)
