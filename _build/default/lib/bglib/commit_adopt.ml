module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op

type t = { phase1 : Memory.reg array; phase2 : Memory.reg array }
type outcome = Commit of Value.t | Adopt of Value.t

let create mem ~n =
  if n <= 0 then invalid_arg "Commit_adopt.create";
  { phase1 = Memory.alloc mem n; phase2 = Memory.alloc mem n }

let present cells =
  Array.to_list cells |> List.filter (fun c -> not (Value.is_unit c))

let run t ~me v =
  Op.write t.phase1.(me) v;
  let seen1 = present (Op.snapshot t.phase1) in
  let unanimous1 = List.for_all (Value.equal v) seen1 in
  Op.write t.phase2.(me) (Value.pair (Value.bool unanimous1) v);
  let seen2 = present (Op.snapshot t.phase2) in
  let props = List.map Value.to_pair seen2 in
  let all_true = List.for_all (fun (flag, _) -> Value.to_bool flag) props in
  let true_value =
    List.find_opt (fun (flag, _) -> Value.to_bool flag) props
  in
  match true_value with
  | Some (_, u) when all_true -> Commit u
  | Some (_, u) -> Adopt u
  | None -> Adopt v

let outcome_value = function Commit v | Adopt v -> v
let is_commit = function Commit _ -> true | Adopt _ -> false
