(** The Theorem-9 inner layer: [k] pure machines ("engines") jointly
    BG-simulate the [n] codes of a full-information algorithm, keeping the
    simulated run k-concurrent.

    Safe agreement is encoded in the engines' states: an engine's state is
    an append-only list of marks [(code, round, level, proposal)] — level 1
    on doorway entry (carrying the proposed view), then level 2 (no level-2
    seen) or 0 (retreat). An instance is resolved once no engine is visibly
    inside the doorway and some level-2 mark exists: the smallest-id level-2
    engine's proposal wins. Append-only marks make engine views
    inclusion-ordered, so resolutions are stable and the simulated views
    form a chain — the BG linearizability argument.

    Discipline (from the paper's proof of Theorem 9): every engine targets
    the {e smallest} participating, undecided code whose current instance is
    not blocked by another engine's open doorway, and always completes its
    own open doorway first. Hence at most one fresh code is started while at
    most k−1 blocked ones are pinned by stalled engines: the simulated run
    is k-concurrent.

    Substitution note (DESIGN.md): a code pinned by a {e permanently}
    stalled engine starves; the paper unpins it with Extended-BG aborts.
    We do not implement aborts: in harness-generated histories every
    consensus position keeps deciding (churn serving), so permanent stalls
    do not arise. *)

type fi_algo = {
  fi_name : string;
  fi_code : int -> Value.t -> Bg.code;
      (** [fi_code c input] — the full-information code of C-process [c];
          views are indexed by code. *)
}

val engines : k:int -> n_codes:int -> fi_algo -> Machine.t array
(** The [k] engine machines. Their environment must have [n_codes]
    registers: [env.(c)] is ⊥ until code [c]'s input is written (the
    harness input registers). *)

(** {1 Pure derivations (also used by the outer layer)} *)

val code_histories :
  fi_algo -> n_codes:int -> states:Value.t array -> env:Value.t array ->
  (Value.t list array list * Value.t option) array
(** Per code: the agreed views so far (oldest first) and its decision, both
    derived from the engines' states; non-participants yield [([], None)]. *)

val code_decision :
  fi_algo -> n_codes:int -> states:Value.t array -> env:Value.t array ->
  int -> Value.t option
(** Decision of code [c], derived from the engine states. *)

val simulated_started :
  fi_algo -> n_codes:int -> states:Value.t array -> env:Value.t array ->
  int list
(** Codes with at least one safe-agreement mark — "took a simulated step".
    Used by checkers to bound the simulated run's concurrency. *)
