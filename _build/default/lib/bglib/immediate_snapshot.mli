(** One-shot immediate snapshot (Borowsky–Gafni 1993): each of [n]
    processes writes a value once and obtains a view such that

    - {b self-inclusion}: a process's own value is in its view;
    - {b containment}: any two views are ⊆-comparable;
    - {b immediacy}: if [j]'s value is in [i]'s view then [j]'s view is
      contained in [i]'s view.

    The classic level-descent algorithm: start at level [n]; at each level
    write (value, level) and snapshot; if at least [level] processes are at
    your level or below, return them, else descend. Wait-free, O(n²) steps.
    The IS task is the combinatorial heart of the BG-simulation literature
    the paper builds on; it is also a handy test workload.

    All operations perform runtime effects. *)

type t

val create : Simkit.Memory.t -> n:int -> t

val participate : t -> me:int -> Value.t -> (int * Value.t) list
(** Write your value, descend, and return your view as (index, value)
    pairs, ascending by index. Call once per process. *)

val views_valid : n:int -> (int * (int * Value.t) list) list -> bool
(** Checker: do the collected (process, view) pairs satisfy the three
    immediate-snapshot properties? *)
