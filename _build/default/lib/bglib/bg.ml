module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op

type transition = Write of Value.t | Decide of Value.t

type code = {
  init : Value.t;
  step : round:int -> view:Value.t list array -> transition;
}

type t = {
  bg_n_codes : int;
  n_sims : int;
  max_rounds : int;
  sr : Memory.reg array;  (** write cells, [j * max_rounds + r], write-once *)
  ah : Memory.reg array;  (** agreed views, same indexing, write-once *)
  sa : Safe_agreement.t array;  (** one per (code, round) *)
  dec : Memory.reg array;  (** one per code *)
}

let create mem ~n_codes ~n_sims ~max_rounds =
  if n_codes <= 0 || n_sims <= 0 || max_rounds <= 0 then
    invalid_arg "Bg.create";
  {
    bg_n_codes = n_codes;
    n_sims;
    max_rounds;
    sr = Memory.alloc mem (n_codes * max_rounds);
    ah = Memory.alloc mem (n_codes * max_rounds);
    sa =
      Array.init (n_codes * max_rounds) (fun _ ->
          Safe_agreement.create mem ~n:n_sims);
    dec = Memory.alloc mem n_codes;
  }

let n_codes t = t.bg_n_codes
let cell t j r = (j * t.max_rounds) + r

(* View encoding: Vec over codes of List of writes, oldest first. *)
let encode_view view =
  Value.vec (Array.map Value.list view)

let decode_view v =
  Array.map Value.to_list (Value.to_vec v)

type sim = {
  bg : t;
  me : int;
  hist : Value.t list array array array;
      (** [hist.(j)] = agreed views of code [j], oldest first *)
  proposed : bool array;  (** per (code, round) cell *)
  sr_written : int array;  (** highest round whose write I know is in SR, -1 none *)
}

let make_sim bg ~me =
  if me < 0 || me >= bg.n_sims then invalid_arg "Bg.make_sim";
  {
    bg;
    me;
    hist = Array.make bg.bg_n_codes [||];
    proposed = Array.make (bg.bg_n_codes * bg.max_rounds) false;
    sr_written = Array.make bg.bg_n_codes (-1);
  }

type status = Progress | Decided of Value.t | Blocked | Done | Exhausted

(* Replay code [j]'s deterministic transitions over the agreed views:
   returns (writes w_0..w_r, decision if reached). *)
let replay (code : code) views =
  let rec go acc_writes round = function
    | [] -> (List.rev acc_writes, None)
    | view :: rest -> (
      match code.step ~round ~view with
      | Decide v ->
        assert (rest = []);
        (List.rev acc_writes, Some v)
      | Write w -> go (w :: acc_writes) (round + 1) rest)
  in
  go [ code.init ] 0 (Array.to_list views)

(* Pull newly agreed views for code [j] from shared memory into the cache. *)
let sync_hist sim j =
  let t = sim.bg in
  let known = Array.length sim.hist.(j) in
  let rec fetch r acc =
    if r >= t.max_rounds then List.rev acc
    else
      let v = Op.read t.ah.(cell t j r) in
      if Value.is_unit v then List.rev acc else fetch (r + 1) (decode_view v :: acc)
  in
  let fresh = fetch known [] in
  if fresh <> [] then
    sim.hist.(j) <- Array.append sim.hist.(j) (Array.of_list fresh)

let advance sim ~codes j =
  let t = sim.bg in
  if j < 0 || j >= t.bg_n_codes then invalid_arg "Bg.advance";
  let published = Op.read t.dec.(j) in
  if not (Value.is_unit published) then Done
  else begin
    sync_hist sim j;
    let code = codes j in
    let views = sim.hist.(j) in
    let writes, decision = replay code views in
    match decision with
    | Some v ->
      (* the transition decided on the last agreed view; publish it *)
      Op.write t.dec.(j) (Value.pair v Value.unit);
      Decided v
    | None ->
      let r = Array.length views in
      if r >= t.max_rounds then Exhausted
      else begin
        (* ensure all of j's writes w_0..w_r are in the write-once cells *)
        List.iteri
          (fun s w ->
            if s > sim.sr_written.(j) then begin
              let c = t.sr.(cell t j s) in
              if Value.is_unit (Op.read c) then Op.write c w;
              sim.sr_written.(j) <- s
            end)
          writes;
        (* propose a view for round r: snapshot of the whole write matrix *)
        let sa = t.sa.(cell t j r) in
        if not sim.proposed.(cell t j r) then begin
          let cells = Op.snapshot t.sr in
          let view =
            Array.init t.bg_n_codes (fun j' ->
                let rec collect s acc =
                  if s >= t.max_rounds then List.rev acc
                  else
                    let c = cells.(cell t j' s) in
                    if Value.is_unit c then List.rev acc else collect (s + 1) (c :: acc)
                in
                collect 0 [])
          in
          Safe_agreement.propose sa ~me:sim.me (encode_view view);
          sim.proposed.(cell t j r) <- true
        end;
        match Safe_agreement.try_resolve sa with
        | None -> Blocked
        | Some agreed ->
          let c = t.ah.(cell t j r) in
          if Value.is_unit (Op.read c) then Op.write c agreed;
          sim.hist.(j) <-
            Array.append sim.hist.(j) [| decode_view agreed |];
          Progress
      end
  end

let try_advance sim ~codes ~order =
  let rec go = function
    | [] -> None
    | j :: rest -> (
      match advance sim ~codes j with
      | (Progress | Decided _) as st -> Some (j, st)
      | Blocked | Done | Exhausted -> go rest)
  in
  go order

let decision t j =
  let v = Op.read t.dec.(j) in
  if Value.is_unit v then None else Some (fst (Value.to_pair v))

let decisions_view mem t =
  Array.init t.bg_n_codes (fun j ->
      let v = Memory.read mem t.dec.(j) in
      if Value.is_unit v then None else Some (fst (Value.to_pair v)))
