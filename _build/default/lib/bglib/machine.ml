type t = {
  m_name : string;
  m_init : Value.t;
  m_step : me:int -> states:Value.t array -> env:Value.t array -> Value.t;
  m_decided : Value.t -> Value.t option;
}

type sys = { sys_states : Value.t array; sys_steps : int array }

let boot machines =
  {
    sys_states = Array.map (fun m -> m.m_init) machines;
    sys_steps = Array.make (Array.length machines) 0;
  }

let step_pure machines sys ~env me =
  let m = machines.(me) in
  let next = m.m_step ~me ~states:(Array.copy sys.sys_states) ~env in
  let states = Array.copy sys.sys_states in
  states.(me) <- next;
  let steps = Array.copy sys.sys_steps in
  steps.(me) <- steps.(me) + 1;
  { sys_states = states; sys_steps = steps }

let run_pure machines ~env ~schedule =
  let rec go sys step = function
    | [] -> sys
    | me :: rest -> go (step_pure machines sys ~env:(env ~step) me) (step + 1) rest
  in
  go (boot machines) 0 schedule

let decisions machines sys =
  Array.mapi (fun i m -> m.m_decided sys.sys_states.(i)) machines
