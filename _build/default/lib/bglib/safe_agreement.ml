module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op

(* R.(i) = Unit (never proposed) or (level, value), level in {0, 1, 2}. *)
type t = { regs : Memory.reg array }

let create mem ~n =
  if n <= 0 then invalid_arg "Safe_agreement.create";
  { regs = Memory.alloc mem n }

let decode cell =
  if Value.is_unit cell then None
  else
    let l, v = Value.to_pair cell in
    Some (Value.to_int l, v)

let propose t ~me v =
  Op.write t.regs.(me) (Value.pair (Value.int 1) v);
  let cells = Op.snapshot t.regs in
  let saw_level2 =
    Array.exists
      (fun c -> match decode c with Some (2, _) -> true | _ -> false)
      cells
  in
  let final_level = if saw_level2 then 0 else 2 in
  Op.write t.regs.(me) (Value.pair (Value.int final_level) v)

let try_resolve t =
  let cells = Op.snapshot t.regs in
  let in_doorway =
    Array.exists
      (fun c -> match decode c with Some (1, _) -> true | _ -> false)
      cells
  in
  if in_doorway then None
  else
    Array.fold_left
      (fun acc c ->
        match (acc, decode c) with
        | Some _, _ -> acc
        | None, Some (2, v) -> Some v
        | None, _ -> None)
      None cells

let has_proposed t ~me = not (Value.is_unit (Op.read t.regs.(me)))
