type t = {
  k : int;
  n_machines : int;
  max_rounds : int;
  input_offset : int;
  n_inputs : int;
  answer_offset : int;
}

let create ~k ~n_machines ~max_rounds ~input_offset ~n_inputs ~answer_offset ()
    =
  if k < 1 || n_machines < 1 || max_rounds < 1 then
    invalid_arg "Machine_consensus.create";
  { k; n_machines; max_rounds; input_offset; n_inputs; answer_offset }

let answer_slot t ~j ~r = t.answer_offset + (j * t.max_rounds) + (r - 1)

(* --- state encoding ----------------------------------------------------
   state = ((per-instance round-record list as Vec), decision option)
   record (round r = 1-based position) = (est, ca1 option, ca2 option)
   ca2 = (unanimous?, value) *)

type record = { est : Value.t; ca1 : Value.t option; ca2 : (bool * Value.t) option }

let encode_record rec_ =
  Value.triple rec_.est
    (Value.option rec_.ca1)
    (Value.option
       (Option.map (fun (b, v) -> Value.pair (Value.bool b) v) rec_.ca2))

let decode_record v =
  let est, ca1, ca2 = Value.to_triple v in
  {
    est;
    ca1 = Value.to_option ca1;
    ca2 =
      Option.map
        (fun p ->
          let b, v = Value.to_pair p in
          (Value.to_bool b, v))
        (Value.to_option ca2);
  }

let encode_state (records, decision) =
  Value.pair
    (Value.vec (Array.map (fun l -> Value.list (List.map encode_record l)) records))
    (Value.option decision)

let decode_state s =
  let recs, dec = Value.to_pair s in
  ( Array.map (fun l -> List.map decode_record (Value.to_list l)) (Value.to_vec recs),
    Value.to_option dec )

let initial_state ~k = encode_state (Array.make k [], None)

let decision s = snd (decode_state s)

let pending_queries ~states =
  Array.to_list states
  |> List.concat_map (fun s ->
         let records, _ = decode_state s in
         List.concat
           (List.mapi
              (fun j recs ->
                List.mapi (fun ridx rec_ -> (j, ridx + 1, rec_.est)) recs)
              (Array.to_list records)))

(* --- the machine step --------------------------------------------------- *)

(* One micro-step of instance [j]: returns the updated record list. *)
let advance_instance t ~j ~my_records ~all_records ~env ~input ~commit =
  match List.rev my_records with
  | [] -> (
    match input with
    | None -> my_records
    | Some v -> my_records @ [ { est = v; ca1 = None; ca2 = None } ])
  | current :: _earlier -> (
    let r = List.length my_records in
    let replace_last rec_ =
      List.mapi
        (fun idx old -> if idx = r - 1 then rec_ else old)
        my_records
    in
    let entries_at phase =
      (* the (j, r) CA entries of all machines, as visible in this view *)
      List.filter_map
        (fun records ->
          match List.nth_opt records.(j) (r - 1) with
          | None -> None
          | Some rec_ -> phase rec_)
        all_records
    in
    match (current.ca1, current.ca2) with
    | None, _ ->
      (* waiting for the answer to round r *)
      let a = env.(answer_slot t ~j ~r) in
      if Value.is_unit a then my_records
      else replace_last { current with ca1 = Some a }
    | Some mine, None ->
      (* phase 2: unanimity among visible phase-1 values *)
      let seen = entries_at (fun rec_ -> rec_.ca1) in
      let unanimous = List.for_all (Value.equal mine) seen in
      replace_last { current with ca2 = Some (unanimous, mine) }
    | Some _, Some (_, mine2) -> (
      (* outcome from the visible phase-2 entries *)
      let props = entries_at (fun rec_ -> rec_.ca2) in
      let true_value =
        List.find_opt (fun (b, _) -> b) props |> Option.map snd
      in
      let all_true = List.for_all (fun (b, _) -> b) props in
      match true_value with
      | Some u when all_true ->
        commit u;
        my_records
      | Some u ->
        if r + 1 > t.max_rounds then my_records
        else my_records @ [ { est = u; ca1 = None; ca2 = None } ]
      | None ->
        if r + 1 > t.max_rounds then my_records
        else my_records @ [ { est = mine2; ca1 = None; ca2 = None } ]))

let machine_step t ~input_of ~me ~states ~env =
  let my_records, my_decision = decode_state states.(me) in
  match my_decision with
  | Some _ -> states.(me)
  | None ->
    let all = Array.to_list states in
    let all_records = List.map (fun s -> fst (decode_state s)) all in
    (* adopt any visible decision first (the dec-register read) *)
    let visible_decision =
      List.find_map (fun s -> snd (decode_state s)) all
    in
    (match visible_decision with
    | Some d -> encode_state (my_records, Some d)
    | None ->
      let committed = ref None in
      let input = input_of ~me ~env in
      let records =
        Array.mapi
          (fun j recs ->
            if !committed <> None then recs
            else
              advance_instance t ~j ~my_records:recs ~all_records ~env ~input
                ~commit:(fun u -> committed := Some u))
          my_records
      in
      encode_state (records, !committed))

let machines t ~input_of =
  Array.init t.n_machines (fun _ ->
      {
        Machine.m_name = "machine-consensus";
        m_init = initial_state ~k:t.k;
        m_step = (fun ~me ~states ~env -> machine_step t ~input_of ~me ~states ~env);
        m_decided = decision;
      })
