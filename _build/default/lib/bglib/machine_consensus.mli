(** Leader-based consensus compiled to pure machines — the form needed when
    a D-using algorithm's C-part must itself be simulated (Theorem 7).

    Same protocol as the effectful [Efd.Leader_consensus], re-plumbed for
    the machine model: queries and commit–adopt fields live in the machines'
    {e states} (append-only per round, so views stay inclusion-ordered and
    the commit–adopt argument goes through); answers arrive through
    {e environment} registers written by real serving processes, which read
    the machine states wherever they are published (direct state registers,
    or the Figure-2 cells when the machines are simulated).

    The module bundles [k] parallel instances in the {!Efd.Ksa} pattern:
    every machine pursues all instances and decides the first instance
    decision it obtains; instance [j] is meant to be served by the process
    vector-Ωk names in position [j]. *)

type t

val create :
  k:int ->
  n_machines :int ->
  max_rounds:int ->
  input_offset:int ->
  n_inputs:int ->
  answer_offset:int ->
  unit ->
  t
(** Environment layout contract: [env.(input_offset + c)] (for
    [c < n_inputs]) is the input board; [env.(answer_offset + j*max_rounds
    + (r-1))] is the answer cell of instance [j] round [r]. *)

val answer_slot : t -> j:int -> r:int -> int
(** Index of the (j, r) answer cell within the environment. *)

val machines :
  t -> input_of:(me:int -> env:Value.t array -> Value.t option) -> Machine.t array
(** The participant machines. [input_of] extracts machine [me]'s proposal
    from the environment (e.g. its own input slot, or — for colorless
    simulation — the smallest-index input present); [None] = not ready yet,
    the machine idles. *)

val pending_queries : states:Value.t array -> (int * int * Value.t) list
(** All (instance, round, estimate) queries present in the machine states —
    the serving side answers those whose answer cell is still ⊥. *)

val decision : Value.t -> Value.t option
(** The machine's overall decision, from its state ([m_decided]). *)
