(* Write-value encodings:
   adoption: ("A", input) arrival, ("P", input) publication;
   fig4: (suggestion, undecided?). *)

let tag t v = Value.pair (Value.str t) v

let untag w =
  let t, v = Value.to_pair w in
  (Value.to_str t, v)

let adoption =
  {
    Sm_engine.fi_name = "adoption";
    fi_code =
      (fun _c input ->
        {
          Bg.init = tag "A" input;
          step =
            (fun ~round ~view ->
              ignore round;
              (* adopt the smallest code's publication, if any *)
              let published =
                Array.to_list view
                |> List.concat_map (fun writes ->
                       List.filter_map
                         (fun w ->
                           match untag w with
                           | "P", v -> Some v
                           | _ -> None)
                         writes)
              in
              match published with
              | v :: _ -> Bg.Decide v
              | [] -> (
                (* have I already published? then decide my input *)
                match round with
                | 0 -> Bg.Write (tag "P" input)
                | _ -> Bg.Decide input));
        });
  }

let echo =
  {
    Sm_engine.fi_name = "echo";
    fi_code =
      (fun _c input ->
        {
          Bg.init = input;
          step = (fun ~round:_ ~view:_ -> Bg.Decide input);
        });
  }

(* fig4: latest write of each code = its current (suggestion, undecided?). *)
let fig4_renaming =
  {
    Sm_engine.fi_name = "fig4-renaming";
    fi_code =
      (fun c _input ->
        {
          Bg.init = Value.pair (Value.int 1) (Value.bool true);
          step =
            (fun ~round:_ ~view ->
              let latest writes =
                match List.rev writes with
                | [] -> None
                | w :: _ ->
                  let s, b = Value.to_pair w in
                  Some (Value.to_int s, Value.to_bool b)
              in
              let mine =
                match latest view.(c) with
                | Some sb -> sb
                | None -> invalid_arg "fig4 fi: own write missing from view"
              in
              let s, undecided = mine in
              if not undecided then Bg.Decide (Value.int s)
              else begin
                let others =
                  List.filter_map
                    (fun c' -> if c' = c then None else latest view.(c'))
                    (List.init (Array.length view) Fun.id)
                in
                let conflict = List.exists (fun (s', _) -> s' = s) others in
                if not conflict then
                  Bg.Write (Value.pair (Value.int s) (Value.bool false))
                else begin
                  let undecided_codes =
                    List.filter_map
                      (fun c' ->
                        match latest view.(c') with
                        | Some (_, true) -> Some c'
                        | _ -> None)
                      (List.init (Array.length view) Fun.id)
                  in
                  let rank =
                    1 + List.length (List.filter (fun c' -> c' < c) undecided_codes)
                  in
                  let taken = List.map fst others in
                  let rec nth_free candidate r =
                    if List.mem candidate taken then nth_free (candidate + 1) r
                    else if r = 1 then candidate
                    else nth_free (candidate + 1) (r - 1)
                  in
                  Bg.Write
                    (Value.pair (Value.int (nth_free 1 rank)) (Value.bool true))
                end
              end);
        });
  }

(* wsb writes: ("A", input) arrival, ("B", bit) published bit,
   ("W", round) waiting no-op. *)
let wsb ~j =
  {
    Sm_engine.fi_name = Printf.sprintf "wsb-2conc(j=%d)" j;
    fi_code =
      (fun c input ->
        {
          Bg.init = tag "A" input;
          step =
            (fun ~round ~view ->
              let codes = List.init (Array.length view) Fun.id in
              let published c' =
                List.find_map
                  (fun w ->
                    match untag w with
                    | "B", b -> Some (Value.to_int b)
                    | _ -> None)
                  view.(c')
              in
              match published c with
              | Some b -> Bg.Decide (Value.int b)
              | None ->
                let participants =
                  List.filter (fun c' -> view.(c') <> []) codes
                in
                let undecided =
                  List.filter (fun c' -> published c' = None) participants
                in
                let someone_one =
                  List.exists (fun c' -> published c' = Some 1) codes
                in
                let publish b = Bg.Write (tag "B" (Value.int b)) in
                if someone_one then publish 0
                else if List.length participants < j then publish 0
                else begin
                  match undecided with
                  | [ me ] when me = c ->
                    let all_zero =
                      List.for_all
                        (fun c' -> c' = c || published c' = Some 0)
                        participants
                    in
                    publish (if all_zero then 1 else 0)
                  | [ a; _ ] when a = c -> publish 0
                  | _ -> Bg.Write (tag "W" (Value.int round))
                end);
        });
  }
