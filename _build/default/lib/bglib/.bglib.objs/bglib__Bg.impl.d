lib/bglib/bg.ml: Array List Safe_agreement Simkit Value
