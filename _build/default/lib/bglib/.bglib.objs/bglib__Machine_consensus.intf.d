lib/bglib/machine_consensus.mli: Machine Value
