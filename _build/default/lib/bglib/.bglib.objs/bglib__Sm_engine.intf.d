lib/bglib/sm_engine.mli: Bg Machine Value
