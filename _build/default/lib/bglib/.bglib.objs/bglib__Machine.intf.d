lib/bglib/machine.mli: Value
