lib/bglib/machine_consensus.ml: Array List Machine Option Value
