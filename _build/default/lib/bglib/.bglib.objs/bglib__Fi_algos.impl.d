lib/bglib/fi_algos.ml: Array Bg Fun List Printf Sm_engine Value
