lib/bglib/commit_adopt.ml: Array List Simkit Value
