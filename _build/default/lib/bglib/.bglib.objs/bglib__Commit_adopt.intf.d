lib/bglib/commit_adopt.mli: Simkit Value
