lib/bglib/fi_algos.mli: Sm_engine
