lib/bglib/sm_engine.ml: Array Bg Fun List Machine Printf Value
