lib/bglib/immediate_snapshot.ml: Array Fun List Simkit Value
