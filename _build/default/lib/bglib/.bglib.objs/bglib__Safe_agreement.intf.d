lib/bglib/safe_agreement.mli: Simkit Value
