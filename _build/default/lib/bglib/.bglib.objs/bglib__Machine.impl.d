lib/bglib/machine.ml: Array Value
