lib/bglib/bg.mli: Simkit Value
