lib/bglib/immediate_snapshot.mli: Simkit Value
