lib/bglib/safe_agreement.ml: Array Simkit Value
