module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op

(* cell = Unit | (value, level) *)
type t = { regs : Memory.reg array; n : int }

let create mem ~n =
  if n <= 0 then invalid_arg "Immediate_snapshot.create";
  { regs = Memory.alloc mem n; n }

let decode cell =
  if Value.is_unit cell then None
  else
    let v, l = Value.to_pair cell in
    Some (v, Value.to_int l)

let participate t ~me value =
  let rec descend level =
    if level < 1 then invalid_arg "Immediate_snapshot: descended below 1";
    Op.write t.regs.(me) (Value.pair value (Value.int level));
    let cells = Op.snapshot t.regs in
    let at_or_below =
      List.filter_map
        (fun i ->
          match decode cells.(i) with
          | Some (v, l) when l <= level -> Some (i, v)
          | _ -> None)
        (List.init t.n Fun.id)
    in
    if List.length at_or_below >= level then at_or_below
    else descend (level - 1)
  in
  descend t.n

let views_valid ~n views =
  ignore n;
  let indices view = List.map fst view in
  let subset a b = List.for_all (fun x -> List.mem x (indices b)) (indices a) in
  let self_inclusion =
    List.for_all (fun (i, view) -> List.mem i (indices view)) views
  in
  let containment =
    List.for_all
      (fun (_, v1) ->
        List.for_all (fun (_, v2) -> subset v1 v2 || subset v2 v1) views)
      views
  in
  let immediacy =
    List.for_all
      (fun (i, vi) ->
        ignore i;
        List.for_all
          (fun (j, vj) ->
            if List.mem j (indices vi) then subset vj vi else true)
          views)
      views
  in
  self_inclusion && containment && immediacy
