(** Pure full-information state machines — the form in which algorithms are
    fed to the Figure-2 simulation (replicated replay demands purity).

    A system is [k] machines plus an environment. One step of machine [me]:
    atomically snapshot all machine states and the environment registers,
    then compute the machine's new state — the snapshot-then-write register
    model (the write lands when the step is applied, possibly later than the
    snapshot; algorithms must be written for that discipline, as the
    effectful ones in {!Safe_agreement} are).

    Machines can be executed three ways, all with identical semantics:
    - {!run_pure}: a pure scheduler for exhaustive unit testing;
    - [Efd.Machine_runner]: directly as C-processes (snapshot + write);
    - [Efd.Kcodes]: simulated via per-step leader consensus (Figure 2). *)

type t = {
  m_name : string;
  m_init : Value.t;
  m_step : me:int -> states:Value.t array -> env:Value.t array -> Value.t;
      (** must be pure and deterministic: every replica replays it *)
  m_decided : Value.t -> Value.t option;
      (** decision extractable from the machine's own state, if any *)
}

(** {1 Pure execution (for tests)} *)

type sys = {
  sys_states : Value.t array;
  sys_steps : int array;  (** steps taken per machine *)
}

val boot : t array -> sys

val step_pure : t array -> sys -> env:Value.t array -> int -> sys
(** Apply one atomic step of the given machine. *)

val run_pure :
  t array ->
  env:(step:int -> Value.t array) ->
  schedule:int list ->
  sys
(** Drive machines along the schedule; [env ~step] supplies the environment
    contents at each global step. *)

val decisions : t array -> sys -> Value.t option array
