(** Wait-free commit–adopt (Gafni): the safety core of round-based
    consensus. If every participant proposes the same value, everyone
    commits it; if anyone commits [v], everyone at least adopts [v]. *)

type t

type outcome = Commit of Value.t | Adopt of Value.t

val create : Simkit.Memory.t -> n:int -> t
val run : t -> me:int -> Value.t -> outcome
(** Two write/snapshot phases; call once per process per instance. *)

val outcome_value : outcome -> Value.t
val is_commit : outcome -> bool
