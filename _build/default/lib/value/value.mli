(** Dynamic values stored in simulated shared memory.

    Shared registers in the simulator are untyped, mirroring raw shared
    memory. Algorithms exchange [Value.t] and convert at module boundaries
    with the typed accessors below, which raise {!Type_error} on mismatch
    (a type confusion is an algorithm bug, not a recoverable condition). *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list
  | Vec of t array  (** immutable by convention: never mutate in place *)

exception Type_error of string

(** {1 Constructors} *)

val unit : t
val bool : bool -> t
val int : int -> t
val str : string -> t
val pair : t -> t -> t
val list : t list -> t
val vec : t array -> t
val option : t option -> t
(** [option v] encodes [None] as [Unit] and [Some x] as [Pair (x, Unit)],
    so that [Unit]-valued payloads stay distinguishable from absence. *)

val triple : t -> t -> t -> t
val int_list : int list -> t
val int_vec : int array -> t

(** {1 Typed accessors (raise {!Type_error} on mismatch)} *)

val to_bool : t -> bool
val to_int : t -> int
val to_str : t -> string
val to_pair : t -> t * t
val to_list : t -> t list
val to_vec : t -> t array
val to_option : t -> t option
val to_triple : t -> t * t * t
val to_int_list : t -> int list
val to_int_vec : t -> int array

(** {1 Comparison and printing} *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order: structural, with a fixed order on constructors. *)

val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Misc} *)

val is_unit : t -> bool
val depth : t -> int
(** Nesting depth; used by generators and sanity bounds. *)

val size : t -> int
(** Number of constructor nodes. *)
