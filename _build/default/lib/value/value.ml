type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list
  | Vec of t array

exception Type_error of string

let type_error expected got =
  let tag = function
    | Unit -> "unit"
    | Bool _ -> "bool"
    | Int _ -> "int"
    | Str _ -> "str"
    | Pair _ -> "pair"
    | List _ -> "list"
    | Vec _ -> "vec"
  in
  raise (Type_error (Printf.sprintf "expected %s, got %s" expected (tag got)))

let unit = Unit
let bool b = Bool b
let int i = Int i
let str s = Str s
let pair a b = Pair (a, b)
let list l = List l
let vec a = Vec a

let option = function
  | None -> Unit
  | Some v -> Pair (v, Unit)

let triple a b c = Pair (a, Pair (b, c))
let int_list l = List (List.map (fun i -> Int i) l)
let int_vec a = Vec (Array.map (fun i -> Int i) a)

let to_bool = function Bool b -> b | v -> type_error "bool" v
let to_int = function Int i -> i | v -> type_error "int" v
let to_str = function Str s -> s | v -> type_error "str" v
let to_pair = function Pair (a, b) -> (a, b) | v -> type_error "pair" v
let to_list = function List l -> l | v -> type_error "list" v
let to_vec = function Vec a -> a | v -> type_error "vec" v

let to_option = function
  | Unit -> None
  | Pair (v, Unit) -> Some v
  | v -> type_error "option" v

let to_triple = function
  | Pair (a, Pair (b, c)) -> (a, b, c)
  | v -> type_error "triple" v

let to_int_list v = List.map to_int (to_list v)
let to_int_vec v = Array.map to_int (to_vec v)

let constructor_rank = function
  | Unit -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Str _ -> 3
  | Pair _ -> 4
  | List _ -> 5
  | Vec _ -> 6

let rec compare a b =
  match (a, b) with
  | Unit, Unit -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Pair (x1, x2), Pair (y1, y2) ->
    let c = compare x1 y1 in
    if c <> 0 then c else compare x2 y2
  | List x, List y -> List.compare compare x y
  | Vec x, Vec y ->
    let lx = Array.length x and ly = Array.length y in
    let rec loop i =
      if i >= lx && i >= ly then 0
      else if i >= lx then -1
      else if i >= ly then 1
      else
        let c = compare x.(i) y.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0
  | (Unit | Bool _ | Int _ | Str _ | Pair _ | List _ | Vec _), _ ->
    Int.compare (constructor_rank a) (constructor_rank b)

let equal a b = compare a b = 0

let rec hash v =
  match v with
  | Unit -> 17
  | Bool b -> if b then 31 else 37
  | Int i -> Hashtbl.hash i
  | Str s -> Hashtbl.hash s
  | Pair (a, b) -> (hash a * 65599) + hash b
  | List l -> List.fold_left (fun acc x -> (acc * 131) + hash x) 41 l
  | Vec a -> Array.fold_left (fun acc x -> (acc * 131) + hash x) 43 a

let rec pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Str s -> Fmt.pf ppf "%S" s
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b
  | List l -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") pp) l
  | Vec a -> Fmt.pf ppf "[|%a|]" Fmt.(array ~sep:(any "; ") pp) a

let to_string v = Fmt.str "%a" pp v
let is_unit = function Unit -> true | _ -> false

let rec depth = function
  | Unit | Bool _ | Int _ | Str _ -> 1
  | Pair (a, b) -> 1 + max (depth a) (depth b)
  | List l -> 1 + List.fold_left (fun acc x -> max acc (depth x)) 0 l
  | Vec a -> 1 + Array.fold_left (fun acc x -> max acc (depth x)) 0 a

let rec size = function
  | Unit | Bool _ | Int _ | Str _ -> 1
  | Pair (a, b) -> 1 + size a + size b
  | List l -> 1 + List.fold_left (fun acc x -> acc + size x) 0 l
  | Vec a -> 1 + Array.fold_left (fun acc x -> acc + size x) 0 a
