(** Failure detectors as history generators.

    A failure detector [D] maps each failure pattern [F] to a non-empty set
    of histories [D(F)]. We realize the set by a seeded generator: drawing
    with different seeds yields different members of [D(F)] (stabilization
    times, pre-stabilization noise). Implementations must satisfy their
    class property for {e every} seed; the property checkers in {!Props}
    verify this on tabulated histories. *)

type t = {
  fd_name : string;
  histories : Simkit.Failure.pattern -> Random.State.t -> Simkit.History.t;
}

val make : name:string -> (Simkit.Failure.pattern -> Random.State.t -> Simkit.History.t) -> t
val name : t -> string

val draw : t -> Simkit.Failure.pattern -> seed:int -> Simkit.History.t
(** Convenience: one history from [D(F)], deterministically from [seed]. *)

val trivial : t
(** Always outputs [Value.unit] — the trivial failure detector (footnote 5). *)

val of_history : name:string -> Simkit.History.t -> t
(** A detector admitting exactly one history regardless of pattern (used to
    package emulated outputs back into a detector). *)

val map_output : name:string -> (q:int -> time:int -> Value.t -> Value.t) -> t -> t
(** Local (per-query) output transformation — the simplest kind of
    failure-detector reduction. *)

(** {1 Standard output encodings}

    Ω outputs an S-process index as [Value.Int]; ¬Ωk outputs a set of
    [n_s - k] indices as an int list; vector-Ωk outputs a [k]-vector of
    indices as an int vec. *)

val encode_set : int list -> Value.t
val decode_set : Value.t -> int list
val encode_leader : int -> Value.t
val decode_leader : Value.t -> int
val encode_vector : int array -> Value.t
val decode_vector : Value.t -> int array

val pair : name:string -> t -> t -> t
(** A detector whose output at (q, τ) is the pair of both components'
    outputs — used when one algorithm needs two kinds of advice (e.g. the
    Theorem-7 composition querying vector-Ω(k+1) and vector-Ωk). *)
