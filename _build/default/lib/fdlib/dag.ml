type vertex = { vq : int; vseq : int; vval : Value.t; vpast : int array }

(* by_q.(q) holds q's vertices in *descending* seq order for O(1) append of
   the next sample; accessors reverse as needed. *)
type t = { dag_n_s : int; by_q : vertex list array }

let create ~n_s =
  if n_s <= 0 then invalid_arg "Dag.create";
  { dag_n_s = n_s; by_q = Array.make n_s [] }

let n_s g = g.dag_n_s

let n_vertices g =
  Array.fold_left (fun acc l -> acc + List.length l) 0 g.by_q

let top_seq g q = match g.by_q.(q) with [] -> 0 | v :: _ -> v.vseq
let max_seqs g = Array.init g.dag_n_s (fun q -> top_seq g q)

let add_sample g ~q value =
  if q < 0 || q >= g.dag_n_s then invalid_arg "Dag.add_sample";
  let v =
    { vq = q; vseq = top_seq g q + 1; vval = value; vpast = max_seqs g }
  in
  g.by_q.(q) <- v :: g.by_q.(q);
  v

let vertices_of g ~q = List.rev g.by_q.(q)

let find g ~q ~seq =
  if q < 0 || q >= g.dag_n_s then None
  else List.find_opt (fun v -> v.vseq = seq) g.by_q.(q)

(* Merge: vertex keys (q, seq) are globally unique (only q creates its own
   samples, sequentially), so merging is interleaving by seq. *)
let union g g' =
  if g.dag_n_s <> g'.dag_n_s then invalid_arg "Dag.union: size mismatch";
  for q = 0 to g.dag_n_s - 1 do
    let merged =
      List.merge
        (fun a b -> Int.compare b.vseq a.vseq)
        g.by_q.(q) g'.by_q.(q)
    in
    let rec dedup = function
      | a :: b :: rest when a.vseq = b.vseq -> dedup (a :: rest)
      | a :: rest -> a :: dedup rest
      | [] -> []
    in
    g.by_q.(q) <- dedup merged
  done

let succeeds v ~q ~seq = seq = 0 || v.vpast.(q) >= seq

let next_vertex g ~q ~frontier =
  if Array.length frontier <> g.dag_n_s then
    invalid_arg "Dag.next_vertex: frontier size";
  let candidates = vertices_of g ~q in
  let ok v =
    v.vseq > frontier.(q)
    && Array.for_all Fun.id
         (Array.mapi (fun q' seq -> succeeds v ~q:q' ~seq) frontier)
  in
  List.find_opt ok candidates

let encode g =
  let encode_vertex v =
    Value.triple
      (Value.pair (Value.int v.vq) (Value.int v.vseq))
      v.vval
      (Value.int_vec v.vpast)
  in
  Value.pair
    (Value.int g.dag_n_s)
    (Value.list
       (List.concat_map
          (fun q -> List.map encode_vertex (vertices_of g ~q))
          (List.init g.dag_n_s Fun.id)))

let decode v =
  if Value.is_unit v then invalid_arg "Dag.decode: bottom"
  else begin
    let n, vs = Value.to_pair v in
    let g = create ~n_s:(Value.to_int n) in
    let add ev =
      let key, vval, past = Value.to_triple ev in
      let q, seq = Value.to_pair key in
      let vertex =
        {
          vq = Value.to_int q;
          vseq = Value.to_int seq;
          vval;
          vpast = Value.to_int_vec past;
        }
      in
      (* vertices arrive in ascending seq per q; prepend keeps descending *)
      g.by_q.(vertex.vq) <- vertex :: g.by_q.(vertex.vq)
    in
    List.iter add (Value.to_list vs);
    g
  end

let copy g = { dag_n_s = g.dag_n_s; by_q = Array.copy g.by_q }
