(** The set-agreement family of failure detectors: Ω, ¬Ωk, vector-Ωk.

    Outputs follow the encodings of {!Fd}: Ω outputs one S-index, ¬Ωk a set
    of [n_s − k] S-indices, vector-Ωk a [k]-vector of S-indices. Each
    generator samples a stabilization time in [0, max_stab] (default 100);
    before it the outputs are arbitrary noise (still type-correct), after it
    the defining property holds with the eventually-safe process chosen as
    the smallest-index correct process of the pattern. *)

val omega : ?max_stab:int -> unit -> Fd.t
(** Ω: eventually the same correct process is output everywhere. *)

val anti_omega_k : ?max_stab:int -> k:int -> unit -> Fd.t
(** ¬Ωk: outputs (n−k)-sets; eventually some correct process is never
    output at any correct process. Requires [1 ≤ k ≤ n_s] at draw time. *)

val vector_omega_k : ?max_stab:int -> k:int -> unit -> Fd.t
(** vector-Ωk: outputs k-vectors; eventually at least one position
    stabilizes on the same correct process at all correct processes. The
    stable position is seeded; the other positions keep churning, which
    algorithms must tolerate. *)

val vector_omega_k_silent : ?max_stab:int -> k:int -> unit -> Fd.t
(** The least-helpful legal member of the vector-Ωk class: every position
    outputs −1 ("no advice") at all times except that, from the sampled
    stabilization time on, one seeded position holds the smallest-index
    correct process. Legal since the class property only constrains the
    suffix; it concentrates all usable advice in the stable position, which
    makes it the cleanest detector to extract from (Theorem 8 demos). *)
