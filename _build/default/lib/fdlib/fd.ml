module Failure = Simkit.Failure
module History = Simkit.History

type t = {
  fd_name : string;
  histories : Failure.pattern -> Random.State.t -> History.t;
}

let make ~name histories = { fd_name = name; histories }
let name d = d.fd_name
let draw d pattern ~seed = d.histories pattern (Random.State.make [| seed |])
let trivial = make ~name:"trivial" (fun _ _ -> History.trivial)
let of_history ~name h = make ~name (fun _ _ -> h)

let map_output ~name f d =
  make ~name (fun pattern rng ->
      let h = d.histories pattern rng in
      History.make ~name (fun q time ->
          f ~q ~time (History.get h ~q ~time)))

let encode_set l = Value.int_list (List.sort_uniq Int.compare l)
let decode_set v = Value.to_int_list v
let encode_leader i = Value.int i
let decode_leader v = Value.to_int v
let encode_vector a = Value.int_vec a
let decode_vector v = Value.to_int_vec v

let pair ~name d1 d2 =
  make ~name (fun pattern rng ->
      let h1 = d1.histories pattern rng in
      let h2 = d2.histories pattern rng in
      History.make ~name (fun q time ->
          Value.pair (History.get h1 ~q ~time) (History.get h2 ~q ~time)))
