lib/fdlib/convert.mli: Fd
