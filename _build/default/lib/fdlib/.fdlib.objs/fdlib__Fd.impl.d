lib/fdlib/fd.ml: Int List Random Simkit Value
