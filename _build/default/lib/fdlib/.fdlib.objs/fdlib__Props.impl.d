lib/fdlib/props.ml: Array Fd Fun List Simkit Value
