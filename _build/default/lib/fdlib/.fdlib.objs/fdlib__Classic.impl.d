lib/fdlib/classic.ml: Fd Fun List Random Simkit
