lib/fdlib/leader_fds.mli: Fd
