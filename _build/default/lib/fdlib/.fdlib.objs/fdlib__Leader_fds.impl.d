lib/fdlib/leader_fds.ml: Array Fd Fun List Printf Random Simkit
