lib/fdlib/classic.mli: Fd
