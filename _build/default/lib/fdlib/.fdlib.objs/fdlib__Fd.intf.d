lib/fdlib/fd.mli: Random Simkit Value
