lib/fdlib/convert.ml: Array Fd Fun List Printf
