lib/fdlib/dag.mli: Value
