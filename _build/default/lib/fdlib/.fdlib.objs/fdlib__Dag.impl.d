lib/fdlib/dag.ml: Array Fun Int List Value
