lib/fdlib/props.mli: Simkit Value
