module Failure = Simkit.Failure
module History = Simkit.History

let min_correct pattern =
  match Failure.correct pattern with
  | [] -> invalid_arg "leader_fds: no correct process"
  | i :: _ -> i

let noise_int seed q time bound =
  let r = Random.State.make [| seed; q; time |] in
  Random.State.int r bound

let omega ?(max_stab = 100) () =
  Fd.make ~name:"Omega" (fun pattern rng ->
      let stab = Random.State.int rng (max_stab + 1) in
      let noise = Random.State.bits rng in
      let leader = min_correct pattern in
      let n_s = pattern.Failure.n_s in
      History.make ~name:"Omega" (fun q time ->
          if time >= stab then Fd.encode_leader leader
          else Fd.encode_leader (noise_int noise q time n_s)))

(* The fixed post-stabilization (n−k)-set: every index except the safe
   process, smallest first, truncated to n−k elements. *)
let stable_set ~n_s ~k ~safe =
  let candidates = List.filter (fun i -> i <> safe) (List.init n_s Fun.id) in
  let rec take n = function
    | [] -> []
    | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
  in
  take (n_s - k) candidates

let random_subset r ~n_s ~size =
  let indices = Array.init n_s Fun.id in
  for i = n_s - 1 downto 1 do
    let j = Random.State.int r (i + 1) in
    let tmp = indices.(i) in
    indices.(i) <- indices.(j);
    indices.(j) <- tmp
  done;
  Array.to_list (Array.sub indices 0 size)

let anti_omega_k ?(max_stab = 100) ~k () =
  Fd.make ~name:(Printf.sprintf "anti-Omega-%d" k) (fun pattern rng ->
      let n_s = pattern.Failure.n_s in
      if k < 1 || k > n_s then invalid_arg "anti_omega_k: k out of range";
      let stab = Random.State.int rng (max_stab + 1) in
      let noise = Random.State.bits rng in
      let safe = min_correct pattern in
      let fixed = stable_set ~n_s ~k ~safe in
      History.make ~name:"anti-Omega-k" (fun q time ->
          if time >= stab then Fd.encode_set fixed
          else
            let r = Random.State.make [| noise; q; time |] in
            Fd.encode_set (random_subset r ~n_s ~size:(n_s - k))))

let vector_omega_k ?(max_stab = 100) ~k () =
  Fd.make ~name:(Printf.sprintf "vector-Omega-%d" k) (fun pattern rng ->
      let n_s = pattern.Failure.n_s in
      if k < 1 then invalid_arg "vector_omega_k: k must be >= 1";
      let stab = Random.State.int rng (max_stab + 1) in
      let noise = Random.State.bits rng in
      let stable_pos = Random.State.int rng k in
      let leader = min_correct pattern in
      History.make ~name:"vector-Omega-k" (fun q time ->
          let vec =
            Array.init k (fun pos ->
                if time >= stab && pos = stable_pos then leader
                else (noise_int noise q time n_s + pos + time) mod n_s)
          in
          if time >= stab then vec.(stable_pos) <- leader;
          Fd.encode_vector vec))

let vector_omega_k_silent ?(max_stab = 100) ~k () =
  Fd.make ~name:(Printf.sprintf "vector-Omega-%d-silent" k) (fun pattern rng ->
      let stab = Random.State.int rng (max_stab + 1) in
      let stable_pos = Random.State.int rng k in
      let leader = min_correct pattern in
      History.make ~name:"vector-Omega-k-silent" (fun _q time ->
          let vec = Array.make k (-1) in
          if time >= stab then vec.(stable_pos) <- leader;
          Fd.encode_vector vec))
