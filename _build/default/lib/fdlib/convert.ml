let complement ~n_s l =
  List.filter (fun i -> not (List.mem i l)) (List.init n_s Fun.id)

let take n l =
  let rec go n = function
    | [] -> []
    | x :: tl -> if n = 0 then [] else x :: go (n - 1) tl
  in
  go n l

let anti_of_omega ~k ~n_s d =
  Fd.map_output ~name:(Printf.sprintf "anti-Omega-%d<=Omega" k)
    (fun ~q:_ ~time:_ out ->
      let leader = Fd.decode_leader out in
      Fd.encode_set (take (n_s - k) (complement ~n_s [ leader ])))
    d

let omega_of_anti_1 ~n_s d =
  Fd.map_output ~name:"Omega<=anti-Omega-1"
    (fun ~q:_ ~time:_ out ->
      match complement ~n_s (Fd.decode_set out) with
      | [ leader ] -> Fd.encode_leader leader
      | leader :: _ -> Fd.encode_leader leader
      | [] -> Fd.encode_leader 0)
    d

let vector_of_omega ~k ~n_s d =
  Fd.map_output ~name:(Printf.sprintf "vector-Omega-%d<=Omega" k)
    (fun ~q ~time out ->
      let leader = Fd.decode_leader out in
      Fd.encode_vector
        (Array.init k (fun pos ->
             if pos = 0 then leader else (leader + pos + q + time) mod n_s)))
    d

let anti_of_vector ~k ~n_s d =
  Fd.map_output ~name:(Printf.sprintf "anti-Omega-%d<=vector-Omega-%d" k k)
    (fun ~q:_ ~time:_ out ->
      let entries = Array.to_list (Fd.decode_vector out) in
      Fd.encode_set (take (n_s - k) (complement ~n_s entries)))
    d
