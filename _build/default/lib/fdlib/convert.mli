(** Local (query-by-query) reductions between detectors of the set-agreement
    family. Each is an output transformation requiring no communication, so
    it is trivially a valid reduction algorithm in the sense of §2.2.

    The non-local direction ¬Ωk ⇒ vector-Ωk for k ≥ 2 is Zieliński's
    equivalence [28]; as documented in DESIGN.md we do not re-derive it —
    harnesses that need vector-Ωk instantiate it directly. *)

val anti_of_omega : k:int -> n_s:int -> Fd.t -> Fd.t
(** Ω ⇒ ¬Ωk: output the first [n_s − k] indices different from the leader
    (the eventually-stable correct leader is then eventually never output). *)

val omega_of_anti_1 : n_s:int -> Fd.t -> Fd.t
(** ¬Ω1 ⇒ Ω: an (n−1)-set that eventually never contains some correct q
    must eventually be exactly Π∖{q}; output the complement. *)

val vector_of_omega : k:int -> n_s:int -> Fd.t -> Fd.t
(** Ω ⇒ vector-Ωk: leader in position 0, arbitrary churn elsewhere. *)

val anti_of_vector : k:int -> n_s:int -> Fd.t -> Fd.t
(** vector-Ωk ⇒ ¬Ωk: output [n_s − k] indices avoiding every vector entry
    (possible since the vector has at most [k] distinct entries); the
    stabilized entry is then eventually never output. *)

val complement : n_s:int -> int list -> int list
(** Indices of [0..n_s-1] not in the argument, ascending. *)
