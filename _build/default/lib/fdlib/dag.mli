(** CHT-style sample DAGs of failure-detector outputs (Chandra–Hadzilacos–
    Toueg [9], as used by Zieliński [28] and Gafni–Kuznetsov [18]).

    A vertex [(q, d, seq)] records that the [seq]-th query of [D] by
    S-process [q] returned [d]. When a process adds its new sample, it draws
    edges from {e every} vertex it currently knows to the new one; hence the
    causal past of a vertex is exactly the sampler's knowledge at sampling
    time, and can be summarized as the maximum known sequence number per
    process — the [past] frontier stored in each vertex. Vertex [w]
    causally succeeds vertex [(q, seq)] iff [past w q >= seq].

    DAGs grow by local sampling ({!add_sample}) and by merging what other
    processes published ({!union}); both preserve the summary invariant. *)

type vertex = private {
  vq : int;  (** sampling S-process *)
  vseq : int;  (** 1-based sample index at that process *)
  vval : Value.t;  (** the failure detector output *)
  vpast : int array;  (** causal frontier: max seq per process, 0 = none *)
}

type t

val create : n_s:int -> t
val n_s : t -> int
val n_vertices : t -> int

val add_sample : t -> q:int -> Value.t -> vertex
(** Record a new local sample of process [q]: its sequence number is one
    past [q]'s current maximum, its past is the DAG's current frontier. *)

val union : t -> t -> unit
(** [union g g']: merge [g'] into [g] (by vertex key [(q, seq)]). *)

val max_seqs : t -> int array
(** Current frontier: highest seq per process (0 = no vertex). *)

val find : t -> q:int -> seq:int -> vertex option
val vertices_of : t -> q:int -> vertex list
(** Ascending sequence numbers. *)

val succeeds : vertex -> q:int -> seq:int -> bool
(** Does this vertex causally succeed sample [(q, seq)]? (Trivially true
    when [seq = 0].) *)

val next_vertex : t -> q:int -> frontier:int array -> vertex option
(** The smallest-seq vertex of [q] with [vseq > frontier.(q)] that causally
    succeeds every [(q', frontier.(q'))] — the next simulatable query step
    of [q] given that the simulation already consumed [frontier]. *)

val encode : t -> Value.t
val decode : Value.t -> t
(** Shared-memory serialization (write your DAG, union others'). *)

val copy : t -> t
