(** Classic failure detectors from Chandra–Toueg, plus the paper's
    Proposition-3 counterexample detector. Suspicion-list detectors output
    {!Fd.encode_set} of suspected S-process indices. *)

val perfect : unit -> Fd.t
(** P with exact knowledge: at time τ outputs exactly the set [F(τ)] of
    processes crashed by τ (strong completeness and strong accuracy). *)

val eventually_perfect : ?max_stab:int -> unit -> Fd.t
(** ◇P: before a seeded stabilization time, outputs arbitrary suspicion
    sets; afterwards outputs exactly [F(τ)]. [max_stab] bounds the sampled
    stabilization time (default 100). *)

val q1_else_q2 : unit -> Fd.t
(** The Proposition-3 counterexample detector: outputs (as a leader index)
    [q_0] if [q_0] is correct in the pattern and [q_1] otherwise — even when
    [q_1] is crashed too. In the conventional (personified) model it solves
    consensus among [{p_0, p_1}] in E_2: whenever [q_0] and [q_1] are both
    faulty, their paired C-processes are dead and the obligation is vacuous.
    In EFD the C-processes survive their synchronization partners, and with
    both [q_0], [q_1] crashed the output is a dead leader forever — the task
    is not EFD-solvable with this detector. Requires [n_s ≥ 2]. *)

val eventually_strong : ?max_stab:int -> unit -> Fd.t
(** ◇S: strong completeness (crashed processes are eventually always
    suspected) and eventual weak accuracy (some correct process is
    eventually never suspected by anyone) — but unlike ◇P, other correct
    processes may be wrongly suspected forever. The classic detector from
    which Ω is emulated by counting suspicions ([Efd.Emulation]). *)

val sigma : unit -> Fd.t
(** Σ, the quorum detector (the weakest to implement registers): outputs
    sets of S-processes such that any two outputs (across processes and
    times) intersect and eventually outputs contain only correct processes.
    Peripheral here — registers are given in the EFD model — but included
    for completeness of the detector zoo. Outputs {!Fd.encode_set}. *)
