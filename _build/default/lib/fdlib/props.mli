(** Property checkers for failure-detector classes.

    Each checker takes a failure pattern and a tabulated history (as produced
    by {!Simkit.History.tabulate} or collected from emulated outputs) and
    verifies the class property on the final [suffix] steps — the finite
    counterpart of "there is a time after which …". Only the modules of
    correct processes are inspected, matching the definitions. *)

type table = Value.t array array
(** [table.(q).(tau)] — output of q's module at time tau. *)

val omega_ok : Simkit.Failure.pattern -> table -> suffix:int -> bool
(** Some correct leader is output by every correct process at every instant
    of the suffix. *)

val anti_omega_k_ok : Simkit.Failure.pattern -> table -> k:int -> suffix:int -> bool
(** Some correct process appears in no output of any correct process during
    the suffix, and all outputs are (n−k)-sets. *)

val anti_omega_k_witnesses :
  Simkit.Failure.pattern -> table -> suffix:int -> int list
(** The correct processes never output during the suffix (the ¬Ωk witnesses,
    ignoring the cardinality check). *)

val vector_omega_k_ok :
  Simkit.Failure.pattern -> table -> k:int -> suffix:int -> bool
(** Some position holds the same correct process in every correct module's
    output during the suffix. *)

val perfect_exact_ok : Simkit.Failure.pattern -> table -> bool
(** The output at every correct process and time is exactly the set of
    processes crashed by that time. *)

val eventually_perfect_ok :
  Simkit.Failure.pattern -> table -> suffix:int -> bool
(** During the suffix, outputs at correct processes are exactly the crashed
    sets. *)

val sigma_ok : Simkit.Failure.pattern -> table -> suffix:int -> bool
(** Quorum intersection over the whole table, and suffix quorums contain
    only correct processes. *)
