module Failure = Simkit.Failure
module History = Simkit.History

let crashed_by pattern time =
  List.filter
    (fun i -> Failure.crashed pattern ~time i)
    (List.init pattern.Failure.n_s Fun.id)

let perfect () =
  Fd.make ~name:"P" (fun pattern _rng ->
      History.make ~name:"P" (fun _q time ->
          Fd.encode_set (crashed_by pattern time)))

let eventually_perfect ?(max_stab = 100) () =
  Fd.make ~name:"<>P" (fun pattern rng ->
      let stab = Random.State.int rng (max_stab + 1) in
      let noise_seed = Random.State.bits rng in
      let n_s = pattern.Failure.n_s in
      History.make ~name:"<>P" (fun q time ->
          if time >= stab then Fd.encode_set (crashed_by pattern time)
          else begin
            (* arbitrary (wrong) suspicions, deterministic in (q, time) *)
            let r = Random.State.make [| noise_seed; q; time |] in
            let sus =
              List.filter
                (fun _ -> Random.State.bool r)
                (List.init n_s Fun.id)
            in
            Fd.encode_set sus
          end))

let q1_else_q2 () =
  Fd.make ~name:"D-q1-if-correct" (fun pattern _rng ->
      if pattern.Failure.n_s < 2 then
        invalid_arg "Classic.q1_else_q2: needs at least 2 S-processes";
      let leader = if Failure.is_correct pattern 0 then 0 else 1 in
      History.make ~name:"D-q1-if-correct" (fun _q _time ->
          Fd.encode_leader leader))

let eventually_strong ?(max_stab = 100) () =
  Fd.make ~name:"<>S" (fun pattern rng ->
      let stab = Random.State.int rng (max_stab + 1) in
      let noise_seed = Random.State.bits rng in
      let n_s = pattern.Failure.n_s in
      let safe =
        match Failure.correct pattern with
        | s :: _ -> s
        | [] -> invalid_arg "eventually_strong: no correct process"
      in
      History.make ~name:"<>S" (fun q time ->
          if time >= stab then begin
            (* crashed ∪ possibly-wrong correct suspects, never [safe] *)
            let wrong =
              List.filter
                (fun j ->
                  j <> safe
                  && Failure.is_correct pattern j
                  && (j + q + (time / 7)) mod 3 = 0)
                (List.init n_s Fun.id)
            in
            Fd.encode_set (crashed_by pattern time @ wrong)
          end
          else
            let r = Random.State.make [| noise_seed; q; time |] in
            Fd.encode_set
              (List.filter (fun _ -> Random.State.bool r) (List.init n_s Fun.id))))

let sigma () =
  Fd.make ~name:"Sigma" (fun pattern rng ->
      let stab = Random.State.int rng 100 in
      let n_s = pattern.Failure.n_s in
      let correct = Failure.correct pattern in
      History.make ~name:"Sigma" (fun q time ->
          if time >= stab then Fd.encode_set correct
          else begin
            (* before stabilizing: all processes — intersects everything *)
            ignore q;
            Fd.encode_set (List.init n_s Fun.id)
          end))
