module Failure = Simkit.Failure

type table = Value.t array array

let horizon table =
  Array.fold_left (fun acc row -> min acc (Array.length row)) max_int table

let suffix_times table ~suffix =
  let h = horizon table in
  let start = max 0 (h - suffix) in
  List.init (h - start) (fun i -> start + i)

let for_all_correct pattern f =
  List.for_all f (Failure.correct pattern)

let exists_correct pattern f =
  List.exists f (Failure.correct pattern)

let omega_ok pattern table ~suffix =
  let times = suffix_times table ~suffix in
  exists_correct pattern (fun leader ->
      for_all_correct pattern (fun q ->
          List.for_all
            (fun tau -> Fd.decode_leader table.(q).(tau) = leader)
            times))

let anti_omega_k_witnesses pattern table ~suffix =
  let times = suffix_times table ~suffix in
  List.filter
    (fun candidate ->
      for_all_correct pattern (fun q ->
          List.for_all
            (fun tau -> not (List.mem candidate (Fd.decode_set table.(q).(tau))))
            times))
    (Failure.correct pattern)

let anti_omega_k_ok pattern table ~k ~suffix =
  let n_s = pattern.Failure.n_s in
  let times = suffix_times table ~suffix in
  let sizes_ok =
    for_all_correct pattern (fun q ->
        List.for_all
          (fun tau -> List.length (Fd.decode_set table.(q).(tau)) = n_s - k)
          times)
  in
  sizes_ok && anti_omega_k_witnesses pattern table ~suffix <> []

let vector_omega_k_ok pattern table ~k ~suffix =
  let times = suffix_times table ~suffix in
  let stable_at pos leader =
    for_all_correct pattern (fun q ->
        List.for_all
          (fun tau ->
            let v = Fd.decode_vector table.(q).(tau) in
            Array.length v = k && v.(pos) = leader)
          times)
  in
  List.exists
    (fun pos -> exists_correct pattern (fun leader -> stable_at pos leader))
    (List.init k Fun.id)

let crashed_set pattern tau =
  List.filter
    (fun i -> Failure.crashed pattern ~time:tau i)
    (List.init pattern.Failure.n_s Fun.id)

let exact_from pattern table times =
  for_all_correct pattern (fun q ->
      List.for_all
        (fun tau -> Fd.decode_set table.(q).(tau) = crashed_set pattern tau)
        times)

let perfect_exact_ok pattern table =
  let h = horizon table in
  exact_from pattern table (List.init h Fun.id)

let eventually_perfect_ok pattern table ~suffix =
  exact_from pattern table (suffix_times table ~suffix)

let sigma_ok pattern table ~suffix =
  let h = horizon table in
  let all_quorums =
    List.concat_map
      (fun q ->
        List.map (fun tau -> Fd.decode_set table.(q).(tau)) (List.init h Fun.id))
      (Failure.correct pattern)
  in
  let intersects a b = List.exists (fun x -> List.mem x b) a in
  let pairwise =
    List.for_all (fun a -> List.for_all (intersects a) all_quorums) all_quorums
  in
  let times = suffix_times table ~suffix in
  let eventually_correct =
    for_all_correct pattern (fun q ->
        List.for_all
          (fun tau ->
            List.for_all
              (fun x -> Failure.is_correct pattern x)
              (Fd.decode_set table.(q).(tau)))
          times)
  in
  pairwise && eventually_correct
