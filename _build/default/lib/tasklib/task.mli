(** Decision tasks [(I, O, Δ)] (§2.1 of the paper).

    A task is given by its arity [m] (one slot per C-process), a finite set
    of maximal input vectors (prefix closure is implicit: every non-empty
    prefix of an input vector is an input vector), and the relation Δ,
    realized as a checker on (input, partial output) pairs. Partial outputs
    must be accepted whenever they extend to a valid full output — all the
    concrete tasks here admit a direct such check.

    [choose] is the sequential choice oracle used by the generic
    1-concurrent solver (Proposition 1): given the input vector read so far
    and a compatible partial output with slot [i] undecided, it returns a
    value for [i] keeping the output valid. Such a function exists for every
    task by the paper's task axioms; we require it constructively. *)

type t = {
  task_name : string;
  arity : int;
  colorless : bool;
      (** processes may adopt each other's inputs/outputs (footnote 6) *)
  max_inputs : unit -> Vectors.t list;
      (** the maximal input vectors; finite, per the paper's assumption *)
  check : input:Vectors.t -> output:Vectors.t -> bool;
      (** is the (possibly partial) output compatible with Δ on [input]? *)
  choose : input:Vectors.t -> output:Vectors.t -> int -> Value.t;
      (** sequential choice oracle; may raise [Invalid_argument] if slot [i]
          is ⊥ in [input] or already decided in [output] *)
  known_concurrency : int option;
      (** the task's maximal concurrency level if known (Thm 10 metadata) *)
}

val satisfies : t -> input:Vectors.t -> output:Vectors.t -> bool
(** Full run check: [output] only decides participants of [input], and
    [check] accepts. (The wait-freedom side of run satisfaction is checked
    by {!Simkit.Checker}, which knows step counts.) *)

val input_ok : t -> Vectors.t -> bool
(** Is the vector a prefix of some maximal input vector? *)

val sample_input : t -> Random.State.t -> Vectors.t
(** A maximal input vector drawn uniformly. *)

val sample_prefix : t -> Random.State.t -> min_participants:int -> Vectors.t
(** A random prefix (with at least [min_participants] non-⊥ slots) of a
    random maximal input vector. *)

val choice_closure : t -> input:Vectors.t -> Vectors.t
(** Repeatedly apply [choose] in index order to extend the empty output to
    all participants of [input] — the sequential (1-concurrent) solution.
    Useful for testing that [choose] is total and valid. *)
