(** Leader election as a decision task: every participant outputs the index
    of one common participant. Consensus on participant identities — level
    1 in the hierarchy (weakest detector Ω). *)

val make : n:int -> Task.t
