(** Small enumeration helpers shared by the task constructors. *)

val subsets_of_size : int -> 'a list -> 'a list list
(** All sublists of the given size, order-preserving. *)

val assignments : 'a list -> 'b list -> 'b list list
(** All functions from positions of the first list into the second, as lists
    aligned with the first ([|b|^|a|] results). *)
