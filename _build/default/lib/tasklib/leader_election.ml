let make ~n =
  if n < 2 then invalid_arg "Leader_election.make";
  let max_inputs () =
    (* participation only carries the process's original name *)
    List.filter_map
      (fun subset ->
        if subset = [] then None
        else begin
          let v = Vectors.bottom n in
          List.iter (fun i -> v.(i) <- Some (Value.int (i + 1))) subset;
          Some v
        end)
      (List.concat_map
         (fun size -> Combinat.subsets_of_size size (List.init n Fun.id))
         [ n ])
  in
  let check ~input ~output =
    let decided =
      Array.to_list output |> List.filter_map (Option.map Value.to_int)
    in
    match List.sort_uniq Int.compare decided with
    | [] -> true
    | [ leader ] -> leader >= 0 && leader < n && input.(leader) <> None
    | _ :: _ :: _ -> false
  in
  let choose ~input ~output i =
    ignore i;
    let existing =
      Array.to_list output |> List.filter_map (Option.map Value.to_int)
    in
    match existing with
    | leader :: _ -> Value.int leader
    | [] -> (
      match Vectors.participants input with
      | p :: _ -> Value.int p
      | [] -> invalid_arg "Leader_election.choose: empty input")
  in
  {
    Task.task_name = Printf.sprintf "leader-election(n=%d)" n;
    arity = n;
    colorless = false;
    max_inputs;
    check;
    choose;
    known_concurrency = Some 1;
  }
