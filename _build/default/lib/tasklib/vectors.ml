type t = Value.t option array

let bottom n = Array.make n None

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (Option.equal Value.equal) a b

let pp ppf v =
  let pp_slot ppf = function
    | None -> Fmt.string ppf "_"
    | Some x -> Value.pp ppf x
  in
  Fmt.pf ppf "<%a>" Fmt.(array ~sep:(any " ") pp_slot) v

let to_string v = Fmt.str "%a" pp v

let participants v =
  List.filteri (fun i _ -> v.(i) <> None) (List.init (Array.length v) Fun.id)

let count v =
  Array.fold_left (fun acc x -> if x = None then acc else acc + 1) 0 v

let is_bottom v = count v = 0

let is_prefix a b =
  Array.length a = Array.length b
  && count a >= 1
  && Array.for_all2
       (fun x y -> match x with None -> true | Some _ -> Option.equal Value.equal x y)
       a b

let restrict v idxs =
  Array.mapi (fun i x -> if List.mem i idxs then x else None) v

let set v i x =
  let v' = Array.copy v in
  v'.(i) <- Some x;
  v'

let proper_prefixes v =
  let ps = participants v in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
      let tails = subsets rest in
      tails @ List.map (fun s -> x :: s) tails
  in
  let candidates =
    List.filter
      (fun s -> s <> [] && List.length s < List.length ps)
      (subsets ps)
  in
  List.map (restrict v) candidates

let of_list l = Array.of_list l
let of_ints l = Array.of_list (List.map (Option.map Value.int) l)
