(** (U, k)-agreement (§2.1): processes in [U] propose values and every
    decided value is some participant's proposal, with at most [k] distinct
    decided values. [(Π, k)]-agreement is k-set agreement; [(Π, 1)] is
    consensus. *)

val make : ?u:int list -> ?values:int list -> n:int -> k:int -> unit -> Task.t
(** [make ~n ~k ()] is k-set agreement among all [n] C-processes with
    proposal values [0..k] (the paper's default domain). [?u] restricts the
    participant set; [?values] overrides the proposal domain.

    Known concurrency metadata: level [k] when [|U| > k], level [n] when
    [|U| ≤ k] (at most [k] participants can never produce more than [k]
    distinct values, so the task is wait-free solvable). *)

val consensus : ?u:int list -> ?values:int list -> n:int -> unit -> Task.t
(** [(U, 1)]-agreement. *)
