(** The battery of tasks used by the hierarchy experiments (Theorem 10).

    Each entry carries the classification the paper predicts: the maximal
    concurrency level (exact where known, a lower bound otherwise) and the
    name of the weakest failure detector of the corresponding class
    (¬Ω_level; "trivial" for level-n, i.e. wait-free solvable, tasks). *)

type expectation = Exact of int | At_least of int

type entry = {
  entry_task : Task.t;
  expected : expectation;
  weakest_fd : string;
}

val expected_lower : expectation -> int
val pp_expectation : Format.formatter -> expectation -> unit

val weakest_fd_of_level : n:int -> int -> string
(** "trivial" for level [n], "Omega" for 1, "anti-Omega-k" otherwise. *)

val standard : n:int -> entry list
(** The standard battery for [n] C-processes ([n ≥ 4]): identity, constant,
    k-set agreement for k = 1..n−1, (U,k)-agreement on a proper subset,
    strong renaming, (j, j+k−1)-renaming instances, WSB. *)

val find : entry list -> string -> entry option
