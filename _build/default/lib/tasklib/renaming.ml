let original_name ~n i = ((i + 1) * (n + 2)) + 1

let make ~n ~j ~l =
  if j < 1 || j > l then invalid_arg "Renaming.make: need 1 <= j <= l";
  if j >= n then invalid_arg "Renaming.make: need j < n";
  let all_inputs =
    lazy
      (List.map
         (fun subset ->
           let v = Vectors.bottom n in
           List.iter (fun i -> v.(i) <- Some (Value.int (original_name ~n i))) subset;
           v)
         (Combinat.subsets_of_size j (List.init n Fun.id)))
  in
  let max_inputs () = Lazy.force all_inputs in
  let check ~input ~output =
    ignore input;
    let names = Array.to_list output |> List.filter_map Fun.id in
    let ints =
      List.filter_map
        (fun v -> match v with Value.Int i -> Some i | _ -> None)
        names
    in
    List.length ints = List.length names
    && List.for_all (fun x -> x >= 1 && x <= l) ints
    && List.length (List.sort_uniq Int.compare ints) = List.length ints
  in
  let choose ~input ~output i =
    match input.(i) with
    | None -> invalid_arg "Renaming.choose: non-participant"
    | Some _ ->
      let used =
        Array.to_list output
        |> List.filter_map (Option.map Value.to_int)
      in
      let rec first_free c = if List.mem c used then first_free (c + 1) else c in
      let name = first_free 1 in
      if name > l then invalid_arg "Renaming.choose: name space exhausted";
      Value.int name
  in
  let known_concurrency =
    if l = j then Some 1 else if l >= (2 * j) - 1 then Some n else None
  in
  {
    Task.task_name = Printf.sprintf "(%d,%d)-renaming(n=%d)" j l n;
    arity = n;
    colorless = false;
    max_inputs;
    check;
    choose;
    known_concurrency;
  }

let strong ~n ~j = make ~n ~j ~l:j
