type expectation = Exact of int | At_least of int

type entry = {
  entry_task : Task.t;
  expected : expectation;
  weakest_fd : string;
}

let expected_lower = function Exact k | At_least k -> k

let pp_expectation ppf = function
  | Exact k -> Fmt.pf ppf "%d" k
  | At_least k -> Fmt.pf ppf ">=%d" k

let weakest_fd_of_level ~n level =
  if level >= n then "trivial"
  else if level = 1 then "Omega"
  else Printf.sprintf "anti-Omega-%d" level

let entry ?fd task expected =
  let n = task.Task.arity in
  let weakest_fd =
    match fd with
    | Some f -> f
    | None -> weakest_fd_of_level ~n (expected_lower expected)
  in
  { entry_task = task; expected; weakest_fd }

let standard ~n =
  if n < 4 then invalid_arg "Registry.standard: need n >= 4";
  let set_agreements =
    List.init (n - 1) (fun i ->
        let k = i + 1 in
        entry (Set_agreement.make ~n ~k ()) (Exact k))
  in
  let subset_agreement =
    (* (U, k)-agreement with |U| = k+1 on a fixed subset: same class as
       full k-set agreement by Theorem 7 *)
    let k = 2 in
    entry (Set_agreement.make ~u:[ 0; 1; 2 ] ~n ~k ()) (Exact k)
  in
  let renamings =
    [
      entry (Renaming.strong ~n ~j:2) (Exact 1);
      entry (Renaming.strong ~n ~j:3) (Exact 1);
      entry ~fd:"anti-Omega-2" (Renaming.make ~n ~j:3 ~l:4) (At_least 2);
      entry (Renaming.make ~n ~j:3 ~l:5) (Exact n) (* l >= 2j-1: wait-free *);
    ]
  in
  [
    entry (Trivial_tasks.identity ~n ()) (Exact n);
    entry (Trivial_tasks.constant ~n ~out:7 ()) (Exact n);
  ]
  @ set_agreements @ [ subset_agreement ] @ renamings
  @ [
      entry ~fd:"(open)" (Wsb.make ~n ~j:3) (At_least 2);
      entry (Leader_election.make ~n) (Exact 1);
    ]

let find entries name =
  List.find_opt (fun e -> e.entry_task.Task.task_name = name) entries
