(** Weak symmetry breaking: exactly [j] of [n] processes participate, each
    outputs a bit, and when all [j] have decided the bits must not all be
    equal. One of the "colored" tasks that evaded weakest-failure-detector
    characterization before the EFD framework (§1). *)

val make : n:int -> j:int -> Task.t
(** Requires [2 ≤ j < n]. *)
