lib/tasklib/wsb.ml: Array Combinat Fun List Option Printf Renaming Task Value Vectors
