lib/tasklib/task.ml: Array List Random Value Vectors
