lib/tasklib/set_agreement.ml: Array Combinat Fun Int Lazy List Printf Task Value Vectors
