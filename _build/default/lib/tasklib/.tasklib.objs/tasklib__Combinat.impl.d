lib/tasklib/combinat.ml: List
