lib/tasklib/trivial_tasks.ml: Array Combinat Fun List Option Printf Task Value
