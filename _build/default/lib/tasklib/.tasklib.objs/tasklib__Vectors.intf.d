lib/tasklib/vectors.mli: Format Value
