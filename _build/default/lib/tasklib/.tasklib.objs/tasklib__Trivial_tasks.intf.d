lib/tasklib/trivial_tasks.mli: Task
