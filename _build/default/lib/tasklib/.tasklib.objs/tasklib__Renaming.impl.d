lib/tasklib/renaming.ml: Array Combinat Fun Int Lazy List Option Printf Task Value Vectors
