lib/tasklib/wsb.mli: Task
