lib/tasklib/task.mli: Random Value Vectors
