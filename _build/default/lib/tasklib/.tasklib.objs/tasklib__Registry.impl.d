lib/tasklib/registry.ml: Fmt Leader_election List Printf Renaming Set_agreement Task Trivial_tasks Wsb
