lib/tasklib/leader_election.ml: Array Combinat Fun Int List Option Printf Task Value Vectors
