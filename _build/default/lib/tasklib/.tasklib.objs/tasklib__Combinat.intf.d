lib/tasklib/combinat.mli:
