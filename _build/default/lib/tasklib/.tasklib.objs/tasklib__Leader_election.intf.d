lib/tasklib/leader_election.mli: Task
