lib/tasklib/vectors.ml: Array Fmt Fun List Option Value
