lib/tasklib/registry.mli: Format Task
