lib/tasklib/set_agreement.mli: Task
