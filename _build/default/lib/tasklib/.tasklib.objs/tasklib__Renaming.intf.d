lib/tasklib/renaming.mli: Task
