let rec subsets_of_size k = function
  | [] -> if k = 0 then [ [] ] else []
  | x :: rest ->
    if k = 0 then [ [] ]
    else
      subsets_of_size k rest
      @ List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest)

let rec assignments slots values =
  match slots with
  | [] -> [ [] ]
  | _ :: rest ->
    let tails = assignments rest values in
    List.concat_map (fun v -> List.map (fun tl -> v :: tl) tails) values
