(** Input/output vectors: one optional value per C-process, [None] = ⊥. *)

type t = Value.t option array

val bottom : int -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val participants : t -> int list
(** Indices with non-⊥ entries. *)

val count : t -> int
(** Number of non-⊥ entries. *)

val is_bottom : t -> bool

val is_prefix : t -> t -> bool
(** [is_prefix a b]: [a] has at least one non-⊥ entry and agrees with [b]
    wherever [a] is non-⊥ (the paper's prefix order on vectors). *)

val restrict : t -> int list -> t
(** Keep only the listed indices, ⊥ elsewhere. *)

val set : t -> int -> Value.t -> t
(** Functional update. *)

val proper_prefixes : t -> t list
(** All non-empty strict prefixes (exponential in the participant count —
    small vectors only). *)

val of_list : Value.t option list -> t
val of_ints : int option list -> t
(** Convenience for test fixtures: ints with [None] = ⊥. *)
