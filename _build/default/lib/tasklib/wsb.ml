let make ~n ~j =
  if j < 2 || j >= n then invalid_arg "Wsb.make: need 2 <= j < n";
  let max_inputs () =
    List.map
      (fun subset ->
        let v = Vectors.bottom n in
        List.iter
          (fun i -> v.(i) <- Some (Value.int (Renaming.original_name ~n i)))
          subset;
        v)
      (Combinat.subsets_of_size j (List.init n Fun.id))
  in
  let bits output =
    Array.to_list output |> List.filter_map (Option.map Value.to_int)
  in
  let check ~input ~output =
    ignore input;
    let bs = bits output in
    List.for_all (fun b -> b = 0 || b = 1) bs
    && (List.length bs < j || (List.mem 0 bs && List.mem 1 bs))
  in
  let choose ~input ~output i =
    match input.(i) with
    | None -> invalid_arg "Wsb.choose: non-participant"
    | Some _ ->
      let bs = bits output in
      (* the last decider must break symmetry if everyone so far agreed *)
      if List.length bs = j - 1 && not (List.mem 0 bs && List.mem 1 bs) then
        Value.int (match bs with 0 :: _ -> 1 | _ -> 0)
      else Value.int 0
  in
  {
    Task.task_name = Printf.sprintf "WSB(j=%d,n=%d)" j n;
    arity = n;
    colorless = false;
    max_inputs;
    check;
    choose;
    known_concurrency = None;
  }
