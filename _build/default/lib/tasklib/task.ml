type t = {
  task_name : string;
  arity : int;
  colorless : bool;
  max_inputs : unit -> Vectors.t list;
  check : input:Vectors.t -> output:Vectors.t -> bool;
  choose : input:Vectors.t -> output:Vectors.t -> int -> Value.t;
  known_concurrency : int option;
}

let satisfies t ~input ~output =
  Array.length output = t.arity
  && Array.for_all2
       (fun i o -> not (i = None && o <> None))
       input output
  && t.check ~input ~output

let input_ok t v =
  List.exists (fun m -> Vectors.is_prefix v m) (t.max_inputs ())

let sample_input t rng =
  let all = t.max_inputs () in
  match all with
  | [] -> invalid_arg "Task.sample_input: no inputs"
  | _ -> List.nth all (Random.State.int rng (List.length all))

let sample_prefix t rng ~min_participants =
  let maximal = sample_input t rng in
  let ps = Vectors.participants maximal in
  let min_participants = max 1 (min min_participants (List.length ps)) in
  let keep =
    List.filter
      (fun _ -> Random.State.bool rng)
      ps
  in
  let keep = if List.length keep >= min_participants then keep else ps in
  Vectors.restrict maximal keep

let choice_closure t ~input =
  let out = ref (Vectors.bottom t.arity) in
  List.iter
    (fun i ->
      let v = t.choose ~input ~output:!out i in
      out := Vectors.set !out i v)
    (Vectors.participants input);
  !out
