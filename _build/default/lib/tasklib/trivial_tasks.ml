let full_vectors ~n ~values =
  let value_set = List.map Value.int values in
  Combinat.assignments (List.init n Fun.id) value_set
  |> List.map (fun assignment -> Array.of_list (List.map Option.some assignment))

let identity ?(values = [ 0; 1 ]) ~n () =
  {
    Task.task_name = Printf.sprintf "identity(n=%d)" n;
    arity = n;
    colorless = false;
    max_inputs = (fun () -> full_vectors ~n ~values);
    check =
      (fun ~input ~output ->
        Array.for_all2
          (fun i o -> match o with None -> true | Some _ -> Option.equal Value.equal i o)
          input output);
    choose =
      (fun ~input ~output:_ i ->
        match input.(i) with
        | Some v -> v
        | None -> invalid_arg "identity.choose: non-participant");
    known_concurrency = Some n;
  }

let constant ?(values = [ 0; 1 ]) ~n ~out () =
  {
    Task.task_name = Printf.sprintf "constant-%d(n=%d)" out n;
    arity = n;
    colorless = true;
    max_inputs = (fun () -> full_vectors ~n ~values);
    check =
      (fun ~input:_ ~output ->
        Array.for_all
          (function None -> true | Some v -> Value.equal v (Value.int out))
          output);
    choose = (fun ~input:_ ~output:_ _ -> Value.int out);
    known_concurrency = Some n;
  }
