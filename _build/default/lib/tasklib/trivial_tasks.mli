(** Wait-free solvable reference tasks (concurrency level [n]). *)

val identity : ?values:int list -> n:int -> unit -> Task.t
(** Every participant outputs its own input. Inputs range over [values]
    (default [0; 1]). *)

val constant : ?values:int list -> n:int -> out:int -> unit -> Task.t
(** Every participant outputs the constant [out]. *)
