(** (j, ℓ)-renaming (§5): at most [j] of the [n] processes participate, each
    carrying a distinct original name from a large namespace, and every
    participant must acquire a distinct new name in [1..ℓ].

    Strong renaming is [ℓ = j]. Known concurrency metadata follows §5:
    level 1 for [ℓ = j] (Theorem 12: not 2-concurrently solvable), level [n]
    for [ℓ ≥ 2j − 1] (wait-free solvable, Attiya et al.), unknown otherwise
    (lower bound [ℓ − j + 1] by Theorem 15; upper bound open [8]). *)

val make : n:int -> j:int -> l:int -> Task.t
(** Requires [1 ≤ j ≤ l] and [j < n]. *)

val strong : n:int -> j:int -> Task.t
(** (j, j)-renaming. *)

val original_name : n:int -> int -> int
(** The injective original name carried by C-process [i] in our instances
    (inputs are these names as [Value.Int]). *)
