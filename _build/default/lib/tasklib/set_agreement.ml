let distinct_values output =
  let vals =
    Array.to_list output
    |> List.filter_map Fun.id
    |> List.sort_uniq Value.compare
  in
  vals

let make ?u ?values ~n ~k () =
  if k < 1 then invalid_arg "Set_agreement.make: k >= 1 required";
  let u = match u with Some u -> List.sort_uniq Int.compare u | None -> List.init n Fun.id in
  if List.exists (fun i -> i < 0 || i >= n) u then
    invalid_arg "Set_agreement.make: U out of range";
  let values = match values with Some vs -> vs | None -> List.init (k + 1) Fun.id in
  if values = [] then invalid_arg "Set_agreement.make: empty value domain";
  let value_set = List.map Value.int values in
  let full_u = List.length u = n in
  let name =
    if full_u then Printf.sprintf "%d-set-agreement(n=%d)" k n
    else Printf.sprintf "(U,%d)-agreement(|U|=%d,n=%d)" k (List.length u) n
  in
  let all_inputs =
    lazy
      (List.map
         (fun assignment ->
           let v = Vectors.bottom n in
           List.iter2 (fun i value -> v.(i) <- Some value) u assignment;
           v)
         (Combinat.assignments u value_set))
  in
  let max_inputs () = Lazy.force all_inputs in
  let check ~input ~output =
    let input_values =
      Array.to_list input |> List.filter_map Fun.id
      |> List.sort_uniq Value.compare
    in
    let out_values = distinct_values output in
    List.length out_values <= k
    && List.for_all (fun v -> List.exists (Value.equal v) input_values) out_values
  in
  let choose ~input ~output i =
    match input.(i) with
    | None -> invalid_arg "Set_agreement.choose: non-participant"
    | Some own -> (
      match distinct_values output with
      | existing :: _ -> existing
      | [] -> own)
  in
  {
    Task.task_name = name;
    arity = n;
    colorless = true;
    max_inputs;
    check;
    choose;
    known_concurrency = Some (if List.length u <= k then n else k);
  }

let consensus ?u ?values ~n () = make ?u ?values ~n ~k:1 ()
