(** Empirical task classification (Theorem 10): for each task in the
    registry, find the largest concurrency level at which its reference
    algorithm passes every sampled run, and the first level at which an
    adversarial witness appears. Together with the registry's expected
    level this regenerates the paper's hierarchy: a task of level [k] has
    weakest failure detector ¬Ωk (Ω for k = 1, none for k = n). *)

type measurement = {
  m_task_name : string;
  m_expected : Tasklib.Registry.expectation;
  m_weakest_fd : string;
  m_passes_up_to : int;  (** max level with all sampled runs ok (0 = none) *)
  m_breaks_at : int option;  (** first level with a witness run, if any *)
  m_levels : (int * bool) list;  (** per tested level: all runs passed? *)
}

val solvable_at :
  ?seeds:int list ->
  ?budget:int ->
  task:Tasklib.Task.t ->
  algo:Algorithm.t ->
  k:int ->
  unit ->
  bool
(** Do all sampled k-concurrent runs of [algo] satisfy [task]? Runs use a
    reduced default budget (150k steps): algorithms run beyond their
    concurrency level may deadlock, and a deadlocked run should fail fast. *)

val measure :
  ?seeds:int list ->
  ?budget:int ->
  max_level:int ->
  task:Tasklib.Task.t ->
  algo:Algorithm.t ->
  expected:Tasklib.Registry.expectation ->
  weakest_fd:string ->
  unit ->
  measurement

val reference_algorithm : Tasklib.Task.t -> Algorithm.t
(** The algorithm battery: echo/const for the wait-free tasks, the adoption
    algorithm for (U,k)-agreement, Figure 4 for renaming, the 2-concurrent
    WSB algorithm, the Proposition-1 generic solver for leader election. *)

val table :
  ?seeds_per_level:int -> ?max_level:int -> n:int -> unit -> measurement list
(** Measure the whole standard registry for [n] C-processes. *)

val pp_measurement : Format.formatter -> measurement -> unit
val pp_table : Format.formatter -> measurement list -> unit

val consistent : measurement -> bool
(** Does the measurement agree with the expectation? Exact k: passes up to
    at least k and (when k < max tested level) breaks above it is allowed
    but not below; At_least k: passes up to at least k. *)
