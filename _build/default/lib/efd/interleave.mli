(** The constructive direction of Proposition 2: if [n ≥ m] and a task is
    solvable with the trivial failure detector, it is solvable by a
    restricted algorithm — because each C-process [p_i] can execute its
    synchronization partner [q_i]'s automaton itself, alternating one step
    of each; the resulting runs emulate runs of the original algorithm in
    the failure pattern where the unemulated S-processes are crashed.

    Mechanically, both automata run as coroutines in a nested runtime
    sharing the outer memory; after every inner step the outer process
    burns one step ([yield]), so the emulation preserves one-memory-access-
    per-step atomicity. Only trivial-FD algorithms can be transformed
    (an inner query observes the trivial detector, as required). *)

val restricted_of : Algorithm.t -> Algorithm.t
(** [restricted_of a]: the restricted algorithm in which [p_i] alternates
    steps of [a]'s C-automaton [i] and S-automaton [i]. The S-automata of
    the result take only null steps. *)
