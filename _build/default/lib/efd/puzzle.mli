(** Theorem 7 ("the puzzle"): a failure detector [D] solving
    (U, k)-agreement for one fixed set [U] of k+1 C-processes solves
    (Π, k)-agreement among all [n].

    The composition implemented here is the proof's final induction step,
    concretely instantiated: all [n] C-processes use the Figure-2 layer
    ({!Kcodes}) with vector-Ω(k+1) to simulate the k+1 C-codes of [A] — the
    machine-consensus (U, k)-agreement algorithm ({!Machine_ksa}) — while
    the {e real} S-processes run [A]'s S-part against [D] = vector-Ωk,
    reading the simulated codes' published states and answering their
    consensus queries through the environment registers. Each simulated
    code proposes, colorlessly, the smallest-index input present (the proof
    sketch: "each simulating process proposes its input value … for each
    simulated process"). A simulator returns the first simulated decision
    it derives; at most [k] distinct values exist ((U, k)-agreement among
    the simulated codes).

    Instantiation shortcut (documented in DESIGN.md): the proof obtains
    vector-Ω(k+1) {e from} [D] via Proposition 6 and the Theorem-8
    extraction; here the harness draws both detectors directly
    ({!demo_fd}), and the extraction is exercised separately as experiment
    E7. *)

val make :
  ?max_steps:int ->
  ?outer_rounds:int ->
  ?inner_rounds:int ->
  k:int ->
  unit ->
  Algorithm.t
(** Solves [(Π, k)]-set agreement. The drawn FD history must output pairs
    [(vector-Ω(k+1) output, vector-Ωk output)] — see {!demo_fd}. *)

val demo_fd : ?max_stab:int -> k:int -> unit -> Fdlib.Fd.t
(** [Fd.pair] of vector-Ω(k+1) and vector-Ωk. *)
