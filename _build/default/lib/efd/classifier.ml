module Failure = Simkit.Failure
module Task = Tasklib.Task
module Registry = Tasklib.Registry

type measurement = {
  m_task_name : string;
  m_expected : Registry.expectation;
  m_weakest_fd : string;
  m_passes_up_to : int;
  m_breaks_at : int option;
  m_levels : (int * bool) list;
}

let default_seeds = List.init 25 (fun i -> i + 1)

(* the maximal input vector with the most distinct values — the inputs most
   likely to expose a concurrency-level violation *)
let spiciest_input task =
  let distinct v =
    Array.to_list v |> List.filter_map Fun.id
    |> List.sort_uniq Value.compare |> List.length
  in
  match task.Task.max_inputs () with
  | [] -> invalid_arg "Classifier: no inputs"
  | v :: rest ->
    List.fold_left (fun best w -> if distinct w > distinct best then w else best) v rest

let solvable_at ?(seeds = default_seeds) ?(budget = 150_000) ~task ~algo ~k () =
  let sweep_ok policy =
    let s =
      Run.sweep ~budget ~policy ~task ~algo ~fd:Fdlib.Fd.trivial
        ~env:(Failure.crash_free 1)
        ~seeds ()
    in
    s.Run.passed = s.Run.total
  in
  let crafted_ok =
    (* near-lockstep k-concurrent run on the most-distinct input *)
    List.for_all
      (fun seed ->
        let r =
          Run.execute ~budget
            ~policy:(Run.k_concurrent_policy k)
            ~task ~algo ~fd:Fdlib.Fd.trivial
            ~pattern:(Failure.failure_free 1)
            ~input:(spiciest_input task) ~seed ()
        in
        Run.ok r)
      (List.filteri (fun i _ -> i < 5) seeds)
  in
  crafted_ok
  && sweep_ok (Run.k_concurrent_policy k)
  && sweep_ok (Run.k_concurrent_uniform_policy k)

let measure ?seeds ?budget ~max_level ~task ~algo ~expected ~weakest_fd () =
  let levels =
    List.map
      (fun k -> (k, solvable_at ?seeds ?budget ~task ~algo ~k ()))
      (List.init max_level (fun i -> i + 1))
  in
  (* longest prefix 1..k of consecutively passing levels *)
  let rec passes_prefix acc = function
    | (k, true) :: rest when k = acc + 1 -> passes_prefix k rest
    | _ -> acc
  in
  let breaks_at = List.find_opt (fun (_, ok) -> not ok) levels in
  {
    m_task_name = task.Task.task_name;
    m_expected = expected;
    m_weakest_fd = weakest_fd;
    m_passes_up_to = passes_prefix 0 levels;
    m_breaks_at = Option.map fst breaks_at;
    m_levels = levels;
  }

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Reference algorithms by task family, recognized from the task name. *)
let reference_algorithm task =
  let name = task.Task.task_name in
  if contains_sub name "identity" then Kconc_tasks.echo ()
  else if contains_sub name "constant-" then
    Kconc_tasks.const (Value.int (Scanf.sscanf name "constant-%d(" (fun x -> x)))
  else if contains_sub name "WSB" then
    Wsb_algo.two_concurrent ~j:(Scanf.sscanf name "WSB(j=%d" (fun x -> x))
  else if contains_sub name "leader-election" then One_concurrent.make task
  else if contains_sub name "renaming" then Renaming_algos.fig4 ()
  else Kconc_tasks.adoption ()

let table ?(seeds_per_level = 20) ?max_level ~n () =
  let entries = Registry.standard ~n in
  let seeds = List.init seeds_per_level (fun i -> i + 1) in
  let max_level = Option.value max_level ~default:n in
  List.map
    (fun e ->
      let task = e.Registry.entry_task in
      measure ~seeds ~max_level ~task
        ~algo:(reference_algorithm task)
        ~expected:e.Registry.expected ~weakest_fd:e.Registry.weakest_fd ())
    entries

let pp_measurement ppf m =
  let breaks =
    match m.m_breaks_at with
    | None -> "-"
    | Some k -> string_of_int k
  in
  let expected = Fmt.str "%a" Registry.pp_expectation m.m_expected in
  Fmt.pf ppf "%-34s expected %-4s measured-ok<=%d breaks@%-3s weakest-fd %s"
    m.m_task_name expected m.m_passes_up_to breaks m.m_weakest_fd

let pp_table ppf ms =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:(Fmt.any "@,") pp_measurement) ms

let consistent m =
  let tested = List.length m.m_levels in
  match m.m_expected with
  | Registry.At_least k -> m.m_passes_up_to >= min k tested
  | Registry.Exact k ->
    m.m_passes_up_to >= min k tested
    && (match m.m_breaks_at with None -> true | Some b -> b > k)
