module Memory = Simkit.Memory
module Runtime = Simkit.Runtime
module Schedule = Simkit.Schedule
module Failure = Simkit.Failure
module Pid = Simkit.Pid
module Task = Tasklib.Task
module Vectors = Tasklib.Vectors

type report = {
  p_input : Vectors.t;
  p_output : Vectors.t;
  p_task_ok : bool;
  p_obliged_decided : bool;
  p_steps : int;
}

let ok r = r.p_task_ok && r.p_obliged_decided

let pp_report ppf r =
  Fmt.pf ppf "@[<v>input   %a@,output  %a@,task ok %b@,obliged %b@,steps   %d@]"
    Vectors.pp r.p_input Vectors.pp r.p_output r.p_task_ok r.p_obliged_decided
    r.p_steps

let execute ?(budget = 400_000) ~task ~algo ~fd ~pattern ~input ~seed () =
  let n_c = task.Task.arity in
  let n_s = pattern.Failure.n_s in
  if n_c <> n_s then invalid_arg "Conventional.execute: needs n_c = n_s";
  let mem = Memory.create () in
  let input_regs = Memory.alloc mem n_c in
  let inst = algo.Algorithm.make { Algorithm.mem; n_c; n_s; input_regs } in
  let c_code i () =
    match input.(i) with
    | None -> ()
    | Some v ->
      Runtime.Op.write input_regs.(i) v;
      inst.Algorithm.c_run i v
  in
  let rt =
    Runtime.create
      {
        Runtime.n_c;
        n_s;
        memory = mem;
        pattern;
        history = Fdlib.Fd.draw fd pattern ~seed;
        record_trace = false;
      }
      ~c_code
      ~s_code:(fun i () -> inst.Algorithm.s_run i)
  in
  let participants = Vectors.participants input in
  let rng = Random.State.make [| seed; 0xc0 |] in
  let base =
    Schedule.shuffled_rounds
      ~only:(List.map Pid.c participants @ Pid.all_s n_s)
      ~n_c ~n_s rng
  in
  (* personification: p_i stops being scheduled when q_i crashes *)
  let policy =
    Schedule.filtered
      (fun rt p ->
        match p with
        | Pid.S _ -> true
        | Pid.C i -> not (Failure.crashed pattern ~time:(Runtime.time rt) i))
      base
  in
  let obliged =
    List.filter (fun i -> Failure.is_correct pattern i) participants
  in
  let outcome =
    Schedule.run rt policy ~budget
      ~stop_when:(fun rt ->
        List.for_all (fun i -> Runtime.decision rt i <> None) obliged)
  in
  let actual_input =
    Array.mapi (fun i v -> if Runtime.participating rt i then v else None) input
  in
  let output = Runtime.decisions rt in
  let report =
    {
      p_input = actual_input;
      p_output = output;
      p_task_ok = Task.satisfies task ~input:actual_input ~output;
      p_obliged_decided =
        List.for_all (fun i -> Runtime.decision rt i <> None) obliged;
      p_steps = outcome.Schedule.total_steps;
    }
  in
  Runtime.destroy rt;
  report
