module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op
module Schedule = Simkit.Schedule
module Pid = Simkit.Pid

type t = {
  adv_name : string;
  n : int;
  allowed : int list -> bool;
  sample_live : Random.State.t -> participants:int list -> int list;
}

let t_resilient ~n ~t =
  if t < 0 || t >= n then invalid_arg "Resilience.t_resilient";
  {
    adv_name = Printf.sprintf "%d-resilient(n=%d)" t n;
    n;
    allowed =
      (fun live ->
        List.length live >= 1 && List.for_all (fun i -> i >= 0 && i < n) live);
    sample_live =
      (fun rng ~participants ->
        let m = List.length participants in
        let stalls = min t (m - 1) in
        let k = m - Random.State.int rng (stalls + 1) in
        let arr = Array.of_list participants in
        for i = Array.length arr - 1 downto 1 do
          let j = Random.State.int rng (i + 1) in
          let tmp = arr.(i) in
          arr.(i) <- arr.(j);
          arr.(j) <- tmp
        done;
        Array.to_list (Array.sub arr 0 (max 1 k)));
  }

let policy adv ~after ~participants ~n_c ~n_s ~rng =
  let idx = List.map Pid.index participants in
  let live = adv.sample_live rng ~participants:idx in
  let victims =
    List.filter (fun i -> not (List.mem i live)) idx |> List.map Pid.c
  in
  let base =
    Schedule.shuffled_rounds ~only:(participants @ Pid.all_s n_s) ~n_c ~n_s rng
  in
  match victims with
  | [] -> base
  | _ -> Schedule.seq base ~steps:after (Schedule.starve victims ~until:max_int base)

let waiting_for ~t_stalls =
  Algorithm.restricted
    ~name:(Printf.sprintf "resilient-ksa(t=%d)" t_stalls)
    (fun ctx ->
      fun _i _input ->
        (* inputs are published by the harness; wait for enough of them *)
        let regs = ctx.Algorithm.input_regs in
        let rec wait () =
          let cells = Op.snapshot regs in
          let seen =
            Array.to_list cells |> List.filter (fun c -> not (Value.is_unit c))
          in
          (* participants are unknown to the code; the classic algorithm
             assumes full participation of the task's arity *)
          if List.length seen >= Array.length regs - t_stalls then
            let min_v =
              List.fold_left
                (fun acc v -> if Value.compare v acc < 0 then v else acc)
                (List.hd seen) seen
            in
            Op.decide min_v
          else wait ()
        in
        wait ())

let resilient_ksa () = waiting_for ~t_stalls:1
