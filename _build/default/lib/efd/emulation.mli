(** Distributed failure-detector reductions (§2.2): "D' is weaker than D"
    is witnessed by a reduction algorithm in which the S-processes query D,
    communicate through shared memory, and maintain registers
    [D'-output_i] whose evolution forms a legal D' history. C-processes
    take only null steps.

    The harness runs a reduction and records the emitted outputs as a
    tabulated history for the {!Fdlib.Props} checkers — the finite-run
    counterpart of the reduction's correctness. *)

type ops = {
  query : unit -> Value.t;  (** one D query (one step) *)
  publish : Value.t -> unit;  (** write my shared slot (one step) *)
  collect : unit -> Value.t array;  (** snapshot everyone's slots (one step) *)
  emit : Value.t -> unit;  (** write my D'-output register (one step) *)
}

type reduction = {
  red_name : string;
  red_make : me:int -> n_s:int -> ops -> unit -> unit;
      (** builds the S-process's iterated loop body (local state lives in
          the returned closure) *)
}

type result = {
  em_outputs : Value.t array array;
      (** [em_outputs.(q).(tau)] — emitted D'-output of [q_q] at step tau *)
  em_steps : int;
}

val run :
  ?budget:int ->
  fd:Fdlib.Fd.t ->
  pattern:Simkit.Failure.pattern ->
  seed:int ->
  reduction ->
  result

val omega_from_eventually_strong : reduction
(** The classic suspicion-counting emulation Ω ⇐ ◇S: every process counts
    how often it has suspected each process, publishes its counter vector,
    and outputs the argmin of the summed published counters (ties to the
    smallest id). The never-again-suspected correct process has bounded
    count everywhere while forever-suspected ones grow without bound, so
    the argmin stabilizes on a correct process at every correct process. *)

val identity_of : name:string -> reduction
(** Emit the raw D output — the trivial reduction D ⇐ D (harness tests). *)

val local : name:string -> (n_s:int -> Value.t -> Value.t) -> reduction
(** Lift a per-query output transformation (a {!Fdlib.Convert}-style local
    reduction) into a distributed reduction. *)
