(** Theorem 8 / Figure 1: extracting ¬Ωk from any failure detector [D] that
    solves a task [T] that is not (k+1)-concurrently solvable.

    Every S-process runs two components. First, it periodically queries its
    [D] module, grows a CHT sample DAG ({!Fdlib.Dag}) and exchanges it with
    the other S-processes through shared memory. Second, it locally
    simulates bounded (k+1)-concurrent runs of [Asim] — the restricted
    algorithm in which the C-part of [A] (the algorithm solving [T] with
    [D]) runs normally while [A]'s S-codes execute inside the simulation,
    their queries fed from DAG vertices chosen causally after every vertex
    already consumed. The emulated ¬Ωk output is the set of the last [n−k]
    S-codes that received turns in the currently simulated run: in a
    never-deciding branch the starved S-codes are eventually never output,
    and at least one of them is correct (else the simulated run would be
    fair and [A] would decide) — the ¬Ωk property.

    Substitutions (DESIGN.md): (1) the BG-simulation of S-codes by the
    C-part is replaced by a two-phase {e donation} discipline with the same
    observable accounting — an S-code steps only inside a donation opened
    and later closed by one corridor C-process, so a stalled C-process pins
    exactly one S-code; (2) the corridor depth-first search is steered: the
    fair branch first, then for each S-code [q̂] the branch that stalls a
    donor mid-donation to [q̂] — the first never-deciding branch determines
    the output (any fixed deterministic exploration order is admissible);
    (3) explorations are re-run from scratch on a sampling schedule, which
    plays the role of Figure 1's adoption rule: outputs become a
    deterministic function of the (converging) DAGs. *)

type result = {
  x_outputs : Value.t array array;
      (** [x_outputs.(q).(tau)] — emulated ¬Ωk output of [q_q] at sample
          time [tau] (constant between S-steps); table shape fits
          {!Fdlib.Props}. *)
  x_samples : int;  (** DAG samples taken per correct S-process (max) *)
  x_explorations : int;  (** exploration rounds performed (max) *)
}

val run :
  ?outer_budget:int ->
  ?sample_period:int ->
  ?explore_budget:int ->
  ?max_samples:int ->
  k:int ->
  fd:Fdlib.Fd.t ->
  algo:Algorithm.t ->
  inputs:Tasklib.Vectors.t ->
  n_c:int ->
  pattern:Simkit.Failure.pattern ->
  seed:int ->
  unit ->
  result
(** Drive one run of the reduction algorithm: C-processes take null steps;
    S-processes sample [fd], exchange DAGs and explore. [inputs] is the
    input vector used for the simulated runs of [A] (Figure 1 iterates all
    input vectors; the harness samples them across seeds). *)

(** {1 Exposed for tests} *)

val simulate_branch :
  algo:Algorithm.t ->
  inputs:Tasklib.Vectors.t ->
  n_c:int ->
  n_s:int ->
  k:int ->
  dag:Fdlib.Dag.t ->
  stall_on:int option ->
  budget:int ->
  bool * int list
(** One deterministic local simulation of [Asim]: corridor of k+1
    C-processes (smallest ids first, decided ones replaced), S-codes gated
    by donations and DAG vertices; [stall_on = Some q̂] stalls the first
    donor that opens a donation to [q̂], forever. Returns (all current
    participants decided?, the last [n−k] distinct turn-taking S-codes). *)
