(** The §2.2 observation: with [n] S-processes, [(Π^C, n)]-set agreement is
    solvable in every environment with the {e trivial} failure detector.
    Each S-process waits for some C-process to write an input and copies it
    to the shared variable [V]; each C-process waits for [V] and decides its
    content. Since at least one S-process is correct, [V] is eventually
    written; since only [n] S-processes write it (once each), at most [n]
    distinct values are ever decided. *)

val make : unit -> Algorithm.t
(** Solves [Tasklib.Set_agreement.make ~n:(arity) ~k:n_s ()] in every
    environment, for any [fd] (the detector is never queried). *)
