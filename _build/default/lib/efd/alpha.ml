module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op

(* R.(p) = (rr, wr, val): highest promised round, highest accepted round,
   accepted value. Single-writer per proposer, atomic. *)
type t = { regs : Memory.reg array; dec : Memory.reg }

let create mem ~n_proposers =
  if n_proposers <= 0 then invalid_arg "Alpha.create";
  { regs = Memory.alloc mem n_proposers; dec = Memory.alloc1 mem () }

type outcome = Commit of Value.t | Abort of Value.t option

let decode cell =
  if Value.is_unit cell then (0, 0, None)
  else
    let rr, wr, v = Value.to_triple cell in
    (Value.to_int rr, Value.to_int wr, Value.to_option v)

let encode (rr, wr, v) =
  Value.triple (Value.int rr) (Value.int wr) (Value.option v)

let latest_accepted cells =
  Array.fold_left
    (fun (best_wr, best_v) cell ->
      let _, wr, v = decode cell in
      if wr > best_wr then (wr, v) else (best_wr, best_v))
    (0, None) cells

let propose t ~me ~round v =
  (* phase 1: promise my own register to [round], then collect *)
  let my_rr, my_wr, my_v = decode (Op.read t.regs.(me)) in
  Op.write t.regs.(me) (encode (max my_rr round, my_wr, my_v));
  let cells = Op.snapshot t.regs in
  let max_rr =
    Array.fold_left (fun acc c -> let rr, _, _ = decode c in max acc rr) 0 cells
  in
  let max_wr =
    Array.fold_left (fun acc c -> let _, wr, _ = decode c in max acc wr) 0 cells
  in
  let _, hint = latest_accepted cells in
  if max_rr > round || max_wr > round then Abort hint
  else begin
    (* adopt the latest accepted value, if any *)
    let value = match hint with Some u -> u | None -> v in
    (* phase 2: accept at [round], then collect again *)
    Op.write t.regs.(me) (encode (round, round, Some value));
    let cells = Op.snapshot t.regs in
    let max_rr =
      Array.fold_left (fun acc c -> let rr, _, _ = decode c in max acc rr) 0 cells
    in
    if max_rr > round then
      let _, hint = latest_accepted cells in
      Abort hint
    else begin
      Op.write t.dec value;
      Commit value
    end
  end

let decided t =
  let d = Op.read t.dec in
  if Value.is_unit d then None else Some d
