module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op

(* Suggestion cells: Unit (not arrived) or (name, undecided?). *)
type shared = { sug : Memory.reg array }

let fig4_shared ctx = { sug = Memory.alloc ctx.Algorithm.mem ctx.Algorithm.n_c }

type phase = Suggest | Inspect
type client = { sh : shared; me : int; mutable s : int; mutable phase : phase }
type pump = DecidedName of int | Pending

let fig4_client sh ~me = { sh; me; s = 1; phase = Suggest }

let decode_cell c =
  if Value.is_unit c then None
  else
    let s, b = Value.to_pair c in
    Some (Value.to_int s, Value.to_bool b)

let nth_free ~taken r =
  let rec go candidate r =
    if List.mem candidate taken then go (candidate + 1) r
    else if r = 1 then candidate
    else go (candidate + 1) (r - 1)
  in
  go 1 r

let fig4_pump cl =
  match cl.phase with
  | Suggest ->
    Op.write cl.sh.sug.(cl.me) (Value.pair (Value.int cl.s) (Value.bool true));
    cl.phase <- Inspect;
    Pending
  | Inspect ->
    let cells = Op.snapshot cl.sh.sug in
    let entries =
      Array.to_list (Array.mapi (fun l c -> (l, decode_cell c)) cells)
    in
    let conflict =
      List.exists
        (fun (l, c) ->
          match c with Some (s, _) -> l <> cl.me && s = cl.s | None -> false)
        entries
    in
    if conflict then begin
      let undecided =
        List.filter_map
          (fun (l, c) ->
            match c with Some (_, true) -> Some l | _ -> None)
          entries
      in
      let rank =
        1 + List.length (List.filter (fun l -> l < cl.me) undecided)
      in
      let taken =
        List.filter_map
          (fun (l, c) ->
            match c with Some (s, _) when l <> cl.me -> Some s | _ -> None)
          entries
      in
      cl.s <- nth_free ~taken rank;
      cl.phase <- Suggest;
      Pending
    end
    else begin
      Op.write cl.sh.sug.(cl.me) (Value.pair (Value.int cl.s) (Value.bool false));
      DecidedName cl.s
    end

let fig4 () =
  Algorithm.restricted ~name:"fig4-renaming" (fun ctx ->
      let sh = fig4_shared ctx in
      fun i _input ->
        let cl = fig4_client sh ~me:i in
        let rec loop () =
          match fig4_pump cl with
          | DecidedName nm -> Op.decide (Value.int nm)
          | Pending -> loop ()
        in
        loop ())

let fig3 ~j =
  Algorithm.restricted ~name:(Printf.sprintf "fig3-1-resilient-renaming(j=%d)" j)
    (fun ctx ->
      let sh = fig4_shared ctx in
      let r_regs = Memory.alloc ctx.Algorithm.mem ctx.Algorithm.n_c in
      fun i _input ->
        Op.write r_regs.(i) (Value.int 1);
        let cl = fig4_client sh ~me:i in
        let rec loop () =
          let cells = Op.snapshot r_regs in
          let s_all =
            List.filter
              (fun l -> not (Value.is_unit cells.(l)))
              (List.init (Array.length cells) Fun.id)
          in
          let s_undecided =
            List.filter (fun l -> Value.to_int cells.(l) = 1) s_all
          in
          let gate =
            match s_undecided with
            | [] -> false
            | min1 :: rest ->
              let min2 = match rest with m :: _ -> m | [] -> min1 in
              let np = List.length s_all in
              (np = j && (i = min1 || i = min2)) || (np = j - 1 && i = min1)
          in
          if gate then
            match fig4_pump cl with
            | DecidedName nm ->
              Op.write r_regs.(i) (Value.int 0);
              Op.decide (Value.int nm)
            | Pending -> loop ()
          else loop ()
        in
        loop ())
