(** The paper's renaming algorithms (§5, Appendix D).

    {b Figure 4} — the k-concurrent (j, j+k−1)-renaming algorithm: every
    process repeatedly suggests a name (initially 1), checks for conflicts
    by snapshotting all suggestions, and on conflict re-suggests the [r]-th
    free name where [r] is its rank among the not-yet-decided suggesters.
    In a k-concurrent run the rank is at most [k] and at most [j−1] names
    are taken by others, so names stay within [1..j+k−1]; run at higher
    concurrency it may overflow that range (which the {!Adversary} uses to
    witness Theorem 12 for strong renaming, ℓ = j).

    {b Figure 3} — the 1-resilient strong j-renaming wrapper: at most [j]
    processes participate; a process takes a step of the underlying
    2-concurrent algorithm only while it is among the two smallest-id
    undecided participants (or the single smallest when only [j−1]
    participate). The paper uses it inside the Theorem-12 impossibility
    proof; we run it over the Figure-4 algorithm, yielding 1-resilient
    (j, j+1)-renaming. *)

type shared
(** The suggestion board shared by all Figure-4 clients of a run. *)

val fig4_shared : Algorithm.ctx -> shared

type client
(** Pump-style Figure-4 client ("one more step of A" = one pump). *)

val fig4_client : shared -> me:int -> client

type pump = DecidedName of int | Pending

val fig4_pump : client -> pump
(** One suggest/inspect iteration (3 steps). *)

val fig4 : unit -> Algorithm.t
(** The restricted Figure-4 algorithm: pumps until decided. Solves
    (j, j+k−1)-renaming in k-concurrent runs, for every k. *)

val fig3 : j:int -> Algorithm.t
(** The restricted Figure-3 wrapper over Figure 4. With at most [j]
    participants of which at least [j−1] keep taking steps, every live
    participant decides a distinct name in [1..j+1]. *)
