module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op
module Machine = Bglib.Machine
module Machine_consensus = Bglib.Machine_consensus

type h = {
  machines : Machine.t array;
  env_regs : Memory.reg array;
  states : Memory.reg array;
}

let create mem ~machines ~env_regs =
  let n = Array.length machines in
  let states = Memory.alloc mem n in
  Array.iteri (fun i m -> Memory.write mem states.(i) m.Machine.m_init) machines;
  { machines; env_regs; states }

let state_regs h = h.states

let step_machine h ~me =
  let snap = Op.snapshot (Array.append h.states h.env_regs) in
  let n = Array.length h.states in
  let states = Array.sub snap 0 n in
  let env = Array.sub snap n (Array.length h.env_regs) in
  let m = h.machines.(me) in
  let next = m.Machine.m_step ~me ~states ~env in
  Op.write h.states.(me) next;
  m.Machine.m_decided next

let run_machine h ~me =
  let rec loop () =
    match step_machine h ~me with Some v -> v | None -> loop ()
  in
  loop ()

let read_states h = Op.snapshot h.states

let serve_consensus mc ~states ~env_regs ~leaders ~me =
  let queries = Machine_consensus.pending_queries ~states in
  List.iter
    (fun (j, r, est) ->
      if j < Array.length leaders && leaders.(j) = me then begin
        let slot = Machine_consensus.answer_slot mc ~j ~r in
        let reg = env_regs.(slot) in
        if Value.is_unit (Op.read reg) then Op.write reg est
      end)
    queries

