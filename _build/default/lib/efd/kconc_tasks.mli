(** Restricted algorithms that are correct at bounded concurrency — the
    concrete "algorithm A" instances plugged into the Theorem-9 machinery
    and the {!Classifier}. *)

val adoption : unit -> Algorithm.t
(** The k-concurrent set-agreement algorithm (one algorithm for every k):
    snapshot the decided-values board; adopt the first value present, or
    publish-and-decide your own input if the board is empty. In any
    k-concurrent run the processes that see an empty board are pairwise
    concurrent-undecided, hence (Helly) simultaneous, hence at most [k] —
    so at most [k] distinct values are decided. Solves k-set agreement in
    every k-concurrent run; violates it at concurrency k+1 (the
    {!Adversary} finds witnesses). *)

val echo : unit -> Algorithm.t
(** Decide your own input — wait-free; solves the identity task. *)

val const : Value.t -> Algorithm.t
(** Decide a constant — wait-free. *)
