module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op
module Machine = Bglib.Machine

type t = {
  kc_k : int;
  n_sims : int;
  max_steps : int;
  machines : Machine.t array;
  env_regs : Memory.reg array;
  cells : Memory.reg array;  (** [j * (max_steps+1) + l] = state after l transitions *)
  r_regs : Memory.reg array;  (** simulator participation *)
  cons : Leader_consensus.t array;  (** [j * max_steps + (l-1)] decides transition l *)
}

let cell t j l = t.cells.((j * (t.max_steps + 1)) + l)
let instance t j l = t.cons.((j * t.max_steps) + (l - 1))

let create mem ~machines ~env_regs ~n_sims ?(max_steps = 400) ?(max_rounds = 64)
    () =
  let k = Array.length machines in
  if k = 0 || n_sims <= 0 then invalid_arg "Kcodes.create";
  let cells = Memory.alloc mem (k * (max_steps + 1)) in
  Array.iteri
    (fun j m -> Memory.write mem cells.(j * (max_steps + 1)) m.Machine.m_init)
    machines;
  {
    kc_k = k;
    n_sims;
    max_steps;
    machines;
    env_regs;
    cells;
    r_regs = Memory.alloc mem n_sims;
    cons =
      Array.init (k * max_steps) (fun _ ->
          Leader_consensus.create mem ~n_c:n_sims ~max_rounds);
  }

let k t = t.kc_k

type sim = {
  kc : t;
  me : int;
  known_step : int array;  (** transitions known per machine *)
  known_state : Value.t array;
  client : Leader_consensus.client option array;
  mutable dead : bool;
}

let make_sim kc ~me =
  if me < 0 || me >= kc.n_sims then invalid_arg "Kcodes.make_sim";
  {
    kc;
    me;
    known_step = Array.make kc.kc_k 0;
    known_state = Array.map (fun m -> m.Machine.m_init) kc.machines;
    client = Array.make kc.kc_k None;
    dead = false;
  }

let register sim = Op.write sim.kc.r_regs.(sim.me) (Value.int 1)
let depart sim = Op.write sim.kc.r_regs.(sim.me) (Value.int 0)
let states sim = Array.copy sim.known_state
let steps_known sim = Array.copy sim.known_step
let exhausted sim = sim.dead

(* Read forward from the known cell position; cells fill in order. *)
let refresh sim j =
  let t = sim.kc in
  let rec forward () =
    let next = sim.known_step.(j) + 1 in
    if next <= t.max_steps then begin
      let v = Op.read (cell t j next) in
      if not (Value.is_unit v) then begin
        sim.known_step.(j) <- next;
        sim.known_state.(j) <- v;
        sim.client.(j) <- None;
        forward ()
      end
    end
  in
  forward ()

(* Evaluate the proposal for machine j's next transition: one atomic
   snapshot over all cells + env (Figure 2 line 19), own position taken
   from the agreed state just refreshed. *)
let propose sim j =
  let t = sim.kc in
  let cells_snap = Op.snapshot t.cells in
  let env_snap = Op.snapshot t.env_regs in
  let latest j' =
    (* newest non-unit cell of machine j' within the snapshot *)
    let rec scan l best =
      if l > t.max_steps then best
      else
        let v = cells_snap.((j' * (t.max_steps + 1)) + l) in
        if Value.is_unit v then best else scan (l + 1) v
    in
    scan 0 t.machines.(j').Machine.m_init
  in
  let states = Array.init t.kc_k latest in
  states.(j) <- sim.known_state.(j);
  t.machines.(j).Machine.m_step ~me:j ~states ~env:env_snap

(* Leader duty under the <= k participants rule (Figure 2, Task 2). *)
let serve_c_rule sim =
  let t = sim.kc in
  let pars_cells = Op.snapshot t.r_regs in
  let pars =
    List.filter
      (fun i ->
        (not (Value.is_unit pars_cells.(i))) && Value.to_int pars_cells.(i) = 1)
      (List.init t.n_sims Fun.id)
  in
  if List.length pars <= t.kc_k then
    List.iteri
      (fun j i ->
        if j < t.kc_k && i = sim.me then begin
          let l = sim.known_step.(j) + 1 in
          if l <= t.max_steps then Leader_consensus.serve (instance t j l)
        end)
      pars

let pump sim =
  let t = sim.kc in
  for j = 0 to t.kc_k - 1 do
    refresh sim j;
    let l = sim.known_step.(j) + 1 in
    if l > t.max_steps then sim.dead <- true
    else begin
      (match sim.client.(j) with
      | Some _ -> ()
      | None ->
        let next = propose sim j in
        sim.client.(j) <-
          Some (Leader_consensus.client (instance t j l) ~me:sim.me next));
      match sim.client.(j) with
      | None -> ()
      | Some cl -> (
        match Leader_consensus.pump cl with
        | Leader_consensus.Decided v ->
          (* write-once publication of the agreed state *)
          let c = cell t j l in
          if Value.is_unit (Op.read c) then Op.write c v;
          sim.known_step.(j) <- l;
          sim.known_state.(j) <- v;
          sim.client.(j) <- None
        | Leader_consensus.Pending -> ()
        | Leader_consensus.Exhausted -> sim.dead <- true)
    end
  done;
  serve_c_rule sim

type server = { skc : t; s_me : int; s_known : int array }

let make_server skc ~me = { skc; s_me = me; s_known = Array.make skc.kc_k 0 }

let serve_pump srv ~leaders =
  let t = srv.skc in
  Array.iteri
    (fun j leader ->
      if j < t.kc_k && leader = srv.s_me then begin
        (* track the machine's current step, then serve its instance *)
        let rec forward () =
          let next = srv.s_known.(j) + 1 in
          if next <= t.max_steps then begin
            let v = Op.read (cell t j next) in
            if not (Value.is_unit v) then begin
              srv.s_known.(j) <- next;
              forward ()
            end
          end
        in
        forward ();
        let l = srv.s_known.(j) + 1 in
        if l <= t.max_steps then Leader_consensus.serve (instance t j l)
      end)
    leaders

let states_view mem t =
  Array.init t.kc_k (fun j ->
      let rec scan l best =
        if l > t.max_steps then best
        else
          let v = Memory.read mem (cell t j l) in
          if Value.is_unit v then best else scan (l + 1) v
      in
      scan 0 t.machines.(j).Machine.m_init)

let steps_view mem t =
  Array.init t.kc_k (fun j ->
      let rec scan l =
        if l > t.max_steps then l - 1
        else if Value.is_unit (Memory.read mem (cell t j l)) then l - 1
        else scan (l + 1)
      in
      scan 1)

let snapshot_states t =
  let cells_snap = Op.snapshot t.cells in
  Array.init t.kc_k (fun j ->
      let rec scan l best =
        if l > t.max_steps then best
        else
          let v = cells_snap.((j * (t.max_steps + 1)) + l) in
          if Value.is_unit v then best else scan (l + 1) v
      in
      scan 0 t.machines.(j).Machine.m_init)
