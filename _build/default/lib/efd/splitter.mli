(** Moir–Anderson / Lamport splitters: a wait-free one-shot object that
    directs each arriving process to [Stop], [Right] or [Down] such that at
    most one process stops, a solo process stops, and among [k ≥ 2]
    entering processes at most [k−1] go right and at most [k−1] go down.
    The building block of grid renaming ({!Ma_renaming}) and a classic
    example of what {e is} wait-free solvable. *)

type t
type direction = Stop | Right | Down

val create : Simkit.Memory.t -> t

val enter : t -> me:int -> direction
(** One-shot per process; 4 steps. [me] must be distinct per process. *)

val pp_direction : Format.formatter -> direction -> unit
