(** The Figure-2 simulation: [n] C-process simulators plus the S-processes
    jointly execute [k] pure machines ({!Bglib.Machine.t}), agreeing on
    every machine transition through one {!Leader_consensus} instance per
    (machine, step).

    Layout: machine [j]'s agreed state after transition [ℓ] lives in a
    write-once cell; cells fill in order because instance (j, ℓ+1) only
    receives proposals from simulators that know cell ℓ. A proposal for
    (j, ℓ+1) is the proposer's evaluation of [m_step] on an atomic snapshot
    of the latest cells and the environment registers (line 19 of Figure 2:
    [vj := {V1..Vk}]); the decided evaluation is written back before anyone
    proposes (j, ℓ+2).

    Leadership (Figure 2, Task 2): while at most [k] simulators participate,
    the [j]-th smallest participating simulator serves machine [j]'s current
    instance; otherwise S-processes serve the machines their vector-Ωk
    module names. At least one machine therefore keeps advancing; in
    harness-generated histories the churn keeps every machine advancing
    (see DESIGN.md on Extended-BG aborts). *)

type t

val create :
  Simkit.Memory.t ->
  machines:Bglib.Machine.t array ->
  env_regs:Simkit.Memory.reg array ->
  n_sims:int ->
  ?max_steps:int ->
  ?max_rounds:int ->
  unit ->
  t
(** [max_steps] (default 400) bounds transitions per machine; [max_rounds]
    (default 64) bounds rounds per consensus instance. *)

val k : t -> int

(** {1 C-simulator side (runtime effects)} *)

type sim

val make_sim : t -> me:int -> sim
val register : sim -> unit
(** Announce participation (Figure 2's [Ri := 1]); call once, first. *)

val pump : sim -> unit
(** One simulator iteration: refresh agreed states, propose/pump the next
    transition of every machine, write back decisions, and perform leader
    duty under the ≤k-participants rule. Bounded steps. *)

val depart : sim -> unit
(** Figure 2's [Ri := ⊥] (line 28): leave the participating set. *)

val states : sim -> Value.t array
(** Latest agreed machine states known to this simulator (no steps). *)

val steps_known : sim -> int array
val exhausted : sim -> bool
(** A machine hit [max_steps] or an instance ran out of rounds. *)

(** {1 S-process side (runtime effects)} *)

type server

val make_server : t -> me:int -> server

val serve_pump : server -> leaders:int array -> unit
(** One S-process iteration: for every machine position [j] with
    [leaders.(j) = me], refresh that machine's step counter and serve its
    current consensus instance. [leaders] is the vector-Ωk output. *)

(** {1 Checker side (no runtime steps)} *)

val states_view : Simkit.Memory.t -> t -> Value.t array
val steps_view : Simkit.Memory.t -> t -> int array

val snapshot_states : t -> Value.t array
(** One atomic snapshot of the state cells, decoded to the latest agreed
    state per machine (runtime effect; for serving processes that must read
    simulated machine states). *)
