(** Theorem 9: any k-concurrently solvable task is solvable with ¬Ωk
    (via its equivalent vector-Ωk form).

    The double simulation, assembled from the other modules: the [n]
    C-processes and the S-processes run the Figure-2 layer ({!Kcodes}) to
    execute [k] BG-engine machines ({!Bglib.Sm_engine}), which in turn
    simulate the [n] codes of the task's k-concurrent algorithm given in
    full-information form ({!Bglib.Sm_engine.fi_algo}) — producing a
    k-concurrent simulated run whose decisions the simulators adopt.
    C-process [p_i] departs (and decides) as soon as simulated code [i]'s
    decision becomes derivable from the agreed engine states. *)

val make :
  ?max_steps:int ->
  ?max_rounds:int ->
  k:int ->
  fi:Bglib.Sm_engine.fi_algo ->
  unit ->
  Algorithm.t
(** The FD drawn by the harness must output vector-Ωk encodings of length
    [k] (or bare Ω leaders when [k = 1]). *)
