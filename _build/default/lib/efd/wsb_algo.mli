(** A 2-concurrent algorithm for weak symmetry breaking, tightening the
    registry's lower bound for WSB from 1 to 2 (its exact level is open in
    the paper's references [8]).

    Rules, from a snapshot of (participants P, decided board D, undecided
    U = P∖D): decide 0 if someone already decided 1, or if fewer than [j]
    participants have arrived (a later arrival can still break symmetry);
    if you are the only undecided participant of a full house, break
    symmetry (1 iff everyone else decided 0); if exactly two are undecided,
    the smaller id decides 0 and the larger waits. With at most two
    concurrent undecided participants someone is always allowed to move;
    at three the waiting rule deadlocks — the algorithm is 2-concurrent,
    not 3-concurrent. *)

val two_concurrent : j:int -> Algorithm.t
