(** Leader-based consensus, the sub-protocol of Figure 2.

    Clients (C-processes) publish round-stamped queries carrying their
    estimate; whoever currently believes itself leader (a C- or S-process —
    the election rule belongs to the caller) answers unanswered rounds by
    copying back one queried estimate; clients adopt the answer and run a
    wait-free commit–adopt per round, deciding on commit.

    Safety (agreement, validity) holds unconditionally — commit–adopt
    arbitrates conflicting answers from rogue leaders. Liveness needs what
    Ω-style detectors provide: from some point on, a single correct process
    keeps serving the instance.

    All operations perform runtime effects; each call costs a bounded
    number of steps (clients are pumped, never blocked). *)

type t

val create : Simkit.Memory.t -> n_c:int -> max_rounds:int -> t

type client

val client : t -> me:int -> Value.t -> client
(** [client t ~me input]: local pump state for C-process [me]. *)

type step = Decided of Value.t | Pending | Exhausted

val pump : client -> step
(** Advance the client a bounded amount: publish the next query, poll for
    the round's answer, or run the round's commit–adopt. [Exhausted] =
    [max_rounds] hit (size budgets accordingly). *)

val serve : t -> unit
(** Leader duty: answer every queried-but-unanswered round with one of that
    round's queried estimates. Call repeatedly while believing yourself
    leader. *)

val read_decision : t -> Value.t option
(** One-step probe of the decision register. *)
