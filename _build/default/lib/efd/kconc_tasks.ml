module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op

let adoption () =
  Algorithm.restricted ~name:"adoption-ksa" (fun ctx ->
      let board = Memory.alloc ctx.Algorithm.mem ctx.Algorithm.n_c in
      fun i input ->
        let cells = Op.snapshot board in
        let existing =
          Array.fold_left
            (fun acc c ->
              match acc with
              | Some _ -> acc
              | None -> if Value.is_unit c then None else Some c)
            None cells
        in
        match existing with
        | Some v -> Op.decide v
        | None ->
          Op.write board.(i) input;
          Op.decide input)

let echo () =
  Algorithm.restricted ~name:"echo" (fun _ctx _i input -> Op.decide input)

let const v =
  Algorithm.restricted ~name:"const" (fun _ctx _i _input -> Op.decide v)
