module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op
module Commit_adopt = Bglib.Commit_adopt

type t = {
  n_c : int;
  max_rounds : int;
  q_regs : Memory.reg array;  (** client queries: (round, est) *)
  a_regs : Memory.reg array;  (** per-round answers, [a_regs.(r-1)] *)
  dec : Memory.reg;
  cas : Commit_adopt.t array;  (** per-round commit–adopt *)
}

let create mem ~n_c ~max_rounds =
  if n_c <= 0 || max_rounds <= 0 then invalid_arg "Leader_consensus.create";
  {
    n_c;
    max_rounds;
    q_regs = Memory.alloc mem n_c;
    a_regs = Memory.alloc mem max_rounds;
    dec = Memory.alloc1 mem ();
    cas = Array.init max_rounds (fun _ -> Commit_adopt.create mem ~n:n_c);
  }

type phase = Start | Waiting of int
type client = { lc : t; me : int; input : Value.t; mutable phase : phase; mutable est : Value.t }

let client lc ~me input =
  if me < 0 || me >= lc.n_c then invalid_arg "Leader_consensus.client";
  { lc; me; input; phase = Start; est = input }

type step = Decided of Value.t | Pending | Exhausted

let publish_query cl r =
  Op.write cl.lc.q_regs.(cl.me) (Value.pair (Value.int r) cl.est)

let pump cl =
  let lc = cl.lc in
  match cl.phase with
  | Start ->
    cl.est <- cl.input;
    publish_query cl 1;
    cl.phase <- Waiting 1;
    Pending
  | Waiting r -> (
    let d = Op.read lc.dec in
    if not (Value.is_unit d) then Decided d
    else
      let a = Op.read lc.a_regs.(r - 1) in
      if Value.is_unit a then Pending
      else begin
        cl.est <- a;
        match Commit_adopt.run lc.cas.(r - 1) ~me:cl.me cl.est with
        | Commit_adopt.Commit v ->
          Op.write lc.dec v;
          Decided v
        | Commit_adopt.Adopt v ->
          cl.est <- v;
          if r + 1 > lc.max_rounds then Exhausted
          else begin
            publish_query cl (r + 1);
            cl.phase <- Waiting (r + 1);
            Pending
          end
      end)

let serve lc =
  let queries = Op.snapshot lc.q_regs in
  Array.iter
    (fun q ->
      if not (Value.is_unit q) then begin
        let r, est = Value.to_pair q in
        let r = Value.to_int r in
        if r >= 1 && r <= lc.max_rounds then
          let a = Op.read lc.a_regs.(r - 1) in
          if Value.is_unit a then Op.write lc.a_regs.(r - 1) est
      end)
    queries

let read_decision lc =
  let d = Op.read lc.dec in
  if Value.is_unit d then None else Some d
