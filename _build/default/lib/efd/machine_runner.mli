(** Direct execution of pure machines as C-processes: machine [i]'s state
    lives in one register written only by [p_i]; each machine step costs two
    runtime steps (one snapshot of states+environment, one write). The same
    machines can instead be simulated through {!Kcodes} — identical
    semantics, which {!Puzzle} exploits. *)

type h

val create :
  Simkit.Memory.t ->
  machines:Bglib.Machine.t array ->
  env_regs:Simkit.Memory.reg array ->
  h

val state_regs : h -> Simkit.Memory.reg array

val step_machine : h -> me:int -> Value.t option
(** One machine step; returns the machine's decision if reached. *)

val run_machine : h -> me:int -> Value.t
(** Pump until decided (only under a liveness hypothesis on the
    environment/serving side; bounded by the run's step budget). *)

val read_states : h -> Value.t array
(** One snapshot of all machine states (runtime effect). *)

(** {1 Machine-consensus serving} *)

val serve_consensus :
  Bglib.Machine_consensus.t ->
  states:Value.t array ->
  env_regs:Simkit.Memory.reg array ->
  leaders:int array ->
  me:int ->
  unit
(** Answer the unanswered queried rounds of every instance [j] with
    [leaders.(j) = me]: the serving side of {!Bglib.Machine_consensus},
    usable with states read from {!read_states} or
    {!Kcodes.snapshot_states}. [env_regs] is the machines' environment
    (answer cells are located via the consensus layout). *)
