module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op
module Machine_consensus = Bglib.Machine_consensus

let demo_fd ?(max_stab = 50) ~k () =
  Fdlib.Fd.pair
    ~name:(Printf.sprintf "vector-Omega-%d&%d" (k + 1) k)
    (Fdlib.Leader_fds.vector_omega_k ~max_stab ~k:(k + 1) ())
    (Fdlib.Leader_fds.vector_omega_k ~max_stab ~k ())

let make ?max_steps ?(outer_rounds = 64) ?(inner_rounds = 64) ~k () =
  if k < 1 then invalid_arg "Puzzle.make";
  let x = k + 1 in
  {
    Algorithm.algo_name = Printf.sprintf "thm7-puzzle(k=%d)" k;
    make =
      (fun ctx ->
        let n = ctx.Algorithm.n_c in
        let mem = ctx.Algorithm.mem in
        (* A's environment: the real input board + A's answer cells *)
        let a_regs = Memory.alloc mem (k * inner_rounds) in
        let env_regs = Array.append ctx.Algorithm.input_regs a_regs in
        let mc =
          Machine_consensus.create ~k ~n_machines:x ~max_rounds:inner_rounds
            ~input_offset:0 ~n_inputs:n ~answer_offset:n ()
        in
        (* colorless proposal: the smallest-index input present *)
        let input_of ~me:_ ~env =
          let rec scan c =
            if c >= n then None
            else if Value.is_unit env.(c) then scan (c + 1)
            else Some env.(c)
          in
          scan 0
        in
        let machines = Machine_consensus.machines mc ~input_of in
        let kc =
          Kcodes.create mem ~machines ~env_regs ~n_sims:n ?max_steps
            ~max_rounds:outer_rounds ()
        in
        let c_run i _input =
          let sim = Kcodes.make_sim kc ~me:i in
          Kcodes.register sim;
          let rec loop () =
            Kcodes.pump sim;
            let states = Kcodes.states sim in
            let decided =
              Array.fold_left
                (fun acc st ->
                  match acc with
                  | Some _ -> acc
                  | None -> Machine_consensus.decision st)
                None states
            in
            match decided with
            | Some d ->
              Kcodes.depart sim;
              Op.decide d
            | None -> loop ()
          in
          loop ()
        in
        let s_run me =
          let server = Kcodes.make_server kc ~me in
          let rec loop () =
            let outer_out, inner_out = Value.to_pair (Op.query ()) in
            let outer = Ksa.decode_leader_vector ~k:x outer_out in
            let inner = Ksa.decode_leader_vector ~k inner_out in
            (* serve the Figure-2 layer, then A's own consensus queries *)
            Kcodes.serve_pump server ~leaders:outer;
            let states = Kcodes.snapshot_states kc in
            Machine_runner.serve_consensus mc ~states ~env_regs ~leaders:inner
              ~me;
            loop ()
          in
          loop ()
        in
        { Algorithm.c_run; s_run });
  }
