(** k-set agreement with vector-Ωk (hence with ¬Ωk, Proposition 6): [k]
    parallel {!Leader_consensus} instances; instance [j] is served by
    whichever S-process its vector-Ωk module names in position [j]; every
    participant proposes to all instances and decides the first decision it
    sees. At most [k] instances exist, so at most [k] distinct values are
    decided; at least one position of vector-Ωk eventually stabilizes on a
    correct S-process, so its instance eventually decides for everyone.

    With [k = 1] this is consensus with Ω (the S-code accepts both Ω's
    single-leader outputs and vector encodings). *)

val make : ?max_rounds:int -> k:int -> unit -> Algorithm.t
(** The FD drawn by the harness must output vector-Ωk encodings
    ({!Fdlib.Fd.encode_vector} of length [k]) or, when [k = 1], Ω leader
    encodings. Solves [Set_agreement.make ~n ~k] (and [(U, k)]-agreement for
    any U). *)

val consensus : ?max_rounds:int -> unit -> Algorithm.t
(** [make ~k:1]. *)

val decode_leader_vector : k:int -> Value.t -> int array
(** Vector output, or a bare leader replicated into all positions. *)
