(** Moir–Anderson grid renaming: walk a triangular grid of splitters
    (right on [Right], down on [Down]) and take the stopped cell's index as
    the new name. With at most [j] participants every walk stops within
    [j−1] moves, giving wait-free (j, j(j+1)/2)-renaming — a much larger
    name space than Figure 4's k-concurrent j+k−1, but with {e no}
    concurrency assumption: the two algorithms bracket the renaming
    hierarchy from its wait-free end. *)

val make : j:int -> Algorithm.t
(** Restricted algorithm; names in [1 .. j(j+1)/2]. *)

val name_space : j:int -> int
