module Op = Simkit.Runtime.Op

let make () =
  {
    Algorithm.algo_name = "paxos-alpha-omega";
    make =
      (fun ctx ->
        let alpha = Alpha.create ctx.Algorithm.mem ~n_proposers:ctx.Algorithm.n_s in
        let n_s = ctx.Algorithm.n_s in
        let c_run _i _input =
          let rec wait () =
            match Alpha.decided alpha with
            | Some v -> Op.decide v
            | None -> wait ()
          in
          wait ()
        in
        let s_run me =
          let attempt = ref 0 in
          let rec loop () =
            let leader = (Ksa.decode_leader_vector ~k:1 (Op.query ())).(0) in
            if leader = me then begin
              let inputs = Op.snapshot ctx.Algorithm.input_regs in
              let visible =
                Array.fold_left
                  (fun acc v ->
                    match acc with
                    | Some _ -> acc
                    | None -> if Value.is_unit v then None else Some v)
                  None inputs
              in
              match visible with
              | None -> loop () (* no participant yet *)
              | Some v -> (
                let round = me + 1 + (!attempt * n_s) in
                match Alpha.propose alpha ~me ~round v with
                | Alpha.Commit _ -> loop () (* decision register is set *)
                | Alpha.Abort _ ->
                  incr attempt;
                  loop ())
            end
            else loop ()
          in
          loop ()
        in
        { Algorithm.c_run; s_run });
  }
