module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op
module Mp = Simkit.Mp

(* message encodings *)
let est_msg ~r ~est ~ts =
  Value.pair (Value.str "EST") (Value.triple (Value.int r) est (Value.int ts))

let prop_msg ~r ~est = Value.pair (Value.str "PROP") (Value.pair (Value.int r) est)
let ack_msg ~r ~ok = Value.pair (Value.str "ACK") (Value.pair (Value.int r) (Value.bool ok))
let dec_msg ~est = Value.pair (Value.str "DEC") est

let tag_of m = Value.to_str (fst (Value.to_pair m))
let body_of m = snd (Value.to_pair m)

type phase =
  | Estimate  (** send my estimate to the coordinator *)
  | Collect  (** coordinator: await a majority of estimates *)
  | Await  (** await the proposal or suspect the coordinator *)
  | Tally  (** coordinator: await a majority of acks/nacks *)

let make () =
  {
    Algorithm.algo_name = "chandra-toueg-diamond-s";
    make =
      (fun ctx ->
        let n = ctx.Algorithm.n_s in
        let majority = (n / 2) + 1 in
        let net = Mp.create ctx.Algorithm.mem ~n in
        let dec_reg = Memory.alloc1 ctx.Algorithm.mem () in
        let c_run _i _input =
          let rec wait () =
            let d = Op.read dec_reg in
            if Value.is_unit d then wait () else Op.decide d
          in
          wait ()
        in
        let s_run me =
          let ep = Mp.endpoint net ~me in
          let inbox = ref [] in
          let poll () = inbox := !inbox @ Mp.recv_new ep in
          let find_dec () =
            List.find_map
              (fun (_, m) -> if tag_of m = "DEC" then Some (body_of m) else None)
              !inbox
          in
          let ests_for r =
            List.filter_map
              (fun (s, m) ->
                if tag_of m = "EST" then begin
                  let r', est, ts = Value.to_triple (body_of m) in
                  if Value.to_int r' = r then Some (s, est, Value.to_int ts)
                  else None
                end
                else None)
              !inbox
          in
          let prop_for r ~coord =
            List.find_map
              (fun (s, m) ->
                if s = coord && tag_of m = "PROP" then begin
                  let r', est = Value.to_pair (body_of m) in
                  if Value.to_int r' = r then Some est else None
                end
                else None)
              !inbox
          in
          let acks_for r =
            List.filter_map
              (fun (_, m) ->
                if tag_of m = "ACK" then begin
                  let r', ok = Value.to_pair (body_of m) in
                  if Value.to_int r' = r then Some (Value.to_bool ok) else None
                end
                else None)
              !inbox
          in
          (* wait for some participant's input as the initial estimate *)
          let rec initial () =
            let inputs = Op.snapshot ctx.Algorithm.input_regs in
            match
              Array.fold_left
                (fun acc v ->
                  match acc with
                  | Some _ -> acc
                  | None -> if Value.is_unit v then None else Some v)
                None inputs
            with
            | Some v -> v
            | None -> initial ()
          in
          let est = ref (initial ()) in
          let ts = ref 0 in
          let finish v =
            Op.write dec_reg v;
            Mp.broadcast ep (dec_msg ~est:v);
            (* keep relaying nothing; spin on null steps *)
            let rec idle () =
              Op.yield ();
              idle ()
            in
            idle ()
          in
          let rec round r phase =
            poll ();
            (match find_dec () with Some v -> finish v | None -> ());
            let coord = (r - 1) mod n in
            match phase with
            | Estimate ->
              Mp.send ep ~to_:coord (est_msg ~r ~est:!est ~ts:!ts);
              round r (if me = coord then Collect else Await)
            | Collect ->
              let received = ests_for r in
              if List.length received >= majority then begin
                let _, best, _ =
                  List.fold_left
                    (fun ((_, _, bts) as b) ((_, _, ts') as c) ->
                      if ts' > bts then c else b)
                    (List.hd received) (List.tl received)
                in
                est := best;
                Mp.broadcast ep (prop_msg ~r ~est:best);
                round r Await
              end
              else round r Collect
            | Await -> (
              match prop_for r ~coord with
              | Some proposal ->
                est := proposal;
                ts := r;
                Mp.send ep ~to_:coord (ack_msg ~r ~ok:true);
                if me = coord then round r Tally else round (r + 1) Estimate
              | None ->
                let suspected = Fdlib.Fd.decode_set (Op.query ()) in
                if List.mem coord suspected && me <> coord then begin
                  Mp.send ep ~to_:coord (ack_msg ~r ~ok:false);
                  round (r + 1) Estimate
                end
                else round r Await)
            | Tally ->
              let replies = acks_for r in
              if List.length replies >= majority then begin
                if List.for_all Fun.id replies then finish !est
                else round (r + 1) Estimate
              end
              else round r Tally
          in
          round 1 Estimate
        in
        { Algorithm.c_run; s_run });
  }
