module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op

type t = { x : Memory.reg; y : Memory.reg }
type direction = Stop | Right | Down

let create mem = { x = Memory.alloc1 mem (); y = Memory.alloc1 mem () }

let enter t ~me =
  Op.write t.x (Value.int me);
  if not (Value.is_unit (Op.read t.y)) then Right
  else begin
    Op.write t.y (Value.bool true);
    let x = Op.read t.x in
    if Value.equal x (Value.int me) then Stop else Down
  end

let pp_direction ppf = function
  | Stop -> Fmt.string ppf "stop"
  | Right -> Fmt.string ppf "right"
  | Down -> Fmt.string ppf "down"
