(** The round-based register ("alpha" of consensus, Gafni–Lamport style):
    a single-decree Paxos core in shared memory.

    A proposer owning round [r] runs two phases of write-then-collect; it
    commits a value only if no higher round interfered, and any committed
    value is adopted by every later round. Safety (two commits never
    differ) holds unconditionally; progress needs an eventually-lone
    proposer — exactly what Ω provides ({!Paxos_consensus}).

    Round ownership: proposers must use disjoint round numbers (use
    [r ≡ owner (mod #proposers)]). All operations perform runtime steps. *)

type t

val create : Simkit.Memory.t -> n_proposers:int -> t

type outcome =
  | Commit of Value.t
  | Abort of Value.t option
      (** interference; the payload is the latest accepted value seen, which
          callers should re-propose *)

val propose : t -> me:int -> round:int -> Value.t -> outcome
(** Two-phase attempt at round [round] (must be owned by [me] and increase
    across this proposer's calls). *)

val decided : t -> Value.t option
(** One-step probe of the decision register (set by committers). *)
