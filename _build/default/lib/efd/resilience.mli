(** Progress adversaries — the paper's concluding generalization (§6,
    after Delporte-Gallet et al. [13]): instead of wait-freedom, constrain
    which {e sets} of C-processes may be exactly the ones taking infinitely
    many steps, and ask what advice a task needs under that adversary.

    This module provides the machinery: adversaries as set systems,
    schedule policies that realize them (a seeded allowed live set runs
    forever, everyone else is starved after a finite prefix), and the
    classic t-resilient set-agreement algorithm as the reference workload —
    (t+1)-set agreement is t-resiliently solvable with no advice at all,
    while t-set agreement is not (the k-SA ↔ resilience crossover). *)

type t = {
  adv_name : string;
  n : int;
  allowed : int list -> bool;  (** may this set be the live set? *)
  sample_live : Random.State.t -> participants:int list -> int list;
      (** draw an allowed live set among the participants *)
}

val t_resilient : n:int -> t:int -> t
(** Live sets: all participant subsets of size ≥ (participants − t) — at
    most [t] participants stall forever. [t = 0] is the lockstep-fair
    adversary; [t = n−1] is wait-freedom. *)

val policy : t -> after:int -> Run.policy_factory
(** Fair shuffled rounds for [after] steps (everyone gets a prefix), then
    processes outside the sampled live set are starved forever. *)

val resilient_ksa : unit -> Algorithm.t
(** The classic t-resilient set-agreement algorithm (no advice): publish
    your input, wait until at least [participants − t] inputs are visible,
    decide the minimum seen. With full participation of [m] processes and
    at most [t] stalled, every live process decides and at most [t+1]
    distinct values (the [t+1] smallest inputs) are decided — so it solves
    (t+1)-set agreement t-resiliently but not t-set agreement. The
    tolerated-stall count is a parameter of the {e run}, not the code:
    the algorithm family is indexed by [t] through {!waiting_for}. *)

val waiting_for : t_stalls:int -> Algorithm.t
(** [resilient_ksa] specialized to wait for [participants − t_stalls]
    inputs. *)
