(** k-set agreement through the machine-encoded consensus
    ({!Bglib.Machine_consensus}) run directly ({!Machine_runner}) — the
    machine twin of {!Ksa}, and the concrete "algorithm A" whose C-part the
    Theorem-7 composition ({!Puzzle}) simulates. Requires a vector-Ωk
    failure detector, like {!Ksa}. *)

val make : ?max_rounds:int -> k:int -> unit -> Algorithm.t
