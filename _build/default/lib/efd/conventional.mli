(** Conventional (personified) solvability (§2.3).

    In the conventional model each process [i] is the pair of threads
    [(p_i, q_i)]: [p_i] crashes exactly when [q_i] does. Personified runs
    are the fair runs in which a C-process stops being scheduled at its
    partner's crash time; an algorithm classically solves a task if every
    personified run satisfies it — where only processes with a {e correct}
    partner are obliged to decide.

    Proposition 3: EFD solvability implies classical solvability (the
    personified runs are a subset of the fair runs); the converse fails
    (experiment E4). *)

type report = {
  p_input : Tasklib.Vectors.t;  (** restricted to processes that ran *)
  p_output : Tasklib.Vectors.t;
  p_task_ok : bool;
  p_obliged_decided : bool;
      (** every participant whose partner is correct decided *)
  p_steps : int;
}

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit

val execute :
  ?budget:int ->
  task:Tasklib.Task.t ->
  algo:Algorithm.t ->
  fd:Fdlib.Fd.t ->
  pattern:Simkit.Failure.pattern ->
  input:Tasklib.Vectors.t ->
  seed:int ->
  unit ->
  report
(** One personified run: participants are the input vector's non-⊥ slots,
    but [p_i] takes no step from [q_i]'s crash time on. Requires the
    pattern and task arity to agree (n = m). *)
