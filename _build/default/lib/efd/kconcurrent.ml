module Op = Simkit.Runtime.Op
module Sm_engine = Bglib.Sm_engine

let make ?max_steps ?max_rounds ~k ~fi () =
  if k < 1 then invalid_arg "Kconcurrent.make";
  {
    Algorithm.algo_name =
      Printf.sprintf "thm9(%s)-with-vector-Omega-%d" fi.Sm_engine.fi_name k;
    make =
      (fun ctx ->
        let n_codes = ctx.Algorithm.n_c in
        let machines = Sm_engine.engines ~k ~n_codes fi in
        let kc =
          Kcodes.create ctx.Algorithm.mem ~machines
            ~env_regs:ctx.Algorithm.input_regs ~n_sims:n_codes ?max_steps
            ?max_rounds ()
        in
        let c_run i input =
          let sim = Kcodes.make_sim kc ~me:i in
          Kcodes.register sim;
          (* Only this code's slot matters for deriving its own decision:
             replay uses the views stored in the engines' marks. *)
          let env = Array.make n_codes Value.unit in
          env.(i) <- input;
          let rec loop () =
            Kcodes.pump sim;
            match
              Sm_engine.code_decision fi ~n_codes ~states:(Kcodes.states sim)
                ~env i
            with
            | Some v ->
              Kcodes.depart sim;
              Op.decide v
            | None -> loop ()
          in
          loop ()
        in
        let s_run me =
          let server = Kcodes.make_server kc ~me in
          let rec loop () =
            let w = Ksa.decode_leader_vector ~k (Op.query ()) in
            Kcodes.serve_pump server ~leaders:w;
            loop ()
          in
          loop ()
        in
        { Algorithm.c_run; s_run });
  }
