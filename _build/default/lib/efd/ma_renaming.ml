module Op = Simkit.Runtime.Op

let name_space ~j = j * (j + 1) / 2

(* triangular grid: cells (r, d) with r + d <= j - 1; the name is the
   1-based row-major index (cells of rows above, plus the column) *)
let cell_name ~j ~r ~d =
  let before = ref 0 in
  for d' = 0 to d - 1 do
    before := !before + (j - d')
  done;
  !before + r + 1

let make ~j =
  if j < 1 then invalid_arg "Ma_renaming.make";
  Algorithm.restricted ~name:(Printf.sprintf "moir-anderson(j=%d)" j)
    (fun ctx ->
      let grid =
        Array.init j (fun d ->
            Array.init (j - d) (fun _ -> Splitter.create ctx.Algorithm.mem))
      in
      fun i _input ->
        let rec walk r d moves =
          if moves >= j then
            invalid_arg "Ma_renaming: walked out of the grid (too many participants?)"
          else
            match Splitter.enter grid.(d).(r) ~me:i with
            | Splitter.Stop -> Op.decide (Value.int (cell_name ~j ~r ~d))
            | Splitter.Right -> walk (r + 1) d (moves + 1)
            | Splitter.Down -> walk r (d + 1) (moves + 1)
        in
        walk 0 0 0)
