module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op

let make () =
  {
    Algorithm.algo_name = "trivial-n-set-agreement";
    make =
      (fun ctx ->
        let v_reg = Memory.alloc1 ctx.Algorithm.mem () in
        let c_run _i _input =
          let rec wait () =
            let v = Op.read v_reg in
            if Value.is_unit v then wait () else Op.decide v
          in
          wait ()
        in
        let s_run _i =
          (* scan the input registers until some C-process participates *)
          let n_c = ctx.Algorithm.n_c in
          let rec scan j =
            let v = Op.read ctx.Algorithm.input_regs.(j mod n_c) in
            if Value.is_unit v then scan (j + 1) else Op.write v_reg v
          in
          scan 0
        in
        { Algorithm.c_run; s_run });
  }
