module Memory = Simkit.Memory
module Runtime = Simkit.Runtime
module Op = Simkit.Runtime.Op
module Schedule = Simkit.Schedule
module History = Simkit.History
module Failure = Simkit.Failure
module Pid = Simkit.Pid
module Dag = Fdlib.Dag
module Vectors = Tasklib.Vectors

(* ----------------------------------------------------------------------- *)
(* The local simulation of Asim: one deterministic bounded (k+1)-concurrent
   run of A with DAG-fed S-codes and the donation discipline.              *)
(* ----------------------------------------------------------------------- *)

let simulate_branch ~algo ~inputs ~n_c ~n_s ~k ~dag ~stall_on ~budget =
  let mem = Memory.create () in
  let input_regs = Memory.alloc mem n_c in
  let ctx = { Algorithm.mem; n_c; n_s; input_regs } in
  let inst = algo.Algorithm.make ctx in
  let pending = Array.make n_s Value.unit in
  let consumed = ref false in
  let history =
    History.make ~name:"dag-served" (fun q _time ->
        consumed := true;
        pending.(q))
  in
  let c_code i () =
    match inputs.(i) with
    | None -> ()
    | Some v ->
      Op.write input_regs.(i) v;
      inst.Algorithm.c_run i v
  in
  let s_code i () = inst.Algorithm.s_run i in
  let rt =
    Runtime.create
      {
        Runtime.n_c;
        n_s;
        memory = mem;
        pattern = Failure.failure_free n_s;
        history;
        record_trace = false;
      }
      ~c_code ~s_code
  in
  let participants = Vectors.participants inputs in
  let frontier = Array.make n_s 0 in
  (* donation discipline: at most one open donation per donor *)
  let open_donation = Array.make n_c None (* donor -> S-code *) in
  let donated_to = Array.make n_s false (* S-code has an open donation *) in
  let stalled = ref None in
  let turns = ref [] in
  let scode_rr = ref 0 in
  let c_rr = ref 0 in
  (* the (k+1)-concurrent corridor: smallest-id undecided participants *)
  let active () =
    let undecided =
      List.filter (fun i -> Runtime.decision rt i = None) participants
    in
    let rec take n = function
      | [] -> []
      | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
    in
    take (k + 1) undecided
  in
  let complete_donation p =
    match open_donation.(p) with
    | None -> ()
    | Some q ->
      (match Dag.next_vertex dag ~q ~frontier with
      | Some vx ->
        pending.(q) <- vx.Dag.vval;
        consumed := false;
        Runtime.step rt (Pid.s q);
        if !consumed then frontier.(q) <- vx.Dag.vseq;
        turns := q :: !turns
      | None -> () (* DAG is fixed locally; the vertex chosen at open time
                      is still there — unreachable, kept for safety *));
      open_donation.(p) <- None;
      donated_to.(q) <- false
  in
  let open_new_donation p =
    (* round-robin over S-codes with an available next vertex and no open
       donation *)
    let rec pick tried =
      if tried >= n_s then None
      else
        let q = (!scode_rr + tried) mod n_s in
        if (not donated_to.(q)) && Dag.next_vertex dag ~q ~frontier <> None
        then Some q
        else pick (tried + 1)
    in
    match pick 0 with
    | None -> ()
    | Some q ->
      scode_rr := (q + 1) mod n_s;
      open_donation.(p) <- Some q;
      donated_to.(q) <- true;
      if stall_on = Some q && !stalled = None then stalled := Some p
  in
  let rec loop iter =
    if iter >= budget then false
    else begin
      let corridor = active () in
      if corridor = [] then true
      else begin
        let runnable =
          List.filter (fun p -> !stalled <> Some p) corridor
        in
        match runnable with
        | [] ->
          (* only the stalled donor remains undecided: every process that
             kept taking steps decided — the branch counts as deciding
             (the paper's criterion quantifies over processes with
             infinitely many steps) *)
          true
        | _ ->
          let idx = !c_rr mod List.length runnable in
          c_rr := !c_rr + 1;
          let p = List.nth runnable idx in
          complete_donation p;
          Runtime.step rt (Pid.c p);
          open_new_donation p;
          loop (iter + 1)
      end
    end
  in
  let all_decided = loop 0 in
  Runtime.destroy rt;
  (* emulated output: the last n−k distinct turn-taking S-codes, padded
     deterministically with the smallest ids *)
  let rec distinct acc = function
    | [] -> List.rev acc
    | q :: rest ->
      if List.mem q acc then distinct acc rest else distinct (q :: acc) rest
  in
  let latest = distinct [] !turns in
  let want = n_s - k in
  let rec take n = function
    | [] -> []
    | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
  in
  let base = take want latest in
  let pad =
    List.filter (fun q -> not (List.mem q base)) (List.init n_s Fun.id)
  in
  let output = take want (base @ pad) in
  (all_decided, List.sort Int.compare output)

(* ----------------------------------------------------------------------- *)
(* The steered exploration: fair branch, then stall branches in id order;
   the first never-deciding branch determines the emulated output.        *)
(* ----------------------------------------------------------------------- *)

let explore ~algo ~inputs ~n_c ~n_s ~k ~dag ~budget =
  let branch stall_on =
    simulate_branch ~algo ~inputs ~n_c ~n_s ~k ~dag ~stall_on ~budget
  in
  let _, fair_out = branch None in
  let rec hunt q =
    if q >= n_s then fair_out
    else
      let decided, out = branch (Some q) in
      if not decided then out else hunt (q + 1)
  in
  hunt 0

(* ----------------------------------------------------------------------- *)
(* The reduction run: S-processes sample D, exchange DAGs, explore.       *)
(* ----------------------------------------------------------------------- *)

type result = {
  x_outputs : Value.t array array;
  x_samples : int;
  x_explorations : int;
}

let run ?(outer_budget = 40_000) ?(sample_period = 60) ?(explore_budget = 4_000)
    ?(max_samples = 400) ~k ~fd ~algo ~inputs ~n_c ~pattern ~seed () =
  let n_s = pattern.Failure.n_s in
  let mem = Memory.create () in
  let dag_regs = Memory.alloc mem n_s in
  let out_regs = Memory.alloc mem n_s in
  let default_output = Fdlib.Fd.encode_set (List.init (n_s - k) Fun.id) in
  Array.iter (fun r -> Memory.write mem r default_output) out_regs;
  let samples = Array.make n_s 0 in
  let explorations = Array.make n_s 0 in
  let s_code me () =
    let dag = ref (Dag.create ~n_s) in
    let rec loop i =
      if samples.(me) < max_samples then begin
        let v = Op.query () in
        ignore (Dag.add_sample !dag ~q:me v);
        samples.(me) <- samples.(me) + 1;
        (* exchange: publish and union every few samples *)
        if i mod 5 = 0 then begin
          Op.write dag_regs.(me) (Dag.encode !dag);
          for j = 0 to n_s - 1 do
            if j <> me then begin
              let enc = Op.read dag_regs.(j) in
              if not (Value.is_unit enc) then Dag.union !dag (Dag.decode enc)
            end
          done
        end
      end
      else Op.yield ();
      if i > 0 && i mod sample_period = 0 then begin
        let out =
          explore ~algo ~inputs ~n_c ~n_s ~k ~dag:!dag ~budget:explore_budget
        in
        explorations.(me) <- explorations.(me) + 1;
        Op.write out_regs.(me) (Fdlib.Fd.encode_set out)
      end;
      loop (i + 1)
    in
    loop 1
  in
  let history = Fdlib.Fd.draw fd pattern ~seed in
  let rt =
    Runtime.create
      {
        Runtime.n_c;
        n_s;
        memory = mem;
        pattern;
        history;
        record_trace = false;
      }
      ~c_code:(fun _ () -> ())
      ~s_code
  in
  let rng = Random.State.make [| seed; 0xe7 |] in
  let policy =
    Schedule.shuffled_rounds ~only:(Pid.all_s n_s) ~n_c ~n_s rng
  in
  let rows = Array.make n_s [] in
  let rec drive step =
    if step < outer_budget then begin
      (match policy.Schedule.next rt with
      | Some p -> Runtime.step rt p
      | None -> ());
      for q = 0 to n_s - 1 do
        rows.(q) <- Memory.read mem out_regs.(q) :: rows.(q)
      done;
      drive (step + 1)
    end
  in
  drive 0;
  Runtime.destroy rt;
  {
    x_outputs = Array.map (fun l -> Array.of_list (List.rev l)) rows;
    x_samples = Array.fold_left max 0 samples;
    x_explorations = Array.fold_left max 0 explorations;
  }
