type ctx = {
  mem : Simkit.Memory.t;
  n_c : int;
  n_s : int;
  input_regs : Simkit.Memory.reg array;
}

type inst = { c_run : int -> Value.t -> unit; s_run : int -> unit }
type t = { algo_name : string; make : ctx -> inst }

let restricted ~name c_make =
  {
    algo_name = name;
    make = (fun ctx -> { c_run = c_make ctx; s_run = (fun _ -> ()) });
  }
