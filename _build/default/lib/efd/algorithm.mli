(** EFD algorithms: a pair of code families (one automaton per C-process,
    one per S-process) instantiated against a shared memory.

    The harness ({!Run}) owns the input registers: by convention (§2.2) the
    first step of every C-process writes its task input to its input
    register; algorithm code runs after that write and receives the input
    value directly. Algorithms read {e other} processes' inputs through
    [input_regs]. *)

type ctx = {
  mem : Simkit.Memory.t;
  n_c : int;
  n_s : int;
  input_regs : Simkit.Memory.reg array;
      (** [input_regs.(i)] = input written by [p_i]; [Value.unit] (⊥) until
          [p_i] participates *)
}

type inst = {
  c_run : int -> Value.t -> unit;
      (** [c_run i input]: body of [p_i] (after the harness's input write);
          must eventually call [Runtime.Op.decide] when given enough steps
          in runs matching the algorithm's hypotheses *)
  s_run : int -> unit;  (** body of [q_i]; restricted algorithms return () *)
}

type t = { algo_name : string; make : ctx -> inst }

val restricted : name:string -> (ctx -> int -> Value.t -> unit) -> t
(** An algorithm whose S-processes take only null steps (= a wait-free
    read/write algorithm, §2.2). *)
