module Memory = Simkit.Memory
module Runtime = Simkit.Runtime
module Op = Simkit.Runtime.Op
module Schedule = Simkit.Schedule
module Failure = Simkit.Failure
module Pid = Simkit.Pid

type ops = {
  query : unit -> Value.t;
  publish : Value.t -> unit;
  collect : unit -> Value.t array;
  emit : Value.t -> unit;
}

type reduction = {
  red_name : string;
  red_make : me:int -> n_s:int -> ops -> unit -> unit;
}

type result = { em_outputs : Value.t array array; em_steps : int }

let run ?(budget = 30_000) ~fd ~pattern ~seed reduction =
  let n_s = pattern.Failure.n_s in
  let mem = Memory.create () in
  let board = Memory.alloc mem n_s in
  let em_regs = Memory.alloc mem n_s in
  let s_code me () =
    let body =
      reduction.red_make ~me ~n_s
        {
          query = Op.query;
          publish = (fun v -> Op.write board.(me) v);
          collect = (fun () -> Op.snapshot board);
          emit = (fun v -> Op.write em_regs.(me) v);
        }
    in
    let rec loop () =
      body ();
      loop ()
    in
    loop ()
  in
  let rt =
    Runtime.create
      {
        Runtime.n_c = 1;
        n_s;
        memory = mem;
        pattern;
        history = Fdlib.Fd.draw fd pattern ~seed;
        record_trace = false;
      }
      ~c_code:(fun _ () -> ())
      ~s_code
  in
  let rng = Random.State.make [| seed; 0xed |] in
  let policy = Schedule.shuffled_rounds ~only:(Pid.all_s n_s) ~n_c:1 ~n_s rng in
  let rows = Array.make n_s [] in
  for _ = 1 to budget do
    (match policy.Schedule.next rt with
    | Some p -> Runtime.step rt p
    | None -> ());
    for q = 0 to n_s - 1 do
      rows.(q) <- Memory.read mem em_regs.(q) :: rows.(q)
    done
  done;
  let steps = Runtime.time rt in
  Runtime.destroy rt;
  {
    em_outputs = Array.map (fun l -> Array.of_list (List.rev l)) rows;
    em_steps = steps;
  }

let omega_from_eventually_strong =
  {
    red_name = "Omega<=<>S";
    red_make =
      (fun ~me:_ ~n_s ops ->
        let counts = Array.make n_s 0 in
        fun () ->
          let suspected = Fdlib.Fd.decode_set (ops.query ()) in
          List.iter
            (fun j -> if j >= 0 && j < n_s then counts.(j) <- counts.(j) + 1)
            suspected;
          ops.publish (Value.int_vec counts);
          let published = ops.collect () in
          let sums = Array.make n_s 0 in
          Array.iter
            (fun cell ->
              if not (Value.is_unit cell) then
                Array.iteri
                  (fun j c -> sums.(j) <- sums.(j) + c)
                  (Value.to_int_vec cell))
            published;
          let leader = ref 0 in
          Array.iteri (fun j s -> if s < sums.(!leader) then leader := j) sums;
          ops.emit (Fdlib.Fd.encode_leader !leader));
  }

let identity_of ~name =
  {
    red_name = "identity:" ^ name;
    red_make = (fun ~me:_ ~n_s:_ ops () -> ops.emit (ops.query ()));
  }

let local ~name f =
  {
    red_name = "local:" ^ name;
    red_make = (fun ~me:_ ~n_s ops () -> ops.emit (f ~n_s (ops.query ())));
  }
