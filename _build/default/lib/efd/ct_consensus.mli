(** Chandra–Toueg consensus with ◇S — the companion algorithm of the
    failure-detector papers (reference [10] of ours), run natively: the
    S-processes execute the rotating-coordinator protocol over the
    message-passing layer ({!Simkit.Mp}) while the C-processes publish
    inputs and spin on the decision register.

    Requires a {e majority} of correct S-processes (environments E_t with
    [t ≤ (n−1)/2]) — unlike the Ω-based solvers, which survive [n−1]
    crashes: the classic resilience/advice trade-off, measurable here.
    Safety (agreement, validity) holds in every run, even with junk
    suspicions; liveness needs ◇S's eventual weak accuracy. *)

val make : unit -> Algorithm.t
(** The drawn FD must output suspicion sets ({!Fdlib.Fd.encode_set}), e.g.
    {!Fdlib.Classic.eventually_strong} or {!Fdlib.Classic.eventually_perfect}. *)
