lib/efd/splitter.ml: Fmt Simkit Value
