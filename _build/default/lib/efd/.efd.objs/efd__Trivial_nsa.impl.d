lib/efd/trivial_nsa.ml: Algorithm Array Simkit Value
