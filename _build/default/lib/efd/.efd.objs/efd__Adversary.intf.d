lib/efd/adversary.mli: Algorithm Fdlib Format Run Simkit Tasklib
