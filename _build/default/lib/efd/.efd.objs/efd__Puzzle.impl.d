lib/efd/puzzle.ml: Algorithm Array Bglib Fdlib Kcodes Ksa Machine_runner Printf Simkit Value
