lib/efd/algorithm.mli: Simkit Value
