lib/efd/paxos_consensus.ml: Algorithm Alpha Array Ksa Simkit Value
