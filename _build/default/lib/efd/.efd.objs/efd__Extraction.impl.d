lib/efd/extraction.ml: Algorithm Array Fdlib Fun Int List Random Simkit Tasklib Value
