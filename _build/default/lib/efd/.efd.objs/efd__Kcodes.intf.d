lib/efd/kcodes.mli: Bglib Simkit Value
