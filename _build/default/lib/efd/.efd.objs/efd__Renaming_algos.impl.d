lib/efd/renaming_algos.ml: Algorithm Array Fun List Printf Simkit Value
