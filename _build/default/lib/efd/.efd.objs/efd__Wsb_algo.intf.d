lib/efd/wsb_algo.mli: Algorithm
