lib/efd/splitter.mli: Format Simkit
