lib/efd/adversary.ml: Algorithm Array Fdlib Fmt List Option Random Renaming_algos Run Simkit Tasklib Value
