lib/efd/one_concurrent.mli: Algorithm Tasklib
