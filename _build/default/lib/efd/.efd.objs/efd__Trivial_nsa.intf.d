lib/efd/trivial_nsa.mli: Algorithm
