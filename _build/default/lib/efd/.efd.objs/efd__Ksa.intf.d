lib/efd/ksa.mli: Algorithm Value
