lib/efd/leader_consensus.mli: Simkit Value
