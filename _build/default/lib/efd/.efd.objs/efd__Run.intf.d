lib/efd/run.mli: Algorithm Fdlib Format Random Simkit Tasklib
