lib/efd/extraction.mli: Algorithm Fdlib Simkit Tasklib Value
