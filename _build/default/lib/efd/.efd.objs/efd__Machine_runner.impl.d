lib/efd/machine_runner.ml: Array Bglib List Simkit Value
