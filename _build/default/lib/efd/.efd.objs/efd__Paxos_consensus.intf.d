lib/efd/paxos_consensus.mli: Algorithm
