lib/efd/kconcurrent.ml: Algorithm Array Bglib Kcodes Ksa Printf Simkit Value
