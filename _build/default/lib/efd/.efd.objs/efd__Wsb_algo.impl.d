lib/efd/wsb_algo.ml: Algorithm Array Fun List Printf Simkit Value
