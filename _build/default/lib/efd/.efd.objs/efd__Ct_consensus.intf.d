lib/efd/ct_consensus.mli: Algorithm
