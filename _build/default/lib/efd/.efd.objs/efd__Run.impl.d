lib/efd/run.ml: Algorithm Array Fdlib Fmt List Random Simkit Tasklib
