lib/efd/conventional.mli: Algorithm Fdlib Format Simkit Tasklib
