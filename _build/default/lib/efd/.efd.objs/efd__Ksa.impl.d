lib/efd/ksa.ml: Algorithm Array Fdlib Leader_consensus Printf Simkit Value
