lib/efd/leader_consensus.ml: Array Bglib Simkit Value
