lib/efd/emulation.ml: Array Fdlib List Random Simkit Value
