lib/efd/kcodes.ml: Array Bglib Fun Leader_consensus List Simkit Value
