lib/efd/resilience.ml: Algorithm Array List Printf Random Simkit Value
