lib/efd/algorithm.ml: Simkit Value
