lib/efd/interleave.ml: Algorithm Simkit
