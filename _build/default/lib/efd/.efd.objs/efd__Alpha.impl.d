lib/efd/alpha.ml: Array Simkit Value
