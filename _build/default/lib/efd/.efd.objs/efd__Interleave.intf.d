lib/efd/interleave.mli: Algorithm
