lib/efd/puzzle.mli: Algorithm Fdlib
