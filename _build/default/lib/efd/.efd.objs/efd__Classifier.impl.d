lib/efd/classifier.ml: Array Fdlib Fmt Fun Kconc_tasks List One_concurrent Option Renaming_algos Run Scanf Simkit String Tasklib Value Wsb_algo
