lib/efd/renaming_algos.mli: Algorithm
