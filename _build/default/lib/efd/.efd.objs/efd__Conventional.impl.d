lib/efd/conventional.ml: Algorithm Array Fdlib Fmt List Random Simkit Tasklib
