lib/efd/emulation.mli: Fdlib Simkit Value
