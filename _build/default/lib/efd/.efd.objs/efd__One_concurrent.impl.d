lib/efd/one_concurrent.ml: Algorithm Array Simkit Tasklib Value
