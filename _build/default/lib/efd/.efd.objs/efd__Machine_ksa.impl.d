lib/efd/machine_ksa.ml: Algorithm Array Bglib Ksa Machine_runner Printf Simkit Value
