lib/efd/machine_runner.mli: Bglib Simkit Value
