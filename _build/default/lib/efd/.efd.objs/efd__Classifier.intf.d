lib/efd/classifier.mli: Algorithm Format Tasklib
