lib/efd/machine_ksa.mli: Algorithm
