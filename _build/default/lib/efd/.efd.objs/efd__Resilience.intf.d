lib/efd/resilience.mli: Algorithm Random Run
