lib/efd/kconc_tasks.mli: Algorithm Value
