lib/efd/alpha.mli: Simkit Value
