lib/efd/ma_renaming.mli: Algorithm
