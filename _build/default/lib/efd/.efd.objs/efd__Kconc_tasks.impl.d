lib/efd/kconc_tasks.ml: Algorithm Array Simkit Value
