lib/efd/ma_renaming.ml: Algorithm Array Printf Simkit Splitter Value
