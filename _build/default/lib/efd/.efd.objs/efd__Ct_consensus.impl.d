lib/efd/ct_consensus.ml: Algorithm Array Fdlib Fun List Simkit Value
