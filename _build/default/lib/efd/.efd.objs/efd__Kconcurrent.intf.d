lib/efd/kconcurrent.mli: Algorithm Bglib
