module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op
module Task = Tasklib.Task

let decode_slot v = if Value.is_unit v then None else Some v

let make task =
  Algorithm.restricted ~name:"one-concurrent-generic" (fun ctx ->
      let out_regs = Memory.alloc ctx.Algorithm.mem ctx.Algorithm.n_c in
      fun i _input ->
        let input =
          Array.map (fun r -> decode_slot (Op.read r)) ctx.Algorithm.input_regs
        in
        let output = Array.map (fun r -> decode_slot (Op.read r)) out_regs in
        let v = task.Task.choose ~input ~output i in
        Op.write out_regs.(i) v;
        Op.decide v)
