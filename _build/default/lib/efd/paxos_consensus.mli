(** Consensus from the round-based register and Ω — the third consensus
    implementation in the library (after {!Ksa}'s query/answer protocol and
    {!Machine_ksa}'s machine encoding), with a different division of labor:
    here the {e synchronization} side does all the work. S-processes that
    trust themselves propose a visible input through {!Alpha} with their
    own round arithmetic; C-processes merely publish inputs and spin on the
    decision register — the purest illustration of "advice": computation
    processes that never synchronize at all. *)

val make : unit -> Algorithm.t
(** Solves consensus; the drawn FD must output Ω leader encodings. *)
