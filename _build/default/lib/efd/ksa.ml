module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op

let decode_leader_vector ~k v =
  match v with
  | Value.Unit -> Array.make k (-1) (* no advice: nobody is trusted *)
  | Value.Int leader -> Array.make k leader
  | _ ->
    let vec = Fdlib.Fd.decode_vector v in
    if Array.length vec <> k then
      invalid_arg "Ksa: FD vector length mismatch"
    else vec

let make ?(max_rounds = 512) ~k () =
  if k < 1 then invalid_arg "Ksa.make";
  {
    Algorithm.algo_name = Printf.sprintf "ksa-with-vector-Omega-%d" k;
    make =
      (fun ctx ->
        let mem = ctx.Algorithm.mem in
        let instances =
          Array.init k (fun _ ->
              Leader_consensus.create mem ~n_c:ctx.Algorithm.n_c ~max_rounds)
        in
        let c_run i input =
          let clients =
            Array.map (fun lc -> Leader_consensus.client lc ~me:i input) instances
          in
          let rec loop () =
            let decided = ref None in
            Array.iter
              (fun cl ->
                if !decided = None then
                  match Leader_consensus.pump cl with
                  | Leader_consensus.Decided v -> decided := Some v
                  | Leader_consensus.Pending | Leader_consensus.Exhausted -> ())
              clients;
            match !decided with Some v -> Op.decide v | None -> loop ()
          in
          loop ()
        in
        let s_run me =
          let rec loop () =
            let w = decode_leader_vector ~k (Op.query ()) in
            Array.iteri
              (fun j leader ->
                if leader = me then Leader_consensus.serve instances.(j))
              w;
            loop ()
          in
          loop ()
        in
        { Algorithm.c_run; s_run });
  }

let consensus ?max_rounds () = make ?max_rounds ~k:1 ()
