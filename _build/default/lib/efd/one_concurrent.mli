(** The Proposition-1 generic solver: every task is 1-concurrently solvable.

    Each participant reads the inputs written so far and the outputs decided
    so far, extends the output using the task's choice oracle, publishes and
    decides. Correct in 1-concurrent runs (where each undecided participant
    runs alone); in more concurrent runs two processes may extend the same
    output prefix inconsistently — the negative side is exercised by the
    {!Adversary} experiments. *)

val make : Tasklib.Task.t -> Algorithm.t
