module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op
module Machine_consensus = Bglib.Machine_consensus

let make ?(max_rounds = 64) ~k () =
  if k < 1 then invalid_arg "Machine_ksa.make";
  {
    Algorithm.algo_name = Printf.sprintf "machine-ksa-%d" k;
    make =
      (fun ctx ->
        let n = ctx.Algorithm.n_c in
        let a_regs = Memory.alloc ctx.Algorithm.mem (k * max_rounds) in
        let env_regs = Array.append ctx.Algorithm.input_regs a_regs in
        let mc =
          Machine_consensus.create ~k ~n_machines:n ~max_rounds ~input_offset:0
            ~n_inputs:n ~answer_offset:n ()
        in
        let input_of ~me ~env =
          let v = env.(me) in
          if Value.is_unit v then None else Some v
        in
        let machines = Machine_consensus.machines mc ~input_of in
        let h = Machine_runner.create ctx.Algorithm.mem ~machines ~env_regs in
        let c_run i _input = Op.decide (Machine_runner.run_machine h ~me:i) in
        let s_run me =
          let rec loop () =
            let w = Ksa.decode_leader_vector ~k (Op.query ()) in
            let states = Machine_runner.read_states h in
            Machine_runner.serve_consensus mc ~states ~env_regs ~leaders:w ~me;
            loop ()
          in
          loop ()
        in
        { Algorithm.c_run; s_run });
  }
