module Runtime = Simkit.Runtime
module Op = Simkit.Runtime.Op
module Failure = Simkit.Failure
module History = Simkit.History
module Pid = Simkit.Pid

(* "Each C-process p_i executes alternatively steps of A^C_{p_i} and steps
   of A^S_{q_i}" (Proposition 2's proof). Both automata run as coroutines
   inside a nested runtime sharing the outer memory: every inner step is a
   single memory access executed within the outer process's slice (hence
   atomic), and the outer process pays one step (yield) for each, so the
   emulated run has the same step structure as a run of the original
   algorithm in the pattern where all unemulated S-processes are crashed.
   Queries of the emulated S-automaton observe the trivial detector, as the
   proposition requires. *)

let restricted_of (a : Algorithm.t) =
  Algorithm.restricted ~name:(a.Algorithm.algo_name ^ "+interleaved")
    (fun ctx ->
      let inst = a.Algorithm.make ctx in
      fun i input ->
        let inner =
          Runtime.create
            {
              Runtime.n_c = i + 1 (* only index i is stepped *);
              n_s = i + 1;
              memory = ctx.Algorithm.mem;
              pattern = Failure.failure_free (i + 1);
              history = History.trivial;
              record_trace = false;
            }
            ~c_code:(fun j () -> if j = i then inst.Algorithm.c_run j input)
            ~s_code:(fun j () -> if j = i then inst.Algorithm.s_run j)
        in
        let rec alternate () =
          Runtime.step inner (Pid.c i);
          Op.yield ();
          Runtime.step inner (Pid.s i);
          Op.yield ();
          match Runtime.decision inner i with
          | Some v ->
            Runtime.destroy inner;
            Op.decide v
          | None -> alternate ()
        in
        alternate ())
