module Memory = Simkit.Memory
module Op = Simkit.Runtime.Op

let two_concurrent ~j =
  if j < 2 then invalid_arg "Wsb_algo.two_concurrent";
  Algorithm.restricted ~name:(Printf.sprintf "wsb-2-concurrent(j=%d)" j)
    (fun ctx ->
      let n = ctx.Algorithm.n_c in
      let board = Memory.alloc ctx.Algorithm.mem n in
      let all = Array.append ctx.Algorithm.input_regs board in
      fun i _input ->
        let decide bit =
          Op.write board.(i) (Value.int bit);
          Op.decide (Value.int bit)
        in
        let rec loop () =
          let cells = Op.snapshot all in
          let participants =
            List.filter
              (fun c -> not (Value.is_unit cells.(c)))
              (List.init n Fun.id)
          in
          let decided =
            List.filter_map
              (fun c ->
                let v = cells.(n + c) in
                if Value.is_unit v then None else Some (c, Value.to_int v))
              (List.init n Fun.id)
          in
          let undecided =
            List.filter
              (fun c -> not (List.mem_assoc c decided))
              participants
          in
          if List.exists (fun (_, b) -> b = 1) decided then decide 0
          else if List.length participants < j then decide 0
          else begin
            match undecided with
            | [ me ] when me = i ->
              (* last one standing: break symmetry if needed *)
              if List.for_all (fun (_, b) -> b = 0) decided then decide 1
              else decide 0
            | [ a; _ ] when a = i -> decide 0 (* smaller of the two moves *)
            | _ -> loop () (* larger of a pair, or >2 undecided: wait *)
          end
        in
        loop ())
