(** Failure detector histories.

    A history [H] assigns to each S-process and each time the value its
    failure detector module would return if queried then ([H(q_i, τ)] in the
    paper). Histories are total functions; the runtime samples them at the
    global step index of each query step. *)

type t

val make : name:string -> (int -> int -> Value.t) -> t
(** [make ~name f] where [f q_index time] is the module output. *)

val name : t -> string
val get : t -> q:int -> time:int -> Value.t

val constant : name:string -> Value.t -> t
(** Same value at every process and time. *)

val trivial : t
(** The trivial failure detector history: always [Value.unit]. *)

val tabulate : t -> n_s:int -> horizon:int -> Value.t array array
(** [tabulate h ~n_s ~horizon] materializes [h] as [out.(q).(tau)], for
    property checkers. *)
