(** Exhaustive schedule enumeration — model checking in miniature.

    For small systems and short horizons the sampled adversaries of
    {!Schedule} can be replaced by full enumeration: every schedule over
    the given processes up to a depth is replayed from scratch (runs are
    deterministic, so replay is exact) and a property is checked at every
    prefix. A returned counterexample is a concrete schedule, directly
    replayable.

    Cost is |pids|^depth runs of ≤ depth steps each: keep
    |pids| ≤ 4 and depth ≤ 12 or so. Used to verify the agreement
    primitives (safe agreement, commit–adopt, adoption set-agreement)
    against {e all} interleavings rather than sampled ones. *)

type verdict = Ok of int  (** number of complete schedules checked *)
             | Counterexample of Pid.t list

val check :
  build:(unit -> Runtime.t) ->
  pids:Pid.t list ->
  depth:int ->
  prop:(Runtime.t -> bool) ->
  verdict
(** Depth-first over all schedules: after every step of every schedule,
    [prop rt] must hold. The runtime is rebuilt (and destroyed) per branch
    via [build]; prefixes are replayed, so [build] must be deterministic. *)

val check_final :
  build:(unit -> Runtime.t) ->
  pids:Pid.t list ->
  depth:int ->
  prop:(Runtime.t -> bool) ->
  verdict
(** Like {!check} but the property is only required at depth (for
    properties that are meaningless mid-flight). *)
