(** Run validators: the finite-run counterparts of the paper's properties. *)

val wait_free_ok : Runtime.t -> min_scheds:int -> bool
(** Wait-freedom (bounded form): every participating C-process that was
    scheduled at least [min_scheds] times has decided. *)

val undecided_with_scheds : Runtime.t -> min_scheds:int -> int list
(** The witnesses violating {!wait_free_ok}. *)

val min_correct_s_scheds : Runtime.t -> int
(** Minimum scheduling count over correct S-processes — a fairness measure
    (0 means some correct S-process never ran, i.e. the run was unfair). *)

val max_concurrency : Runtime.t -> int
(** Maximum, over the run, of the number of participating-but-undecided
    C-processes — the concurrency level of the run (§2.2). *)

val is_k_concurrent : Runtime.t -> k:int -> bool

val output_vector : Runtime.t -> Value.t option array
(** The run's output vector [O] (⊥ = [None]). *)
