(** Run traces: the sequence of steps taken, for checkers and debugging. *)

type event =
  | Read of Memory.reg * Value.t
  | Write of Memory.reg * Value.t
  | Snapshot of Memory.reg array
  | Query of Value.t
  | Decide of Value.t
  | Null  (** step of a terminated/decided process, or skipped crashed process *)

type entry = { time : int; pid : Pid.t; event : event }
type t

val create : enabled:bool -> t
val enabled : t -> bool
val record : t -> time:int -> pid:Pid.t -> event -> unit
val entries : t -> entry list
(** In chronological order. *)

val length : t -> int
val steps_of : t -> Pid.t -> entry list
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
