(* chan.(s * n + r): Value.list of s's messages to r, oldest last; the
   sender rewrites the whole (growing) list — single-writer, so the local
   copy is authoritative and no read-back is needed. *)
type t = { n : int; chan : Memory.reg array }

let create mem ~n =
  if n <= 0 then invalid_arg "Mp.create";
  { n; chan = Memory.alloc mem (n * n) }

type endpoint = {
  net : t;
  me : int;
  sent : Value.t list array;  (** my outboxes, newest first *)
  consumed : int array;  (** messages already received per sender *)
}

let endpoint net ~me =
  if me < 0 || me >= net.n then invalid_arg "Mp.endpoint";
  {
    net;
    me;
    sent = Array.make net.n [];
    consumed = Array.make net.n 0;
  }

let send ep ~to_ msg =
  if to_ < 0 || to_ >= ep.net.n then invalid_arg "Mp.send";
  ep.sent.(to_) <- msg :: ep.sent.(to_);
  Runtime.Op.write
    ep.net.chan.((ep.me * ep.net.n) + to_)
    (Value.list ep.sent.(to_))

let broadcast ep msg =
  for r = 0 to ep.net.n - 1 do
    send ep ~to_:r msg
  done

let recv_new ep =
  let out = ref [] in
  for s = 0 to ep.net.n - 1 do
    let cell = Runtime.Op.read ep.net.chan.((s * ep.net.n) + ep.me) in
    let history = if Value.is_unit cell then [] else Value.to_list cell in
    let total = List.length history in
    let fresh = total - ep.consumed.(s) in
    if fresh > 0 then begin
      (* history is newest-first; take the fresh prefix, oldest first *)
      let rec take n l = if n = 0 then [] else List.hd l :: take (n - 1) (List.tl l) in
      let msgs = List.rev (take fresh history) in
      ep.consumed.(s) <- total;
      out := !out @ List.map (fun m -> (s, m)) msgs
    end
  done;
  !out
