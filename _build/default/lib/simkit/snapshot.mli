(** Wait-free atomic snapshot built from atomic registers (Afek et al. 1993,
    unbounded-sequence-number variant).

    The runtime also offers {!Runtime.Op.snapshot} as a one-step primitive;
    this module is the honest construction justifying that primitive: a
    [scan] here costs O(n²) register reads but is linearizable and wait-free.
    All functions below perform runtime effects and must be called from
    inside process code.

    Each slot [i] is owned by one writer. [update] embeds a full scan in the
    written segment, which lets a concurrent scanner "borrow" the view of a
    writer it saw move twice — the classic wait-freedom trick. *)

type h

val create : Memory.t -> n:int -> h
(** Allocate the segments. All slots start at [Value.unit] (⊥). *)

val n_slots : h -> int

val update : h -> int -> Value.t -> unit
(** [update h i v] sets slot [i] to [v] (process [i]'s own slot). *)

val scan : h -> Value.t array
(** Linearizable snapshot of all slots. *)

val collect : h -> Value.t array
(** Non-atomic read of all slots, one register read each — cheaper, weaker:
    a regular collect, not a snapshot. *)

val read_slot : h -> int -> Value.t
(** One register read of slot [i]. *)
