type verdict = Ok of int | Counterexample of Pid.t list

(* Replay [sched] on a fresh runtime and evaluate the property — after
   every step, or only after the last one. Rebuilding per branch is
   O(depth) heavier than incremental checkpointing but needs no state
   cloning, and runs are deterministic, so it is exact. *)
let replay ~build ~prop ~every sched =
  let rt = build () in
  let rec go = function
    | [] -> true
    | p :: rest ->
      Runtime.step rt p;
      if (every || rest = []) && not (prop rt) then false else go rest
  in
  let ok = go sched in
  Runtime.destroy rt;
  ok

let enumerate ~build ~pids ~depth ~prop ~every =
  let count = ref 0 in
  (* DFS over schedules. In [every] mode each node's last step is checked
     when the node is visited (prefix checks were done at shallower
     nodes); in final mode only full-depth schedules are replayed. *)
  let rec go prefix d =
    if d = 0 then begin
      incr count;
      if every then None
      else
        let sched = List.rev prefix in
        if replay ~build ~prop ~every:false sched then None else Some sched
    end
    else
      let rec try_pids = function
        | [] -> None
        | p :: rest ->
          let sched = List.rev (p :: prefix) in
          if every && not (replay ~build ~prop ~every:false sched) then
            Some sched
          else begin
            match go (p :: prefix) (d - 1) with
            | Some cex -> Some cex
            | None -> try_pids rest
          end
      in
      try_pids pids
  in
  match go [] depth with
  | Some cex -> Counterexample cex
  | None -> Ok !count

let check ~build ~pids ~depth ~prop =
  enumerate ~build ~pids ~depth ~prop ~every:true

let check_final ~build ~pids ~depth ~prop =
  enumerate ~build ~pids ~depth ~prop ~every:false
