let undecided_with_scheds rt ~min_scheds =
  List.filter
    (fun i ->
      Runtime.participating rt i
      && Runtime.decision rt i = None
      && Runtime.sched_count rt (Pid.c i) >= min_scheds)
    (List.init (Runtime.n_c rt) Fun.id)

let wait_free_ok rt ~min_scheds = undecided_with_scheds rt ~min_scheds = []

let min_correct_s_scheds rt =
  let pat = Runtime.pattern rt in
  List.fold_left
    (fun acc i -> min acc (Runtime.sched_count rt (Pid.s i)))
    max_int
    (Failure.correct pat)

(* Sweep over the +1/-1 events at participation starts and decision times.
   A decision at time τ ends the active interval [start, τ]; the process is
   still undecided *at* τ (the decide step is its last), so the -1 lands at
   τ + 1. *)
let max_concurrency rt =
  let events = ref [] in
  for i = 0 to Runtime.n_c rt - 1 do
    match Runtime.first_step_time rt i with
    | None -> ()
    | Some start ->
      events := (start, 1) :: !events;
      (match Runtime.decide_time rt i with
      | None -> ()
      | Some d -> events := (d + 1, -1) :: !events)
  done;
  let sorted =
    List.sort
      (fun (t1, d1) (t2, d2) ->
        if t1 <> t2 then Int.compare t1 t2 else Int.compare d1 d2)
      !events
  in
  let _, best =
    List.fold_left
      (fun (cur, best) (_, d) ->
        let cur = cur + d in
        (cur, max best cur))
      (0, 0) sorted
  in
  best

let is_k_concurrent rt ~k = max_concurrency rt <= k
let output_vector rt = Runtime.decisions rt
