type event =
  | Read of Memory.reg * Value.t
  | Write of Memory.reg * Value.t
  | Snapshot of Memory.reg array
  | Query of Value.t
  | Decide of Value.t
  | Null

type entry = { time : int; pid : Pid.t; event : event }
type t = { enabled : bool; mutable rev_entries : entry list; mutable len : int }

let create ~enabled = { enabled; rev_entries = []; len = 0 }
let enabled t = t.enabled

let record t ~time ~pid event =
  if t.enabled then begin
    t.rev_entries <- { time; pid; event } :: t.rev_entries;
    t.len <- t.len + 1
  end

let entries t = List.rev t.rev_entries
let length t = t.len
let steps_of t pid = List.filter (fun e -> Pid.equal e.pid pid) (entries t)

let pp_event ppf = function
  | Read (r, v) -> Fmt.pf ppf "read r%d -> %a" r Value.pp v
  | Write (r, v) -> Fmt.pf ppf "write r%d := %a" r Value.pp v
  | Snapshot rs -> Fmt.pf ppf "snapshot (%d regs)" (Array.length rs)
  | Query v -> Fmt.pf ppf "query -> %a" Value.pp v
  | Decide v -> Fmt.pf ppf "decide %a" Value.pp v
  | Null -> Fmt.string ppf "null"

let pp_entry ppf e =
  Fmt.pf ppf "[%4d] %a: %a" e.time Pid.pp e.pid pp_event e.event

let pp ppf t = Fmt.(list ~sep:(any "@\n") pp_entry) ppf (entries t)
