(** Asynchronous message passing layered over the shared memory.

    The failure-detector literature (Chandra–Toueg [10]) is natively
    message-passing; this module provides reliable FIFO channels so its
    algorithms can run among the S-processes unchanged. Each ordered pair
    gets a single-writer register holding the sender's whole history —
    [send] is one write, receiving polls the peer registers and tracks a
    local consumed counter. Channels are reliable and FIFO; crashes only
    silence the sender (exactly the crash-stop MP model).

    All operations perform runtime steps; endpoints are per-process local
    state. *)

type t

val create : Memory.t -> n:int -> t

type endpoint

val endpoint : t -> me:int -> endpoint

val send : endpoint -> to_:int -> Value.t -> unit
(** One step. *)

val broadcast : endpoint -> Value.t -> unit
(** [n] steps (includes a self-send, as the classic algorithms assume). *)

val recv_new : endpoint -> (int * Value.t) list
(** Poll every peer channel ([n] steps) and return the not-yet-consumed
    messages as (sender, message), senders in id order, each sender's
    messages in send order. *)
