(* Segment layout: each register holds (seq, (value, embedded-scan)) where
   embedded-scan is the Vec of slot values observed by the writer's own scan
   performed just before writing. Initial segments are Value.unit (⊥),
   read as seq = 0, value = ⊥, no embedded scan. *)

type h = { regs : Memory.reg array; n : int }

let create mem ~n =
  if n <= 0 then invalid_arg "Snapshot.create";
  { regs = Memory.alloc mem n; n }

let n_slots h = h.n

let decode seg =
  if Value.is_unit seg then (0, Value.unit, None)
  else
    let seq, v, emb = Value.to_triple seg in
    (Value.to_int seq, v, Some (Value.to_vec emb))

let value_of seg =
  let _, v, _ = decode seg in
  v

let read_slot h i = value_of (Runtime.Op.read h.regs.(i))
let collect_raw h = Array.map (fun r -> Runtime.Op.read r) h.regs
let collect h = Array.map value_of (collect_raw h)

let seqs_equal c1 c2 =
  let ok = ref true in
  for j = 0 to Array.length c1 - 1 do
    let s1, _, _ = decode c1.(j) and s2, _, _ = decode c2.(j) in
    if s1 <> s2 then ok := false
  done;
  !ok

let scan h =
  let moved = Array.make h.n false in
  let rec attempt () =
    let c1 = collect_raw h in
    let c2 = collect_raw h in
    if seqs_equal c1 c2 then Array.map value_of c2
    else begin
      (* Some writer moved between the collects. If one moved twice since the
         scan began, its embedded scan is linearizable within our interval. *)
      let borrowed = ref None in
      for j = 0 to h.n - 1 do
        let s1, _, _ = decode c1.(j) and s2, _, emb = decode c2.(j) in
        if s1 <> s2 then begin
          if moved.(j) then begin
            match emb with
            | Some view when !borrowed = None -> borrowed := Some view
            | _ -> ()
          end;
          moved.(j) <- true
        end
      done;
      match !borrowed with Some view -> Array.copy view | None -> attempt ()
    end
  in
  attempt ()

let update h i v =
  if i < 0 || i >= h.n then invalid_arg "Snapshot.update";
  let view = scan h in
  let old = Runtime.Op.read h.regs.(i) in
  let seq, _, _ = decode old in
  Runtime.Op.write h.regs.(i)
    (Value.triple (Value.int (seq + 1)) v (Value.vec view))
