type t = { name : string; get : int -> int -> Value.t }

let make ~name get = { name; get }
let name h = h.name
let get h ~q ~time = h.get q time
let constant ~name v = { name; get = (fun _ _ -> v) }
let trivial = constant ~name:"trivial" Value.unit

let tabulate h ~n_s ~horizon =
  Array.init n_s (fun q -> Array.init horizon (fun tau -> h.get q tau))
