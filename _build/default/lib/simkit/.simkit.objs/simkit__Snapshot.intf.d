lib/simkit/snapshot.mli: Memory Value
