lib/simkit/trace.mli: Format Memory Pid Value
