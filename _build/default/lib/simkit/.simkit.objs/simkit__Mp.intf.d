lib/simkit/mp.mli: Memory Value
