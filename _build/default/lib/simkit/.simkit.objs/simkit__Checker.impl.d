lib/simkit/checker.ml: Failure Fun Int List Pid Runtime
