lib/simkit/exhaustive.mli: Pid Runtime
