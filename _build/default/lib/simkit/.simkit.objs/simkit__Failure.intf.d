lib/simkit/failure.mli: Format Random
