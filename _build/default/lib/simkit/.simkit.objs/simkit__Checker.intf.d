lib/simkit/checker.mli: Runtime Value
