lib/simkit/runtime.mli: Failure History Memory Pid Trace Value
