lib/simkit/schedule.mli: Pid Random Runtime Value
