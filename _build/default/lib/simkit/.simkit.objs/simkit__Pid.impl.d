lib/simkit/pid.ml: Fmt Int List
