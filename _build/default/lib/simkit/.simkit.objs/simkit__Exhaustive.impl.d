lib/simkit/exhaustive.ml: List Pid Runtime
