lib/simkit/memory.mli: Value
