lib/simkit/history.mli: Value
