lib/simkit/history.ml: Array Value
