lib/simkit/runtime.ml: Array Effect Failure Fun History List Memory Pid Trace Value
