lib/simkit/trace.ml: Array Fmt List Memory Pid Value
