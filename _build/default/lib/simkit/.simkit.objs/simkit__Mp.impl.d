lib/simkit/mp.ml: Array List Memory Runtime Value
