lib/simkit/failure.ml: Array Fmt Fun List Option Printf Random
