lib/simkit/schedule.ml: Array List Pid Printf Random Runtime Value
