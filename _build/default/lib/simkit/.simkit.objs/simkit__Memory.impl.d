lib/simkit/memory.ml: Array Value
