lib/simkit/pid.mli: Format
