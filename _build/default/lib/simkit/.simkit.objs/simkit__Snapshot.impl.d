lib/simkit/snapshot.ml: Array Memory Runtime Value
