(* Theorem 7, "the puzzle": advice that solves k-set agreement among one
   fixed set U of k+1 processes solves it among all n.

   The demo runs the composition with U = {p1, p2, p3}, k = 2, n = 5: the
   five C-processes simulate U's three codes through the Figure-2 layer;
   the S-processes answer both the simulation's consensus queries
   (vector-Ω3) and the simulated algorithm's own queries (D = vector-Ω2).
   The processes OUTSIDE U decide even in runs where U never takes a step.

   Run with: dune exec examples/puzzle_demo.exe *)

open Simkit
open Tasklib
open Efd

let () =
  let n = 5 and k = 2 in
  let task = Set_agreement.make ~n ~k () in
  let algo = Puzzle.make ~k () in
  let fd = Puzzle.demo_fd ~k () in
  Fmt.pr "=== Theorem 7: (U,%d)-agreement => (Pi,%d)-agreement (n = %d) ===@.@."
    k k n;

  (* full participation *)
  let input = Vectors.of_ints [ Some 0; Some 1; Some 2; Some 1; Some 0 ] in
  let r =
    Run.execute ~budget:4_000_000 ~task ~algo ~fd
      ~pattern:(Failure.pattern ~n_s:n [ (4, 100) ])
      ~input ~seed:42 ()
  in
  Fmt.pr "full participation:@.%a@.@." Run.pp_report r;

  (* the point: outsiders decide although U = {p1,p2,p3} never runs *)
  let input = Vectors.of_ints [ None; None; None; Some 2; Some 0 ] in
  let r =
    Run.execute ~budget:4_000_000 ~task ~algo ~fd
      ~pattern:(Failure.failure_free n)
      ~input ~seed:43 ()
  in
  Fmt.pr "U never participates; p4 and p5 still decide:@.%a@.@." Run.pp_report r;
  Fmt.pr
    "the simulators drive U's codes themselves, proposing their own inputs@.\
     colorlessly — the separation of computation from synchronization is@.\
     what makes the generalization go through (the paper notes years of@.\
     failed attempts in the conventional model).@."
