(* Progress adversaries (the paper's §6 outlook): replace wait-freedom by
   "at most t participants stall forever" and watch the set-agreement
   crossover — waiting for (participants − t) inputs solves k-set agreement
   exactly when k > t.

   Run with: dune exec examples/resilience_demo.exe *)

open Simkit
open Tasklib
open Efd

let n = 5
let seeds = List.init 12 (fun i -> i + 1)

let solves ~t_stalls ~k =
  let task = Set_agreement.make ~n ~k () in
  let adv = Resilience.t_resilient ~n ~t:t_stalls in
  List.for_all
    (fun seed ->
      let input = Array.init n (fun i -> Some (Value.int (n - i))) in
      let r =
        Run.execute ~budget:150_000
          ~policy:(Resilience.policy adv ~after:30)
          ~task
          ~algo:(Resilience.waiting_for ~t_stalls)
          ~fd:Fdlib.Fd.trivial
          ~pattern:(Failure.failure_free 1)
          ~input ~seed ()
      in
      r.Run.r_task_ok)
    seeds
  &&
  (* deterministic staggered arrivals: the first n−t processes decide on
     the largest inputs, then each remaining process arrives alone and sees
     one more (smaller) input — forcing t+1 distinct minima *)
  let input = Array.init n (fun i -> Some (Value.int (n - i))) in
  let staggered ~participants ~n_c:_ ~n_s:_ ~rng:_ =
    ignore participants;
    (* segments, built back to front: each late arrival gets 600 solo
       choices before the next takes over *)
    let first = Schedule.explicit_looping (List.init (n - t_stalls) Pid.c) in
    let rest = List.init t_stalls (fun d -> Pid.c (n - t_stalls + d)) in
    let tail =
      List.fold_right
        (fun p acc -> Schedule.seq (Schedule.explicit_looping [ p ]) ~steps:600 acc)
        rest
        (Schedule.explicit_looping (List.init n Pid.c))
    in
    Schedule.seq first ~steps:600 tail
  in
  let r =
    Run.execute ~budget:20_000 ~policy:staggered ~task
      ~algo:(Resilience.waiting_for ~t_stalls)
      ~fd:Fdlib.Fd.trivial
      ~pattern:(Failure.failure_free 1)
      ~input ~seed:1 ()
  in
  r.Run.r_task_ok

let () =
  Fmt.pr "=== t-resilient set agreement, n = %d (descending inputs) ===@.@." n;
  Fmt.pr "  does waiting-for-(n-t)-inputs satisfy k-set agreement?@.@.";
  Fmt.pr "   t\\k |    1    2    3    4@.  -----+---------------------@.";
  List.iter
    (fun t ->
      Fmt.pr "  %4d |" t;
      List.iter
        (fun k ->
          let verdict = solves ~t_stalls:t ~k in
          Fmt.pr "  %s"
            (if verdict then " ok " else if k <= t then "VIOL" else " ?? "))
        [ 1; 2; 3; 4 ];
      Fmt.pr "@.")
    [ 0; 1; 2; 3 ];
  Fmt.pr
    "@.  expected shape: 'ok' exactly on and above the diagonal k = t+1 —@.\
    \  with t stalls tolerated, deciders can miss up to t of the smallest@.\
    \  inputs, so up to t+1 distinct minima get decided. This is the §6@.\
    \  outlook of the paper: progress conditions beyond wait-freedom slot@.\
    \  into the same framework.@."
