(* The advice spectrum: the same consensus task under detectors of
   different strength. Too little advice and healthy computation processes
   spin forever; enough advice and they decide wait-free — plus the §2.2
   reduction machinery turning weak advice (eventually-strong suspicions)
   into strong advice (an eventual leader) at run time.

   Run with: dune exec examples/advice_spectrum.exe *)

open Simkit
open Tasklib
open Efd

let n = 4
let task = Set_agreement.make ~n ~k:1 ()

(* a perfect detector yields Omega locally: trust the smallest process it
   does not report crashed *)
let omega_of_perfect =
  Fdlib.Fd.map_output ~name:"Omega<=P"
    (fun ~q:_ ~time:_ out ->
      let crashed = Fdlib.Fd.decode_set out in
      match Fdlib.Convert.complement ~n_s:n crashed with
      | leader :: _ -> Fdlib.Fd.encode_leader leader
      | [] -> Fdlib.Fd.encode_leader 0)
    (Fdlib.Classic.perfect ())

(* junk advice: a leader that rotates forever *)
let rotating =
  Fdlib.Fd.make ~name:"rotating-leader" (fun pattern _rng ->
      let n_s = pattern.Failure.n_s in
      History.make ~name:"rot" (fun q time ->
          Fdlib.Fd.encode_leader ((q + (time / 3)) mod n_s)))

let () =
  Fmt.pr "=== consensus (n = %d) across the advice spectrum ===@.@." n;
  Fmt.pr "  pattern: q2 crashes at 40, q4 at 15@.@.";
  let pattern = Failure.pattern ~n_s:n [ (1, 40); (3, 15) ] in
  Fmt.pr "  %-26s %10s %10s %10s@." "detector" "decided" "safe" "steps";
  Fmt.pr "  %s@." (String.make 60 '-');
  List.iter
    (fun (name, fd) ->
      let rng = Random.State.make [| 11 |] in
      let input = Task.sample_input task rng in
      let r =
        Run.execute ~budget:120_000 ~task ~algo:(Ksa.consensus ()) ~fd ~pattern
          ~input ~seed:11 ()
      in
      Fmt.pr "  %-26s %10b %10b %10d@." name
        r.Run.r_outcome.Schedule.all_decided r.Run.r_task_ok r.Run.r_steps)
    [
      ("trivial (no advice)", Fdlib.Fd.trivial);
      ("rotating leader (junk)", rotating);
      ("Omega", Fdlib.Leader_fds.omega ~max_stab:40 ());
      ("Omega from perfect P", omega_of_perfect);
      ("silent vector-Omega-1", Fdlib.Leader_fds.vector_omega_k_silent ~max_stab:40 ~k:1 ());
    ];
  Fmt.pr
    "@.  safety holds in every row — advice is only ever needed for@.\
    \  liveness, exactly as the failure-detector theory prescribes.@.";

  Fmt.pr "@.=== making weak advice strong: Omega <= <>S at run time ===@.@.";
  let result =
    Emulation.run ~budget:30_000
      ~fd:(Fdlib.Classic.eventually_strong ~max_stab:60 ())
      ~pattern ~seed:11 Emulation.omega_from_eventually_strong
  in
  let okp = Fdlib.Props.omega_ok pattern result.Emulation.em_outputs ~suffix:4_000 in
  Fmt.pr
    "  S-processes count suspicions from an eventually-strong detector@.\
    \  and emit the argmin of the shared counters: emitted history is a@.\
    \  legal Omega: %b@."
    okp
