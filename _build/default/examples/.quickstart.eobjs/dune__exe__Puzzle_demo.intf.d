examples/puzzle_demo.mli:
