examples/renaming_demo.ml: Adversary Array Efd Failure Fdlib Fmt List Random Renaming Renaming_algos Run Simkit Task Tasklib Value Vectors
