examples/puzzle_demo.ml: Efd Failure Fmt Puzzle Run Set_agreement Simkit Tasklib Vectors
