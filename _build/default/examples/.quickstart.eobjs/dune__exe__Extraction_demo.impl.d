examples/extraction_demo.ml: Array Efd Extraction Failure Fdlib Fmt Ksa List Random Set_agreement Simkit Task Tasklib Value
