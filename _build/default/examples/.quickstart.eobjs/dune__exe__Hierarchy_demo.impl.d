examples/hierarchy_demo.ml: Efd Fmt List
