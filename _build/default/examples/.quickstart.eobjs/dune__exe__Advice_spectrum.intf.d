examples/advice_spectrum.mli:
