examples/quickstart.mli:
