examples/quickstart.ml: Efd Failure Fdlib Fmt Ksa One_concurrent Run Set_agreement Simkit Tasklib Vectors
