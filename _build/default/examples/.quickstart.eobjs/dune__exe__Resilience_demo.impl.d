examples/resilience_demo.ml: Array Efd Failure Fdlib Fmt List Pid Resilience Run Schedule Set_agreement Simkit Tasklib Value
