examples/advice_spectrum.ml: Efd Emulation Failure Fdlib Fmt History Ksa List Random Run Schedule Set_agreement Simkit String Task Tasklib
