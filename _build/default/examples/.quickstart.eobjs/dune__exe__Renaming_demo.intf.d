examples/renaming_demo.mli:
