examples/extraction_demo.mli:
