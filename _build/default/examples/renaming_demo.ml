(* Renaming (§5): the Figure-4 algorithm across concurrency levels.

   For every k, Figure 4 solves (j, j+k−1)-renaming in k-concurrent runs:
   the table below shows the largest name it hands out, per (j, k), over
   many seeded runs — the paper's bound j+k−1 — plus the Theorem-12
   witnesses for strong renaming.

   Run with: dune exec examples/renaming_demo.exe *)

open Simkit
open Tasklib
open Efd

let seeds = List.init 40 (fun i -> i + 1)

let max_name_observed ~n ~j ~k =
  let task = Renaming.make ~n ~j ~l:(j + k - 1) in
  let algo = Renaming_algos.fig4 () in
  List.fold_left
    (fun acc seed ->
      let rng = Random.State.make [| seed |] in
      let input = Task.sample_input task rng in
      let r =
        Run.execute
          ~policy:(Run.k_concurrent_uniform_policy k)
          ~task ~algo ~fd:Fdlib.Fd.trivial
          ~pattern:(Failure.failure_free 1)
          ~input ~seed ()
      in
      if not (Run.ok r) then
        Fmt.failwith "renaming run failed (j=%d,k=%d,seed=%d)" j k seed;
      Array.fold_left
        (fun acc v ->
          match v with Some name -> max acc (Value.to_int name) | None -> acc)
        acc r.Run.r_output)
    0 seeds

let () =
  let n = 7 in
  Fmt.pr "=== (j, j+k-1)-renaming with Figure 4 (n = %d) ===@.@." n;
  Fmt.pr "  largest name over %d k-concurrent runs (paper bound: j+k-1)@.@."
    (List.length seeds);
  Fmt.pr "   j\\k |";
  List.iter (fun k -> Fmt.pr " %4d" k) [ 1; 2; 3; 4 ];
  Fmt.pr "@.  -----+---------------------@.";
  List.iter
    (fun j ->
      Fmt.pr "  %4d |" j;
      List.iter
        (fun k ->
          if k <= j then Fmt.pr " %4d" (max_name_observed ~n ~j ~k)
          else Fmt.pr "    -")
        [ 1; 2; 3; 4 ];
      Fmt.pr "@.")
    [ 2; 3; 4; 5 ];

  Fmt.pr "@.=== Theorem 12: strong renaming is not 2-concurrently solvable ===@.@.";
  (match Adversary.strong_renaming_witness ~n:5 ~j:3 () with
  | Some w ->
    Fmt.pr
      "  witness found (seed %d): running Figure 4 as a strong 3-renaming@.\
      \  solver in a 2-concurrent schedule, %s:@.  output %a@."
      w.Adversary.w_seed w.Adversary.w_desc Vectors.pp
      w.Adversary.w_report.Run.r_output
  | None -> Fmt.pr "  no witness found (unexpected)@.");

  Fmt.pr "@.=== Lemma 11: the consensus-from-renaming reduction breaks ===@.@.";
  match Adversary.consensus_reduction_witness ~n:4 () with
  | Some w ->
    Fmt.pr
      "  witness found (seed %d): %s@.  inputs %a -> outputs %a@."
      w.Adversary.w_seed w.Adversary.w_desc Vectors.pp
      w.Adversary.w_report.Run.r_input Vectors.pp
      w.Adversary.w_report.Run.r_output
  | None -> Fmt.pr "  no witness found (unexpected)@."
