(* The task hierarchy (Theorem 10): every task sits at a concurrency level
   k, and all tasks of level k share the weakest failure detector anti-Ωk
   (Ω for k = 1, no detector for k = n).

   The table measures, for each registry task and its reference algorithm,
   the largest concurrency level at which all sampled runs succeed and the
   first level at which a witness run fails.

   Run with: dune exec examples/hierarchy_demo.exe *)

let () =
  let n = 4 in
  Fmt.pr "=== Task hierarchy, n = %d C-processes (Theorem 10) ===@.@." n;
  let table = Efd.Classifier.table ~seeds_per_level:15 ~n () in
  Fmt.pr "%a@.@." Efd.Classifier.pp_table table;
  let consistent = List.for_all Efd.Classifier.consistent table in
  Fmt.pr "all measurements consistent with the paper's classification: %b@."
    consistent;
  Fmt.pr
    "@.reading guide: a task measured ok up to level k and breaking at k+1@.\
     belongs to class k; by Theorem 10 its weakest failure detector in the@.\
     EFD model is anti-Omega-k. '>=k' rows are lower bounds (the maximal@.\
     concurrency of some renaming tasks is open — [8] in the paper).@."
