(* Theorem 8 / Figure 1: extracting anti-Ωk from any detector that solves a
   task that is not (k+1)-concurrently solvable.

   The S-processes sample D (here: the silent vector-Ω1, i.e. an Ω that
   stays mute before stabilizing), build CHT sample DAGs, and locally
   explore (k+1)-concurrent simulated runs of the consensus algorithm.
   The branch that stalls a donor mid-donation to the stable leader never
   decides — and the emulated output (the last n−k turn-taking S-codes)
   eventually never contains that correct leader: anti-Ωk extracted.

   Run with: dune exec examples/extraction_demo.exe *)

open Simkit
open Tasklib
open Efd

let () =
  let n = 3 and k = 1 in
  let pattern = Failure.pattern ~n_s:n [ (2, 400) ] in
  let task = Set_agreement.make ~n ~k () in
  let algo = Ksa.make ~max_rounds:128 ~k () in
  let fd = Fdlib.Leader_fds.vector_omega_k_silent ~max_stab:25 ~k () in
  let rng = Random.State.make [| 9 |] in
  let inputs = Task.sample_input task rng in

  Fmt.pr "=== Theorem 8: extracting anti-Omega-%d ===@.@." k;
  Fmt.pr "task: %s, detector: %s, pattern: %a@.@." task.Task.task_name
    (Fdlib.Fd.name fd) Failure.pp_pattern pattern;

  let result =
    Extraction.run ~outer_budget:15_000 ~sample_period:400
      ~explore_budget:2_500 ~max_samples:200 ~k ~fd ~algo ~inputs ~n_c:n
      ~pattern ~seed:9 ()
  in
  Fmt.pr "DAG samples per S-process: %d, exploration rounds: %d@.@."
    result.Extraction.x_samples result.Extraction.x_explorations;

  (* print the emulated output of each correct S-process at a few instants *)
  let horizon = Array.length result.Extraction.x_outputs.(0) in
  Fmt.pr "emulated anti-Omega-%d outputs over time:@." k;
  List.iter
    (fun tau ->
      Fmt.pr "  t=%5d:" tau;
      List.iter
        (fun q ->
          Fmt.pr "  q%d->%a" (q + 1) Value.pp result.Extraction.x_outputs.(q).(tau))
        (Failure.correct pattern);
      Fmt.pr "@.")
    [ 0; horizon / 8; horizon / 4; horizon / 2; (3 * horizon / 4); horizon - 1 ];

  let ok =
    Fdlib.Props.anti_omega_k_ok pattern result.Extraction.x_outputs ~k
      ~suffix:(horizon / 4)
  in
  let witnesses =
    Fdlib.Props.anti_omega_k_witnesses pattern result.Extraction.x_outputs
      ~suffix:(horizon / 4)
  in
  Fmt.pr "@.anti-Omega-%d property on the suffix: %b@." k ok;
  Fmt.pr "correct S-processes eventually never output: %a@."
    Fmt.(list ~sep:(any ", ") (fun ppf q -> pf ppf "q%d" (q + 1)))
    witnesses;
  Fmt.pr
    "@.(the witness is the eventual Omega leader: blocking it is the only@.\
     way to keep a simulated run undecided, so the exploration pins it.)@."
