(* Quickstart: solve consensus among 4 computation processes, wait-free,
   with the advice of 4 synchronization processes equipped with Ω.

   Run with: dune exec examples/quickstart.exe *)

open Simkit
open Tasklib
open Efd

let () =
  Fmt.pr "=== Wait-freedom with advice: quickstart ===@.@.";
  let n = 4 in

  (* The task: consensus = (Pi, 1)-agreement, proposals in {0, 1}. *)
  let task = Set_agreement.consensus ~n () in

  (* The algorithm: leader-based consensus, clients are C-processes and the
     serving leaders are S-processes elected by Omega (Figure 2's
     sub-protocol). *)
  let algo = Ksa.consensus () in

  (* The failure detector: Omega over the S-processes — eventually all
     correct S-processes trust the same correct leader. *)
  let fd = Fdlib.Leader_fds.omega ~max_stab:40 () in

  (* A failure pattern: q2 crashes at time 50, q4 at time 10. The
     C-processes are immune to crashes — that is the point of the model. *)
  let pattern = Failure.pattern ~n_s:4 [ (1, 50); (3, 10) ] in
  Fmt.pr "failure pattern: %a@." Failure.pp_pattern pattern;

  (* The input vector: p1..p4 propose 1, 0, 0, 1. *)
  let input = Vectors.of_ints [ Some 1; Some 0; Some 0; Some 1 ] in
  Fmt.pr "input vector:    %a@.@." Vectors.pp input;

  let report = Run.execute ~task ~algo ~fd ~pattern ~input ~seed:2026 () in
  Fmt.pr "%a@.@." Run.pp_report report;

  if Run.ok report then
    Fmt.pr
      "All four computation processes decided the same proposed value in %d \
       steps, despite two synchronization crashes — wait-free consensus with \
       advice.@."
      report.Run.r_steps
  else Fmt.pr "Unexpected: the run failed. Please report this.@.";

  (* The same task without advice is hopeless beyond 1-concurrency: the
     generic Proposition-1 solver works sequentially... *)
  let seq = One_concurrent.make task in
  let r1 =
    Run.execute
      ~policy:(Run.k_concurrent_policy 1)
      ~task ~algo:seq ~fd:Fdlib.Fd.trivial ~pattern ~input ~seed:7 ()
  in
  Fmt.pr "@.1-concurrent run of the generic advice-free solver: ok = %b@."
    (Run.ok r1);

  (* ... but breaks under concurrency (this is why advice is needed). *)
  let rec hunt seed =
    if seed > 50 then None
    else
      let r =
        Run.execute ~task ~algo:seq ~fd:Fdlib.Fd.trivial ~pattern ~input ~seed ()
      in
      if Run.ok r then hunt (seed + 1) else Some (seed, r)
  in
  match hunt 1 with
  | Some (seed, r) ->
    Fmt.pr
      "concurrent run of the same solver (seed %d): task ok = %b — two \
       processes extended the empty output with different proposals.@."
      seed r.Run.r_task_ok
  | None -> Fmt.pr "no violation found (unexpected)@."
