open Simkit
open Tasklib
open Efd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let seeds n = List.init n (fun i -> i + 1)

(* --- E1: Proposition 1 — every task is 1-concurrently solvable --- *)

let test_one_concurrent_registry () =
  let entries = Registry.standard ~n:4 in
  List.iter
    (fun e ->
      let task = e.Registry.entry_task in
      let algo = One_concurrent.make task in
      let s =
        Run.sweep ~policy:(Run.k_concurrent_policy 1) ~task ~algo
          ~fd:Fdlib.Fd.trivial
          ~env:(Failure.wait_free_env 4)
          ~seeds:(seeds 8) ()
      in
      if s.Run.passed <> s.Run.total then
        Alcotest.failf "task %s: %a" task.Task.task_name Run.pp_sweep s)
    entries

let test_one_concurrent_run_is_one_concurrent () =
  let task = Set_agreement.make ~n:5 ~k:1 () in
  let algo = One_concurrent.make task in
  let rng = Random.State.make [| 3 |] in
  let input = Task.sample_input task rng in
  let r =
    Run.execute ~policy:(Run.k_concurrent_policy 1) ~task ~algo
      ~fd:Fdlib.Fd.trivial
      ~pattern:(Failure.failure_free 5)
      ~input ~seed:9 ()
  in
  check_bool "ok" true (Run.ok r);
  check_int "max concurrency 1" 1 r.Run.r_max_conc

let test_one_concurrent_breaks_under_concurrency () =
  (* Proposition 1's solver is only 1-concurrent: under full concurrency,
     consensus must fail on some seed (two processes extend the empty
     output with their own different inputs). *)
  let task = Set_agreement.make ~n:4 ~k:1 () in
  let algo = One_concurrent.make task in
  let violated = ref false in
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let input = Task.sample_input task rng in
      let r =
        Run.execute ~task ~algo ~fd:Fdlib.Fd.trivial
          ~pattern:(Failure.failure_free 4)
          ~input ~seed ()
      in
      if not r.Run.r_task_ok then violated := true)
    (seeds 20);
  check_bool "some concurrent run violates the task" true !violated

(* --- E3: §2.2 — (Pi, n)-set agreement with the trivial FD --- *)

let test_trivial_nsa () =
  let n = 4 and n_s = 3 in
  let task = Set_agreement.make ~n ~k:n_s () in
  let algo = Trivial_nsa.make () in
  let s =
    Run.sweep ~task ~algo ~fd:Fdlib.Fd.trivial
      ~env:(Failure.wait_free_env n_s)
      ~seeds:(seeds 25) ()
  in
  if s.Run.passed <> s.Run.total then Alcotest.failf "%a" Run.pp_sweep s

let test_trivial_nsa_under_crashes () =
  (* every environment: crash all but one S-process immediately *)
  let n = 3 and n_s = 3 in
  let task = Set_agreement.make ~n ~k:n_s () in
  let algo = Trivial_nsa.make () in
  let pattern = Failure.pattern ~n_s [ (0, 0); (2, 0) ] in
  let rng = Random.State.make [| 1 |] in
  List.iter
    (fun seed ->
      let input = Task.sample_input task rng in
      let r =
        Run.execute ~task ~algo ~fd:Fdlib.Fd.trivial ~pattern ~input ~seed ()
      in
      check_bool "ok despite 2/3 S crashed" true (Run.ok r))
    (seeds 10)

(* --- E5 / Prop 6: k-set agreement with vector-Omega-k --- *)

let ksa_sweep ~n ~n_s ~k ~t ~seed_count =
  let task = Set_agreement.make ~n ~k () in
  let algo = Ksa.make ~k () in
  let fd = Fdlib.Leader_fds.vector_omega_k ~max_stab:60 ~k () in
  Run.sweep ~task ~algo ~fd ~env:(Failure.e_t ~n_s ~t) ~seeds:(seeds seed_count) ()

let test_ksa_basic () =
  List.iter
    (fun k ->
      let s = ksa_sweep ~n:4 ~n_s:4 ~k ~t:3 ~seed_count:12 in
      if s.Run.passed <> s.Run.total then
        Alcotest.failf "k=%d: %a" k Run.pp_sweep s)
    [ 1; 2; 3 ]

let test_consensus_with_omega () =
  let n = 5 in
  let task = Set_agreement.make ~n ~k:1 () in
  let algo = Ksa.consensus () in
  let fd = Fdlib.Leader_fds.omega ~max_stab:60 () in
  let s =
    Run.sweep ~task ~algo ~fd ~env:(Failure.e_t ~n_s:5 ~t:4) ~seeds:(seeds 15) ()
  in
  if s.Run.passed <> s.Run.total then Alcotest.failf "%a" Run.pp_sweep s

let test_consensus_agreement_is_strict () =
  (* inspect outputs directly: exactly one decided value *)
  let n = 4 in
  let task = Set_agreement.make ~n ~k:1 () in
  let algo = Ksa.consensus () in
  let fd = Fdlib.Leader_fds.omega ~max_stab:40 () in
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let input = Task.sample_input task rng in
      let r =
        Run.execute ~task ~algo ~fd
          ~pattern:(Failure.pattern ~n_s:4 [ (1, 30) ])
          ~input ~seed ()
      in
      check_bool "run ok" true (Run.ok r);
      let distinct =
        Array.to_list r.Run.r_output
        |> List.filter_map Fun.id
        |> List.sort_uniq Value.compare
      in
      check_int "single decided value" 1 (List.length distinct))
    (seeds 10)

let test_ksa_subset_u () =
  (* (U,k)-agreement: only U participates; same algorithm *)
  let n = 5 in
  let task = Set_agreement.make ~u:[ 0; 2; 4 ] ~n ~k:2 () in
  let algo = Ksa.make ~k:2 () in
  let fd = Fdlib.Leader_fds.vector_omega_k ~max_stab:60 ~k:2 () in
  let s =
    Run.sweep ~task ~algo ~fd ~env:(Failure.e_t ~n_s:5 ~t:4) ~seeds:(seeds 12) ()
  in
  if s.Run.passed <> s.Run.total then Alcotest.failf "%a" Run.pp_sweep s

let test_ksa_with_derived_vector_from_omega () =
  (* vector-Omega-k derived from Omega by local conversion also works *)
  let n = 4 and k = 2 in
  let task = Set_agreement.make ~n ~k () in
  let algo = Ksa.make ~k () in
  let fd =
    Fdlib.Convert.vector_of_omega ~k ~n_s:4 (Fdlib.Leader_fds.omega ~max_stab:50 ())
  in
  let s =
    Run.sweep ~task ~algo ~fd ~env:(Failure.e_t ~n_s:4 ~t:3) ~seeds:(seeds 10) ()
  in
  if s.Run.passed <> s.Run.total then Alcotest.failf "%a" Run.pp_sweep s

let test_ksa_partial_participation () =
  let n = 5 and k = 2 in
  let task = Set_agreement.make ~n ~k () in
  let algo = Ksa.make ~k () in
  let fd = Fdlib.Leader_fds.vector_omega_k ~max_stab:60 ~k () in
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let input = Task.sample_prefix task rng ~min_participants:2 in
      let r =
        Run.execute ~task ~algo ~fd
          ~pattern:(Failure.failure_free 5)
          ~input ~seed ()
      in
      check_bool "partial participation ok" true (Run.ok r))
    (seeds 8)

(* --- E4 / Prop 3: classical solvability does not imply EFD solvability --- *)

let test_prop3_positive_side () =
  (* In personified runs, p_i is only obliged to decide while q_i lives.
     We mirror that: participants = members of U whose partner is correct.
     The q1-else-q2 detector then always names a live leader for them. *)
  let n = 3 in
  let task u = Set_agreement.make ~u ~n ~k:1 () in
  let algo = Ksa.consensus () in
  let fd = Fdlib.Classic.q1_else_q2 () in
  let cases =
    [
      (Failure.failure_free 3, [ 0; 1 ]);
      (Failure.pattern ~n_s:3 [ (0, 0) ], [ 1 ]);
      (Failure.pattern ~n_s:3 [ (1, 0) ], [ 0 ]);
    ]
  in
  List.iter
    (fun (pattern, u) ->
      let t = task u in
      let rng = Random.State.make [| 7 |] in
      let input = Task.sample_input t rng in
      let r = Run.execute ~task:t ~algo ~fd ~pattern ~input ~seed:5 () in
      check_bool "personified case decides" true (Run.ok r))
    cases

let test_prop3_negative_side () =
  (* EFD: q1 and q2 crashed, q3 correct. The detector forever outputs the
     dead q2; p1 and p2 (C-processes!) must still decide — they cannot. *)
  let n = 3 in
  let task = Set_agreement.make ~u:[ 0; 1 ] ~n ~k:1 () in
  let algo = Ksa.consensus () in
  let fd = Fdlib.Classic.q1_else_q2 () in
  let pattern = Failure.pattern ~n_s:3 [ (0, 0); (1, 0) ] in
  let rng = Random.State.make [| 7 |] in
  let input = Task.sample_input task rng in
  let r =
    Run.execute ~budget:120_000 ~task ~algo ~fd ~pattern ~input ~seed:5 ()
  in
  check_bool "run does not decide" false r.Run.r_outcome.Schedule.all_decided;
  check_bool "wait-freedom violated" false r.Run.r_wait_free

let suite =
  [
    Alcotest.test_case "E1: 1-concurrent solver on registry" `Quick
      test_one_concurrent_registry;
    Alcotest.test_case "E1: run is 1-concurrent" `Quick
      test_one_concurrent_run_is_one_concurrent;
    Alcotest.test_case "E1: generic solver breaks when concurrent" `Quick
      test_one_concurrent_breaks_under_concurrency;
    Alcotest.test_case "E3: trivial-FD n-set agreement" `Quick test_trivial_nsa;
    Alcotest.test_case "E3: survives n-1 crashes" `Quick test_trivial_nsa_under_crashes;
    Alcotest.test_case "E5: k-SA with vector-Omega-k" `Quick test_ksa_basic;
    Alcotest.test_case "E5: consensus with Omega" `Quick test_consensus_with_omega;
    Alcotest.test_case "E5: strict agreement" `Quick test_consensus_agreement_is_strict;
    Alcotest.test_case "E5: (U,k)-agreement" `Quick test_ksa_subset_u;
    Alcotest.test_case "E5: derived vector-Omega from Omega" `Quick
      test_ksa_with_derived_vector_from_omega;
    Alcotest.test_case "E5: partial participation" `Quick test_ksa_partial_participation;
    Alcotest.test_case "E4: Prop 3 positive (personified)" `Quick test_prop3_positive_side;
    Alcotest.test_case "E4: Prop 3 negative (EFD)" `Quick test_prop3_negative_side;
  ]
