open Simkit
open Tasklib
open Efd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let seeds n = List.init n (fun i -> i + 1)

(* --- Interleave: the Proposition-2 constructive emulation --- *)

let test_interleave_trivial_nsa () =
  (* the trivial-FD (Pi,n)-SA algorithm becomes a restricted algorithm:
     S-processes take only null steps yet the task is still solved *)
  let n = 3 in
  let task = Set_agreement.make ~n ~k:n () in
  let algo = Interleave.restricted_of (Trivial_nsa.make ()) in
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let input = Task.sample_input task rng in
      (* schedule C-processes only: S-processes are not needed at all *)
      let policy ~participants ~n_c ~n_s:_ ~rng =
        Schedule.shuffled_rounds ~only:participants ~n_c ~n_s:n rng
      in
      let r =
        Run.execute ~policy ~task ~algo ~fd:Fdlib.Fd.trivial
          ~pattern:(Failure.failure_free n)
          ~input ~seed ()
      in
      check_bool "interleaved algorithm solves without S steps" true (Run.ok r))
    (seeds 10)

let test_interleave_solo () =
  (* wait-freedom of the transformed algorithm: a solo process decides *)
  let n = 3 in
  let task = Set_agreement.make ~n ~k:n () in
  let algo = Interleave.restricted_of (Trivial_nsa.make ()) in
  let maximal = List.hd (task.Task.max_inputs ()) in
  let solo = List.hd (Vectors.participants maximal) in
  let input = Vectors.restrict maximal [ solo ] in
  let r =
    Run.execute
      ~policy:(fun ~participants ~n_c ~n_s:_ ~rng ->
        ignore participants;
        ignore rng;
        ignore n_c;
        Schedule.c_solo solo)
      ~task ~algo ~fd:Fdlib.Fd.trivial
      ~pattern:(Failure.failure_free n)
      ~input ~seed:4 ()
  in
  check_bool "solo run decides" true (Run.ok r)

(* --- Resilience: adversaries and the t-resilient set agreement --- *)

let resilient_run ~n ~t_stalls ~t_adv ~seed =
  let task = Set_agreement.make ~n ~k:(t_stalls + 1) () in
  let adv = Resilience.t_resilient ~n ~t:t_adv in
  let input =
    (* full participation with distinct values to stress the bound *)
    Array.init n (fun i -> Some (Value.int (i mod (t_stalls + 2))))
  in
  let r =
    Run.execute ~budget:150_000
      ~policy:(Resilience.policy adv ~after:30)
      ~task
      ~algo:(Resilience.waiting_for ~t_stalls)
      ~fd:Fdlib.Fd.trivial
      ~pattern:(Failure.failure_free 1)
      ~input ~seed ()
  in
  (task, input, r)

let test_resilient_ksa_solves () =
  (* waiting for n - t inputs solves (t+1)-SA under the t-resilient
     adversary: every live process decides, <= t+1 distinct values *)
  List.iter
    (fun (n, t) ->
      List.iter
        (fun seed ->
          let _, input, r = resilient_run ~n ~t_stalls:t ~t_adv:t ~seed in
          check_bool "task relation" true r.Run.r_task_ok;
          (* live processes (those that kept being scheduled) decided: at
             least participants - t decided *)
          let decided =
            Array.to_list r.Run.r_output |> List.filter (fun o -> o <> None)
          in
          check_bool "enough deciders" true
            (List.length decided >= Vectors.count input - t))
        (seeds 8))
    [ (4, 1); (5, 2) ]

let test_resilient_ksa_bound_is_tight () =
  (* descending inputs + a sequential schedule force t+1 distinct minima:
     the same algorithm violates t-SA *)
  let n = 4 and t = 2 in
  let task = Set_agreement.make ~n ~k:t () in
  let input = Array.init n (fun i -> Some (Value.int (n - i))) in
  (* sequential: p1 writes..., deciders interleave so each sees one more
     input than the previous *)
  let algo = Resilience.waiting_for ~t_stalls:t in
  let violated = ref false in
  List.iter
    (fun seed ->
      let r =
        Run.execute ~budget:100_000
          ~policy:(Run.k_concurrent_uniform_policy n)
          ~task ~algo ~fd:Fdlib.Fd.trivial
          ~pattern:(Failure.failure_free 1)
          ~input ~seed ()
      in
      if not r.Run.r_task_ok then violated := true)
    (seeds 40);
  check_bool "t-SA violated by the (t+1)-SA algorithm" true !violated

let test_adversary_sampling () =
  let adv = Resilience.t_resilient ~n:5 ~t:2 in
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 50 do
    let live = adv.Resilience.sample_live rng ~participants:[ 0; 1; 2; 3; 4 ] in
    check_bool "live set size >= n - t" true (List.length live >= 3);
    check_bool "live set allowed" true (adv.Resilience.allowed live)
  done

(* --- Splitters and Moir-Anderson renaming --- *)

let run_splitter ~n ~seed =
  let mem = Memory.create () in
  let sp = Splitter.create mem in
  let outcomes = Array.make n None in
  let c_code i () =
    outcomes.(i) <- Some (Splitter.enter sp ~me:i);
    Runtime.Op.decide Value.unit
  in
  let rt =
    Runtime.create
      {
        Runtime.n_c = n;
        n_s = 1;
        memory = mem;
        pattern = Failure.failure_free 1;
        history = History.trivial;
        record_trace = false;
      }
      ~c_code
      ~s_code:(fun _ () -> ())
  in
  let rng = Random.State.make [| seed |] in
  let _ = Schedule.run rt (Schedule.shuffled_rounds ~n_c:n ~n_s:1 rng) ~budget:10_000 in
  Runtime.destroy rt;
  Array.to_list outcomes |> List.filter_map Fun.id

let test_splitter_properties () =
  List.iter
    (fun n ->
      List.iter
        (fun seed ->
          let outs = run_splitter ~n ~seed in
          check_int "all exited" n (List.length outs);
          let count d = List.length (List.filter (( = ) d) outs) in
          check_bool "at most one stop" true (count Splitter.Stop <= 1);
          if n >= 2 then begin
            check_bool "not all right" true (count Splitter.Right < n);
            check_bool "not all down" true (count Splitter.Down < n)
          end)
        (seeds 20))
    [ 1; 2; 3; 5 ]

let test_splitter_solo_stops () =
  let outs = run_splitter ~n:1 ~seed:1 in
  check_bool "solo stops" true (outs = [ Splitter.Stop ])

let test_ma_renaming () =
  let n = 6 and j = 3 in
  let task = Renaming.make ~n ~j ~l:(Ma_renaming.name_space ~j) in
  let algo = Ma_renaming.make ~j in
  let s =
    Run.sweep ~task ~algo ~fd:Fdlib.Fd.trivial
      ~env:(Failure.crash_free 1)
      ~seeds:(seeds 25) ()
  in
  if s.Run.passed <> s.Run.total then Alcotest.failf "%a" Run.pp_sweep s

let test_ma_renaming_wait_free_at_any_concurrency () =
  (* no concurrency assumption: full-speed adversarial schedules too *)
  let n = 7 and j = 4 in
  let task = Renaming.make ~n ~j ~l:(Ma_renaming.name_space ~j) in
  let algo = Ma_renaming.make ~j in
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let input = Task.sample_input task rng in
      let r =
        Run.execute
          ~policy:(Run.k_concurrent_uniform_policy j)
          ~task ~algo ~fd:Fdlib.Fd.trivial
          ~pattern:(Failure.failure_free 1)
          ~input ~seed ()
      in
      check_bool "wait-free grid renaming ok" true (Run.ok r))
    (seeds 20)

let test_ma_name_space () =
  check_int "j=3" 6 (Ma_renaming.name_space ~j:3);
  check_int "j=4" 10 (Ma_renaming.name_space ~j:4)

(* --- Alpha / Paxos consensus --- *)

let test_paxos_consensus () =
  let n = 4 in
  let task = Set_agreement.make ~n ~k:1 () in
  let algo = Paxos_consensus.make () in
  let fd = Fdlib.Leader_fds.omega ~max_stab:50 () in
  let s =
    Run.sweep ~task ~algo ~fd
      ~env:(Failure.e_t ~n_s:n ~t:(n - 1))
      ~seeds:(seeds 15) ()
  in
  if s.Run.passed <> s.Run.total then Alcotest.failf "%a" Run.pp_sweep s

let test_paxos_safety_under_junk_advice () =
  (* an Omega that rotates forever: proposers fight, commits must agree *)
  let junk =
    Fdlib.Fd.make ~name:"rotating-omega" (fun pattern _rng ->
        let n_s = pattern.Failure.n_s in
        History.make ~name:"rot" (fun q time ->
            Fdlib.Fd.encode_leader ((q + (time / 5)) mod n_s)))
  in
  List.iter
    (fun seed ->
      let n = 4 in
      let task = Set_agreement.make ~n ~k:1 () in
      let rng = Random.State.make [| seed |] in
      let input = Task.sample_input task rng in
      let r =
        Run.execute ~budget:80_000 ~task ~algo:(Paxos_consensus.make ()) ~fd:junk
          ~pattern:(Failure.failure_free n)
          ~input ~seed ()
      in
      check_bool "whatever decided agrees" true r.Run.r_task_ok)
    (seeds 20)

let test_alpha_solo_commit () =
  let mem = Memory.create () in
  let alpha = Alpha.create mem ~n_proposers:3 in
  let got = ref None in
  let c_code i () =
    if i = 0 then begin
      (match Alpha.propose alpha ~me:0 ~round:1 (Value.int 42) with
      | Alpha.Commit v -> got := Some v
      | Alpha.Abort _ -> ());
      Runtime.Op.decide Value.unit
    end
  in
  let rt =
    Runtime.create
      {
        Runtime.n_c = 1;
        n_s = 3;
        memory = mem;
        pattern = Failure.failure_free 3;
        history = History.trivial;
        record_trace = false;
      }
      ~c_code
      ~s_code:(fun _ () -> ())
  in
  let _ =
    Schedule.run rt (Schedule.c_solo 0) ~budget:1_000
      ~stop_when:(fun rt -> Runtime.decision rt 0 <> None)
  in
  Runtime.destroy rt;
  (match !got with
  | Some v -> check_int "solo commit" 42 (Value.to_int v)
  | None -> Alcotest.fail "solo propose aborted")

let suite =
  [
    Alcotest.test_case "interleave: trivial-nsa restricted" `Quick
      test_interleave_trivial_nsa;
    Alcotest.test_case "interleave: solo wait-free" `Quick test_interleave_solo;
    Alcotest.test_case "resilience: (t+1)-SA solved t-resiliently" `Quick
      test_resilient_ksa_solves;
    Alcotest.test_case "resilience: bound tight" `Quick test_resilient_ksa_bound_is_tight;
    Alcotest.test_case "resilience: adversary sampling" `Quick test_adversary_sampling;
    Alcotest.test_case "splitter properties" `Quick test_splitter_properties;
    Alcotest.test_case "splitter solo stops" `Quick test_splitter_solo_stops;
    Alcotest.test_case "moir-anderson renaming" `Quick test_ma_renaming;
    Alcotest.test_case "moir-anderson at any concurrency" `Quick
      test_ma_renaming_wait_free_at_any_concurrency;
    Alcotest.test_case "moir-anderson name space" `Quick test_ma_name_space;
    Alcotest.test_case "paxos consensus with omega" `Quick test_paxos_consensus;
    Alcotest.test_case "paxos safety under junk advice" `Quick
      test_paxos_safety_under_junk_advice;
    Alcotest.test_case "alpha solo commit" `Quick test_alpha_solo_commit;
  ]

(* --- WSB at level 2: the direct algorithm and the Theorem-9 tower --- *)

let test_wsb_two_concurrent_direct () =
  let n = 5 and j = 3 in
  let task = Wsb.make ~n ~j in
  let algo = Wsb_algo.two_concurrent ~j in
  List.iter
    (fun policy ->
      let s =
        Run.sweep ~budget:150_000 ~policy ~task ~algo ~fd:Fdlib.Fd.trivial
          ~env:(Failure.crash_free 1)
          ~seeds:(seeds 20) ()
      in
      if s.Run.passed <> s.Run.total then Alcotest.failf "%a" Run.pp_sweep s)
    [ Run.k_concurrent_policy 2; Run.k_concurrent_uniform_policy 2 ]

let test_wsb_two_concurrent_deadlocks_at_three () =
  let n = 5 and j = 3 in
  let task = Wsb.make ~n ~j in
  let algo = Wsb_algo.two_concurrent ~j in
  check_bool "breaks at 3" false
    (Classifier.solvable_at ~seeds:(seeds 15) ~task ~algo ~k:3 ())

let test_wsb_through_thm9_tower () =
  (* WSB is 2-concurrently solvable, hence (Thm 9) solvable with anti-Omega-2
     in full EFD — a *new* corollary of the hierarchy, demonstrated *)
  let n = 4 and j = 3 and k = 2 in
  let task = Wsb.make ~n ~j in
  let algo = Kconcurrent.make ~k ~fi:(Bglib.Fi_algos.wsb ~j) () in
  let fd = Fdlib.Leader_fds.vector_omega_k ~max_stab:50 ~k () in
  let s =
    Run.sweep ~budget:3_000_000 ~task ~algo ~fd
      ~env:(Failure.e_t ~n_s:n ~t:(n - 1))
      ~seeds:(seeds 4) ()
  in
  if s.Run.passed <> s.Run.total then Alcotest.failf "%a" Run.pp_sweep s

let suite =
  suite
  @ [
      Alcotest.test_case "wsb 2-concurrent direct" `Quick
        test_wsb_two_concurrent_direct;
      Alcotest.test_case "wsb deadlocks at 3" `Quick
        test_wsb_two_concurrent_deadlocks_at_three;
      Alcotest.test_case "wsb through thm9 tower" `Slow test_wsb_through_thm9_tower;
    ]

(* --- Chandra-Toueg consensus with <>S over message passing --- *)

let test_ct_consensus () =
  List.iter
    (fun n ->
      let task = Set_agreement.make ~n ~k:1 () in
      let algo = Ct_consensus.make () in
      let fd = Fdlib.Classic.eventually_strong ~max_stab:50 () in
      let s =
        Run.sweep ~budget:600_000 ~task ~algo ~fd
          ~env:(Failure.e_t ~n_s:n ~t:((n - 1) / 2))
          ~seeds:(seeds 10) ()
      in
      if s.Run.passed <> s.Run.total then
        Alcotest.failf "CT n=%d: %a" n Run.pp_sweep s)
    [ 3; 5 ]

let test_ct_safety_under_junk_suspicions () =
  (* a detector that suspects everyone all the time: perpetual nacks are
     possible, decisions may never come — but whatever is decided agrees *)
  let junk =
    Fdlib.Fd.make ~name:"suspect-all" (fun pattern _rng ->
        let n_s = pattern.Failure.n_s in
        History.make ~name:"all" (fun _ _ ->
            Fdlib.Fd.encode_set (List.init n_s Fun.id)))
  in
  List.iter
    (fun seed ->
      let n = 3 in
      let task = Set_agreement.make ~n ~k:1 () in
      let rng = Random.State.make [| seed |] in
      let input = Task.sample_input task rng in
      let r =
        Run.execute ~budget:100_000 ~task ~algo:(Ct_consensus.make ()) ~fd:junk
          ~pattern:(Failure.failure_free n)
          ~input ~seed ()
      in
      check_bool "safe" true r.Run.r_task_ok)
    (seeds 10)

let test_ct_needs_majority () =
  (* with half the S-processes crashed from the start, the protocol cannot
     gather majorities — it must stay safe but cannot decide *)
  let n = 4 in
  let task = Set_agreement.make ~n ~k:1 () in
  let pattern = Failure.pattern ~n_s:n [ (0, 0); (1, 0) ] in
  let rng = Random.State.make [| 3 |] in
  let input = Task.sample_input task rng in
  let r =
    Run.execute ~budget:100_000 ~task ~algo:(Ct_consensus.make ())
      ~fd:(Fdlib.Classic.eventually_strong ~max_stab:40 ())
      ~pattern ~input ~seed:3 ()
  in
  check_bool "safe" true r.Run.r_task_ok;
  check_bool "stuck without a majority" false
    r.Run.r_outcome.Schedule.all_decided

let test_mp_fifo () =
  (* channels are reliable and FIFO *)
  let mem = Memory.create () in
  let net = Mp.create mem ~n:2 in
  let got = ref [] in
  let c_code i () =
    let ep = Mp.endpoint net ~me:i in
    if i = 0 then
      for x = 1 to 5 do
        Mp.send ep ~to_:1 (Value.int x)
      done
    else begin
      let rec loop () =
        got := !got @ Mp.recv_new ep;
        if List.length !got < 5 then loop () else Runtime.Op.decide Value.unit
      in
      loop ()
    end
  in
  let rt =
    Runtime.create
      {
        Runtime.n_c = 2;
        n_s = 1;
        memory = mem;
        pattern = Failure.failure_free 1;
        history = History.trivial;
        record_trace = false;
      }
      ~c_code
      ~s_code:(fun _ () -> ())
  in
  let rng = Random.State.make [| 5 |] in
  let _ =
    Schedule.run rt (Schedule.shuffled_rounds ~n_c:2 ~n_s:1 rng) ~budget:5_000
  in
  Runtime.destroy rt;
  Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4; 5 ]
    (List.map (fun (_, m) -> Value.to_int m) !got)

let suite =
  suite
  @ [
      Alcotest.test_case "mp channels fifo" `Quick test_mp_fifo;
      Alcotest.test_case "chandra-toueg with <>S" `Slow test_ct_consensus;
      Alcotest.test_case "chandra-toueg safety under junk" `Quick
        test_ct_safety_under_junk_suspicions;
      Alcotest.test_case "chandra-toueg needs majority" `Quick test_ct_needs_majority;
    ]
