open Simkit
open Tasklib
open Efd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let seeds n = List.init n (fun i -> i + 1)

(* --- Kcodes layer alone: a counter machine --- *)

let counter target =
  {
    Bglib.Machine.m_name = "counter";
    m_init = Value.int 0;
    m_step =
      (fun ~me ~states ~env:_ -> Value.int (Value.to_int states.(me) + 1));
    m_decided = (fun s -> if Value.to_int s >= target then Some s else None);
  }

let test_kcodes_counters () =
  (* 2 counter machines simulated by 3 simulators with vector-Omega-2:
     at least one machine must keep advancing; agreed states are counters *)
  let n_c = 3 and n_s = 3 and k = 2 in
  let target = 15 in
  let mem = Memory.create () in
  let env_regs = Memory.alloc mem 1 in
  let machines = Array.init k (fun _ -> counter target) in
  let kc = Kcodes.create mem ~machines ~env_regs ~n_sims:n_c ~max_steps:40 () in
  let c_code i () =
    let sim = Kcodes.make_sim kc ~me:i in
    Kcodes.register sim;
    let rec loop () =
      Kcodes.pump sim;
      let st = Kcodes.states sim in
      if Array.exists (fun s -> Value.to_int s >= target) st then
        Runtime.Op.decide Value.unit
      else loop ()
    in
    loop ()
  in
  let s_code me () =
    let server = Kcodes.make_server kc ~me in
    let rec loop () =
      let w = Ksa.decode_leader_vector ~k (Runtime.Op.query ()) in
      Kcodes.serve_pump server ~leaders:w;
      loop ()
    in
    loop ()
  in
  let pattern = Failure.pattern ~n_s [ (2, 100) ] in
  let fd = Fdlib.Leader_fds.vector_omega_k ~max_stab:50 ~k () in
  let history = Fdlib.Fd.draw fd pattern ~seed:7 in
  let rt =
    Runtime.create
      { Runtime.n_c; n_s; memory = mem; pattern; history; record_trace = false }
      ~c_code ~s_code
  in
  let rng = Random.State.make [| 7 |] in
  let outcome =
    Schedule.run rt (Schedule.shuffled_rounds ~n_c ~n_s rng) ~budget:2_000_000
  in
  check_bool "all simulators saw a finished counter" true
    outcome.Schedule.all_decided;
  let st = Kcodes.states_view mem kc in
  check_bool "some machine reached target" true
    (Array.exists (fun s -> Value.to_int s >= target) st);
  (* the counter's state equals its number of agreed transitions *)
  let steps = Kcodes.steps_view mem kc in
  Array.iteri
    (fun j l -> check_int "state = #transitions" (Value.to_int st.(j)) l)
    steps;
  Runtime.destroy rt

(* --- Theorem 9 end-to-end --- *)

let thm9_sweep ~n ~k ~fi ~task ~seed_count ~t =
  let algo = Kconcurrent.make ~k ~fi () in
  let fd = Fdlib.Leader_fds.vector_omega_k ~max_stab:50 ~k () in
  Run.sweep ~budget:3_000_000 ~task ~algo ~fd
    ~env:(Failure.e_t ~n_s:n ~t)
    ~seeds:(seeds seed_count) ()

let test_thm9_ksa () =
  List.iter
    (fun (n, k) ->
      let task = Set_agreement.make ~n ~k () in
      let s =
        thm9_sweep ~n ~k ~fi:Bglib.Fi_algos.adoption ~task ~seed_count:4
          ~t:(n - 1)
      in
      if s.Run.passed <> s.Run.total then
        Alcotest.failf "thm9 k-SA (n=%d,k=%d): %a" n k Run.pp_sweep s)
    [ (3, 1); (3, 2); (4, 2); (4, 3); (5, 2) ]

let test_thm9_renaming () =
  (* (j, j+k-1)-renaming solved in EFD (full concurrency!) with vector-Omega-k *)
  let n = 4 and j = 3 and k = 2 in
  let task = Renaming.make ~n ~j ~l:(j + k - 1) in
  let s =
    thm9_sweep ~n ~k ~fi:Bglib.Fi_algos.fig4_renaming ~task ~seed_count:4 ~t:(n - 1)
  in
  if s.Run.passed <> s.Run.total then Alcotest.failf "%a" Run.pp_sweep s

let test_thm9_echo_k1 () =
  (* wait-free task through the full tower at k = 1 (consensus-powered) *)
  let n = 3 in
  let task = Trivial_tasks.identity ~n () in
  let s = thm9_sweep ~n ~k:1 ~fi:Bglib.Fi_algos.echo ~task ~seed_count:4 ~t:2 in
  if s.Run.passed <> s.Run.total then Alcotest.failf "%a" Run.pp_sweep s

let test_thm9_decisions_valid_under_crashes () =
  let n = 3 and k = 2 in
  let task = Set_agreement.make ~n ~k () in
  let algo = Kconcurrent.make ~k ~fi:Bglib.Fi_algos.adoption () in
  let fd = Fdlib.Leader_fds.vector_omega_k ~max_stab:40 ~k () in
  let pattern = Failure.pattern ~n_s:3 [ (0, 0); (1, 60) ] in
  let rng = Random.State.make [| 3 |] in
  List.iter
    (fun seed ->
      let input = Task.sample_input task rng in
      let r =
        Run.execute ~budget:3_000_000 ~task ~algo ~fd ~pattern ~input ~seed ()
      in
      check_bool "ok with 2/3 S crashed" true (Run.ok r))
    (seeds 3)

let suite =
  [
    Alcotest.test_case "kcodes counters" `Quick test_kcodes_counters;
    Alcotest.test_case "E8: thm9 k-SA" `Slow test_thm9_ksa;
    Alcotest.test_case "E8: thm9 renaming" `Slow test_thm9_renaming;
    Alcotest.test_case "E8: thm9 echo k=1" `Slow test_thm9_echo_k1;
    Alcotest.test_case "E8: thm9 under crashes" `Slow
      test_thm9_decisions_valid_under_crashes;
  ]
