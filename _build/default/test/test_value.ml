open Value

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_roundtrips () =
  check_int "int" 42 (to_int (int 42));
  check_bool "bool" true (to_bool (bool true));
  Alcotest.(check string) "str" "hi" (to_str (str "hi"));
  let a, b = to_pair (pair (int 1) (int 2)) in
  check_int "pair fst" 1 (to_int a);
  check_int "pair snd" 2 (to_int b);
  Alcotest.(check (list int)) "int_list" [ 1; 2; 3 ] (to_int_list (int_list [ 1; 2; 3 ]));
  Alcotest.(check (array int)) "int_vec" [| 4; 5 |] (to_int_vec (int_vec [| 4; 5 |]))

let test_option_encoding () =
  check_bool "none" true (to_option (option None) = None);
  (match to_option (option (Some unit)) with
  | Some v -> check_bool "some unit distinguishable" true (is_unit v)
  | None -> Alcotest.fail "Some Unit decoded as None");
  match to_option (option (Some (int 7))) with
  | Some v -> check_int "some 7" 7 (to_int v)
  | None -> Alcotest.fail "Some decoded as None"

let test_triple () =
  let a, b, c = to_triple (triple (int 1) (str "x") (bool false)) in
  check_int "fst" 1 (to_int a);
  Alcotest.(check string) "snd" "x" (to_str b);
  check_bool "thd" false (to_bool c)

let test_type_errors () =
  Alcotest.check_raises "int of bool" (Type_error "expected int, got bool")
    (fun () -> ignore (to_int (bool true)));
  Alcotest.check_raises "pair of int" (Type_error "expected pair, got int")
    (fun () -> ignore (to_pair (int 1)))

let test_compare_basic () =
  check_bool "refl" true (equal (int 3) (int 3));
  check_bool "neq" false (equal (int 3) (int 4));
  check_bool "cross-constructor ordered" true (compare unit (bool false) < 0);
  check_bool "list order" true (compare (int_list [ 1; 2 ]) (int_list [ 1; 3 ]) < 0);
  check_bool "vec prefix smaller" true
    (compare (int_vec [| 1 |]) (int_vec [| 1; 0 |]) < 0)

(* qcheck generator for values *)
let gen_value =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            return Unit;
            map (fun b -> Bool b) bool;
            map (fun i -> Int i) small_signed_int;
            map (fun s -> Str s) small_string;
          ]
      in
      if n <= 0 then leaf
      else
        frequency
          [
            (3, leaf);
            (1, map2 (fun a b -> Pair (a, b)) (self (n / 2)) (self (n / 2)));
            (1, map (fun l -> List l) (list_size (int_bound 4) (self (n / 3))));
            ( 1,
              map
                (fun l -> Vec (Array.of_list l))
                (list_size (int_bound 4) (self (n / 3))) );
          ])

let arb_value = QCheck.make ~print:to_string gen_value

let prop_compare_refl =
  QCheck.Test.make ~name:"compare reflexive" ~count:300 arb_value (fun v ->
      compare v v = 0 && equal v v)

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:300
    (QCheck.pair arb_value arb_value) (fun (a, b) ->
      Stdlib.compare (Stdlib.compare (compare a b) 0)
        (Stdlib.compare 0 (compare b a))
      = 0)

let prop_compare_trans =
  QCheck.Test.make ~name:"compare transitive" ~count:300
    (QCheck.triple arb_value arb_value arb_value) (fun (a, b, c) ->
      let l = List.sort compare [ a; b; c ] in
      match l with
      | [ x; y; z ] -> compare x y <= 0 && compare y z <= 0 && compare x z <= 0
      | _ -> false)

let prop_equal_hash =
  QCheck.Test.make ~name:"equal implies same hash" ~count:300 arb_value
    (fun v ->
      (* structural copy through round-trip of to_string is not available;
         copy via identity is trivial — instead rebuild pairs *)
      hash v = hash v && equal v v)

let prop_size_depth =
  QCheck.Test.make ~name:"depth <= size" ~count:300 arb_value (fun v ->
      depth v <= size v && size v >= 1 && depth v >= 1)

let suite =
  [
    Alcotest.test_case "roundtrips" `Quick test_roundtrips;
    Alcotest.test_case "option encoding" `Quick test_option_encoding;
    Alcotest.test_case "triple" `Quick test_triple;
    Alcotest.test_case "type errors" `Quick test_type_errors;
    Alcotest.test_case "compare basics" `Quick test_compare_basic;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_compare_refl;
        prop_compare_antisym;
        prop_compare_trans;
        prop_equal_hash;
        prop_size_depth;
      ]
