open Simkit
open Fdlib

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let horizon = 400
let suffix = 100

(* A spread of failure patterns to exercise checkers across crash shapes. *)
let patterns n_s =
  Failure.failure_free n_s
  ::
  (if n_s >= 2 then
     [
       Failure.pattern ~n_s [ (0, 0) ];
       Failure.pattern ~n_s [ (n_s - 1, 50) ];
     ]
   else [])
  @
  if n_s >= 3 then [ Failure.pattern ~n_s [ (0, 10); (1, 200) ] ] else []

let tabulate fd pattern seed =
  History.tabulate (Fd.draw fd pattern ~seed) ~n_s:pattern.Failure.n_s ~horizon

let over_patterns_and_seeds ~n_s f =
  List.iter
    (fun pattern -> List.iter (fun seed -> f pattern seed) [ 1; 2; 7; 42 ])
    (patterns n_s)

let test_trivial () =
  let pattern = Failure.failure_free 3 in
  let h = Fd.draw Fd.trivial pattern ~seed:1 in
  check_bool "unit output" true (Value.is_unit (History.get h ~q:0 ~time:5))

let test_encodings () =
  Alcotest.(check (list int)) "set sorted+dedup" [ 1; 2; 5 ]
    (Fd.decode_set (Fd.encode_set [ 5; 2; 1; 2 ]));
  check_int "leader" 3 (Fd.decode_leader (Fd.encode_leader 3));
  Alcotest.(check (array int)) "vector" [| 0; 2 |]
    (Fd.decode_vector (Fd.encode_vector [| 0; 2 |]))

let test_perfect_property () =
  over_patterns_and_seeds ~n_s:4 (fun pattern seed ->
      let table = tabulate (Classic.perfect ()) pattern seed in
      check_bool "P exact" true (Props.perfect_exact_ok pattern table))

let test_eventually_perfect_property () =
  over_patterns_and_seeds ~n_s:4 (fun pattern seed ->
      let table = tabulate (Classic.eventually_perfect ()) pattern seed in
      check_bool "<>P eventually exact" true
        (Props.eventually_perfect_ok pattern table ~suffix))

let test_eventually_perfect_noisy_early () =
  (* with a fixed large stabilization, early outputs should sometimes be
     wrong — i.e. the full-run perfect check fails for some seed *)
  let pattern = Failure.pattern ~n_s:4 [ (0, 300) ] in
  let wrong_somewhere =
    List.exists
      (fun seed ->
        let table = tabulate (Classic.eventually_perfect ~max_stab:100 ()) pattern seed in
        not (Props.perfect_exact_ok pattern table))
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  check_bool "<>P is actually unreliable early" true wrong_somewhere

let test_omega_property () =
  over_patterns_and_seeds ~n_s:4 (fun pattern seed ->
      let table = tabulate (Leader_fds.omega ()) pattern seed in
      check_bool "Omega stabilizes on correct leader" true
        (Props.omega_ok pattern table ~suffix))

let test_omega_leader_correct () =
  let pattern = Failure.pattern ~n_s:3 [ (0, 0) ] in
  let table = tabulate (Leader_fds.omega ~max_stab:10 ()) pattern 5 in
  let leader = Fd.decode_leader table.(1).(horizon - 1) in
  check_bool "leader is correct process" true (Failure.is_correct pattern leader)

let test_anti_omega_k_property () =
  List.iter
    (fun k ->
      over_patterns_and_seeds ~n_s:4 (fun pattern seed ->
          let table = tabulate (Leader_fds.anti_omega_k ~k ()) pattern seed in
          check_bool
            (Printf.sprintf "anti-Omega-%d property" k)
            true
            (Props.anti_omega_k_ok pattern table ~k ~suffix)))
    [ 1; 2; 3 ]

let test_anti_omega_sizes () =
  let pattern = Failure.failure_free 5 in
  let table = tabulate (Leader_fds.anti_omega_k ~k:2 ()) pattern 3 in
  check_int "output size n-k" 3 (List.length (Fd.decode_set table.(2).(horizon - 1)))

let test_vector_omega_property () =
  List.iter
    (fun k ->
      over_patterns_and_seeds ~n_s:4 (fun pattern seed ->
          let table = tabulate (Leader_fds.vector_omega_k ~k ()) pattern seed in
          check_bool
            (Printf.sprintf "vector-Omega-%d property" k)
            true
            (Props.vector_omega_k_ok pattern table ~k ~suffix)))
    [ 1; 2; 3 ]

let test_q1_else_q2 () =
  let fd = Classic.q1_else_q2 () in
  let p_ok = Failure.failure_free 3 in
  let t_ok = tabulate fd p_ok 1 in
  check_int "q1 correct -> leader q1" 0 (Fd.decode_leader t_ok.(1).(0));
  let p_crash = Failure.pattern ~n_s:3 [ (0, 5) ] in
  let t_crash = tabulate fd p_crash 1 in
  check_int "q1 faulty -> leader q2" 1 (Fd.decode_leader t_crash.(0).(0));
  (* with q1 faulty but q2 correct the constant output is a legal Omega *)
  check_bool "omega-like when only q1 faulty" true
    (Props.omega_ok p_crash t_crash ~suffix);
  (* with q1 and q2 both faulty the output is a dead leader: not an Omega *)
  let p_two = Failure.pattern ~n_s:3 [ (0, 0); (1, 0) ] in
  let t_two = tabulate fd p_two 1 in
  check_bool "dead leader is not Omega" false (Props.omega_ok p_two t_two ~suffix)

let test_checker_rejects_bad_omega () =
  (* an "Omega" that outputs a crashed process forever must be rejected *)
  let pattern = Failure.pattern ~n_s:3 [ (2, 0) ] in
  let bad = History.constant ~name:"bad" (Fd.encode_leader 2) in
  let table = History.tabulate bad ~n_s:3 ~horizon in
  check_bool "rejected" false (Props.omega_ok pattern table ~suffix)

let test_checker_rejects_flapping_omega () =
  let pattern = Failure.failure_free 3 in
  let flap = History.make ~name:"flap" (fun _ time -> Fd.encode_leader (time mod 3)) in
  let table = History.tabulate flap ~n_s:3 ~horizon in
  check_bool "rejected" false (Props.omega_ok pattern table ~suffix)

let test_checker_rejects_bad_anti_omega () =
  (* outputs rotate over all processes: no process is eventually spared *)
  let pattern = Failure.failure_free 3 in
  let rotate =
    History.make ~name:"rotate" (fun _ time ->
        Fd.encode_set [ time mod 3; (time + 1) mod 3 ])
  in
  let table = History.tabulate rotate ~n_s:3 ~horizon in
  check_bool "rejected" false (Props.anti_omega_k_ok pattern table ~k:1 ~suffix)

let test_convert_anti_of_omega () =
  List.iter
    (fun k ->
      over_patterns_and_seeds ~n_s:4 (fun pattern seed ->
          let fd = Convert.anti_of_omega ~k ~n_s:4 (Leader_fds.omega ()) in
          let table = tabulate fd pattern seed in
          check_bool "derived anti-Omega-k valid" true
            (Props.anti_omega_k_ok pattern table ~k ~suffix)))
    [ 1; 2; 3 ]

let test_convert_omega_of_anti_1 () =
  over_patterns_and_seeds ~n_s:4 (fun pattern seed ->
      let fd = Convert.omega_of_anti_1 ~n_s:4 (Leader_fds.anti_omega_k ~k:1 ()) in
      let table = tabulate fd pattern seed in
      check_bool "derived Omega valid" true (Props.omega_ok pattern table ~suffix))

let test_convert_vector_of_omega () =
  List.iter
    (fun k ->
      over_patterns_and_seeds ~n_s:4 (fun pattern seed ->
          let fd = Convert.vector_of_omega ~k ~n_s:4 (Leader_fds.omega ()) in
          let table = tabulate fd pattern seed in
          check_bool "derived vector-Omega-k valid" true
            (Props.vector_omega_k_ok pattern table ~k ~suffix)))
    [ 1; 2; 3 ]

let test_convert_anti_of_vector () =
  List.iter
    (fun k ->
      over_patterns_and_seeds ~n_s:4 (fun pattern seed ->
          let fd =
            Convert.anti_of_vector ~k ~n_s:4 (Leader_fds.vector_omega_k ~k ())
          in
          let table = tabulate fd pattern seed in
          check_bool "derived anti-Omega-k valid" true
            (Props.anti_omega_k_ok pattern table ~k ~suffix)))
    [ 1; 2; 3 ]

let test_convert_complement () =
  Alcotest.(check (list int)) "complement" [ 0; 3 ] (Convert.complement ~n_s:4 [ 1; 2 ]);
  Alcotest.(check (list int)) "empty" [] (Convert.complement ~n_s:2 [ 0; 1 ])

(* --- DAG --- *)

let test_dag_add_and_frontier () =
  let g = Dag.create ~n_s:3 in
  let v1 = Dag.add_sample g ~q:0 (Value.int 10) in
  check_int "first seq" 1 v1.Dag.vseq;
  Alcotest.(check (array int)) "first past empty" [| 0; 0; 0 |] v1.Dag.vpast;
  let v2 = Dag.add_sample g ~q:1 (Value.int 20) in
  Alcotest.(check (array int)) "second past sees q0" [| 1; 0; 0 |] v2.Dag.vpast;
  let v3 = Dag.add_sample g ~q:0 (Value.int 30) in
  check_int "seq increments" 2 v3.Dag.vseq;
  Alcotest.(check (array int)) "frontier" [| 2; 1; 0 |] (Dag.max_seqs g);
  check_int "count" 3 (Dag.n_vertices g)

let test_dag_succeeds () =
  let g = Dag.create ~n_s:2 in
  let _ = Dag.add_sample g ~q:0 (Value.int 1) in
  let v2 = Dag.add_sample g ~q:1 (Value.int 2) in
  check_bool "v2 succeeds (0,1)" true (Dag.succeeds v2 ~q:0 ~seq:1);
  check_bool "v2 does not succeed (0,2)" false (Dag.succeeds v2 ~q:0 ~seq:2);
  check_bool "trivially succeeds seq 0" true (Dag.succeeds v2 ~q:0 ~seq:0)

let test_dag_union () =
  let g1 = Dag.create ~n_s:2 and g2 = Dag.create ~n_s:2 in
  let _ = Dag.add_sample g1 ~q:0 (Value.int 1) in
  let _ = Dag.add_sample g2 ~q:1 (Value.int 2) in
  let _ = Dag.add_sample g2 ~q:1 (Value.int 3) in
  Dag.union g1 g2;
  check_int "merged count" 3 (Dag.n_vertices g1);
  Alcotest.(check (array int)) "merged frontier" [| 1; 2 |] (Dag.max_seqs g1);
  (* idempotent union *)
  Dag.union g1 g2;
  check_int "idempotent" 3 (Dag.n_vertices g1)

let test_dag_next_vertex () =
  let g = Dag.create ~n_s:2 in
  let _v1 = Dag.add_sample g ~q:0 (Value.int 1) in
  let _v2 = Dag.add_sample g ~q:1 (Value.int 2) in
  let _v3 = Dag.add_sample g ~q:0 (Value.int 3) in
  (* from scratch, q0's next vertex is its seq-1 sample *)
  (match Dag.next_vertex g ~q:0 ~frontier:[| 0; 0 |] with
  | Some v -> check_int "next is seq 1" 1 v.Dag.vseq
  | None -> Alcotest.fail "expected a vertex");
  (* after consuming (0,1) and (1,1), q0's next must succeed (1,1): v3 does *)
  (match Dag.next_vertex g ~q:0 ~frontier:[| 1; 1 |] with
  | Some v -> check_int "next is seq 2" 2 v.Dag.vseq
  | None -> Alcotest.fail "expected vertex succeeding (1,1)");
  (* q1 has no vertex succeeding its own seq 1 yet *)
  check_bool "q1 exhausted" true (Dag.next_vertex g ~q:1 ~frontier:[| 1; 1 |] = None)

let test_dag_starvation_of_crashed () =
  (* a crashed process stops sampling: its vertices run out, others' never do *)
  let g = Dag.create ~n_s:2 in
  let _ = Dag.add_sample g ~q:1 (Value.int 0) in
  for i = 1 to 20 do
    ignore (Dag.add_sample g ~q:0 (Value.int i))
  done;
  let frontier = [| 0; 1 |] in
  check_bool "crashed q1 has no next vertex" true
    (Dag.next_vertex g ~q:1 ~frontier = None);
  (match Dag.next_vertex g ~q:0 ~frontier with
  | Some v -> check_bool "live q0 proceeds past q1's sample" true (v.Dag.vseq >= 1)
  | None -> Alcotest.fail "live process starved")

let test_dag_encode_decode () =
  let g = Dag.create ~n_s:3 in
  let _ = Dag.add_sample g ~q:0 (Value.str "a") in
  let _ = Dag.add_sample g ~q:2 (Value.str "b") in
  let _ = Dag.add_sample g ~q:0 (Value.str "c") in
  let g' = Dag.decode (Dag.encode g) in
  check_int "count preserved" (Dag.n_vertices g) (Dag.n_vertices g');
  Alcotest.(check (array int)) "frontier preserved" (Dag.max_seqs g) (Dag.max_seqs g');
  (match Dag.find g' ~q:0 ~seq:2 with
  | Some v ->
    Alcotest.(check string) "value preserved" "c" (Value.to_str v.Dag.vval);
    Alcotest.(check (array int)) "past preserved" [| 1; 0; 1 |] v.Dag.vpast
  | None -> Alcotest.fail "vertex lost in roundtrip")

let prop_dag_union_commutes =
  QCheck.Test.make ~name:"dag union order-insensitive" ~count:100
    QCheck.(pair (list (int_bound 2)) (list (int_bound 2)))
    (fun (qs1, qs2) ->
      let build qs =
        let g = Dag.create ~n_s:3 in
        List.iteri (fun i q -> ignore (Dag.add_sample g ~q (Value.int i))) qs;
        g
      in
      let a1 = build qs1 and a2 = build qs2 in
      let b1 = Dag.copy a1 and b2 = Dag.copy a2 in
      Dag.union a1 a2;
      Dag.union b2 b1;
      Dag.max_seqs a1 = Dag.max_seqs b2
      && Dag.n_vertices a1 = Dag.n_vertices b2)

let suite =
  [
    Alcotest.test_case "trivial FD" `Quick test_trivial;
    Alcotest.test_case "output encodings" `Quick test_encodings;
    Alcotest.test_case "perfect property" `Quick test_perfect_property;
    Alcotest.test_case "eventually perfect property" `Quick
      test_eventually_perfect_property;
    Alcotest.test_case "eventually perfect noisy early" `Quick
      test_eventually_perfect_noisy_early;
    Alcotest.test_case "omega property" `Quick test_omega_property;
    Alcotest.test_case "omega leader correct" `Quick test_omega_leader_correct;
    Alcotest.test_case "anti-omega-k property" `Quick test_anti_omega_k_property;
    Alcotest.test_case "anti-omega sizes" `Quick test_anti_omega_sizes;
    Alcotest.test_case "vector-omega-k property" `Quick test_vector_omega_property;
    Alcotest.test_case "q1-else-q2 detector" `Quick test_q1_else_q2;
    Alcotest.test_case "checker rejects bad omega" `Quick test_checker_rejects_bad_omega;
    Alcotest.test_case "checker rejects flapping omega" `Quick
      test_checker_rejects_flapping_omega;
    Alcotest.test_case "checker rejects bad anti-omega" `Quick
      test_checker_rejects_bad_anti_omega;
    Alcotest.test_case "convert: anti of omega" `Quick test_convert_anti_of_omega;
    Alcotest.test_case "convert: omega of anti-1" `Quick test_convert_omega_of_anti_1;
    Alcotest.test_case "convert: vector of omega" `Quick test_convert_vector_of_omega;
    Alcotest.test_case "convert: anti of vector" `Quick test_convert_anti_of_vector;
    Alcotest.test_case "convert: complement" `Quick test_convert_complement;
    Alcotest.test_case "dag add/frontier" `Quick test_dag_add_and_frontier;
    Alcotest.test_case "dag succeeds" `Quick test_dag_succeeds;
    Alcotest.test_case "dag union" `Quick test_dag_union;
    Alcotest.test_case "dag next vertex" `Quick test_dag_next_vertex;
    Alcotest.test_case "dag starves crashed" `Quick test_dag_starvation_of_crashed;
    Alcotest.test_case "dag encode/decode" `Quick test_dag_encode_decode;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_dag_union_commutes ]

let test_sigma_property () =
  over_patterns_and_seeds ~n_s:4 (fun pattern seed ->
      let table = tabulate (Classic.sigma ()) pattern seed in
      check_bool "Sigma property" true (Props.sigma_ok pattern table ~suffix))

let test_sigma_checker_rejects () =
  (* disjoint quorums must be rejected *)
  let pattern = Failure.failure_free 4 in
  let bad =
    History.make ~name:"bad-sigma" (fun q _ ->
        Fd.encode_set [ (2 * q) mod 4 ])
  in
  let table = History.tabulate bad ~n_s:4 ~horizon in
  check_bool "rejected" false (Props.sigma_ok pattern table ~suffix)

let suite =
  suite
  @ [
      Alcotest.test_case "sigma property" `Quick test_sigma_property;
      Alcotest.test_case "sigma checker rejects" `Quick test_sigma_checker_rejects;
    ]
