open Simkit
open Tasklib
open Efd

let check_bool = Alcotest.(check bool)

(* Build a DAG offline by replaying a history round-robin with periodic
   cross-process merging (dense causality, like the real exchange). *)
let offline_dag ~history ~pattern ~samples =
  let n_s = pattern.Failure.n_s in
  let dags = Array.init n_s (fun _ -> Fdlib.Dag.create ~n_s) in
  let time = ref 0 in
  for round = 1 to samples do
    for q = 0 to n_s - 1 do
      if not (Failure.crashed pattern ~time:!time q) then begin
        ignore
          (Fdlib.Dag.add_sample dags.(q) ~q (History.get history ~q ~time:!time));
        incr time
      end
    done;
    if round mod 3 = 0 then
      for q = 0 to n_s - 1 do
        for q' = 0 to n_s - 1 do
          if q <> q' then Fdlib.Dag.union dags.(q) dags.(q')
        done
      done
  done;
  for q = 1 to n_s - 1 do
    Fdlib.Dag.union dags.(0) dags.(q)
  done;
  dags.(0)

let setup ~n ~k ~seed ~pattern =
  let task = Set_agreement.make ~n ~k () in
  let algo = Ksa.make ~max_rounds:128 ~k () in
  let fd = Fdlib.Leader_fds.vector_omega_k_silent ~max_stab:25 ~k () in
  let history = Fdlib.Fd.draw fd pattern ~seed in
  let rng = Random.State.make [| seed |] in
  let inputs = Task.sample_input task rng in
  (task, algo, fd, history, inputs)

let test_branch_fair_decides () =
  let n = 3 and k = 1 in
  let pattern = Failure.failure_free 3 in
  let _, algo, _, history, inputs = setup ~n ~k ~seed:3 ~pattern in
  let dag = offline_dag ~history ~pattern ~samples:120 in
  let decided, out =
    Extraction.simulate_branch ~algo ~inputs ~n_c:n ~n_s:3 ~k ~dag
      ~stall_on:None ~budget:6_000
  in
  check_bool "fair branch decides" true decided;
  Alcotest.(check int) "output size n-k" 2 (List.length out)

let test_branch_stall_leader_never_decides () =
  (* with the silent detector the stable leader is q1 (min correct):
     stalling its donor blocks every consensus instance *)
  let n = 3 and k = 1 in
  let pattern = Failure.failure_free 3 in
  let _, algo, _, history, inputs = setup ~n ~k ~seed:3 ~pattern in
  let dag = offline_dag ~history ~pattern ~samples:120 in
  let decided, out =
    Extraction.simulate_branch ~algo ~inputs ~n_c:n ~n_s:3 ~k ~dag
      ~stall_on:(Some 0) ~budget:6_000
  in
  check_bool "stalling the leader blocks the run" false decided;
  check_bool "blocked leader eventually not output" true
    (not (List.mem 0 out))

let test_branch_stall_other_decides () =
  let n = 3 and k = 1 in
  let pattern = Failure.failure_free 3 in
  let _, algo, _, history, inputs = setup ~n ~k ~seed:3 ~pattern in
  let dag = offline_dag ~history ~pattern ~samples:120 in
  List.iter
    (fun q ->
      let decided, _ =
        Extraction.simulate_branch ~algo ~inputs ~n_c:n ~n_s:3 ~k ~dag
          ~stall_on:(Some q) ~budget:6_000
      in
      check_bool
        (Printf.sprintf "stalling non-leader q%d still decides" (q + 1))
        true decided)
    [ 1; 2 ]

let test_branch_crashed_codes_starve () =
  (* a crashed S-process has finitely many DAG vertices: the fair branch
     still decides because the leader (min correct) keeps serving *)
  let n = 3 and k = 1 in
  let pattern = Failure.pattern ~n_s:3 [ (0, 8) ] in
  let _, algo, _, history, inputs = setup ~n ~k ~seed:5 ~pattern in
  let dag = offline_dag ~history ~pattern ~samples:120 in
  let decided, out =
    Extraction.simulate_branch ~algo ~inputs ~n_c:n ~n_s:3 ~k ~dag
      ~stall_on:None ~budget:6_000
  in
  check_bool "decides despite crashed q1" true decided;
  ignore out

let run_extraction ~n ~k ~pattern ~seed =
  let _, algo, fd, _, inputs = setup ~n ~k ~seed ~pattern in
  Extraction.run ~outer_budget:15_000 ~sample_period:400 ~explore_budget:2_500
    ~max_samples:200 ~k ~fd ~algo ~inputs ~n_c:n ~pattern ~seed ()

let check_extraction ~n:_ ~k ~pattern result =
  let suffix = 4_000 in
  check_bool "enough explorations happened" true (result.Extraction.x_explorations >= 3);
  check_bool "emulated outputs satisfy anti-Omega-k" true
    (Fdlib.Props.anti_omega_k_ok pattern result.Extraction.x_outputs ~k ~suffix)

let test_extraction_failure_free () =
  let pattern = Failure.failure_free 3 in
  let result = run_extraction ~n:3 ~k:1 ~pattern ~seed:11 in
  check_extraction ~n:3 ~k:1 ~pattern result

let test_extraction_with_crash () =
  let pattern = Failure.pattern ~n_s:3 [ (2, 300) ] in
  let result = run_extraction ~n:3 ~k:1 ~pattern ~seed:12 in
  check_extraction ~n:3 ~k:1 ~pattern result

let test_extraction_k2 () =
  let pattern = Failure.failure_free 4 in
  let result = run_extraction ~n:4 ~k:2 ~pattern ~seed:13 in
  check_extraction ~n:4 ~k:2 ~pattern result

let suite =
  [
    Alcotest.test_case "E7: fair branch decides" `Quick test_branch_fair_decides;
    Alcotest.test_case "E7: stalled leader never decides" `Quick
      test_branch_stall_leader_never_decides;
    Alcotest.test_case "E7: stalled non-leader decides" `Quick
      test_branch_stall_other_decides;
    Alcotest.test_case "E7: crashed codes starve" `Quick test_branch_crashed_codes_starve;
    Alcotest.test_case "E7: extraction (failure-free)" `Slow test_extraction_failure_free;
    Alcotest.test_case "E7: extraction (late crash)" `Slow test_extraction_with_crash;
    Alcotest.test_case "E7: extraction k=2" `Slow test_extraction_k2;
  ]
