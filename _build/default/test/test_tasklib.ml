open Tasklib

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let vi = Vectors.of_ints

(* --- Vectors --- *)

let test_vectors_basics () =
  let v = vi [ Some 1; None; Some 3 ] in
  Alcotest.(check (list int)) "participants" [ 0; 2 ] (Vectors.participants v);
  check_int "count" 2 (Vectors.count v);
  check_bool "not bottom" false (Vectors.is_bottom v);
  check_bool "bottom" true (Vectors.is_bottom (Vectors.bottom 3));
  check_bool "equal self" true (Vectors.equal v v);
  check_bool "set" true
    (Vectors.equal (Vectors.set v 1 (Value.int 2)) (vi [ Some 1; Some 2; Some 3 ]))

let test_vectors_prefix () =
  let full = vi [ Some 1; Some 2; Some 3 ] in
  check_bool "restriction is prefix" true
    (Vectors.is_prefix (Vectors.restrict full [ 0; 2 ]) full);
  check_bool "full is prefix of itself" true (Vectors.is_prefix full full);
  check_bool "empty is not a prefix" false
    (Vectors.is_prefix (Vectors.bottom 3) full);
  check_bool "disagreeing is not a prefix" false
    (Vectors.is_prefix (vi [ Some 9; None; None ]) full);
  check_int "proper prefixes of 3 participants" 6
    (List.length (Vectors.proper_prefixes full))

(* --- Set agreement --- *)

let sa3_1 = Set_agreement.consensus ~n:3 ()
let sa4_2 = Set_agreement.make ~n:4 ~k:2 ()

let test_sa_inputs () =
  (* consensus n=3 values {0,1}: 2^3 = 8 maximal vectors *)
  check_int "consensus inputs" 8 (List.length (sa3_1.Task.max_inputs ()));
  (* k=2, n=4, values {0,1,2}: 3^4 = 81 *)
  check_int "2-SA inputs" 81 (List.length (sa4_2.Task.max_inputs ()));
  List.iter
    (fun v -> check_int "maximal vectors are full" 4 (Vectors.count v))
    (sa4_2.Task.max_inputs ())

let test_sa_check () =
  let input = vi [ Some 0; Some 1; Some 1 ] in
  check_bool "agree on 0" true
    (Task.satisfies sa3_1 ~input ~output:(vi [ Some 0; Some 0; Some 0 ]));
  check_bool "partial ok" true
    (Task.satisfies sa3_1 ~input ~output:(vi [ None; Some 1; None ]));
  check_bool "two values violates consensus" false
    (Task.satisfies sa3_1 ~input ~output:(vi [ Some 0; Some 1; Some 0 ]));
  check_bool "non-proposed value" false
    (Task.satisfies sa3_1 ~input ~output:(vi [ Some 7; None; None ]));
  check_bool "decision by non-participant" false
    (Task.satisfies sa3_1
       ~input:(vi [ Some 0; None; Some 1 ])
       ~output:(vi [ Some 0; Some 0; Some 0 ]))

let test_sa_k2_check () =
  let input = vi [ Some 0; Some 1; Some 2; Some 2 ] in
  check_bool "two distinct ok" true
    (Task.satisfies sa4_2 ~input ~output:(vi [ Some 0; Some 1; Some 1; Some 0 ]));
  check_bool "three distinct violates" false
    (Task.satisfies sa4_2 ~input ~output:(vi [ Some 0; Some 1; Some 2; Some 0 ]))

let test_sa_choose () =
  let input = vi [ Some 0; Some 1; Some 1 ] in
  let out = Task.choice_closure sa3_1 ~input in
  check_bool "closure valid" true (Task.satisfies sa3_1 ~input ~output:out);
  check_int "all decided" 3 (Vectors.count out)

let test_sa_subset_u () =
  let t = Set_agreement.make ~u:[ 0; 2 ] ~n:4 ~k:1 () in
  List.iter
    (fun v ->
      Alcotest.(check (list int)) "participants are U" [ 0; 2 ]
        (Vectors.participants v))
    (t.Task.max_inputs ());
  check_bool "2-process consensus is level 1" true
    (t.Task.known_concurrency = Some 1);
  let easy = Set_agreement.make ~u:[ 0; 2 ] ~n:4 ~k:2 () in
  check_bool "|U| <= k is wait-free class" true
    (easy.Task.known_concurrency = Some 4)

let test_sa_metadata () =
  check_bool "colorless" true sa4_2.Task.colorless;
  check_bool "level k" true (sa4_2.Task.known_concurrency = Some 2)

(* --- Renaming --- *)

let rn = Renaming.make ~n:5 ~j:3 ~l:4

let test_renaming_inputs () =
  (* C(5,3) = 10 maximal vectors, 3 participants each *)
  check_int "input count" 10 (List.length (rn.Task.max_inputs ()));
  List.iter
    (fun v -> check_int "3 participants" 3 (Vectors.count v))
    (rn.Task.max_inputs ());
  (* original names injective *)
  let names = List.init 5 (fun i -> Renaming.original_name ~n:5 i) in
  check_int "distinct originals" 5 (List.length (List.sort_uniq Int.compare names))

let test_renaming_check () =
  let input =
    Vectors.restrict
      (List.hd (rn.Task.max_inputs ()))
      (Vectors.participants (List.hd (rn.Task.max_inputs ())))
  in
  let ps = Vectors.participants input in
  (match ps with
  | [ a; b; c ] ->
    let out = Vectors.bottom 5 in
    let out = Vectors.set out a (Value.int 1) in
    let out = Vectors.set out b (Value.int 4) in
    check_bool "distinct in range ok" true (Task.satisfies rn ~input ~output:out);
    let dup = Vectors.set out c (Value.int 4) in
    check_bool "duplicate name rejected" false (Task.satisfies rn ~input ~output:dup);
    let oor = Vectors.set out c (Value.int 5) in
    check_bool "name out of range rejected" false (Task.satisfies rn ~input ~output:oor)
  | _ -> Alcotest.fail "expected 3 participants")

let test_renaming_choose () =
  List.iter
    (fun input ->
      let out = Task.choice_closure rn ~input in
      check_bool "closure valid" true (Task.satisfies rn ~input ~output:out);
      check_int "all decided" 3 (Vectors.count out))
    (rn.Task.max_inputs ())

let test_renaming_metadata () =
  check_bool "strong renaming level 1" true
    ((Renaming.strong ~n:5 ~j:3).Task.known_concurrency = Some 1);
  check_bool "l >= 2j-1 wait-free" true
    ((Renaming.make ~n:5 ~j:3 ~l:5).Task.known_concurrency = Some 5);
  check_bool "intermediate open" true (rn.Task.known_concurrency = None);
  check_bool "renaming is colored" false rn.Task.colorless

let test_renaming_validation () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Renaming.make ~n:3 ~j:3 ~l:3);
  expect_invalid (fun () -> Renaming.make ~n:5 ~j:3 ~l:2)

(* --- WSB --- *)

let wsb = Wsb.make ~n:5 ~j:3

let test_wsb_check () =
  let input = List.hd (wsb.Task.max_inputs ()) in
  let ps = Vectors.participants input in
  match ps with
  | [ a; b; c ] ->
    let out0 = Vectors.bottom 5 in
    let out1 = Vectors.set out0 a (Value.int 0) in
    check_bool "partial ok" true (Task.satisfies wsb ~input ~output:out1);
    let same = Vectors.set (Vectors.set out1 b (Value.int 0)) c (Value.int 0) in
    check_bool "all-equal rejected" false (Task.satisfies wsb ~input ~output:same);
    let mixed = Vectors.set (Vectors.set out1 b (Value.int 0)) c (Value.int 1) in
    check_bool "mixed ok" true (Task.satisfies wsb ~input ~output:mixed);
    let bad = Vectors.set out1 b (Value.int 2) in
    check_bool "non-bit rejected" false (Task.satisfies wsb ~input ~output:bad)
  | _ -> Alcotest.fail "expected 3 participants"

let test_wsb_choose () =
  List.iter
    (fun input ->
      let out = Task.choice_closure wsb ~input in
      check_bool "closure valid" true (Task.satisfies wsb ~input ~output:out))
    (wsb.Task.max_inputs ())

(* --- Trivial tasks --- *)

let test_identity () =
  let t = Trivial_tasks.identity ~n:3 () in
  let input = vi [ Some 0; Some 1; Some 0 ] in
  check_bool "echo ok" true (Task.satisfies t ~input ~output:input);
  check_bool "wrong echo rejected" false
    (Task.satisfies t ~input ~output:(vi [ Some 1; Some 1; Some 0 ]));
  let out = Task.choice_closure t ~input in
  check_bool "closure is echo" true (Vectors.equal out input)

let test_constant () =
  let t = Trivial_tasks.constant ~n:3 ~out:7 () in
  let input = vi [ Some 0; Some 1; None ] in
  let out = Task.choice_closure t ~input in
  check_bool "closure valid" true (Task.satisfies t ~input ~output:out);
  check_bool "constant 7" true
    (List.for_all
       (fun i -> Option.equal Value.equal out.(i) (Some (Value.int 7)))
       (Vectors.participants input))

(* --- Task generic machinery --- *)

let test_input_ok () =
  check_bool "prefix of maximal accepted" true
    (Task.input_ok sa3_1 (vi [ Some 0; None; None ]));
  check_bool "junk value rejected" false
    (Task.input_ok sa3_1 (vi [ Some 9; None; None ]))

let test_sampling () =
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 50 do
    let v = Task.sample_input sa4_2 rng in
    check_bool "sampled maximal is valid input" true (Task.input_ok sa4_2 v);
    let p = Task.sample_prefix sa4_2 rng ~min_participants:2 in
    check_bool "sampled prefix is valid input" true (Task.input_ok sa4_2 p);
    check_bool "min participants respected" true (Vectors.count p >= 2)
  done

(* qcheck: choice closure always yields valid outputs on sampled prefixes *)
let prop_choice_closure task name =
  QCheck.Test.make ~name ~count:100 QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let input = Task.sample_prefix task rng ~min_participants:1 in
      let out = Task.choice_closure task ~input in
      Task.satisfies task ~input ~output:out
      && Vectors.count out = Vectors.count input)

(* qcheck: prefixes of valid outputs remain valid (paper axiom 2) *)
let prop_output_prefix_closed task name =
  QCheck.Test.make ~name ~count:60 QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let input = Task.sample_input task rng in
      let out = Task.choice_closure task ~input in
      List.for_all
        (fun out' -> Task.satisfies task ~input ~output:out')
        (Vectors.proper_prefixes out))

(* --- Registry --- *)

let test_registry () =
  let entries = Registry.standard ~n:4 in
  check_bool "non-empty" true (List.length entries >= 10);
  (match Registry.find entries "1-set-agreement(n=4)" with
  | Some e ->
    check_bool "consensus exact 1" true (e.Registry.expected = Registry.Exact 1);
    Alcotest.(check string) "consensus fd" "Omega" e.Registry.weakest_fd
  | None -> Alcotest.fail "consensus missing");
  (match Registry.find entries "identity(n=4)" with
  | Some e -> Alcotest.(check string) "identity fd" "trivial" e.Registry.weakest_fd
  | None -> Alcotest.fail "identity missing");
  List.iter
    (fun e ->
      check_bool "expected lower bound sane" true
        (Registry.expected_lower e.Registry.expected >= 1))
    entries

let test_weakest_fd_names () =
  Alcotest.(check string) "level n" "trivial" (Registry.weakest_fd_of_level ~n:4 4);
  Alcotest.(check string) "level 1" "Omega" (Registry.weakest_fd_of_level ~n:4 1);
  Alcotest.(check string) "level 2" "anti-Omega-2" (Registry.weakest_fd_of_level ~n:4 2)

let suite =
  [
    Alcotest.test_case "vectors basics" `Quick test_vectors_basics;
    Alcotest.test_case "vectors prefix" `Quick test_vectors_prefix;
    Alcotest.test_case "set-agreement inputs" `Quick test_sa_inputs;
    Alcotest.test_case "consensus check" `Quick test_sa_check;
    Alcotest.test_case "2-set-agreement check" `Quick test_sa_k2_check;
    Alcotest.test_case "set-agreement choose" `Quick test_sa_choose;
    Alcotest.test_case "(U,k)-agreement subset" `Quick test_sa_subset_u;
    Alcotest.test_case "set-agreement metadata" `Quick test_sa_metadata;
    Alcotest.test_case "renaming inputs" `Quick test_renaming_inputs;
    Alcotest.test_case "renaming check" `Quick test_renaming_check;
    Alcotest.test_case "renaming choose" `Quick test_renaming_choose;
    Alcotest.test_case "renaming metadata" `Quick test_renaming_metadata;
    Alcotest.test_case "renaming validation" `Quick test_renaming_validation;
    Alcotest.test_case "wsb check" `Quick test_wsb_check;
    Alcotest.test_case "wsb choose" `Quick test_wsb_choose;
    Alcotest.test_case "identity task" `Quick test_identity;
    Alcotest.test_case "constant task" `Quick test_constant;
    Alcotest.test_case "input_ok" `Quick test_input_ok;
    Alcotest.test_case "sampling" `Quick test_sampling;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "weakest fd names" `Quick test_weakest_fd_names;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_choice_closure sa3_1 "choice closure: consensus";
        prop_choice_closure sa4_2 "choice closure: 2-set-agreement";
        prop_choice_closure rn "choice closure: renaming";
        prop_choice_closure wsb "choice closure: wsb";
        prop_output_prefix_closed sa4_2 "output prefix-closed: 2-set-agreement";
        prop_output_prefix_closed rn "output prefix-closed: renaming";
      ]
