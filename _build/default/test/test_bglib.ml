open Simkit
open Bglib

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_config ?(n_c = 2) ?(n_s = 1) mem =
  {
    Runtime.n_c;
    n_s;
    memory = mem;
    pattern = Failure.failure_free n_s;
    history = History.trivial;
    record_trace = false;
  }

let run_c_processes ?(budget = 200_000) ~n_c ~seed mem c_code =
  let rt = Runtime.create (mk_config ~n_c mem) ~c_code ~s_code:(fun _ () -> ()) in
  let rng = Random.State.make [| seed |] in
  let outcome =
    Schedule.run rt (Schedule.shuffled_rounds ~n_c ~n_s:1 rng) ~budget
  in
  (rt, outcome)

(* --- Safe agreement --- *)

let test_sa_solo () =
  let mem = Memory.create () in
  let sa = Safe_agreement.create mem ~n:2 in
  let c_code i () =
    if i = 0 then begin
      Safe_agreement.propose sa ~me:0 (Value.int 7);
      match Safe_agreement.try_resolve sa with
      | Some v -> Runtime.Op.decide v
      | None -> ()
    end
  in
  let rt, _ = run_c_processes ~n_c:1 ~seed:1 mem c_code in
  (match Runtime.decision rt 0 with
  | Some v -> check_int "solo resolves own value" 7 (Value.to_int v)
  | None -> Alcotest.fail "solo propose did not resolve");
  Runtime.destroy rt

let test_sa_agreement_validity () =
  (* two proposers with different values, many schedules: all resolutions
     equal and equal to one of the proposals *)
  for seed = 1 to 30 do
    let mem = Memory.create () in
    let sa = Safe_agreement.create mem ~n:2 in
    let c_code i () =
      Safe_agreement.propose sa ~me:i (Value.int (100 + i));
      let rec resolve () =
        match Safe_agreement.try_resolve sa with
        | Some v -> Runtime.Op.decide v
        | None -> resolve ()
      in
      resolve ()
    in
    let rt, outcome = run_c_processes ~n_c:2 ~seed mem c_code in
    check_bool "both resolved" true outcome.Schedule.all_decided;
    (match (Runtime.decision rt 0, Runtime.decision rt 1) with
    | Some a, Some b ->
      check_bool "agreement" true (Value.equal a b);
      check_bool "validity" true
        (Value.to_int a = 100 || Value.to_int a = 101)
    | _ -> Alcotest.fail "missing resolution");
    Runtime.destroy rt
  done

let test_sa_doorway_blocks () =
  let mem = Memory.create () in
  let sa = Safe_agreement.create mem ~n:2 in
  let resolved_while_blocked = ref None in
  let c_code i () =
    if i = 0 then
      (* p1 proposes but we will stall it inside the doorway *)
      Safe_agreement.propose sa ~me:0 (Value.int 1)
    else begin
      Safe_agreement.propose sa ~me:1 (Value.int 2);
      resolved_while_blocked := Some (Safe_agreement.try_resolve sa);
      (* p1 still stalled; repeated attempts must keep failing *)
      (match Safe_agreement.try_resolve sa with
      | None -> ()
      | Some _ -> Alcotest.fail "resolved through a blocked doorway");
      Runtime.Op.decide Value.unit
    end
  in
  let rt = Runtime.create (mk_config mem) ~c_code ~s_code:(fun _ () -> ()) in
  (* p1 takes exactly 1 step: its level-1 write, then stalls in the doorway *)
  Runtime.step rt (Pid.c 0);
  (* p2 runs to completion *)
  for _ = 1 to 20 do
    Runtime.step rt (Pid.c 1)
  done;
  check_bool "unresolved while doorway held" true
    (!resolved_while_blocked = Some None);
  (* release p1: it completes the doorway; now resolvable *)
  for _ = 1 to 5 do
    Runtime.step rt (Pid.c 0)
  done;
  let final = ref None in
  let c2 _ () = () in
  ignore c2;
  (* direct memory check via a fresh prober process is overkill: p1's own
     resolve suffices — but p1's code ended; spin a checker runtime instead *)
  let checker_code _ () = final := Some (Safe_agreement.try_resolve sa) in
  let rt2 =
    Runtime.create (mk_config ~n_c:1 mem) ~c_code:checker_code
      ~s_code:(fun _ () -> ())
  in
  for _ = 1 to 10 do
    Runtime.step rt2 (Pid.c 0)
  done;
  (match !final with
  | Some (Some v) ->
    check_bool "resolves after release" true
      (Value.to_int v = 1 || Value.to_int v = 2)
  | _ -> Alcotest.fail "still unresolved after doorway released");
  Runtime.destroy rt;
  Runtime.destroy rt2

(* --- Commit-adopt --- *)

let run_commit_adopt ~inputs ~seed =
  let n = Array.length inputs in
  let mem = Memory.create () in
  let ca = Commit_adopt.create mem ~n in
  let outcomes = Array.make n None in
  let c_code i () =
    let o = Commit_adopt.run ca ~me:i inputs.(i) in
    outcomes.(i) <- Some o;
    Runtime.Op.decide (Commit_adopt.outcome_value o)
  in
  let rt, outcome = run_c_processes ~n_c:n ~seed mem c_code in
  check_bool "all finished" true outcome.Schedule.all_decided;
  Runtime.destroy rt;
  Array.map Option.get outcomes

let test_ca_unanimous_commits () =
  for seed = 1 to 20 do
    let outcomes =
      run_commit_adopt ~inputs:(Array.make 3 (Value.int 5)) ~seed
    in
    Array.iter
      (fun o ->
        check_bool "commit" true (Commit_adopt.is_commit o);
        check_int "value 5" 5 (Value.to_int (Commit_adopt.outcome_value o)))
      outcomes
  done

let test_ca_commit_forces_agreement () =
  (* mixed inputs: if anyone commits v, every outcome value is v *)
  for seed = 1 to 60 do
    let inputs = [| Value.int 0; Value.int 1; Value.int 0 |] in
    let outcomes = run_commit_adopt ~inputs ~seed in
    let committed =
      Array.to_list outcomes
      |> List.filter_map (function
           | Commit_adopt.Commit v -> Some v
           | Commit_adopt.Adopt _ -> None)
    in
    match committed with
    | [] -> ()
    | v :: _ ->
      Array.iter
        (fun o ->
          check_bool "agreement with committed" true
            (Value.equal (Commit_adopt.outcome_value o) v))
        outcomes
  done

let test_ca_validity () =
  for seed = 1 to 20 do
    let inputs = [| Value.int 3; Value.int 4; Value.int 5 |] in
    let outcomes = run_commit_adopt ~inputs ~seed in
    Array.iter
      (fun o ->
        let v = Value.to_int (Commit_adopt.outcome_value o) in
        check_bool "outcome was proposed" true (v >= 3 && v <= 5))
      outcomes
  done

(* --- BG simulation --- *)

(* One-round protocol: write input, decide the set of inputs seen. *)
let one_round_code input =
  {
    Bg.init = Value.int input;
    step =
      (fun ~round ~view ->
        assert (round = 0);
        let seen =
          Array.to_list view
          |> List.concat_map (fun writes -> List.map Value.to_int writes)
          |> List.sort_uniq Int.compare
        in
        Bg.Decide (Value.int_list seen));
  }

(* Multi-round flood: R rounds of echoing, then decide all inputs seen. *)
let flood_code ~rounds input =
  {
    Bg.init = Value.int_list [ input ];
    step =
      (fun ~round ~view ->
        let seen =
          Array.to_list view
          |> List.concat_map (fun writes ->
                 List.concat_map Value.to_int_list writes)
          |> List.sort_uniq Int.compare
        in
        if round < rounds - 1 then Bg.Write (Value.int_list seen)
        else Bg.Decide (Value.int_list seen));
  }

let bg_simulator_code bg ~codes ~n_codes i () =
  let sim = Bg.make_sim bg ~me:i in
  let order = List.init n_codes Fun.id in
  let rec loop idle =
    if idle > 5000 then ()
    else begin
      let undecided =
        List.filter (fun j -> Bg.decision bg j = None) order
      in
      if undecided = [] then Runtime.Op.decide Value.unit
      else begin
        (match Bg.try_advance sim ~codes ~order:undecided with
        | Some _ -> loop 0
        | None -> loop (idle + 1))
      end
    end
  in
  loop 0

let run_bg ~n_codes ~n_sims ~seed ~codes ~max_rounds =
  let mem = Memory.create () in
  let bg = Bg.create mem ~n_codes ~n_sims ~max_rounds in
  let c_code = bg_simulator_code bg ~codes ~n_codes in
  let rt, outcome =
    run_c_processes ~budget:500_000 ~n_c:n_sims ~seed mem c_code
  in
  let decisions = Bg.decisions_view mem bg in
  Runtime.destroy rt;
  (outcome, decisions)

let test_bg_one_round_all_decide () =
  for seed = 1 to 10 do
    let codes j = one_round_code (10 + j) in
    let outcome, decisions =
      run_bg ~n_codes:3 ~n_sims:2 ~seed ~codes ~max_rounds:4
    in
    check_bool "simulators finished" true outcome.Schedule.all_decided;
    Array.iter
      (fun d ->
        match d with
        | Some v ->
          let seen = Value.to_int_list v in
          check_bool "decision is a subset of inputs" true
            (List.for_all (fun x -> List.mem x [ 10; 11; 12 ]) seen);
          check_bool "own-inclusion: non-empty" true (seen <> [])
        | None -> Alcotest.fail "some code never decided")
      decisions
  done

let test_bg_views_are_chained () =
  (* decisions (= views) must be totally ordered by inclusion *)
  for seed = 1 to 10 do
    let codes j = one_round_code (10 + j) in
    let _, decisions = run_bg ~n_codes:4 ~n_sims:2 ~seed ~codes ~max_rounds:4 in
    let sets =
      Array.to_list decisions
      |> List.map (fun d -> Value.to_int_list (Option.get d))
      |> List.sort (fun a b -> Int.compare (List.length a) (List.length b))
    in
    let rec chain = function
      | a :: (b :: _ as rest) ->
        check_bool "inclusion chain" true
          (List.for_all (fun x -> List.mem x b) a);
        chain rest
      | _ -> ()
    in
    chain sets
  done

let test_bg_flood_converges () =
  (* Codes run asynchronously, so a code may finish all its rounds before
     the others start; a decision need not contain every input. It must
     contain the code's own input and only real inputs. *)
  for seed = 1 to 5 do
    let n_codes = 3 in
    let codes j = flood_code ~rounds:4 (20 + j) in
    let outcome, decisions =
      run_bg ~n_codes ~n_sims:3 ~seed ~codes ~max_rounds:8
    in
    check_bool "finished" true outcome.Schedule.all_decided;
    Array.iteri
      (fun j d ->
        let seen = Value.to_int_list (Option.get d) in
        check_bool "contains own input" true (List.mem (20 + j) seen);
        check_bool "only real inputs" true
          (List.for_all (fun x -> x >= 20 && x < 20 + n_codes) seen))
      decisions
  done

let test_bg_stalled_simulator_blocks_at_most_one () =
  (* Simulator p2 is starved from the start. p1 alone must finish all codes:
     with no one inside any doorway, nothing blocks. *)
  let mem = Memory.create () in
  let n_codes = 3 in
  let bg = Bg.create mem ~n_codes ~n_sims:2 ~max_rounds:4 in
  let codes j = one_round_code (10 + j) in
  let c_code = bg_simulator_code bg ~codes ~n_codes in
  let rt =
    Runtime.create (mk_config ~n_c:2 mem) ~c_code ~s_code:(fun _ () -> ())
  in
  let outcome =
    Schedule.run rt (Schedule.c_solo 0) ~budget:100_000
      ~stop_when:(fun rt -> Runtime.decision rt 0 <> None)
  in
  ignore outcome;
  let decisions = Bg.decisions_view mem bg in
  check_int "all codes decided by solo simulator" n_codes
    (Array.fold_left (fun acc d -> if d <> None then acc + 1 else acc) 0 decisions);
  Runtime.destroy rt

let test_bg_doorway_stall_blocks_one_code () =
  (* Let p2 run just long enough to get inside the doorway of code 0's first
     agreement, then starve it. p1 must still finish codes 1 and 2; code 0
     stays blocked. *)
  let mem = Memory.create () in
  let n_codes = 3 in
  let bg = Bg.create mem ~n_codes ~n_sims:2 ~max_rounds:4 in
  let codes j = one_round_code (10 + j) in
  (* p2 advances only code 0 and stalls forever after entering the doorway *)
  let c_code i () =
    if i = 1 then begin
      let sim = Bg.make_sim bg ~me:1 in
      ignore (Bg.advance sim ~codes 0);
      ignore (Bg.advance sim ~codes 0)
    end
    else begin
      let sim = Bg.make_sim bg ~me:0 in
      let rec loop n =
        if n > 2000 then ()
        else begin
          ignore (Bg.try_advance sim ~codes ~order:[ 0; 1; 2 ]);
          let done1 = Bg.decision bg 1 <> None in
          let done2 = Bg.decision bg 2 <> None in
          if done1 && done2 then Runtime.Op.decide Value.unit else loop (n + 1)
        end
      in
      loop 0
    end
  in
  let rt = Runtime.create (mk_config ~n_c:2 mem) ~c_code ~s_code:(fun _ () -> ()) in
  (* p2: enough steps to write its level-1 mark in code 0's round-0 doorway,
     not enough to leave it. advance = dec read + (ah reads) + sr read/write
     + snapshot + SA write-1 ... stop right after the level-1 write. *)
  (* We empirically give p2 a few steps and verify blocking behaviour below. *)
  for _ = 1 to 7 do
    Runtime.step rt (Pid.c 1)
  done;
  let _ =
    Schedule.run rt (Schedule.c_solo 0) ~budget:200_000
      ~stop_when:(fun rt -> Runtime.decision rt 0 <> None)
  in
  let decisions = Bg.decisions_view mem bg in
  check_bool "codes 1,2 decided" true
    (decisions.(1) <> None && decisions.(2) <> None);
  Runtime.destroy rt

let suite =
  [
    Alcotest.test_case "safe agreement solo" `Quick test_sa_solo;
    Alcotest.test_case "safe agreement agreement+validity" `Quick
      test_sa_agreement_validity;
    Alcotest.test_case "safe agreement doorway blocks" `Quick test_sa_doorway_blocks;
    Alcotest.test_case "commit-adopt unanimous commits" `Quick
      test_ca_unanimous_commits;
    Alcotest.test_case "commit-adopt commit forces agreement" `Quick
      test_ca_commit_forces_agreement;
    Alcotest.test_case "commit-adopt validity" `Quick test_ca_validity;
    Alcotest.test_case "bg one-round all decide" `Quick test_bg_one_round_all_decide;
    Alcotest.test_case "bg views chained" `Quick test_bg_views_are_chained;
    Alcotest.test_case "bg flood converges" `Quick test_bg_flood_converges;
    Alcotest.test_case "bg solo simulator finishes" `Quick
      test_bg_stalled_simulator_blocks_at_most_one;
    Alcotest.test_case "bg doorway stall blocks one code" `Quick
      test_bg_doorway_stall_blocks_one_code;
  ]
