(* Cross-cutting property tests: invariants that must hold across random
   schedules, seeds and even adversarial (junk) failure detectors. *)

open Simkit
open Tasklib
open Efd

let check_bool = Alcotest.(check bool)

(* --- determinism: a run is a function of (codes, schedule, history) --- *)

let prop_run_determinism =
  QCheck.Test.make ~name:"runs are deterministic" ~count:40
    QCheck.(pair (int_range 2 5) small_int)
    (fun (n, seed) ->
      let go () =
        let task = Set_agreement.make ~n ~k:1 () in
        let rng = Random.State.make [| seed |] in
        let input = Task.sample_input task rng in
        let r =
          Run.execute ~task ~algo:(Ksa.consensus ())
            ~fd:(Fdlib.Leader_fds.omega ~max_stab:40 ())
            ~pattern:(Failure.failure_free n)
            ~input ~seed ()
        in
        ( Array.map (Option.map Value.to_string) r.Run.r_output,
          r.Run.r_steps )
      in
      go () = go ())

(* --- the k-concurrent controller never exceeds its bound --- *)

let prop_controller_bound =
  QCheck.Test.make ~name:"k-concurrent controller bound" ~count:60
    QCheck.(triple (int_range 1 4) (int_range 4 6) small_int)
    (fun (k, n, seed) ->
      let task = Set_agreement.make ~n ~k:n () in
      let rng = Random.State.make [| seed |] in
      let input = Task.sample_input task rng in
      let r =
        Run.execute
          ~policy:(Run.k_concurrent_uniform_policy k)
          ~task
          ~algo:(Kconc_tasks.adoption ())
          ~fd:Fdlib.Fd.trivial
          ~pattern:(Failure.failure_free 1)
          ~input ~seed ()
      in
      r.Run.r_max_conc <= k)

(* --- safety of the consensus machinery under junk advice ---
   A detector that outputs arbitrary never-stabilizing leader vectors must
   never make the k-SA solver violate the task relation (liveness may
   fail; we only check what DID get decided). *)

let junk_vector_fd ~k =
  Fdlib.Fd.make ~name:"junk-vector" (fun pattern _rng ->
      let n_s = pattern.Simkit.Failure.n_s in
      Simkit.History.make ~name:"junk" (fun q time ->
          Fdlib.Fd.encode_vector
            (Array.init k (fun pos -> (q + time + (3 * pos)) mod n_s))))

let prop_ksa_safe_under_junk_advice =
  QCheck.Test.make ~name:"k-SA safety under junk advice" ~count:30
    QCheck.(triple (int_range 1 3) (int_range 3 5) small_int)
    (fun (k, n, seed) ->
      let task = Set_agreement.make ~n ~k () in
      let rng = Random.State.make [| seed |] in
      let input = Task.sample_input task rng in
      let r =
        Run.execute ~budget:60_000 ~task ~algo:(Ksa.make ~k ())
          ~fd:(junk_vector_fd ~k)
          ~pattern:(Failure.failure_free n)
          ~input ~seed ()
      in
      (* whatever was decided must satisfy the relation *)
      r.Run.r_task_ok)

let prop_machine_ksa_safe_under_junk_advice =
  QCheck.Test.make ~name:"machine k-SA safety under junk advice" ~count:15
    QCheck.(pair (int_range 1 2) small_int)
    (fun (k, seed) ->
      let n = 3 in
      let task = Set_agreement.make ~n ~k () in
      let rng = Random.State.make [| seed |] in
      let input = Task.sample_input task rng in
      let r =
        Run.execute ~budget:120_000 ~task ~algo:(Machine_ksa.make ~k ())
          ~fd:(junk_vector_fd ~k)
          ~pattern:(Failure.failure_free n)
          ~input ~seed ()
      in
      r.Run.r_task_ok)

(* --- leader consensus: rogue servers can never break agreement ---
   every S-process serves every instance all the time (maximal races). *)

let rogue_everyone_serves ~k =
  {
    Algorithm.algo_name = "ksa-with-rogue-serving";
    make =
      (fun ctx ->
        let mem = ctx.Algorithm.mem in
        let instances =
          Array.init k (fun _ ->
              Leader_consensus.create mem ~n_c:ctx.Algorithm.n_c ~max_rounds:256)
        in
        let c_run i input =
          let clients =
            Array.map (fun lc -> Leader_consensus.client lc ~me:i input) instances
          in
          let rec loop () =
            let decided = ref None in
            Array.iter
              (fun cl ->
                if !decided = None then
                  match Leader_consensus.pump cl with
                  | Leader_consensus.Decided v -> decided := Some v
                  | _ -> ())
              clients;
            match !decided with
            | Some v -> Simkit.Runtime.Op.decide v
            | None -> loop ()
          in
          loop ()
        in
        let s_run _me =
          let rec loop () =
            Array.iter Leader_consensus.serve instances;
            loop ()
          in
          loop ()
        in
        { Algorithm.c_run; s_run });
  }

let prop_rogue_servers_preserve_agreement =
  QCheck.Test.make ~name:"rogue servers preserve k-SA safety" ~count:30
    QCheck.(triple (int_range 1 3) (int_range 3 5) small_int)
    (fun (k, n, seed) ->
      let task = Set_agreement.make ~n ~k () in
      let rng = Random.State.make [| seed |] in
      let input = Task.sample_input task rng in
      let r =
        Run.execute ~budget:120_000 ~task ~algo:(rogue_everyone_serves ~k)
          ~fd:Fdlib.Fd.trivial
          ~pattern:(Failure.failure_free n)
          ~input ~seed ()
      in
      r.Run.r_task_ok)

(* --- snapshot containment: single-writer monotone counters give
       pointwise-comparable scans --- *)

let prop_snapshot_scans_comparable =
  QCheck.Test.make ~name:"snapshot scans pointwise comparable" ~count:20
    QCheck.small_int
    (fun seed ->
      let n = 3 in
      let mem = Memory.create () in
      let h = Snapshot.create mem ~n in
      let scans = ref [] in
      let c_code i () =
        for v = 1 to 4 do
          Snapshot.update h i (Value.int v);
          let s = Snapshot.scan h in
          scans := s :: !scans
        done;
        Runtime.Op.decide Value.unit
      in
      let rt =
        Runtime.create
          {
            Runtime.n_c = n;
            n_s = 1;
            memory = mem;
            pattern = Failure.failure_free 1;
            history = History.trivial;
            record_trace = false;
          }
          ~c_code
          ~s_code:(fun _ () -> ())
      in
      let rng = Random.State.make [| seed |] in
      let _ =
        Schedule.run rt (Schedule.shuffled_rounds ~n_c:n ~n_s:1 rng)
          ~budget:100_000
      in
      Runtime.destroy rt;
      let as_int v = if Value.is_unit v then 0 else Value.to_int v in
      let leq a b =
        Array.for_all2 (fun x y -> as_int x <= as_int y) a b
      in
      List.for_all
        (fun s1 -> List.for_all (fun s2 -> leq s1 s2 || leq s2 s1) !scans)
        !scans)

(* --- engine proposals: agreed views for one code grow over rounds and
       always include the code's own latest write --- *)

let prop_engine_views_monotone =
  QCheck.Test.make ~name:"engine agreed views monotone + self-inclusive"
    ~count:30 QCheck.small_int
    (fun seed ->
      let open Bglib in
      let n_codes = 4 and k = 2 in
      let algo = Fi_algos.adoption in
      let machines = Sm_engine.engines ~k ~n_codes algo in
      let env = Array.init n_codes (fun c -> Value.int c) in
      let rng = Random.State.make [| seed |] in
      let sys = ref (Machine.boot machines) in
      for _ = 1 to 300 do
        sys := Machine.step_pure machines !sys ~env (Random.State.int rng k)
      done;
      let histories =
        Sm_engine.code_histories algo ~n_codes
          ~states:!sys.Machine.sys_states ~env
      in
      Array.to_list histories
      |> List.mapi (fun c (views, _) -> (c, views))
      |> List.for_all (fun (c, views) ->
             let rec monotone prev = function
               | [] -> true
               | view :: rest ->
                 let sizes = Array.map List.length view in
                 let own_ok = sizes.(c) >= 1 in
                 let grow =
                   match prev with
                   | None -> true
                   | Some p ->
                     Array.for_all2 (fun a b -> a <= b) p sizes
                 in
                 own_ok && grow && monotone (Some sizes) rest
             in
             monotone None views))

(* --- task axiom 3: inputs extend, outputs extend --- *)

let prop_task_axiom_extension =
  QCheck.Test.make ~name:"task axiom: input extension keeps outputs valid"
    ~count:60
    QCheck.(pair (int_range 0 3) small_int)
    (fun (which, seed) ->
      let task =
        match which with
        | 0 -> Set_agreement.make ~n:4 ~k:2 ()
        | 1 -> Renaming.make ~n:5 ~j:3 ~l:4
        | 2 -> Trivial_tasks.identity ~n:4 ()
        | _ -> Leader_election.make ~n:4
      in
      let rng = Random.State.make [| seed |] in
      let full = Task.sample_input task rng in
      let prefix = Task.sample_prefix task rng ~min_participants:1 in
      (* decide the prefix sequentially, then extend the input to [full]'s
         participants that include the prefix — outputs stay valid and can
         be extended to the new participants *)
      if not (Vectors.is_prefix prefix full) then QCheck.assume_fail ()
      else begin
        let out = Task.choice_closure task ~input:prefix in
        Task.satisfies task ~input:full ~output:out
        &&
        let extended =
          List.fold_left
            (fun acc i ->
              if acc.(i) = None && full.(i) <> None then
                Vectors.set acc i (task.Task.choose ~input:full ~output:acc i)
              else acc)
            out
            (Vectors.participants full)
        in
        Task.satisfies task ~input:full ~output:extended
      end)

(* --- DAG: next_vertex respects causality --- *)

let prop_dag_next_vertex_causal =
  QCheck.Test.make ~name:"dag next_vertex causal" ~count:80
    QCheck.(pair (list_of_size Gen.(int_range 5 30) (int_bound 2)) small_int)
    (fun (qs, seed) ->
      let open Fdlib in
      let g = Dag.create ~n_s:3 in
      List.iteri (fun i q -> ignore (Dag.add_sample g ~q (Value.int i))) qs;
      let rng = Random.State.make [| seed |] in
      let frontier =
        Array.init 3 (fun q ->
            let top = (Dag.max_seqs g).(q) in
            if top = 0 then 0 else Random.State.int rng (top + 1))
      in
      List.for_all
        (fun q ->
          match Dag.next_vertex g ~q ~frontier with
          | None -> true
          | Some v ->
            v.Dag.vseq > frontier.(q)
            && Array.for_all Fun.id
                 (Array.mapi
                    (fun q' s -> Dag.succeeds v ~q:q' ~seq:s)
                    frontier))
        [ 0; 1; 2 ])

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_run_determinism;
      prop_controller_bound;
      prop_ksa_safe_under_junk_advice;
      prop_machine_ksa_safe_under_junk_advice;
      prop_rogue_servers_preserve_agreement;
      prop_snapshot_scans_comparable;
      prop_engine_views_monotone;
      prop_task_axiom_extension;
      prop_dag_next_vertex_causal;
    ]
