open Simkit
open Tasklib
open Efd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let seeds n = List.init n (fun i -> i + 1)

(* --- E10: Figure 4 solves (j, j+k-1)-renaming k-concurrently --- *)

let test_fig4_sweep () =
  let n = 5 in
  List.iter
    (fun (j, k) ->
      let task = Renaming.make ~n ~j ~l:(j + k - 1) in
      let s =
        Run.sweep
          ~policy:(Run.k_concurrent_policy k)
          ~task
          ~algo:(Renaming_algos.fig4 ())
          ~fd:Fdlib.Fd.trivial
          ~env:(Failure.crash_free 1)
          ~seeds:(seeds 15) ()
      in
      if s.Run.passed <> s.Run.total then
        Alcotest.failf "(j=%d,k=%d): %a" j k Run.pp_sweep s)
    [ (2, 1); (2, 2); (3, 1); (3, 2); (3, 3); (4, 2); (4, 4) ]

let test_fig4_solo_gets_name_one () =
  let n = 4 in
  let task = Renaming.make ~n ~j:2 ~l:2 in
  let maximal = List.hd (task.Task.max_inputs ()) in
  let solo = List.hd (Tasklib.Vectors.participants maximal) in
  let input = Tasklib.Vectors.restrict maximal [ solo ] in
  let r =
    Run.execute ~policy:(Run.k_concurrent_policy 1) ~task
      ~algo:(Renaming_algos.fig4 ())
      ~fd:Fdlib.Fd.trivial
      ~pattern:(Failure.failure_free 1)
      ~input ~seed:3 ()
  in
  check_bool "ok" true (Run.ok r);
  (match r.Run.r_output.(solo) with
  | Some v -> check_int "solo name is 1" 1 (Value.to_int v)
  | None -> Alcotest.fail "no decision")

let test_fig4_sequential_names_compact () =
  (* 1-concurrent: arrivals decide one after the other; names stay in 1..j *)
  let n = 5 and j = 3 in
  let task = Renaming.strong ~n ~j in
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let input = Task.sample_input task rng in
      let r =
        Run.execute ~policy:(Run.k_concurrent_policy 1) ~task
          ~algo:(Renaming_algos.fig4 ())
          ~fd:Fdlib.Fd.trivial
          ~pattern:(Failure.failure_free 1)
          ~input ~seed ()
      in
      check_bool "strong renaming 1-concurrently ok" true (Run.ok r))
    (seeds 10)

(* --- E9: Theorem 12 / Lemma 11 witnesses --- *)

let test_strong_renaming_witness_found () =
  (* the violating interleaving for j=3 needs a specific arrival order
     (first decider solo, then a larger-id third) — search widely *)
  let seeds = List.init 500 (fun i -> i + 1) in
  List.iter
    (fun j ->
      match Adversary.strong_renaming_witness ~seeds ~n:5 ~j () with
      | Some w ->
        check_bool "witness is a real violation" false (Run.ok w.Adversary.w_report)
      | None ->
        Alcotest.failf
          "no 2-concurrent witness against strong %d-renaming found" j)
    [ 2; 3 ]

let test_consensus_reduction_witness_found () =
  match Adversary.consensus_reduction_witness ~n:4 () with
  | Some w ->
    check_bool "witness is a real violation" false (Run.ok w.Adversary.w_report)
  | None -> Alcotest.fail "no witness against the Lemma-11 reduction found"

let test_reduction_sound_sequentially () =
  (* 1-concurrently the reduction does solve 2-process consensus *)
  let task = Set_agreement.make ~u:[ 0; 1 ] ~n:4 ~k:1 () in
  let s =
    Run.sweep
      ~policy:(Run.k_concurrent_policy 1)
      ~task
      ~algo:(Adversary.consensus_via_strong_renaming ())
      ~fd:Fdlib.Fd.trivial
      ~env:(Failure.crash_free 1)
      ~seeds:(seeds 12) ()
  in
  if s.Run.passed <> s.Run.total then Alcotest.failf "%a" Run.pp_sweep s

(* --- E11: Figure 3 --- *)

let fig3_policy ~starved ~after ~participants ~n_c ~n_s ~rng =
  let base = Schedule.shuffled_rounds ~only:(participants @ Pid.all_s n_s) ~n_c ~n_s rng in
  match starved with
  | None -> base
  | Some i ->
    Schedule.seq base ~steps:after
      (Schedule.starve [ Pid.c i ] ~until:max_int base)

let run_fig3 ~seed ~starved ~after =
  let n = 5 and j = 3 in
  let task = Renaming.make ~n ~j ~l:(j + 1) in
  let rng = Random.State.make [| seed |] in
  let input = Task.sample_input task rng in
  let r =
    Run.execute ~budget:200_000
      ~policy:(fun ~participants ~n_c ~n_s ~rng ->
        fig3_policy ~starved ~after ~participants ~n_c ~n_s ~rng)
      ~task
      ~algo:(Renaming_algos.fig3 ~j)
      ~fd:Fdlib.Fd.trivial
      ~pattern:(Failure.failure_free 1)
      ~input ~seed ()
  in
  (input, r)

let test_fig3_all_live () =
  List.iter
    (fun seed ->
      let _, r = run_fig3 ~seed ~starved:None ~after:0 in
      check_bool "all decide" true (Run.ok r))
    (seeds 10)

let test_fig3_one_resilient () =
  (* one participant stalls after a while; the other j-1 must still decide
     distinct names in range *)
  List.iter
    (fun seed ->
      let input, r = run_fig3 ~seed ~starved:(Some 0) ~after:40 in
      let live =
        List.filter (fun i -> i <> 0) (Tasklib.Vectors.participants input)
      in
      check_bool "task relation holds" true r.Run.r_task_ok;
      List.iter
        (fun i ->
          check_bool
            (Printf.sprintf "live p%d decided (seed %d)" (i + 1) seed)
            true
            (r.Run.r_output.(i) <> None))
        live)
    (seeds 8)

(* Starved participant is the smallest id — exercises the min1-blocked path
   where min2 must make progress. p1 only runs long enough to register. *)
let test_fig3_starved_min1 () =
  List.iter
    (fun seed ->
      let input, r = run_fig3 ~seed ~starved:(Some 0) ~after:12 in
      if List.mem 0 (Tasklib.Vectors.participants input) then begin
        let live =
          List.filter (fun i -> i <> 0) (Tasklib.Vectors.participants input)
        in
        check_bool "task relation holds" true r.Run.r_task_ok;
        List.iter
          (fun i -> check_bool "live decided" true (r.Run.r_output.(i) <> None))
          live
      end)
    (seeds 8)

(* --- E12: the hierarchy table --- *)

let test_classifier_table () =
  let table = Classifier.table ~seeds_per_level:10 ~n:4 () in
  check_bool "non-empty" true (List.length table >= 10);
  List.iter
    (fun m ->
      if not (Classifier.consistent m) then
        Alcotest.failf "inconsistent measurement: %a" Classifier.pp_measurement m)
    table

let test_classifier_ksa_exact () =
  (* adoption algorithm: passes at k; at concurrency k+1 a lockstep
     schedule of k+1 distinct-input processes forces k+1 distinct values *)
  let n = 4 in
  List.iter
    (fun k ->
      let task = Set_agreement.make ~n ~k () in
      let algo = Kconc_tasks.adoption () in
      check_bool
        (Printf.sprintf "%d-SA passes at %d" k k)
        true
        (Classifier.solvable_at ~seeds:(seeds 20) ~task ~algo ~k ());
      let input =
        Array.init n (fun i -> if i <= k then Some (Value.int i) else None)
      in
      let lockstep ~participants ~n_c:_ ~n_s:_ ~rng:_ =
        Schedule.explicit_looping participants
      in
      let r =
        Run.execute ~policy:lockstep ~task ~algo ~fd:Fdlib.Fd.trivial
          ~pattern:(Failure.failure_free 1)
          ~input ~seed:1 ()
      in
      check_bool
        (Printf.sprintf "%d-SA violated by lockstep at %d" k (k + 1))
        false r.Run.r_task_ok)
    [ 1; 2; 3 ]

let test_classifier_strong_renaming_level_one () =
  let task = Renaming.strong ~n:4 ~j:2 in
  let algo = Renaming_algos.fig4 () in
  check_bool "passes at 1" true
    (Classifier.solvable_at ~seeds:(seeds 15) ~task ~algo ~k:1 ());
  check_bool "breaks at 2" false
    (Classifier.solvable_at ~seeds:(seeds 40) ~task ~algo ~k:2 ())

let suite =
  [
    Alcotest.test_case "E10: fig4 (j,j+k-1)-renaming sweep" `Quick test_fig4_sweep;
    Alcotest.test_case "E10: solo name is 1" `Quick test_fig4_solo_gets_name_one;
    Alcotest.test_case "E10: sequential strong renaming" `Quick
      test_fig4_sequential_names_compact;
    Alcotest.test_case "E9: strong renaming witness" `Quick
      test_strong_renaming_witness_found;
    Alcotest.test_case "E9: consensus reduction witness" `Quick
      test_consensus_reduction_witness_found;
    Alcotest.test_case "E9: reduction sound 1-concurrently" `Quick
      test_reduction_sound_sequentially;
    Alcotest.test_case "E11: fig3 all live" `Quick test_fig3_all_live;
    Alcotest.test_case "E11: fig3 1-resilient" `Quick test_fig3_one_resilient;
    Alcotest.test_case "E11: fig3 starved min1" `Quick test_fig3_starved_min1;
    Alcotest.test_case "E12: hierarchy table consistent" `Slow test_classifier_table;
    Alcotest.test_case "E12: k-SA exact level" `Quick test_classifier_ksa_exact;
    Alcotest.test_case "E12: strong renaming level 1" `Quick
      test_classifier_strong_renaming_level_one;
  ]
