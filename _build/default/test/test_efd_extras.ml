open Simkit
open Tasklib
open Efd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let seeds n = List.init n (fun i -> i + 1)

(* --- Conventional (personified) solvability --- *)

let test_conventional_prop3_exhaustive () =
  (* the q1-else-q2 detector classically solves ({p1,p2},1)-agreement in
     every pattern of E_2 (n = 3): exhaust small crash-time combinations *)
  let env = Failure.e_t ~n_s:3 ~t:2 in
  let patterns = Failure.enumerate env ~horizon:100 ~times:[ 0; 40 ] in
  check_bool "enough patterns" true (List.length patterns > 10);
  List.iter
    (fun pattern ->
      let task = Set_agreement.make ~u:[ 0; 1 ] ~n:3 ~k:1 () in
      let rng = Random.State.make [| 3 |] in
      let input = Task.sample_input task rng in
      let r =
        Conventional.execute ~task ~algo:(Ksa.consensus ())
          ~fd:(Fdlib.Classic.q1_else_q2 ())
          ~pattern ~input ~seed:3 ()
      in
      if not (Conventional.ok r) then
        Alcotest.failf "personified run failed for %a: %a" Failure.pp_pattern
          pattern Conventional.pp_report r)
    patterns

let test_conventional_subset_of_fair () =
  (* Proposition 3: an EFD-solving algorithm also solves classically *)
  List.iter
    (fun seed ->
      let task = Set_agreement.make ~n:4 ~k:2 () in
      let rng = Random.State.make [| seed |] in
      let pattern =
        (Failure.e_t ~n_s:4 ~t:3).Failure.sample rng ~horizon:500
      in
      let input = Task.sample_input task rng in
      let r =
        Conventional.execute ~task ~algo:(Ksa.make ~k:2 ())
          ~fd:(Fdlib.Leader_fds.vector_omega_k ~max_stab:50 ~k:2 ())
          ~pattern ~input ~seed ()
      in
      check_bool "EFD solver works personified" true (Conventional.ok r))
    (seeds 10)

let test_conventional_obligations () =
  (* a participant whose partner crashes early is not obliged to decide *)
  let task = Set_agreement.make ~n:3 ~k:1 () in
  let pattern = Failure.pattern ~n_s:3 [ (0, 0) ] in
  let rng = Random.State.make [| 1 |] in
  let input = Task.sample_input task rng in
  let r =
    Conventional.execute ~task ~algo:(Ksa.consensus ())
      ~fd:(Fdlib.Leader_fds.omega ~max_stab:30 ())
      ~pattern ~input ~seed:1 ()
  in
  check_bool "obliged decided" true r.Conventional.p_obliged_decided;
  check_bool "p1 (dead partner) did not participate" true
    (r.Conventional.p_output.(0) = None)

(* --- Emulation (distributed FD reductions) --- *)

let patterns_for_emulation =
  [
    Failure.failure_free 4;
    Failure.pattern ~n_s:4 [ (0, 0) ];
    Failure.pattern ~n_s:4 [ (1, 100); (3, 30) ];
  ]

let test_emulation_identity () =
  let pattern = Failure.failure_free 3 in
  let result =
    Emulation.run ~budget:5_000
      ~fd:(Fdlib.Leader_fds.omega ~max_stab:30 ())
      ~pattern ~seed:1
      (Emulation.identity_of ~name:"omega")
  in
  check_bool "emitted outputs are an Omega history" true
    (Fdlib.Props.omega_ok pattern result.Emulation.em_outputs ~suffix:1_000)

let test_emulation_omega_from_diamond_s () =
  List.iter
    (fun pattern ->
      List.iter
        (fun seed ->
          let result =
            Emulation.run ~budget:30_000
              ~fd:(Fdlib.Classic.eventually_strong ~max_stab:60 ())
              ~pattern ~seed Emulation.omega_from_eventually_strong
          in
          if
            not
              (Fdlib.Props.omega_ok pattern result.Emulation.em_outputs
                 ~suffix:4_000)
          then
            Alcotest.failf "Omega<=<>S failed for %a seed %d"
              Failure.pp_pattern pattern seed)
        (seeds 4))
    patterns_for_emulation

let test_emulation_local_lift () =
  (* lift the local vector->anti conversion into a distributed reduction *)
  let k = 2 in
  let pattern = Failure.pattern ~n_s:4 [ (2, 50) ] in
  let red =
    Emulation.local ~name:"anti<=vector" (fun ~n_s out ->
        let entries = Array.to_list (Fdlib.Fd.decode_vector out) in
        let rec take n = function
          | [] -> []
          | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
        in
        Fdlib.Fd.encode_set
          (take (n_s - k) (Fdlib.Convert.complement ~n_s entries)))
  in
  let result =
    Emulation.run ~budget:10_000
      ~fd:(Fdlib.Leader_fds.vector_omega_k ~max_stab:40 ~k ())
      ~pattern ~seed:2 red
  in
  check_bool "emitted outputs are an anti-Omega-k history" true
    (Fdlib.Props.anti_omega_k_ok pattern result.Emulation.em_outputs ~k
       ~suffix:2_000)

let test_diamond_s_is_not_diamond_p () =
  (* sanity: our <>S wrongly suspects some correct process forever, so the
     eventually-perfect checker must reject it for some pattern/seed *)
  let rejected = ref false in
  List.iter
    (fun seed ->
      let pattern = Failure.failure_free 4 in
      let table =
        Simkit.History.tabulate
          (Fdlib.Fd.draw (Fdlib.Classic.eventually_strong ~max_stab:20 ()) pattern ~seed)
          ~n_s:4 ~horizon:400
      in
      if not (Fdlib.Props.eventually_perfect_ok pattern table ~suffix:100) then
        rejected := true)
    (seeds 6);
  check_bool "<>S is strictly weaker than <>P" true !rejected

(* --- Immediate snapshot --- *)

let run_is ~n ~seed =
  let mem = Memory.create () in
  let is = Bglib.Immediate_snapshot.create mem ~n in
  let views = Array.make n None in
  let c_code i () =
    let view = Bglib.Immediate_snapshot.participate is ~me:i (Value.int (100 + i)) in
    views.(i) <- Some view;
    Runtime.Op.decide Value.unit
  in
  let rt =
    Runtime.create
      {
        Runtime.n_c = n;
        n_s = 1;
        memory = mem;
        pattern = Failure.failure_free 1;
        history = History.trivial;
        record_trace = false;
      }
      ~c_code
      ~s_code:(fun _ () -> ())
  in
  let rng = Random.State.make [| seed |] in
  let outcome =
    Schedule.run rt (Schedule.shuffled_rounds ~n_c:n ~n_s:1 rng) ~budget:100_000
  in
  Runtime.destroy rt;
  ( outcome,
    List.filter_map
      (fun i -> Option.map (fun v -> (i, v)) views.(i))
      (List.init n Fun.id) )

let test_immediate_snapshot_properties () =
  List.iter
    (fun seed ->
      List.iter
        (fun n ->
          let outcome, views = run_is ~n ~seed in
          check_bool "all participated" true outcome.Schedule.all_decided;
          check_int "all views collected" n (List.length views);
          check_bool "IS properties" true
            (Bglib.Immediate_snapshot.views_valid ~n views))
        [ 2; 3; 5 ])
    (seeds 15)

let test_immediate_snapshot_solo () =
  let mem = Memory.create () in
  let is = Bglib.Immediate_snapshot.create mem ~n:4 in
  let view = ref [] in
  let c_code i () =
    if i = 2 then begin
      view := Bglib.Immediate_snapshot.participate is ~me:2 (Value.int 7);
      Runtime.Op.decide Value.unit
    end
  in
  let rt =
    Runtime.create
      {
        Runtime.n_c = 4;
        n_s = 1;
        memory = mem;
        pattern = Failure.failure_free 1;
        history = History.trivial;
        record_trace = false;
      }
      ~c_code
      ~s_code:(fun _ () -> ())
  in
  let _ =
    Schedule.run rt (Schedule.c_solo 2) ~budget:10_000
      ~stop_when:(fun rt -> Runtime.decision rt 2 <> None)
  in
  Runtime.destroy rt;
  (match !view with
  | [ (2, v) ] -> check_int "solo view is itself" 7 (Value.to_int v)
  | _ -> Alcotest.fail "solo view wrong")

let test_is_checker_rejects_bad_views () =
  (* containment violation *)
  let views =
    [ (0, [ (0, Value.int 0); (1, Value.int 1) ]); (1, [ (1, Value.int 1); (2, Value.int 2) ]);
      (2, [ (2, Value.int 2) ]) ]
  in
  check_bool "rejected" false (Bglib.Immediate_snapshot.views_valid ~n:3 views)

(* --- Leader election task --- *)

let test_leader_election_task () =
  let task = Leader_election.make ~n:4 in
  let input = Vectors.of_ints [ Some 1; None; Some 3; Some 4 ] in
  let out_ok = Vectors.of_ints [ Some 2; None; Some 2; Some 2 ] in
  check_bool "common participant leader ok" true
    (Task.satisfies task ~input ~output:out_ok);
  let out_split = Vectors.of_ints [ Some 0; None; Some 2; Some 2 ] in
  check_bool "split leaders rejected" false
    (Task.satisfies task ~input ~output:out_split);
  let out_nonpart = Vectors.of_ints [ Some 1; None; Some 1; Some 1 ] in
  check_bool "non-participant leader rejected" false
    (Task.satisfies task ~input ~output:out_nonpart);
  let closure = Task.choice_closure task ~input in
  check_bool "closure valid" true (Task.satisfies task ~input ~output:closure)

let test_leader_election_with_omega () =
  (* solvable in EFD with Omega via consensus on the first seen participant:
     use the generic 1-concurrent solver at level 1, and consensus adapters
     are covered elsewhere; here check classifier agreement *)
  let task = Leader_election.make ~n:4 in
  let algo = One_concurrent.make task in
  check_bool "level 1 passes" true
    (Classifier.solvable_at ~seeds:(seeds 15) ~task ~algo ~k:1 ())

let test_registry_includes_leader_election () =
  let entries = Registry.standard ~n:4 in
  match Registry.find entries "leader-election(n=4)" with
  | Some e ->
    check_bool "exact 1" true (e.Registry.expected = Registry.Exact 1);
    Alcotest.(check string) "fd" "Omega" e.Registry.weakest_fd
  | None -> Alcotest.fail "leader election missing from registry"

let suite =
  [
    Alcotest.test_case "conventional: Prop 3 exhaustive" `Quick
      test_conventional_prop3_exhaustive;
    Alcotest.test_case "conventional: EFD implies classical" `Quick
      test_conventional_subset_of_fair;
    Alcotest.test_case "conventional: obligations" `Quick test_conventional_obligations;
    Alcotest.test_case "emulation: identity" `Quick test_emulation_identity;
    Alcotest.test_case "emulation: Omega from <>S" `Quick
      test_emulation_omega_from_diamond_s;
    Alcotest.test_case "emulation: local lift" `Quick test_emulation_local_lift;
    Alcotest.test_case "<>S is not <>P" `Quick test_diamond_s_is_not_diamond_p;
    Alcotest.test_case "immediate snapshot properties" `Quick
      test_immediate_snapshot_properties;
    Alcotest.test_case "immediate snapshot solo" `Quick test_immediate_snapshot_solo;
    Alcotest.test_case "IS checker rejects bad views" `Quick
      test_is_checker_rejects_bad_views;
    Alcotest.test_case "leader election task" `Quick test_leader_election_task;
    Alcotest.test_case "leader election level 1" `Quick test_leader_election_with_omega;
    Alcotest.test_case "registry has leader election" `Quick
      test_registry_includes_leader_election;
  ]
