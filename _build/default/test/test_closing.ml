(* Closing-the-loop tests: end-to-end chains and edge cases that cut across
   modules. *)

open Simkit
open Tasklib
open Efd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let seeds n = List.init n (fun i -> i + 1)

(* --- consensus literally from anti-Omega-1 ---
   The paper's statement is "the weakest FD is ¬Ωk". For k = 1 the local
   conversion chain anti-Ω1 → Ω → vector-Ω1 is complete, so consensus can
   be solved from the anti-detector itself. *)

let test_consensus_from_anti_omega_1 () =
  let n = 4 in
  let fd =
    Fdlib.Convert.vector_of_omega ~k:1 ~n_s:n
      (Fdlib.Convert.omega_of_anti_1 ~n_s:n
         (Fdlib.Leader_fds.anti_omega_k ~max_stab:50 ~k:1 ()))
  in
  let task = Set_agreement.make ~n ~k:1 () in
  let s =
    Run.sweep ~task ~algo:(Ksa.consensus ()) ~fd
      ~env:(Failure.e_t ~n_s:n ~t:(n - 1))
      ~seeds:(seeds 10) ()
  in
  if s.Run.passed <> s.Run.total then Alcotest.failf "%a" Run.pp_sweep s

(* --- anti-Omega-k from vector via the distributed lift also solves --- *)

let test_ksa_from_anti_via_vector () =
  (* vector-Omega-k drawn, converted DOWN to anti-Omega-k and back up is
     not possible for k >= 2; but the harness can still validate that the
     anti-detector derived from the vector one is a legal k-SA certificate
     by checking its class property across environments *)
  let n = 5 and k = 2 in
  let fd = Fdlib.Convert.anti_of_vector ~k ~n_s:n (Fdlib.Leader_fds.vector_omega_k ~k ()) in
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let pattern = (Failure.e_t ~n_s:n ~t:(n - 1)).Failure.sample rng ~horizon:500 in
      let table = History.tabulate (Fdlib.Fd.draw fd pattern ~seed) ~n_s:n ~horizon:400 in
      check_bool "derived anti-Omega-k legal" true
        (Fdlib.Props.anti_omega_k_ok pattern table ~k ~suffix:100))
    (seeds 10)

(* --- witness replay (Adversary.explain) --- *)

let test_witness_replay_deterministic () =
  match Adversary.strong_renaming_witness ~seeds:(seeds 100) ~n:5 ~j:2 () with
  | None -> Alcotest.fail "no witness"
  | Some w ->
    let render () =
      Fmt.str "%t" (fun ppf ->
          Adversary.explain
            ~policy:(Run.k_concurrent_uniform_policy 2)
            ~task:(Renaming.strong ~n:5 ~j:2)
            ~algo:(Renaming_algos.fig4 ())
            ~fd:Fdlib.Fd.trivial w ppf)
    in
    let a = render () and b = render () in
    check_bool "replay is deterministic" true (a = b);
    check_bool "non-empty rendering" true (String.length a > 100)

(* --- memory growth inside process code --- *)

let test_memory_alloc_during_run () =
  let mem = Memory.create () in
  let c_code _ () =
    (* allocate lazily mid-run: growth is not observable until written *)
    let extra = Memory.alloc mem 100 in
    Runtime.Op.write extra.(99) (Value.int 5);
    Runtime.Op.decide (Runtime.Op.read extra.(99))
  in
  let rt =
    Runtime.create
      {
        Runtime.n_c = 1;
        n_s = 1;
        memory = mem;
        pattern = Failure.failure_free 1;
        history = History.trivial;
        record_trace = false;
      }
      ~c_code
      ~s_code:(fun _ () -> ())
  in
  for _ = 1 to 5 do
    Runtime.step rt (Pid.c 0)
  done;
  (match Runtime.decision rt 0 with
  | Some v -> check_int "allocated register works" 5 (Value.to_int v)
  | None -> Alcotest.fail "no decision");
  Runtime.destroy rt

(* --- schedule combinator edges --- *)

let test_seq_policy_boundaries () =
  let mem = Memory.create () in
  let rt =
    Runtime.create
      {
        Runtime.n_c = 2;
        n_s = 1;
        memory = mem;
        pattern = Failure.failure_free 1;
        history = History.trivial;
        record_trace = false;
      }
      ~c_code:(fun _ () ->
        let r = Memory.alloc1 mem () in
        let rec loop () =
          ignore (Runtime.Op.read r);
          loop ()
        in
        loop ())
      ~s_code:(fun _ () -> ())
  in
  let a = Schedule.explicit_looping [ Pid.c 0 ] in
  let b = Schedule.explicit_looping [ Pid.c 1 ] in
  let pol = Schedule.seq a ~steps:7 b in
  let _ = Schedule.run rt pol ~budget:20 in
  check_int "a ran exactly 7" 7 (Runtime.sched_count rt (Pid.c 0));
  check_int "b ran the rest" 13 (Runtime.sched_count rt (Pid.c 1));
  Runtime.destroy rt

let test_filtered_policy_gives_up () =
  (* a filter rejecting everything terminates the run *)
  let mem = Memory.create () in
  let rt =
    Runtime.create
      {
        Runtime.n_c = 1;
        n_s = 1;
        memory = mem;
        pattern = Failure.failure_free 1;
        history = History.trivial;
        record_trace = false;
      }
      ~c_code:(fun _ () -> ())
      ~s_code:(fun _ () -> ())
  in
  let pol = Schedule.filtered (fun _ _ -> false) (Schedule.round_robin ~n_c:1 ~n_s:1) in
  let outcome = Schedule.run rt pol ~budget:100 in
  check_int "no steps taken" 0 outcome.Schedule.total_steps;
  Runtime.destroy rt

(* --- trace of an S query --- *)

let test_trace_records_queries () =
  let mem = Memory.create () in
  let history = History.make ~name:"x" (fun _ t -> Value.int t) in
  let rt =
    Runtime.create
      {
        Runtime.n_c = 1;
        n_s = 1;
        memory = mem;
        pattern = Failure.failure_free 1;
        history;
        record_trace = true;
      }
      ~c_code:(fun _ () -> ())
      ~s_code:(fun _ () -> ignore (Runtime.Op.query ()))
  in
  Runtime.step rt (Pid.s 0);
  (match Trace.entries (Runtime.trace rt) with
  | [ { Trace.event = Trace.Query v; pid; time } ] ->
    check_int "query value is the step time" 0 (Value.to_int v);
    check_bool "pid" true (Pid.equal pid (Pid.s 0));
    check_int "time" 0 time
  | _ -> Alcotest.fail "expected exactly one query entry");
  Runtime.destroy rt

(* --- immediate snapshot as a task workload through One_concurrent --- *)

let test_extraction_outputs_have_right_size () =
  (* outputs of the extraction are always (n-k)-sets, from step 0 on *)
  let n = 3 and k = 1 in
  let pattern = Failure.failure_free n in
  let task = Set_agreement.make ~n ~k () in
  let algo = Ksa.make ~max_rounds:128 ~k () in
  let fd = Fdlib.Leader_fds.vector_omega_k_silent ~max_stab:25 ~k () in
  let rng = Random.State.make [| 2 |] in
  let inputs = Task.sample_input task rng in
  let result =
    Extraction.run ~outer_budget:3_000 ~sample_period:300 ~explore_budget:1_000
      ~max_samples:100 ~k ~fd ~algo ~inputs ~n_c:n ~pattern ~seed:2 ()
  in
  Array.iter
    (fun row ->
      Array.iter
        (fun v ->
          check_int "output size" (n - k) (List.length (Fdlib.Fd.decode_set v)))
        row)
    result.Extraction.x_outputs

(* --- conventional vs EFD report on the same run --- *)

let test_conventional_stricter_than_nothing () =
  (* with no crashes, conventional and EFD obligations coincide *)
  let n = 3 in
  let task = Set_agreement.make ~n ~k:1 () in
  let pattern = Failure.failure_free n in
  let rng = Random.State.make [| 5 |] in
  let input = Task.sample_input task rng in
  let fd = Fdlib.Leader_fds.omega ~max_stab:30 () in
  let r1 = Run.execute ~task ~algo:(Ksa.consensus ()) ~fd ~pattern ~input ~seed:5 () in
  let r2 =
    Conventional.execute ~task ~algo:(Ksa.consensus ()) ~fd ~pattern ~input
      ~seed:5 ()
  in
  check_bool "both ok" true (Run.ok r1 && Conventional.ok r2)

let suite =
  [
    Alcotest.test_case "consensus from anti-Omega-1" `Quick
      test_consensus_from_anti_omega_1;
    Alcotest.test_case "anti from vector legal across envs" `Quick
      test_ksa_from_anti_via_vector;
    Alcotest.test_case "witness replay deterministic" `Quick
      test_witness_replay_deterministic;
    Alcotest.test_case "memory alloc during run" `Quick test_memory_alloc_during_run;
    Alcotest.test_case "seq policy boundaries" `Quick test_seq_policy_boundaries;
    Alcotest.test_case "filtered policy gives up" `Quick test_filtered_policy_gives_up;
    Alcotest.test_case "trace records queries" `Quick test_trace_records_queries;
    Alcotest.test_case "extraction output sizes" `Quick
      test_extraction_outputs_have_right_size;
    Alcotest.test_case "conventional matches EFD sans crashes" `Quick
      test_conventional_stricter_than_nothing;
  ]
