open Simkit
open Tasklib
open Efd
open Bglib

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let seeds n = List.init n (fun i -> i + 1)

(* --- Machine_consensus in pure land --- *)

let test_mc_pure_commit () =
  (* one instance, three machines, same input; we play the serving side by
     injecting the answer into the env once a query appears *)
  let max_rounds = 8 in
  let mc =
    Machine_consensus.create ~k:1 ~n_machines:3 ~max_rounds ~input_offset:0
      ~n_inputs:3 ~answer_offset:3 ()
  in
  let input_of ~me ~env =
    let v = env.(me) in
    if Value.is_unit v then None else Some v
  in
  let machines = Machine_consensus.machines mc ~input_of in
  let env = Array.make (3 + max_rounds) Value.unit in
  Array.iteri (fun i _ -> if i < 3 then env.(i) <- Value.int 9) env;
  let sys = ref (Machine.boot machines) in
  for step = 0 to 200 do
    (* serving: answer every pending unanswered query *)
    List.iter
      (fun (j, r, est) ->
        let slot = Machine_consensus.answer_slot mc ~j ~r in
        if Value.is_unit env.(slot) then env.(slot) <- est)
      (Machine_consensus.pending_queries ~states:!sys.Machine.sys_states);
    sys := Machine.step_pure machines !sys ~env (step mod 3)
  done;
  let decisions = Machine.decisions machines !sys in
  Array.iter
    (fun d ->
      match d with
      | Some v -> check_int "decides common input" 9 (Value.to_int v)
      | None -> Alcotest.fail "machine undecided")
    decisions

let test_mc_pure_agreement_mixed_inputs () =
  (* mixed inputs, k=1: all machines must agree on one proposed value *)
  List.iter
    (fun seed ->
      let max_rounds = 16 in
      let mc =
        Machine_consensus.create ~k:1 ~n_machines:3 ~max_rounds ~input_offset:0
          ~n_inputs:3 ~answer_offset:3 ()
      in
      let input_of ~me ~env =
        let v = env.(me) in
        if Value.is_unit v then None else Some v
      in
      let machines = Machine_consensus.machines mc ~input_of in
      let env = Array.make (3 + max_rounds) Value.unit in
      for i = 0 to 2 do
        env.(i) <- Value.int (i + 10)
      done;
      let rng = Random.State.make [| seed |] in
      let sys = ref (Machine.boot machines) in
      for _ = 0 to 400 do
        List.iter
          (fun (j, r, est) ->
            let slot = Machine_consensus.answer_slot mc ~j ~r in
            if Value.is_unit env.(slot) then env.(slot) <- est)
          (Machine_consensus.pending_queries ~states:!sys.Machine.sys_states);
        sys := Machine.step_pure machines !sys ~env (Random.State.int rng 3)
      done;
      let decided =
        Array.to_list (Machine.decisions machines !sys) |> List.filter_map Fun.id
      in
      check_int "all decided" 3 (List.length decided);
      let distinct = List.sort_uniq Value.compare decided in
      check_int "agreement" 1 (List.length distinct);
      check_bool "validity" true
        (List.for_all
           (fun v ->
             let x = Value.to_int v in
             x >= 10 && x <= 12)
           decided))
    (seeds 8)

(* --- Machine-ksa run directly (E5 cross-validation) --- *)

let test_machine_ksa_direct () =
  List.iter
    (fun (n, k) ->
      let task = Set_agreement.make ~n ~k () in
      let algo = Machine_ksa.make ~k () in
      let fd = Fdlib.Leader_fds.vector_omega_k ~max_stab:50 ~k () in
      let s =
        Run.sweep ~budget:2_000_000 ~task ~algo ~fd
          ~env:(Failure.e_t ~n_s:n ~t:(n - 1))
          ~seeds:(seeds 6) ()
      in
      if s.Run.passed <> s.Run.total then
        Alcotest.failf "machine-ksa (n=%d,k=%d): %a" n k Run.pp_sweep s)
    [ (3, 1); (4, 2) ]

let test_machine_ksa_subset () =
  (* (U,k)-agreement among a fixed U of k+1 processes — the Theorem-7
     hypothesis object *)
  let n = 4 and k = 2 in
  let task = Set_agreement.make ~u:[ 0; 1; 2 ] ~n ~k () in
  let algo = Machine_ksa.make ~k () in
  let fd = Fdlib.Leader_fds.vector_omega_k ~max_stab:50 ~k () in
  let s =
    Run.sweep ~budget:2_000_000 ~task ~algo ~fd
      ~env:(Failure.e_t ~n_s:4 ~t:3)
      ~seeds:(seeds 6) ()
  in
  if s.Run.passed <> s.Run.total then Alcotest.failf "%a" Run.pp_sweep s

(* --- E6: the Theorem-7 composition --- *)

let test_puzzle () =
  List.iter
    (fun (n, k) ->
      let task = Set_agreement.make ~n ~k () in
      let algo = Puzzle.make ~k () in
      let fd = Puzzle.demo_fd ~k () in
      let s =
        Run.sweep ~budget:4_000_000 ~task ~algo ~fd
          ~env:(Failure.e_t ~n_s:n ~t:(n - 1))
          ~seeds:(seeds 4) ()
      in
      if s.Run.passed <> s.Run.total then
        Alcotest.failf "puzzle (n=%d,k=%d): %a" n k Run.pp_sweep s)
    [ (3, 1); (4, 2) ]

let test_puzzle_under_crashes () =
  let n = 4 and k = 2 in
  let task = Set_agreement.make ~n ~k () in
  let algo = Puzzle.make ~k () in
  let fd = Puzzle.demo_fd ~max_stab:40 ~k () in
  let pattern = Failure.pattern ~n_s:4 [ (0, 0); (3, 80) ] in
  let rng = Random.State.make [| 2 |] in
  List.iter
    (fun seed ->
      let input = Task.sample_input task rng in
      let r =
        Run.execute ~budget:4_000_000 ~task ~algo ~fd ~pattern ~input ~seed ()
      in
      check_bool "puzzle ok under crashes" true (Run.ok r))
    (seeds 3)

let test_puzzle_nonparticipating_u () =
  (* the point of Theorem 7: processes outside U decide even when parts of
     U never participate — the simulators drive U's codes themselves.
     Participants: p3 and p4 only (U = {p1..p_{k+1}} never runs). *)
  let n = 4 and k = 2 in
  let task = Set_agreement.make ~n ~k () in
  let algo = Puzzle.make ~k () in
  let fd = Puzzle.demo_fd ~k () in
  let input =
    Array.init n (fun i -> if i >= 2 then Some (Value.int (i mod (k + 1))) else None)
  in
  List.iter
    (fun seed ->
      let r =
        Run.execute ~budget:4_000_000 ~task ~algo ~fd
          ~pattern:(Failure.failure_free n)
          ~input ~seed ()
      in
      check_bool "outsiders decide without U" true (Run.ok r))
    (seeds 3)

let suite =
  [
    Alcotest.test_case "machine-consensus pure commit" `Quick test_mc_pure_commit;
    Alcotest.test_case "machine-consensus pure agreement" `Quick
      test_mc_pure_agreement_mixed_inputs;
    Alcotest.test_case "machine-ksa direct" `Slow test_machine_ksa_direct;
    Alcotest.test_case "machine-ksa on subset U" `Slow test_machine_ksa_subset;
    Alcotest.test_case "E6: puzzle composition" `Slow test_puzzle;
    Alcotest.test_case "E6: puzzle under crashes" `Slow test_puzzle_under_crashes;
    Alcotest.test_case "E6: outsiders decide without U" `Slow
      test_puzzle_nonparticipating_u;
  ]
