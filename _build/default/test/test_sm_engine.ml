open Bglib

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let const_env inputs ~step:_ = inputs
let inputs_of l = Array.of_list (List.map (fun x -> Value.int x) l)

(* Drive engines step by step, tracking the simulated run's concurrency:
   started (has marks) and undecided codes at each instant. *)
let drive ?(max_conc = ref 0) algo ~k ~n_codes ~env ~schedule =
  let machines = Sm_engine.engines ~k ~n_codes algo in
  let rec go sys step = function
    | [] -> sys
    | me :: rest ->
      let e = env ~step in
      let sys = Machine.step_pure machines sys ~env:e me in
      let states = sys.Machine.sys_states in
      let started = Sm_engine.simulated_started algo ~n_codes ~states ~env:e in
      let undecided =
        List.filter
          (fun c -> Sm_engine.code_decision algo ~n_codes ~states ~env:e c = None)
          started
      in
      max_conc := max !max_conc (List.length undecided);
      go sys (step + 1) rest
  in
  let sys = go (Machine.boot machines) 0 schedule in
  let final_env = env ~step:(List.length schedule) in
  ( sys,
    Array.init n_codes (fun c ->
        Sm_engine.code_decision algo ~n_codes
          ~states:sys.Machine.sys_states ~env:final_env c) )

let round_robin k steps = List.init steps (fun i -> i mod k)

let random_schedule ~k ~steps ~seed =
  let rng = Random.State.make [| seed |] in
  List.init steps (fun _ -> Random.State.int rng k)

let test_echo_single_engine () =
  let env = const_env (inputs_of [ 10; 20; 30 ]) in
  let _, decisions =
    drive Fi_algos.echo ~k:1 ~n_codes:3 ~env ~schedule:(round_robin 1 60)
  in
  Array.iteri
    (fun c d ->
      match d with
      | Some v -> check_int "echoes input" ((c + 1) * 10) (Value.to_int v)
      | None -> Alcotest.failf "code %d undecided" c)
    decisions

let test_adoption_two_engines () =
  List.iter
    (fun seed ->
      let inputs = inputs_of [ 0; 1; 2; 3 ] in
      let max_conc = ref 0 in
      let _, decisions =
        drive ~max_conc Fi_algos.adoption ~k:2 ~n_codes:4
          ~env:(const_env inputs)
          ~schedule:(random_schedule ~k:2 ~steps:400 ~seed)
      in
      let decided = Array.to_list decisions |> List.filter_map Fun.id in
      check_int "all decide" 4 (List.length decided);
      let distinct = List.sort_uniq Value.compare decided in
      check_bool "at most 2 distinct (2 engines)" true (List.length distinct <= 2);
      List.iter
        (fun v ->
          check_bool "validity" true
            (Array.exists (fun i -> Value.equal i v) inputs))
        decided;
      check_bool "simulated run 2-concurrent" true (!max_conc <= 2))
    [ 1; 2; 3; 4; 5; 6 ]

let test_adoption_k_bound () =
  (* k engines => at most k distinct decisions, for several k *)
  List.iter
    (fun k ->
      List.iter
        (fun seed ->
          let inputs = inputs_of [ 0; 1; 2; 3; 4 ] in
          let max_conc = ref 0 in
          let _, decisions =
            drive ~max_conc Fi_algos.adoption ~k ~n_codes:5
              ~env:(const_env inputs)
              ~schedule:(random_schedule ~k ~steps:600 ~seed)
          in
          let decided = Array.to_list decisions |> List.filter_map Fun.id in
          check_int "all decide" 5 (List.length decided);
          check_bool "<= k distinct" true
            (List.length (List.sort_uniq Value.compare decided) <= k);
          check_bool "<= k concurrent" true (!max_conc <= k))
        [ 1; 2; 3 ])
    [ 1; 2; 3 ]

let test_staged_arrivals () =
  (* inputs appear over time; late codes must still decide *)
  let env ~step =
    let inputs = Array.make 4 Value.unit in
    if step >= 0 then inputs.(2) <- Value.int 2;
    if step >= 30 then inputs.(0) <- Value.int 0;
    if step >= 60 then inputs.(3) <- Value.int 3;
    inputs
  in
  let _, decisions =
    drive Fi_algos.adoption ~k:2 ~n_codes:4 ~env
      ~schedule:(round_robin 2 300)
  in
  check_bool "non-participant stays undecided" true (decisions.(1) = None);
  List.iter
    (fun c ->
      check_bool (Printf.sprintf "code %d decided" c) true (decisions.(c) <> None))
    [ 0; 2; 3 ]

let test_fig4_fi_names () =
  (* j = 3 participants, k = 2 engines: distinct names within 1..j+k-1 = 4 *)
  List.iter
    (fun seed ->
      let inputs = Array.make 5 Value.unit in
      List.iter (fun c -> inputs.(c) <- Value.int (100 + c)) [ 0; 2; 4 ];
      let max_conc = ref 0 in
      let _, decisions =
        drive ~max_conc Fi_algos.fig4_renaming ~k:2 ~n_codes:5
          ~env:(const_env inputs)
          ~schedule:(random_schedule ~k:2 ~steps:800 ~seed)
      in
      let names =
        List.filter_map (fun c -> Option.map Value.to_int decisions.(c)) [ 0; 2; 4 ]
      in
      check_int "all three named" 3 (List.length names);
      check_int "names distinct" 3 (List.length (List.sort_uniq Int.compare names));
      check_bool "names within j+k-1" true (List.for_all (fun s -> s >= 1 && s <= 4) names);
      check_bool "2-concurrent" true (!max_conc <= 2))
    [ 1; 2; 3; 4; 5 ]

let test_stalled_engine_pins_one_code () =
  (* engine 1 takes a few steps then stalls forever; engine 0 must finish
     all codes except at most one pinned by engine 1's open doorway *)
  List.iter
    (fun stall_after ->
      let inputs = inputs_of [ 0; 1; 2; 3 ] in
      let schedule =
        List.init stall_after (fun _ -> 1) @ List.init 400 (fun _ -> 0)
      in
      let _, decisions =
        drive Fi_algos.adoption ~k:2 ~n_codes:4 ~env:(const_env inputs) ~schedule
      in
      let undecided =
        Array.to_list decisions |> List.filter (fun d -> d = None) |> List.length
      in
      check_bool
        (Printf.sprintf "stall@%d pins at most one code" stall_after)
        true (undecided <= 1))
    [ 0; 1; 2; 3; 4; 5; 7; 9 ]

let test_solo_engine_finishes_everything () =
  let inputs = inputs_of [ 5; 6; 7 ] in
  let _, decisions =
    drive Fi_algos.adoption ~k:3 ~n_codes:3 ~env:(const_env inputs)
      ~schedule:(List.init 200 (fun _ -> 2))
  in
  Array.iter
    (fun d -> check_bool "decided by solo engine" true (d <> None))
    decisions

let test_wsb_fi_engine () =
  (* the WSB full-information algorithm through the pure engines: exactly
     j participants, bits not all equal, 2-concurrent *)
  List.iter
    (fun seed ->
      let j = 3 in
      let inputs = Array.make 5 Value.unit in
      List.iter (fun c -> inputs.(c) <- Value.int (100 + c)) [ 0; 2; 3 ];
      let max_conc = ref 0 in
      let _, decisions =
        drive ~max_conc (Fi_algos.wsb ~j) ~k:2 ~n_codes:5
          ~env:(const_env inputs)
          ~schedule:(random_schedule ~k:2 ~steps:900 ~seed)
      in
      let bits =
        List.filter_map (fun c -> Option.map Value.to_int decisions.(c)) [ 0; 2; 3 ]
      in
      check_int "all decided" 3 (List.length bits);
      check_bool "bits legal" true (List.for_all (fun b -> b = 0 || b = 1) bits);
      check_bool "not all equal" true (List.mem 0 bits && List.mem 1 bits);
      check_bool "2-concurrent" true (!max_conc <= 2))
    [ 1; 2; 3; 4; 5 ]

let test_engine_determinism () =
  let run () =
    let inputs = inputs_of [ 0; 1; 2 ] in
    let _, decisions =
      drive Fi_algos.adoption ~k:2 ~n_codes:3 ~env:(const_env inputs)
        ~schedule:(random_schedule ~k:2 ~steps:200 ~seed:42)
    in
    Array.map (Option.map Value.to_string) decisions
  in
  check_bool "identical replay" true (run () = run ())

let suite =
  [
    Alcotest.test_case "echo, single engine" `Quick test_echo_single_engine;
    Alcotest.test_case "adoption, 2 engines" `Quick test_adoption_two_engines;
    Alcotest.test_case "adoption k bound" `Quick test_adoption_k_bound;
    Alcotest.test_case "staged arrivals" `Quick test_staged_arrivals;
    Alcotest.test_case "fig4 fi names" `Quick test_fig4_fi_names;
    Alcotest.test_case "wsb fi engine" `Quick test_wsb_fi_engine;
    Alcotest.test_case "stalled engine pins <= 1 code" `Quick
      test_stalled_engine_pins_one_code;
    Alcotest.test_case "solo engine finishes" `Quick test_solo_engine_finishes_everything;
    Alcotest.test_case "engine determinism" `Quick test_engine_determinism;
  ]
