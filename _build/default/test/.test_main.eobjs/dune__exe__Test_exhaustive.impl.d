test/test_exhaustive.ml: Alcotest Array Bglib Commit_adopt Efd Exhaustive Failure Fmt History List Memory Pid Runtime Safe_agreement Simkit Value
