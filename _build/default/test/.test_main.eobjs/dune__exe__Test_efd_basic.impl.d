test/test_efd_basic.ml: Alcotest Array Efd Failure Fdlib Fun Ksa List One_concurrent Random Registry Run Schedule Set_agreement Simkit Task Tasklib Trivial_nsa Value
