test/test_fdlib.ml: Alcotest Array Classic Convert Dag Failure Fd Fdlib History Leader_fds List Printf Props QCheck QCheck_alcotest Simkit Value
