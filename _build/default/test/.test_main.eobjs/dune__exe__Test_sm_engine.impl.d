test/test_sm_engine.ml: Alcotest Array Bglib Fi_algos Fun Int List Machine Option Printf Random Sm_engine Value
