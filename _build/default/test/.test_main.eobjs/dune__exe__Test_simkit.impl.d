test/test_simkit.ml: Alcotest Array Checker Failure History List Memory Option Pid Random Runtime Schedule Simkit Snapshot Trace Value
