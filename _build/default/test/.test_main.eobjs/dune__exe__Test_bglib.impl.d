test/test_bglib.ml: Alcotest Array Bg Bglib Commit_adopt Failure Fun History Int List Memory Option Pid Random Runtime Safe_agreement Schedule Simkit Value
