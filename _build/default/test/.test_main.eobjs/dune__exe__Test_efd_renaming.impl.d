test/test_efd_renaming.ml: Adversary Alcotest Array Classifier Efd Failure Fdlib Kconc_tasks List Pid Printf Random Renaming Renaming_algos Run Schedule Set_agreement Simkit Task Tasklib Value
