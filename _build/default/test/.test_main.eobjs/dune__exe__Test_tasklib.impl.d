test/test_tasklib.ml: Alcotest Array Int List Option QCheck QCheck_alcotest Random Registry Renaming Set_agreement Task Tasklib Trivial_tasks Value Vectors Wsb
