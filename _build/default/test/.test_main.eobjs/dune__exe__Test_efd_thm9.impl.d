test/test_efd_thm9.ml: Alcotest Array Bglib Efd Failure Fdlib Kcodes Kconcurrent Ksa List Memory Random Renaming Run Runtime Schedule Set_agreement Simkit Task Tasklib Trivial_tasks Value
