test/test_efd_puzzle.ml: Alcotest Array Bglib Efd Failure Fdlib Fun List Machine Machine_consensus Machine_ksa Puzzle Random Run Set_agreement Simkit Task Tasklib Value
