test/test_efd_extraction.ml: Alcotest Array Efd Extraction Failure Fdlib History Ksa List Printf Random Set_agreement Simkit Task Tasklib
