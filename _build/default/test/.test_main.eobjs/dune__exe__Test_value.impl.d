test/test_value.ml: Alcotest Array List QCheck QCheck_alcotest Stdlib Value
