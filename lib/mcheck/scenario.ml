open Simkit

type t = {
  sc_name : string;
  sc_n_c : int;
  sc_n_s : int;
  sc_pids : Pid.t list;
  sc_build : unit -> Runtime.t;
  sc_prop : Runtime.t -> bool;
  sc_symmetry : Pid.t list list;
}

let runtime ~n_c ~n_s mem c_code =
  Runtime.create
    {
      Runtime.n_c;
      n_s;
      memory = mem;
      pattern = Failure.failure_free (max 1 n_s);
      history = History.trivial;
      record_trace = false;
    }
    ~c_code
    ~s_code:(fun _ () -> ())

let safe_agreement ~n_s =
  let build () =
    let mem = Memory.create () in
    let sa = Bglib.Safe_agreement.create mem ~n:2 in
    let c_code i () =
      Bglib.Safe_agreement.propose sa ~me:i (Value.int (100 + i));
      let rec resolve () =
        match Bglib.Safe_agreement.try_resolve sa with
        | Some v -> Runtime.Op.decide v
        | None -> resolve ()
      in
      resolve ()
    in
    runtime ~n_c:2 ~n_s mem c_code
  in
  let prop rt =
    match (Runtime.decision rt 0, Runtime.decision rt 1) with
    | Some a, Some b -> Value.equal a b
    | _ -> true
  in
  {
    sc_name = "safe-agreement";
    sc_n_c = 2;
    sc_n_s = n_s;
    sc_pids = Pid.all ~n_c:2 ~n_s;
    sc_build = build;
    sc_prop = prop;
    sc_symmetry = [ Pid.all_s n_s ];
  }

(* Two writers race on one register and the (deliberately false) claim is
   that they always decide differently: every engine configuration finds
   the same lex-least violating schedule, which makes this the seeded
   counterexample scenario for differential and distributed tests. *)
let race_false ~n_s =
  let build () =
    let mem = Memory.create () in
    let r = Memory.alloc1 mem () in
    let c_code i () =
      Runtime.Op.write r (Value.int i);
      let v = Runtime.Op.read r in
      Runtime.Op.decide v
    in
    runtime ~n_c:2 ~n_s mem c_code
  in
  let prop rt =
    match (Runtime.decision rt 0, Runtime.decision rt 1) with
    | Some a, Some b -> not (Value.equal a b)
    | _ -> true
  in
  {
    sc_name = "race-false";
    sc_n_c = 2;
    sc_n_s = n_s;
    sc_pids = Pid.all ~n_c:2 ~n_s;
    sc_build = build;
    sc_prop = prop;
    sc_symmetry = [ Pid.all_s n_s ];
  }

let names = [ "safe-agreement"; "race-false" ]

(* what each named scenario is built to exhibit — campaign specs that omit
   [expect] derive it from here *)
let expected_safe = function
  | "safe-agreement" -> Some true
  | "race-false" -> Some false
  | _ -> None

let find name ~n_s =
  if n_s < 1 then Error "scenario needs n_s >= 1"
  else
    match name with
    | "safe-agreement" -> Ok (safe_agreement ~n_s)
    | "race-false" -> Ok (race_false ~n_s)
    | _ ->
      Error
        (Printf.sprintf "unknown scenario %S (%s)" name
           (String.concat "|" names))

let reduction sc ~reduce =
  if reduce then Some { Exhaustive.sleep = true; symmetry = sc.sc_symmetry }
  else None
