(** Named model-checking scenarios — the one place the CLI, the job
    server and the distributed coordinator get their runtimes from.

    A distributed run ships a scenario {e name} over the wire, not code:
    the coordinator and every worker call {!find} with the same name and
    parameters and must mean the same thing by it — same builder, same
    property, same pid order, same symmetry classes — or the frontier
    merge identity ([split + run_subtree + merge = run]) silently breaks.
    Keeping the builders here (rather than duplicated in [bin/wfa] and
    [lib/svc]) is what makes that agreement a fact of the build instead
    of a convention. *)

type t = {
  sc_name : string;
  sc_n_c : int;  (** client processes *)
  sc_n_s : int;  (** server (helper) processes *)
  sc_pids : Simkit.Pid.t list;
      (** the schedule alphabet, in canonical (lex) order *)
  sc_build : unit -> Simkit.Runtime.t;  (** fresh runtime per exploration *)
  sc_prop : Simkit.Runtime.t -> bool;
  sc_symmetry : Simkit.Pid.t list list;
      (** symmetry classes handed to the engine under [--reduce] *)
}

val safe_agreement : n_s:int -> t
(** Two clients over Borowsky–Gafni safe agreement with [n_s] idle
    helper processes: agreement must hold on every schedule. The
    default scenario of [wfa modelcheck] and the depth-8 CI anchor. *)

val race_false : n_s:int -> t
(** Two clients racing on one register with the deliberately false
    property that their decisions always differ — the seeded-violation
    scenario: every engine and worker count must report the identical
    lex-least counterexample. *)

val names : string list
(** The names {!find} accepts, in display order. *)

val expected_safe : string -> bool option
(** The verdict a named scenario is built to exhibit — [Some true] when
    its property holds on every schedule, [Some false] for the seeded
    violation; [None] for a name {!find} would reject. Campaign specs
    that omit [expect] derive it from this. *)

val find : string -> n_s:int -> (t, string) result
(** Resolve a wire/CLI scenario name. [Error] names the unknown input
    and lists the valid names. *)

val reduction : t -> reduce:bool -> Simkit.Exhaustive.reduction option
(** [Some {sleep = true; symmetry = sc.sc_symmetry}] when [reduce],
    else [None] — the exact reduction the CLI has always used, factored
    so coordinator and workers cannot disagree on it. *)
