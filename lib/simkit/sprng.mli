(** Splittable pseudo-random streams (SplitMix64).

    The fuzzer's seed-space is a flat array of trial indices; each trial
    must see the same random draws no matter which domain executes it, or
    results would depend on the core count. A splittable PRNG gives exactly
    that: [stream root i] derives the [i]-th child stream as a pure
    function of the root seed and [i] — two domains deriving the same
    [(root, i)] get identical streams, and distinct [i]s get statistically
    independent ones (SplitMix64's golden-gamma construction, Steele,
    Lea & Flood, OOPSLA 2014).

    Streams are cheap (two int64s) and mutable: [next] advances the
    stream it is called on. Derivation ([split], [stream]) does not
    advance the parent. *)

type t

val make : int -> t
(** Root stream from an integer seed. Equal seeds give equal streams. *)

val split : t -> t
(** A child stream; advances the parent by one draw. *)

val stream : t -> int -> t
(** [stream t i]: the [i]-th child of [t], derived without advancing [t].
    Pure in ([t]'s current state, [i]): repeated calls with the same [i]
    return streams that generate identical draws. *)

val next_int64 : t -> int64
(** Next 64-bit draw. *)

val next : t -> int
(** Next non-negative 62-bit draw (usable as a [Run.execute] seed). *)

val int : t -> int -> int
(** [int t bound]: next draw in [0, bound)]. [bound] must be positive. *)

val to_random_state : t -> Random.State.t
(** A stdlib [Random.State.t] seeded from the next two draws — the bridge
    to samplers ({!Failure.env}, [Task.sample_input]) that take
    [Random.State.t]. Advances the stream by two draws. *)
