(** The EFD runtime: a deterministic cooperative scheduler for one run.

    A run executes the automata of [n_c] C-processes and [n_s] S-processes
    against a shared {!Memory.t}, a {!Failure.pattern} and a failure-detector
    {!History.t}. Process code is ordinary OCaml written in direct style;
    every shared-memory access, failure-detector query and decision is an
    OCaml effect and costs exactly one step. The schedule (who steps next) is
    driven externally via {!step}, so runs are fully deterministic given
    (codes, schedule, history, inputs) — a property the paper's Figure-1
    local simulations rely on.

    Semantics, following §2.1 of the paper:
    - time is the global step index, advanced by every {!step} call;
    - scheduling an S-process [q_i] at a time [τ] with [q_i ∈ F(τ)] is a
      null step (crashed processes take no steps);
    - a C-process that has decided takes only null steps afterwards;
    - only S-processes may query the failure detector;
    - runtimes are first-class and reentrant: process code of an outer run
      may construct and drive an inner runtime as local computation. *)

type t

exception Halted
(** Raised into a process continuation to terminate it (after a decision, or
    at teardown). Process code must not catch it. *)

exception Forbidden_query of Pid.t
(** A C-process attempted a failure-detector query. *)

(** Operations available inside process code. Each call suspends the process
    until its next scheduled step, at which point the operation takes effect
    atomically. *)
module Op : sig
  val read : Memory.reg -> Value.t
  val write : Memory.reg -> Value.t -> unit

  val snapshot : Memory.reg array -> Value.t array
  (** Atomic multi-register read, provided as a primitive (one step).
      Implementable wait-free from registers — see {!Snapshot} for the
      honest construction; algorithms may use either. *)

  val query : unit -> Value.t
  (** Failure-detector query; S-processes only. *)

  val decide : Value.t -> unit
  (** Record the decision and terminate: all later steps are null. The
      decision becomes visible when the step executes. *)

  val yield : unit -> unit
  (** A null step (state transition without memory access). *)
end

type status =
  | Fresh  (** has not taken a step yet *)
  | Runnable  (** mid-execution, has a pending operation *)
  | Done  (** returned or decided *)

type config = {
  n_c : int;
  n_s : int;
  memory : Memory.t;
  pattern : Failure.pattern;
  history : History.t;
  record_trace : bool;
}

(** {1 Instrumentation}

    An optional observation hook, threaded through every run. With no hook
    installed the only cost is one [option] match per step — the bench
    suite guards that the disabled path stays at pre-instrumentation
    throughput. Hooks must not step the runtime reentrantly. *)

type obs = {
  on_sched : Pid.t -> time:int -> unit;
      (** every {!step} call, before it executes (null steps included) *)
  on_event : Pid.t -> time:int -> Trace.event -> unit;
      (** every executed operation, decision, and null step — exactly the
          occurrences a recorded {!Trace} holds, in the same encoding as
          {!Trace.event_to_obs}, whether or not tracing is on *)
}

val obs_events : Obs.Sink.t -> obs
(** Emit each executed operation as a structured event. On the same run,
    the stream equals [Trace.to_events (trace rt)] of a recorded trace. *)

val obs_counters : Obs.Metrics.registry -> obs
(** Count scheds and executed operations by kind into the registry
    (counters [runtime.scheds], [runtime.reads], [runtime.writes],
    [runtime.snapshots], [runtime.queries], [runtime.decides],
    [runtime.nulls]). *)

val obs_merge : obs list -> obs
(** Fan one hook slot out to several hooks, in order. *)

val create :
  ?obs:obs ->
  config ->
  c_code:(int -> unit -> unit) ->
  s_code:(int -> unit -> unit) ->
  t
(** [create cfg ~c_code ~s_code]: [c_code i] (resp. [s_code i]) is the
    automaton of [p_i] (resp. [q_i]); it is not started until the process is
    first scheduled. [?obs] installs an instrumentation hook for this run;
    omitted, instrumentation is disabled at zero cost. *)

val step : t -> Pid.t -> unit
(** Execute one step of the given process (null if crashed / done) and
    advance time. *)

(** {1 Step footprints}

    The shared-state face of a process's {e next} step, knowable without
    executing it: a parked operation names its registers up front, and a
    process's own pending operation cannot be changed by other processes'
    steps. This is what makes the relation below stable enough for the
    exhaustive checker's partial-order reduction ({!Exhaustive}). *)

type footprint =
  | F_local
      (** touches no shared state and is time-insensitive: a null step
          (done, returned, or crashed-forever), [yield], or [decide]
          (which writes only process-local state) *)
  | F_read of Memory.reg array  (** [read] (one register) or [snapshot] *)
  | F_write of Memory.reg
  | F_timedep
      (** effect depends on the global time of execution: an FD [query]
          (the history is sampled at the step's time), or any step of a
          live S-process that crashes later in the pattern *)

val footprint : t -> Pid.t -> footprint
(** Footprint of the process's next step. Forces a [Fresh] process to its
    first suspension point (the behaviour-neutral prefix of its first
    {!step}: pure local computation only, no operation executes and
    {!participating}/{!steps_taken} are unchanged — but {!status} moves off
    [Fresh], so callers hashing states with {!digest} must call it at
    consistent points; see {!peek}). *)

val peek : t -> Pid.t -> unit
(** Force a [Fresh] process to its first suspension point without executing
    anything (no-op otherwise) — what {!footprint} does on the way to the
    parked operation, exposed so a checker replaying a prefix can restore
    the same peeked-everywhere state shape before comparing digests. *)

val commute : footprint -> footprint -> bool
(** Do steps with these footprints commute? [F_local] commutes with
    everything except [F_timedep]; reads commute with reads; register
    operations commute iff their footprints are disjoint; [F_timedep]
    commutes with nothing (every step advances the clock, so reordering
    moves a time-dependent effect). Sound, not complete: two writes of the
    same value are declared dependent. *)

val independent : t -> Pid.t -> Pid.t -> bool
(** [independent t p q]: are the next steps of two {e distinct} processes
    independent at the current state — i.e. do they {!commute}, so both
    execution orders reach {!digest}-equal states? [false] if [p = q]. *)

val destroy : t -> unit
(** Discontinue all parked process continuations (releases fibers). The
    runtime remains observable but no longer steppable. *)

(** {1 Observers} *)

val time : t -> int
val n_c : t -> int
val n_s : t -> int
val memory : t -> Memory.t
val pattern : t -> Failure.pattern
val status : t -> Pid.t -> status
val decision : t -> int -> Value.t option
(** Decision of C-process [p_i], if any. *)

val decisions : t -> Value.t option array
val all_c_done : t -> bool
val participating : t -> int -> bool
(** Has C-process [p_i] executed at least one operation? Null steps (a
    scheduled process whose code performs no operation) do not count. *)

val undecided_participants : t -> int list
(** C-process indices that participate but have not decided. *)

val steps_taken : t -> Pid.t -> int
(** Number of non-null steps. *)

val sched_count : t -> Pid.t -> int
(** Number of times the process was scheduled (incl. null steps). *)

val first_step_time : t -> int -> int option
val decide_time : t -> int -> int option
val trace : t -> Trace.t

val steps_total : t -> int
(** Total number of {!step} calls on this runtime (incl. null steps) — the
    work counter used by the exhaustive checker's statistics. *)

val digest : t -> string
(** Cheap state fingerprint: a digest of (time, memory contents, and per
    process its status, counters, decision and the running hash of its
    executed operations with their results). Process code is deterministic,
    so two runtimes of the same configuration with equal digests behave
    identically under any common schedule suffix (modulo hash collisions,
    which are negligible). Absolute event times ({!first_step_time},
    {!decide_time}) and the trace are {e not} captured: runs that converge to
    the same state through different interleavings digest equal. *)
