(** Exhaustive schedule enumeration — model checking in miniature.

    For small systems and short horizons the sampled adversaries of
    {!Schedule} can be replaced by full enumeration: every schedule over the
    given processes up to a depth is executed (runs are deterministic, so the
    enumeration is exact) and a property is checked at every prefix or at
    full depth. A returned counterexample is a concrete schedule, directly
    replayable with {!replay_ok}.

    The engine is {e incremental}: one live runtime is kept per DFS path, so
    descending costs one step per node; the runtime is rebuilt and the prefix
    replayed only when the search moves to a sibling branch (effect
    continuations cannot be cloned). A state-fingerprint memo
    ({!Runtime.digest}) prunes converging interleavings while keeping the
    reported schedule count exact, and the top-level branching factor can be
    sharded across OCaml domains. {!stats} makes the saved work observable.

    Cost before pruning is |pids|^depth schedules: keep |pids| ≤ 4 and
    depth ≤ 12 or so. Used to verify the agreement primitives (safe
    agreement, commit–adopt, adoption set-agreement) against {e all}
    interleavings rather than sampled ones.

    Soundness requirements on the inputs (all hold for the usual
    fresh-memory/fresh-algorithm builders):
    - [build] must be deterministic and return independent runtimes;
    - with the memo enabled, [prop] must be a function of the reached state
      as captured by {!Runtime.digest} (memory, statuses, decisions, per
      process observations) — not of absolute event times or the trace;
    - with [domains > 1], [build] and [prop] must not share mutable state
      across calls (each domain builds and steps its own runtimes). *)

type verdict =
  | Ok of int  (** number of complete schedules accounted for *)
  | Counterexample of Pid.t list

type mode =
  | Every  (** the property must hold after every step of every schedule *)
  | Final  (** the property is only required at full depth *)

type stats = {
  nodes : int;  (** DFS nodes visited (memo-skipped subtrees excluded) *)
  steps_executed : int;  (** total {!Runtime.step} calls, replays included *)
  replays : int;  (** rebuild-and-replay events (backtracks / baseline runs) *)
  runtimes_built : int;  (** calls to [build] *)
  memo_hits : int;  (** subtrees skipped via the state-fingerprint memo *)
  sleep_pruned : int;
      (** subtrees skipped (and credited) by sleep-set partial-order
          reduction; [0] unless {!run} is given [~reduce] with [sleep] *)
  orbits_collapsed : int;
      (** children skipped as non-canonical renamings of an explored class
          member; [0] unless [~reduce] declares symmetry classes *)
  wall_s : float;  (** elapsed seconds ({!Obs.Clock}, monotonic) for the check *)
}

val pp_stats : Format.formatter -> stats -> unit

val stats_json : stats -> Obs.Json.t
(** The record as a JSON object, field names as above. *)

val stats_of_json : Obs.Json.t -> (stats, string) result
(** Inverse of {!stats_json} — how a coordinator reads a remote worker's
    stats back off the wire. *)

val zero_stats : stats
(** All-zero counters, [0.] wall time: the identity of {!merge_stats}. *)

val merge_stats : stats -> stats -> stats
(** Fieldwise sum ([wall_s] included — merged wall time is total CPU-side
    work, not elapsed time). Associative and commutative with identity
    {!zero_stats} (integer fields exactly; [wall_s] up to float
    associativity), so partial results from subtree workers can be folded
    in any order. *)

val merge_verdicts : pids:Pid.t list -> verdict -> verdict -> verdict
(** The verdict monoid for partitioned runs: [Ok m] + [Ok n] = [Ok (m + n)]
    (credited counts are exact, so they add); any counterexample beats [Ok];
    of two counterexamples the lexicographically least survives (schedule
    order = position order in [pids]; a strict prefix orders first).
    Associative and commutative, and — because {!split} emits jobs in DFS
    (= lex) order and each job reports its own lex-least violation — folding
    over any permutation of a frontier's results reproduces the sequential
    engine's counterexample. *)

val record_stats : ?labels:(string * string) list -> Obs.Metrics.registry -> stats -> unit
(** Export into a metric registry: counters [exhaustive.nodes],
    [exhaustive.steps_executed], [exhaustive.replays],
    [exhaustive.runtimes_built], [exhaustive.memo_hits] (incremented, so
    repeated checks accumulate) and gauge [exhaustive.wall_s], all under
    [?labels]. *)

(** {1 Sound state-space reduction}

    Optional pruning layers for {!run}, composing with the memo and with
    [?domains] sharding. Both are {e credited}: a pruned subtree's complete
    schedules are added to the count, so verdicts — including exact counts
    and, in the sequential engine, the identity of the first counterexample
    (DFS order is lexicographic, and the lex-least violating schedule is
    never pruned) — match the unreduced engines. *)

type reduction = {
  sleep : bool;
      (** sleep-set partial-order reduction over the step-footprint
          independence relation ({!Runtime.footprint}): of two adjacent
          independent steps, orders that differ only by commuting them are
          explored once *)
  symmetry : Pid.t list list;
      (** disjoint classes of interchangeable pids: same code, same input,
          and crash/FD behaviour invariant under renaming within the class
          (e.g. idle S-processes under a symmetric failure pattern and
          {!History.trivial}). One schedule per renaming orbit is explored
          and credited with the orbit size. [prop] must be invariant under
          renaming within each class. *)
}

val no_reduction : reduction
(** [{ sleep = false; symmetry = [] }] — [run ~reduce:no_reduction] takes
    the exact unreduced code path. *)

exception Cancelled
(** Raised by {!run} when its [?cancel] hook fired: the search was
    abandoned mid-enumeration, so {e no} verdict — not even a partial
    count — is reported. Re-running the same configuration without
    [?cancel] reproduces the full deterministic verdict. *)

val run :
  ?domains:int ->
  ?memo:bool ->
  ?mode:mode ->
  ?reduce:reduction ->
  ?cancel:(unit -> bool) ->
  build:(unit -> Runtime.t) ->
  pids:Pid.t list ->
  depth:int ->
  prop:(Runtime.t -> bool) ->
  unit ->
  verdict * stats
(** The incremental engine. [?cancel] (default never) is a cooperative
    cancellation hook polled once per DFS child, in every worker: the
    moment it returns [true] the whole run raises {!Cancelled} (after
    stopping all domains) instead of returning — the hook the service
    layer uses for per-request deadlines. [?domains] (default [1]) shards the top-level
    branching factor across that many OCaml domains (capped at [|pids|]),
    joined first-counterexample-wins: with several workers reporting, the
    counterexample whose first step comes earliest in [pids] is returned, but
    which counterexample is found within one worker's shard may differ from
    the sequential engine's (all returned counterexamples are genuine).
    [?memo] (default [true]) enables the state-fingerprint memo. [?reduce]
    (default off) enables the reduction layers above; reduction forces every
    process to its first suspension point eagerly ({!Runtime.peek}), so
    [prop] must additionally not distinguish a [Fresh] process from a peeked
    one (true of properties over memory, decisions and participation).
    Verdicts (including exact schedule counts) are identical to
    {!run_replay} under the soundness requirements above. *)

(** {1 Frontier splitting — distributing the search}

    {!split} explores only to a shallow [split_depth] and emits every
    frontier node as a self-contained {!subtree} job carrying the schedule
    prefix plus the exact reduction context (sleep mask, orbit-multiplier
    product, per-class used counts) the whole-tree engine holds when it
    enters that node. {!run_subtree} — typically on another process, via the
    [subtree] service verb — re-enters the engine from that context. Folding
    {!merge_verdicts} and {!merge_stats} over the job results (in any order)
    plus the splitter's own [fr_pruned] credit reproduces {!run}'s verdict
    and exact credited schedule count; memo tables are private per job, so
    only [memo_hits]/[nodes]-style effort counters may differ. *)

type subtree = {
  sj_id : int;
      (** frontier position in DFS (= lex) order — the dedup key for
          first-result-wins re-dispatch *)
  sj_prefix : Pid.t list;  (** the schedule prefix, length [split_depth] *)
  sj_sleep : Pid.t list;
      (** pids asleep at the frontier node ([[]] unless sleep reduction) *)
  sj_factor : int;  (** orbit-multiplier product along the prefix *)
  sj_used : int list;
      (** per-symmetry-class used-member counts at the frontier node, in
          class declaration order ([[]] when no classes) *)
}

type split_result = {
  fr_jobs : subtree list;  (** in DFS order; [sj_id] = position *)
  fr_cex : Pid.t list option;
      (** [Every]-mode violation at depth <= [split_depth]: the split stopped
          there, and only already-emitted (lex-smaller) jobs can beat it *)
  fr_pruned : int;
      (** complete schedules credited above the frontier (sleep-pruned
          subtrees that never became jobs) — the merge fold's start count *)
  fr_stats : stats;
}

val split :
  ?mode:mode ->
  ?reduce:reduction ->
  build:(unit -> Runtime.t) ->
  pids:Pid.t list ->
  depth:int ->
  split_depth:int ->
  prop:(Runtime.t -> bool) ->
  unit ->
  split_result
(** Explore to [split_depth] (raises [Invalid_argument] unless
    [1 <= split_depth < depth]) and emit the frontier. In [Every] mode the
    property is checked on every prefix up to the frontier — {!run_subtree}
    accordingly replays a job's prefix without re-checking it. [~mode],
    [~reduce] and the scenario must match between [split] and the
    [run_subtree] calls that consume its jobs. *)

val run_subtree :
  ?memo:bool ->
  ?mode:mode ->
  ?reduce:reduction ->
  ?cancel:(unit -> bool) ->
  build:(unit -> Runtime.t) ->
  pids:Pid.t list ->
  depth:int ->
  prop:(Runtime.t -> bool) ->
  subtree ->
  verdict * stats
(** Run one frontier job to the full [depth] (the same [depth] given to
    {!split}): the prefix is replayed check-free, then the engine expands
    the subtree under the job's seeded context with a private memo. [Ok n]
    is the subtree's exact credited schedule count; a counterexample is the
    full schedule (prefix included) and is the lex-least within the subtree.
    [?cancel] as in {!run}. Raises [Invalid_argument] on a job inconsistent
    with [~pids]/[~depth]/[~reduce]. *)

val schedule_json : Pid.t list -> Obs.Json.t
val schedule_of_json : Obs.Json.t -> (Pid.t list, string) result
(** A schedule (or counterexample) on the wire: a list of
    {!Pid.to_string} names ([p1], [q2], ...). *)

val subtree_json : subtree -> Obs.Json.t
val subtree_of_json : Obs.Json.t -> (subtree, string) result
(** Wire format for the [subtree] service verb: pids as {!Pid.to_string}
    names ([p1], [q2], ...). [subtree_of_json] validates shape only; full
    consistency against the scenario is checked by {!run_subtree}. *)

val run_replay :
  ?mode:mode ->
  build:(unit -> Runtime.t) ->
  pids:Pid.t list ->
  depth:int ->
  prop:(Runtime.t -> bool) ->
  unit ->
  verdict * stats
(** The replay-from-scratch baseline (the pre-incremental engine): every
    visited prefix is rebuilt via [build] and re-executed in full. Kept as a
    differential-testing oracle and benchmark yardstick. *)

val replay_ok :
  ?mode:mode ->
  build:(unit -> Runtime.t) ->
  prop:(Runtime.t -> bool) ->
  Pid.t list ->
  bool
(** Replay one concrete schedule on a fresh runtime and report whether the
    property survives it ([Every]: checked after each step; [Final]: checked
    after the last). [false] for a schedule returned as [Counterexample]. *)

val check :
  build:(unit -> Runtime.t) ->
  pids:Pid.t list ->
  depth:int ->
  prop:(Runtime.t -> bool) ->
  verdict
(** [run] with defaults, [Every] mode, verdict only. *)

val check_final :
  build:(unit -> Runtime.t) ->
  pids:Pid.t list ->
  depth:int ->
  prop:(Runtime.t -> bool) ->
  verdict
(** [run] with defaults, [Final] mode, verdict only. *)
