exception Halted
exception Forbidden_query of Pid.t

type _ Effect.t +=
  | E_read : Memory.reg -> Value.t Effect.t
  | E_write : Memory.reg * Value.t -> unit Effect.t
  | E_snapshot : Memory.reg array -> Value.t array Effect.t
  | E_query : Value.t Effect.t
  | E_decide : Value.t -> unit Effect.t
  | E_yield : unit Effect.t

module Op = struct
  let read r = Effect.perform (E_read r)
  let write r v = Effect.perform (E_write (r, v))
  let snapshot rs = Effect.perform (E_snapshot rs)
  let query () = Effect.perform E_query
  let decide v = Effect.perform (E_decide v)
  let yield () = Effect.perform E_yield
end

type pending =
  | K_read : Memory.reg * (Value.t, unit) Effect.Deep.continuation -> pending
  | K_write : Memory.reg * Value.t * (unit, unit) Effect.Deep.continuation -> pending
  | K_snapshot :
      Memory.reg array * (Value.t array, unit) Effect.Deep.continuation
      -> pending
  | K_query : (Value.t, unit) Effect.Deep.continuation -> pending
  | K_decide : Value.t * (unit, unit) Effect.Deep.continuation -> pending
  | K_yield : (unit, unit) Effect.Deep.continuation -> pending

type status = Fresh | Runnable | Done

type pstate = {
  pid : Pid.t;
  code : unit -> unit;
  mutable status : status;
  mutable pending : pending option;
  mutable decided : Value.t option;
  mutable steps : int;
  mutable scheds : int;
  mutable first_step : int option;
  mutable decide_at : int option;
  mutable obs_hash : int;
}

type config = {
  n_c : int;
  n_s : int;
  memory : Memory.t;
  pattern : Failure.pattern;
  history : History.t;
  record_trace : bool;
}

type obs = {
  on_sched : Pid.t -> time:int -> unit;
  on_event : Pid.t -> time:int -> Trace.event -> unit;
}

let obs_merge hooks =
  {
    on_sched = (fun pid ~time -> List.iter (fun o -> o.on_sched pid ~time) hooks);
    on_event =
      (fun pid ~time ev -> List.iter (fun o -> o.on_event pid ~time ev) hooks);
  }

let obs_events sink =
  {
    on_sched = (fun _ ~time:_ -> ());
    on_event =
      (fun pid ~time ev -> Obs.Sink.emit sink (Trace.event_to_obs ~time ~pid ev));
  }

let obs_counters reg =
  (* counters are looked up once here, not per event *)
  let c name = Obs.Metrics.counter reg name in
  let scheds = c "runtime.scheds"
  and reads = c "runtime.reads"
  and writes = c "runtime.writes"
  and snapshots = c "runtime.snapshots"
  and queries = c "runtime.queries"
  and decides = c "runtime.decides"
  and nulls = c "runtime.nulls" in
  {
    on_sched = (fun _ ~time:_ -> Obs.Metrics.incr scheds);
    on_event =
      (fun _ ~time:_ ev ->
        Obs.Metrics.incr
          (match ev with
          | Trace.Read _ -> reads
          | Trace.Write _ -> writes
          | Trace.Snapshot _ -> snapshots
          | Trace.Query _ -> queries
          | Trace.Decide _ -> decides
          | Trace.Null -> nulls));
  }

type t = {
  cfg : config;
  c_procs : pstate array;
  s_procs : pstate array;
  mutable now : int;
  mutable steps_total : int;
  tr : Trace.t;
  obs : obs option;
}

let create ?obs cfg ~c_code ~s_code =
  if cfg.pattern.Failure.n_s <> cfg.n_s then
    invalid_arg "Runtime.create: pattern size mismatch";
  let mk pid code =
    {
      pid;
      code;
      status = Fresh;
      pending = None;
      decided = None;
      steps = 0;
      scheds = 0;
      first_step = None;
      decide_at = None;
      obs_hash = 0x811c9dc5;
    }
  in
  {
    cfg;
    c_procs = Array.init cfg.n_c (fun i -> mk (Pid.c i) (c_code i));
    s_procs = Array.init cfg.n_s (fun i -> mk (Pid.s i) (s_code i));
    now = 0;
    steps_total = 0;
    tr = Trace.create ~enabled:cfg.record_trace;
    obs;
  }

let proc t = function
  | Pid.C i ->
    if i < 0 || i >= t.cfg.n_c then invalid_arg "Runtime: C index";
    t.c_procs.(i)
  | Pid.S i ->
    if i < 0 || i >= t.cfg.n_s then invalid_arg "Runtime: S index";
    t.s_procs.(i)

(* Run [f] under the process handler: it executes until the code performs its
   next effect (parked in [p.pending]), returns, or halts. *)
let run_under (p : pstate) (f : unit -> unit) : unit =
  let finish () =
    p.status <- Done;
    p.pending <- None
  in
  Effect.Deep.match_with f ()
    {
      retc = (fun () -> finish ());
      exnc =
        (fun e ->
          match e with
          | Halted -> finish ()
          | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_read r ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                p.pending <- Some (K_read (r, k)))
          | E_write (r, v) ->
            Some (fun k -> p.pending <- Some (K_write (r, v, k)))
          | E_snapshot rs ->
            Some (fun k -> p.pending <- Some (K_snapshot (rs, k)))
          | E_query -> Some (fun k -> p.pending <- Some (K_query k))
          | E_decide v -> Some (fun k -> p.pending <- Some (K_decide (v, k)))
          | E_yield -> Some (fun k -> p.pending <- Some (K_yield k))
          | _ -> None);
    }

let record t p ev =
  Trace.record t.tr ~time:t.now ~pid:p.pid ev;
  match t.obs with
  | None -> ()
  | Some o -> o.on_event p.pid ~time:t.now ev

(* Per-process observation hash: folds in each executed operation together
   with its result. Process code is deterministic and interacts with the
   world only through its effects, so two processes of the same code with
   equal observation hashes are (modulo hash collisions) in the same local
   state — the basis of {!digest}. *)
let obs p tag x =
  p.obs_hash <- (((p.obs_hash * 0x01000193) lxor tag) * 0x01000193) lxor x
                land max_int

(* Execute the pending operation of [p] at the current time, then resume the
   code until its next suspension point. One call = one (non-null) step. *)
let execute t (p : pstate) (op : pending) : unit =
  p.pending <- None;
  p.steps <- p.steps + 1;
  if p.first_step = None then p.first_step <- Some t.now;
  (* The continuations below resume under the deep handler installed by
     [run_under] at process start: subsequent effects re-park in [p.pending],
     normal return / Halted land in that handler's retc/exnc. *)
  match op with
  | K_read (r, k) ->
    let v = Memory.read t.cfg.memory r in
    obs p 1 ((r * 0x01000193) lxor Value.hash v);
    record t p (Trace.Read (r, v));
    Effect.Deep.continue k v
  | K_write (r, v, k) ->
    Memory.write t.cfg.memory r v;
    obs p 2 ((r * 0x01000193) lxor Value.hash v);
    record t p (Trace.Write (r, v));
    Effect.Deep.continue k ()
  | K_snapshot (rs, k) ->
    let vs = Memory.read_many t.cfg.memory rs in
    Array.iteri (fun i r -> obs p 3 ((r * 0x01000193) lxor Value.hash vs.(i))) rs;
    record t p (Trace.Snapshot rs);
    Effect.Deep.continue k vs
  | K_query k ->
    (match p.pid with
    | Pid.C _ -> raise (Forbidden_query p.pid)
    | Pid.S i ->
      let v = History.get t.cfg.history ~q:i ~time:t.now in
      obs p 4 (Value.hash v);
      record t p (Trace.Query v);
      Effect.Deep.continue k v)
  | K_decide (v, k) ->
    p.decided <- Some v;
    p.decide_at <- Some t.now;
    obs p 5 (Value.hash v);
    record t p (Trace.Decide v);
    Effect.Deep.discontinue k Halted
  | K_yield k ->
    obs p 6 0;
    Effect.Deep.continue k ()

(* ------------------------------------------------------------------ *)
(* Per-step footprints — the static face of the next step of each process,
   used by the exhaustive checker's independence relation. *)

type footprint =
  | F_local
  | F_read of Memory.reg array
  | F_write of Memory.reg
  | F_timedep

let start_if_fresh (p : pstate) =
  if p.status = Fresh then begin
    p.status <- Runnable;
    run_under p p.code
  end

let peek t pid = start_if_fresh (proc t pid)

let footprint t pid =
  let p = proc t pid in
  match pid with
  | Pid.S i when Failure.crashed t.cfg.pattern ~time:t.now i ->
    (* crash-stop: crashed stays crashed, so every later step is null *)
    F_local
  | Pid.S i when not (Failure.is_correct t.cfg.pattern i) ->
    (* alive now but crashes later: whether the parked op or a null step
       executes depends on when the process is scheduled *)
    F_timedep
  | _ -> (
    start_if_fresh p;
    match p.pending with
    | None -> F_local (* done or returned: null step *)
    | Some (K_read (r, _)) -> F_read [| r |]
    | Some (K_snapshot (rs, _)) -> F_read rs
    | Some (K_write (r, _, _)) -> F_write r
    | Some (K_query _) -> F_timedep (* result sampled at the step's time *)
    | Some (K_decide _) | Some (K_yield _) -> F_local)

let commute a b =
  match (a, b) with
  | F_timedep, _ | _, F_timedep -> false
  | F_local, _ | _, F_local -> true
  | F_read _, F_read _ -> true
  | F_read rs, F_write w | F_write w, F_read rs ->
    not (Memory.overlaps rs [| w |])
  | F_write r1, F_write r2 -> r1 <> r2

let independent t p q =
  (not (Pid.equal p q)) && commute (footprint t p) (footprint t q)

let step t pid =
  let p = proc t pid in
  p.scheds <- p.scheds + 1;
  t.steps_total <- t.steps_total + 1;
  (match t.obs with None -> () | Some o -> o.on_sched pid ~time:t.now);
  let alive =
    match pid with
    | Pid.C _ -> true
    | Pid.S i -> not (Failure.crashed t.cfg.pattern ~time:t.now i)
  in
  if not alive then record t p Trace.Null
  else begin
    (* A Fresh process first runs its code up to the first operation, then
       performs that operation within this same step, so that step #1 of a
       process is its first shared-memory action. [first_step] is set in
       [execute] only: a process whose code performs no operation (or whose
       first operation never runs) takes a null step and does not count as
       participating. *)
    start_if_fresh p;
    match p.pending with
    | Some op -> execute t p op
    | None -> record t p Trace.Null
  end;
  t.now <- t.now + 1

let destroy t =
  let kill p =
    match p.pending with
    | None -> ()
    | Some op ->
      p.pending <- None;
      let disc : type a. (a, unit) Effect.Deep.continuation -> unit =
       fun k -> Effect.Deep.discontinue k Halted
      in
      (match op with
      | K_read (_, k) -> disc k
      | K_write (_, _, k) -> disc k
      | K_snapshot (_, k) -> disc k
      | K_query k -> disc k
      | K_decide (_, k) -> disc k
      | K_yield k -> disc k)
  in
  Array.iter kill t.c_procs;
  Array.iter kill t.s_procs

let time t = t.now
let n_c t = t.cfg.n_c
let n_s t = t.cfg.n_s
let memory t = t.cfg.memory
let pattern t = t.cfg.pattern
let status t pid = (proc t pid).status

let decision t i =
  if i < 0 || i >= t.cfg.n_c then invalid_arg "Runtime.decision";
  t.c_procs.(i).decided

let decisions t = Array.map (fun p -> p.decided) t.c_procs
let all_c_done t = Array.for_all (fun p -> p.decided <> None) t.c_procs
let participating t i = t.c_procs.(i).first_step <> None

let undecided_participants t =
  List.filter
    (fun i -> participating t i && t.c_procs.(i).decided = None)
    (List.init t.cfg.n_c Fun.id)

let steps_taken t pid = (proc t pid).steps
let sched_count t pid = (proc t pid).scheds
let first_step_time t i = t.c_procs.(i).first_step
let decide_time t i = t.c_procs.(i).decide_at
let trace t = t.tr
let steps_total t = t.steps_total

let digest t =
  (* Captures everything that determines future behaviour and the usual
     checker-visible present: the clock, exact memory contents, and for every
     process its status, step/sched counters, decision and observation hash.
     Deliberately excludes absolute event times (first_step, decide_at) and
     the trace, so that converging interleavings digest equal. *)
  let psum p =
    ( (match p.status with Fresh -> 0 | Runnable -> 1 | Done -> 2),
      p.steps,
      p.scheds,
      p.obs_hash,
      p.decided )
  in
  let repr =
    ( t.now,
      Memory.contents t.cfg.memory,
      Array.map psum t.c_procs,
      Array.map psum t.s_procs )
  in
  Digest.string (Marshal.to_string repr [])
