type reg = int
type t = { mutable cells : Value.t array; mutable used : int }

let create () = { cells = Array.make 64 Value.unit; used = 0 }

let ensure mem n =
  let needed = mem.used + n in
  if needed > Array.length mem.cells then begin
    let cap = max needed (2 * Array.length mem.cells) in
    let cells = Array.make cap Value.unit in
    Array.blit mem.cells 0 cells 0 mem.used;
    mem.cells <- cells
  end

let alloc mem ?(init = Value.unit) n =
  if n < 0 then invalid_arg "Memory.alloc";
  ensure mem n;
  let base = mem.used in
  for i = base to base + n - 1 do
    mem.cells.(i) <- init
  done;
  mem.used <- base + n;
  Array.init n (fun i -> base + i)

let alloc1 mem ?init () = (alloc mem ?init 1).(0)
let size mem = mem.used

let check mem r =
  if r < 0 || r >= mem.used then invalid_arg "Memory: register out of range"

let read mem r =
  check mem r;
  mem.cells.(r)

let write mem r v =
  check mem r;
  mem.cells.(r) <- v

let read_many mem rs = Array.map (read mem) rs

let contents mem = Array.sub mem.cells 0 mem.used

(* Register footprints stay tiny (one register, or one snapshot's worth), so
   quadratic disjointness is cheaper than building any set structure. *)
let overlaps a b =
  Array.exists (fun r -> Array.exists (fun r' -> r = r') b) a

let hash mem =
  (* FNV-1a over the per-cell value hashes; cheap enough to recompute per
     checker node (memories stay small in exhaustively-checked systems). *)
  let h = ref 0x811c9dc5 in
  for i = 0 to mem.used - 1 do
    h := (!h * 0x01000193) lxor Value.hash mem.cells.(i) land max_int
  done;
  !h
