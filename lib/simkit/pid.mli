(** Process identities.

    The system has [m] computation processes (C-processes [p_0 .. p_{m-1}])
    and [n] synchronization processes (S-processes [q_0 .. q_{n-1}]), per the
    EFD model of Delporte-Gallet et al. Indices are zero-based throughout the
    library; pretty-printing uses the paper's 1-based [p_i]/[q_i] names. *)

type t =
  | C of int  (** computation process, 0-based index *)
  | S of int  (** synchronization process, 0-based index *)

val c : int -> t
val s : int -> t
val is_c : t -> bool
val is_s : t -> bool

val index : t -> int
(** Index within its own class (C or S). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string} ([p1] is [C 0], [q2] is [S 1]); [None] on
    anything else. The wire format for schedules and subtree jobs. *)

val all : n_c:int -> n_s:int -> t list
(** All process ids, C-processes first. *)

val all_c : int -> t list
val all_s : int -> t list
