(* SplitMix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014). State is a seed advanced by an odd gamma;
   output is a finalizing mix of the seed. Splitting draws a fresh seed and
   a fresh gamma from the parent, so child streams are decorrelated. *)

type t = { mutable seed : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* gamma must be odd; mix with a distinct finalizer and force the low bit *)
let mix_gamma z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  Int64.logor z 1L

let make seed = { seed = mix64 (Int64.of_int seed); gamma = golden_gamma }

let next_int64 t =
  t.seed <- Int64.add t.seed t.gamma;
  mix64 t.seed

let split t =
  let seed = next_int64 t in
  let gamma = mix_gamma (Int64.add seed t.gamma) in
  { seed; gamma }

let stream t i =
  (* pure in (t, i): derive from the parent's current seed without
     advancing it, offsetting by (i+1) gammas *)
  let seed =
    Int64.add t.seed (Int64.mul t.gamma (Int64.of_int (i + 1)))
  in
  let seed = mix64 seed in
  let gamma = mix_gamma (Int64.add seed (Int64.of_int i)) in
  { seed; gamma }

let next t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Sprng.int: bound must be positive";
  next t mod bound

let to_random_state t =
  let a = next t and b = next t in
  Random.State.make [| a; b |]
