type pattern = { n_s : int; crash_time : int option array }

let pattern ~n_s crashes =
  if n_s <= 0 then invalid_arg "Failure.pattern: n_s must be positive";
  let crash_time = Array.make n_s None in
  let set (i, tau) =
    if i < 0 || i >= n_s then invalid_arg "Failure.pattern: index out of range";
    if tau < 0 then invalid_arg "Failure.pattern: negative crash time";
    match crash_time.(i) with
    | Some _ -> invalid_arg "Failure.pattern: repeated index"
    | None -> crash_time.(i) <- Some tau
  in
  List.iter set crashes;
  if Array.for_all Option.is_some crash_time then
    invalid_arg "Failure.pattern: at least one S-process must be correct";
  { n_s; crash_time }

let failure_free n_s = pattern ~n_s []

let crashed f ~time i =
  match f.crash_time.(i) with None -> false | Some tau -> time >= tau

let faulty f =
  List.filteri (fun i _ -> Option.is_some f.crash_time.(i)) (List.init f.n_s Fun.id)

let correct f =
  List.filteri (fun i _ -> Option.is_none f.crash_time.(i)) (List.init f.n_s Fun.id)

let is_correct f i = Option.is_none f.crash_time.(i)

let num_faulty f =
  Array.fold_left (fun acc c -> if Option.is_some c then acc + 1 else acc) 0 f.crash_time

let crashes f =
  Array.to_list f.crash_time
  |> List.mapi (fun i c -> (i, c))
  |> List.filter_map (fun (i, c) -> Option.map (fun tau -> (i, tau)) c)

let without_crash f i =
  if i < 0 || i >= f.n_s then invalid_arg "Failure.without_crash: index";
  let crash_time = Array.copy f.crash_time in
  crash_time.(i) <- None;
  { f with crash_time }

let pp_pattern ppf f =
  let pp_one ppf (i, c) =
    match c with
    | None -> Fmt.pf ppf "q%d:ok" (i + 1)
    | Some tau -> Fmt.pf ppf "q%d:@%d" (i + 1) tau
  in
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any ", ") pp_one)
    (List.mapi (fun i c -> (i, c)) (Array.to_list f.crash_time))

type env = {
  env_name : string;
  env_n_s : int;
  member : pattern -> bool;
  sample : Random.State.t -> horizon:int -> pattern;
}

(* Sample a pattern with at most [t] faults: pick a fault count uniformly in
   [0, t], then faulty indices without replacement, then crash times. *)
let sample_up_to_t n_s t rng ~horizon =
  let horizon = max horizon 1 in
  let k = Random.State.int rng (t + 1) in
  let indices = Array.init n_s Fun.id in
  for i = n_s - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = indices.(i) in
    indices.(i) <- indices.(j);
    indices.(j) <- tmp
  done;
  let crashes =
    List.init k (fun i -> (indices.(i), Random.State.int rng horizon))
  in
  pattern ~n_s crashes

let e_t ~n_s ~t =
  let t = max 0 (min t (n_s - 1)) in
  {
    env_name = Printf.sprintf "E_%d(n=%d)" t n_s;
    env_n_s = n_s;
    member = (fun f -> f.n_s = n_s && num_faulty f <= t);
    sample = sample_up_to_t n_s t;
  }

let wait_free_env n_s = e_t ~n_s ~t:(n_s - 1)

let crash_free n_s =
  {
    env_name = Printf.sprintf "E_0(n=%d)" n_s;
    env_n_s = n_s;
    member = (fun f -> f.n_s = n_s && num_faulty f = 0);
    sample = (fun _ ~horizon:_ -> failure_free n_s);
  }

(* All subsets of {0..n_s-1} that keep at least one process correct, with
   every combination of crash times from [times] for the chosen subset. *)
let enumerate env ~horizon:_ ~times =
  let n_s = env.env_n_s in
  let rec subsets i =
    if i >= n_s then [ [] ]
    else
      let rest = subsets (i + 1) in
      rest @ List.map (fun s -> i :: s) rest
  in
  let rec assign = function
    | [] -> [ [] ]
    | i :: rest ->
      let tails = assign rest in
      List.concat_map (fun tau -> List.map (fun tl -> (i, tau) :: tl) tails) times
  in
  let candidate_sets =
    List.filter (fun s -> List.length s < n_s) (subsets 0)
  in
  let patterns =
    List.concat_map (fun s -> List.map (pattern ~n_s) (assign s)) candidate_sets
  in
  List.filter env.member patterns
