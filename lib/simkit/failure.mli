(** Failure patterns and environments.

    Only S-processes are subject to crash failures (the paper's §2.1). A
    failure pattern [F] maps each time [τ] to the set of S-processes crashed
    by [τ]; we represent it by the (optional) crash time of each S-process.
    An environment is a set of allowed failure patterns; [E_t] allows any
    pattern with at most [t] faulty S-processes. At least one S-process is
    correct in every pattern of every environment we construct. *)

type pattern = private {
  n_s : int;  (** number of S-processes *)
  crash_time : int option array;  (** [crash_time.(i) = Some τ] iff [q_i] crashes at time [τ] *)
}

val pattern : n_s:int -> (int * int) list -> pattern
(** [pattern ~n_s crashes] builds a pattern where each [(i, τ)] in [crashes]
    crashes [q_i] at time [τ ≥ 0]. Raises [Invalid_argument] if every
    S-process would be faulty, an index is out of range, a time is negative,
    or an index is repeated. *)

val failure_free : int -> pattern
(** Pattern with no crashes. *)

val crashed : pattern -> time:int -> int -> bool
(** [crashed f ~time i]: has [q_i] crashed by [time] (i.e. is it in [F(time)])? *)

val faulty : pattern -> int list
(** Indices of S-processes that crash at some time. *)

val correct : pattern -> int list
(** Indices of S-processes that never crash. Always non-empty. *)

val is_correct : pattern -> int -> bool
val num_faulty : pattern -> int

val crashes : pattern -> (int * int) list
(** The [(index, crash time)] pairs of the faulty S-processes, in index
    order — the inverse of {!pattern}'s input. *)

val without_crash : pattern -> int -> pattern
(** Same pattern with [q_i]'s crash removed (no-op if [q_i] is correct) —
    the crash axis of witness shrinking. *)

val pp_pattern : Format.formatter -> pattern -> unit

(** {1 Environments} *)

type env = {
  env_name : string;
  env_n_s : int;
  member : pattern -> bool;
  sample : Random.State.t -> horizon:int -> pattern;
      (** Draw a random allowed pattern with crash times in [0, horizon). *)
}

val e_t : n_s:int -> t:int -> env
(** The environment [E_t]: at most [t] faulty S-processes
    ([t ≤ n_s - 1]; clamped so at least one process stays correct). *)

val wait_free_env : int -> env
(** [E_{n-1}]: any number of crashes as long as one S-process survives. *)

val crash_free : int -> env
(** Only the failure-free pattern. *)

val enumerate : env -> horizon:int -> times:int list -> pattern list
(** All patterns of [env] whose crash times are drawn from [times]
    (exhaustive over faulty sets; intended for small [n_s]). *)
