type t = { policy_name : string; next : Runtime.t -> Pid.t option }

let shuffle rng a =
  let a = Array.copy a in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let round_robin ~n_c ~n_s =
  let pids = Array.of_list (Pid.all ~n_c ~n_s) in
  let pos = ref 0 in
  {
    policy_name = "round-robin";
    next =
      (fun _ ->
        let p = pids.(!pos mod Array.length pids) in
        incr pos;
        Some p);
  }

let shuffled_rounds ?only ~n_c ~n_s rng =
  let base =
    match only with
    | Some pids -> Array.of_list pids
    | None -> Array.of_list (Pid.all ~n_c ~n_s)
  in
  if Array.length base = 0 then invalid_arg "Schedule.shuffled_rounds: empty";
  let queue = ref [] in
  {
    policy_name = "shuffled-rounds";
    next =
      (fun _ ->
        (match !queue with
        | [] -> queue := Array.to_list (shuffle rng base)
        | _ -> ());
        match !queue with
        | p :: rest ->
          queue := rest;
          Some p
        | [] -> assert false);
  }

let explicit pids =
  let rest = ref pids in
  {
    policy_name = "explicit";
    next =
      (fun _ ->
        match !rest with
        | [] -> None
        | p :: tl ->
          rest := tl;
          Some p);
  }

let explicit_looping pids =
  if pids = [] then invalid_arg "Schedule.explicit_looping: empty";
  let rest = ref pids in
  {
    policy_name = "explicit-looping";
    next =
      (fun _ ->
        (match !rest with [] -> rest := pids | _ -> ());
        match !rest with
        | p :: tl ->
          rest := tl;
          Some p
        | [] -> assert false);
  }

let seq a ~steps b =
  let taken = ref 0 in
  {
    policy_name = Printf.sprintf "%s;then;%s" a.policy_name b.policy_name;
    next =
      (fun rt ->
        if !taken < steps then begin
          incr taken;
          a.next rt
        end
        else b.next rt);
  }

let filtered keep inner =
  {
    policy_name = "filtered:" ^ inner.policy_name;
    next =
      (fun rt ->
        let rec draw tries =
          if tries = 0 then None
          else
            match inner.next rt with
            | None -> None
            | Some p -> if keep rt p then Some p else draw (tries - 1)
        in
        draw 10_000);
  }

let starve victims ~until inner =
  let is_victim p = List.exists (Pid.equal p) victims in
  filtered (fun rt p -> Runtime.time rt >= until || not (is_victim p)) inner

let k_concurrent ?(mode = `Rounds) ~k ~arrival ~n_s rng =
  if k <= 0 then invalid_arg "Schedule.k_concurrent: k must be positive";
  let waiting = ref arrival in
  let admitted = ref [] in
  let queue = ref [] in
  let refresh rt =
    (* Admit new arrivals while fewer than k admitted processes are
       undecided; drop decided ones from the active set. *)
    admitted := List.filter (fun i -> Runtime.decision rt i = None) !admitted;
    let rec admit () =
      if List.length !admitted < k then
        match !waiting with
        | [] -> ()
        | i :: rest ->
          if Runtime.decision rt i = None then begin
            admitted := !admitted @ [ i ];
            waiting := rest;
            admit ()
          end
          else begin
            waiting := rest;
            admit ()
          end
    in
    admit ()
  in
  {
    policy_name = Printf.sprintf "%d-concurrent" k;
    next =
      (fun rt ->
        refresh rt;
        match mode with
        | `Uniform ->
          let pids = List.map Pid.c !admitted @ Pid.all_s n_s in
          let arr = Array.of_list pids in
          if Array.length arr = 0 then None
          else Some arr.(Random.State.int rng (Array.length arr))
        | `Rounds -> (
          (match !queue with
          | [] ->
            let pids = List.map Pid.c !admitted @ Pid.all_s n_s in
            if pids = [] then queue := []
            else queue := Array.to_list (shuffle rng (Array.of_list pids))
          | _ -> ());
          match !queue with
          | [] -> None
          | p :: rest ->
            queue := rest;
            (* a decided C-process drawn from a stale round takes a null
               step; harmless, and time keeps moving *)
            Some p));
  }

let c_solo i =
  {
    policy_name = Printf.sprintf "solo-p%d" (i + 1);
    next = (fun _ -> Some (Pid.c i));
  }

let s_first ~n_c ~n_s ~s_steps rng =
  let s_only = shuffled_rounds ~only:(Pid.all_s n_s) ~n_c ~n_s rng in
  let everyone = shuffled_rounds ~n_c ~n_s rng in
  seq s_only ~steps:s_steps everyone

(* Symmetry over interchangeable pids: pure list utilities, shared by the
   exhaustive checker's orbit collapsing and by the tests that validate it
   by brute-force enumeration. *)

let class_of classes p =
  List.find_opt (fun cls -> List.exists (Pid.equal p) cls) classes

let canonicalize ~classes sched =
  (* Per class, map members to class order by first appearance. *)
  let seen = List.map (fun cls -> (cls, ref [])) classes in
  List.map
    (fun p ->
      match class_of classes p with
      | None -> p
      | Some cls ->
        let tbl = List.assq cls seen in
        (match List.find_opt (fun (q, _) -> Pid.equal p q) !tbl with
        | Some (_, canon) -> canon
        | None ->
          let canon = List.nth cls (List.length !tbl) in
          tbl := !tbl @ [ (p, canon) ];
          canon))
    sched

let orbit_size ~classes sched =
  (* The group ∏ Sym(class) acts by renaming class members; a schedule
     touching k distinct members of an m-member class has stabilizer
     (m-k)!, hence orbit factor m!/(m-k)! — the falling factorial. *)
  List.fold_left
    (fun acc cls ->
      let m = List.length cls in
      let k =
        List.length
          (List.filter
             (fun q ->
               List.exists (Pid.equal q) sched)
             cls)
      in
      let rec falling m k = if k = 0 then 1 else m * falling (m - 1) (k - 1) in
      acc * falling m k)
    1 classes

type outcome = {
  total_steps : int;
  all_decided : bool;
  out_decisions : Value.t option array;
  exhausted : bool;
}

let run ?(stop_when = fun _ -> false) rt policy ~budget =
  let rec loop steps =
    if Runtime.all_c_done rt || stop_when rt then (steps, false)
    else if steps >= budget then (steps, true)
    else
      match policy.next rt with
      | None -> (steps, false)
      | Some p ->
        Runtime.step rt p;
        loop (steps + 1)
  in
  let total_steps, exhausted = loop 0 in
  {
    total_steps;
    all_decided = Runtime.all_c_done rt;
    out_decisions = Runtime.decisions rt;
    exhausted;
  }
