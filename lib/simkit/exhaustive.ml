type verdict = Ok of int | Counterexample of Pid.t list
type mode = Every | Final

type stats = {
  nodes : int;
  steps_executed : int;
  replays : int;
  runtimes_built : int;
  memo_hits : int;
  wall_s : float;
}

let pp_stats ppf s =
  Fmt.pf ppf
    "nodes %d, steps %d, replays %d, builds %d, memo-hits %d, %.3fs"
    s.nodes s.steps_executed s.replays s.runtimes_built s.memo_hits s.wall_s

let stats_json s =
  Obs.Json.Obj
    [
      ("nodes", Obs.Json.Int s.nodes);
      ("steps_executed", Obs.Json.Int s.steps_executed);
      ("replays", Obs.Json.Int s.replays);
      ("runtimes_built", Obs.Json.Int s.runtimes_built);
      ("memo_hits", Obs.Json.Int s.memo_hits);
      ("wall_s", Obs.Json.Float s.wall_s);
    ]

let record_stats ?(labels = []) reg s =
  let c name v = Obs.Metrics.incr ~by:v (Obs.Metrics.counter reg ~labels name) in
  c "exhaustive.nodes" s.nodes;
  c "exhaustive.steps_executed" s.steps_executed;
  c "exhaustive.replays" s.replays;
  c "exhaustive.runtimes_built" s.runtimes_built;
  c "exhaustive.memo_hits" s.memo_hits;
  Obs.Metrics.set (Obs.Metrics.gauge reg ~labels "exhaustive.wall_s") s.wall_s

(* Mutable per-worker accumulator; summed into a [stats] after the run. *)
type acc = {
  mutable a_nodes : int;
  mutable a_steps : int;
  mutable a_replays : int;
  mutable a_built : int;
  mutable a_memo : int;
  mutable a_count : int;  (* complete schedules accounted for *)
}

let fresh_acc () =
  { a_nodes = 0; a_steps = 0; a_replays = 0; a_built = 0; a_memo = 0;
    a_count = 0 }

let stats_of ~wall_s accs =
  List.fold_left
    (fun s a ->
      {
        s with
        nodes = s.nodes + a.a_nodes;
        steps_executed = s.steps_executed + a.a_steps;
        replays = s.replays + a.a_replays;
        runtimes_built = s.runtimes_built + a.a_built;
        memo_hits = s.memo_hits + a.a_memo;
      })
    { nodes = 0; steps_executed = 0; replays = 0; runtimes_built = 0;
      memo_hits = 0; wall_s }
    accs

exception Cancelled

type worker_result = W_ok | W_cex of Pid.t list | W_aborted

(* ------------------------------------------------------------------ *)
(* The incremental engine.

   One live runtime is kept per DFS path: descending into the first child of
   a node is a single [Runtime.step]; only when the DFS moves to a sibling is
   the runtime rebuilt and the prefix replayed (runtimes hold effect
   continuations, so they cannot be cloned — replay-on-backtrack keeps the
   enumeration exact while the descent itself costs amortized O(1) steps per
   node, against O(depth) for replay-from-scratch at every node).

   On top, a state-fingerprint memo ({!Runtime.digest}) collapses converging
   interleavings: when a node's state has been seen before at the same clock,
   its whole subtree is skipped and the recorded number of complete schedules
   below it is credited, so reported schedule counts stay exact. Only
   fully-verified (counterexample-free) subtrees are memoized. *)

let explore ~build ~pids ~depth ~prop ~mode ~memo ~cancelled ~tops acc =
  let every = mode = Every in
  let tbl = if memo then Some (Hashtbl.create 4096) else None in
  let cur = ref None in
  let destroy_cur () =
    match !cur with
    | Some rt ->
      Runtime.destroy rt;
      cur := None
    | None -> ()
  in
  let build_fresh () =
    acc.a_built <- acc.a_built + 1;
    let rt = build () in
    cur := Some rt;
    rt
  in
  let step rt p =
    Runtime.step rt p;
    acc.a_steps <- acc.a_steps + 1
  in
  let replay prefix_rev =
    destroy_cur ();
    acc.a_replays <- acc.a_replays + 1;
    let rt = build_fresh () in
    List.iter (step rt) (List.rev prefix_rev);
    rt
  in
  (* [expand rt prefix_rev d ~branch]: [rt] is live at the state reached by
     [prefix_rev]; explore all extensions by up to [d] more steps, branching
     over [branch] at this node and over [pids] below. *)
  let rec expand rt prefix_rev d ~branch =
    if d = 0 then begin
      acc.a_count <- acc.a_count + 1;
      if (not every) && prefix_rev <> [] && not (prop rt) then
        Some (List.rev prefix_rev)
      else None
    end
    else
      let rec kids live = function
        | [] -> None
        | p :: rest ->
          if cancelled () then raise Cancelled;
          let rt = if live then rt else replay prefix_rev in
          step rt p;
          acc.a_nodes <- acc.a_nodes + 1;
          let prefix_rev' = p :: prefix_rev in
          if every && not (prop rt) then Some (List.rev prefix_rev')
          else begin
            let key =
              match tbl with
              | Some _ when d > 1 -> Some (Runtime.digest rt)
              | _ -> None
            in
            match (key, tbl) with
            | Some k, Some table when Hashtbl.mem table k ->
              acc.a_memo <- acc.a_memo + 1;
              acc.a_count <- acc.a_count + Hashtbl.find table k;
              kids false rest
            | _ -> (
              let before = acc.a_count in
              match expand rt prefix_rev' (d - 1) ~branch:pids with
              | Some cex -> Some cex
              | None ->
                (match (key, tbl) with
                | Some k, Some table ->
                  Hashtbl.replace table k (acc.a_count - before)
                | _ -> ());
                kids false rest)
          end
      in
      kids true branch
  in
  let result =
    try
      let rt = build_fresh () in
      match expand rt [] depth ~branch:tops with
      | Some cex -> W_cex cex
      | None -> W_ok
    with Cancelled -> W_aborted
  in
  destroy_cur ();
  result

(* ------------------------------------------------------------------ *)
(* Top-level driver: optional domain sharding over the first-step pid. *)

let run ?(domains = 1) ?(memo = true) ?(mode = Every) ~build ~pids ~depth
    ~prop () =
  let sp = Obs.Span.start ~name:"exhaustive.run" () in
  let n_tops = List.length pids in
  let n_workers = max 1 (min domains n_tops) in
  let verdict, accs =
    if n_workers <= 1 || depth = 0 then begin
      let acc = fresh_acc () in
      let r =
        explore ~build ~pids ~depth ~prop ~mode ~memo
          ~cancelled:(fun () -> false)
          ~tops:pids acc
      in
      ( (match r with
        | W_cex cex -> Counterexample cex
        | W_ok | W_aborted -> Ok acc.a_count),
        [ acc ] )
    end
    else begin
      (* Shard the top-level branching factor: worker [w] owns the subtrees
         whose first step is one of [tops.(w)]. Workers run independent DFSs
         (each with its own memo table and runtimes); a found counterexample
         raises a shared flag that the others poll, so the join is
         first-counterexample-wins. *)
      let tops = Array.make n_workers [] in
      List.iteri
        (fun i p -> tops.(i mod n_workers) <- p :: tops.(i mod n_workers))
        pids;
      let tops = Array.map List.rev tops in
      let flag = Atomic.make false in
      let cancelled () = Atomic.get flag in
      let accs = Array.init n_workers (fun _ -> fresh_acc ()) in
      let worker w () =
        let r =
          explore ~build ~pids ~depth ~prop ~mode ~memo ~cancelled
            ~tops:tops.(w) accs.(w)
        in
        (match r with W_cex _ -> Atomic.set flag true | W_ok | W_aborted -> ());
        r
      in
      let ds = Array.init n_workers (fun w -> Domain.spawn (worker w)) in
      let results = Array.map Domain.join ds in
      let cex =
        Array.to_list results
        |> List.filter_map (function W_cex c -> Some c | _ -> None)
        |> function
        | [] -> None
        | cexs ->
          (* Deterministic tie-break when several workers report: prefer the
             counterexample whose first step comes earliest in [pids]. *)
          let rank = function
            | [] -> max_int
            | p :: _ ->
              let rec idx i = function
                | [] -> max_int
                | q :: qs -> if Pid.equal p q then i else idx (i + 1) qs
              in
              idx 0 pids
          in
          Some
            (List.fold_left
               (fun best c -> if rank c < rank best then c else best)
               (List.hd cexs) (List.tl cexs))
      in
      let total =
        Array.fold_left (fun n a -> n + a.a_count) 0 accs
      in
      ( (match cex with Some c -> Counterexample c | None -> Ok total),
        Array.to_list accs )
    end
  in
  (verdict, stats_of ~wall_s:(Obs.Span.elapsed_s sp) accs)

(* ------------------------------------------------------------------ *)
(* The replay-from-scratch baseline — the pre-incremental engine, kept (with
   the same instrumentation) as differential-testing oracle and benchmark
   yardstick. *)

let run_replay ?(mode = Every) ~build ~pids ~depth ~prop () =
  let sp = Obs.Span.start ~name:"exhaustive.run_replay" () in
  let acc = fresh_acc () in
  let every = mode = Every in
  let replay sched =
    acc.a_replays <- acc.a_replays + 1;
    acc.a_built <- acc.a_built + 1;
    let rt = build () in
    let rec go = function
      | [] -> true
      | p :: rest ->
        Runtime.step rt p;
        acc.a_steps <- acc.a_steps + 1;
        if rest = [] && not (prop rt) then false else go rest
    in
    let ok = go sched in
    Runtime.destroy rt;
    ok
  in
  let rec go prefix d =
    if d = 0 then begin
      acc.a_count <- acc.a_count + 1;
      if every then None
      else
        let sched = List.rev prefix in
        if replay sched then None else Some sched
    end
    else
      let rec try_pids = function
        | [] -> None
        | p :: rest ->
          acc.a_nodes <- acc.a_nodes + 1;
          let sched = List.rev (p :: prefix) in
          if every && not (replay sched) then Some sched
          else begin
            match go (p :: prefix) (d - 1) with
            | Some cex -> Some cex
            | None -> try_pids rest
          end
      in
      try_pids pids
  in
  let verdict =
    match go [] depth with
    | Some cex -> Counterexample cex
    | None -> Ok acc.a_count
  in
  (verdict, stats_of ~wall_s:(Obs.Span.elapsed_s sp) [ acc ])

(* ------------------------------------------------------------------ *)

let replay_ok ?(mode = Every) ~build ~prop sched =
  let every = mode = Every in
  let rt = build () in
  let rec go = function
    | [] -> true
    | p :: rest ->
      Runtime.step rt p;
      if (every || rest = []) && not (prop rt) then false else go rest
  in
  let ok = go sched in
  Runtime.destroy rt;
  ok

let check ~build ~pids ~depth ~prop =
  fst (run ~mode:Every ~build ~pids ~depth ~prop ())

let check_final ~build ~pids ~depth ~prop =
  fst (run ~mode:Final ~build ~pids ~depth ~prop ())
