type verdict = Ok of int | Counterexample of Pid.t list
type mode = Every | Final

type stats = {
  nodes : int;
  steps_executed : int;
  replays : int;
  runtimes_built : int;
  memo_hits : int;
  sleep_pruned : int;
  orbits_collapsed : int;
  wall_s : float;
}

let pp_stats ppf s =
  Fmt.pf ppf
    "nodes %d, steps %d, replays %d, builds %d, memo-hits %d, sleep-pruned \
     %d, orbits-collapsed %d, %.3fs"
    s.nodes s.steps_executed s.replays s.runtimes_built s.memo_hits
    s.sleep_pruned s.orbits_collapsed s.wall_s

let stats_json s =
  Obs.Json.Obj
    [
      ("nodes", Obs.Json.Int s.nodes);
      ("steps_executed", Obs.Json.Int s.steps_executed);
      ("replays", Obs.Json.Int s.replays);
      ("runtimes_built", Obs.Json.Int s.runtimes_built);
      ("memo_hits", Obs.Json.Int s.memo_hits);
      ("sleep_pruned", Obs.Json.Int s.sleep_pruned);
      ("orbits_collapsed", Obs.Json.Int s.orbits_collapsed);
      ("wall_s", Obs.Json.Float s.wall_s);
    ]

let record_stats ?(labels = []) reg s =
  let c name v = Obs.Metrics.incr ~by:v (Obs.Metrics.counter reg ~labels name) in
  c "exhaustive.nodes" s.nodes;
  c "exhaustive.steps_executed" s.steps_executed;
  c "exhaustive.replays" s.replays;
  c "exhaustive.runtimes_built" s.runtimes_built;
  c "exhaustive.memo_hits" s.memo_hits;
  c "exhaustive.sleep_pruned" s.sleep_pruned;
  c "exhaustive.orbits_collapsed" s.orbits_collapsed;
  Obs.Metrics.set (Obs.Metrics.gauge reg ~labels "exhaustive.wall_s") s.wall_s

(* Mutable per-worker accumulator; summed into a [stats] after the run. *)
type acc = {
  mutable a_nodes : int;
  mutable a_steps : int;
  mutable a_replays : int;
  mutable a_built : int;
  mutable a_memo : int;
  mutable a_sleep : int;
  mutable a_orbits : int;
  mutable a_count : int;  (* complete schedules accounted for *)
}

let fresh_acc () =
  { a_nodes = 0; a_steps = 0; a_replays = 0; a_built = 0; a_memo = 0;
    a_sleep = 0; a_orbits = 0; a_count = 0 }

let stats_of ~wall_s accs =
  List.fold_left
    (fun s a ->
      {
        s with
        nodes = s.nodes + a.a_nodes;
        steps_executed = s.steps_executed + a.a_steps;
        replays = s.replays + a.a_replays;
        runtimes_built = s.runtimes_built + a.a_built;
        memo_hits = s.memo_hits + a.a_memo;
        sleep_pruned = s.sleep_pruned + a.a_sleep;
        orbits_collapsed = s.orbits_collapsed + a.a_orbits;
      })
    { nodes = 0; steps_executed = 0; replays = 0; runtimes_built = 0;
      memo_hits = 0; sleep_pruned = 0; orbits_collapsed = 0; wall_s }
    accs

exception Cancelled

type worker_result = W_ok | W_cex of Pid.t list | W_aborted

(* ------------------------------------------------------------------ *)
(* The incremental engine.

   One live runtime is kept per DFS path: descending into the first child of
   a node is a single [Runtime.step]; only when the DFS moves to a sibling is
   the runtime rebuilt and the prefix replayed (runtimes hold effect
   continuations, so they cannot be cloned — replay-on-backtrack keeps the
   enumeration exact while the descent itself costs amortized O(1) steps per
   node, against O(depth) for replay-from-scratch at every node).

   On top, a state-fingerprint memo ({!Runtime.digest}) collapses converging
   interleavings: when a node's state has been seen before at the same clock,
   its whole subtree is skipped and the recorded number of complete schedules
   below it is credited, so reported schedule counts stay exact. Only
   fully-verified (counterexample-free) subtrees are memoized. *)

let explore ~build ~pids ~depth ~prop ~mode ~memo ~cancelled ~tops acc =
  let every = mode = Every in
  let tbl = if memo then Some (Hashtbl.create 4096) else None in
  let cur = ref None in
  let destroy_cur () =
    match !cur with
    | Some rt ->
      Runtime.destroy rt;
      cur := None
    | None -> ()
  in
  let build_fresh () =
    acc.a_built <- acc.a_built + 1;
    let rt = build () in
    cur := Some rt;
    rt
  in
  let step rt p =
    Runtime.step rt p;
    acc.a_steps <- acc.a_steps + 1
  in
  let replay prefix_rev =
    destroy_cur ();
    acc.a_replays <- acc.a_replays + 1;
    let rt = build_fresh () in
    List.iter (step rt) (List.rev prefix_rev);
    rt
  in
  (* [expand rt prefix_rev d ~branch]: [rt] is live at the state reached by
     [prefix_rev]; explore all extensions by up to [d] more steps, branching
     over [branch] at this node and over [pids] below. *)
  let rec expand rt prefix_rev d ~branch =
    if d = 0 then begin
      acc.a_count <- acc.a_count + 1;
      if (not every) && prefix_rev <> [] && not (prop rt) then
        Some (List.rev prefix_rev)
      else None
    end
    else
      let rec kids live = function
        | [] -> None
        | p :: rest ->
          if cancelled () then raise Cancelled;
          let rt = if live then rt else replay prefix_rev in
          step rt p;
          acc.a_nodes <- acc.a_nodes + 1;
          let prefix_rev' = p :: prefix_rev in
          if every && not (prop rt) then Some (List.rev prefix_rev')
          else begin
            let key =
              match tbl with
              | Some _ when d > 1 -> Some (Runtime.digest rt)
              | _ -> None
            in
            match (key, tbl) with
            | Some k, Some table when Hashtbl.mem table k ->
              acc.a_memo <- acc.a_memo + 1;
              acc.a_count <- acc.a_count + Hashtbl.find table k;
              kids false rest
            | _ -> (
              let before = acc.a_count in
              match expand rt prefix_rev' (d - 1) ~branch:pids with
              | Some cex -> Some cex
              | None ->
                (match (key, tbl) with
                | Some k, Some table ->
                  Hashtbl.replace table k (acc.a_count - before)
                | _ -> ());
                kids false rest)
          end
      in
      kids true branch
  in
  let result =
    try
      let rt = build_fresh () in
      match expand rt [] depth ~branch:tops with
      | Some cex -> W_cex cex
      | None -> W_ok
    with Cancelled -> W_aborted
  in
  destroy_cur ();
  result

(* ------------------------------------------------------------------ *)
(* Sound state-space reduction: sleep-set partial-order reduction over the
   step-footprint independence relation ({!Runtime.footprint}), and symmetry
   reduction over caller-declared classes of interchangeable pids.

   Both layers prune whole subtrees while crediting exactly the number of
   complete schedules the subtree holds, so reported counts stay |pids|^depth
   — identical to the unreduced engines, which the differential suite
   checks.

   Soundness notes (the load-bearing arguments, in one place):

   - Footprint stability: a parked operation names its registers up front and
     cannot be changed by other processes' steps, so the independence of two
     processes' next steps, evaluated at a node, holds across any
     interleaving of other processes below that node. Time-sensitive steps
     (FD queries; any step of a live S-process that crashes inside the
     pattern) are [F_timedep] and never commute, because every step advances
     the clock.

   - Sleep sets prune transitions, not states: every state reachable in the
     full tree at a given clock is still visited (classical result for
     acyclic spaces), so [Every]-mode per-prefix checking is preserved. The
     lexicographically least violating schedule is never pruned — a pruned
     child is trace-equivalent to a lex-smaller schedule, so the first
     counterexample found equals the unreduced engines' (DFS order is lex
     order).

   - Sleep × memo: a memoized subtree was verified minus what its sleep set
     pruned, so an entry records the sleep mask it was explored under and a
     hit is taken only when stored ⊆ current (the stored exploration skipped
     nothing the current node is not itself entitled to skip). Otherwise the
     subtree is re-explored under the intersection and the entry tightened —
     monotone, so this converges.

   - Symmetry: at any state, the not-yet-scheduled members of a class are in
     identical (peeked) local states, so continuations that differ only by
     renaming them are prop-equivalent; exploring the first unused member
     with multiplier (m - u) covers all m - u renamings. Per class the
     explored children's multipliers sum to the class size, keeping counts
     exact. Which members a prefix has used is digest-determined (scheds
     counters), so memoized counts transfer between digest-equal nodes.

   - Peeking: footprints force Fresh processes to their first suspension
     point. That is behaviour-neutral but digest-visible, so the reduced
     engine peeks every pid after every step and replay — digests compared
     within its (private, per-worker) memo are taken at uniform peek points.
     The unreduced paths never peek and are byte-for-byte unchanged. *)

type reduction = { sleep : bool; symmetry : Pid.t list list }

let no_reduction = { sleep = false; symmetry = [] }

(* Compiled, read-only reduction context, shared across workers. *)
type rctx = {
  r_sleep : bool;
  r_pids : Pid.t array;
  r_cls : int array;  (* pid index -> class id, -1 if in no class *)
  r_pos : int array;  (* pid index -> canonical position within its class *)
  r_size : int array;  (* class id -> member count *)
  r_pow : int array;  (* r_pow.(d) = |pids|^d *)
}

let compile_reduction ~pids ~depth (r : reduction) =
  let arr = Array.of_list pids in
  let n = Array.length arr in
  let idx p =
    let rec go i =
      if i = n then
        invalid_arg "Exhaustive.run: symmetry class member not in pids"
      else if Pid.equal arr.(i) p then i
      else go (i + 1)
    in
    go 0
  in
  let cls = Array.make n (-1) and pos = Array.make n (-1) in
  let size =
    List.mapi
      (fun c members ->
        let is = List.sort compare (List.map idx members) in
        (* Canonical order within a class is pids order, so the canonical
           representative of an orbit is also its lex-least schedule. *)
        List.iteri
          (fun j i ->
            if cls.(i) <> -1 then
              invalid_arg "Exhaustive.run: symmetry classes overlap";
            cls.(i) <- c;
            pos.(i) <- j)
          is;
        List.length is)
      r.symmetry
  in
  let pow = Array.make (depth + 1) 1 in
  for d = 1 to depth do
    pow.(d) <- pow.(d - 1) * n
  done;
  { r_sleep = r.sleep; r_pids = arr; r_cls = cls; r_pos = pos;
    r_size = Array.of_list size; r_pow = pow }

let explore_reduced ~build ~depth ~prop ~mode ~memo ~rctx ~cancelled ~tops acc
    =
  let every = mode = Every in
  let n = Array.length rctx.r_pids in
  let pidx p =
    let rec go i = if Pid.equal rctx.r_pids.(i) p then i else go (i + 1) in
    go 0
  in
  let tops = List.map pidx tops in
  let all = List.init n Fun.id in
  (* memo entry: (complete schedules below, divided by the factor in force
     when the subtree was entered; sleep mask the subtree was explored
     under). *)
  let tbl : (string, int * int) Hashtbl.t option =
    if memo then Some (Hashtbl.create 4096) else None
  in
  let used = Array.map (fun _ -> 0) rctx.r_size in
  let cur = ref None in
  let destroy_cur () =
    match !cur with
    | Some rt ->
      Runtime.destroy rt;
      cur := None
    | None -> ()
  in
  let peek_all rt = Array.iter (Runtime.peek rt) rctx.r_pids in
  let build_fresh () =
    acc.a_built <- acc.a_built + 1;
    let rt = build () in
    cur := Some rt;
    rt
  in
  let step rt i =
    Runtime.step rt rctx.r_pids.(i);
    acc.a_steps <- acc.a_steps + 1;
    peek_all rt
  in
  let replay prefix_rev =
    destroy_cur ();
    acc.a_replays <- acc.a_replays + 1;
    let rt = build_fresh () in
    List.iter (step rt) (List.rev prefix_rev);
    peek_all rt;
    rt
  in
  let cex_of prefix_rev = List.rev_map (fun i -> rctx.r_pids.(i)) prefix_rev in
  let rec expand rt prefix_rev d ~branch ~z ~factor =
    if d = 0 then begin
      acc.a_count <- acc.a_count + factor;
      if (not every) && prefix_rev <> [] && not (prop rt) then
        Some (cex_of prefix_rev)
      else None
    end
    else begin
      (* Footprints of everyone's next step at this node: stable below it,
         valid after replays (which reconstruct this very state). *)
      let fp = Array.map (Runtime.footprint rt) rctx.r_pids in
      let rec kids live before = function
        | [] -> None
        | i :: rest -> (
          if cancelled () then raise Cancelled;
          let c = rctx.r_cls.(i) in
          let sym =
            if c < 0 then Some 1
            else
              let j = rctx.r_pos.(i) and u = used.(c) in
              if j < u then Some 1
              else if j = u then Some (rctx.r_size.(c) - u)
              else None
          in
          match sym with
          | None ->
            (* Non-canonical fresh class member: its subtree is a renaming
               of the canonical representative's, already counted in that
               child's multiplier. *)
            acc.a_orbits <- acc.a_orbits + 1;
            kids live before rest
          | Some mult ->
            if rctx.r_sleep && z land (1 lsl i) <> 0 then begin
              (* Sleep-pruned: every continuation is trace-equivalent to a
                 lex-smaller explored schedule; credit the whole subtree. *)
              acc.a_sleep <- acc.a_sleep + 1;
              acc.a_count <-
                acc.a_count + (factor * mult * rctx.r_pow.(d - 1));
              kids live before rest
            end
            else begin
              let rt = if live then rt else replay prefix_rev in
              step rt i;
              acc.a_nodes <- acc.a_nodes + 1;
              let prefix_rev' = i :: prefix_rev in
              if every && not (prop rt) then Some (cex_of prefix_rev')
              else begin
                let z' =
                  if not rctx.r_sleep then 0
                  else begin
                    let zin = z lor before and m = ref 0 in
                    for q = 0 to n - 1 do
                      if
                        zin land (1 lsl q) <> 0
                        && Runtime.commute fp.(q) fp.(i)
                      then m := !m lor (1 lsl q)
                    done;
                    !m
                  end
                in
                let key =
                  match tbl with
                  | Some _ when d > 1 -> Some (Runtime.digest rt)
                  | _ -> None
                in
                let stored =
                  match (key, tbl) with
                  | Some k, Some table -> Hashtbl.find_opt table k
                  | _ -> None
                in
                match stored with
                | Some (raw, zs) when zs land lnot z' = 0 ->
                  acc.a_memo <- acc.a_memo + 1;
                  acc.a_count <- acc.a_count + (factor * mult * raw);
                  kids false (before lor (1 lsl i)) rest
                | _ ->
                  (* Miss, or the stored exploration slept on steps this
                     node may not skip: (re-)explore under the intersection
                     and tighten the entry. *)
                  let z_explore =
                    match stored with Some (_, zs) -> zs land z' | None -> z'
                  in
                  let fresh_member = c >= 0 && rctx.r_pos.(i) = used.(c) in
                  if fresh_member then used.(c) <- used.(c) + 1;
                  let count0 = acc.a_count in
                  let sub =
                    expand rt prefix_rev' (d - 1) ~branch:all ~z:z_explore
                      ~factor:(factor * mult)
                  in
                  if fresh_member then used.(c) <- used.(c) - 1;
                  (match sub with
                  | Some cex -> Some cex
                  | None ->
                    (match (key, tbl) with
                    | Some k, Some table ->
                      let fm = factor * mult in
                      Hashtbl.replace table k
                        ((acc.a_count - count0) / fm, z_explore)
                    | _ -> ());
                    kids false (before lor (1 lsl i)) rest)
              end
            end)
      in
      kids true 0 branch
    end
  in
  let result =
    try
      let rt = build_fresh () in
      peek_all rt;
      match expand rt [] depth ~branch:tops ~z:0 ~factor:1 with
      | Some cex -> W_cex cex
      | None -> W_ok
    with Cancelled -> W_aborted
  in
  destroy_cur ();
  result

(* ------------------------------------------------------------------ *)
(* Top-level driver: optional domain sharding over the first-step pid. *)

let never_cancel () = false

let run ?(domains = 1) ?(memo = true) ?(mode = Every) ?reduce
    ?(cancel = never_cancel) ~build ~pids ~depth ~prop () =
  let sp = Obs.Span.start ~name:"exhaustive.run" () in
  (* [ext] records that the caller's [cancel] fired (as opposed to the
     internal first-counterexample-wins flag between domain workers): only
     then does the whole run raise [Cancelled] instead of reporting. *)
  let ext = Atomic.make false in
  let cancel () =
    Atomic.get ext
    ||
    if cancel () then begin
      Atomic.set ext true;
      true
    end
    else false
  in
  let explore =
    match reduce with
    | Some r when r.sleep || r.symmetry <> [] ->
      let rctx = compile_reduction ~pids ~depth r in
      fun ~cancelled ~tops acc ->
        explore_reduced ~build ~depth ~prop ~mode ~memo ~rctx ~cancelled
          ~tops acc
    | Some _ | None ->
      fun ~cancelled ~tops acc ->
        explore ~build ~pids ~depth ~prop ~mode ~memo ~cancelled ~tops acc
  in
  let n_tops = List.length pids in
  let n_workers = max 1 (min domains n_tops) in
  let verdict, accs =
    if n_workers <= 1 || depth = 0 then begin
      let acc = fresh_acc () in
      let r = explore ~cancelled:cancel ~tops:pids acc in
      ( (match r with
        | W_cex cex -> Counterexample cex
        | W_ok | W_aborted -> Ok acc.a_count),
        [ acc ] )
    end
    else begin
      (* Shard the top-level branching factor: worker [w] owns the subtrees
         whose first step is one of [tops.(w)]. Workers run independent DFSs
         (each with its own memo table and runtimes); a found counterexample
         raises a shared flag that the others poll, so the join is
         first-counterexample-wins. *)
      let tops = Array.make n_workers [] in
      List.iteri
        (fun i p -> tops.(i mod n_workers) <- p :: tops.(i mod n_workers))
        pids;
      let tops = Array.map List.rev tops in
      let flag = Atomic.make false in
      let cancelled () = Atomic.get flag || cancel () in
      let accs = Array.init n_workers (fun _ -> fresh_acc ()) in
      let worker w () =
        let r = explore ~cancelled ~tops:tops.(w) accs.(w) in
        (match r with W_cex _ -> Atomic.set flag true | W_ok | W_aborted -> ());
        r
      in
      let ds = Array.init n_workers (fun w -> Domain.spawn (worker w)) in
      let results = Array.map Domain.join ds in
      let cex =
        Array.to_list results
        |> List.filter_map (function W_cex c -> Some c | _ -> None)
        |> function
        | [] -> None
        | cexs ->
          (* Deterministic tie-break when several workers report: prefer the
             counterexample whose first step comes earliest in [pids]. *)
          let rank = function
            | [] -> max_int
            | p :: _ ->
              let rec idx i = function
                | [] -> max_int
                | q :: qs -> if Pid.equal p q then i else idx (i + 1) qs
              in
              idx 0 pids
          in
          Some
            (List.fold_left
               (fun best c -> if rank c < rank best then c else best)
               (List.hd cexs) (List.tl cexs))
      in
      let total =
        Array.fold_left (fun n a -> n + a.a_count) 0 accs
      in
      ( (match cex with Some c -> Counterexample c | None -> Ok total),
        Array.to_list accs )
    end
  in
  if Atomic.get ext then raise Cancelled;
  (verdict, stats_of ~wall_s:(Obs.Span.elapsed_s sp) accs)

(* ------------------------------------------------------------------ *)
(* The replay-from-scratch baseline — the pre-incremental engine, kept (with
   the same instrumentation) as differential-testing oracle and benchmark
   yardstick. *)

let run_replay ?(mode = Every) ~build ~pids ~depth ~prop () =
  let sp = Obs.Span.start ~name:"exhaustive.run_replay" () in
  let acc = fresh_acc () in
  let every = mode = Every in
  let replay sched =
    acc.a_replays <- acc.a_replays + 1;
    acc.a_built <- acc.a_built + 1;
    let rt = build () in
    let rec go = function
      | [] -> true
      | p :: rest ->
        Runtime.step rt p;
        acc.a_steps <- acc.a_steps + 1;
        if rest = [] && not (prop rt) then false else go rest
    in
    let ok = go sched in
    Runtime.destroy rt;
    ok
  in
  let rec go prefix d =
    if d = 0 then begin
      acc.a_count <- acc.a_count + 1;
      if every then None
      else
        let sched = List.rev prefix in
        if replay sched then None else Some sched
    end
    else
      let rec try_pids = function
        | [] -> None
        | p :: rest ->
          acc.a_nodes <- acc.a_nodes + 1;
          let sched = List.rev (p :: prefix) in
          if every && not (replay sched) then Some sched
          else begin
            match go (p :: prefix) (d - 1) with
            | Some cex -> Some cex
            | None -> try_pids rest
          end
      in
      try_pids pids
  in
  let verdict =
    match go [] depth with
    | Some cex -> Counterexample cex
    | None -> Ok acc.a_count
  in
  (verdict, stats_of ~wall_s:(Obs.Span.elapsed_s sp) [ acc ])

(* ------------------------------------------------------------------ *)

let replay_ok ?(mode = Every) ~build ~prop sched =
  let every = mode = Every in
  let rt = build () in
  let rec go = function
    | [] -> true
    | p :: rest ->
      Runtime.step rt p;
      if (every || rest = []) && not (prop rt) then false else go rest
  in
  let ok = go sched in
  Runtime.destroy rt;
  ok

let check ~build ~pids ~depth ~prop =
  fst (run ~mode:Every ~build ~pids ~depth ~prop ())

let check_final ~build ~pids ~depth ~prop =
  fst (run ~mode:Final ~build ~pids ~depth ~prop ())
