type verdict = Ok of int | Counterexample of Pid.t list
type mode = Every | Final

type stats = {
  nodes : int;
  steps_executed : int;
  replays : int;
  runtimes_built : int;
  memo_hits : int;
  sleep_pruned : int;
  orbits_collapsed : int;
  wall_s : float;
}

let pp_stats ppf s =
  Fmt.pf ppf
    "nodes %d, steps %d, replays %d, builds %d, memo-hits %d, sleep-pruned \
     %d, orbits-collapsed %d, %.3fs"
    s.nodes s.steps_executed s.replays s.runtimes_built s.memo_hits
    s.sleep_pruned s.orbits_collapsed s.wall_s

let stats_json s =
  Obs.Json.Obj
    [
      ("nodes", Obs.Json.Int s.nodes);
      ("steps_executed", Obs.Json.Int s.steps_executed);
      ("replays", Obs.Json.Int s.replays);
      ("runtimes_built", Obs.Json.Int s.runtimes_built);
      ("memo_hits", Obs.Json.Int s.memo_hits);
      ("sleep_pruned", Obs.Json.Int s.sleep_pruned);
      ("orbits_collapsed", Obs.Json.Int s.orbits_collapsed);
      ("wall_s", Obs.Json.Float s.wall_s);
    ]

let zero_stats =
  { nodes = 0; steps_executed = 0; replays = 0; runtimes_built = 0;
    memo_hits = 0; sleep_pruned = 0; orbits_collapsed = 0; wall_s = 0. }

let merge_stats a b =
  {
    nodes = a.nodes + b.nodes;
    steps_executed = a.steps_executed + b.steps_executed;
    replays = a.replays + b.replays;
    runtimes_built = a.runtimes_built + b.runtimes_built;
    memo_hits = a.memo_hits + b.memo_hits;
    sleep_pruned = a.sleep_pruned + b.sleep_pruned;
    orbits_collapsed = a.orbits_collapsed + b.orbits_collapsed;
    wall_s = a.wall_s +. b.wall_s;
  }

let stats_of_json j =
  let ( let* ) = Stdlib.Result.bind in
  let int_field name =
    match Obs.Json.member name j with
    | Some v -> (
      match Obs.Json.to_int_opt v with
      | Some n -> Stdlib.Ok n
      | None ->
        Stdlib.Error (Printf.sprintf "stats field %S is not an integer" name))
    | None -> Stdlib.Error (Printf.sprintf "missing stats field %S" name)
  in
  let* nodes = int_field "nodes" in
  let* steps_executed = int_field "steps_executed" in
  let* replays = int_field "replays" in
  let* runtimes_built = int_field "runtimes_built" in
  let* memo_hits = int_field "memo_hits" in
  let* sleep_pruned = int_field "sleep_pruned" in
  let* orbits_collapsed = int_field "orbits_collapsed" in
  let* wall_s =
    match Obs.Json.member "wall_s" j with
    | Some v -> (
      match Obs.Json.to_float_opt v with
      | Some f -> Stdlib.Ok f
      | None -> Stdlib.Error "stats field \"wall_s\" is not a number")
    | None -> Stdlib.Error "missing stats field \"wall_s\""
  in
  Stdlib.Ok
    { nodes; steps_executed; replays; runtimes_built; memo_hits; sleep_pruned;
      orbits_collapsed; wall_s }

let record_stats ?(labels = []) reg s =
  let c name v = Obs.Metrics.incr ~by:v (Obs.Metrics.counter reg ~labels name) in
  c "exhaustive.nodes" s.nodes;
  c "exhaustive.steps_executed" s.steps_executed;
  c "exhaustive.replays" s.replays;
  c "exhaustive.runtimes_built" s.runtimes_built;
  c "exhaustive.memo_hits" s.memo_hits;
  c "exhaustive.sleep_pruned" s.sleep_pruned;
  c "exhaustive.orbits_collapsed" s.orbits_collapsed;
  Obs.Metrics.set (Obs.Metrics.gauge reg ~labels "exhaustive.wall_s") s.wall_s

(* Mutable per-worker accumulator; summed into a [stats] after the run. *)
type acc = {
  mutable a_nodes : int;
  mutable a_steps : int;
  mutable a_replays : int;
  mutable a_built : int;
  mutable a_memo : int;
  mutable a_sleep : int;
  mutable a_orbits : int;
  mutable a_count : int;  (* complete schedules accounted for *)
}

let fresh_acc () =
  { a_nodes = 0; a_steps = 0; a_replays = 0; a_built = 0; a_memo = 0;
    a_sleep = 0; a_orbits = 0; a_count = 0 }

let stats_of ~wall_s accs =
  List.fold_left
    (fun s a ->
      {
        s with
        nodes = s.nodes + a.a_nodes;
        steps_executed = s.steps_executed + a.a_steps;
        replays = s.replays + a.a_replays;
        runtimes_built = s.runtimes_built + a.a_built;
        memo_hits = s.memo_hits + a.a_memo;
        sleep_pruned = s.sleep_pruned + a.a_sleep;
        orbits_collapsed = s.orbits_collapsed + a.a_orbits;
      })
    { nodes = 0; steps_executed = 0; replays = 0; runtimes_built = 0;
      memo_hits = 0; sleep_pruned = 0; orbits_collapsed = 0; wall_s }
    accs

(* Lexicographic order on schedules, by position in [pids]; a schedule that
   is a strict prefix of another orders first (its violation is met earlier
   in DFS order, which visits the shallower node before any extension). *)
let sched_le ~pids a b =
  let pos p =
    let rec go i = function
      | [] -> max_int
      | q :: qs -> if Pid.equal p q then i else go (i + 1) qs
    in
    go 0 pids
  in
  let rec le xs ys =
    match (xs, ys) with
    | [], _ -> true
    | _ :: _, [] -> false
    | x :: xs', y :: ys' ->
      let cx = pos x and cy = pos y in
      if cx < cy then true else if cx > cy then false else le xs' ys'
  in
  le a b

let merge_verdicts ~pids a b =
  match (a, b) with
  | Ok m, Ok n -> Ok (m + n)
  | (Counterexample _ as c), Ok _ | Ok _, (Counterexample _ as c) -> c
  | Counterexample x, Counterexample y ->
    Counterexample (if sched_le ~pids x y then x else y)

exception Cancelled

type worker_result = W_ok | W_cex of Pid.t list | W_aborted

(* ------------------------------------------------------------------ *)
(* The incremental engine.

   One live runtime is kept per DFS path: descending into the first child of
   a node is a single [Runtime.step]; only when the DFS moves to a sibling is
   the runtime rebuilt and the prefix replayed (runtimes hold effect
   continuations, so they cannot be cloned — replay-on-backtrack keeps the
   enumeration exact while the descent itself costs amortized O(1) steps per
   node, against O(depth) for replay-from-scratch at every node).

   On top, a state-fingerprint memo ({!Runtime.digest}) collapses converging
   interleavings: when a node's state has been seen before at the same clock,
   its whole subtree is skipped and the recorded number of complete schedules
   below it is credited, so reported schedule counts stay exact. Only
   fully-verified (counterexample-free) subtrees are memoized. *)

(* [?prefix0] starts the DFS below a fixed schedule prefix (executed without
   property checks — the caller has already verified it): the engine then
   enumerates exactly the subtree of extensions, which is how a frontier job
   from {!split} is replayed on a worker. The default keeps the whole-tree
   behaviour byte-identical. *)
let explore ?(prefix0 = []) ~build ~pids ~depth ~prop ~mode ~memo ~cancelled
    ~tops acc =
  let every = mode = Every in
  let tbl = if memo then Some (Hashtbl.create 4096) else None in
  let cur = ref None in
  let destroy_cur () =
    match !cur with
    | Some rt ->
      Runtime.destroy rt;
      cur := None
    | None -> ()
  in
  let build_fresh () =
    acc.a_built <- acc.a_built + 1;
    let rt = build () in
    cur := Some rt;
    rt
  in
  let step rt p =
    Runtime.step rt p;
    acc.a_steps <- acc.a_steps + 1
  in
  let replay prefix_rev =
    destroy_cur ();
    acc.a_replays <- acc.a_replays + 1;
    let rt = build_fresh () in
    List.iter (step rt) (List.rev prefix_rev);
    rt
  in
  (* [expand rt prefix_rev d ~branch]: [rt] is live at the state reached by
     [prefix_rev]; explore all extensions by up to [d] more steps, branching
     over [branch] at this node and over [pids] below. *)
  let rec expand rt prefix_rev d ~branch =
    if d = 0 then begin
      acc.a_count <- acc.a_count + 1;
      if (not every) && prefix_rev <> [] && not (prop rt) then
        Some (List.rev prefix_rev)
      else None
    end
    else
      let rec kids live = function
        | [] -> None
        | p :: rest ->
          if cancelled () then raise Cancelled;
          let rt = if live then rt else replay prefix_rev in
          step rt p;
          acc.a_nodes <- acc.a_nodes + 1;
          let prefix_rev' = p :: prefix_rev in
          if every && not (prop rt) then Some (List.rev prefix_rev')
          else begin
            let key =
              match tbl with
              | Some _ when d > 1 -> Some (Runtime.digest rt)
              | _ -> None
            in
            match (key, tbl) with
            | Some k, Some table when Hashtbl.mem table k ->
              acc.a_memo <- acc.a_memo + 1;
              acc.a_count <- acc.a_count + Hashtbl.find table k;
              kids false rest
            | _ -> (
              let before = acc.a_count in
              match expand rt prefix_rev' (d - 1) ~branch:pids with
              | Some cex -> Some cex
              | None ->
                (match (key, tbl) with
                | Some k, Some table ->
                  Hashtbl.replace table k (acc.a_count - before)
                | _ -> ());
                kids false rest)
          end
      in
      kids true branch
  in
  let result =
    try
      let rt = build_fresh () in
      List.iter (step rt) prefix0;
      match
        expand rt (List.rev prefix0)
          (depth - List.length prefix0)
          ~branch:tops
      with
      | Some cex -> W_cex cex
      | None -> W_ok
    with Cancelled -> W_aborted
  in
  destroy_cur ();
  result

(* ------------------------------------------------------------------ *)
(* Sound state-space reduction: sleep-set partial-order reduction over the
   step-footprint independence relation ({!Runtime.footprint}), and symmetry
   reduction over caller-declared classes of interchangeable pids.

   Both layers prune whole subtrees while crediting exactly the number of
   complete schedules the subtree holds, so reported counts stay |pids|^depth
   — identical to the unreduced engines, which the differential suite
   checks.

   Soundness notes (the load-bearing arguments, in one place):

   - Footprint stability: a parked operation names its registers up front and
     cannot be changed by other processes' steps, so the independence of two
     processes' next steps, evaluated at a node, holds across any
     interleaving of other processes below that node. Time-sensitive steps
     (FD queries; any step of a live S-process that crashes inside the
     pattern) are [F_timedep] and never commute, because every step advances
     the clock.

   - Sleep sets prune transitions, not states: every state reachable in the
     full tree at a given clock is still visited (classical result for
     acyclic spaces), so [Every]-mode per-prefix checking is preserved. The
     lexicographically least violating schedule is never pruned — a pruned
     child is trace-equivalent to a lex-smaller schedule, so the first
     counterexample found equals the unreduced engines' (DFS order is lex
     order).

   - Sleep × memo: a memoized subtree was verified minus what its sleep set
     pruned, so an entry records the sleep mask it was explored under and a
     hit is taken only when stored ⊆ current (the stored exploration skipped
     nothing the current node is not itself entitled to skip). Otherwise the
     subtree is re-explored under the intersection and the entry tightened —
     monotone, so this converges.

   - Symmetry: at any state, the not-yet-scheduled members of a class are in
     identical (peeked) local states, so continuations that differ only by
     renaming them are prop-equivalent; exploring the first unused member
     with multiplier (m - u) covers all m - u renamings. Per class the
     explored children's multipliers sum to the class size, keeping counts
     exact. Which members a prefix has used is digest-determined (scheds
     counters), so memoized counts transfer between digest-equal nodes.

   - Peeking: footprints force Fresh processes to their first suspension
     point. That is behaviour-neutral but digest-visible, so the reduced
     engine peeks every pid after every step and replay — digests compared
     within its (private, per-worker) memo are taken at uniform peek points.
     The unreduced paths never peek and are byte-for-byte unchanged. *)

type reduction = { sleep : bool; symmetry : Pid.t list list }

let no_reduction = { sleep = false; symmetry = [] }

(* Compiled, read-only reduction context, shared across workers. *)
type rctx = {
  r_sleep : bool;
  r_pids : Pid.t array;
  r_cls : int array;  (* pid index -> class id, -1 if in no class *)
  r_pos : int array;  (* pid index -> canonical position within its class *)
  r_size : int array;  (* class id -> member count *)
  r_pow : int array;  (* r_pow.(d) = |pids|^d *)
}

let compile_reduction ~pids ~depth (r : reduction) =
  let arr = Array.of_list pids in
  let n = Array.length arr in
  let idx p =
    let rec go i =
      if i = n then
        invalid_arg "Exhaustive.run: symmetry class member not in pids"
      else if Pid.equal arr.(i) p then i
      else go (i + 1)
    in
    go 0
  in
  let cls = Array.make n (-1) and pos = Array.make n (-1) in
  let size =
    List.mapi
      (fun c members ->
        let is = List.sort compare (List.map idx members) in
        (* Canonical order within a class is pids order, so the canonical
           representative of an orbit is also its lex-least schedule. *)
        List.iteri
          (fun j i ->
            if cls.(i) <> -1 then
              invalid_arg "Exhaustive.run: symmetry classes overlap";
            cls.(i) <- c;
            pos.(i) <- j)
          is;
        List.length is)
      r.symmetry
  in
  let pow = Array.make (depth + 1) 1 in
  for d = 1 to depth do
    pow.(d) <- pow.(d - 1) * n
  done;
  { r_sleep = r.sleep; r_pids = arr; r_cls = cls; r_pos = pos;
    r_size = Array.of_list size; r_pow = pow }

(* [?prefix0]/[?z0]/[?factor0]/[?used0] seed the DFS at a frontier node: the
   prefix is replayed without property checks, then the subtree is expanded
   under the given sleep mask, orbit-multiplier product and per-class
   used-member counts — exactly the state the whole-tree engine is in when it
   reaches that node, so credited counts and counterexamples compose. The
   defaults (empty prefix, empty mask, factor 1, all-zero used counts) are
   the whole-tree run and leave its behaviour byte-identical. *)
let explore_reduced ?(prefix0 = []) ?(z0 = 0) ?(factor0 = 1) ?used0 ~build
    ~depth ~prop ~mode ~memo ~rctx ~cancelled ~tops acc =
  let every = mode = Every in
  let n = Array.length rctx.r_pids in
  let pidx p =
    let rec go i = if Pid.equal rctx.r_pids.(i) p then i else go (i + 1) in
    go 0
  in
  let tops = List.map pidx tops in
  let all = List.init n Fun.id in
  (* memo entry: (complete schedules below, divided by the factor in force
     when the subtree was entered; sleep mask the subtree was explored
     under). *)
  let tbl : (string, int * int) Hashtbl.t option =
    if memo then Some (Hashtbl.create 4096) else None
  in
  let used = Array.map (fun _ -> 0) rctx.r_size in
  (match used0 with
  | None -> ()
  | Some u ->
    if Array.length u <> Array.length used then
      invalid_arg "Exhaustive: used-count list does not match symmetry classes";
    Array.blit u 0 used 0 (Array.length u));
  let cur = ref None in
  let destroy_cur () =
    match !cur with
    | Some rt ->
      Runtime.destroy rt;
      cur := None
    | None -> ()
  in
  let peek_all rt = Array.iter (Runtime.peek rt) rctx.r_pids in
  let build_fresh () =
    acc.a_built <- acc.a_built + 1;
    let rt = build () in
    cur := Some rt;
    rt
  in
  let step rt i =
    Runtime.step rt rctx.r_pids.(i);
    acc.a_steps <- acc.a_steps + 1;
    peek_all rt
  in
  let replay prefix_rev =
    destroy_cur ();
    acc.a_replays <- acc.a_replays + 1;
    let rt = build_fresh () in
    List.iter (step rt) (List.rev prefix_rev);
    peek_all rt;
    rt
  in
  let cex_of prefix_rev = List.rev_map (fun i -> rctx.r_pids.(i)) prefix_rev in
  let rec expand rt prefix_rev d ~branch ~z ~factor =
    if d = 0 then begin
      acc.a_count <- acc.a_count + factor;
      if (not every) && prefix_rev <> [] && not (prop rt) then
        Some (cex_of prefix_rev)
      else None
    end
    else begin
      (* Footprints of everyone's next step at this node: stable below it,
         valid after replays (which reconstruct this very state). *)
      let fp = Array.map (Runtime.footprint rt) rctx.r_pids in
      let rec kids live before = function
        | [] -> None
        | i :: rest -> (
          if cancelled () then raise Cancelled;
          let c = rctx.r_cls.(i) in
          let sym =
            if c < 0 then Some 1
            else
              let j = rctx.r_pos.(i) and u = used.(c) in
              if j < u then Some 1
              else if j = u then Some (rctx.r_size.(c) - u)
              else None
          in
          match sym with
          | None ->
            (* Non-canonical fresh class member: its subtree is a renaming
               of the canonical representative's, already counted in that
               child's multiplier. *)
            acc.a_orbits <- acc.a_orbits + 1;
            kids live before rest
          | Some mult ->
            if rctx.r_sleep && z land (1 lsl i) <> 0 then begin
              (* Sleep-pruned: every continuation is trace-equivalent to a
                 lex-smaller explored schedule; credit the whole subtree. *)
              acc.a_sleep <- acc.a_sleep + 1;
              acc.a_count <-
                acc.a_count + (factor * mult * rctx.r_pow.(d - 1));
              kids live before rest
            end
            else begin
              let rt = if live then rt else replay prefix_rev in
              step rt i;
              acc.a_nodes <- acc.a_nodes + 1;
              let prefix_rev' = i :: prefix_rev in
              if every && not (prop rt) then Some (cex_of prefix_rev')
              else begin
                let z' =
                  if not rctx.r_sleep then 0
                  else begin
                    let zin = z lor before and m = ref 0 in
                    for q = 0 to n - 1 do
                      if
                        zin land (1 lsl q) <> 0
                        && Runtime.commute fp.(q) fp.(i)
                      then m := !m lor (1 lsl q)
                    done;
                    !m
                  end
                in
                let key =
                  match tbl with
                  | Some _ when d > 1 -> Some (Runtime.digest rt)
                  | _ -> None
                in
                let stored =
                  match (key, tbl) with
                  | Some k, Some table -> Hashtbl.find_opt table k
                  | _ -> None
                in
                match stored with
                | Some (raw, zs) when zs land lnot z' = 0 ->
                  acc.a_memo <- acc.a_memo + 1;
                  acc.a_count <- acc.a_count + (factor * mult * raw);
                  kids false (before lor (1 lsl i)) rest
                | _ ->
                  (* Miss, or the stored exploration slept on steps this
                     node may not skip: (re-)explore under the intersection
                     and tighten the entry. *)
                  let z_explore =
                    match stored with Some (_, zs) -> zs land z' | None -> z'
                  in
                  let fresh_member = c >= 0 && rctx.r_pos.(i) = used.(c) in
                  if fresh_member then used.(c) <- used.(c) + 1;
                  let count0 = acc.a_count in
                  let sub =
                    expand rt prefix_rev' (d - 1) ~branch:all ~z:z_explore
                      ~factor:(factor * mult)
                  in
                  if fresh_member then used.(c) <- used.(c) - 1;
                  (match sub with
                  | Some cex -> Some cex
                  | None ->
                    (match (key, tbl) with
                    | Some k, Some table ->
                      let fm = factor * mult in
                      Hashtbl.replace table k
                        ((acc.a_count - count0) / fm, z_explore)
                    | _ -> ());
                    kids false (before lor (1 lsl i)) rest)
              end
            end)
      in
      kids true 0 branch
    end
  in
  let result =
    try
      let rt = build_fresh () in
      peek_all rt;
      let pfx = List.map pidx prefix0 in
      List.iter (step rt) pfx;
      match
        expand rt (List.rev pfx)
          (depth - List.length pfx)
          ~branch:tops ~z:z0 ~factor:factor0
      with
      | Some cex -> W_cex cex
      | None -> W_ok
    with Cancelled -> W_aborted
  in
  destroy_cur ();
  result

(* ------------------------------------------------------------------ *)
(* Top-level driver: optional domain sharding over the first-step pid. *)

let never_cancel () = false

let run ?(domains = 1) ?(memo = true) ?(mode = Every) ?reduce
    ?(cancel = never_cancel) ~build ~pids ~depth ~prop () =
  let sp = Obs.Span.start ~name:"exhaustive.run" () in
  (* [ext] records that the caller's [cancel] fired (as opposed to the
     internal first-counterexample-wins flag between domain workers): only
     then does the whole run raise [Cancelled] instead of reporting. *)
  let ext = Atomic.make false in
  let cancel () =
    Atomic.get ext
    ||
    if cancel () then begin
      Atomic.set ext true;
      true
    end
    else false
  in
  let explore =
    match reduce with
    | Some r when r.sleep || r.symmetry <> [] ->
      let rctx = compile_reduction ~pids ~depth r in
      fun ~cancelled ~tops acc ->
        explore_reduced ~build ~depth ~prop ~mode ~memo ~rctx ~cancelled
          ~tops acc
    | Some _ | None ->
      fun ~cancelled ~tops acc ->
        explore ~build ~pids ~depth ~prop ~mode ~memo ~cancelled ~tops acc
  in
  let n_tops = List.length pids in
  let n_workers = max 1 (min domains n_tops) in
  let verdict, accs =
    if n_workers <= 1 || depth = 0 then begin
      let acc = fresh_acc () in
      let r = explore ~cancelled:cancel ~tops:pids acc in
      ( (match r with
        | W_cex cex -> Counterexample cex
        | W_ok | W_aborted -> Ok acc.a_count),
        [ acc ] )
    end
    else begin
      (* Shard the top-level branching factor: worker [w] owns the subtrees
         whose first step is one of [tops.(w)]. Workers run independent DFSs
         (each with its own memo table and runtimes); a found counterexample
         raises a shared flag that the others poll, so the join is
         first-counterexample-wins. *)
      let tops = Array.make n_workers [] in
      List.iteri
        (fun i p -> tops.(i mod n_workers) <- p :: tops.(i mod n_workers))
        pids;
      let tops = Array.map List.rev tops in
      let flag = Atomic.make false in
      let cancelled () = Atomic.get flag || cancel () in
      let accs = Array.init n_workers (fun _ -> fresh_acc ()) in
      let worker w () =
        let r = explore ~cancelled ~tops:tops.(w) accs.(w) in
        (match r with W_cex _ -> Atomic.set flag true | W_ok | W_aborted -> ());
        r
      in
      let ds = Array.init n_workers (fun w -> Domain.spawn (worker w)) in
      let results = Array.map Domain.join ds in
      let cex =
        Array.to_list results
        |> List.filter_map (function W_cex c -> Some c | _ -> None)
        |> function
        | [] -> None
        | cexs ->
          (* Deterministic tie-break when several workers report: prefer the
             counterexample whose first step comes earliest in [pids]. *)
          let rank = function
            | [] -> max_int
            | p :: _ ->
              let rec idx i = function
                | [] -> max_int
                | q :: qs -> if Pid.equal p q then i else idx (i + 1) qs
              in
              idx 0 pids
          in
          Some
            (List.fold_left
               (fun best c -> if rank c < rank best then c else best)
               (List.hd cexs) (List.tl cexs))
      in
      let total =
        Array.fold_left (fun n a -> n + a.a_count) 0 accs
      in
      ( (match cex with Some c -> Counterexample c | None -> Ok total),
        Array.to_list accs )
    end
  in
  if Atomic.get ext then raise Cancelled;
  (verdict, stats_of ~wall_s:(Obs.Span.elapsed_s sp) accs)

(* ------------------------------------------------------------------ *)
(* Frontier splitting: the work-distribution layer.

   [split] explores the tree only down to [split_depth] and emits each
   frontier node as a self-contained job: the schedule prefix plus exactly
   the reduction context the whole-tree engine carries when it enters that
   node — sleep mask, orbit-multiplier product, per-class used counts.
   [run_subtree] re-enters the engine from that context (private memo, same
   credited-count rules), so

     split + run_subtree over every job + merge  =  run

   for verdicts and credited counts, by construction rather than by
   approximation:

   - subtrees pruned ABOVE the frontier (sleep) are credited by the splitter
     itself into [fr_pruned] with the engine's own formula, and orbit
     collapses above the frontier shrink the job list exactly as they shrink
     the engine's branching — the surviving jobs' factors sum the orbits
     back in;
   - subtrees pruned BELOW the frontier are credited inside each job by the
     unmodified engine code, seeded with the frontier context;
   - DFS order is lex order and jobs are emitted (and numbered) in DFS
     order, so every counterexample inside job i lex-precedes every one
     inside job j > i: folding {!merge_verdicts} over job results in any
     order returns the sequential engine's first counterexample.

   The splitter holds no memo: frontier prefixes are short, and skipping a
   digest-equal frontier node would need the remote job's count before it
   has run. In [Every] mode a prefix that violates the property stops the
   split — only the jobs already emitted (all lex-smaller) can hold an even
   smaller counterexample, so the coordinator still merges those. *)

type subtree = {
  sj_id : int;
  sj_prefix : Pid.t list;
  sj_sleep : Pid.t list;
  sj_factor : int;
  sj_used : int list;
}

type split_result = {
  fr_jobs : subtree list;
  fr_cex : Pid.t list option;
  fr_pruned : int;
  fr_stats : stats;
}

let split ?(mode = Every) ?reduce ~build ~pids ~depth ~split_depth ~prop () =
  if split_depth < 1 || split_depth >= depth then
    invalid_arg "Exhaustive.split: need 1 <= split_depth < depth";
  let sp = Obs.Span.start ~name:"exhaustive.split" () in
  let acc = fresh_acc () in
  let every = mode = Every in
  let jobs = ref [] in
  let next_id = ref 0 in
  let cur = ref None in
  let destroy_cur () =
    match !cur with
    | Some rt ->
      Runtime.destroy rt;
      cur := None
    | None -> ()
  in
  let build_fresh () =
    acc.a_built <- acc.a_built + 1;
    let rt = build () in
    cur := Some rt;
    rt
  in
  let cex =
    match reduce with
    | Some r when r.sleep || r.symmetry <> [] ->
      let rctx = compile_reduction ~pids ~depth r in
      let n = Array.length rctx.r_pids in
      let all = List.init n Fun.id in
      let used = Array.map (fun _ -> 0) rctx.r_size in
      let peek_all rt = Array.iter (Runtime.peek rt) rctx.r_pids in
      let step rt i =
        Runtime.step rt rctx.r_pids.(i);
        acc.a_steps <- acc.a_steps + 1;
        peek_all rt
      in
      let replay prefix_rev =
        destroy_cur ();
        acc.a_replays <- acc.a_replays + 1;
        let rt = build_fresh () in
        List.iter (step rt) (List.rev prefix_rev);
        peek_all rt;
        rt
      in
      let cex_of prefix_rev =
        List.rev_map (fun i -> rctx.r_pids.(i)) prefix_rev
      in
      let emit prefix_rev z factor =
        let id = !next_id in
        incr next_id;
        jobs :=
          {
            sj_id = id;
            sj_prefix = cex_of prefix_rev;
            sj_sleep =
              List.filter_map
                (fun i ->
                  if z land (1 lsl i) <> 0 then Some rctx.r_pids.(i) else None)
                all;
            sj_factor = factor;
            sj_used = Array.to_list used;
          }
          :: !jobs
      in
      (* The engine's [expand], with recursion below [split_depth] replaced
         by job emission; [k] is the prefix length at the node. *)
      let rec go rt prefix_rev k ~branch ~z ~factor =
        let d = depth - k in
        let fp = Array.map (Runtime.footprint rt) rctx.r_pids in
        let rec kids live before = function
          | [] -> None
          | i :: rest -> (
            let c = rctx.r_cls.(i) in
            let sym =
              if c < 0 then Some 1
              else
                let j = rctx.r_pos.(i) and u = used.(c) in
                if j < u then Some 1
                else if j = u then Some (rctx.r_size.(c) - u)
                else None
            in
            match sym with
            | None ->
              acc.a_orbits <- acc.a_orbits + 1;
              kids live before rest
            | Some mult ->
              if rctx.r_sleep && z land (1 lsl i) <> 0 then begin
                acc.a_sleep <- acc.a_sleep + 1;
                acc.a_count <-
                  acc.a_count + (factor * mult * rctx.r_pow.(d - 1));
                kids live before rest
              end
              else begin
                let rt = if live then rt else replay prefix_rev in
                step rt i;
                acc.a_nodes <- acc.a_nodes + 1;
                let prefix_rev' = i :: prefix_rev in
                if every && not (prop rt) then Some (cex_of prefix_rev')
                else begin
                  let z' =
                    if not rctx.r_sleep then 0
                    else begin
                      let zin = z lor before and m = ref 0 in
                      for q = 0 to n - 1 do
                        if
                          zin land (1 lsl q) <> 0
                          && Runtime.commute fp.(q) fp.(i)
                        then m := !m lor (1 lsl q)
                      done;
                      !m
                    end
                  in
                  let fresh_member = c >= 0 && rctx.r_pos.(i) = used.(c) in
                  if fresh_member then used.(c) <- used.(c) + 1;
                  let sub =
                    if k + 1 = split_depth then begin
                      emit prefix_rev' z' (factor * mult);
                      None
                    end
                    else
                      go rt prefix_rev' (k + 1) ~branch:all ~z:z'
                        ~factor:(factor * mult)
                  in
                  if fresh_member then used.(c) <- used.(c) - 1;
                  match sub with
                  | Some cex -> Some cex
                  | None -> kids false (before lor (1 lsl i)) rest
                end
              end)
        in
        kids true 0 branch
      in
      let rt = build_fresh () in
      peek_all rt;
      go rt [] 0 ~branch:all ~z:0 ~factor:1
    | Some _ | None ->
      let step rt p =
        Runtime.step rt p;
        acc.a_steps <- acc.a_steps + 1
      in
      let replay prefix_rev =
        destroy_cur ();
        acc.a_replays <- acc.a_replays + 1;
        let rt = build_fresh () in
        List.iter (step rt) (List.rev prefix_rev);
        rt
      in
      let emit prefix_rev =
        let id = !next_id in
        incr next_id;
        jobs :=
          { sj_id = id; sj_prefix = List.rev prefix_rev; sj_sleep = [];
            sj_factor = 1; sj_used = [] }
          :: !jobs
      in
      let rec go rt prefix_rev k =
        let rec kids live = function
          | [] -> None
          | p :: rest -> (
            let rt = if live then rt else replay prefix_rev in
            step rt p;
            acc.a_nodes <- acc.a_nodes + 1;
            let prefix_rev' = p :: prefix_rev in
            if every && not (prop rt) then Some (List.rev prefix_rev')
            else
              let sub =
                if k + 1 = split_depth then begin
                  emit prefix_rev';
                  None
                end
                else go rt prefix_rev' (k + 1)
              in
              match sub with
              | Some cex -> Some cex
              | None -> kids false rest)
        in
        kids true pids
      in
      let rt = build_fresh () in
      go rt [] 0
  in
  destroy_cur ();
  {
    fr_jobs = List.rev !jobs;
    fr_cex = cex;
    fr_pruned = acc.a_count;
    fr_stats = stats_of ~wall_s:(Obs.Span.elapsed_s sp) [ acc ];
  }

let run_subtree ?(memo = true) ?(mode = Every) ?reduce
    ?(cancel = never_cancel) ~build ~pids ~depth ~prop sj =
  let k = List.length sj.sj_prefix in
  if k < 1 || k >= depth then
    invalid_arg "Exhaustive.run_subtree: prefix length must be in [1, depth)";
  List.iter
    (fun p ->
      if not (List.exists (Pid.equal p) pids) then
        invalid_arg "Exhaustive.run_subtree: job pid not in pids")
    (sj.sj_prefix @ sj.sj_sleep);
  let sp = Obs.Span.start ~name:"exhaustive.run_subtree" () in
  let acc = fresh_acc () in
  let result =
    match reduce with
    | Some r when r.sleep || r.symmetry <> [] ->
      let rctx = compile_reduction ~pids ~depth r in
      let idx_of p =
        (* membership was validated above, so this terminates *)
        let rec go i = if Pid.equal rctx.r_pids.(i) p then i else go (i + 1) in
        go 0
      in
      let z0 =
        List.fold_left (fun z p -> z lor (1 lsl idx_of p)) 0 sj.sj_sleep
      in
      let used0 = Array.map (fun _ -> 0) rctx.r_size in
      (match sj.sj_used with
      | [] -> ()
      | us ->
        if List.length us <> Array.length used0 then
          invalid_arg
            "Exhaustive.run_subtree: used-count list does not match symmetry \
             classes";
        List.iteri
          (fun c u ->
            if u < 0 || u > rctx.r_size.(c) then
              invalid_arg
                "Exhaustive.run_subtree: used count exceeds class size";
            used0.(c) <- u)
          us);
      if sj.sj_factor < 1 then
        invalid_arg "Exhaustive.run_subtree: factor must be >= 1";
      explore_reduced ~prefix0:sj.sj_prefix ~z0 ~factor0:sj.sj_factor ~used0
        ~build ~depth ~prop ~mode ~memo ~rctx ~cancelled:cancel ~tops:pids acc
    | Some _ | None ->
      if sj.sj_factor <> 1 || sj.sj_sleep <> [] || sj.sj_used <> [] then
        invalid_arg
          "Exhaustive.run_subtree: job carries reduction context but no \
           reduction is enabled";
      explore ~prefix0:sj.sj_prefix ~build ~pids ~depth ~prop ~mode ~memo
        ~cancelled:cancel ~tops:pids acc
  in
  let verdict =
    match result with
    | W_cex cex -> Counterexample cex
    | W_ok -> Ok acc.a_count
    | W_aborted -> raise Cancelled
  in
  (verdict, stats_of ~wall_s:(Obs.Span.elapsed_s sp) [ acc ])

(* ------------------------------------------------ subtree wire format *)

let schedule_json ps =
  Obs.Json.List (List.map (fun p -> Obs.Json.Str (Pid.to_string p)) ps)

let schedule_of_json j =
  match j with
  | Obs.Json.List xs ->
    let rec go acc = function
      | [] -> Stdlib.Ok (List.rev acc)
      | Obs.Json.Str s :: rest -> (
        match Pid.of_string s with
        | Some p -> go (p :: acc) rest
        | None -> Stdlib.Error (Printf.sprintf "invalid pid %S in schedule" s))
      | _ -> Stdlib.Error "schedule holds a non-string pid"
    in
    go [] xs
  | _ -> Stdlib.Error "schedule is not a list"

let subtree_json sj =
  Obs.Json.Obj
    [
      ("id", Obs.Json.Int sj.sj_id);
      ("prefix", schedule_json sj.sj_prefix);
      ("sleep", schedule_json sj.sj_sleep);
      ("factor", Obs.Json.Int sj.sj_factor);
      ("used", Obs.Json.List (List.map (fun u -> Obs.Json.Int u) sj.sj_used));
    ]

let subtree_of_json j =
  let ( let* ) = Stdlib.Result.bind in
  let int_field name =
    match Obs.Json.member name j with
    | Some v -> (
      match Obs.Json.to_int_opt v with
      | Some n -> Stdlib.Ok n
      | None ->
        Stdlib.Error (Printf.sprintf "subtree field %S is not an integer" name))
    | None -> Stdlib.Error (Printf.sprintf "missing subtree field %S" name)
  in
  let pid_list_field name =
    match Obs.Json.member name j with
    | Some v -> (
      match schedule_of_json v with
      | Stdlib.Ok ps -> Stdlib.Ok ps
      | Stdlib.Error msg ->
        Stdlib.Error (Printf.sprintf "subtree field %S: %s" name msg))
    | None -> Stdlib.Error (Printf.sprintf "missing subtree field %S" name)
  in
  let* sj_id = int_field "id" in
  let* sj_prefix = pid_list_field "prefix" in
  let* sj_sleep = pid_list_field "sleep" in
  let* sj_factor = int_field "factor" in
  let* sj_used =
    match Obs.Json.member "used" j with
    | Some (Obs.Json.List xs) ->
      let rec go acc = function
        | [] -> Stdlib.Ok (List.rev acc)
        | x :: rest -> (
          match Obs.Json.to_int_opt x with
          | Some u -> go (u :: acc) rest
          | None -> Stdlib.Error "field \"used\" holds a non-integer")
      in
      go [] xs
    | Some _ -> Stdlib.Error "subtree field \"used\" is not a list"
    | None -> Stdlib.Error "missing subtree field \"used\""
  in
  if sj_id < 0 then Stdlib.Error "subtree field \"id\" must be >= 0"
  else if sj_prefix = [] then Stdlib.Error "subtree prefix is empty"
  else Stdlib.Ok { sj_id; sj_prefix; sj_sleep; sj_factor; sj_used }

(* ------------------------------------------------------------------ *)
(* The replay-from-scratch baseline — the pre-incremental engine, kept (with
   the same instrumentation) as differential-testing oracle and benchmark
   yardstick. *)

let run_replay ?(mode = Every) ~build ~pids ~depth ~prop () =
  let sp = Obs.Span.start ~name:"exhaustive.run_replay" () in
  let acc = fresh_acc () in
  let every = mode = Every in
  let replay sched =
    acc.a_replays <- acc.a_replays + 1;
    acc.a_built <- acc.a_built + 1;
    let rt = build () in
    let rec go = function
      | [] -> true
      | p :: rest ->
        Runtime.step rt p;
        acc.a_steps <- acc.a_steps + 1;
        if rest = [] && not (prop rt) then false else go rest
    in
    let ok = go sched in
    Runtime.destroy rt;
    ok
  in
  let rec go prefix d =
    if d = 0 then begin
      acc.a_count <- acc.a_count + 1;
      if every then None
      else
        let sched = List.rev prefix in
        if replay sched then None else Some sched
    end
    else
      let rec try_pids = function
        | [] -> None
        | p :: rest ->
          acc.a_nodes <- acc.a_nodes + 1;
          let sched = List.rev (p :: prefix) in
          if every && not (replay sched) then Some sched
          else begin
            match go (p :: prefix) (d - 1) with
            | Some cex -> Some cex
            | None -> try_pids rest
          end
      in
      try_pids pids
  in
  let verdict =
    match go [] depth with
    | Some cex -> Counterexample cex
    | None -> Ok acc.a_count
  in
  (verdict, stats_of ~wall_s:(Obs.Span.elapsed_s sp) [ acc ])

(* ------------------------------------------------------------------ *)

let replay_ok ?(mode = Every) ~build ~prop sched =
  let every = mode = Every in
  let rt = build () in
  let rec go = function
    | [] -> true
    | p :: rest ->
      Runtime.step rt p;
      if (every || rest = []) && not (prop rt) then false else go rest
  in
  let ok = go sched in
  Runtime.destroy rt;
  ok

let check ~build ~pids ~depth ~prop =
  fst (run ~mode:Every ~build ~pids ~depth ~prop ())

let check_final ~build ~pids ~depth ~prop =
  fst (run ~mode:Final ~build ~pids ~depth ~prop ())
