(** Run traces: the sequence of steps taken, for checkers and debugging. *)

type event =
  | Read of Memory.reg * Value.t
  | Write of Memory.reg * Value.t
  | Snapshot of Memory.reg array
  | Query of Value.t
  | Decide of Value.t
  | Null  (** step of a terminated/decided process, or skipped crashed process *)

type entry = { time : int; pid : Pid.t; event : event }
type t

val create : enabled:bool -> t
val enabled : t -> bool
val record : t -> time:int -> pid:Pid.t -> event -> unit
val entries : t -> entry list
(** In chronological order. Allocates a fresh list; for scans prefer {!iter}
    or {!fold}, which walk the underlying buffer without building one. *)

val length : t -> int

val get : t -> int -> entry
(** [get t i] is the [i]-th entry in chronological order, O(1). *)

val iter : t -> (entry -> unit) -> unit
val fold : t -> init:'a -> ('a -> entry -> 'a) -> 'a

val steps_of : t -> Pid.t -> entry list
(** Entries of one process, chronological: one filtered pass over the buffer. *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

(** {1 Structured-event export}

    Bridge into {!Obs}: the canonical event encoding of a step, shared by
    the live {!Runtime} instrumentation hook and the post-hoc export of a
    recorded trace — the two streams of the same run compare equal. *)

val event_to_obs : time:int -> pid:Pid.t -> event -> Obs.Event.t
(** [{"ev":"step","t":time,"pid":"p1","op":"write","reg":3,"value":"7"}] —
    [reg]/[regs]/[value] fields appear as applicable per event kind. *)

val to_events : t -> Obs.Event.t list
(** The whole recorded trace, chronological. *)

val emit : t -> Obs.Sink.t -> unit
(** Stream the recorded trace through a sink (post-hoc replay export). *)
