(** Run traces: the sequence of steps taken, for checkers and debugging. *)

type event =
  | Read of Memory.reg * Value.t
  | Write of Memory.reg * Value.t
  | Snapshot of Memory.reg array
  | Query of Value.t
  | Decide of Value.t
  | Null  (** step of a terminated/decided process, or skipped crashed process *)

type entry = { time : int; pid : Pid.t; event : event }
type t

val create : enabled:bool -> t
val enabled : t -> bool
val record : t -> time:int -> pid:Pid.t -> event -> unit
val entries : t -> entry list
(** In chronological order. Allocates a fresh list; for scans prefer {!iter}
    or {!fold}, which walk the underlying buffer without building one. *)

val length : t -> int

val get : t -> int -> entry
(** [get t i] is the [i]-th entry in chronological order, O(1). *)

val iter : t -> (entry -> unit) -> unit
val fold : t -> init:'a -> ('a -> entry -> 'a) -> 'a

val steps_of : t -> Pid.t -> entry list
(** Entries of one process, chronological: one filtered pass over the buffer. *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
