type t = C of int | S of int

let c i =
  assert (i >= 0);
  C i

let s i =
  assert (i >= 0);
  S i

let is_c = function C _ -> true | S _ -> false
let is_s = function S _ -> true | C _ -> false
let index = function C i | S i -> i

let compare a b =
  match (a, b) with
  | C i, C j | S i, S j -> Int.compare i j
  | C _, S _ -> -1
  | S _, C _ -> 1

let equal a b = compare a b = 0
let hash = function C i -> (2 * i) + 1 | S i -> 2 * i

let pp ppf = function
  | C i -> Fmt.pf ppf "p%d" (i + 1)
  | S i -> Fmt.pf ppf "q%d" (i + 1)

let to_string t = Fmt.str "%a" pp t

let of_string s =
  let n = String.length s in
  if n < 2 then None
  else
    match int_of_string_opt (String.sub s 1 (n - 1)) with
    | Some i when i >= 1 -> (
      match s.[0] with
      | 'p' -> Some (C (i - 1))
      | 'q' -> Some (S (i - 1))
      | _ -> None)
    | _ -> None
let all_c n_c = List.init n_c c
let all_s n_s = List.init n_s s
let all ~n_c ~n_s = all_c n_c @ all_s n_s
