type event =
  | Read of Memory.reg * Value.t
  | Write of Memory.reg * Value.t
  | Snapshot of Memory.reg array
  | Query of Value.t
  | Decide of Value.t
  | Null

type entry = { time : int; pid : Pid.t; event : event }

(* Entries live in a growable array in chronological order: recording is
   amortized O(1) and queries walk the buffer directly instead of re-reversing
   a cons list per call. *)
type t = { enabled : bool; mutable buf : entry array; mutable len : int }

let dummy = { time = 0; pid = Pid.C 0; event = Null }
let create ~enabled = { enabled; buf = [||]; len = 0 }
let enabled t = t.enabled

let record t ~time ~pid event =
  if t.enabled then begin
    if t.len = Array.length t.buf then begin
      let cap = max 64 (2 * Array.length t.buf) in
      let buf = Array.make cap dummy in
      Array.blit t.buf 0 buf 0 t.len;
      t.buf <- buf
    end;
    t.buf.(t.len) <- { time; pid; event };
    t.len <- t.len + 1
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get";
  t.buf.(i)

let iter t f =
  for i = 0 to t.len - 1 do
    f t.buf.(i)
  done

let fold t ~init f =
  let acc = ref init in
  iter t (fun e -> acc := f !acc e);
  !acc

let entries t = List.init t.len (fun i -> t.buf.(i))
let length t = t.len

let steps_of t pid =
  List.rev
    (fold t ~init:[] (fun acc e -> if Pid.equal e.pid pid then e :: acc else acc))

let pp_event ppf = function
  | Read (r, v) -> Fmt.pf ppf "read r%d -> %a" r Value.pp v
  | Write (r, v) -> Fmt.pf ppf "write r%d := %a" r Value.pp v
  | Snapshot rs -> Fmt.pf ppf "snapshot (%d regs)" (Array.length rs)
  | Query v -> Fmt.pf ppf "query -> %a" Value.pp v
  | Decide v -> Fmt.pf ppf "decide %a" Value.pp v
  | Null -> Fmt.string ppf "null"

let pp_entry ppf e =
  Fmt.pf ppf "[%4d] %a: %a" e.time Pid.pp e.pid pp_event e.event

let pp ppf t =
  let first = ref true in
  iter t (fun e ->
      if !first then first := false else Fmt.pf ppf "@\n";
      pp_entry ppf e)

(* --------------------------------------------- structured-event export *)

let value_json v = Obs.Json.Str (Fmt.str "%a" Value.pp v)

let event_to_obs ~time ~pid event =
  let base = [ ("t", Obs.Json.Int time); ("pid", Obs.Json.Str (Pid.to_string pid)) ] in
  let op kind extra = base @ (("op", Obs.Json.Str kind) :: extra) in
  let fields =
    match event with
    | Read (r, v) -> op "read" [ ("reg", Obs.Json.Int r); ("value", value_json v) ]
    | Write (r, v) -> op "write" [ ("reg", Obs.Json.Int r); ("value", value_json v) ]
    | Snapshot rs ->
      op "snapshot"
        [ ("regs", Obs.Json.List (Array.to_list (Array.map (fun r -> Obs.Json.Int r) rs))) ]
    | Query v -> op "query" [ ("value", value_json v) ]
    | Decide v -> op "decide" [ ("value", value_json v) ]
    | Null -> op "null" []
  in
  Obs.Event.make "step" fields

let to_events t =
  List.map (fun e -> event_to_obs ~time:e.time ~pid:e.pid e.event) (entries t)

let emit t sink =
  iter t (fun e -> Obs.Sink.emit sink (event_to_obs ~time:e.time ~pid:e.pid e.event))
