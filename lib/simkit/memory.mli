(** Simulated shared memory: a growable pool of atomic MWMR registers.

    Registers are plain integer handles into one [Memory.t]. Algorithm
    constructors allocate their registers up front (or lazily — growth is not
    observable by other processes until a write lands). All reads and writes
    go through the runtime, one atomic step each; the direct accessors below
    exist for the runtime itself and for checkers inspecting final states. *)

type t
type reg = int

val create : unit -> t

val alloc : t -> ?init:Value.t -> int -> reg array
(** [alloc mem n] allocates [n] fresh registers, initialized to [init]
    (default [Value.unit], playing the role of ⊥). *)

val alloc1 : t -> ?init:Value.t -> unit -> reg
val size : t -> int

val read : t -> reg -> Value.t
(** Direct read — runtime/checker use only; inside process code use
    {!Runtime.Op.read}. *)

val write : t -> reg -> Value.t -> unit
(** Direct write — runtime use only. *)

val read_many : t -> reg array -> Value.t array

val contents : t -> Value.t array
(** Copy of the allocated cells, in register order — a structural snapshot of
    the whole memory for state digests and debugging. *)

val overlaps : reg array -> reg array -> bool
(** Do two register footprints share a register? Linear scan — footprints
    are at most one snapshot wide. Used by the exhaustive checker's
    independence relation ({!Runtime.footprint}). *)

val hash : t -> int
(** Cheap content hash (FNV-1a over per-cell {!Value.hash}es). Two memories
    with equal {!contents} hash equal; collisions are possible, so use
    {!contents} where exactness matters. *)
