(** Schedule policies: who takes the next step.

    A policy inspects the runtime (time, statuses, decisions) and names the
    next process to step, or [None] to end the run early. Policies are
    stateful values — create a fresh one per run. Fair policies guarantee
    that every process (in particular every correct S-process) is scheduled
    at least once in every window of bounded length, which is the finite
    counterpart of the paper's fair runs. *)

type t = { policy_name : string; next : Runtime.t -> Pid.t option }

val round_robin : n_c:int -> n_s:int -> t
(** p_0 … p_{n_c-1} q_0 … q_{n_s-1}, repeated. Fair. *)

val shuffled_rounds : ?only:Pid.t list -> n_c:int -> n_s:int -> Random.State.t -> t
(** Repeats independent random permutations of all processes (or of [only]).
    Fair within each round. *)

val explicit : Pid.t list -> t
(** Follow the list, then stop. *)

val explicit_looping : Pid.t list -> t
(** Follow the list, repeated forever. Fair w.r.t. the listed processes. *)

val seq : t -> steps:int -> t -> t
(** [seq a ~steps b]: policy [a] for [steps] scheduling decisions, then [b]. *)

val filtered : (Runtime.t -> Pid.t -> bool) -> t -> t
(** Skip (re-draw) choices rejected by the predicate, up to a bounded number
    of re-draws per step; stops if the underlying policy stops. *)

val starve : Pid.t list -> until:int -> t -> t
(** Adversary: never schedule the given processes before time [until]. *)

val k_concurrent :
  ?mode:[ `Rounds | `Uniform ] ->
  k:int -> arrival:int list -> n_s:int -> Random.State.t -> t
(** Arrival controller producing k-concurrent runs (§2.2): C-processes are
    admitted in [arrival] order with at most [k] undecided participants at
    any time; a new process is admitted when an admitted one decides.
    [arrival] lists C-process indices; C-processes not listed never run.
    [`Rounds] (default) schedules S-processes and admitted C-processes in
    shuffled rounds (everyone moves in near-lockstep); [`Uniform] picks one
    uniformly at random per step — still fair in expectation, but allows
    the long stalls adversarial witnesses need. *)

val c_solo : int -> t
(** Only C-process [p_i], forever (solo run). *)

val s_first : n_c:int -> n_s:int -> s_steps:int -> Random.State.t -> t
(** Adversary flavour: S-processes only for [s_steps] steps, then shuffled
    rounds of everyone. *)

(** {1 Symmetry over interchangeable processes}

    Pure utilities over schedules-as-pid-lists, used by the exhaustive
    checker's symmetry reduction ({!Exhaustive}) and by the tests that
    validate its orbit accounting by enumeration. A {e symmetry class} is a
    list of pids declared interchangeable (same code, same input, no
    pid-dependent failure or FD behaviour); classes must be disjoint. *)

val canonicalize : classes:Pid.t list list -> Pid.t list -> Pid.t list
(** Orbit representative of a schedule under renaming within each class:
    class members are relabelled so that, per class, they first appear in
    class order. Idempotent; pids outside every class are untouched. *)

val orbit_size : classes:Pid.t list list -> Pid.t list -> int
(** Number of schedules in the orbit of the given schedule under renaming
    within each class: the product over classes of m!/(m-k)! where [m] is
    the class size and [k] the number of distinct class members the
    schedule touches. *)

(** {1 Driving a run} *)

type outcome = {
  total_steps : int;  (** scheduling decisions executed *)
  all_decided : bool;
  out_decisions : Value.t option array;
  exhausted : bool;  (** stopped because the budget ran out *)
}

val run : ?stop_when:(Runtime.t -> bool) -> Runtime.t -> t -> budget:int -> outcome
(** Drive the runtime with the policy until every C-process has decided,
    [stop_when] holds, the policy stops, or [budget] steps have executed.
    Does not destroy the runtime (callers may inspect then
    {!Runtime.destroy} it). *)
