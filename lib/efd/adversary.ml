module Failure = Simkit.Failure
module Sprng = Simkit.Sprng
module Op = Simkit.Runtime.Op
module Task = Tasklib.Task

type witness = {
  w_seed : int;
  w_desc : string;
  w_report : Run.report;
  w_pattern : Failure.pattern;
  w_input : Tasklib.Vectors.t;
  w_budget : int option;
  w_shrink_steps : int;
}

let pp_witness ppf w =
  Fmt.pf ppf "@[<v>witness (seed %d%s): %s@,%a@]" w.w_seed
    (if w.w_shrink_steps = 0 then ""
     else Fmt.str ", shrunk x%d" w.w_shrink_steps)
    w.w_desc Run.pp_report w.w_report

let describe r =
  match Run.violation_of_report r with
  | Some v -> Run.violation_desc v
  | None -> "no violation"

let sched_len w = w.w_report.Run.r_steps
let crash_count w = Failure.num_faulty w.w_pattern
let input_count w = Tasklib.Vectors.count w.w_input

let witness_json ?(labels = []) w =
  Obs.Json.Obj
    [
      ("labels", Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Str v)) labels));
      ("seed", Obs.Json.Int w.w_seed);
      ("desc", Obs.Json.Str w.w_desc);
      ("pattern", Obs.Json.Str (Fmt.str "%a" Failure.pp_pattern w.w_pattern));
      ("crashes", Obs.Json.Int (crash_count w));
      ("schedule_steps", Obs.Json.Int (sched_len w));
      ("input_participants", Obs.Json.Int (input_count w));
      ( "budget",
        match w.w_budget with Some b -> Obs.Json.Int b | None -> Obs.Json.Null );
      ("shrink_steps", Obs.Json.Int w.w_shrink_steps);
      ("report", Run.report_json w.w_report);
    ]

(* tag events with the run's task/algo/fd labels, seed label dropped (the
   seed is a per-event field where it matters) *)
let emit_via sink ~task ~algo ~fd ev fields =
  match sink with
  | None -> ()
  | Some sink ->
    let tags =
      List.map
        (fun (k, v) -> (k, Obs.Json.Str v))
        (Run.labels ~task ~algo ~fd ~seed:0)
      |> List.remove_assoc "seed"
    in
    Obs.Sink.emit sink (Obs.Event.make ev (tags @ fields))

let search ?budget ?(policy = Run.fair_policy) ?sink ~task ~algo ~fd ~env
    ~seeds () =
  let emit = emit_via sink ~task ~algo ~fd in
  (* dedupe, keeping first-occurrence order: a duplicated seed would re-run
     the identical trial and inflate the reported attempt count *)
  let seen = Hashtbl.create 16 in
  let seeds =
    List.filter
      (fun s ->
        if Hashtbl.mem seen s then false
        else begin
          Hashtbl.add seen s ();
          true
        end)
      seeds
  in
  let tried = ref 0 in
  let rec go = function
    | [] ->
      emit Obs.Event.Name.adversary_exhausted
        [ ("seeds_tried", Obs.Json.Int !tried) ];
      None
    | seed :: rest ->
      incr tried;
      let rng = Random.State.make [| seed; 0xadef |] in
      let pattern = env.Failure.sample rng ~horizon:2_000 in
      let input = Task.sample_input task rng in
      let r = Run.execute ?budget ~policy ~task ~algo ~fd ~pattern ~input ~seed () in
      if Run.ok r then go rest
      else begin
        let w =
          {
            w_seed = seed;
            w_desc = describe r;
            w_report = r;
            w_pattern = pattern;
            w_input = input;
            w_budget = budget;
            w_shrink_steps = 0;
          }
        in
        emit Obs.Event.Name.adversary_witness
          [
            ("seed", Obs.Json.Int seed);
            ("seeds_tried", Obs.Json.Int !tried);
            ("desc", Obs.Json.Str w.w_desc);
          ];
        Some w
      end
  in
  go seeds

let explain ?budget ?(policy = Run.fair_policy) ?(last = 40) ~task ~algo ~fd w
    ppf =
  let budget = match budget with Some _ as b -> b | None -> w.w_budget in
  let r =
    Run.execute ?budget ~record_trace:true ~policy ~task ~algo ~fd
      ~pattern:w.w_pattern ~input:w.w_input ~seed:w.w_seed ()
  in
  Fmt.pf ppf "@[<v>%a@,final steps of the violating interleaving:@," pp_witness
    { w with w_report = r };
  let entries = Simkit.Trace.entries (Option.get r.Run.r_trace) in
  let total = List.length entries in
  List.iteri
    (fun i e ->
      if i >= total - last then Fmt.pf ppf "  %a@," Simkit.Trace.pp_entry e)
    entries;
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------ the fuzzer *)

type fuzz_result = {
  f_witness : witness option;
  f_trial : int option;
  f_trials : int;
  f_budget : int;
  f_domains : int;
  f_witnesses : int;
  f_wall_s : float;
}

let fuzz_result_json r =
  Obs.Json.Obj
    [
      ("found", Obs.Json.Bool (r.f_witness <> None));
      ( "trial",
        match r.f_trial with Some t -> Obs.Json.Int t | None -> Obs.Json.Null );
      ("trials", Obs.Json.Int r.f_trials);
      ("budget", Obs.Json.Int r.f_budget);
      ("domains", Obs.Json.Int r.f_domains);
      ("witnesses", Obs.Json.Int r.f_witnesses);
      ("wall_s", Obs.Json.Float r.f_wall_s);
      ( "witness",
        match r.f_witness with
        | Some w -> witness_json w
        | None -> Obs.Json.Null );
    ]

(* Trial [i] is a pure function of (root seed, i): its PRNG stream is
   derived with {!Sprng.stream}, never from domain-local state, so the
   outcome is identical no matter which domain runs it or how many domains
   exist. Domain [d] of [n] owns the trial indices congruent to [d] mod
   [n] — a static, disjoint split of the seed space. *)
let fuzz_trial ~root ~run_budget ~policy ~horizon ~task ~algo ~fd ~env i =
  let st = Sprng.stream root i in
  let run_seed = Sprng.next st in
  let rng = Sprng.to_random_state st in
  let pattern = env.Failure.sample rng ~horizon in
  let input = Task.sample_input task rng in
  let r =
    Run.execute ?budget:run_budget ~policy ~task ~algo ~fd ~pattern ~input
      ~seed:run_seed ()
  in
  if Run.ok r then None
  else
    Some
      {
        w_seed = run_seed;
        w_desc = describe r;
        w_report = r;
        w_pattern = pattern;
        w_input = input;
        w_budget = run_budget;
        w_shrink_steps = 0;
      }

exception Cancelled

let never_cancel () = false

let fuzz ?(domains = 1) ?(exhaust = false) ?run_budget
    ?(policy = Run.fair_policy) ?(horizon = 2_000) ?sink
    ?(cancel = never_cancel) ~seed ~budget ~task ~algo ~fd ~env () =
  if budget < 0 then invalid_arg "Adversary.fuzz: negative budget";
  let sp = Obs.Span.start ~name:"adversary.fuzz" () in
  (* Cooperative cancellation, polled between trials in every worker. The
     sticky [ext] flag makes one worker's observation visible to all and
     outlives transient hook answers; a cancelled fuzz raises instead of
     reporting, so a partial scan can never masquerade as exhaustion. *)
  let ext = Atomic.make false in
  let cancelled () =
    Atomic.get ext
    ||
    if cancel () then begin
      Atomic.set ext true;
      true
    end
    else false
  in
  let emit = emit_via sink ~task ~algo ~fd in
  let root = Sprng.make seed in
  let trial = fuzz_trial ~root ~run_budget ~policy ~horizon ~task ~algo ~fd ~env in
  let n_workers = max 1 (min domains (max 1 budget)) in
  (* Lowest witness trial index found so far, across domains. A domain may
     stop as soon as its next index exceeds it: every trial below the
     current best still runs, so the final winner is the globally minimal
     violating index — the same trial a 1-domain scan would stop at. *)
  let best = Atomic.make max_int in
  let rec lower i =
    let cur = Atomic.get best in
    if i < cur && not (Atomic.compare_and_set best cur i) then lower i
  in
  let worker d () =
    let found = ref [] in
    let executed = ref 0 in
    let i = ref d in
    while
      !i < budget && (exhaust || Atomic.get best > !i) && not (cancelled ())
    do
      incr executed;
      (match trial !i with
      | Some w ->
        found := (!i, w) :: !found;
        lower !i
      | None -> ());
      i := !i + n_workers
    done;
    (List.rev !found, !executed)
  in
  let results =
    if n_workers = 1 then [ worker 0 () ]
    else
      Array.init n_workers (fun d -> Domain.spawn (worker d))
      |> Array.map Domain.join |> Array.to_list
  in
  if Atomic.get ext then raise Cancelled;
  let witnesses = List.concat_map fst results in
  let trials = List.fold_left (fun n (_, e) -> n + e) 0 results in
  let winner =
    List.fold_left
      (fun acc (i, w) ->
        match acc with
        | Some (j, _) when j <= i -> acc
        | _ -> Some (i, w))
      None witnesses
  in
  let result =
    {
      f_witness = Option.map snd winner;
      f_trial = Option.map fst winner;
      f_trials = trials;
      f_budget = budget;
      f_domains = n_workers;
      f_witnesses = List.length witnesses;
      f_wall_s = Obs.Span.elapsed_s sp;
    }
  in
  (match winner with
  | Some (i, w) ->
    emit Obs.Event.Name.adversary_fuzz_witness
      [
        ("trial", Obs.Json.Int i);
        ("seed", Obs.Json.Int w.w_seed);
        ("trials", Obs.Json.Int trials);
        ("domains", Obs.Json.Int n_workers);
        ("desc", Obs.Json.Str w.w_desc);
      ]
  | None ->
    emit Obs.Event.Name.adversary_fuzz_exhausted
      [
        ("trials", Obs.Json.Int trials);
        ("domains", Obs.Json.Int n_workers);
      ]);
  result

(* ----------------------------------------------------------- the shrinker *)

type shrink_report = {
  sh_steps : int;
  sh_attempts : int;
  sh_sched : int * int;
  sh_crashes : int * int;
  sh_input : int * int;
}

let pp_shrink_report ppf s =
  let pair ppf (b, a) = Fmt.pf ppf "%d -> %d" b a in
  Fmt.pf ppf "%d reductions (%d attempts): schedule %a, crashes %a, inputs %a"
    s.sh_steps s.sh_attempts pair s.sh_sched pair s.sh_crashes pair s.sh_input

let shrink_report_json s =
  let pair (b, a) =
    Obs.Json.Obj [ ("before", Obs.Json.Int b); ("after", Obs.Json.Int a) ]
  in
  Obs.Json.Obj
    [
      ("steps", Obs.Json.Int s.sh_steps);
      ("attempts", Obs.Json.Int s.sh_attempts);
      ("schedule_steps", pair s.sh_sched);
      ("crashes", pair s.sh_crashes);
      ("input_participants", pair s.sh_input);
    ]

let shrink ?(policy = Run.fair_policy) ?sink ~task ~algo ~fd w =
  match Run.violation_of_report w.w_report with
  | None -> (w, { sh_steps = 0; sh_attempts = 0;
                  sh_sched = (sched_len w, sched_len w);
                  sh_crashes = (crash_count w, crash_count w);
                  sh_input = (input_count w, input_count w) })
  | Some target ->
    let attempts = ref 0 and steps = ref 0 in
    (* current minimal witness state; every accepted candidate re-ran the
       deterministic replay and reproduced the same violation kind *)
    let pattern = ref w.w_pattern in
    let input = ref w.w_input in
    let budget = ref (Option.value w.w_budget ~default:400_000) in
    let report = ref w.w_report in
    let try_candidate ?pattern:(p = !pattern) ?input:(i = !input)
        ?budget:(b = !budget) () =
      incr attempts;
      let r =
        Run.execute ~budget:b ~policy ~task ~algo ~fd ~pattern:p ~input:i
          ~seed:w.w_seed ()
      in
      if Run.violation_of_report r = Some target then begin
        incr steps;
        pattern := p;
        input := i;
        budget := b;
        report := r;
        true
      end
      else false
    in
    let changed = ref true in
    while !changed do
      changed := false;
      (* axis 1: fewer crashes in the failure pattern *)
      List.iter
        (fun (q, _) ->
          if try_candidate ~pattern:(Failure.without_crash !pattern q) () then
            changed := true)
        (Failure.crashes !pattern);
      (* axis 2: smaller input vector (at least one participant remains) *)
      List.iter
        (fun i ->
          if Tasklib.Vectors.count !input > 1 then begin
            let candidate = Array.copy !input in
            candidate.(i) <- None;
            if try_candidate ~input:candidate () then changed := true
          end)
        (Tasklib.Vectors.participants !input);
      (* axis 3: shorter schedule prefix — cut the replay budget to below
         the current violating run's length (halving first, then nibbling) *)
      let cut () =
        let len = !report.Run.r_steps in
        len > 1
        && (try_candidate ~budget:(len / 2) ()
           || try_candidate ~budget:(len - 1) ())
      in
      while cut () do
        changed := true
      done
    done;
    let w' =
      {
        w with
        w_pattern = !pattern;
        w_input = !input;
        w_report = !report;
        w_budget = Some !budget;
        w_shrink_steps = w.w_shrink_steps + !steps;
      }
    in
    let sh =
      {
        sh_steps = !steps;
        sh_attempts = !attempts;
        sh_sched = (sched_len w, sched_len w');
        sh_crashes = (crash_count w, crash_count w');
        sh_input = (input_count w, input_count w');
      }
    in
    emit_via sink ~task ~algo ~fd Obs.Event.Name.adversary_shrunk
      [
        ("seed", Obs.Json.Int w.w_seed);
        ("steps", Obs.Json.Int sh.sh_steps);
        ("attempts", Obs.Json.Int sh.sh_attempts);
        ("sched_before", Obs.Json.Int (fst sh.sh_sched));
        ("sched_after", Obs.Json.Int (snd sh.sh_sched));
        ("crashes_before", Obs.Json.Int (fst sh.sh_crashes));
        ("crashes_after", Obs.Json.Int (snd sh.sh_crashes));
        ("input_before", Obs.Json.Int (fst sh.sh_input));
        ("input_after", Obs.Json.Int (snd sh.sh_input));
      ];
    (w', sh)

(* -------------------------------------------------- the paper's targets *)

let consensus_via_strong_renaming () =
  Algorithm.restricted ~name:"consensus-from-2-renaming" (fun ctx ->
      let sh = Renaming_algos.fig4_shared ctx in
      fun i input ->
        let cl = Renaming_algos.fig4_client sh ~me:i in
        let rec acquire () =
          match Renaming_algos.fig4_pump cl with
          | Renaming_algos.DecidedName nm -> nm
          | Renaming_algos.Pending -> acquire ()
        in
        let name = acquire () in
        if name = 1 then Op.decide input
        else begin
          (* the other participant wrote its input before suggesting *)
          let inputs = Op.snapshot ctx.Algorithm.input_regs in
          let other =
            Array.to_list
              (Array.mapi (fun l v -> (l, v)) inputs)
            |> List.find_opt (fun (l, v) -> l <> i && not (Value.is_unit v))
          in
          match other with
          | Some (_, v) -> Op.decide v
          | None -> Op.decide input (* unreachable when the reduction is sound *)
        end)

type target = {
  t_name : string;
  t_task : Tasklib.Task.t;
  t_algo : Algorithm.t;
  t_fd : Fdlib.Fd.t;
  t_env : Failure.env;
  t_policy : Run.policy_factory;
}

(* The fuzz targets sample from a crashy environment (E_1 over two
   S-processes) even though the trivial detector makes S-crashes irrelevant
   to these algorithms: sampled crashes are exactly the spurious witness
   content the shrinker's crash axis is there to delete. *)
let strong_renaming_target ~n ~j =
  {
    t_name = "strong-renaming";
    t_task = Tasklib.Renaming.strong ~n ~j;
    t_algo = Renaming_algos.fig4 ();
    t_fd = Fdlib.Fd.trivial;
    t_env = Failure.e_t ~n_s:2 ~t:1;
    t_policy = Run.k_concurrent_uniform_policy 2;
  }

let consensus_reduction_target ~n =
  {
    t_name = "consensus-reduction";
    t_task = Tasklib.Set_agreement.make ~u:[ 0; 1 ] ~n ~k:1 ();
    t_algo = consensus_via_strong_renaming ();
    t_fd = Fdlib.Fd.trivial;
    t_env = Failure.e_t ~n_s:2 ~t:1;
    t_policy = Run.k_concurrent_uniform_policy 2;
  }

let fuzz_target ?domains ?exhaust ?run_budget ?sink ?cancel ~seed ~budget t ()
    =
  fuzz ?domains ?exhaust ?run_budget ?sink ?cancel ~policy:t.t_policy ~seed
    ~budget ~task:t.t_task ~algo:t.t_algo ~fd:t.t_fd ~env:t.t_env ()

let shrink_target ?sink t w =
  shrink ?sink ~policy:t.t_policy ~task:t.t_task ~algo:t.t_algo ~fd:t.t_fd w

let explain_target ?last t w ppf =
  explain ?last ~policy:t.t_policy ~task:t.t_task ~algo:t.t_algo ~fd:t.t_fd w
    ppf

let default_seeds = List.init 60 (fun i -> i + 1)

let strong_renaming_witness ?(seeds = default_seeds) ?sink ~n ~j () =
  search
    ~policy:(Run.k_concurrent_uniform_policy 2)
    ?sink
    ~task:(Tasklib.Renaming.strong ~n ~j)
    ~algo:(Renaming_algos.fig4 ())
    ~fd:Fdlib.Fd.trivial
    ~env:(Failure.crash_free 1)
    ~seeds ()

let consensus_reduction_witness ?(seeds = default_seeds) ?sink ~n () =
  search
    ~policy:(Run.k_concurrent_uniform_policy 2)
    ?sink
    ~task:(Tasklib.Set_agreement.make ~u:[ 0; 1 ] ~n ~k:1 ())
    ~algo:(consensus_via_strong_renaming ())
    ~fd:Fdlib.Fd.trivial
    ~env:(Failure.crash_free 1)
    ~seeds ()
