module Failure = Simkit.Failure
module Op = Simkit.Runtime.Op
module Task = Tasklib.Task

type witness = {
  w_seed : int;
  w_desc : string;
  w_report : Run.report;
  w_pattern : Failure.pattern;
  w_input : Tasklib.Vectors.t;
}

let pp_witness ppf w =
  Fmt.pf ppf "@[<v>witness (seed %d): %s@,%a@]" w.w_seed w.w_desc Run.pp_report
    w.w_report

let describe r =
  if not r.Run.r_task_ok then "task relation violated"
  else if not r.Run.r_outcome.Simkit.Schedule.all_decided then
    "some participant never decided"
  else "wait-freedom violated"

let witness_json ?(labels = []) w =
  Obs.Json.Obj
    [
      ("labels", Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Str v)) labels));
      ("seed", Obs.Json.Int w.w_seed);
      ("desc", Obs.Json.Str w.w_desc);
      ("pattern", Obs.Json.Str (Fmt.str "%a" Failure.pp_pattern w.w_pattern));
      ("report", Run.report_json w.w_report);
    ]

let search ?budget ?(policy = Run.fair_policy) ?sink ~task ~algo ~fd ~env
    ~seeds () =
  let emit ev fields =
    match sink with
    | None -> ()
    | Some sink ->
      let tags =
        List.map
          (fun (k, v) -> (k, Obs.Json.Str v))
          (Run.labels ~task ~algo ~fd ~seed:0)
        |> List.remove_assoc "seed"
      in
      Obs.Sink.emit sink (Obs.Event.make ev (tags @ fields))
  in
  let tried = ref 0 in
  let rec go = function
    | [] ->
      emit "adversary.exhausted" [ ("seeds_tried", Obs.Json.Int !tried) ];
      None
    | seed :: rest ->
      incr tried;
      let rng = Random.State.make [| seed; 0xadef |] in
      let pattern = env.Failure.sample rng ~horizon:2_000 in
      let input = Task.sample_input task rng in
      let r = Run.execute ?budget ~policy ~task ~algo ~fd ~pattern ~input ~seed () in
      if Run.ok r then go rest
      else begin
        let w =
          {
            w_seed = seed;
            w_desc = describe r;
            w_report = r;
            w_pattern = pattern;
            w_input = input;
          }
        in
        emit "adversary.witness"
          [
            ("seed", Obs.Json.Int seed);
            ("seeds_tried", Obs.Json.Int !tried);
            ("desc", Obs.Json.Str w.w_desc);
          ];
        Some w
      end
  in
  go seeds

let explain ?budget ?(policy = Run.fair_policy) ?(last = 40) ~task ~algo ~fd w
    ppf =
  let r =
    Run.execute ?budget ~record_trace:true ~policy ~task ~algo ~fd
      ~pattern:w.w_pattern ~input:w.w_input ~seed:w.w_seed ()
  in
  Fmt.pf ppf "@[<v>%a@,final steps of the violating interleaving:@," pp_witness
    { w with w_report = r };
  let entries = Simkit.Trace.entries (Option.get r.Run.r_trace) in
  let total = List.length entries in
  List.iteri
    (fun i e ->
      if i >= total - last then Fmt.pf ppf "  %a@," Simkit.Trace.pp_entry e)
    entries;
  Fmt.pf ppf "@]"

let consensus_via_strong_renaming () =
  Algorithm.restricted ~name:"consensus-from-2-renaming" (fun ctx ->
      let sh = Renaming_algos.fig4_shared ctx in
      fun i input ->
        let cl = Renaming_algos.fig4_client sh ~me:i in
        let rec acquire () =
          match Renaming_algos.fig4_pump cl with
          | Renaming_algos.DecidedName nm -> nm
          | Renaming_algos.Pending -> acquire ()
        in
        let name = acquire () in
        if name = 1 then Op.decide input
        else begin
          (* the other participant wrote its input before suggesting *)
          let inputs = Op.snapshot ctx.Algorithm.input_regs in
          let other =
            Array.to_list
              (Array.mapi (fun l v -> (l, v)) inputs)
            |> List.find_opt (fun (l, v) -> l <> i && not (Value.is_unit v))
          in
          match other with
          | Some (_, v) -> Op.decide v
          | None -> Op.decide input (* unreachable when the reduction is sound *)
        end)

let default_seeds = List.init 60 (fun i -> i + 1)

let strong_renaming_witness ?(seeds = default_seeds) ?sink ~n ~j () =
  search
    ~policy:(Run.k_concurrent_uniform_policy 2)
    ?sink
    ~task:(Tasklib.Renaming.strong ~n ~j)
    ~algo:(Renaming_algos.fig4 ())
    ~fd:Fdlib.Fd.trivial
    ~env:(Failure.crash_free 1)
    ~seeds ()

let consensus_reduction_witness ?(seeds = default_seeds) ?sink ~n () =
  search
    ~policy:(Run.k_concurrent_uniform_policy 2)
    ?sink
    ~task:(Tasklib.Set_agreement.make ~u:[ 0; 1 ] ~n ~k:1 ())
    ~algo:(consensus_via_strong_renaming ())
    ~fd:Fdlib.Fd.trivial
    ~env:(Failure.crash_free 1)
    ~seeds ()
