(** The EFD run harness: wires a task, an algorithm, a failure detector
    history, a failure pattern and a schedule into one run, and reports the
    finite-run verdicts (task satisfaction, wait-freedom, concurrency). *)

module Vectors = Tasklib.Vectors

type policy_factory =
  participants:Simkit.Pid.t list ->
  n_c:int ->
  n_s:int ->
  rng:Random.State.t ->
  Simkit.Schedule.t
(** Builds the schedule policy for a run; only listed C-processes (the
    participants of the chosen input vector) may be scheduled. *)

val fair_policy : policy_factory
(** Shuffled rounds over participants and all S-processes. *)

val k_concurrent_policy : int -> policy_factory
(** The §2.2 arrival controller at concurrency [k]; arrival order is a
    seeded shuffle of the participants; round-based (near-lockstep). *)

val k_concurrent_uniform_policy : int -> policy_factory
(** Same controller, uniform-random step choice — the adversarial flavour
    that can stall admitted processes arbitrarily long. *)

type report = {
  r_outcome : Simkit.Schedule.outcome;
  r_input : Vectors.t;  (** restricted to processes that actually ran *)
  r_output : Vectors.t;
  r_task_ok : bool;
  r_wait_free : bool;
  r_max_conc : int;
  r_min_s_scheds : int;
  r_steps : int;
  r_trace : Simkit.Trace.t option;  (** when [record_trace] was set *)
}

val ok : report -> bool
(** Task satisfied, wait-freedom respected, and every participant decided. *)

type violation = Task_violation | Undecided | Not_wait_free
(** Why a report is not {!ok}, in checking order: the task relation is
    violated; some participant never decided; wait-freedom is violated. *)

val violation_of_report : report -> violation option
(** [None] iff {!ok}. The shrinker keys on this: a candidate reduction is
    kept only if it reproduces the {e same} violation kind. *)

val violation_desc : violation -> string
(** Human-readable one-liner (stable; used in witness descriptions and
    event payloads). *)

val pp_report : Format.formatter -> report -> unit

exception Cancelled
(** Raised out of {!execute} when its [?cancel] hook returns [true]; a
    cancelled run never returns a report (the runtime is destroyed
    first). *)

val execute :
  ?budget:int ->
  ?min_scheds:int ->
  ?record_trace:bool ->
  ?policy:policy_factory ->
  ?cancel:(unit -> bool) ->
  ?obs:Simkit.Runtime.obs ->
  task:Tasklib.Task.t ->
  algo:Algorithm.t ->
  fd:Fdlib.Fd.t ->
  pattern:Simkit.Failure.pattern ->
  input:Vectors.t ->
  seed:int ->
  unit ->
  report
(** One run. [seed] determines the failure-detector history draw and the
    schedule randomness. [budget] (default 400_000) bounds total steps;
    [min_scheds] (default 2_000) is the wait-freedom threshold: a
    participant scheduled at least that often must have decided.
    [?cancel] is polled once per scheduling step; the step after it first
    returns [true], the run raises {!Cancelled} — the cooperative hook the
    service layer's deadlines use. [?obs] installs a
    {!Simkit.Runtime.obs} instrumentation hook on the run's runtime
    (counters / structured events; disabled and free when omitted). *)

val labels : task:Tasklib.Task.t -> algo:Algorithm.t -> fd:Fdlib.Fd.t ->
  seed:int -> (string * string) list
(** The canonical label set tagging one run: task, algo, fd, seed. *)

val report_json : ?labels:(string * string) list -> report -> Obs.Json.t
(** The report's machine-readable face (verdicts, steps, concurrency;
    input/output rendered as strings), tagged with [?labels] — pair with
    {!labels} for the standard tagging. *)

type sweep = { total : int; passed : int; failures : string list }

val pp_sweep : Format.formatter -> sweep -> unit

val sweep :
  ?budget:int ->
  ?policy:policy_factory ->
  ?min_participants:int ->
  task:Tasklib.Task.t ->
  algo:Algorithm.t ->
  fd:Fdlib.Fd.t ->
  env:Simkit.Failure.env ->
  seeds:int list ->
  unit ->
  sweep
(** One run per seed: sample a pattern from [env], an input prefix of the
    task, and drive with [policy] (default {!fair_policy}). *)
