module Memory = Simkit.Memory
module Runtime = Simkit.Runtime
module Schedule = Simkit.Schedule
module Checker = Simkit.Checker
module Failure = Simkit.Failure
module Pid = Simkit.Pid
module Task = Tasklib.Task
module Vectors = Tasklib.Vectors

type policy_factory =
  participants:Pid.t list ->
  n_c:int ->
  n_s:int ->
  rng:Random.State.t ->
  Schedule.t

let fair_policy ~participants ~n_c ~n_s ~rng =
  Schedule.shuffled_rounds ~only:(participants @ Pid.all_s n_s) ~n_c ~n_s rng

let shuffled_arrival participants rng =
  let a = Array.of_list (List.map Pid.index participants) in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let k_concurrent_policy k ~participants ~n_c:_ ~n_s ~rng =
  Schedule.k_concurrent ~k ~arrival:(shuffled_arrival participants rng) ~n_s rng

let k_concurrent_uniform_policy k ~participants ~n_c:_ ~n_s ~rng =
  Schedule.k_concurrent ~mode:`Uniform ~k
    ~arrival:(shuffled_arrival participants rng)
    ~n_s rng

type report = {
  r_outcome : Schedule.outcome;
  r_input : Vectors.t;
  r_output : Vectors.t;
  r_task_ok : bool;
  r_wait_free : bool;
  r_max_conc : int;
  r_min_s_scheds : int;
  r_steps : int;
  r_trace : Simkit.Trace.t option;
}

let ok r =
  r.r_task_ok && r.r_wait_free && r.r_outcome.Schedule.all_decided

type violation = Task_violation | Undecided | Not_wait_free

let violation_of_report r =
  if not r.r_task_ok then Some Task_violation
  else if not r.r_outcome.Schedule.all_decided then Some Undecided
  else if not r.r_wait_free then Some Not_wait_free
  else None

let violation_desc = function
  | Task_violation -> "task relation violated"
  | Undecided -> "some participant never decided"
  | Not_wait_free -> "wait-freedom violated"

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>input    %a@,output   %a@,steps    %d (decided: %b)@,task ok  %b@,\
     wait-free %b@,max-conc %d@]"
    Vectors.pp r.r_input Vectors.pp r.r_output r.r_steps
    r.r_outcome.Schedule.all_decided r.r_task_ok r.r_wait_free r.r_max_conc

exception Cancelled

let execute ?(budget = 400_000) ?(min_scheds = 2_000) ?(record_trace = false)
    ?(policy = fair_policy) ?cancel ?obs ~task ~algo ~fd ~pattern ~input ~seed
    () =
  let n_c = task.Task.arity in
  let n_s = pattern.Failure.n_s in
  if Array.length input <> n_c then invalid_arg "Run.execute: input arity";
  let mem = Memory.create () in
  let input_regs = Memory.alloc mem n_c in
  let ctx = { Algorithm.mem; n_c; n_s; input_regs } in
  let inst = algo.Algorithm.make ctx in
  let c_code i () =
    match input.(i) with
    | None -> () (* never scheduled under a correct policy; idles if so *)
    | Some v ->
      Runtime.Op.write input_regs.(i) v;
      inst.Algorithm.c_run i v
  in
  let s_code i () = inst.Algorithm.s_run i in
  let history = Fdlib.Fd.draw fd pattern ~seed in
  let rt =
    Runtime.create ?obs
      { Runtime.n_c; n_s; memory = mem; pattern; history; record_trace }
      ~c_code ~s_code
  in
  let rng = Random.State.make [| seed; 0x5eed |] in
  let participant_idx = Vectors.participants input in
  let participants = List.map Pid.c participant_idx in
  let pol = policy ~participants ~n_c ~n_s ~rng in
  let all_participants_decided rt =
    List.for_all (fun i -> Runtime.decision rt i <> None) participant_idx
  in
  (* cancellation piggybacks on stop_when, so it is polled once per
     scheduling step; raising Cancelled instead of stopping means a
     cancelled run can never leak a (partial) report *)
  let stop_when rt =
    (match cancel with Some c when c () -> raise Cancelled | _ -> ());
    all_participants_decided rt
  in
  let outcome =
    try Schedule.run ~stop_when rt pol ~budget
    with e ->
      Runtime.destroy rt;
      raise e
  in
  let outcome =
    { outcome with Schedule.all_decided = all_participants_decided rt }
  in
  let actual_input =
    Array.mapi
      (fun i v -> if Runtime.participating rt i then v else None)
      input
  in
  let output = Runtime.decisions rt in
  let report =
    {
      r_outcome = outcome;
      r_input = actual_input;
      r_output = output;
      r_task_ok = Task.satisfies task ~input:actual_input ~output;
      r_wait_free = Checker.wait_free_ok rt ~min_scheds;
      r_max_conc = Checker.max_concurrency rt;
      r_min_s_scheds = Checker.min_correct_s_scheds rt;
      r_steps = Runtime.time rt;
      r_trace = (if record_trace then Some (Runtime.trace rt) else None);
    }
  in
  Runtime.destroy rt;
  report

(* ----------------------------------------------- structured reporting *)

let labels ~task ~algo ~fd ~seed =
  [
    ("task", task.Task.task_name);
    ("algo", algo.Algorithm.algo_name);
    ("fd", Fdlib.Fd.name fd);
    ("seed", string_of_int seed);
  ]

let report_json ?(labels = []) r =
  Obs.Json.Obj
    [
      ("labels", Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Str v)) labels));
      ("input", Obs.Json.Str (Fmt.str "%a" Vectors.pp r.r_input));
      ("output", Obs.Json.Str (Fmt.str "%a" Vectors.pp r.r_output));
      ("steps", Obs.Json.Int r.r_steps);
      ("all_decided", Obs.Json.Bool r.r_outcome.Schedule.all_decided);
      ("task_ok", Obs.Json.Bool r.r_task_ok);
      ("wait_free", Obs.Json.Bool r.r_wait_free);
      ("max_concurrency", Obs.Json.Int r.r_max_conc);
      ("min_s_scheds", Obs.Json.Int r.r_min_s_scheds);
      ("ok", Obs.Json.Bool (ok r));
    ]

type sweep = { total : int; passed : int; failures : string list }

let pp_sweep ppf s =
  Fmt.pf ppf "%d/%d ok%a" s.passed s.total
    Fmt.(
      if s.failures = [] then nop
      else fun ppf () ->
        pf ppf "@, failures:@,%a" (list ~sep:(any "@,") string)
          (List.filteri (fun i _ -> i < 5) s.failures))
    ()

let sweep ?budget ?(policy = fair_policy) ?(min_participants = 1) ~task ~algo
    ~fd ~env ~seeds () =
  let results =
    List.map
      (fun seed ->
        let rng = Random.State.make [| seed; 0xfa11 |] in
        let pattern = env.Failure.sample rng ~horizon:2_000 in
        let input = Task.sample_prefix task rng ~min_participants in
        let r =
          execute ?budget ~policy ~task ~algo ~fd ~pattern ~input ~seed ()
        in
        (seed, pattern, r))
      seeds
  in
  let failures =
    List.filter_map
      (fun (seed, pattern, r) ->
        if ok r then None
        else
          Some
            (Fmt.str "seed %d pattern %a: %a" seed Failure.pp_pattern pattern
               pp_report r))
      results
  in
  {
    total = List.length results;
    passed = List.length results - List.length failures;
    failures;
  }
