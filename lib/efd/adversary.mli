(** Adversarial schedule search — the executable face of the paper's
    impossibility results. An impossibility cannot be "run"; what can be
    exhibited is a witness run in which a concrete algorithm, executed
    outside its hypotheses, violates the task or fails to terminate. *)

type witness = {
  w_seed : int;
  w_desc : string;
  w_report : Run.report;
  w_pattern : Simkit.Failure.pattern;
  w_input : Tasklib.Vectors.t;
}

val pp_witness : Format.formatter -> witness -> unit

val explain :
  ?budget:int ->
  ?policy:Run.policy_factory ->
  ?last:int ->
  task:Tasklib.Task.t ->
  algo:Algorithm.t ->
  fd:Fdlib.Fd.t ->
  witness ->
  Format.formatter ->
  unit
(** Replay the witness run deterministically with tracing on and print its
    final [last] (default 40) steps - the interleaving that produced the
    violation. *)

val search :
  ?budget:int ->
  ?policy:Run.policy_factory ->
  ?sink:Obs.Sink.t ->
  task:Tasklib.Task.t ->
  algo:Algorithm.t ->
  fd:Fdlib.Fd.t ->
  env:Simkit.Failure.env ->
  seeds:int list ->
  unit ->
  witness option
(** First seed whose run fails ({!Run.ok} is false). Samples a pattern from
    [env] and a maximal input per seed. With [?sink], the search emits
    structured events tagged with the run's task/algo/fd labels:
    [adversary.witness] (with the winning seed, seeds tried and the
    violation description) when one is found, [adversary.exhausted]
    otherwise. *)

val witness_json : ?labels:(string * string) list -> witness -> Obs.Json.t
(** Machine-readable witness: seed, description, pattern and the full
    {!Run.report_json}, tagged with [?labels]. *)

val consensus_via_strong_renaming : unit -> Algorithm.t
(** The Lemma-11 reduction: two processes solve consensus from a strong
    2-renaming subroutine (here Figure 4 with target range {1,2}): publish
    your input, acquire a name; name 1 ⇒ decide your own input, otherwise
    decide the other participant's. Running it 2-concurrently and searching
    for agreement violations witnesses the impossibility chain
    consensus ⇒ strong 2-renaming (both 2-concurrently unsolvable). *)

val strong_renaming_witness :
  ?seeds:int list -> ?sink:Obs.Sink.t -> n:int -> j:int -> unit -> witness option
(** Theorem 12 witness: Figure 4 run as a strong-renaming solver (ℓ = j)
    under 2-concurrent schedules — searches for a run that leaves the name
    range or duplicates a name. *)

val consensus_reduction_witness :
  ?seeds:int list -> ?sink:Obs.Sink.t -> n:int -> unit -> witness option
(** Lemma 11 witness: the reduction algorithm under 2-concurrent schedules —
    searches for an agreement/validity violation or non-termination. *)
