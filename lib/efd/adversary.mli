(** Adversarial schedule search — the executable face of the paper's
    impossibility results. An impossibility cannot be "run"; what can be
    exhibited is a witness run in which a concrete algorithm, executed
    outside its hypotheses, violates the task or fails to terminate.

    Two search engines produce witnesses: {!search}, a sequential sweep
    over an explicit seed list, and {!fuzz}, a domain-parallel randomized
    fuzzer over a splittable-PRNG seed space. {!shrink} then minimizes a
    witness by delta debugging. *)

type witness = {
  w_seed : int;  (** schedule/FD seed for the deterministic replay *)
  w_desc : string;  (** {!Run.violation_desc} of the violation *)
  w_report : Run.report;
  w_pattern : Simkit.Failure.pattern;
  w_input : Tasklib.Vectors.t;
  w_budget : int option;
      (** step budget the replay needs ([None] = {!Run.execute} default);
          set by the shrinker when it cuts the schedule prefix *)
  w_shrink_steps : int;
      (** provenance: accepted shrink reductions ([0] = raw witness) *)
}

val pp_witness : Format.formatter -> witness -> unit

val explain :
  ?budget:int ->
  ?policy:Run.policy_factory ->
  ?last:int ->
  task:Tasklib.Task.t ->
  algo:Algorithm.t ->
  fd:Fdlib.Fd.t ->
  witness ->
  Format.formatter ->
  unit
(** Replay the witness run deterministically with tracing on and print its
    final [last] (default 40) steps - the interleaving that produced the
    violation. Replays under [w_budget] unless [?budget] overrides. *)

val search :
  ?budget:int ->
  ?policy:Run.policy_factory ->
  ?sink:Obs.Sink.t ->
  task:Tasklib.Task.t ->
  algo:Algorithm.t ->
  fd:Fdlib.Fd.t ->
  env:Simkit.Failure.env ->
  seeds:int list ->
  unit ->
  witness option
(** First seed whose run fails ({!Run.ok} is false). Duplicate seeds are
    skipped (first occurrence wins). Samples a pattern from [env] and a
    maximal input per seed. With [?sink], the search emits structured
    events tagged with the run's task/algo/fd labels:
    [adversary.witness] (with the winning seed, distinct seeds tried and
    the violation description) when one is found, [adversary.exhausted]
    (with the distinct seeds tried) otherwise. *)

val witness_json : ?labels:(string * string) list -> witness -> Obs.Json.t
(** Machine-readable witness: seed, description, pattern, the three shrink
    axis sizes ([crashes], [schedule_steps], [input_participants]), budget,
    shrink provenance and the full {!Run.report_json}, tagged with
    [?labels]. *)

(** {1 The domain-parallel fuzzer} *)

type fuzz_result = {
  f_witness : witness option;  (** the winning (lowest-trial) witness *)
  f_trial : int option;  (** its trial index *)
  f_trials : int;  (** trials executed, summed over domains *)
  f_budget : int;  (** trials requested *)
  f_domains : int;  (** workers actually used *)
  f_witnesses : int;  (** violating trials observed (≥ 1 if found) *)
  f_wall_s : float;
}

val fuzz_result_json : fuzz_result -> Obs.Json.t

exception Cancelled
(** Raised by {!fuzz} when its [?cancel] hook fired: the trial scan was
    abandoned, so no result — witness or exhaustion — is reported.
    Re-running the same [(seed, budget)] without [?cancel] reproduces the
    deterministic result. *)

val fuzz :
  ?domains:int ->
  ?exhaust:bool ->
  ?run_budget:int ->
  ?policy:Run.policy_factory ->
  ?horizon:int ->
  ?sink:Obs.Sink.t ->
  ?cancel:(unit -> bool) ->
  seed:int ->
  budget:int ->
  task:Tasklib.Task.t ->
  algo:Algorithm.t ->
  fd:Fdlib.Fd.t ->
  env:Simkit.Failure.env ->
  unit ->
  fuzz_result
(** Randomized schedule/crash fuzzing over the trial space
    [0 .. budget-1]. Trial [i]'s failure pattern, input vector and run
    seed derive from {!Simkit.Sprng.stream}[ seed i] — a pure function of
    [(seed, i)] — and the [domains] workers (default 1) own disjoint
    residue classes of the trial space, so the winning witness is
    {e identical for every domain count}: it is always the violating trial
    of minimal index. Cancellation is first-witness-wins via a shared
    atomic best-index — a worker stops once every index it still owns
    exceeds the best, so no trial below the eventual winner is skipped.

    With [exhaust] (default false) the budget is always fully executed and
    [f_witnesses] counts every violating trial — the mode benchmarks use
    to measure seeds/sec without cancellation noise. [f_trials] in
    non-exhaust mode depends on the domain count (workers past the winner
    stop at different points); only the winner is invariant.

    With [?sink], emits [adversary.fuzz.witness] or
    [adversary.fuzz.exhausted] (from the calling domain, after the join).

    [?cancel] (default never) is polled between trials in every worker;
    once it returns [true] all workers stop and the call raises
    {!Cancelled} — the hook the service layer's per-request deadlines
    plug into. *)

(** {1 The delta-debugging shrinker} *)

type shrink_report = {
  sh_steps : int;  (** accepted reductions *)
  sh_attempts : int;  (** candidate replays executed *)
  sh_sched : int * int;  (** schedule length, before/after *)
  sh_crashes : int * int;  (** crash count, before/after *)
  sh_input : int * int;  (** input participants, before/after *)
}

val pp_shrink_report : Format.formatter -> shrink_report -> unit
val shrink_report_json : shrink_report -> Obs.Json.t

val shrink :
  ?policy:Run.policy_factory ->
  ?sink:Obs.Sink.t ->
  task:Tasklib.Task.t ->
  algo:Algorithm.t ->
  fd:Fdlib.Fd.t ->
  witness ->
  witness * shrink_report
(** Minimize a witness along three axes — fewer crashes in the failure
    pattern, smaller input vector, shorter schedule prefix (a tighter
    replay budget) — to a fixpoint. Each candidate reduction re-runs the
    deterministic replay and is kept only if the {e same}
    {!Run.violation} kind persists, so shrinking never changes the
    verdict and never grows an axis. The result carries [w_shrink_steps]
    provenance and the budget needed to replay it; with [?sink], emits one
    [adversary.shrunk] event with before/after sizes. *)

(** {1 The paper's impossibility targets} *)

val consensus_via_strong_renaming : unit -> Algorithm.t
(** The Lemma-11 reduction: two processes solve consensus from a strong
    2-renaming subroutine (here Figure 4 with target range {1,2}): publish
    your input, acquire a name; name 1 ⇒ decide your own input, otherwise
    decide the other participant's. Running it 2-concurrently and searching
    for agreement violations witnesses the impossibility chain
    consensus ⇒ strong 2-renaming (both 2-concurrently unsolvable). *)

type target = {
  t_name : string;
  t_task : Tasklib.Task.t;
  t_algo : Algorithm.t;
  t_fd : Fdlib.Fd.t;
  t_env : Simkit.Failure.env;
  t_policy : Run.policy_factory;
}
(** A packaged violation search: everything {!fuzz}/{!shrink}/{!explain}
    need about one impossibility configuration. *)

val strong_renaming_target : n:int -> j:int -> target
(** Theorem 12: Figure 4 as a strong-renaming solver under 2-concurrent
    uniform schedules. The environment allows one S-crash (irrelevant to
    the trivial-FD algorithm — it exists to exercise the shrinker's crash
    axis on spurious sampled crashes). *)

val consensus_reduction_target : n:int -> target
(** Lemma 11: the consensus-from-renaming reduction as a (U,1)-set
    agreement solver under 2-concurrent uniform schedules. *)

val fuzz_target :
  ?domains:int ->
  ?exhaust:bool ->
  ?run_budget:int ->
  ?sink:Obs.Sink.t ->
  ?cancel:(unit -> bool) ->
  seed:int ->
  budget:int ->
  target ->
  unit ->
  fuzz_result

val shrink_target : ?sink:Obs.Sink.t -> target -> witness -> witness * shrink_report

val explain_target : ?last:int -> target -> witness -> Format.formatter -> unit

(** {1 Seed-list searches (the pre-fuzzer interface)} *)

val strong_renaming_witness :
  ?seeds:int list -> ?sink:Obs.Sink.t -> n:int -> j:int -> unit -> witness option
(** Theorem 12 witness: Figure 4 run as a strong-renaming solver (ℓ = j)
    under 2-concurrent schedules — searches for a run that leaves the name
    range or duplicates a name. *)

val consensus_reduction_witness :
  ?seeds:int list -> ?sink:Obs.Sink.t -> n:int -> unit -> witness option
(** Lemma 11 witness: the reduction algorithm under 2-concurrent schedules —
    searches for an agreement/validity violation or non-termination. *)
