(** A hand-rolled JSON tree, writer and reader — no new dependencies.

    Everything [obs] serializes (events, metric dumps, bench records) goes
    through this one representation, so machine consumers see one dialect:
    UTF-8, escaped control characters, non-finite floats encoded as [null]
    (JSON has no representation for them), object fields in insertion
    order (output is deterministic — goldens diff cleanly). The reader
    exists so the test suite and CI can check that everything the library
    emits parses back ({!of_string} ∘ {!to_string} = identity on the
    emitted subset). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val equal : t -> t -> bool

(** {1 Writing} *)

val to_string : t -> string
(** Compact, single line. *)

val to_string_pretty : t -> string
(** 2-space indentation, trailing newline — the format of the
    [BENCH_*.json] files. *)

val to_buffer : Buffer.t -> t -> unit
val pp : Format.formatter -> t -> unit
(** [pp] prints the compact form. *)

val escape_string : string -> string
(** The quoted, escaped form of a string literal, quotes included. *)

(** {1 Reading} *)

val of_string :
  ?max_depth:int -> ?max_string:int -> ?max_number:int -> string ->
  (t, string) result
(** Strict parser for the dialect above (standard JSON; numbers without
    [.], [e] or leading signs beyond [-] parse as [Int]). The error string
    carries a character offset.

    Safe on untrusted input: container nesting beyond [max_depth] (default
    512 — recursion depth is proportional to it, so adversarial
    ["[[[[..."] bytes cannot overflow the stack), a string literal longer
    than [max_string] bytes (default 16 MiB) or a number literal longer
    than [max_number] bytes (default 512) all produce a clean [Error].
    The service wire protocol ({!Svc.Frame}) parses every frame through
    these guards. *)

(** {1 Accessors (for tests and small consumers)} *)

val member : string -> t -> t option
(** Field of an [Obj], [None] otherwise. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** [Int]s widen to float. *)

val to_string_opt : t -> string option
