(** Monotonic-clock spans: measure a duration, optionally emit it.

    [let sp = Span.start ~name:"e5" () in ... Span.finish sp] — the
    elapsed time comes from {!Clock}, so it never goes backwards under
    NTP adjustment. *)

type t

val start : ?name:string -> unit -> t
(** Default name ["span"]. *)

val name : t -> string

val elapsed_ns : t -> int64
val elapsed_s : t -> float
(** Elapsed so far; the span keeps running. *)

val finish : ?sink:Sink.t -> t -> float
(** Elapsed seconds. With [?sink], also emits an event
    [{"ev":"span","name":<name>,"s":<seconds>}]. *)

val timed : ?name:string -> ?sink:Sink.t -> (unit -> 'a) -> 'a * float
(** Run a thunk under a fresh span; returns (result, seconds). *)
