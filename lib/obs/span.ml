type t = { sp_name : string; start_ns : int64 }

let start ?(name = "span") () = { sp_name = name; start_ns = Clock.now_ns () }
let name t = t.sp_name
let elapsed_ns t = Clock.elapsed_ns ~since:t.start_ns
let elapsed_s t = Clock.elapsed_s ~since:t.start_ns

let finish ?sink t =
  let s = elapsed_s t in
  (match sink with
  | None -> ()
  | Some sink ->
    Sink.emit sink
      (Event.make "span" [ ("name", Json.Str t.sp_name); ("s", Json.Float s) ]));
  s

let timed ?name ?sink f =
  let sp = start ?name () in
  let x = f () in
  (x, finish ?sink sp)
