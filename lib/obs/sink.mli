(** Pluggable event consumers.

    A sink is where instrumented code sends its {!Event.t}s. The four
    stock sinks cover the usual deployments: [null] (instrumentation
    compiled in but discarded), [buffer] (tests and in-process analysis),
    [stdout] and [file] (JSON-lines for external tooling). Sinks count
    what passes through them, so "did anything fire?" needs no buffer. *)

type t

val emit : t -> Event.t -> unit
val count : t -> int
(** Events emitted through this sink so far. *)

val close : t -> unit
(** Flush and release; further [emit]s are dropped. Idempotent. *)

val null : unit -> t
(** Discards everything (still counts). *)

val buffer : unit -> t * (unit -> Event.t list)
(** An in-memory sink and its reader (chronological order). *)

val stdout : unit -> t
(** One compact JSON object per line on standard output. *)

val file : string -> t
(** JSON-lines to a fresh file (truncates). Buffered; {!close} flushes. *)

val of_fn : ?close:(unit -> unit) -> (Event.t -> unit) -> t
(** Custom sink from a function. *)

val tee : t list -> t
(** Broadcast to several sinks. [close] closes them all. *)
