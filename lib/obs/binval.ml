exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* -- writer --------------------------------------------------------------- *)

let add_u32 buf n =
  Buffer.add_char buf (Char.unsafe_chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr (n land 0xff))

(* a native 63-bit int, sign-extended to 8 bytes big-endian *)
let add_i64 buf v =
  Buffer.add_char buf (Char.unsafe_chr ((v asr 56) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((v asr 48) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((v asr 40) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((v asr 32) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((v asr 24) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((v asr 16) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr ((v asr 8) land 0xff));
  Buffer.add_char buf (Char.unsafe_chr (v land 0xff))

(* Tags: 0 null, 1 false, 2 true, 3 int (8B BE), 4 float (IEEE bits BE),
   5 string (u32 len + bytes), 6 list (u32 count + values), 7 object
   (u32 count, then per field: u32 klen + key + value). Non-finite floats
   degrade to null exactly as the JSON writer does — the differential
   oracle demands the two codecs carry the same value model, not almost
   the same. *)
let rec add_value buf v =
  match v with
  | Json.Null -> Buffer.add_char buf '\x00'
  | Json.Bool false -> Buffer.add_char buf '\x01'
  | Json.Bool true -> Buffer.add_char buf '\x02'
  | Json.Int i ->
    Buffer.add_char buf '\x03';
    add_i64 buf i
  | Json.Float f ->
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
      Buffer.add_char buf '\x00'
    else begin
      Buffer.add_char buf '\x04';
      Buffer.add_int64_be buf (Int64.bits_of_float f)
    end
  | Json.Str s ->
    Buffer.add_char buf '\x05';
    add_u32 buf (String.length s);
    Buffer.add_string buf s
  | Json.List xs ->
    Buffer.add_char buf '\x06';
    add_u32 buf (List.length xs);
    List.iter (add_value buf) xs
  | Json.Obj kvs ->
    Buffer.add_char buf '\x07';
    add_u32 buf (List.length kvs);
    List.iter
      (fun (k, v) ->
        add_u32 buf (String.length k);
        Buffer.add_string buf k;
        add_value buf v)
      kvs

(* -- reader --------------------------------------------------------------- *)

let get_u32 s pos =
  if String.length s - !pos < 4 then fail "truncated binary value";
  let v =
    (Char.code s.[!pos] lsl 24)
    lor (Char.code s.[!pos + 1] lsl 16)
    lor (Char.code s.[!pos + 2] lsl 8)
    lor Char.code s.[!pos + 3]
  in
  pos := !pos + 4;
  v

let get_i64 s pos =
  if String.length s - !pos < 8 then fail "truncated binary value";
  let v64 = String.get_int64_be s !pos in
  pos := !pos + 8;
  let v = Int64.to_int v64 in
  if Int64.of_int v = v64 then v else fail "integer exceeds native range"

let decode_value ?(max_depth = 64) s pos =
  let n = String.length s in
  let need k = if n - !pos < k then fail "truncated binary value" in
  let u8 () =
    need 1;
    let c = Char.code s.[!pos] in
    incr pos;
    c
  in
  let rec value depth =
    if depth > max_depth then fail "nesting deeper than %d" max_depth;
    match u8 () with
    | 0 -> Json.Null
    | 1 -> Json.Bool false
    | 2 -> Json.Bool true
    | 3 -> Json.Int (get_i64 s pos)
    | 4 ->
      need 8;
      let bits = String.get_int64_be s !pos in
      pos := !pos + 8;
      Json.Float (Int64.float_of_bits bits)
    | 5 ->
      let len = get_u32 s pos in
      need len;
      let r = String.sub s !pos len in
      pos := !pos + len;
      Json.Str r
    | 6 ->
      (* an announced count beyond the remaining bytes is a lie: every
         element costs at least one byte, so reject before building *)
      let count = get_u32 s pos in
      if count > n - !pos then
        fail "list count %d exceeds remaining input" count;
      let rec items k acc =
        if k = 0 then Json.List (List.rev acc)
        else items (k - 1) (value (depth + 1) :: acc)
      in
      items count []
    | 7 ->
      let count = get_u32 s pos in
      if count > n - !pos then
        fail "object count %d exceeds remaining input" count;
      let rec fields k acc =
        if k = 0 then Json.Obj (List.rev acc)
        else begin
          let klen = get_u32 s pos in
          need klen;
          let key = String.sub s !pos klen in
          pos := !pos + klen;
          fields (k - 1) ((key, value (depth + 1)) :: acc)
        end
      in
      fields count []
    | t -> fail "unknown value tag %d" t
  in
  value 0
