type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b || (Float.is_nan a && Float.is_nan b)
  | Str a, Str b -> String.equal a b
  | List a, List b -> List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
    List.length a = List.length b
    && List.for_all2
         (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
         a b
  | _ -> false

(* ---------------------------------------------------------------- write *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  escape_to buf s;
  Buffer.contents buf

(* %.17g round-trips every double exactly; try the shorter %.12g first and
   keep it when it already round-trips, so typical values stay readable. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let add_float buf f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    Buffer.add_string buf "null"
  else Buffer.add_string buf (float_repr f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let to_string_pretty j =
  let buf = Buffer.create 1024 in
  let pad n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth = function
    | (Null | Bool _ | Int _ | Float _ | Str _) as atom -> to_buffer buf atom
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          escape_to buf k;
          Buffer.add_string buf ": ";
          go (depth + 1) v)
        kvs;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let pp ppf j = Format.pp_print_string ppf (to_string j)

(* ----------------------------------------------------------------- read *)

exception Parse of int * string

let default_max_depth = 512
let default_max_string = 16 * 1024 * 1024
let default_max_number = 512

let of_string ?(max_depth = default_max_depth)
    ?(max_string = default_max_string) ?(max_number = default_max_number) s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if Buffer.length buf > max_string then
        fail (Printf.sprintf "string longer than %d bytes" max_string);
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let c = parse_hex4 () in
          (* we only emit \u00xx for control chars; decode the BMP point
             as UTF-8 so foreign input survives a round trip too *)
          if c < 0x80 then Buffer.add_char buf (Char.chr c)
          else if c < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xc0 lor (c lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3f)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xe0 lor (c lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3f)));
            Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3f)))
          end
        | _ -> fail "bad escape");
        go ())
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let saw = ref false in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        saw := true;
        advance ()
      done;
      if not !saw then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    if !pos - start > max_number then
      fail (Printf.sprintf "number literal longer than %d bytes" max_number);
    let lit = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> Float (float_of_string lit)
  in
  (* [depth] counts open containers; bounding it keeps recursion depth — and
     hence native stack use — proportional to [max_depth], so adversarial
     ["[[[[..."] input is a clean [Error], not a stack overflow. *)
  let rec parse_value depth =
    if depth > max_depth then
      fail (Printf.sprintf "nesting deeper than %d" max_depth);
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else
        let rec elems acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse (at, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)
  | exception Failure msg -> Error ("JSON parse error: " ^ msg)

(* ------------------------------------------------------------ accessors *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
