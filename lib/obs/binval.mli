(** The tagged-value binary encoding of {!Json.t} — the one value codec
    shared by the service wire protocol ([Svc.Protocol.Codec], where it
    encodes request params and response results inside binary envelopes)
    and the checkpoint store ([Ckpt.Store], where it encodes generation
    payloads on disk). Extracting it here keeps the byte format defined
    once: a checkpoint record and a wire frame carrying the same value
    serialize to the same bytes.

    Format (all integers big-endian):
    {v
    value ::= 0 null | 1 false | 2 true | 3 int (8B) | 4 float (IEEE 8B)
            | 5 str (u32 len + bytes) | 6 list (u32 count + values)
            | 7 obj (u32 count, then per field: u32 klen + key + value)
    v}

    The value model is exactly {!Json.t} under the JSON writer's
    canonicalization: non-finite floats encode as null, so decoding a
    binary value and decoding its JSON rendering yield equal values. The
    reader enforces the same guards as {!Json.of_string}: nesting bounded
    by [max_depth], announced lengths checked against remaining input
    before allocation. *)

exception Error of string
(** Raised by the decoding functions on malformed input (truncation, an
    unknown tag, a lying length prefix, over-deep nesting, an integer
    outside the native range). Never raised by the writers. *)

(** {1 Writing} *)

val add_u32 : Buffer.t -> int -> unit
(** Low 32 bits, big-endian. *)

val add_i64 : Buffer.t -> int -> unit
(** A native 63-bit int, sign-extended to 8 bytes big-endian. *)

val add_value : Buffer.t -> Json.t -> unit

(** {1 Reading}

    Readers take the input string and a position ref, advance it past what
    they consume, and raise {!Error} on malformed input — the caller owns
    framing (trailing-garbage checks, headers). *)

val get_u32 : string -> int ref -> int
val get_i64 : string -> int ref -> int

val decode_value : ?max_depth:int -> string -> int ref -> Json.t
(** [max_depth] defaults to 64, the wire protocol's nesting bound. *)
