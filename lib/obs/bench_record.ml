type row = { r_labels : (string * string) list; r_metrics : (string * Json.t) list }

type t = {
  b_id : string;
  b_title : string;
  mutable b_meta : (string * Json.t) list;  (* insertion order *)
  mutable b_rows : row list;  (* reverse insertion order *)
}

let schema_name = "wfa.bench"
let schema_version = 1

let create ~id ?(title = "") () =
  { b_id = id; b_title = title; b_meta = []; b_rows = [] }

let id t = t.b_id

let meta t k v =
  if List.mem_assoc k t.b_meta then
    t.b_meta <- List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) t.b_meta
  else t.b_meta <- t.b_meta @ [ (k, v) ]

let row t ?(labels = []) metrics =
  t.b_rows <- { r_labels = labels; r_metrics = metrics } :: t.b_rows

let rows t = List.length t.b_rows

let row_json r =
  Json.Obj
    [
      ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) r.r_labels));
      ("metrics", Json.Obj r.r_metrics);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema_name);
      ("version", Json.Int schema_version);
      ("id", Json.Str t.b_id);
      ("title", Json.Str t.b_title);
      ("meta", Json.Obj t.b_meta);
      ("rows", Json.List (List.rev_map row_json t.b_rows));
    ]

let filename ~id = "BENCH_" ^ id ^ ".json"

let write ?(dir = ".") t =
  let path = Filename.concat dir (filename ~id:t.b_id) in
  let oc = open_out path in
  output_string oc (Json.to_string_pretty (to_json t));
  close_out oc;
  path
