type row = { r_labels : (string * string) list; r_metrics : (string * Json.t) list }

type t = {
  b_id : string;
  b_title : string;
  mutable b_meta : (string * Json.t) list;  (* insertion order *)
  mutable b_rows : row list;  (* reverse insertion order *)
}

let schema_name = "wfa.bench"
let schema_version = 1

let create ~id ?(title = "") () =
  { b_id = id; b_title = title; b_meta = []; b_rows = [] }

let id t = t.b_id

let meta t k v =
  if List.mem_assoc k t.b_meta then
    t.b_meta <- List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) t.b_meta
  else t.b_meta <- t.b_meta @ [ (k, v) ]

let row t ?(labels = []) metrics =
  t.b_rows <- { r_labels = labels; r_metrics = metrics } :: t.b_rows

let rows t = List.length t.b_rows

let row_json r =
  Json.Obj
    [
      ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) r.r_labels));
      ("metrics", Json.Obj r.r_metrics);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema_name);
      ("version", Json.Int schema_version);
      ("id", Json.Str t.b_id);
      ("title", Json.Str t.b_title);
      ("meta", Json.Obj t.b_meta);
      ("rows", Json.List (List.rev_map row_json t.b_rows));
    ]

(* -- baseline regression gate ------------------------------------------- *)

type regression = {
  reg_key : (string * string) list;
  reg_metric : string;
  reg_base : float;
  reg_fresh : float;
  reg_limit : float;
}

(* A row's identity is its full label set, order-insensitive. *)
let parsed_row_key row =
  match Json.member "labels" row with
  | Some (Json.Obj labels) ->
    List.filter_map
      (fun (k, v) -> match v with Json.Str s -> Some (k, s) | _ -> None)
      labels
    |> List.sort compare
  | _ -> []

let parsed_row_metrics row =
  match Json.member "metrics" row with
  | Some (Json.Obj metrics) -> metrics
  | _ -> []

let parsed_rows json =
  match Json.member "rows" json with
  | Some (Json.List rows) -> rows
  | _ -> []

let has_suffix suffix name =
  let ls = String.length suffix and ln = String.length name in
  ln >= ls && String.sub name (ln - ls) ls = suffix

(* Gated metrics come in two polarities: throughput ([_per_s]) regresses
   downward, latency ([_latency_s]) regresses upward. Everything else is
   informational and never compared. *)
let is_throughput = has_suffix "_per_s"
let is_latency = has_suffix "_latency_s"

let baseline_regressions ?(tolerance = 3.) ~fresh ~base () =
  if not (tolerance >= 1.) then
    invalid_arg "Bench_record.baseline_regressions: tolerance must be >= 1";
  let base_rows =
    List.map (fun row -> (parsed_row_key row, parsed_row_metrics row))
      (parsed_rows base)
  in
  let compared = ref 0 and regs = ref [] in
  List.iter
    (fun row ->
      let key = parsed_row_key row in
      match List.assoc_opt key base_rows with
      | None -> ()
      | Some base_metrics ->
        List.iter
          (fun (name, v) ->
            if is_throughput name || is_latency name then
              match
                ( Json.to_float_opt v,
                  Option.bind (List.assoc_opt name base_metrics)
                    Json.to_float_opt )
              with
              | Some fresh_v, Some base_v ->
                incr compared;
                let limit, crossed =
                  if is_latency name then
                    let ceiling = base_v *. tolerance in
                    (ceiling, fresh_v > ceiling)
                  else
                    let floor = base_v /. tolerance in
                    (floor, fresh_v < floor)
                in
                if crossed then
                  regs :=
                    {
                      reg_key = key;
                      reg_metric = name;
                      reg_base = base_v;
                      reg_fresh = fresh_v;
                      reg_limit = limit;
                    }
                    :: !regs
              | _ -> ())
          (parsed_row_metrics row))
    (parsed_rows fresh);
  (List.rev !regs, !compared)

let filename ~id = "BENCH_" ^ id ^ ".json"

let write ?(dir = ".") t =
  let path = Filename.concat dir (filename ~id:t.b_id) in
  let oc = open_out path in
  output_string oc (Json.to_string_pretty (to_json t));
  close_out oc;
  path
