type t = {
  mutable n : int;
  mutable closed : bool;
  emit_fn : Event.t -> unit;
  close_fn : unit -> unit;
}

let mk ?(close = fun () -> ()) emit_fn =
  { n = 0; closed = false; emit_fn; close_fn = close }

let emit t ev =
  if not t.closed then begin
    t.n <- t.n + 1;
    t.emit_fn ev
  end

let count t = t.n

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.close_fn ()
  end

let null () = mk (fun _ -> ())
let of_fn ?close f = mk ?close f

let buffer () =
  let buf = ref [] in
  (mk (fun ev -> buf := ev :: !buf), fun () -> List.rev !buf)

let stdout () =
  mk (fun ev ->
      print_string (Event.to_line ev);
      print_newline ())

let file path =
  let oc = open_out path in
  mk
    ~close:(fun () -> close_out oc)
    (fun ev ->
      output_string oc (Event.to_line ev);
      output_char oc '\n')

let tee sinks =
  mk
    ~close:(fun () -> List.iter close sinks)
    (fun ev -> List.iter (fun s -> emit s ev) sinks)
