(** Machine-readable bench records: [BENCH_<id>.json].

    One record per experiment table. The schema is versioned and stable so
    CI can diff performance trajectories across commits:

    {v
    {
      "schema": "wfa.bench",          // constant discriminator
      "version": 1,                   // bumped on breaking change
      "id": "e5",                     // experiment id; file is BENCH_e5.json
      "title": "...",                 // human title, may be ""
      "meta": { ... },                // free-form record-level fields
      "rows": [                       // one per printed table row
        { "labels":  { "task": "...", ... },   // string dimensions
          "metrics": { "pass": 12, ... } }     // numeric/JSON measurements
      ]
    }
    v}

    Rows, labels, metrics and meta fields serialize in insertion order;
    given deterministic inputs (fixed seeds, no wall-clock metrics) the
    bytes are identical across runs — the golden test relies on that. *)

type t

val schema_name : string
(** ["wfa.bench"]. *)

val schema_version : int
(** [1]. *)

val create : id:string -> ?title:string -> unit -> t

val id : t -> string

val meta : t -> string -> Json.t -> unit
(** Add (or overwrite, keeping position) a record-level meta field. *)

val row : t -> ?labels:(string * string) list -> (string * Json.t) list -> unit
(** Append one row. *)

val rows : t -> int

val to_json : t -> Json.t

val filename : id:string -> string
(** ["BENCH_<id>.json"]. *)

val write : ?dir:string -> t -> string
(** Serialize ({!Json.to_string_pretty}) to [dir/BENCH_<id>.json]
    (default [dir] = current directory); returns the path written. *)
