(** Machine-readable bench records: [BENCH_<id>.json].

    One record per experiment table. The schema is versioned and stable so
    CI can diff performance trajectories across commits:

    {v
    {
      "schema": "wfa.bench",          // constant discriminator
      "version": 1,                   // bumped on breaking change
      "id": "e5",                     // experiment id; file is BENCH_e5.json
      "title": "...",                 // human title, may be ""
      "meta": { ... },                // free-form record-level fields
      "rows": [                       // one per printed table row
        { "labels":  { "task": "...", ... },   // string dimensions
          "metrics": { "pass": 12, ... } }     // numeric/JSON measurements
      ]
    }
    v}

    Rows, labels, metrics and meta fields serialize in insertion order;
    given deterministic inputs (fixed seeds, no wall-clock metrics) the
    bytes are identical across runs — the golden test relies on that. *)

type t

val schema_name : string
(** ["wfa.bench"]. *)

val schema_version : int
(** [1]. *)

val create : id:string -> ?title:string -> unit -> t

val id : t -> string

val meta : t -> string -> Json.t -> unit
(** Add (or overwrite, keeping position) a record-level meta field. *)

val row : t -> ?labels:(string * string) list -> (string * Json.t) list -> unit
(** Append one row. *)

val rows : t -> int

val to_json : t -> Json.t

(** {1 Baseline regression gate}

    The comparison behind [check_bench_json --baseline]: pure over two
    parsed records, so the pass and fail sides are unit-testable without
    spawning the validator. *)

type regression = {
  reg_key : (string * string) list;  (** row labels, sorted *)
  reg_metric : string;
  reg_base : float;
  reg_fresh : float;
  reg_limit : float;
      (** the crossed bound: [reg_base /. tolerance] for a throughput
          metric (fresh fell below it), [reg_base *. tolerance] for a
          latency metric (fresh rose above it) *)
}

val baseline_regressions :
  ?tolerance:float -> fresh:Json.t -> base:Json.t -> unit ->
  regression list * int
(** Match [fresh] rows against [base] rows by their full label set
    (order-insensitive) and compare every gated metric present on both
    sides. Gated metrics have a direction in their name: throughput
    ([_per_s]) regresses when [fresh < base /. tolerance], latency
    ([_latency_s]) regresses when [fresh > base *. tolerance] (default
    tolerance [3.]). Returns the regressions in row order and the number
    of metrics compared. Rows or metrics present on only one side are
    ignored — the gate catches regressions, not schema drift. Raises
    [Invalid_argument] if [tolerance < 1]. *)

val filename : id:string -> string
(** ["BENCH_<id>.json"]. *)

val write : ?dir:string -> t -> string
(** Serialize ({!Json.to_string_pretty}) to [dir/BENCH_<id>.json]
    (default [dir] = current directory); returns the path written. *)
