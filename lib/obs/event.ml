type t = { name : string; fields : (string * Json.t) list }

let make name fields = { name; fields }

let equal a b =
  String.equal a.name b.name
  && Json.equal (Json.Obj a.fields) (Json.Obj b.fields)

module Name = struct
  let adversary_witness = "adversary.witness"
  let adversary_exhausted = "adversary.exhausted"
  let adversary_fuzz_witness = "adversary.fuzz.witness"
  let adversary_fuzz_exhausted = "adversary.fuzz.exhausted"
  let adversary_shrunk = "adversary.shrunk"
end

let to_json e = Json.Obj (("ev", Json.Str e.name) :: e.fields)
let to_line e = Json.to_string (to_json e)
let pp ppf e = Format.pp_print_string ppf (to_line e)
