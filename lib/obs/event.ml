type t = { name : string; fields : (string * Json.t) list }

let make name fields = { name; fields }

let equal a b =
  String.equal a.name b.name
  && Json.equal (Json.Obj a.fields) (Json.Obj b.fields)

module Name = struct
  let adversary_witness = "adversary.witness"
  let adversary_exhausted = "adversary.exhausted"
  let adversary_fuzz_witness = "adversary.fuzz.witness"
  let adversary_fuzz_exhausted = "adversary.fuzz.exhausted"
  let adversary_shrunk = "adversary.shrunk"
  let svc_start = "svc.start"
  let svc_stop = "svc.stop"
  let svc_accept_error = "svc.accept.error"
  let svc_shard_start = "svc.shard.start"
  let svc_shard_stop = "svc.shard.stop"
  let svc_shard_error = "svc.shard.error"
  let svc_conn_open = "svc.conn.open"
  let svc_conn_close = "svc.conn.close"
  let svc_request = "svc.request"
  let svc_reject = "svc.reject"
  let svc_done = "svc.done"
  let svc_timeout = "svc.timeout"
  let svc_drain = "svc.drain"
  let dist_split = "dist.split"
  let dist_dispatch = "dist.dispatch"
  let dist_result = "dist.result"
  let dist_redispatch = "dist.redispatch"
  let dist_worker_dead = "dist.worker.dead"
  let dist_done = "dist.done"
  let ckpt_save = "ckpt.save"
  let ckpt_load = "ckpt.load"
  let ckpt_rollback = "ckpt.rollback"
  let ckpt_resume = "ckpt.resume"
end

let to_json e = Json.Obj (("ev", Json.Str e.name) :: e.fields)
let to_line e = Json.to_string (to_json e)
let pp ppf e = Format.pp_print_string ppf (to_line e)
