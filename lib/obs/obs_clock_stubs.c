/* Monotonic clock for Obs.Clock: CLOCK_MONOTONIC nanoseconds.

   gettimeofday (the only clock in OCaml's Unix) is wall time and jumps
   under NTP adjustment; benchmark and span measurements need a clock that
   only moves forward. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value obs_clock_monotonic_ns(value unit)
{
  struct timespec ts;
#if defined(CLOCK_MONOTONIC)
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  (void)unit;
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL +
                         (int64_t)ts.tv_nsec);
}
