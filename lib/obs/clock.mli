(** Monotonic time.

    [gettimeofday] is wall time: it jumps when NTP slews or steps the
    system clock, so durations measured with it can come out negative or
    wildly wrong. Everything in [obs] that measures time (spans, bench
    records, the exhaustive checker's [wall_s]) goes through this module,
    which reads [CLOCK_MONOTONIC] via a one-line C stub. The epoch is
    arbitrary (boot time on Linux): only differences are meaningful. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock, arbitrary epoch. *)

val elapsed_ns : since:int64 -> int64
(** [elapsed_ns ~since] is [now_ns () - since]; never negative. *)

val elapsed_s : since:int64 -> float
(** Same, in seconds. *)

val ns_to_s : int64 -> float
