(** Structured events: a name plus ordered JSON fields.

    Events deliberately carry no wall-clock timestamp of their own:
    simulation runs are deterministic, and an event stream that is a pure
    function of the run diffs cleanly across machines and replays (the
    live-emitted and trace-bridged streams of the same run compare equal).
    Emitters that want real time attach a field explicitly. *)

type t = { name : string; fields : (string * Json.t) list }

val make : string -> (string * Json.t) list -> t
val equal : t -> t -> bool

(** Well-known event names. Emitters are free to mint ad-hoc names, but
    events consumed across module boundaries (tests, external tooling)
    should use these constants so renames stay atomic. *)
module Name : sig
  val adversary_witness : string
  (** A randomized search found a violating run (fields: seed, seeds_tried,
      desc). *)

  val adversary_exhausted : string
  (** A randomized search ran out of seeds (field: seeds_tried — distinct
      seeds actually executed). *)

  val adversary_fuzz_witness : string
  (** The domain-parallel fuzzer found a witness (fields: trial, seed,
      trials, domains, desc). *)

  val adversary_fuzz_exhausted : string
  (** The fuzzer exhausted its trial budget (fields: trials, domains). *)

  val adversary_shrunk : string
  (** The delta-debugging shrinker minimized a witness (fields: steps plus
      before/after sizes of the three axes). *)

  (** {2 Service layer ([Svc.Server])} *)

  val svc_start : string
  (** The job server is listening (fields: socket, workers, queue_bound). *)

  val svc_stop : string
  (** The server finished draining and stopped (fields: served, drained). *)

  val svc_accept_error : string
  (** [accept] on the listening socket failed, e.g. out of descriptors;
      the server backs off briefly before retrying (field: error). *)

  val svc_shard_start : string
  (** An I/O shard's event loop is up (field: shard). *)

  val svc_shard_stop : string
  (** An I/O shard exited after flushing its connections (fields: shard,
      conns — connections adopted over its lifetime). *)

  val svc_shard_error : string
  (** A shard's event loop caught an unexpected exception and kept going
      (fields: shard, error). *)

  val svc_conn_open : string
  (** A client connection was accepted and adopted by a shard (fields:
      conn, shard). *)

  val svc_conn_close : string
  (** A client connection ended (fields: conn, requests). *)

  val svc_request : string
  (** A request was accepted into the queue (fields: conn, id, verb). *)

  val svc_reject : string
  (** A request was rejected without running (fields: conn, id, code) —
      backpressure ([overloaded]), drain ([shutting_down]), malformed or
      oversized frames. *)

  val svc_done : string
  (** A request completed (fields: conn, id, verb, status, ms). *)

  val svc_timeout : string
  (** A request hit its deadline before or during execution (fields: conn,
      id, verb, ms). *)

  val svc_drain : string
  (** Graceful shutdown began (field: pending — queued + in-flight jobs
      that will still be served). *)

  (** {2 Distributed model checking ([Dist.Coordinator])} *)

  val dist_split : string
  (** The frontier was split into subtree jobs (fields: jobs, split_depth,
      pruned — schedules credited above the frontier). *)

  val dist_dispatch : string
  (** A subtree job was sent to a worker (fields: job, worker). *)

  val dist_result : string
  (** A subtree result was accepted — first response wins (fields: job,
      worker, verdict). *)

  val dist_redispatch : string
  (** A job was re-issued: its worker died, its response was an error, or
      an idle worker stole an in-flight straggler (fields: job, reason). *)

  val dist_worker_dead : string
  (** A worker connection failed; its in-flight jobs were requeued
      (fields: worker, error, requeued). *)

  val dist_done : string
  (** The distributed run completed (fields: jobs, redispatched, workers,
      dead). *)

  (** {2 Checkpoint store ([Ckpt.Store])} *)

  val ckpt_save : string
  (** A generation was durably written (fields: gen, bytes, codec). *)

  val ckpt_load : string
  (** A generation was loaded and validated (fields: gen, bytes). *)

  val ckpt_rollback : string
  (** A newer generation failed validation and was skipped in favour of an
      older one (fields: gen, reason). *)

  val ckpt_resume : string
  (** A checkpointed run resumed from a loaded record (fields: gen, total,
      done — subtree jobs already answered). *)
end

val to_json : t -> Json.t
(** An object with ["ev"] first, then the fields in order. *)

val to_line : t -> string
(** One line of JSON, no trailing newline — the JSON-lines encoding used
    by the stdout/file sinks. *)

val pp : Format.formatter -> t -> unit
