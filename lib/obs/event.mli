(** Structured events: a name plus ordered JSON fields.

    Events deliberately carry no wall-clock timestamp of their own:
    simulation runs are deterministic, and an event stream that is a pure
    function of the run diffs cleanly across machines and replays (the
    live-emitted and trace-bridged streams of the same run compare equal).
    Emitters that want real time attach a field explicitly. *)

type t = { name : string; fields : (string * Json.t) list }

val make : string -> (string * Json.t) list -> t
val equal : t -> t -> bool

(** Well-known event names. Emitters are free to mint ad-hoc names, but
    events consumed across module boundaries (tests, external tooling)
    should use these constants so renames stay atomic. *)
module Name : sig
  val adversary_witness : string
  (** A randomized search found a violating run (fields: seed, seeds_tried,
      desc). *)

  val adversary_exhausted : string
  (** A randomized search ran out of seeds (field: seeds_tried — distinct
      seeds actually executed). *)

  val adversary_fuzz_witness : string
  (** The domain-parallel fuzzer found a witness (fields: trial, seed,
      trials, domains, desc). *)

  val adversary_fuzz_exhausted : string
  (** The fuzzer exhausted its trial budget (fields: trials, domains). *)

  val adversary_shrunk : string
  (** The delta-debugging shrinker minimized a witness (fields: steps plus
      before/after sizes of the three axes). *)
end

val to_json : t -> Json.t
(** An object with ["ev"] first, then the fields in order. *)

val to_line : t -> string
(** One line of JSON, no trailing newline — the JSON-lines encoding used
    by the stdout/file sinks. *)

val pp : Format.formatter -> t -> unit
