(** Structured events: a name plus ordered JSON fields.

    Events deliberately carry no wall-clock timestamp of their own:
    simulation runs are deterministic, and an event stream that is a pure
    function of the run diffs cleanly across machines and replays (the
    live-emitted and trace-bridged streams of the same run compare equal).
    Emitters that want real time attach a field explicitly. *)

type t = { name : string; fields : (string * Json.t) list }

val make : string -> (string * Json.t) list -> t
val equal : t -> t -> bool

val to_json : t -> Json.t
(** An object with ["ev"] first, then the fields in order. *)

val to_line : t -> string
(** One line of JSON, no trailing newline — the JSON-lines encoding used
    by the stdout/file sinks. *)

val pp : Format.formatter -> t -> unit
