type labels = (string * string) list

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  gamma : float;
  log_gamma : float;
  buckets : (int, int ref) Hashtbl.t;  (* bucket index -> count *)
  mutable nonpos : int;  (* observations <= 0 *)
  mutable nonpos_min : float;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram

type entry = { e_name : string; e_labels : labels; e_metric : metric }

type registry = {
  by_key : (string, entry) Hashtbl.t;
  mutable order : entry list;  (* reverse creation order *)
}

let registry () = { by_key = Hashtbl.create 64; order = [] }

let key name labels =
  let buf = Buffer.create 32 in
  Buffer.add_string buf name;
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf '\000';
      Buffer.add_string buf k;
      Buffer.add_char buf '\001';
      Buffer.add_string buf v)
    labels;
  Buffer.contents buf

let find_or_add reg name labels mk classify =
  let k = key name labels in
  match Hashtbl.find_opt reg.by_key k with
  | Some e -> (
    match classify e.e_metric with
    | Some m -> m
    | None -> invalid_arg (Printf.sprintf "Obs.Metrics: %S registered with another type" name))
  | None ->
    let m = mk () in
    let e = { e_name = name; e_labels = labels; e_metric = m } in
    Hashtbl.add reg.by_key k e;
    reg.order <- e :: reg.order;
    (match classify m with Some m -> m | None -> assert false)

let counter reg ?(labels = []) name =
  find_or_add reg name labels
    (fun () -> M_counter { c = 0 })
    (function M_counter c -> Some c | _ -> None)

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Obs.Metrics.incr: negative increment";
  c.c <- c.c + by

let counter_value c = c.c

let gauge reg ?(labels = []) name =
  find_or_add reg name labels
    (fun () -> M_gauge { g = 0. })
    (function M_gauge g -> Some g | _ -> None)

let set g v = g.g <- v
let gauge_value g = g.g

let histogram reg ?(labels = []) ?(gamma = 1.25) name =
  if not (gamma > 1.) then invalid_arg "Obs.Metrics.histogram: gamma <= 1";
  find_or_add reg name labels
    (fun () ->
      M_histogram
        {
          gamma;
          log_gamma = log gamma;
          buckets = Hashtbl.create 32;
          nonpos = 0;
          nonpos_min = 0.;
          h_count = 0;
          h_sum = 0.;
          h_min = Float.nan;
          h_max = Float.nan;
        })
    (function M_histogram h -> Some h | _ -> None)

let bucket_idx h v = int_of_float (Float.floor (log v /. h.log_gamma))

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if Float.is_nan h.h_min || v < h.h_min then h.h_min <- v;
  if Float.is_nan h.h_max || v > h.h_max then h.h_max <- v;
  if v > 0. then begin
    let i = bucket_idx h v in
    match Hashtbl.find_opt h.buckets i with
    | Some r -> r := !r + 1
    | None -> Hashtbl.add h.buckets i (ref 1)
  end
  else begin
    h.nonpos <- h.nonpos + 1;
    if v < h.nonpos_min then h.nonpos_min <- v
  end

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_min h = h.h_min
let hist_max h = h.h_max

(* The bucket (as a closed [lo, hi] interval) containing the sample of the
   given 1-based rank, clipped to the observed min/max. *)
let rank_bucket h rank =
  if h.nonpos >= rank then (h.nonpos_min, 0.)
  else begin
    let idxs =
      Hashtbl.fold (fun i _ acc -> i :: acc) h.buckets []
      |> List.sort compare
    in
    let rec walk cum = function
      | [] ->
        (* rank <= h_count, so the walk always lands in a bucket *)
        assert false
      | i :: rest ->
        let cum = cum + !(Hashtbl.find h.buckets i) in
        if cum >= rank then
          (h.gamma ** float_of_int i, h.gamma ** float_of_int (i + 1))
        else walk cum rest
    in
    let lo, hi = walk h.nonpos idxs in
    (* bucket-edge float error: a sample can land a hair outside its
       recomputed bounds, so widen by one ulp-ish factor before clipping *)
    let lo = lo *. (1. -. 1e-12) and hi = hi *. (1. +. 1e-12) in
    (max lo h.h_min, min hi h.h_max)
  end

let exact_rank h q =
  let r = int_of_float (Float.ceil (q *. float_of_int h.h_count)) in
  max 1 (min h.h_count r)

let quantile_bounds h q =
  if h.h_count = 0 then (Float.nan, Float.nan)
  else rank_bucket h (exact_rank h q)

let quantile h q =
  if h.h_count = 0 then Float.nan
  else
    let lo, hi = quantile_bounds h q in
    if lo > 0. then sqrt (lo *. hi) else (lo +. hi) /. 2.

(* ---------------------------------------------------------------- export *)

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let entry_json e =
  let base = [ ("name", Json.Str e.e_name); ("labels", labels_json e.e_labels) ] in
  let rest =
    match e.e_metric with
    | M_counter c -> [ ("type", Json.Str "counter"); ("value", Json.Int c.c) ]
    | M_gauge g -> [ ("type", Json.Str "gauge"); ("value", Json.Float g.g) ]
    | M_histogram h ->
      [
        ("type", Json.Str "histogram");
        ("count", Json.Int h.h_count);
        ("sum", Json.Float h.h_sum);
        ("min", Json.Float h.h_min);
        ("max", Json.Float h.h_max);
        ("p50", Json.Float (quantile h 0.5));
        ("p90", Json.Float (quantile h 0.9));
        ("p99", Json.Float (quantile h 0.99));
      ]
  in
  Json.Obj (base @ rest)

let to_json reg =
  Json.Obj
    [ ("metrics", Json.List (List.rev_map entry_json reg.order)) ]

let iter_counters reg f =
  List.iter
    (fun e ->
      match e.e_metric with
      | M_counter c -> f e.e_name e.e_labels c.c
      | _ -> ())
    (List.rev reg.order)
