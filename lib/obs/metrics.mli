(** Labeled metrics: counters, gauges, quantile histograms in a registry.

    A registry is an in-process, deterministic metric store: metrics are
    keyed by (name, labels), created on first touch, and serialized in
    creation order (same program, same JSON — dumps are diffable).
    Histograms use geometric buckets with growth factor [gamma]
    (default 1.25): a quantile estimate is accurate to within one bucket,
    and {!quantile_bounds} returns that bucket, so callers who need error
    bars get sound ones rather than a point estimate of unknown quality.
    Not thread-safe; use one registry per domain (as the exhaustive
    checker uses one accumulator per worker). *)

type registry
type counter
type gauge
type histogram

type labels = (string * string) list
(** Ordered; part of the metric identity, serialized in the given order. *)

val registry : unit -> registry

(** {1 Counters} — monotone integers *)

val counter : registry -> ?labels:labels -> string -> counter
(** Get or create. Same (name, labels) returns the same counter. *)

val incr : ?by:int -> counter -> unit
(** [by] defaults to 1 and must be non-negative. *)

val counter_value : counter -> int

(** {1 Gauges} — set-to-current-value floats *)

val gauge : registry -> ?labels:labels -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

val histogram : registry -> ?labels:labels -> ?gamma:float -> string -> histogram
(** [gamma] (> 1, default 1.25) is the bucket growth factor, fixed at
    creation: positive observations land in buckets
    [[gamma^i, gamma^(i+1))]; non-positive ones share one underflow
    bucket. *)

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_min : histogram -> float
(** [nan] when empty, likewise {!hist_max}. *)

val hist_max : histogram -> float

val quantile_bounds : histogram -> float -> float * float
(** [quantile_bounds h q] for [q ∈ \[0,1\]]: a closed interval (one
    bucket, clipped to the observed min/max) guaranteed to contain the
    exact q-quantile of the observed samples — where the exact
    q-quantile of [count] sorted samples is the one of rank
    [max 1 (ceil (q * count))]. [(nan, nan)] when empty. *)

val quantile : histogram -> float -> float
(** Point estimate: the midpoint (geometric for positive buckets) of
    {!quantile_bounds}. *)

(** {1 Export} *)

val to_json : registry -> Json.t
(** [{"metrics": [{"name", "labels", "type", ...} ...]}] in creation
    order. Histograms carry count/sum/min/max and p50/p90/p99. *)

val iter_counters : registry -> (string -> labels -> int -> unit) -> unit
