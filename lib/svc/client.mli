(** A small client for the service protocol — what [wfa call] and the
    tests use. {!call} is the synchronous one-at-a-time round-trip;
    {!send}/{!recv} are the pipelined halves: write any number of
    requests before reading a single response, then match the responses
    (which may arrive out of order) to requests by id. *)

type t

type error =
  | Server of Protocol.err_code * string
      (** the server answered with an error response *)
  | Transport of string
      (** connection-level failure: framing, parse, id mismatch, EOF *)

val error_string : error -> string

val connect :
  ?retries:int ->
  ?backoff_ms:int ->
  ?deadline_ms:int ->
  ?codec:Protocol.Codec.t ->
  string ->
  t
(** Connect to an address in {!Addr} textual form ([unix:PATH],
    [tcp:HOST:PORT], or a bare socket path). [retries] (default [0])
    re-attempts connection refusals — [ECONNREFUSED], a not-yet-created
    socket file ([ENOENT]), [ECONNRESET] — sleeping [backoff_ms] (default
    [50]) before the first retry and doubling up to a 2 s cap; a freshly
    [exec]'d server is usually reachable well inside the first doubling.
    [deadline_ms] bounds the {e whole} retry loop in wall time: each
    backoff sleep is clamped to the remaining budget and no retry starts
    past the deadline, so the worst-case overrun is one connect attempt
    rather than a full (possibly seconds-long) backoff. Raises
    [Unix.Unix_error] once the budget is exhausted or on a non-retryable
    error, and [Invalid_argument] if the address does not parse.

    [codec] (default [Json]) is the wire codec to offer: [Binary] sends a
    [hello] round-trip after connecting and switches only on an explicit
    ack — a server without binary support (or without [hello] at all)
    downgrades the connection to JSON rather than failing it. Check what
    was negotiated with {!codec}. *)

val close : t -> unit
(** Idempotent. *)

val codec : t -> Protocol.Codec.t
(** The codec this connection actually negotiated: [Binary] only after the
    server acked the offer, [Json] otherwise. *)

val call :
  ?deadline_ms:int -> ?params:Obs.Json.t -> t -> Protocol.verb ->
  (Obs.Json.t, error) result
(** Send one request (ids auto-increment per connection) and block for its
    response. Accepts replies carrying the request's id or [-1] (the
    server's id for requests it could not parse). Do not mix with
    pipelined {!send}s that still have responses outstanding. *)

val send :
  ?deadline_ms:int -> ?params:Obs.Json.t -> t -> Protocol.verb ->
  (int, error) result
(** Write one request frame without waiting; returns its id. The server
    executes pipelined requests concurrently and replies in completion
    order. *)

val recv : t -> (int * (Obs.Json.t, error) result, error) result
(** Block for the next response frame: [(id, result)]. The outer error is
    always [Transport] (EOF, framing, parse); a server-side error for a
    particular request is the inner [Error (Server _)]. *)
