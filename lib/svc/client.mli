(** A small client for the service protocol — what [wfa call] and the
    tests use. {!call} is the synchronous one-at-a-time round-trip;
    {!send}/{!recv} are the pipelined halves: write any number of
    requests before reading a single response, then match the responses
    (which may arrive out of order) to requests by id. *)

type t

type error =
  | Server of Protocol.err_code * string
      (** the server answered with an error response *)
  | Transport of string
      (** connection-level failure: framing, parse, id mismatch, EOF *)

val error_string : error -> string

val connect : string -> t
(** Connect to the server's socket path. Raises [Unix.Unix_error] if
    nothing is listening. *)

val close : t -> unit
(** Idempotent. *)

val call :
  ?deadline_ms:int -> ?params:Obs.Json.t -> t -> Protocol.verb ->
  (Obs.Json.t, error) result
(** Send one request (ids auto-increment per connection) and block for its
    response. Accepts replies carrying the request's id or [-1] (the
    server's id for requests it could not parse). Do not mix with
    pipelined {!send}s that still have responses outstanding. *)

val send :
  ?deadline_ms:int -> ?params:Obs.Json.t -> t -> Protocol.verb ->
  (int, error) result
(** Write one request frame without waiting; returns its id. The server
    executes pipelined requests concurrently and replies in completion
    order. *)

val recv : t -> (int * (Obs.Json.t, error) result, error) result
(** Block for the next response frame: [(id, result)]. The outer error is
    always [Transport] (EOF, framing, parse); a server-side error for a
    particular request is the inner [Error (Server _)]. *)
