(** A small synchronous client for the service protocol — what [wfa call]
    and the tests use. One request in flight at a time per connection. *)

type t

type error =
  | Server of Protocol.err_code * string
      (** the server answered with an error response *)
  | Transport of string
      (** connection-level failure: framing, parse, id mismatch, EOF *)

val error_string : error -> string

val connect : string -> t
(** Connect to the server's socket path. Raises [Unix.Unix_error] if
    nothing is listening. *)

val close : t -> unit
(** Idempotent. *)

val call :
  ?deadline_ms:int -> ?params:Obs.Json.t -> t -> Protocol.verb ->
  (Obs.Json.t, error) result
(** Send one request (ids auto-increment per connection) and block for its
    response. Accepts replies carrying the request's id or [-1] (the
    server's id for requests it could not parse). *)
