type job = {
  jb_req : Protocol.request;
  jb_conn : int;
  jb_enq_ns : int64;
  jb_deadline_ns : int64 option;
  jb_reply : Protocol.response -> float -> unit;
}

type t = {
  queue : job Jobq.t;
  workers : unit Domain.t array;
  mutable drained : bool;
  drain_mutex : Mutex.t;
}

let past deadline_ns = Obs.Clock.now_ns () >= deadline_ns

(* Polled between schedules / fuzz trials — hot paths, and a fuzz job with
   domains > 1 polls one shared closure from every worker domain, so the
   state must be atomic. Reading the clock is a syscall-cheap vdso call but
   still worth throttling — on every 256th call, starting with the FIRST:
   gating on call 255 instead would leave an already-expired deadline (or
   one that expires within the first 255 scheduling steps) unchecked until
   the 256th poll, long after it should have bound. *)
let deadline_cancel deadline_ns =
  let calls = Atomic.make 0 in
  let tripped = Atomic.make false in
  fun () ->
    Atomic.get tripped
    ||
    if Atomic.fetch_and_add calls 1 land 0xff = 0 && past deadline_ns then
    begin
      Atomic.set tripped true;
      true
    end
    else false

let run_job job =
  let id = job.jb_req.Protocol.rq_id in
  let respond rs =
    job.jb_reply rs (Obs.Clock.elapsed_s ~since:job.jb_enq_ns)
  in
  match job.jb_deadline_ns with
  | Some d when past d ->
    respond
      (Protocol.error ~id Protocol.Deadline_exceeded
         "deadline exceeded while queued")
  | deadline ->
    let cancel = Option.map deadline_cancel deadline in
    let result =
      Jobs.run ?cancel job.jb_req.Protocol.rq_verb job.jb_req.Protocol.rq_params
    in
    respond { Protocol.rs_id = id; rs_result = result }

let worker queue () =
  let rec loop () =
    match Jobq.pop queue with
    | None -> ()
    | Some job ->
      (* jb_reply must not raise; a handler exception is already folded
         into the response by Jobs.run. Belt and braces anyway: a dead
         worker would strand the queue. *)
      (try run_job job with _ -> ());
      loop ()
  in
  loop ()

let create ~workers ~queue_bound =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  (* fair dequeue across connections: one pipelining client cannot
     monopolize the workers *)
  let queue = Jobq.create ~key:(fun j -> j.jb_conn) ~bound:queue_bound () in
  {
    queue;
    workers = Array.init workers (fun _ -> Domain.spawn (worker queue));
    drained = false;
    drain_mutex = Mutex.create ();
  }

let submit t job = Jobq.try_push t.queue job
let submit_many t jobs = Jobq.try_push_many t.queue jobs
let queue_length t = Jobq.length t.queue

let drain t =
  Mutex.lock t.drain_mutex;
  let first = not t.drained in
  t.drained <- true;
  Mutex.unlock t.drain_mutex;
  if first then begin
    Jobq.close t.queue;
    Array.iter Domain.join t.workers
  end
