/* poll(2) for the I/O shards.

   The stdlib's only readiness primitive, Unix.select, is capped at
   FD_SETSIZE (1024) descriptors per call; a shard serving thousands of
   pipelined connections needs poll. Same shape as the clock stub next
   door in lib/obs: one C function, no dependency beyond the libc.

   Calling convention, chosen so the OCaml side allocates nothing per
   call: three parallel pre-sized arrays (fds, event masks in, revent
   masks out) and a count of live entries. Unix.file_descr is an
   immediate int on Unix, so Int_val reads it directly. EINTR is
   reported as 0 ready (the caller's loop just polls again); any other
   failure raises Failure. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>
#include <poll.h>
#include <errno.h>
#include <stdlib.h>
#include <string.h>

#define SVC_POLLIN 1
#define SVC_POLLOUT 2
#define SVC_POLLERR 4
#define SVC_POLLHUP 8

CAMLprim value svc_poll_stub(value vfds, value vevents, value vrevents,
                             value vn, value vtimeout_ms)
{
  CAMLparam5(vfds, vevents, vrevents, vn, vtimeout_ms);
  int n = Int_val(vn);
  int timeout = Int_val(vtimeout_ms);
  struct pollfd stack_pfd[64];
  struct pollfd *pfd = stack_pfd;
  int i, r;

  if (n < 0 || n > (int)Wosize_val(vfds) || n > (int)Wosize_val(vevents) ||
      n > (int)Wosize_val(vrevents))
    caml_invalid_argument("Svc.Poll: inconsistent array sizes");
  if (n > 64) {
    pfd = malloc((size_t)n * sizeof(struct pollfd));
    if (pfd == NULL) caml_raise_out_of_memory();
  }
  for (i = 0; i < n; i++) {
    int ev = Int_val(Field(vevents, i));
    pfd[i].fd = Int_val(Field(vfds, i));
    pfd[i].events = (short)(((ev & SVC_POLLIN) ? POLLIN : 0) |
                            ((ev & SVC_POLLOUT) ? POLLOUT : 0));
    pfd[i].revents = 0;
  }

  caml_release_runtime_system();
  r = poll(pfd, (nfds_t)n, timeout);
  caml_acquire_runtime_system();

  if (r < 0 && errno != EINTR) {
    if (pfd != stack_pfd) free(pfd);
    caml_failwith("Svc.Poll: poll(2) failed");
  }
  if (r < 0) r = 0; /* EINTR: behave as a timeout, the shard loops */

  for (i = 0; i < n; i++) {
    short re = pfd[i].revents;
    int out = ((re & POLLIN) ? SVC_POLLIN : 0) |
              ((re & POLLOUT) ? SVC_POLLOUT : 0) |
              ((re & (POLLERR | POLLNVAL)) ? SVC_POLLERR : 0) |
              ((re & POLLHUP) ? SVC_POLLHUP : 0);
    Field(vrevents, i) = Val_int(out); /* immediates: no write barrier */
  }
  if (pfd != stack_pfd) free(pfd);
  CAMLreturn(Val_int(r));
}
