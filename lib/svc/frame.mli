(** Length-prefixed frames over a file descriptor.

    The wire unit of the service protocol: a 4-byte big-endian payload
    length followed by that many payload bytes (UTF-8 JSON, but this layer
    does not care). Framing is what lets the server bound work {e before}
    parsing: an adversarial or misconfigured client announcing a frame
    beyond [max_len] is rejected after reading (and discarding) exactly
    that frame — the stream stays synchronized, the connection stays up,
    and the payload never reaches the JSON parser. *)

val default_max_len : int
(** 1 MiB. *)

val max_wire_len : int
(** The largest length the 4-byte header can carry ([2^31 - 1]); a header
    with the top bit set is reported as [Desynced]. *)

type error =
  | Eof  (** clean end of stream at a frame boundary *)
  | Truncated  (** end of stream inside a header or payload *)
  | Oversized of int
      (** announced length exceeded [max_len]; the payload was read and
          discarded, so the next frame can still be read *)
  | Desynced of int
      (** announced length exceeded {!max_wire_len}: no writer produces
          such a header, there is no payload to skip, and the byte stream
          is unrecoverable — the caller must close the connection *)

val error_string : error -> string

val write : Unix.file_descr -> string -> unit
(** Write one frame (header + payload), looping over partial writes.
    Raises [Unix.Unix_error] as the underlying syscalls do; raises
    [Invalid_argument] on a payload longer than {!max_wire_len}. *)

val read : ?max_len:int -> Unix.file_descr -> (string, error) result
(** Read one frame. [max_len] defaults to {!default_max_len}. Blocking;
    raises [Unix.Unix_error] on transport errors other than orderly
    shutdown. *)
