(** Length-prefixed frames over a file descriptor.

    The wire unit of the service protocol: a 4-byte big-endian payload
    length followed by that many payload bytes (UTF-8 JSON, but this layer
    does not care). Framing is what lets the server bound work {e before}
    parsing: an adversarial or misconfigured client announcing a frame
    beyond [max_len] is rejected after reading (and discarding) exactly
    that frame — the stream stays synchronized, the connection stays up,
    and the payload never reaches the JSON parser. *)

val default_max_len : int
(** 1 MiB. *)

val max_wire_len : int
(** The largest length the 4-byte header can carry ([2^31 - 1]); a header
    with the top bit set is reported as [Desynced]. *)

type error =
  | Eof  (** clean end of stream at a frame boundary *)
  | Truncated  (** end of stream inside a header or payload *)
  | Oversized of int
      (** announced length exceeded [max_len]; the payload was read and
          discarded, so the next frame can still be read *)
  | Desynced of int
      (** announced length exceeded {!max_wire_len}: no writer produces
          such a header, there is no payload to skip, and the byte stream
          is unrecoverable — the caller must close the connection *)

val error_string : error -> string

val encode : string -> string
(** [encode payload] is the full wire image (header + payload) as one
    string — what a shard queues on a connection's non-blocking write
    buffer. Raises [Invalid_argument] beyond {!max_wire_len}. *)

val write : Unix.file_descr -> string -> unit
(** Write one frame (header + payload), looping over partial writes.
    Raises [Unix.Unix_error] as the underlying syscalls do; raises
    [Invalid_argument] on a payload longer than {!max_wire_len}. *)

val read : ?max_len:int -> Unix.file_descr -> (string, error) result
(** Read one frame. [max_len] defaults to {!default_max_len}. Blocking;
    raises [Unix.Unix_error] on transport errors other than orderly
    shutdown. *)

(** {1 Incremental decoding}

    The push-style counterpart of {!read} for non-blocking shards: {!feed}
    whatever chunk the socket yielded, then pull with {!next} until it
    returns [`Await]. Error semantics mirror the blocking reader:
    [Oversized] is reported once, {e after} the offending payload has been
    fully discarded (the stream stays synchronized and decoding continues);
    [Desynced] is sticky and terminal. [Eof] / [Truncated] never appear —
    end-of-stream is the caller's to observe on the socket. *)

type decoder

val decoder : ?max_len:int -> unit -> decoder
(** One per connection; the internal buffer is reused across frames. *)

val feed : decoder -> Bytes.t -> int -> int -> unit
(** [feed d src off len] appends [src[off..off+len)]. The bytes of a
    payload being discarded as oversized are dropped without buffering. *)

val next : decoder -> ([ `Frame of string | `Await ], error) result
(** The next complete frame, [`Await] if more input is needed, or an
    [Oversized] / [Desynced] report as described above. *)

(** {1 Zero-copy views}

    {!next_view} is {!next} without the payload copy: on [V_frame] the
    payload lies in place at
    [frame_buf d.[frame_off d .. frame_off d + frame_len d)], valid until
    the next {!feed} (which may compact or regrow the buffer). [V_frame]
    is a constant constructor, so a steady stream of frames is delivered
    without a single allocation — the shard hot path. *)

type view = V_await | V_frame | V_oversized of int | V_desynced of int

val next_view : decoder -> view
val frame_buf : decoder -> Bytes.t
val frame_off : decoder -> int
val frame_len : decoder -> int
