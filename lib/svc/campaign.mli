(** The campaign runner: execute a list of scenario specs and compare
    every result against its expectation.

    {!run_client} is the production path — scenarios travel to a live
    [wfa serve] as [scenario]-verb requests on one pipelined connection
    (at most [window] in flight; the server validates each spec itself
    and spreads them over its worker pool), each carrying its own
    [deadline_ms], so a slow scenario comes back [deadline_exceeded] and
    is reported as a {e timeout}, not a wrong answer, and backpressure
    ([overloaded]) surfaces per scenario rather than wedging the run.
    {!run_local} executes the same specs in-process through {!Jobs.run} —
    the identical code path the server's workers use — for quickstarts
    and tests that do not want a server.

    Outcomes per scenario are {!Scenario.Spec.classify} verdicts: [pass]
    (result matches the expectation, including expected violations and
    expected error classes), [fail] (ran, wrong answer), [timeout],
    [error]. A campaign {e succeeds} iff every scenario passes. *)

type row = {
  row_spec : Scenario.Spec.t;
  row_outcome : Scenario.Spec.outcome;
  row_detail : string;  (** one line: "expected X, got Y" *)
  row_latency_s : float;
      (** submit-to-result, client-side (includes queue wait) *)
}

type summary = {
  s_name : string;  (** campaign name *)
  s_rows : row list;  (** in input order, one per scenario *)
  s_pass : int;
  s_fail : int;
  s_timeout : int;
  s_error : int;
  s_wall_s : float;
}

val ok : summary -> bool
(** Every scenario passed. *)

val run_client :
  ?window:int ->
  ?default_deadline_ms:int ->
  name:string ->
  client:Client.t ->
  Scenario.Spec.t list ->
  summary
(** Pipelined execution over an existing connection. [window] (default
    [16], clamped to ≥ 1) bounds in-flight requests; [default_deadline_ms]
    applies to scenarios without their own. A transport failure
    mid-campaign classifies the affected and remaining scenarios as
    [error] rather than raising — a dead server is a result, not a
    crash. *)

val run_local :
  ?default_deadline_ms:int ->
  name:string ->
  Scenario.Spec.t list ->
  summary
(** Sequential in-process execution through {!Jobs.run}, deadlines
    enforced with the same cooperative-cancellation hooks the pool uses. *)

val record : summary -> Obs.Bench_record.t
(** The [wfa.bench] record (id ["campaign"] → [BENCH_campaign.json]): one
    row per scenario group (pass/fail/timeout/error counts) plus a
    [total] row carrying [scenarios_per_s] and
    [p50_scenario_latency_s] / [p99_scenario_latency_s] — the metrics the
    baseline gate watches. *)

val pp_summary : Format.formatter -> summary -> unit
(** The human table: per-group counts, every non-passing scenario with
    its one-line detail, and the totals. *)
