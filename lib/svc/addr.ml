type t = Unix_path of string | Tcp of string * int

let of_string s =
  let prefixed p =
    if String.length s >= String.length p && String.sub s 0 (String.length p) = p
    then Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  if s = "" then Error "empty address"
  else
    match prefixed "unix:" with
    | Some "" -> Error "unix: address needs a path"
    | Some path -> Ok (Unix_path path)
    | None -> (
      match prefixed "tcp:" with
      | None -> Ok (Unix_path s)
      | Some rest -> (
        match String.rindex_opt rest ':' with
        | None -> Error (Printf.sprintf "tcp address %S needs HOST:PORT" s)
        | Some i -> (
          let host = String.sub rest 0 i in
          let port = String.sub rest (i + 1) (String.length rest - i - 1) in
          match int_of_string_opt port with
          | Some p when p >= 0 && p <= 65535 -> Ok (Tcp (host, p))
          | Some _ -> Error (Printf.sprintf "port out of range in %S" s)
          | None -> Error (Printf.sprintf "invalid port in %S" s))))

let to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let pp ppf t = Format.pp_print_string ppf (to_string t)

let domain = function Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match
      Unix.getaddrinfo host ""
        [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
    with
    | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ -> addr
    | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))

let sockaddr ?(listen = false) = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp ("", port) ->
    Unix.ADDR_INET
      ((if listen then Unix.inet_addr_any else Unix.inet_addr_loopback), port)
  | Tcp (host, port) -> Unix.ADDR_INET (resolve host, port)

let of_sockaddr = function
  | Unix.ADDR_UNIX p -> Unix_path p
  | Unix.ADDR_INET (addr, port) -> Tcp (Unix.string_of_inet_addr addr, port)
