(** Listen/connect addresses for the job server.

    The wire protocol is versioned length-prefixed frames and the poll
    shards own plain file descriptors, so the server speaks any stream
    transport; this type names the two it binds — Unix-domain sockets for
    single-host use and TCP for worker fleets ({!Dist}). The textual form
    is what [wfa serve --listen] and [wfa modelcheck --workers] accept:

    - [unix:PATH] — a Unix-domain socket at [PATH];
    - [tcp:HOST:PORT] — TCP; [HOST] may be a name or a literal address,
      and an empty host ([tcp::4000]) means all interfaces for a listener
      and the loopback for a connector;
    - anything else is taken as a bare Unix socket path, so existing
      [--socket /tmp/wfa.sock] invocations keep meaning what they meant. *)

type t = Unix_path of string | Tcp of string * int

val of_string : string -> (t, string) result
(** Parse the textual forms above. Port must be in [0, 65535]; port [0]
    asks the kernel for an ephemeral port (see {!Server.listen_addr}). *)

val to_string : t -> string
(** [unix:PATH] / [tcp:HOST:PORT] — round-trips through {!of_string}. *)

val pp : Format.formatter -> t -> unit

val domain : t -> Unix.socket_domain
(** [PF_UNIX] or [PF_INET]. *)

val sockaddr : ?listen:bool -> t -> Unix.sockaddr
(** The concrete address to bind ([~listen:true]) or connect to. An empty
    TCP host resolves to [0.0.0.0] when listening and [127.0.0.1] when
    connecting; host names go through [getaddrinfo]. Raises [Failure] when
    the host does not resolve — a configuration error, not a transient
    transport condition. *)

val of_sockaddr : Unix.sockaddr -> t
(** Back-translation for [getsockname] — how a listener bound to port [0]
    reports the port the kernel picked. *)
