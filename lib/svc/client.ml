module J = Obs.Json
module P = Protocol

type t = { fd : Unix.file_descr; mutable next_id : int; mutable closed : bool }

type error = Server of P.err_code * string | Transport of string

let error_string = function
  | Server (code, msg) -> Printf.sprintf "%s: %s" (P.err_code_string code) msg
  | Transport msg -> "transport: " ^ msg

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; next_id = 0; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* Replies may be large (fuzz witnesses embed full run reports): read with a
   generous frame cap rather than the server-side default. *)
let reply_max_len = 64 * 1024 * 1024

(* -- pipelined half-calls ------------------------------------------------ *)

let send ?deadline_ms ?params t verb =
  let id = t.next_id in
  t.next_id <- id + 1;
  let rq = P.request ?deadline_ms ?params ~id verb in
  match Frame.write t.fd (J.to_string (P.request_json rq)) with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Transport ("write: " ^ Unix.error_message e))
  | () -> Ok id

let recv t =
  match Frame.read ~max_len:reply_max_len t.fd with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Transport ("read: " ^ Unix.error_message e))
  | Error e -> Error (Transport (Frame.error_string e))
  | Ok payload -> (
    match P.parse payload with
    | Error msg -> Error (Transport ("invalid JSON: " ^ msg))
    | Ok json -> (
      match P.response_of_json json with
      | Error msg -> Error (Transport msg)
      | Ok rs -> (
        match rs.P.rs_result with
        | Ok result -> Ok (rs.P.rs_id, Ok result)
        | Error (code, msg) -> Ok (rs.P.rs_id, Error (Server (code, msg))))))

(* -- one blocking round-trip --------------------------------------------- *)

let call ?deadline_ms ?params t verb =
  match send ?deadline_ms ?params t verb with
  | Error _ as e -> e
  | Ok id -> (
    match recv t with
    | Error _ as e -> e
    | Ok (rid, _) when rid <> id && rid <> -1 ->
      Error
        (Transport (Printf.sprintf "response id %d for request %d" rid id))
    | Ok (_, result) -> result)
