module P = Protocol

type t = {
  fd : Unix.file_descr;
  mutable next_id : int;
  mutable closed : bool;
  mutable codec : P.Codec.t;
}

type error = Server of P.err_code * string | Transport of string

let error_string = function
  | Server (code, msg) -> Printf.sprintf "%s: %s" (P.err_code_string code) msg
  | Transport msg -> "transport: " ^ msg

(* Retryable refusals: the server may still be binding (ECONNREFUSED), or
   its Unix socket file may not exist yet (ENOENT). Anything else — bad
   address, permission, unreachable network — is a configuration error and
   retrying would only mask it. *)
let retryable = function
  | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET -> true
  | _ -> false

let backoff_cap_ms = 2000

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let codec t = t.codec

(* Replies may be large (fuzz witnesses embed full run reports): read with a
   generous frame cap rather than the server-side default. *)
let reply_max_len = 64 * 1024 * 1024

(* -- pipelined half-calls ------------------------------------------------ *)

let send ?deadline_ms ?params t verb =
  let id = t.next_id in
  t.next_id <- id + 1;
  let rq = P.request ?deadline_ms ?params ~id verb in
  match Frame.write t.fd (P.Codec.encode_request t.codec rq) with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Transport ("write: " ^ Unix.error_message e))
  | () -> Ok id

let recv t =
  match Frame.read ~max_len:reply_max_len t.fd with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Transport ("read: " ^ Unix.error_message e))
  | Error e -> Error (Transport (Frame.error_string e))
  | Ok payload -> (
    (* codec-detecting, so a JSON error reply (or a downgraded server)
       parses fine on a binary-negotiated connection *)
    match P.Codec.decode_response payload with
    | Error msg -> Error (Transport msg)
    | Ok rs -> (
      match rs.P.rs_result with
      | Ok result -> Ok (rs.P.rs_id, Ok result)
      | Error (code, msg) -> Ok (rs.P.rs_id, Error (Server (code, msg)))))

(* Offer the codec over JSON, switch only on an explicit ack. Every failure
   mode — bad_request from a pre-hello server, an unintelligible ack, a
   transport hiccup — leaves the connection on JSON: negotiation downgrades,
   it never breaks an otherwise healthy connection. *)
let negotiate t offered =
  match send ~params:(P.hello_params offered) t P.Hello with
  | Error _ -> ()
  | Ok _ -> (
    match recv t with
    | Ok (_, Ok result) -> (
      match P.codec_of_hello_result result with
      | Some acked -> t.codec <- acked
      | None -> ())
    | Ok (_, Error _) | Error _ -> ())

let connect ?(retries = 0) ?(backoff_ms = 50) ?deadline_ms
    ?(codec = P.Codec.Json) target =
  let addr =
    match Addr.of_string target with
    | Ok a -> a
    | Error msg -> invalid_arg ("Svc.Client.connect: " ^ msg)
  in
  let sa = Addr.sockaddr addr in
  let started = Obs.Clock.now_ns () in
  let remaining_s () =
    match deadline_ms with
    | None -> infinity
    | Some ms ->
      (float_of_int ms /. 1000.) -. Obs.Clock.elapsed_s ~since:started
  in
  let rec attempt left backoff =
    let fd = Unix.socket (Addr.domain addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd sa with
    | () ->
      (match addr with
      | Addr.Tcp _ -> (
        (* small pipelined frames: Nagle would batch them against us *)
        try Unix.setsockopt fd Unix.TCP_NODELAY true
        with Unix.Unix_error _ -> ())
      | Addr.Unix_path _ -> ());
      { fd; next_id = 0; closed = false; codec = P.Codec.Json }
    | exception e -> (
      (try Unix.close fd with Unix.Unix_error _ -> ());
      match e with
      | Unix.Unix_error (err, _, _)
        when left > 0 && retryable err && remaining_s () > 0. ->
        (* clamp to the remaining budget: a 2 s backoff must not overrun
           a 100 ms deadline just because the doubling got there first *)
        Unix.sleepf
          (Float.min (float_of_int backoff /. 1000.) (remaining_s ()));
        attempt (left - 1) (min (backoff * 2) backoff_cap_ms)
      | e -> raise e)
  in
  let t = attempt (max 0 retries) (max 1 backoff_ms) in
  (match codec with
  | P.Codec.Json -> ()
  | P.Codec.Binary -> negotiate t codec);
  t

(* -- one blocking round-trip --------------------------------------------- *)

let call ?deadline_ms ?params t verb =
  match send ?deadline_ms ?params t verb with
  | Error _ as e -> e
  | Ok id -> (
    match recv t with
    | Error _ as e -> e
    | Ok (rid, _) when rid <> id && rid <> -1 ->
      Error
        (Transport (Printf.sprintf "response id %d for request %d" rid id))
    | Ok (_, result) -> result)
