type 'a t = {
  q : 'a Queue.t;
  bound : int;
  mutable closed : bool;
  mutex : Mutex.t;
  nonempty : Condition.t;
}

let create ~bound =
  if bound < 1 then invalid_arg "Jobq.create: bound must be >= 1";
  {
    q = Queue.create ();
    bound;
    closed = false;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
  }

let try_push t x =
  Mutex.lock t.mutex;
  let r =
    if t.closed then `Closed
    else if Queue.length t.q >= t.bound then `Full
    else begin
      Queue.push x t.q;
      Condition.signal t.nonempty;
      `Ok
    end
  in
  Mutex.unlock t.mutex;
  r

(* One lock acquisition for a whole batch; wake as many waiters as items
   actually entered the queue. *)
let try_push_many t xs =
  Mutex.lock t.mutex;
  let pushed = ref 0 in
  let rs =
    List.map
      (fun x ->
        if t.closed then `Closed
        else if Queue.length t.q >= t.bound then `Full
        else begin
          Queue.push x t.q;
          incr pushed;
          `Ok
        end)
      xs
  in
  if !pushed = 1 then Condition.signal t.nonempty
  else if !pushed > 1 then Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  rs

let pop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.nonempty t.mutex
  done;
  let r = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
  Mutex.unlock t.mutex;
  r

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.q in
  Mutex.unlock t.mutex;
  n
