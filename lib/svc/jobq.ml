type 'a t = {
  q : 'a Queue.t;  (* the whole queue when [key] is absent (plain FIFO) *)
  key : ('a -> int) option;
  per : (int, 'a Queue.t) Hashtbl.t;  (* keyed mode: one FIFO per class *)
  rotation : int Queue.t;  (* classes with at least one queued item *)
  mutable len : int;
  bound : int;
  mutable closed : bool;
  mutex : Mutex.t;
  nonempty : Condition.t;
}

let create ?key ~bound () =
  if bound < 1 then invalid_arg "Jobq.create: bound must be >= 1";
  {
    q = Queue.create ();
    key;
    per = Hashtbl.create 16;
    rotation = Queue.create ();
    len = 0;
    bound;
    closed = false;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
  }

(* Callers hold the mutex. The bound stays global — fairness is a dequeue
   property; admission is still one shared high-watermark. *)
let push_locked t x =
  if t.closed then `Closed
  else if t.len >= t.bound then `Full
  else begin
    (match t.key with
    | None -> Queue.push x t.q
    | Some key ->
      let k = key x in
      let sub =
        match Hashtbl.find_opt t.per k with
        | Some sub -> sub
        | None ->
          let sub = Queue.create () in
          Hashtbl.add t.per k sub;
          Queue.push k t.rotation;
          sub
      in
      Queue.push x sub);
    t.len <- t.len + 1;
    `Ok
  end

let pop_locked t =
  match t.key with
  | None -> Queue.pop t.q
  | Some _ ->
    (* round-robin: serve the class at the head of the rotation, then send
       it to the back (or retire it if that drained it) — a client
       pipelining 100 requests delays everyone else by at most one job per
       turn instead of 100 *)
    let k = Queue.pop t.rotation in
    let sub = Hashtbl.find t.per k in
    let x = Queue.pop sub in
    if Queue.is_empty sub then Hashtbl.remove t.per k
    else Queue.push k t.rotation;
    x

let try_push t x =
  Mutex.lock t.mutex;
  let r = push_locked t x in
  if r = `Ok then Condition.signal t.nonempty;
  Mutex.unlock t.mutex;
  r

(* One lock acquisition for a whole batch; wake as many waiters as items
   actually entered the queue. *)
let try_push_many t xs =
  Mutex.lock t.mutex;
  let pushed = ref 0 in
  let rs =
    List.map
      (fun x ->
        let r = push_locked t x in
        if r = `Ok then incr pushed;
        r)
      xs
  in
  if !pushed = 1 then Condition.signal t.nonempty
  else if !pushed > 1 then Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  rs

let pop t =
  Mutex.lock t.mutex;
  while t.len = 0 && not t.closed do
    Condition.wait t.nonempty t.mutex
  done;
  let r =
    if t.len = 0 then None
    else begin
      t.len <- t.len - 1;
      Some (pop_locked t)
    end
  in
  Mutex.unlock t.mutex;
  r

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n = t.len in
  Mutex.unlock t.mutex;
  n
