(** [poll(2)] for the I/O shards, via a one-function C stub.

    [Unix.select] — the stdlib's only readiness primitive — is capped at
    [FD_SETSIZE] (1024) descriptors per call, which a shard serving
    thousands of pipelined connections overflows immediately. This wraps
    [poll(2)] behind a reusable registration set: the backing arrays are
    kept across iterations and grown geometrically, so steady-state event
    loops allocate nothing per poll.

    Usage per loop iteration: {!clear}, {!add} every interesting fd
    (remembering the returned index), {!wait}, then read {!revents} back
    by index. Not thread-safe; each shard owns one. *)

type t

val pollin : int
val pollout : int

val pollerr : int
(** Set in revents only ([POLLERR] / [POLLNVAL]). *)

val pollhup : int
(** Set in revents only. *)

val create : unit -> t

val clear : t -> unit
(** Forget all registrations; the backing capacity is retained. *)

val add : t -> Unix.file_descr -> int -> int
(** [add t fd events] registers [fd] for the bitwise-or of {!pollin} /
    {!pollout} in [events] and returns the slot index for {!revents}. *)

val wait : t -> timeout_ms:int -> int
(** Number of ready descriptors; [0] on timeout or [EINTR]. A negative
    [timeout_ms] blocks indefinitely. Raises [Failure] on other poll
    errors. *)

val revents : t -> int -> int
(** Ready events of slot [i] after {!wait}: bitwise-or of {!pollin},
    {!pollout}, {!pollerr}, {!pollhup}. *)

val length : t -> int
