let default_max_len = 1024 * 1024
let max_wire_len = 0x7fffffff

type error = Eof | Truncated | Oversized of int | Desynced of int

let error_string = function
  | Eof -> "end of stream"
  | Truncated -> "truncated frame"
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes)" n
  | Desynced n ->
    Printf.sprintf "unframeable length %d (wire limit %d)" n max_wire_len

let encode payload =
  let n = String.length payload in
  if n > max_wire_len then invalid_arg "Frame.encode: payload too long";
  let b = Bytes.create (4 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

let write fd payload =
  let n = String.length payload in
  if n > max_wire_len then invalid_arg "Frame.write: payload too long";
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 hdr 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 hdr 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 hdr 3 (n land 0xff);
  let write_all buf off len =
    let off = ref off and len = ref len in
    while !len > 0 do
      let w = Unix.write fd buf !off !len in
      off := !off + w;
      len := !len - w
    done
  in
  write_all hdr 0 4;
  write_all (Bytes.unsafe_of_string payload) 0 n

(* Read exactly [len] bytes into [buf]; [`Eof n] reports how many arrived
   before the stream ended. *)
let read_exactly fd buf len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let r = Unix.read fd buf !got (len - !got) in
    if r = 0 then eof := true else got := !got + r
  done;
  if !eof then `Eof !got else `Ok

let discard fd len =
  let chunk = Bytes.create 65536 in
  let left = ref len in
  let eof = ref false in
  while (not !eof) && !left > 0 do
    let r = Unix.read fd chunk 0 (min !left (Bytes.length chunk)) in
    if r = 0 then eof := true else left := !left - r
  done;
  not !eof

let read ?(max_len = default_max_len) fd =
  let hdr = Bytes.create 4 in
  match read_exactly fd hdr 4 with
  | `Eof 0 -> Error Eof
  | `Eof _ -> Error Truncated
  | `Ok ->
    let n =
      (Bytes.get_uint8 hdr 0 lsl 24)
      lor (Bytes.get_uint8 hdr 1 lsl 16)
      lor (Bytes.get_uint8 hdr 2 lsl 8)
      lor Bytes.get_uint8 hdr 3
    in
    (* The top bit on the wire would be a negative 32-bit length. No writer
       can have produced it, so there is no payload to skip: the stream is
       desynchronized for good, unlike the recoverable Oversized case. *)
    if n > max_wire_len then Error (Desynced n)
    else if n > max_len then
      if discard fd n then Error (Oversized n) else Error Truncated
    else begin
      let buf = Bytes.create n in
      match read_exactly fd buf n with
      | `Ok -> Ok (Bytes.unsafe_to_string buf)
      | `Eof _ -> Error Truncated
    end

(* ------------------------------------------------- incremental decoding *)

(* The shards' push-style counterpart of [read]: bytes arrive in whatever
   chunks the socket yields, the decoder buffers the unconsumed tail and
   emits complete frames. One decoder per connection, its buffer reused
   across frames, so a steady stream settles into zero buffer growth. *)

type decoder = {
  d_max : int;
  mutable d_buf : Bytes.t;  (* unconsumed input: d_buf[d_off .. d_off+d_len) *)
  mutable d_off : int;
  mutable d_len : int;
  mutable d_skip : int;  (* oversized payload bytes still to discard *)
  mutable d_skip_announced : int;
  mutable d_dead : int;  (* Desynced announced length; < 0 when healthy *)
  mutable d_frame_off : int;  (* last V_frame: d_buf[d_frame_off ..) *)
  mutable d_frame_len : int;
}

let decoder ?(max_len = default_max_len) () =
  {
    d_max = max_len;
    d_buf = Bytes.create 4096;
    d_off = 0;
    d_len = 0;
    d_skip = 0;
    d_skip_announced = 0;
    d_dead = -1;
    d_frame_off = 0;
    d_frame_len = 0;
  }

let compact d =
  if d.d_len = 0 then d.d_off <- 0
  else if d.d_off > 0 && d.d_off >= Bytes.length d.d_buf - d.d_off - d.d_len
  then begin
    Bytes.blit d.d_buf d.d_off d.d_buf 0 d.d_len;
    d.d_off <- 0
  end

let feed d src off len =
  if len < 0 || off < 0 || off + len > Bytes.length src then
    invalid_arg "Frame.feed";
  (* bytes inside a frame being skipped never enter the buffer *)
  let consumed = min d.d_skip len in
  d.d_skip <- d.d_skip - consumed;
  let off = off + consumed and len = len - consumed in
  if len > 0 then begin
    compact d;
    if d.d_off + d.d_len + len > Bytes.length d.d_buf then begin
      let cap = ref (max 4096 (2 * Bytes.length d.d_buf)) in
      while d.d_len + len > !cap do
        cap := !cap * 2
      done;
      let b = Bytes.create !cap in
      Bytes.blit d.d_buf d.d_off b 0 d.d_len;
      d.d_buf <- b;
      d.d_off <- 0
    end;
    Bytes.blit src off d.d_buf (d.d_off + d.d_len) len;
    d.d_len <- d.d_len + len
  end

(* Allocation-free frame delivery: [V_frame] is a constant constructor and
   the payload stays in place — [d_frame_off]/[d_frame_len] point into the
   decoder's buffer, valid until the next [feed] (which may compact or
   regrow it). The copying [next] below remains for callers that want an
   owned string. *)
type view = V_await | V_frame | V_oversized of int | V_desynced of int

let frame_buf d = d.d_buf
let frame_off d = d.d_frame_off
let frame_len d = d.d_frame_len

let next_view d =
  if d.d_dead >= 0 then V_desynced d.d_dead
  else if d.d_skip > 0 then V_await
  else if d.d_skip_announced > 0 then begin
    (* the oversized payload has now been fully discarded: report it once,
       with the stream re-synchronized at the next header *)
    let n = d.d_skip_announced in
    d.d_skip_announced <- 0;
    V_oversized n
  end
  else if d.d_len < 4 then V_await
  else begin
    let b = d.d_buf and o = d.d_off in
    let n =
      (Bytes.get_uint8 b o lsl 24)
      lor (Bytes.get_uint8 b (o + 1) lsl 16)
      lor (Bytes.get_uint8 b (o + 2) lsl 8)
      lor Bytes.get_uint8 b (o + 3)
    in
    if n > max_wire_len then begin
      d.d_dead <- n;
      V_desynced n
    end
    else if n > d.d_max then begin
      (* consume the header, then discard [n] payload bytes: whatever is
         already buffered now, the rest as it is fed *)
      d.d_off <- d.d_off + 4;
      d.d_len <- d.d_len - 4;
      let buffered = min n d.d_len in
      d.d_off <- d.d_off + buffered;
      d.d_len <- d.d_len - buffered;
      d.d_skip <- n - buffered;
      d.d_skip_announced <- n;
      if d.d_skip > 0 then V_await
      else begin
        d.d_skip_announced <- 0;
        V_oversized n
      end
    end
    else if d.d_len >= 4 + n then begin
      d.d_frame_off <- d.d_off + 4;
      d.d_frame_len <- n;
      d.d_off <- d.d_off + 4 + n;
      d.d_len <- d.d_len - (4 + n);
      if d.d_len = 0 then d.d_off <- 0;
      V_frame
    end
    else V_await
  end

let next d =
  match next_view d with
  | V_await -> Ok `Await
  | V_frame -> Ok (`Frame (Bytes.sub_string d.d_buf d.d_frame_off d.d_frame_len))
  | V_oversized n -> Error (Oversized n)
  | V_desynced n -> Error (Desynced n)
