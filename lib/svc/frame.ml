let default_max_len = 1024 * 1024
let max_wire_len = 0x7fffffff

type error = Eof | Truncated | Oversized of int | Desynced of int

let error_string = function
  | Eof -> "end of stream"
  | Truncated -> "truncated frame"
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes)" n
  | Desynced n ->
    Printf.sprintf "unframeable length %d (wire limit %d)" n max_wire_len

let write fd payload =
  let n = String.length payload in
  if n > max_wire_len then invalid_arg "Frame.write: payload too long";
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 hdr 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 hdr 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 hdr 3 (n land 0xff);
  let write_all buf off len =
    let off = ref off and len = ref len in
    while !len > 0 do
      let w = Unix.write fd buf !off !len in
      off := !off + w;
      len := !len - w
    done
  in
  write_all hdr 0 4;
  write_all (Bytes.unsafe_of_string payload) 0 n

(* Read exactly [len] bytes into [buf]; [`Eof n] reports how many arrived
   before the stream ended. *)
let read_exactly fd buf len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let r = Unix.read fd buf !got (len - !got) in
    if r = 0 then eof := true else got := !got + r
  done;
  if !eof then `Eof !got else `Ok

let discard fd len =
  let chunk = Bytes.create 65536 in
  let left = ref len in
  let eof = ref false in
  while (not !eof) && !left > 0 do
    let r = Unix.read fd chunk 0 (min !left (Bytes.length chunk)) in
    if r = 0 then eof := true else left := !left - r
  done;
  not !eof

let read ?(max_len = default_max_len) fd =
  let hdr = Bytes.create 4 in
  match read_exactly fd hdr 4 with
  | `Eof 0 -> Error Eof
  | `Eof _ -> Error Truncated
  | `Ok ->
    let n =
      (Bytes.get_uint8 hdr 0 lsl 24)
      lor (Bytes.get_uint8 hdr 1 lsl 16)
      lor (Bytes.get_uint8 hdr 2 lsl 8)
      lor Bytes.get_uint8 hdr 3
    in
    (* The top bit on the wire would be a negative 32-bit length. No writer
       can have produced it, so there is no payload to skip: the stream is
       desynchronized for good, unlike the recoverable Oversized case. *)
    if n > max_wire_len then Error (Desynced n)
    else if n > max_len then
      if discard fd n then Error (Oversized n) else Error Truncated
    else begin
      let buf = Bytes.create n in
      match read_exactly fd buf n with
      | `Ok -> Ok (Bytes.unsafe_to_string buf)
      | `Eof _ -> Error Truncated
    end
