(** A bounded multi-producer/multi-consumer queue — the server's
    backpressure point.

    Producers (connection threads) never block: {!try_push} fails fast with
    [`Full] at the high-watermark so the server can reply [overloaded]
    immediately instead of letting latency grow without bound. Consumers
    (pool workers) block in {!pop}; after {!close} they drain whatever was
    already accepted and then see [None] — the drain half of graceful
    shutdown is built into the queue. *)

type 'a t

val create : ?key:('a -> int) -> bound:int -> unit -> 'a t
(** [bound] ≥ 1 (raises [Invalid_argument] otherwise) and is global —
    admission control stays one shared high-watermark either way.

    [key] classifies items (the pool keys on the connection id) and turns
    {!pop} into a round-robin over classes: each pop serves the class at
    the head of the rotation and sends it to the back, FIFO within a
    class. A client pipelining 100 requests then delays everyone else by
    at most one job per turn instead of 100, and under saturation the
    slots freed by pops are contested fairly rather than re-won by the
    noisiest tenant. Without [key] the queue is a plain FIFO. *)

val try_push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]

val try_push_many : 'a t -> 'a list -> [ `Ok | `Full | `Closed ] list
(** Push a batch under one lock acquisition (one verdict per item, in
    order): the shard→pool boundary submits every request decoded in a
    poll wakeup at once instead of taking the queue mutex per frame. *)

val pop : 'a t -> 'a option
(** Blocks while the queue is empty and open. [None] once the queue is
    closed {e and} drained — the consumer's signal to exit. *)

val close : 'a t -> unit
(** Idempotent. Pending and future {!try_push} calls see [`Closed]; blocked
    {!pop} calls wake and drain. *)

val length : 'a t -> int
(** Instantaneous depth (racy by nature; for gauges). *)
