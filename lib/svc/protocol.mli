(** The service wire protocol: JSON request/response envelopes.

    One frame ({!Frame}) carries one envelope. The grammar (DESIGN.md §5):

    {v
    request  ::= { "v": 1, "id": <int>, "verb": <verb>,
                   "params": <object>?, "deadline_ms": <int>? }
    verb     ::= "ping" | "stats" | "metrics" | "solve" | "modelcheck"
               | "subtree" | "fuzz" | "scenario" | "shutdown"
    response ::= { "v": 1, "id": <int>, "ok": true,  "result": <value> }
               | { "v": 1, "id": <int>, "ok": false,
                   "error": { "code": <code>, "msg": <string> } }
    code     ::= "bad_request" | "oversized" | "overloaded"
               | "deadline_exceeded" | "shutting_down" | "internal"
    v}

    [id] is chosen by the client and echoed verbatim; responses to frames
    whose request could not be identified (oversized, unparseable) carry
    [id = -1]. [deadline_ms] is relative to the server's receipt of the
    request; the server falls back to its configured default when absent.
    Unknown fields are ignored — the schema can grow compatibly. *)

type verb =
  | Ping  (** liveness probe; answered inline by the shard *)
  | Stats  (** server counters snapshot; answered inline *)
  | Metrics  (** {!Obs.Metrics} registry snapshot as JSON; answered inline *)
  | Solve  (** pool job: one safe-agreement instance *)
  | Modelcheck  (** pool job: exhaustive search over a named scenario *)
  | Subtree  (** pool job: one frontier subtree ({!Simkit.Exhaustive.split}) *)
  | Fuzz  (** pool job: randomized schedule search *)
  | Shutdown  (** begin graceful drain *)
  | Hello
      (** codec negotiation: offer a codec by name, the server acks with
          the best codec it supports; answered inline *)
  | Scenario
      (** pool job: one caller-supplied {!Scenario.Spec} object as params —
          validated server-side (a structured [bad_request] carrying the
          JSON path on anything malformed, never a crash), then dispatched
          to the solve / modelcheck / fuzz handler it describes *)

val verb_string : verb -> string
val verb_of_string : string -> verb option

type err_code =
  | Bad_request  (** unparseable frame, unknown verb, invalid params *)
  | Oversized  (** frame longer than the server's [max_frame] *)
  | Overloaded  (** bounded queue at its high-watermark — backpressure *)
  | Deadline_exceeded  (** deadline passed while queued or mid-execution *)
  | Shutting_down  (** server is draining; request was not accepted *)
  | Internal  (** handler raised; the message carries the exception *)

val err_code_string : err_code -> string
val err_code_of_string : string -> err_code option

type request = {
  rq_id : int;
  rq_verb : verb;
  rq_params : Obs.Json.t;  (** [Obj []] when absent *)
  rq_deadline_ms : int option;
      (** validated to [1 .. max_deadline_ms] at parse time *)
}

val max_deadline_ms : int
(** [2^31 - 1] (~24 days). A wire [deadline_ms] above this is rejected as
    [bad_request] at parse time: larger values would overflow the
    millisecond→nanosecond conversion in the server's deadline arithmetic
    and wrap into a spurious (or absent) deadline. *)

type response = {
  rs_id : int;
  rs_result : (Obs.Json.t, err_code * string) result;
}

val request : ?deadline_ms:int -> ?params:Obs.Json.t -> id:int -> verb -> request
val ok : id:int -> Obs.Json.t -> response
val error : id:int -> err_code -> string -> response

val request_json : request -> Obs.Json.t
val response_json : response -> Obs.Json.t

val request_of_json : Obs.Json.t -> (request, string) result
val response_of_json : Obs.Json.t -> (response, string) result

val parse : string -> (Obs.Json.t, string) result
(** {!Obs.Json.of_string} under wire-appropriate guards (nesting ≤ 64):
    the only JSON entry point the server and client use on bytes read from
    a socket. *)

(** The two wire codecs behind the framed envelope. [Json] is the default,
    the debug path, and the canonical semantics; [Binary] is the compact
    hot-path encoding, negotiated per connection via {!Hello} but
    self-describing per frame: a binary envelope opens with the magic byte
    [0xB1], which no JSON envelope can ({!Obs.Json.to_string} emits ['{'}]),
    so {!Codec.detect} needs one byte of lookahead and readers keep no
    codec state. Responses travel in the codec their request arrived in.

    Binary envelope (all integers big-endian):
    {v
    byte 0      0xB1 magic
    byte 1      version (1)
    byte 2      kind: 0 request | 1 ok-response | 2 error-response
    request:    byte 3 verb tag, byte 4 flags (bit 0: deadline present),
                bytes 5..12 id, [bytes 13..20 deadline_ms,] params value
    ok:         byte 3 reserved, bytes 4..11 id, result value
    error:      byte 3 code tag, bytes 4..11 id, u32 msg length, msg bytes
    value:      0 null | 1 false | 2 true | 3 int (8B) | 4 float (IEEE 8B)
              | 5 str (u32 len + bytes) | 6 list (u32 count + values)
              | 7 obj (u32 count, then per field: u32 klen + key + value)
    v}

    The value model is exactly {!Obs.Json.t} under the JSON writer's
    canonicalization (non-finite floats encode as null), so decoding a
    binary envelope and decoding its JSON rendering yield equal values —
    the invariant [test_codec.ml]'s differential battery pins down. The
    binary reader enforces the same guards as {!parse}: nesting ≤ 64,
    announced lengths checked against remaining input before allocation. *)
module Codec : sig
  type t = Json | Binary

  val to_string : t -> string
  (** ["json"] / ["binary"] — the names {!Hello} carries. *)

  val of_string : string -> t option
  val magic : char

  val detect : string -> t
  (** By first byte; an empty payload detects as [Json] (and fails JSON
      parsing with a real error). *)

  val encode_request : t -> request -> string
  val encode_response : t -> response -> string

  val encode_request_into : Buffer.t -> t -> request -> unit
  (** Append the envelope to [buf] — the allocation-reuse entry point the
      server and client thread their per-connection buffers through. *)

  val encode_response_into : Buffer.t -> t -> response -> unit

  val decode_request : string -> (request, string) result
  (** Codec-detecting: binary envelopes through the binary reader, anything
      else through {!parse} + {!request_of_json}. *)

  val decode_response : string -> (response, string) result
end

val hello_params : Codec.t -> Obs.Json.t
(** [{"codec": <name>}] — the {!Hello} request params offering a codec. *)

val hello_ack : Obs.Json.t -> Codec.t
(** Server side: the codec to ack for an offer — the offered codec when
    supported, [Json] otherwise (downgrade, never an error: an old client
    must keep working against a new server and vice versa). *)

val hello_result : Codec.t -> Obs.Json.t
(** [{"codec": <name>}] — the {!Hello} response result carrying the ack. *)

val codec_of_hello_result : Obs.Json.t -> Codec.t option
(** Client side: parse the ack; [None] means an unintelligible ack and the
    client must stay on [Json]. *)
