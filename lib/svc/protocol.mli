(** The service wire protocol: JSON request/response envelopes.

    One frame ({!Frame}) carries one envelope. The grammar (DESIGN.md §5):

    {v
    request  ::= { "v": 1, "id": <int>, "verb": <verb>,
                   "params": <object>?, "deadline_ms": <int>? }
    verb     ::= "ping" | "stats" | "metrics" | "solve" | "modelcheck"
               | "subtree" | "fuzz" | "shutdown"
    response ::= { "v": 1, "id": <int>, "ok": true,  "result": <value> }
               | { "v": 1, "id": <int>, "ok": false,
                   "error": { "code": <code>, "msg": <string> } }
    code     ::= "bad_request" | "oversized" | "overloaded"
               | "deadline_exceeded" | "shutting_down" | "internal"
    v}

    [id] is chosen by the client and echoed verbatim; responses to frames
    whose request could not be identified (oversized, unparseable) carry
    [id = -1]. [deadline_ms] is relative to the server's receipt of the
    request; the server falls back to its configured default when absent.
    Unknown fields are ignored — the schema can grow compatibly. *)

type verb =
  | Ping  (** liveness probe; answered inline by the shard *)
  | Stats  (** server counters snapshot; answered inline *)
  | Metrics  (** {!Obs.Metrics} registry snapshot as JSON; answered inline *)
  | Solve  (** pool job: one safe-agreement instance *)
  | Modelcheck  (** pool job: exhaustive search over a named scenario *)
  | Subtree  (** pool job: one frontier subtree ({!Simkit.Exhaustive.split}) *)
  | Fuzz  (** pool job: randomized schedule search *)
  | Shutdown  (** begin graceful drain *)

val verb_string : verb -> string
val verb_of_string : string -> verb option

type err_code =
  | Bad_request  (** unparseable frame, unknown verb, invalid params *)
  | Oversized  (** frame longer than the server's [max_frame] *)
  | Overloaded  (** bounded queue at its high-watermark — backpressure *)
  | Deadline_exceeded  (** deadline passed while queued or mid-execution *)
  | Shutting_down  (** server is draining; request was not accepted *)
  | Internal  (** handler raised; the message carries the exception *)

val err_code_string : err_code -> string
val err_code_of_string : string -> err_code option

type request = {
  rq_id : int;
  rq_verb : verb;
  rq_params : Obs.Json.t;  (** [Obj []] when absent *)
  rq_deadline_ms : int option;
      (** validated to [1 .. max_deadline_ms] at parse time *)
}

val max_deadline_ms : int
(** [2^31 - 1] (~24 days). A wire [deadline_ms] above this is rejected as
    [bad_request] at parse time: larger values would overflow the
    millisecond→nanosecond conversion in the server's deadline arithmetic
    and wrap into a spurious (or absent) deadline. *)

type response = {
  rs_id : int;
  rs_result : (Obs.Json.t, err_code * string) result;
}

val request : ?deadline_ms:int -> ?params:Obs.Json.t -> id:int -> verb -> request
val ok : id:int -> Obs.Json.t -> response
val error : id:int -> err_code -> string -> response

val request_json : request -> Obs.Json.t
val response_json : response -> Obs.Json.t

val request_of_json : Obs.Json.t -> (request, string) result
val response_of_json : Obs.Json.t -> (response, string) result

val parse : string -> (Obs.Json.t, string) result
(** {!Obs.Json.of_string} under wire-appropriate guards (nesting ≤ 64):
    the only JSON entry point the server and client use on bytes read from
    a socket. *)
