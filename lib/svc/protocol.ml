module J = Obs.Json

type verb =
  | Ping
  | Stats
  | Metrics
  | Solve
  | Modelcheck
  | Subtree
  | Fuzz
  | Shutdown
  | Hello
  | Scenario

let verb_string = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Solve -> "solve"
  | Modelcheck -> "modelcheck"
  | Subtree -> "subtree"
  | Fuzz -> "fuzz"
  | Shutdown -> "shutdown"
  | Hello -> "hello"
  | Scenario -> "scenario"

let verb_of_string = function
  | "ping" -> Some Ping
  | "stats" -> Some Stats
  | "metrics" -> Some Metrics
  | "solve" -> Some Solve
  | "modelcheck" -> Some Modelcheck
  | "subtree" -> Some Subtree
  | "fuzz" -> Some Fuzz
  | "shutdown" -> Some Shutdown
  | "hello" -> Some Hello
  | "scenario" -> Some Scenario
  | _ -> None

type err_code =
  | Bad_request
  | Oversized
  | Overloaded
  | Deadline_exceeded
  | Shutting_down
  | Internal

let err_code_string = function
  | Bad_request -> "bad_request"
  | Oversized -> "oversized"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let err_code_of_string = function
  | "bad_request" -> Some Bad_request
  | "oversized" -> Some Oversized
  | "overloaded" -> Some Overloaded
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "shutting_down" -> Some Shutting_down
  | "internal" -> Some Internal
  | _ -> None

type request = {
  rq_id : int;
  rq_verb : verb;
  rq_params : J.t;
  rq_deadline_ms : int option;
}

type response = { rs_id : int; rs_result : (J.t, err_code * string) result }

let request ?deadline_ms ?(params = J.Obj []) ~id verb =
  { rq_id = id; rq_verb = verb; rq_params = params; rq_deadline_ms = deadline_ms }

let ok ~id result = { rs_id = id; rs_result = Ok result }
let error ~id code msg = { rs_id = id; rs_result = Error (code, msg) }

let request_json rq =
  J.Obj
    ([
       ("v", J.Int 1);
       ("id", J.Int rq.rq_id);
       ("verb", J.Str (verb_string rq.rq_verb));
       ("params", rq.rq_params);
     ]
    @
    match rq.rq_deadline_ms with
    | None -> []
    | Some ms -> [ ("deadline_ms", J.Int ms) ])

let response_json rs =
  J.Obj
    ([ ("v", J.Int 1); ("id", J.Int rs.rs_id) ]
    @
    match rs.rs_result with
    | Ok result -> [ ("ok", J.Bool true); ("result", result) ]
    | Error (code, msg) ->
      [
        ("ok", J.Bool false);
        ( "error",
          J.Obj [ ("code", J.Str (err_code_string code)); ("msg", J.Str msg) ]
        );
      ])

let check_version j =
  match J.member "v" j with
  | Some (J.Int 1) -> Ok ()
  | Some _ -> Error "unsupported protocol version"
  | None -> Error "missing field \"v\""

let int_field name j =
  match J.member name j with
  | Some v -> (
    match J.to_int_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "field %S is not an integer" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let max_deadline_ms = 0x7fffffff

let ( let* ) = Result.bind

let request_of_json j =
  match j with
  | J.Obj _ ->
    let* () = check_version j in
    let* id = int_field "id" j in
    let* verb =
      match J.member "verb" j with
      | Some (J.Str s) -> (
        match verb_of_string s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "unknown verb %S" s))
      | Some _ -> Error "field \"verb\" is not a string"
      | None -> Error "missing field \"verb\""
    in
    let* params =
      match J.member "params" j with
      | None -> Ok (J.Obj [])
      | Some (J.Obj _ as p) -> Ok p
      | Some _ -> Error "field \"params\" is not an object"
    in
    let* deadline_ms =
      match J.member "deadline_ms" j with
      | None -> Ok None
      | Some v -> (
        match J.to_int_opt v with
        | Some ms when ms > 0 && ms <= max_deadline_ms -> Ok (Some ms)
        | Some ms when ms > 0 ->
          (* beyond ~24 days the ms -> ns conversion would overflow native
             ints; an attacker-supplied bomb must die here, at the parse
             boundary, not wrap into a spurious verdict downstream *)
          Error
            (Printf.sprintf "field \"deadline_ms\" exceeds maximum %d"
               max_deadline_ms)
        | Some _ -> Error "field \"deadline_ms\" must be positive"
        | None -> Error "field \"deadline_ms\" is not an integer")
    in
    Ok { rq_id = id; rq_verb = verb; rq_params = params; rq_deadline_ms = deadline_ms }
  | _ -> Error "request is not an object"

let response_of_json j =
  match j with
  | J.Obj _ ->
    let* () = check_version j in
    let* id = int_field "id" j in
    let* result =
      match J.member "ok" j with
      | Some (J.Bool true) -> (
        match J.member "result" j with
        | Some r -> Ok (Ok r)
        | None -> Error "missing field \"result\"")
      | Some (J.Bool false) -> (
        match J.member "error" j with
        | Some (J.Obj _ as e) -> (
          match (J.member "code" e, J.member "msg" e) with
          | Some (J.Str c), Some (J.Str msg) -> (
            match err_code_of_string c with
            | Some code -> Ok (Error (code, msg))
            | None -> Error (Printf.sprintf "unknown error code %S" c))
          | _ -> Error "malformed \"error\" object")
        | Some _ -> Error "field \"error\" is not an object"
        | None -> Error "missing field \"error\"")
      | Some _ -> Error "field \"ok\" is not a boolean"
      | None -> Error "missing field \"ok\""
    in
    Ok { rs_id = id; rs_result = result }
  | _ -> Error "response is not an object"

(* Frames are already bounded by Frame.read's max_len; the depth guard here
   is the one that matters for adversarial payloads. *)
let parse s = J.of_string ~max_depth:64 s

(* ---------------------------------------------------------------- codec *)

module Codec = struct
  type t = Json | Binary

  let to_string = function Json -> "json" | Binary -> "binary"

  let of_string = function
    | "json" -> Some Json
    | "binary" -> Some Binary
    | _ -> None

  (* 0xB1 can never open a JSON envelope (the writer emits '{' = 0x7B, the
     parser skips only ASCII whitespace), so one byte of lookahead is enough
     to tell the codecs apart — reads never need per-connection state. *)
  let magic = '\xb1'
  let version = '\x01'
  let detect s = if String.length s > 0 && s.[0] = magic then Binary else Json

  let kind_request = '\x00'
  let kind_ok = '\x01'
  let kind_error = '\x02'

  let verb_tag = function
    | Ping -> 0
    | Stats -> 1
    | Metrics -> 2
    | Solve -> 3
    | Modelcheck -> 4
    | Subtree -> 5
    | Fuzz -> 6
    | Shutdown -> 7
    | Hello -> 8
    | Scenario -> 9

  let verb_of_tag = function
    | 0 -> Some Ping
    | 1 -> Some Stats
    | 2 -> Some Metrics
    | 3 -> Some Solve
    | 4 -> Some Modelcheck
    | 5 -> Some Subtree
    | 6 -> Some Fuzz
    | 7 -> Some Shutdown
    | 8 -> Some Hello
    | 9 -> Some Scenario
    | _ -> None

  let err_tag = function
    | Bad_request -> 0
    | Oversized -> 1
    | Overloaded -> 2
    | Deadline_exceeded -> 3
    | Shutting_down -> 4
    | Internal -> 5

  let err_of_tag = function
    | 0 -> Some Bad_request
    | 1 -> Some Oversized
    | 2 -> Some Overloaded
    | 3 -> Some Deadline_exceeded
    | 4 -> Some Shutting_down
    | 5 -> Some Internal
    | _ -> None

  (* -- binary writer: straight from the envelope record to bytes --------
     The value encoding itself (tags, guards, non-finite-float
     canonicalization) lives in [Obs.Binval] so the checkpoint store writes
     the same bytes; the envelope header framing around it stays here. *)

  let add_u32 = Obs.Binval.add_u32
  let add_i64 = Obs.Binval.add_i64
  let add_value = Obs.Binval.add_value

  let add_request_binary buf rq =
    Buffer.add_char buf magic;
    Buffer.add_char buf version;
    Buffer.add_char buf kind_request;
    Buffer.add_char buf (Char.unsafe_chr (verb_tag rq.rq_verb));
    Buffer.add_char buf
      (match rq.rq_deadline_ms with None -> '\x00' | Some _ -> '\x01');
    add_i64 buf rq.rq_id;
    (match rq.rq_deadline_ms with None -> () | Some ms -> add_i64 buf ms);
    add_value buf rq.rq_params

  let add_response_binary buf rs =
    Buffer.add_char buf magic;
    Buffer.add_char buf version;
    match rs.rs_result with
    | Ok result ->
      Buffer.add_char buf kind_ok;
      Buffer.add_char buf '\x00';
      add_i64 buf rs.rs_id;
      add_value buf result
    | Error (code, msg) ->
      Buffer.add_char buf kind_error;
      Buffer.add_char buf (Char.unsafe_chr (err_tag code));
      add_i64 buf rs.rs_id;
      add_u32 buf (String.length msg);
      Buffer.add_string buf msg

  let encode_request_into buf codec rq =
    match codec with
    | Json -> J.to_buffer buf (request_json rq)
    | Binary -> add_request_binary buf rq

  let encode_response_into buf codec rs =
    match codec with
    | Json -> J.to_buffer buf (response_json rs)
    | Binary -> add_response_binary buf rs

  let encode_request codec rq =
    let buf = Buffer.create 128 in
    encode_request_into buf codec rq;
    Buffer.contents buf

  let encode_response codec rs =
    let buf = Buffer.create 256 in
    encode_response_into buf codec rs;
    Buffer.contents buf

  (* -- binary reader ---------------------------------------------------- *)

  exception Bin = Obs.Binval.Error

  let bin_fail fmt = Printf.ksprintf (fun s -> raise (Bin s)) fmt

  (* the same nesting bound [parse] applies to wire JSON *)
  let max_value_depth = 64

  let get_i64 = Obs.Binval.get_i64
  let decode_value s pos = Obs.Binval.decode_value ~max_depth:max_value_depth s pos

  let check_header s ~kind_min ~kind_max =
    if String.length s < 4 then bin_fail "truncated binary envelope";
    if s.[0] <> magic then bin_fail "not a binary envelope";
    if s.[1] <> version then bin_fail "unsupported protocol version";
    let kind = Char.code s.[2] in
    if kind < kind_min || kind > kind_max then
      bin_fail "unexpected envelope kind %d" kind;
    kind

  let finish s pos v =
    if !pos <> String.length s then bin_fail "trailing garbage" else v

  let decode_request_binary s =
    match
      let _ = check_header s ~kind_min:0 ~kind_max:0 in
      if String.length s < 13 then bin_fail "truncated binary envelope";
      let verb =
        match verb_of_tag (Char.code s.[3]) with
        | Some v -> v
        | None -> bin_fail "unknown verb tag %d" (Char.code s.[3])
      in
      let flags = Char.code s.[4] in
      if flags land lnot 1 <> 0 then bin_fail "unknown flags 0x%02x" flags;
      let pos = ref 5 in
      let id = get_i64 s pos in
      let deadline_ms =
        if flags land 1 = 0 then None
        else begin
          if String.length s - !pos < 8 then
            bin_fail "truncated binary envelope";
          let ms = get_i64 s pos in
          if ms > 0 && ms <= max_deadline_ms then Some ms
          else if ms > 0 then
            bin_fail "field \"deadline_ms\" exceeds maximum %d" max_deadline_ms
          else bin_fail "field \"deadline_ms\" must be positive"
        end
      in
      let params = decode_value s pos in
      (match params with
      | J.Obj _ -> ()
      | _ -> bin_fail "field \"params\" is not an object");
      finish s pos
        { rq_id = id; rq_verb = verb; rq_params = params; rq_deadline_ms = deadline_ms }
    with
    | rq -> Ok rq
    | exception Bin msg -> Error msg

  let decode_response_binary s =
    match
      let kind = check_header s ~kind_min:1 ~kind_max:2 in
      if String.length s < 12 then bin_fail "truncated binary envelope";
      (* byte 3 is the error-code tag for error envelopes, reserved for ok;
         the id always sits at bytes 4..11 *)
      let pos = ref 4 in
      if kind = Char.code kind_ok then begin
        let id = get_i64 s pos in
        let result = decode_value s pos in
        finish s pos { rs_id = id; rs_result = Ok result }
      end
      else begin
        let code =
          match err_of_tag (Char.code s.[3]) with
          | Some c -> c
          | None -> bin_fail "unknown error code tag %d" (Char.code s.[3])
        in
        let id = get_i64 s pos in
        if String.length s - !pos < 4 then bin_fail "truncated binary envelope";
        let len =
          (Char.code s.[!pos] lsl 24)
          lor (Char.code s.[!pos + 1] lsl 16)
          lor (Char.code s.[!pos + 2] lsl 8)
          lor Char.code s.[!pos + 3]
        in
        pos := !pos + 4;
        if len < 0 || String.length s - !pos < len then
          bin_fail "truncated binary envelope";
        let msg = String.sub s !pos len in
        pos := !pos + len;
        finish s pos { rs_id = id; rs_result = Error (code, msg) }
      end
    with
    | rs -> Ok rs
    | exception Bin msg -> Error msg

  (* keep the "invalid JSON: " prefix the pre-codec server and client put
     on parse-stage errors; envelope-shape errors stay bare in both codecs *)
  let parse_json s =
    match parse s with
    | Ok _ as ok -> ok
    | Error msg -> Error ("invalid JSON: " ^ msg)

  let ( let* ) = Result.bind

  let decode_request s =
    match detect s with
    | Binary -> decode_request_binary s
    | Json ->
      let* j = parse_json s in
      request_of_json j

  let decode_response s =
    match detect s with
    | Binary -> decode_response_binary s
    | Json ->
      let* j = parse_json s in
      response_of_json j
end

(* ---------------------------------------------------- codec negotiation *)

(* The hello verb: the client offers a codec by name, the server acks with
   the best codec it supports — an unknown offer downgrades to "json", and
   on a server predating hello the bad_request reply downgrades the client
   the same way. Hello itself always travels as JSON (the client cannot
   know binary is understood before the ack), so the default path never
   changes. *)

let hello_params codec = J.Obj [ ("codec", J.Str (Codec.to_string codec)) ]

let hello_ack params =
  match J.member "codec" params with
  | Some (J.Str s) -> (
    match Codec.of_string s with Some c -> c | None -> Codec.Json)
  | _ -> Codec.Json

let hello_result codec = J.Obj [ ("codec", J.Str (Codec.to_string codec)) ]

let codec_of_hello_result result =
  match J.member "codec" result with
  | Some (J.Str s) -> Codec.of_string s
  | _ -> None
