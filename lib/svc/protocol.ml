module J = Obs.Json

type verb =
  | Ping
  | Stats
  | Metrics
  | Solve
  | Modelcheck
  | Subtree
  | Fuzz
  | Shutdown

let verb_string = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Solve -> "solve"
  | Modelcheck -> "modelcheck"
  | Subtree -> "subtree"
  | Fuzz -> "fuzz"
  | Shutdown -> "shutdown"

let verb_of_string = function
  | "ping" -> Some Ping
  | "stats" -> Some Stats
  | "metrics" -> Some Metrics
  | "solve" -> Some Solve
  | "modelcheck" -> Some Modelcheck
  | "subtree" -> Some Subtree
  | "fuzz" -> Some Fuzz
  | "shutdown" -> Some Shutdown
  | _ -> None

type err_code =
  | Bad_request
  | Oversized
  | Overloaded
  | Deadline_exceeded
  | Shutting_down
  | Internal

let err_code_string = function
  | Bad_request -> "bad_request"
  | Oversized -> "oversized"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let err_code_of_string = function
  | "bad_request" -> Some Bad_request
  | "oversized" -> Some Oversized
  | "overloaded" -> Some Overloaded
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "shutting_down" -> Some Shutting_down
  | "internal" -> Some Internal
  | _ -> None

type request = {
  rq_id : int;
  rq_verb : verb;
  rq_params : J.t;
  rq_deadline_ms : int option;
}

type response = { rs_id : int; rs_result : (J.t, err_code * string) result }

let request ?deadline_ms ?(params = J.Obj []) ~id verb =
  { rq_id = id; rq_verb = verb; rq_params = params; rq_deadline_ms = deadline_ms }

let ok ~id result = { rs_id = id; rs_result = Ok result }
let error ~id code msg = { rs_id = id; rs_result = Error (code, msg) }

let request_json rq =
  J.Obj
    ([
       ("v", J.Int 1);
       ("id", J.Int rq.rq_id);
       ("verb", J.Str (verb_string rq.rq_verb));
       ("params", rq.rq_params);
     ]
    @
    match rq.rq_deadline_ms with
    | None -> []
    | Some ms -> [ ("deadline_ms", J.Int ms) ])

let response_json rs =
  J.Obj
    ([ ("v", J.Int 1); ("id", J.Int rs.rs_id) ]
    @
    match rs.rs_result with
    | Ok result -> [ ("ok", J.Bool true); ("result", result) ]
    | Error (code, msg) ->
      [
        ("ok", J.Bool false);
        ( "error",
          J.Obj [ ("code", J.Str (err_code_string code)); ("msg", J.Str msg) ]
        );
      ])

let check_version j =
  match J.member "v" j with
  | Some (J.Int 1) -> Ok ()
  | Some _ -> Error "unsupported protocol version"
  | None -> Error "missing field \"v\""

let int_field name j =
  match J.member name j with
  | Some v -> (
    match J.to_int_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "field %S is not an integer" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let max_deadline_ms = 0x7fffffff

let ( let* ) = Result.bind

let request_of_json j =
  match j with
  | J.Obj _ ->
    let* () = check_version j in
    let* id = int_field "id" j in
    let* verb =
      match J.member "verb" j with
      | Some (J.Str s) -> (
        match verb_of_string s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "unknown verb %S" s))
      | Some _ -> Error "field \"verb\" is not a string"
      | None -> Error "missing field \"verb\""
    in
    let* params =
      match J.member "params" j with
      | None -> Ok (J.Obj [])
      | Some (J.Obj _ as p) -> Ok p
      | Some _ -> Error "field \"params\" is not an object"
    in
    let* deadline_ms =
      match J.member "deadline_ms" j with
      | None -> Ok None
      | Some v -> (
        match J.to_int_opt v with
        | Some ms when ms > 0 && ms <= max_deadline_ms -> Ok (Some ms)
        | Some ms when ms > 0 ->
          (* beyond ~24 days the ms -> ns conversion would overflow native
             ints; an attacker-supplied bomb must die here, at the parse
             boundary, not wrap into a spurious verdict downstream *)
          Error
            (Printf.sprintf "field \"deadline_ms\" exceeds maximum %d"
               max_deadline_ms)
        | Some _ -> Error "field \"deadline_ms\" must be positive"
        | None -> Error "field \"deadline_ms\" is not an integer")
    in
    Ok { rq_id = id; rq_verb = verb; rq_params = params; rq_deadline_ms = deadline_ms }
  | _ -> Error "request is not an object"

let response_of_json j =
  match j with
  | J.Obj _ ->
    let* () = check_version j in
    let* id = int_field "id" j in
    let* result =
      match J.member "ok" j with
      | Some (J.Bool true) -> (
        match J.member "result" j with
        | Some r -> Ok (Ok r)
        | None -> Error "missing field \"result\"")
      | Some (J.Bool false) -> (
        match J.member "error" j with
        | Some (J.Obj _ as e) -> (
          match (J.member "code" e, J.member "msg" e) with
          | Some (J.Str c), Some (J.Str msg) -> (
            match err_code_of_string c with
            | Some code -> Ok (Error (code, msg))
            | None -> Error (Printf.sprintf "unknown error code %S" c))
          | _ -> Error "malformed \"error\" object")
        | Some _ -> Error "field \"error\" is not an object"
        | None -> Error "missing field \"error\"")
      | Some _ -> Error "field \"ok\" is not a boolean"
      | None -> Error "missing field \"ok\""
    in
    Ok { rs_id = id; rs_result = result }
  | _ -> Error "response is not an object"

(* Frames are already bounded by Frame.read's max_len; the depth guard here
   is the one that matters for adversarial payloads. *)
let parse s = J.of_string ~max_depth:64 s
