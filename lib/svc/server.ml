module J = Obs.Json
module P = Protocol

type config = {
  listen : Addr.t;
  workers : int;
  shards : int;
  queue_bound : int;
  default_deadline_ms : int option;
  max_frame : int;
  max_reply : int;
}

let default_config ~listen =
  {
    listen;
    workers = 2;
    shards = 2;
    queue_bound = 64;
    default_deadline_ms = None;
    max_frame = Frame.default_max_len;
    max_reply = Frame.max_wire_len;
  }

(* ----------------------------------------------------------- write buffer *)

(* The write side of a connection: one reusable byte buffer holding the
   unwritten tail of every queued frame. Frames are appended in place —
   4-byte header written directly, payload blitted once — so the steady
   state allocates nothing: no Frame.encode copy, no queue cells. The
   buffer grows by doubling under burst, compacts in place when the
   consumed prefix frees enough room, and snaps back to the initial size
   once drained after an outsized reply. *)
type wbuf = {
  mutable w_buf : Bytes.t;
  mutable w_start : int;  (* first unwritten byte *)
  mutable w_stop : int;  (* end of buffered data *)
}

let wbuf_initial = 4096
let wbuf_shrink = 1024 * 1024

let wbuf_create () =
  { w_buf = Bytes.create wbuf_initial; w_start = 0; w_stop = 0 }

let wbuf_len w = w.w_stop - w.w_start
let wbuf_is_empty w = w.w_stop = w.w_start

let wbuf_clear w =
  w.w_start <- 0;
  w.w_stop <- 0

let wbuf_reserve w extra =
  if w.w_stop + extra > Bytes.length w.w_buf then begin
    let len = wbuf_len w in
    if len + extra <= Bytes.length w.w_buf then begin
      Bytes.blit w.w_buf w.w_start w.w_buf 0 len;
      w.w_start <- 0;
      w.w_stop <- len
    end
    else begin
      let cap = ref (max wbuf_initial (2 * Bytes.length w.w_buf)) in
      while len + extra > !cap do
        cap := !cap * 2
      done;
      let b = Bytes.create !cap in
      Bytes.blit w.w_buf w.w_start b 0 len;
      w.w_buf <- b;
      w.w_start <- 0;
      w.w_stop <- len
    end
  end

let wbuf_put_header w n =
  Bytes.set_uint8 w.w_buf w.w_stop ((n lsr 24) land 0xff);
  Bytes.set_uint8 w.w_buf (w.w_stop + 1) ((n lsr 16) land 0xff);
  Bytes.set_uint8 w.w_buf (w.w_stop + 2) ((n lsr 8) land 0xff);
  Bytes.set_uint8 w.w_buf (w.w_stop + 3) (n land 0xff);
  w.w_stop <- w.w_stop + 4

let wbuf_add_frame w payload =
  let n = String.length payload in
  wbuf_reserve w (4 + n);
  wbuf_put_header w n;
  Bytes.blit_string payload 0 w.w_buf w.w_stop n;
  w.w_stop <- w.w_stop + n

let wbuf_add_frame_bytes w src off n =
  wbuf_reserve w (4 + n);
  wbuf_put_header w n;
  Bytes.blit src off w.w_buf w.w_stop n;
  w.w_stop <- w.w_stop + n

let wbuf_consume w n =
  w.w_start <- w.w_start + n;
  if w.w_start = w.w_stop then begin
    w.w_start <- 0;
    w.w_stop <- 0;
    if Bytes.length w.w_buf > wbuf_shrink then
      w.w_buf <- Bytes.create wbuf_initial
  end

(* ------------------------------------------------------------ conn state *)

(* A connection is owned by exactly one shard: every field below is
   touched only by that shard's thread. The read side is an incremental
   decoder fed from a shared scratch buffer; the write side is the
   reusable [wbuf] drained by non-blocking writes. Many requests may be
   in flight at once ([c_inflight]); responses are appended in completion
   order, which the protocol allows because they carry the request id. *)
type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_dec : Frame.decoder;
  c_wb : wbuf;
  mutable c_inflight : int;
  mutable c_eof : bool;  (* read side done (EOF / half-close) *)
  mutable c_closing : bool;  (* stop reading; close once flushed *)
  mutable c_dead : bool;  (* transport error: discard and close *)
  mutable c_requests : int;
}

(* [cp_payload] is the serialized response envelope, headerless: the
   owning shard writes the frame header straight into the connection's
   write buffer when it applies the completion. *)
type completion = { cp_conn : int; cp_payload : string }

(* The shard's cross-thread surface is [s_mutex] + the wake pipe: the
   accept thread posts adopted fds, pool workers post encoded response
   frames, and [wait] posts the stop flag. Everything else — the poll
   set, the connection table — is private to the shard thread. *)
type shard = {
  s_id : int;
  s_wake_r : Unix.file_descr;
  s_wake_w : Unix.file_descr;
  s_mutex : Mutex.t;
  mutable s_inbox_conns : (int * Unix.file_descr) list;  (* newest first *)
  mutable s_inbox_done : completion list;  (* newest first *)
  mutable s_stop : bool;
  s_poll : Poll.t;
  s_conns : (int, conn) Hashtbl.t;
  mutable s_adopted : int;
  mutable s_thread : Thread.t option;
}

type t = {
  cfg : config;
  reply_cap : int;
  bound : Addr.t;  (* the address actually bound (kernel-chosen port) *)
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stop : bool Atomic.t;
  dead : bool Atomic.t;  (* wait finished; wake pipes are closed *)
  pool : Pool.t;
  shards : shard array;
  mutable accept_thread : Thread.t option;
  next_conn : int Atomic.t;
  (* plain atomics back the stats verb; the registry mirrors them for
     export but is not thread-safe, so every registry touch holds obs_mutex
     (sinks share it — the stock ones are not thread-safe either) *)
  accepted : int Atomic.t;
  rejected : int Atomic.t;
  served : int Atomic.t;
  timed_out : int Atomic.t;
  inflight : int Atomic.t;
  sink : Obs.Sink.t option;
  registry : Obs.Metrics.registry;
  obs_mutex : Mutex.t;
  mutable waited : bool;
  wait_mutex : Mutex.t;
}

(* ------------------------------------------------------- instrumentation *)

let with_obs t f =
  Mutex.lock t.obs_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.obs_mutex) f

(* Guarded by the match on t.sink at every call site: when the server runs
   without a sink, no event (or field list) is ever allocated. *)
let emit t sink name fields =
  with_obs t (fun () -> Obs.Sink.emit sink (Obs.Event.make name fields))

let gauges t =
  with_obs t (fun () ->
      Obs.Metrics.set
        (Obs.Metrics.gauge t.registry "svc.queue.depth")
        (float_of_int (Pool.queue_length t.pool));
      Obs.Metrics.set
        (Obs.Metrics.gauge t.registry "svc.inflight")
        (float_of_int (Atomic.get t.inflight)))

let count_reject t code =
  Atomic.incr t.rejected;
  with_obs t (fun () ->
      Obs.Metrics.incr
        (Obs.Metrics.counter t.registry
           ~labels:[ ("code", P.err_code_string code) ]
           "svc.requests.rejected"))

let count_accept t =
  Atomic.incr t.accepted;
  Atomic.incr t.inflight;
  with_obs t (fun () ->
      Obs.Metrics.incr (Obs.Metrics.counter t.registry "svc.requests.accepted"));
  gauges t

let count_done t verb latency_s ~timeout =
  Atomic.decr t.inflight;
  Atomic.incr t.served;
  if timeout then Atomic.incr t.timed_out;
  with_obs t (fun () ->
      Obs.Metrics.observe
        (Obs.Metrics.histogram t.registry
           ~labels:[ ("verb", P.verb_string verb) ]
           "svc.latency_s")
        latency_s;
      if timeout then
        Obs.Metrics.incr
          (Obs.Metrics.counter t.registry "svc.requests.timeout"));
  gauges t

let listen_addr t = t.bound

let stats_json t =
  J.Obj
    [
      ("accepted", J.Int (Atomic.get t.accepted));
      ("rejected", J.Int (Atomic.get t.rejected));
      ("served", J.Int (Atomic.get t.served));
      ("timed_out", J.Int (Atomic.get t.timed_out));
      ("inflight", J.Int (Atomic.get t.inflight));
      ("queue_depth", J.Int (Pool.queue_length t.pool));
      ("workers", J.Int t.cfg.workers);
      ("shards", J.Int (Array.length t.shards));
    ]

(* --------------------------------------------------------------- wakeup *)

let bang = Bytes.make 1 '!'

let shard_wake shard =
  (* the pipe is non-blocking: a full pipe means wakeups are already
     pending, and any error means the shard is past caring *)
  try ignore (Unix.write shard.s_wake_w bang 0 1) with Unix.Unix_error _ -> ()

let shard_post shard cp =
  Mutex.lock shard.s_mutex;
  shard.s_inbox_done <- cp :: shard.s_inbox_done;
  Mutex.unlock shard.s_mutex;
  shard_wake shard

let shard_adopt shard id fd =
  Mutex.lock shard.s_mutex;
  shard.s_inbox_conns <- (id, fd) :: shard.s_inbox_conns;
  Mutex.unlock shard.s_mutex;
  shard_wake shard

let wake t =
  if not (Atomic.get t.dead) then
    try ignore (Unix.write t.wake_w bang 0 1) with _ -> ()

let shutdown t = if not (Atomic.exchange t.stop true) then wake t

(* ------------------------------------------------------------- replies *)

(* Serialize (in the calling thread — a pool worker for job responses, so
   serialization parallelizes) in the codec the request arrived in, and
   cap: a response that exceeds the configured reply limit degrades to a
   bounded [oversized] error instead of killing the connection. Returns
   the headerless payload; framing happens at the write buffer. *)
let encode_response t codec rs =
  let payload = P.Codec.encode_response codec rs in
  if String.length payload <= t.reply_cap then payload
  else
    P.Codec.encode_response codec
      (P.error ~id:rs.P.rs_id P.Oversized
         (Printf.sprintf "response of %d bytes exceeds reply limit %d"
            (String.length payload) t.reply_cap))

(* Shard-thread only: append an encoded frame to the connection. *)
let enqueue_response t codec conn rs =
  if not conn.c_dead then wbuf_add_frame conn.c_wb (encode_response t codec rs)

let reject t conn ~codec ~id code msg =
  count_reject t code;
  (match t.sink with
  | None -> ()
  | Some s ->
    emit t s Obs.Event.Name.svc_reject
      [
        ("conn", J.Int conn.c_id);
        ("id", J.Int id);
        ("code", J.Str (P.err_code_string code));
      ]);
  enqueue_response t codec conn (P.error ~id code msg)

(* ------------------------------------------------------------ dispatch *)

let deadline_of t rq =
  match
    match rq.P.rq_deadline_ms with
    | Some _ as d -> d
    | None -> t.cfg.default_deadline_ms
  with
  | None -> None
  | Some ms ->
    (* the wire value is parse-bounded to max_deadline_ms; clamp the
       configured default identically, then saturate the addition — an
       extreme deadline must mean "far future", never an overflow that
       wraps negative and trips [deadline_exceeded] instantly *)
    let ms = min ms P.max_deadline_ms in
    let now = Obs.Clock.now_ns () in
    let abs = Int64.add now (Int64.mul (Int64.of_int ms) 1_000_000L) in
    Some (if Int64.compare abs now < 0 then Int64.max_int else abs)

(* Runs on a pool worker once the job finishes. The worker never touches
   the socket: it serializes the response and posts the encoded frame to
   the owning shard — the connection's only writer — through the wake
   pipe. (This is what deleted the old refcounted-replier machinery.) *)
let job_reply t shard conn_id codec rq rs latency_s =
  let verb = rq.P.rq_verb in
  let timeout =
    match rs.P.rs_result with
    | Error (P.Deadline_exceeded, _) -> true
    | _ -> false
  in
  count_done t verb latency_s ~timeout;
  (match t.sink with
  | None -> ()
  | Some s ->
    let ms = J.Float (latency_s *. 1e3) in
    let base =
      [
        ("conn", J.Int conn_id);
        ("id", J.Int rq.P.rq_id);
        ("verb", J.Str (P.verb_string verb));
      ]
    in
    if timeout then emit t s Obs.Event.Name.svc_timeout (base @ [ ("ms", ms) ])
    else
      let status =
        match rs.P.rs_result with
        | Ok _ -> "ok"
        | Error (code, _) -> P.err_code_string code
      in
      emit t s Obs.Event.Name.svc_done
        (base @ [ ("status", J.Str status); ("ms", ms) ]));
  shard_post shard { cp_conn = conn_id; cp_payload = encode_response t codec rs }

(* Submit every job decoded during one poll wakeup as a single batch —
   one queue-lock acquisition at the shard→pool boundary — then settle
   the per-request bookkeeping from the verdicts. *)
let submit_batch t shard batch =
  let jobs =
    List.map
      (fun (conn, rq, codec) ->
        {
          Pool.jb_req = rq;
          jb_conn = conn.c_id;
          jb_enq_ns = Obs.Clock.now_ns ();
          jb_deadline_ns = deadline_of t rq;
          jb_reply = (fun rs lat -> job_reply t shard conn.c_id codec rq rs lat);
        })
      batch
  in
  List.iter2
    (fun (conn, rq, codec) verdict ->
      match verdict with
      | `Ok ->
        conn.c_inflight <- conn.c_inflight + 1;
        count_accept t;
        (match t.sink with
        | None -> ()
        | Some s ->
          emit t s Obs.Event.Name.svc_request
            [
              ("conn", J.Int conn.c_id);
              ("id", J.Int rq.P.rq_id);
              ("verb", J.Str (P.verb_string rq.P.rq_verb));
            ])
      | `Full ->
        reject t conn ~codec ~id:rq.P.rq_id P.Overloaded
          (Printf.sprintf "queue full (bound %d)" t.cfg.queue_bound)
      | `Closed ->
        reject t conn ~codec ~id:rq.P.rq_id P.Shutting_down
          "server is draining")
    batch
    (Pool.submit_many t.pool jobs)

let handle_frame t conn codec payload pending =
  match P.Codec.decode_request payload with
  | Error msg -> reject t conn ~codec ~id:(-1) P.Bad_request msg
  | Ok rq -> (
    match rq.P.rq_verb with
    | P.Ping -> enqueue_response t codec conn (P.ok ~id:rq.P.rq_id (J.Str "pong"))
    | P.Hello ->
      (* ack the offered codec when we support it, json otherwise; the
         reply travels in the codec the hello itself arrived in (JSON from
         any current client — it cannot know better yet) *)
      let acked = P.hello_ack rq.P.rq_params in
      enqueue_response t codec conn (P.ok ~id:rq.P.rq_id (P.hello_result acked))
    | P.Stats -> enqueue_response t codec conn (P.ok ~id:rq.P.rq_id (stats_json t))
    | P.Metrics ->
      (* a registry snapshot costs no job slot: answered inline by the
         shard, under the same mutex every other registry touch takes *)
      let snapshot = with_obs t (fun () -> Obs.Metrics.to_json t.registry) in
      enqueue_response t codec conn (P.ok ~id:rq.P.rq_id snapshot)
    | P.Shutdown ->
      enqueue_response t codec conn (P.ok ~id:rq.P.rq_id (J.Str "draining"));
      shutdown t
    | P.Solve | P.Modelcheck | P.Subtree | P.Fuzz | P.Scenario ->
      if Atomic.get t.stop then
        reject t conn ~codec ~id:rq.P.rq_id P.Shutting_down
          "server is draining"
      else pending := (conn, rq, codec) :: !pending)

(* The binary ping fast path: the canonical binary ping envelope (no
   deadline, empty params — exactly what Codec.encode_request emits) is 18
   bytes whose only variable part is the id. Recognize it in place on the
   decoder's buffer, patch the request's id bytes into the shard's
   preserialized pong response, and append it to the write buffer: zero
   allocations end to end. Anything else — a deadline flag, non-empty
   params, JSON — falls through to the generic decoder. *)
let binary_ping_len = 18

let is_binary_ping buf off len =
  len = binary_ping_len
  && Bytes.get buf off = P.Codec.magic
  && Bytes.get buf (off + 1) = '\x01' (* version *)
  && Bytes.get buf (off + 2) = '\x00' (* kind: request *)
  && Bytes.get buf (off + 3) = '\x00' (* verb: ping *)
  && Bytes.get buf (off + 4) = '\x00' (* flags: no deadline *)
  && Bytes.get buf (off + 13) = '\x07' (* params: object... *)
  && Bytes.get buf (off + 14) = '\x00' (* ...of zero fields *)
  && Bytes.get buf (off + 15) = '\x00'
  && Bytes.get buf (off + 16) = '\x00'
  && Bytes.get buf (off + 17) = '\x00'

(* [pong] is the shard-owned template from [make_pong]; id at bytes 4..11
   mirrors the request's id at bytes 5..12. *)
let handle_frame_view t conn pong pending =
  conn.c_requests <- conn.c_requests + 1;
  let buf = Frame.frame_buf conn.c_dec in
  let off = Frame.frame_off conn.c_dec in
  let len = Frame.frame_len conn.c_dec in
  if is_binary_ping buf off len then begin
    Bytes.blit buf (off + 5) pong 4 8;
    wbuf_add_frame_bytes conn.c_wb pong 0 (Bytes.length pong)
  end
  else begin
    let codec =
      if len > 0 && Bytes.get buf off = P.Codec.magic then P.Codec.Binary
      else P.Codec.Json
    in
    handle_frame t conn codec (Bytes.sub_string buf off len) pending
  end

let make_pong () =
  Bytes.of_string
    (P.Codec.encode_response P.Codec.Binary (P.ok ~id:0 (J.Str "pong")))

(* --------------------------------------------------------- shard thread *)

let conn_pending_write conn = not (wbuf_is_empty conn.c_wb)

(* Non-blocking drain of the write buffer; a transport error discards the
   buffer and marks the connection dead (the read side would only see the
   same error). *)
let rec flush_conn conn =
  let w = conn.c_wb in
  let len = wbuf_len w in
  if len > 0 then
    match Unix.write conn.c_fd w.w_buf w.w_start len with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_conn conn
    | exception Unix.Unix_error (_, _, _) ->
      conn.c_dead <- true;
      wbuf_clear conn.c_wb
    | n ->
      wbuf_consume w n;
      if n = len then () else if n > 0 then flush_conn conn

let close_conn t conn =
  (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
  match t.sink with
  | None -> ()
  | Some s ->
    emit t s Obs.Event.Name.svc_conn_close
      [ ("conn", J.Int conn.c_id); ("requests", J.Int conn.c_requests) ]

(* A connection can be reaped once nothing more can reach it: its reads
   are finished (EOF, fatal frame, or transport error), every in-flight
   job has posted its completion, and the write queue is flushed. Holding
   the entry until [c_inflight] drops to zero is what lets a completion's
   conn-id lookup never dangle — and since the shard is the only writer
   and closes the fd itself, a late reply can never land on a
   kernel-reused descriptor (the hazard the old refcount guarded). *)
let conn_reapable conn =
  (conn.c_dead || ((conn.c_eof || conn.c_closing) && wbuf_is_empty conn.c_wb))
  && conn.c_inflight = 0

let drain_wake_pipe fd buf =
  let rec go () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) -> ()
    | n -> if n = Bytes.length buf then go ()
  in
  go ()

let shard_read t conn scratch pong pending =
  match Unix.read conn.c_fd scratch 0 (Bytes.length scratch) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) ->
    conn.c_dead <- true;
    wbuf_clear conn.c_wb
  | 0 -> conn.c_eof <- true
  | n ->
    Frame.feed conn.c_dec scratch 0 n;
    let rec pump () =
      if not (conn.c_closing || conn.c_dead) then
        match Frame.next_view conn.c_dec with
        | Frame.V_await -> ()
        | Frame.V_frame ->
          handle_frame_view t conn pong pending;
          pump ()
        | Frame.V_oversized n ->
          (* a pre-parse reject cannot know the frame's codec: JSON *)
          reject t conn ~codec:P.Codec.Json ~id:(-1) P.Oversized
            (Printf.sprintf "frame of %d bytes exceeds limit %d" n
               t.cfg.max_frame);
          pump ()
        | Frame.V_desynced n ->
          (* the announced payload cannot be skipped, so the byte stream
             is unrecoverable: answer once, flush, then close *)
          reject t conn ~codec:P.Codec.Json ~id:(-1) P.Oversized
            (Printf.sprintf "unframeable length %d exceeds wire limit %d" n
               Frame.max_wire_len);
          conn.c_closing <- true
    in
    pump ()

(* After the pool has drained, flush what the peers will still accept —
   bounded, so a stalled client cannot wedge shutdown — then close. *)
let shard_flush_all t shard =
  let deadline = Int64.add (Obs.Clock.now_ns ()) 5_000_000_000L in
  let rec go () =
    let pending =
      Hashtbl.fold
        (fun _ c acc -> if conn_pending_write c then c :: acc else acc)
        shard.s_conns []
    in
    if pending <> [] && Int64.compare (Obs.Clock.now_ns ()) deadline < 0
    then begin
      Poll.clear shard.s_poll;
      List.iter
        (fun c -> ignore (Poll.add shard.s_poll c.c_fd Poll.pollout))
        pending;
      ignore (Poll.wait shard.s_poll ~timeout_ms:100);
      List.iter flush_conn pending;
      go ()
    end
  in
  go ();
  Hashtbl.iter (fun _ c -> close_conn t c) shard.s_conns;
  Hashtbl.reset shard.s_conns

let shard_iteration t shard scratch pong wake_buf slots pending =
  (* 1. poll: the wake pipe plus every connection with an interest *)
  Poll.clear shard.s_poll;
  let wake_slot = Poll.add shard.s_poll shard.s_wake_r Poll.pollin in
  slots := [];
  Hashtbl.iter
    (fun _ c ->
      let interest =
        (if c.c_eof || c.c_closing || c.c_dead then 0 else Poll.pollin)
        lor (if conn_pending_write c && not c.c_dead then Poll.pollout else 0)
      in
      if interest <> 0 then
        slots := (Poll.add shard.s_poll c.c_fd interest, c) :: !slots)
    shard.s_conns;
  ignore (Poll.wait shard.s_poll ~timeout_ms:(-1));
  if Poll.revents shard.s_poll wake_slot land Poll.pollin <> 0 then
    drain_wake_pipe shard.s_wake_r wake_buf;
  (* 2. inbox: adopted connections, completions, stop — one lock. Posts
     happen-before the stop flag is set (same mutex), so observing stop
     here means every completion has been grabbed too. *)
  Mutex.lock shard.s_mutex;
  let newconns = shard.s_inbox_conns in
  let dones = shard.s_inbox_done in
  let stopping = shard.s_stop in
  shard.s_inbox_conns <- [];
  shard.s_inbox_done <- [];
  Mutex.unlock shard.s_mutex;
  if stopping then
    (* no new reads: the pool is drained, replies are all queued — adopt
       nothing (close the fds), apply completions, flush, exit *)
    List.iter
      (fun (_, fd) -> try Unix.close fd with Unix.Unix_error _ -> ())
      (List.rev newconns)
  else
    List.iter
      (fun (id, fd) ->
        Unix.set_nonblock fd;
        let conn =
          {
            c_id = id;
            c_fd = fd;
            c_dec = Frame.decoder ~max_len:t.cfg.max_frame ();
            c_wb = wbuf_create ();
            c_inflight = 0;
            c_eof = false;
            c_closing = false;
            c_dead = false;
            c_requests = 0;
          }
        in
        Hashtbl.replace shard.s_conns id conn;
        shard.s_adopted <- shard.s_adopted + 1;
        match t.sink with
        | None -> ()
        | Some s ->
          emit t s Obs.Event.Name.svc_conn_open
            [ ("conn", J.Int id); ("shard", J.Int shard.s_id) ])
      (List.rev newconns);
  (* 3. completions: queue each response frame on its connection (a gone
     peer just drops the bytes; the job itself was already counted) *)
  List.iter
    (fun cp ->
      match Hashtbl.find_opt shard.s_conns cp.cp_conn with
      | None -> ()
      | Some conn ->
        conn.c_inflight <- conn.c_inflight - 1;
        if not conn.c_dead then wbuf_add_frame conn.c_wb cp.cp_payload)
    (List.rev dones);
  (* 4. reads: level-triggered, one scratch-sized chunk per connection
     per iteration keeps the shard fair under pipelining *)
  if not stopping then
    List.iter
      (fun (slot, conn) ->
        let re = Poll.revents shard.s_poll slot in
        if re land Poll.pollerr <> 0 then begin
          conn.c_dead <- true;
          wbuf_clear conn.c_wb
        end
        else begin
          if
            re land Poll.pollin <> 0
            && not (conn.c_eof || conn.c_closing || conn.c_dead)
          then shard_read t conn scratch pong pending;
          if
            re land Poll.pollhup <> 0
            && re land Poll.pollin = 0
            && not conn.c_dead
          then conn.c_eof <- true
        end)
      !slots;
  (* 5. hand this wakeup's accepted work to the pool as one batch *)
  if !pending <> [] then begin
    submit_batch t shard (List.rev !pending);
    pending := []
  end;
  (* 6. opportunistic flush of everything with output, ready or not:
     saves a poll round-trip on the common small-response path *)
  Hashtbl.iter
    (fun _ c -> if conn_pending_write c then flush_conn c)
    shard.s_conns;
  (* 7. reap *)
  let dead =
    Hashtbl.fold
      (fun _ c acc -> if conn_reapable c then c :: acc else acc)
      shard.s_conns []
  in
  List.iter
    (fun c ->
      Hashtbl.remove shard.s_conns c.c_id;
      close_conn t c)
    dead;
  stopping

let shard_loop t shard () =
  (match t.sink with
  | None -> ()
  | Some s ->
    emit t s Obs.Event.Name.svc_shard_start [ ("shard", J.Int shard.s_id) ]);
  let scratch = Bytes.create 65536 in
  let pong = make_pong () in
  let wake_buf = Bytes.create 4096 in
  let slots = ref [] in
  let pending = ref [] in
  let rec loop () =
    match shard_iteration t shard scratch pong wake_buf slots pending with
    | true -> ()
    | false -> loop ()
    | exception e ->
      (* a shard must outlive any per-connection surprise; report, back
         off briefly (never hot-loop on a persistent failure), go on *)
      (match t.sink with
      | None -> ()
      | Some s ->
        emit t s Obs.Event.Name.svc_shard_error
          [ ("shard", J.Int shard.s_id);
            ("error", J.Str (Printexc.to_string e)) ]);
      pending := [];
      (try Unix.sleepf 0.01 with Unix.Unix_error _ -> ());
      loop ()
  in
  loop ();
  shard_flush_all t shard;
  match t.sink with
  | None -> ()
  | Some s ->
    emit t s Obs.Event.Name.svc_shard_stop
      [ ("shard", J.Int shard.s_id); ("conns", J.Int shard.s_adopted) ]

(* --------------------------------------------------------- accept thread *)

let accept_loop t () =
  let n_shards = Array.length t.shards in
  let rec loop () =
    if Atomic.get t.stop then ()
    else
      match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready, _, _ ->
        if Atomic.get t.stop then ()
        else if List.mem t.listen_fd ready then begin
          (match Unix.accept t.listen_fd with
          | exception Unix.Unix_error (e, _, _) ->
            (* a persistent failure (EMFILE...) keeps the listener readable,
               so back off instead of hot-spinning select/accept *)
            (match t.sink with
            | None -> ()
            | Some s ->
              emit t s Obs.Event.Name.svc_accept_error
                [ ("error", J.Str (Unix.error_message e)) ]);
            (try Unix.sleepf 0.05 with Unix.Unix_error _ -> ())
          | fd, _ ->
            (* small pipelined frames: Nagle would batch them against us *)
            (match t.cfg.listen with
            | Addr.Tcp _ -> (
              try Unix.setsockopt fd Unix.TCP_NODELAY true
              with Unix.Unix_error _ -> ())
            | Addr.Unix_path _ -> ());
            let id = Atomic.fetch_and_add t.next_conn 1 in
            shard_adopt t.shards.(id mod n_shards) id fd);
          loop ()
        end
        else loop ()
  in
  loop ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  match t.cfg.listen with
  | Addr.Unix_path path -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | Addr.Tcp _ -> ()

(* ------------------------------------------------------------ lifecycle *)

let start ?sink ?registry cfg =
  if cfg.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if cfg.shards < 1 then invalid_arg "Server.start: shards must be >= 1";
  if cfg.queue_bound < 1 then
    invalid_arg "Server.start: queue_bound must be >= 1";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = Unix.socket (Addr.domain cfg.listen) Unix.SOCK_STREAM 0 in
  (match cfg.listen with
  | Addr.Unix_path path -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | Addr.Tcp _ ->
    (* restarts must not trip over TIME_WAIT remnants of themselves *)
    Unix.setsockopt listen_fd Unix.SO_REUSEADDR true);
  let bound =
    try
      Unix.bind listen_fd (Addr.sockaddr ~listen:true cfg.listen);
      Unix.listen listen_fd 512;
      (* with TCP port 0 the kernel picks: report what it picked *)
      Addr.of_sockaddr (Unix.getsockname listen_fd)
    with e ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise e
  in
  let wake_r, wake_w = Unix.pipe () in
  let shards =
    Array.init cfg.shards (fun i ->
        let s_wake_r, s_wake_w = Unix.pipe () in
        Unix.set_nonblock s_wake_r;
        Unix.set_nonblock s_wake_w;
        {
          s_id = i;
          s_wake_r;
          s_wake_w;
          s_mutex = Mutex.create ();
          s_inbox_conns = [];
          s_inbox_done = [];
          s_stop = false;
          s_poll = Poll.create ();
          s_conns = Hashtbl.create 64;
          s_adopted = 0;
          s_thread = None;
        })
  in
  let t =
    {
      cfg;
      (* the cap must leave room for the bounded oversized-error reply
         that replaces an overlong response *)
      reply_cap = max 256 (min cfg.max_reply Frame.max_wire_len);
      bound;
      listen_fd;
      wake_r;
      wake_w;
      stop = Atomic.make false;
      dead = Atomic.make false;
      pool = Pool.create ~workers:cfg.workers ~queue_bound:cfg.queue_bound;
      shards;
      accept_thread = None;
      next_conn = Atomic.make 0;
      accepted = Atomic.make 0;
      rejected = Atomic.make 0;
      served = Atomic.make 0;
      timed_out = Atomic.make 0;
      inflight = Atomic.make 0;
      sink;
      registry = (match registry with Some r -> r | None -> Obs.Metrics.registry ());
      obs_mutex = Mutex.create ();
      waited = false;
      wait_mutex = Mutex.create ();
    }
  in
  (match t.sink with
  | None -> ()
  | Some s ->
    emit t s Obs.Event.Name.svc_start
      [
        ("listen", J.Str (Addr.to_string t.bound));
        ("workers", J.Int cfg.workers);
        ("shards", J.Int cfg.shards);
        ("queue_bound", J.Int cfg.queue_bound);
      ]);
  Array.iter
    (fun shard -> shard.s_thread <- Some (Thread.create (shard_loop t shard) ()))
    t.shards;
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let wait t =
  Mutex.lock t.wait_mutex;
  let first = not t.waited in
  t.waited <- true;
  Mutex.unlock t.wait_mutex;
  if first then begin
    Option.iter Thread.join t.accept_thread;
    (match t.sink with
    | None -> ()
    | Some s ->
      emit t s Obs.Event.Name.svc_drain
        [ ("pending", J.Int (Atomic.get t.inflight)) ]);
    (* every job already in the queue runs to a reply before the workers
       exit; the completions are posted to the shards' inboxes by then *)
    Pool.drain t.pool;
    (* now stop the shards: each applies its remaining completions,
       flushes what the peers will accept, closes its connections *)
    Array.iter
      (fun shard ->
        Mutex.lock shard.s_mutex;
        shard.s_stop <- true;
        Mutex.unlock shard.s_mutex;
        shard_wake shard)
      t.shards;
    Array.iter (fun shard -> Option.iter Thread.join shard.s_thread) t.shards;
    (* guard before close: a stray signal handler calling [shutdown] on
       this dead server must not write into a closed — possibly
       kernel-reused — descriptor *)
    Atomic.set t.dead true;
    Array.iter
      (fun shard ->
        (try Unix.close shard.s_wake_r with Unix.Unix_error _ -> ());
        try Unix.close shard.s_wake_w with Unix.Unix_error _ -> ())
      t.shards;
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
    gauges t;
    match t.sink with
    | None -> ()
    | Some s ->
      emit t s Obs.Event.Name.svc_stop
        [
          ("served", J.Int (Atomic.get t.served));
          ("drained", J.Bool true);
        ]
  end

let run ?sink ?registry ?on_listen cfg =
  let t = start ?sink ?registry cfg in
  Option.iter (fun f -> f t.bound) on_listen;
  let stop _ = shutdown t in
  (* install and SAVE the previous handlers: leaving ours behind would let
     a later signal in the same process call shutdown on this dead server
     (and, unguarded, write to its closed wake descriptor) *)
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle stop) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle stop) in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int)
    (fun () ->
      (* OCaml signal handlers only run when a thread of the main domain
         reaches a safepoint, and every other thread here may be parked in
         a blocking syscall (select, poll, cond_wait) — parking this thread
         in Thread.join too would postpone the handler indefinitely. Poll. *)
      while not (Atomic.get t.stop) do
        try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      wait t)
