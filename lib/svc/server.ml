module J = Obs.Json
module P = Protocol

type config = {
  socket_path : string;
  workers : int;
  queue_bound : int;
  default_deadline_ms : int option;
  max_frame : int;
}

let default_config ~socket_path =
  {
    socket_path;
    workers = 2;
    queue_bound = 64;
    default_deadline_ms = None;
    max_frame = Frame.default_max_len;
  }

type conn = { c_id : int; c_fd : Unix.file_descr; mutable c_thread : Thread.t option }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stop : bool Atomic.t;
  pool : Pool.t;
  mutable accept_thread : Thread.t option;
  conns : (int, conn) Hashtbl.t;
  conns_mutex : Mutex.t;
  next_conn : int Atomic.t;
  (* plain atomics back the stats verb; the registry mirrors them for
     export but is not thread-safe, so every registry touch holds obs_mutex
     (sinks share it — the stock ones are not thread-safe either) *)
  accepted : int Atomic.t;
  rejected : int Atomic.t;
  served : int Atomic.t;
  timed_out : int Atomic.t;
  inflight : int Atomic.t;
  sink : Obs.Sink.t option;
  registry : Obs.Metrics.registry;
  obs_mutex : Mutex.t;
  mutable waited : bool;
  wait_mutex : Mutex.t;
}

(* ------------------------------------------------------- instrumentation *)

let with_obs t f =
  Mutex.lock t.obs_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.obs_mutex) f

(* Guarded by the match on t.sink at every call site: when the server runs
   without a sink, no event (or field list) is ever allocated. *)
let emit t sink name fields =
  with_obs t (fun () -> Obs.Sink.emit sink (Obs.Event.make name fields))

let gauges t =
  with_obs t (fun () ->
      Obs.Metrics.set
        (Obs.Metrics.gauge t.registry "svc.queue.depth")
        (float_of_int (Pool.queue_length t.pool));
      Obs.Metrics.set
        (Obs.Metrics.gauge t.registry "svc.inflight")
        (float_of_int (Atomic.get t.inflight)))

let count_reject t code =
  Atomic.incr t.rejected;
  with_obs t (fun () ->
      Obs.Metrics.incr
        (Obs.Metrics.counter t.registry
           ~labels:[ ("code", P.err_code_string code) ]
           "svc.requests.rejected"))

let count_accept t =
  Atomic.incr t.accepted;
  Atomic.incr t.inflight;
  with_obs t (fun () ->
      Obs.Metrics.incr (Obs.Metrics.counter t.registry "svc.requests.accepted"));
  gauges t

let count_done t verb latency_s ~timeout =
  Atomic.decr t.inflight;
  Atomic.incr t.served;
  if timeout then Atomic.incr t.timed_out;
  with_obs t (fun () ->
      Obs.Metrics.observe
        (Obs.Metrics.histogram t.registry
           ~labels:[ ("verb", P.verb_string verb) ]
           "svc.latency_s")
        latency_s;
      if timeout then
        Obs.Metrics.incr
          (Obs.Metrics.counter t.registry "svc.requests.timeout"));
  gauges t

let stats_json t =
  J.Obj
    [
      ("accepted", J.Int (Atomic.get t.accepted));
      ("rejected", J.Int (Atomic.get t.rejected));
      ("served", J.Int (Atomic.get t.served));
      ("timed_out", J.Int (Atomic.get t.timed_out));
      ("inflight", J.Int (Atomic.get t.inflight));
      ("queue_depth", J.Int (Pool.queue_length t.pool));
      ("workers", J.Int t.cfg.workers);
    ]

(* ------------------------------------------------------------- replies *)

(* The conn thread and any pool worker may reply on the same socket; the
   per-connection mutex keeps frames whole. A client that hung up makes
   Frame.write raise — swallow it, the read side will see EOF.

   The descriptor is reference-counted: one reference for the conn thread
   plus one per in-flight pool job, and whoever drops the last reference
   closes. Closing eagerly on client EOF would let the kernel hand the fd
   number to a newly accepted connection while a worker still holds it,
   delivering that job's reply (or a torn frame, under the wrong mutex)
   into an unrelated client's stream. *)
type replier = {
  r_mutex : Mutex.t;
  r_fd : Unix.file_descr;
  r_refs : int Atomic.t;
}

let retain replier = Atomic.incr replier.r_refs

let release replier =
  if Atomic.fetch_and_add replier.r_refs (-1) = 1 then
    try Unix.close replier.r_fd with Unix.Unix_error _ -> ()

let reply replier rs =
  let payload = J.to_string (P.response_json rs) in
  Mutex.lock replier.r_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock replier.r_mutex)
    (fun () -> try Frame.write replier.r_fd payload with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------ dispatch *)

let deadline_of t rq =
  match
    match rq.P.rq_deadline_ms with
    | Some _ as d -> d
    | None -> t.cfg.default_deadline_ms
  with
  | None -> None
  | Some ms ->
    Some (Int64.add (Obs.Clock.now_ns ()) (Int64.of_int (ms * 1_000_000)))

let reject t replier conn_id ~id code msg =
  count_reject t code;
  (match t.sink with
  | None -> ()
  | Some s ->
    emit t s Obs.Event.Name.svc_reject
      [
        ("conn", J.Int conn_id);
        ("id", J.Int id);
        ("code", J.Str (P.err_code_string code));
      ]);
  reply replier (P.error ~id code msg)

let submit t replier conn_id rq =
  let verb = rq.P.rq_verb in
  let jb_reply rs latency_s =
    Fun.protect ~finally:(fun () -> release replier) @@ fun () ->
    let timeout =
      match rs.P.rs_result with
      | Error (P.Deadline_exceeded, _) -> true
      | _ -> false
    in
    count_done t verb latency_s ~timeout;
    (match t.sink with
    | None -> ()
    | Some s ->
      let ms = J.Float (latency_s *. 1e3) in
      let base =
        [
          ("conn", J.Int conn_id);
          ("id", J.Int rq.P.rq_id);
          ("verb", J.Str (P.verb_string verb));
        ]
      in
      if timeout then emit t s Obs.Event.Name.svc_timeout (base @ [ ("ms", ms) ])
      else
        let status =
          match rs.P.rs_result with
          | Ok _ -> "ok"
          | Error (code, _) -> P.err_code_string code
        in
        emit t s Obs.Event.Name.svc_done
          (base @ [ ("status", J.Str status); ("ms", ms) ]));
    reply replier rs
  in
  let job =
    {
      Pool.jb_req = rq;
      jb_conn = conn_id;
      jb_enq_ns = Obs.Clock.now_ns ();
      jb_deadline_ns = deadline_of t rq;
      jb_reply;
    }
  in
  if Atomic.get t.stop then
    reject t replier conn_id ~id:rq.P.rq_id P.Shutting_down "server is draining"
  else begin
    (* taken before submit: once the job is in the queue a worker may run
       jb_reply (and release) before submit even returns *)
    retain replier;
    match Pool.submit t.pool job with
    | `Ok ->
      count_accept t;
      (match t.sink with
      | None -> ()
      | Some s ->
        emit t s Obs.Event.Name.svc_request
          [
            ("conn", J.Int conn_id);
            ("id", J.Int rq.P.rq_id);
            ("verb", J.Str (P.verb_string verb));
          ])
    | `Full ->
      release replier;
      reject t replier conn_id ~id:rq.P.rq_id P.Overloaded
        (Printf.sprintf "queue full (bound %d)" t.cfg.queue_bound)
    | `Closed ->
      release replier;
      reject t replier conn_id ~id:rq.P.rq_id P.Shutting_down
        "server is draining"
  end

let wake t = try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1) with _ -> ()

let shutdown t =
  if not (Atomic.exchange t.stop true) then wake t

let dispatch t replier conn_id rq requests =
  incr requests;
  match rq.P.rq_verb with
  | P.Ping -> reply replier (P.ok ~id:rq.P.rq_id (J.Str "pong"))
  | P.Stats -> reply replier (P.ok ~id:rq.P.rq_id (stats_json t))
  | P.Shutdown ->
    reply replier (P.ok ~id:rq.P.rq_id (J.Str "draining"));
    shutdown t
  | P.Solve | P.Modelcheck | P.Fuzz -> submit t replier conn_id rq

(* -------------------------------------------------------------- threads *)

let conn_loop t conn =
  let replier =
    { r_mutex = Mutex.create (); r_fd = conn.c_fd; r_refs = Atomic.make 1 }
  in
  let requests = ref 0 in
  let rec loop () =
    match Frame.read ~max_len:t.cfg.max_frame conn.c_fd with
    | exception Unix.Unix_error _ -> ()
    | Error (Frame.Eof | Frame.Truncated) -> ()
    | Error (Frame.Desynced n) ->
      (* the announced payload cannot be skipped, so the byte stream is
         unrecoverable: answer once, then drop the connection *)
      reject t replier conn.c_id ~id:(-1) P.Oversized
        (Printf.sprintf "unframeable length %d exceeds wire limit %d" n
           Frame.max_wire_len)
    | Error (Frame.Oversized n) ->
      reject t replier conn.c_id ~id:(-1) P.Oversized
        (Printf.sprintf "frame of %d bytes exceeds limit %d" n t.cfg.max_frame);
      loop ()
    | Ok payload ->
      (match P.parse payload with
      | Error msg ->
        reject t replier conn.c_id ~id:(-1) P.Bad_request
          ("invalid JSON: " ^ msg)
      | Ok json -> (
        match P.request_of_json json with
        | Error msg -> reject t replier conn.c_id ~id:(-1) P.Bad_request msg
        | Ok rq -> dispatch t replier conn.c_id rq requests));
      loop ()
  in
  loop ();
  (* unregister before dropping the conn thread's reference: a conn still
     in the table always holds a live reference, which is what lets [wait]
     shut sockets down under conns_mutex without racing a close *)
  Mutex.lock t.conns_mutex;
  Hashtbl.remove t.conns conn.c_id;
  Mutex.unlock t.conns_mutex;
  release replier;
  match t.sink with
  | None -> ()
  | Some s ->
    emit t s Obs.Event.Name.svc_conn_close
      [ ("conn", J.Int conn.c_id); ("requests", J.Int !requests) ]

let accept_loop t () =
  let rec loop () =
    if Atomic.get t.stop then ()
    else
      match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready, _, _ ->
        if Atomic.get t.stop then ()
        else if List.mem t.listen_fd ready then begin
          (match Unix.accept t.listen_fd with
          | exception Unix.Unix_error (e, _, _) ->
            (* a persistent failure (EMFILE...) keeps the listener readable,
               so back off instead of hot-spinning select/accept *)
            (match t.sink with
            | None -> ()
            | Some s ->
              emit t s Obs.Event.Name.svc_accept_error
                [ ("error", J.Str (Unix.error_message e)) ]);
            (try Unix.sleepf 0.05 with Unix.Unix_error _ -> ())
          | fd, _ ->
            let conn =
              { c_id = Atomic.fetch_and_add t.next_conn 1; c_fd = fd;
                c_thread = None }
            in
            Mutex.lock t.conns_mutex;
            Hashtbl.replace t.conns conn.c_id conn;
            conn.c_thread <- Some (Thread.create (conn_loop t) conn);
            Mutex.unlock t.conns_mutex;
            match t.sink with
            | None -> ()
            | Some s ->
              emit t s Obs.Event.Name.svc_conn_open
                [ ("conn", J.Int conn.c_id) ]);
          loop ()
        end
        else loop ()
  in
  loop ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------ lifecycle *)

let start ?sink ?registry cfg =
  if cfg.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if cfg.queue_bound < 1 then
    invalid_arg "Server.start: queue_bound must be >= 1";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      cfg;
      listen_fd;
      wake_r;
      wake_w;
      stop = Atomic.make false;
      pool = Pool.create ~workers:cfg.workers ~queue_bound:cfg.queue_bound;
      accept_thread = None;
      conns = Hashtbl.create 16;
      conns_mutex = Mutex.create ();
      next_conn = Atomic.make 0;
      accepted = Atomic.make 0;
      rejected = Atomic.make 0;
      served = Atomic.make 0;
      timed_out = Atomic.make 0;
      inflight = Atomic.make 0;
      sink;
      registry = (match registry with Some r -> r | None -> Obs.Metrics.registry ());
      obs_mutex = Mutex.create ();
      waited = false;
      wait_mutex = Mutex.create ();
    }
  in
  (match t.sink with
  | None -> ()
  | Some s ->
    emit t s Obs.Event.Name.svc_start
      [
        ("socket", J.Str cfg.socket_path);
        ("workers", J.Int cfg.workers);
        ("queue_bound", J.Int cfg.queue_bound);
      ]);
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let wait t =
  Mutex.lock t.wait_mutex;
  let first = not t.waited in
  t.waited <- true;
  Mutex.unlock t.wait_mutex;
  if first then begin
    Option.iter Thread.join t.accept_thread;
    (match t.sink with
    | None -> ()
    | Some s ->
      emit t s Obs.Event.Name.svc_drain
        [ ("pending", J.Int (Atomic.get t.inflight)) ]);
    (* every job already in the queue runs to a reply before the workers
       exit; only then do we tear the connections down *)
    Pool.drain t.pool;
    (* a conn still registered holds a live replier reference (conn_loop
       unregisters before releasing, under this mutex), so shutting down
       inside the lock can never hit a closed — possibly reused — fd *)
    let conns =
      Mutex.lock t.conns_mutex;
      let l = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
      List.iter
        (fun c ->
          try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ())
        l;
      Mutex.unlock t.conns_mutex;
      l
    in
    List.iter (fun c -> Option.iter Thread.join c.c_thread) conns;
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
    gauges t;
    match t.sink with
    | None -> ()
    | Some s ->
      emit t s Obs.Event.Name.svc_stop
        [
          ("served", J.Int (Atomic.get t.served));
          ("drained", J.Bool true);
        ]
  end

let run ?sink ?registry cfg =
  let t = start ?sink ?registry cfg in
  let stop _ = shutdown t in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  (* OCaml signal handlers only run when a thread of the main domain
     reaches a safepoint, and every other thread here may be parked in a
     blocking syscall (select, read, cond_wait) — parking this thread in
     Thread.join too would postpone the handler indefinitely. Poll. *)
  while not (Atomic.get t.stop) do
    try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  wait t
