open Simkit
open Tasklib
open Efd
module J = Obs.Json
module P = Protocol

(* ------------------------------------------------------ param extraction *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let int_param ~default name params =
  match J.member name params with
  | None -> default
  | Some v -> (
    match J.to_int_opt v with
    | Some n -> n
    | None -> bad "param %S is not an integer" name)

let int_opt_param name params =
  match J.member name params with
  | None -> None
  | Some v -> (
    match J.to_int_opt v with
    | Some n -> Some n
    | None -> bad "param %S is not an integer" name)

let str_param ~default name params =
  match J.member name params with
  | None -> default
  | Some (J.Str s) -> s
  | Some _ -> bad "param %S is not a string" name

let bool_param ~default name params =
  match J.member name params with
  | None -> default
  | Some (J.Bool b) -> b
  | Some _ -> bad "param %S is not a boolean" name

let pos_param ~default name params =
  let v = int_param ~default name params in
  if v < 1 then bad "param %S must be >= 1" name;
  v

(* -------------------------------- builders (shared with the CLI) -------
   Name resolution and construction live in [Scenario.Build] — the same
   tables the CLI enums and the scenario-file validator use, so a name the
   server rejects is a name no other layer accepts either. *)

let resolved = function Ok v -> v | Error msg -> bad "%s" msg

(* "crashes": [[i, t], ...] — crash S-process i at time t. *)
let crashes_param ~n_s params =
  match J.member "crashes" params with
  | None -> []
  | Some (J.List items) ->
    List.map
      (function
        | J.List [ J.Int i; J.Int t ] when t >= 0 ->
          if i < 0 || i >= n_s then
            bad "crash index %d out of range (S-processes: 0..%d)" i (n_s - 1)
          else (i, t)
        | _ -> bad "param \"crashes\" items must be [index, time] int pairs")
      items
  | Some _ -> bad "param \"crashes\" is not a list"

(* --------------------------------------------------------------- verbs *)

let solve ~cancel params =
  let kind =
    resolved
      (Scenario.Build.task_kind_of_string
         (str_param ~default:"consensus" "task" params))
  in
  let fd_k =
    resolved
      (Scenario.Build.fd_kind_of_string
         (str_param ~default:"vector" "fd" params))
  in
  let policy =
    Scenario.Build.policy_factory
      (resolved
         (Scenario.Build.policy_of_string
            (str_param ~default:"fair" "policy" params)))
  in
  let n = pos_param ~default:4 "n" params in
  let k = pos_param ~default:1 "k" params in
  let j = pos_param ~default:3 "j" params in
  let l = int_opt_param "l" params in
  let seed = int_param ~default:1 "seed" params in
  let budget = pos_param ~default:400_000 "budget" params in
  let crashes = crashes_param ~n_s:n params in
  let task = Scenario.Build.task kind ~n ~k ~j ~l in
  let algo = Scenario.Build.algo kind task ~k in
  let fd = Scenario.Build.fd fd_k ~k in
  let pattern =
    if crashes = [] then Failure.failure_free n
    else Failure.pattern ~n_s:n crashes
  in
  let rng = Random.State.make [| seed |] in
  let input = Task.sample_input task rng in
  let r =
    Run.execute ~budget ~policy ~cancel ~task ~algo ~fd ~pattern ~input ~seed
      ()
  in
  J.Obj
    [
      ("ok", J.Bool (Run.ok r));
      ("report", Run.report_json ~labels:(Run.labels ~task ~algo ~fd ~seed) r);
    ]

(* Scenario records are immutable setup — the closures inside ([sc_build],
   [sc_prop]) generate fresh mutable state per call — so one compiled
   record per (name, n_s) can be shared across every pool worker for the
   lifetime of the process. Registry lookup and scenario construction drop
   off the per-request path; only the first request per key pays. *)
let scenario_cache : (string * int, Mcheck.Scenario.t) Hashtbl.t =
  Hashtbl.create 8

let scenario_cache_mutex = Mutex.create ()

let scenario_param params =
  let name = str_param ~default:"safe-agreement" "scenario" params in
  let n_s = pos_param ~default:1 "n_s" params in
  Mutex.lock scenario_cache_mutex;
  match Hashtbl.find_opt scenario_cache (name, n_s) with
  | Some sc ->
    Mutex.unlock scenario_cache_mutex;
    sc
  | None -> (
    Mutex.unlock scenario_cache_mutex;
    (* build outside the lock: a miss must not serialize other workers *)
    match Mcheck.Scenario.find name ~n_s with
    | Ok sc ->
      Mutex.lock scenario_cache_mutex;
      if not (Hashtbl.mem scenario_cache (name, n_s)) then
        Hashtbl.replace scenario_cache (name, n_s) sc;
      Mutex.unlock scenario_cache_mutex;
      sc
    | Error msg -> bad "%s" msg)

let modelcheck_result ~scenario ~depth ~n_s ~reduce ?checkpoint (verdict, stats)
    =
  J.Obj
    ([
       ("scenario", J.Str scenario);
       ("depth", J.Int depth);
       ("n_s", J.Int n_s);
       ("reduce", J.Bool reduce);
       ( "verdict",
         J.Str
           (match verdict with
           | Exhaustive.Ok _ -> "ok"
           | Exhaustive.Counterexample _ -> "counterexample") );
       ( "schedules",
         match verdict with
         | Exhaustive.Ok n -> J.Int n
         | Exhaustive.Counterexample _ -> J.Null );
       ("stats", Exhaustive.stats_json stats);
     ]
    @
    match checkpoint with
    | None -> []
    | Some (dir, resumed) ->
      [
        ( "checkpoint",
          J.Obj [ ("dir", J.Str dir); ("resumed", J.Bool resumed) ] );
      ])

(* With "checkpoint_dir" the verb runs the partitioned, journaling engine
   ({!Ckpt.Local}) instead of the monolithic DFS; with "resume": true it
   continues whatever record the store holds — the pooled resume path, so
   a fleet worker (or `wfa call`) can pick up a killed run without any
   coordinator. Verdict and credited count are engine-independent (the
   merge theorem), so callers see the same response either way. *)
let modelcheck ~cancel params =
  let depth = pos_param ~default:8 "depth" params in
  let reduce = bool_param ~default:false "reduce" params in
  match J.member "checkpoint_dir" params with
  | None ->
    let sc = scenario_param params in
    let red = Mcheck.Scenario.reduction sc ~reduce in
    let verdict, stats =
      Exhaustive.run ?reduce:red ~cancel ~build:sc.Mcheck.Scenario.sc_build
        ~pids:sc.Mcheck.Scenario.sc_pids ~depth
        ~prop:sc.Mcheck.Scenario.sc_prop ()
    in
    modelcheck_result ~scenario:sc.Mcheck.Scenario.sc_name ~depth
      ~n_s:sc.Mcheck.Scenario.sc_n_s ~reduce:(red <> None) (verdict, stats)
  | Some dir_json -> (
    let dir =
      match dir_json with
      | J.Str s when s <> "" -> s
      | _ -> bad "param \"checkpoint_dir\" is not a non-empty string"
    in
    let interval_s =
      float_of_int (pos_param ~default:30 "checkpoint_interval_s" params)
    in
    let resumed = bool_param ~default:false "resume" params in
    let store =
      match Ckpt.Store.create dir with
      | Ok s -> s
      | Error msg -> bad "%s" msg
    in
    if resumed then
      match Ckpt.Local.resume ~interval_s ~cancel ~store () with
      | Error msg -> bad "%s" msg
      | Ok (config, verdict, stats) ->
        modelcheck_result ~scenario:config.Ckpt.Record.cf_scenario
          ~depth:config.Ckpt.Record.cf_depth ~n_s:config.Ckpt.Record.cf_n_s
          ~reduce:config.Ckpt.Record.cf_reduce
          ~checkpoint:(dir, true) (verdict, stats)
    else
      let sc = scenario_param params in
      match
        Ckpt.Local.run ~interval_s ~reduce ~cancel ~store ~scenario:sc ~depth
          ()
      with
      | Error msg -> bad "%s" msg
      | Ok (verdict, stats) ->
        modelcheck_result ~scenario:sc.Mcheck.Scenario.sc_name ~depth
          ~n_s:sc.Mcheck.Scenario.sc_n_s ~reduce ~checkpoint:(dir, false)
          (verdict, stats))

(* One frontier subtree of a distributed exhaustive search. The coordinator
   ships the scenario by name plus the engine context ({!Exhaustive.subtree});
   the verdict travels back with the job id so first-result-wins re-dispatch
   can drop duplicates. *)
let subtree ~cancel params =
  let depth = pos_param ~default:8 "depth" params in
  let reduce = bool_param ~default:false "reduce" params in
  let sc = scenario_param params in
  let sj =
    match J.member "job" params with
    | None -> bad "missing param \"job\""
    | Some j -> (
      match Exhaustive.subtree_of_json j with
      | Ok sj -> sj
      | Error msg -> bad "%s" msg)
  in
  let reduce = Mcheck.Scenario.reduction sc ~reduce in
  match
    Exhaustive.run_subtree ?reduce ~cancel ~build:sc.Mcheck.Scenario.sc_build
      ~pids:sc.Mcheck.Scenario.sc_pids ~depth ~prop:sc.Mcheck.Scenario.sc_prop
      sj
  with
  | exception Invalid_argument msg -> bad "%s" msg
  | verdict, stats ->
    J.Obj
      ([
         ("id", J.Int sj.Exhaustive.sj_id);
         ( "verdict",
           J.Str
             (match verdict with
             | Exhaustive.Ok _ -> "ok"
             | Exhaustive.Counterexample _ -> "counterexample") );
         ( "schedules",
           match verdict with
           | Exhaustive.Ok n -> J.Int n
           | Exhaustive.Counterexample _ -> J.Null );
       ]
      @ (match verdict with
        | Exhaustive.Ok _ -> []
        | Exhaustive.Counterexample cex ->
          [ ("cex", Exhaustive.schedule_json cex) ])
      @ [ ("stats", Exhaustive.stats_json stats) ])

let fuzz ~cancel params =
  let kind = str_param ~default:"strong-renaming" "kind" params in
  let n = pos_param ~default:4 "n" params in
  let j = pos_param ~default:3 "j" params in
  let seed = int_param ~default:1 "seed" params in
  let budget = pos_param ~default:500 "budget" params in
  let domains = pos_param ~default:1 "domains" params in
  let target = resolved (Scenario.Build.fuzz_target kind ~n ~j) in
  let res = Adversary.fuzz_target ~domains ~cancel ~seed ~budget target () in
  J.Obj
    ([
       ("found", J.Bool (res.Adversary.f_witness <> None));
       ("fuzz", Adversary.fuzz_result_json res);
     ]
    @
    match res.Adversary.f_witness with
    | None -> []
    | Some w -> [ ("witness", Adversary.witness_json w) ])

(* A caller-supplied scenario file as params: validate it through
   [Scenario.Spec] (structured path-carrying errors — an unknown name or a
   malformed field must come back as [bad_request], never crash a worker),
   then dispatch to the handler its verb names. The scenario's own
   [deadline_ms] rides in the request envelope, so [cancel] already
   enforces it here. *)
let scenario ~cancel params =
  match Scenario.Spec.of_json params with
  | Error msg -> bad "invalid scenario: %s" msg
  | Ok sp ->
    let inner = Scenario.Spec.params_json sp in
    let result =
      match sp.Scenario.Spec.sp_work with
      | Scenario.Spec.Solve _ -> solve ~cancel inner
      | Scenario.Spec.Modelcheck _ -> modelcheck ~cancel inner
      | Scenario.Spec.Fuzz _ -> fuzz ~cancel inner
    in
    J.Obj
      [
        ("scenario", J.Str sp.Scenario.Spec.sp_name);
        ("verb", J.Str (Scenario.Spec.verb sp));
        ("result", result);
      ]

let never_cancel () = false

let run ?(cancel = never_cancel) verb params =
  match verb with
  | P.Ping | P.Stats | P.Metrics | P.Shutdown | P.Hello ->
    Error
      ( P.Internal,
        Printf.sprintf "verb %S is not a pool job" (P.verb_string verb) )
  | P.Solve | P.Modelcheck | P.Subtree | P.Fuzz | P.Scenario -> (
    try
      Ok
        (match verb with
        | P.Solve -> solve ~cancel params
        | P.Modelcheck -> modelcheck ~cancel params
        | P.Subtree -> subtree ~cancel params
        | P.Fuzz -> fuzz ~cancel params
        | P.Scenario -> scenario ~cancel params
        | _ -> assert false)
    with
    | Bad msg -> Error (P.Bad_request, msg)
    | Exhaustive.Cancelled | Adversary.Cancelled | Run.Cancelled ->
      Error (P.Deadline_exceeded, "deadline exceeded during execution")
    | exn -> Error (P.Internal, Printexc.to_string exn))
