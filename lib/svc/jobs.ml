open Simkit
open Tasklib
open Efd
module J = Obs.Json
module P = Protocol

(* ------------------------------------------------------ param extraction *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let int_param ~default name params =
  match J.member name params with
  | None -> default
  | Some v -> (
    match J.to_int_opt v with
    | Some n -> n
    | None -> bad "param %S is not an integer" name)

let int_opt_param name params =
  match J.member name params with
  | None -> None
  | Some v -> (
    match J.to_int_opt v with
    | Some n -> Some n
    | None -> bad "param %S is not an integer" name)

let str_param ~default name params =
  match J.member name params with
  | None -> default
  | Some (J.Str s) -> s
  | Some _ -> bad "param %S is not a string" name

let bool_param ~default name params =
  match J.member name params with
  | None -> default
  | Some (J.Bool b) -> b
  | Some _ -> bad "param %S is not a boolean" name

let pos_param ~default name params =
  let v = int_param ~default name params in
  if v < 1 then bad "param %S must be >= 1" name;
  v

(* --------------------------------------------- builders (as in the CLI) *)

let task_kind = function
  | "consensus" -> `Consensus
  | "ksa" -> `Ksa
  | "renaming" -> `Renaming
  | "wsb" -> `Wsb
  | "identity" -> `Identity
  | s -> bad "unknown task %S (consensus|ksa|renaming|wsb|identity)" s

let fd_kind = function
  | "omega" -> `Omega
  | "vector" -> `Vector
  | "silent" -> `Silent
  | "trivial" -> `Trivial
  | "perfect" -> `Perfect
  | s -> bad "unknown fd %S (omega|vector|silent|trivial|perfect)" s

let policy_of_string s =
  let conc mk k =
    match int_of_string_opt k with
    | Some k when k >= 1 -> mk k
    | _ -> bad "invalid concurrency %S in policy" k
  in
  match String.split_on_char ':' s with
  | [ "fair" ] -> Run.fair_policy
  | [ "kconc"; k ] -> conc Run.k_concurrent_policy k
  | [ "uniform"; k ] -> conc Run.k_concurrent_uniform_policy k
  | _ -> bad "invalid policy %S (fair|kconc:K|uniform:K)" s

let build_task kind ~n ~k ~j ~l =
  match kind with
  | `Consensus -> Set_agreement.consensus ~n ()
  | `Ksa -> Set_agreement.make ~n ~k ()
  | `Renaming ->
    let l = Option.value l ~default:(j + k - 1) in
    Renaming.make ~n ~j ~l
  | `Wsb -> Wsb.make ~n ~j
  | `Identity -> Trivial_tasks.identity ~n ()

let build_algo kind task ~k =
  match kind with
  | `Consensus -> Ksa.consensus ()
  | `Ksa -> Ksa.make ~k ()
  | `Renaming -> Renaming_algos.fig4 ()
  | `Wsb -> One_concurrent.make task
  | `Identity -> Kconc_tasks.echo ()

let build_fd kind ~k =
  match kind with
  | `Omega -> Fdlib.Leader_fds.omega ()
  | `Vector -> Fdlib.Leader_fds.vector_omega_k ~k ()
  | `Silent -> Fdlib.Leader_fds.vector_omega_k_silent ~k ()
  | `Trivial -> Fdlib.Fd.trivial
  | `Perfect -> Fdlib.Classic.perfect ()

(* --------------------------------------------------------------- verbs *)

let solve ~cancel params =
  let kind = task_kind (str_param ~default:"consensus" "task" params) in
  let fd_k = fd_kind (str_param ~default:"vector" "fd" params) in
  let policy = policy_of_string (str_param ~default:"fair" "policy" params) in
  let n = pos_param ~default:4 "n" params in
  let k = pos_param ~default:1 "k" params in
  let j = pos_param ~default:3 "j" params in
  let l = int_opt_param "l" params in
  let seed = int_param ~default:1 "seed" params in
  let budget = pos_param ~default:400_000 "budget" params in
  let task = build_task kind ~n ~k ~j ~l in
  let algo = build_algo kind task ~k in
  let fd = build_fd fd_k ~k in
  let pattern = Failure.failure_free n in
  let rng = Random.State.make [| seed |] in
  let input = Task.sample_input task rng in
  let r =
    Run.execute ~budget ~policy ~cancel ~task ~algo ~fd ~pattern ~input ~seed
      ()
  in
  J.Obj
    [
      ("ok", J.Bool (Run.ok r));
      ("report", Run.report_json ~labels:(Run.labels ~task ~algo ~fd ~seed) r);
    ]

(* Scenario records are immutable setup — the closures inside ([sc_build],
   [sc_prop]) generate fresh mutable state per call — so one compiled
   record per (name, n_s) can be shared across every pool worker for the
   lifetime of the process. Registry lookup and scenario construction drop
   off the per-request path; only the first request per key pays. *)
let scenario_cache : (string * int, Mcheck.Scenario.t) Hashtbl.t =
  Hashtbl.create 8

let scenario_cache_mutex = Mutex.create ()

let scenario_param params =
  let name = str_param ~default:"safe-agreement" "scenario" params in
  let n_s = pos_param ~default:1 "n_s" params in
  Mutex.lock scenario_cache_mutex;
  match Hashtbl.find_opt scenario_cache (name, n_s) with
  | Some sc ->
    Mutex.unlock scenario_cache_mutex;
    sc
  | None -> (
    Mutex.unlock scenario_cache_mutex;
    (* build outside the lock: a miss must not serialize other workers *)
    match Mcheck.Scenario.find name ~n_s with
    | Ok sc ->
      Mutex.lock scenario_cache_mutex;
      if not (Hashtbl.mem scenario_cache (name, n_s)) then
        Hashtbl.replace scenario_cache (name, n_s) sc;
      Mutex.unlock scenario_cache_mutex;
      sc
    | Error msg -> bad "%s" msg)

let modelcheck ~cancel params =
  let depth = pos_param ~default:8 "depth" params in
  let reduce = bool_param ~default:false "reduce" params in
  let sc = scenario_param params in
  let reduce = Mcheck.Scenario.reduction sc ~reduce in
  let verdict, stats =
    Exhaustive.run ?reduce ~cancel ~build:sc.Mcheck.Scenario.sc_build
      ~pids:sc.Mcheck.Scenario.sc_pids ~depth ~prop:sc.Mcheck.Scenario.sc_prop
      ()
  in
  J.Obj
    [
      ("scenario", J.Str sc.Mcheck.Scenario.sc_name);
      ("depth", J.Int depth);
      ("n_s", J.Int sc.Mcheck.Scenario.sc_n_s);
      ("reduce", J.Bool (reduce <> None));
      ( "verdict",
        J.Str
          (match verdict with
          | Exhaustive.Ok _ -> "ok"
          | Exhaustive.Counterexample _ -> "counterexample") );
      ( "schedules",
        match verdict with
        | Exhaustive.Ok n -> J.Int n
        | Exhaustive.Counterexample _ -> J.Null );
      ("stats", Exhaustive.stats_json stats);
    ]

(* One frontier subtree of a distributed exhaustive search. The coordinator
   ships the scenario by name plus the engine context ({!Exhaustive.subtree});
   the verdict travels back with the job id so first-result-wins re-dispatch
   can drop duplicates. *)
let subtree ~cancel params =
  let depth = pos_param ~default:8 "depth" params in
  let reduce = bool_param ~default:false "reduce" params in
  let sc = scenario_param params in
  let sj =
    match J.member "job" params with
    | None -> bad "missing param \"job\""
    | Some j -> (
      match Exhaustive.subtree_of_json j with
      | Ok sj -> sj
      | Error msg -> bad "%s" msg)
  in
  let reduce = Mcheck.Scenario.reduction sc ~reduce in
  match
    Exhaustive.run_subtree ?reduce ~cancel ~build:sc.Mcheck.Scenario.sc_build
      ~pids:sc.Mcheck.Scenario.sc_pids ~depth ~prop:sc.Mcheck.Scenario.sc_prop
      sj
  with
  | exception Invalid_argument msg -> bad "%s" msg
  | verdict, stats ->
    J.Obj
      ([
         ("id", J.Int sj.Exhaustive.sj_id);
         ( "verdict",
           J.Str
             (match verdict with
             | Exhaustive.Ok _ -> "ok"
             | Exhaustive.Counterexample _ -> "counterexample") );
         ( "schedules",
           match verdict with
           | Exhaustive.Ok n -> J.Int n
           | Exhaustive.Counterexample _ -> J.Null );
       ]
      @ (match verdict with
        | Exhaustive.Ok _ -> []
        | Exhaustive.Counterexample cex ->
          [ ("cex", Exhaustive.schedule_json cex) ])
      @ [ ("stats", Exhaustive.stats_json stats) ])

let fuzz ~cancel params =
  let kind = str_param ~default:"strong-renaming" "kind" params in
  let n = pos_param ~default:4 "n" params in
  let j = pos_param ~default:3 "j" params in
  let seed = int_param ~default:1 "seed" params in
  let budget = pos_param ~default:500 "budget" params in
  let domains = pos_param ~default:1 "domains" params in
  let target =
    match kind with
    | "strong-renaming" -> Adversary.strong_renaming_target ~n ~j
    | "consensus-reduction" -> Adversary.consensus_reduction_target ~n
    | s -> bad "unknown kind %S (strong-renaming|consensus-reduction)" s
  in
  let res = Adversary.fuzz_target ~domains ~cancel ~seed ~budget target () in
  J.Obj
    ([
       ("found", J.Bool (res.Adversary.f_witness <> None));
       ("fuzz", Adversary.fuzz_result_json res);
     ]
    @
    match res.Adversary.f_witness with
    | None -> []
    | Some w -> [ ("witness", Adversary.witness_json w) ])

let never_cancel () = false

let run ?(cancel = never_cancel) verb params =
  match verb with
  | P.Ping | P.Stats | P.Metrics | P.Shutdown | P.Hello ->
    Error
      ( P.Internal,
        Printf.sprintf "verb %S is not a pool job" (P.verb_string verb) )
  | P.Solve | P.Modelcheck | P.Subtree | P.Fuzz -> (
    try
      Ok
        (match verb with
        | P.Solve -> solve ~cancel params
        | P.Modelcheck -> modelcheck ~cancel params
        | P.Subtree -> subtree ~cancel params
        | P.Fuzz -> fuzz ~cancel params
        | _ -> assert false)
    with
    | Bad msg -> Error (P.Bad_request, msg)
    | Exhaustive.Cancelled | Adversary.Cancelled | Run.Cancelled ->
      Error (P.Deadline_exceeded, "deadline exceeded during execution")
    | exn -> Error (P.Internal, Printexc.to_string exn))
