module J = Obs.Json
module P = Protocol
module Spec = Scenario.Spec

type row = {
  row_spec : Spec.t;
  row_outcome : Spec.outcome;
  row_detail : string;
  row_latency_s : float;
}

type summary = {
  s_name : string;
  s_rows : row list;
  s_pass : int;
  s_fail : int;
  s_timeout : int;
  s_error : int;
  s_wall_s : float;
}

let ok s = s.s_fail = 0 && s.s_timeout = 0 && s.s_error = 0

let summarize ~name ~wall_s rows =
  let count o =
    List.length (List.filter (fun r -> r.row_outcome = o) rows)
  in
  {
    s_name = name;
    s_rows = rows;
    s_pass = count Spec.Pass;
    s_fail = count Spec.Fail;
    s_timeout = count Spec.Timeout;
    s_error = count Spec.Error;
    s_wall_s = wall_s;
  }

(* The response of a [scenario] request, reduced to what [Spec.classify]
   wants: the inner verb result on success, an (error-code, message) pair
   otherwise. Transport failures use the pseudo-code ["transport"], which
   no expectation can name — they always classify as [error]. *)
let classify sp (resp : (J.t, Client.error) result) =
  match resp with
  | Ok j -> (
    match J.member "result" j with
    | Some r -> Spec.classify sp (Ok r)
    | None ->
      Spec.classify sp (Error ("internal", "response missing \"result\"")))
  | Error (Client.Server (code, msg)) ->
    Spec.classify sp (Error (P.err_code_string code, msg))
  | Error (Client.Transport msg) ->
    Spec.classify sp (Error ("transport", msg))

let deadline_of ?default_deadline_ms sp =
  match sp.Spec.sp_deadline_ms with
  | Some d -> Some d
  | None -> default_deadline_ms

(* ------------------------------------------------------------- client *)

let run_client ?(window = 16) ?default_deadline_ms ~name ~client specs =
  let window = max 1 window in
  let specs = Array.of_list specs in
  let n = Array.length specs in
  let rows : row option array = Array.make n None in
  let span = Obs.Span.start ~name:"campaign" () in
  (* id -> (scenario index, send time) for every in-flight request *)
  let inflight = Hashtbl.create (2 * window) in
  let next = ref 0 in
  let completed = ref 0 in
  let dead = ref None in
  let finish i t0 resp =
    let outcome, detail = classify specs.(i) resp in
    rows.(i) <-
      Some
        {
          row_spec = specs.(i);
          row_outcome = outcome;
          row_detail = detail;
          row_latency_s = Obs.Clock.elapsed_s ~since:t0;
        };
    incr completed
  in
  while !completed < n do
    (match !dead with
    | Some msg ->
      (* connection gone: everything unfinished becomes an error row *)
      for i = 0 to n - 1 do
        if rows.(i) = None then
          finish i (Obs.Clock.now_ns ())
            (Error (Client.Transport msg))
      done
    | None ->
      while !next < n && Hashtbl.length inflight < window && !dead = None do
        let i = !next in
        let sp = specs.(i) in
        let t0 = Obs.Clock.now_ns () in
        (match
           Client.send
             ?deadline_ms:(deadline_of ?default_deadline_ms sp)
             ~params:(Spec.to_json sp) client P.Scenario
         with
        | Ok id ->
          Hashtbl.replace inflight id (i, t0);
          incr next
        | Error e ->
          finish i t0 (Error e);
          incr next;
          dead := Some (Client.error_string e))
      done;
      if !dead = None && Hashtbl.length inflight > 0 then
        match Client.recv client with
        | Ok (id, result) -> (
          match Hashtbl.find_opt inflight id with
          | Some (i, t0) ->
            Hashtbl.remove inflight id;
            finish i t0 result
          | None ->
            (* a reply we never sent (id -1 for a frame the server could
               not attribute): the connection is desynchronized *)
            dead := Some (Printf.sprintf "unexpected response id %d" id))
        | Error e -> dead := Some (Client.error_string e));
    ()
  done;
  let rows =
    Array.to_list (Array.map (fun r -> Option.get r) rows)
  in
  summarize ~name ~wall_s:(Obs.Span.finish span) rows

(* -------------------------------------------------------------- local *)

let run_local ?default_deadline_ms ~name specs =
  let span = Obs.Span.start ~name:"campaign" () in
  let rows =
    List.map
      (fun sp ->
        let t0 = Obs.Clock.now_ns () in
        let cancel =
          match deadline_of ?default_deadline_ms sp with
          | None -> fun () -> false
          | Some ms ->
            let limit =
              Int64.add t0 (Int64.mul (Int64.of_int ms) 1_000_000L)
            in
            fun () -> Obs.Clock.now_ns () > limit
        in
        let verb =
          match sp.Spec.sp_work with
          | Spec.Solve _ -> P.Solve
          | Spec.Modelcheck _ -> P.Modelcheck
          | Spec.Fuzz _ -> P.Fuzz
        in
        let result =
          match Jobs.run ~cancel verb (Spec.params_json sp) with
          | Ok j -> Ok j
          | Error (code, msg) -> Error (P.err_code_string code, msg)
        in
        let outcome, detail = Spec.classify sp result in
        {
          row_spec = sp;
          row_outcome = outcome;
          row_detail = detail;
          row_latency_s = Obs.Clock.elapsed_s ~since:t0;
        })
      specs
  in
  summarize ~name ~wall_s:(Obs.Span.finish span) rows

(* ------------------------------------------------------------- record *)

let groups_of rows =
  List.fold_left
    (fun acc r ->
      let g = Scenario.Campaign.group_of r.row_spec in
      if List.mem_assoc g acc then
        List.map (fun (g', rs) -> if g' = g then (g', rs @ [ r ]) else (g', rs)) acc
      else acc @ [ (g, [ r ]) ])
    [] rows

let counts rows =
  let count o =
    List.length (List.filter (fun r -> r.row_outcome = o) rows)
  in
  [
    ("scenarios", J.Int (List.length rows));
    ("pass", J.Int (count Spec.Pass));
    ("fail", J.Int (count Spec.Fail));
    ("timeout", J.Int (count Spec.Timeout));
    ("error", J.Int (count Spec.Error));
  ]

let record s =
  let r =
    Obs.Bench_record.create ~id:"campaign"
      ~title:(Printf.sprintf "campaign %s: expectation conformance" s.s_name)
      ()
  in
  Obs.Bench_record.meta r "campaign" (J.Str s.s_name);
  List.iter
    (fun (g, rows) ->
      Obs.Bench_record.row r
        ~labels:[ ("section", "campaign"); ("group", g) ]
        (counts rows))
    (groups_of s.s_rows);
  let total = List.length s.s_rows in
  let latency =
    if total = 0 then []
    else begin
      let reg = Obs.Metrics.registry () in
      let h = Obs.Metrics.histogram reg "campaign.scenario_latency_s" in
      List.iter (fun row -> Obs.Metrics.observe h row.row_latency_s) s.s_rows;
      [
        ( "scenarios_per_s",
          J.Float (float_of_int total /. Float.max 1e-9 s.s_wall_s) );
        ("p50_scenario_latency_s", J.Float (Obs.Metrics.quantile h 0.5));
        ("p99_scenario_latency_s", J.Float (Obs.Metrics.quantile h 0.99));
      ]
    end
  in
  Obs.Bench_record.row r
    ~labels:[ ("section", "campaign"); ("group", "total") ]
    (counts s.s_rows @ latency);
  r

let pp_summary ppf s =
  let pr fmt = Format.fprintf ppf fmt in
  pr "%-42s %9s %5s %5s %8s %6s@." "group" "scenarios" "pass" "fail"
    "timeout" "error";
  List.iter
    (fun (g, rows) ->
      let count o =
        List.length (List.filter (fun r -> r.row_outcome = o) rows)
      in
      pr "%-42s %9d %5d %5d %8d %6d@." g (List.length rows)
        (count Spec.Pass) (count Spec.Fail) (count Spec.Timeout)
        (count Spec.Error))
    (groups_of s.s_rows);
  List.iter
    (fun row ->
      if row.row_outcome <> Spec.Pass then
        pr "%s %s: %s@."
          (String.uppercase_ascii (Spec.outcome_string row.row_outcome))
          row.row_spec.Spec.sp_name row.row_detail)
    s.s_rows;
  let total = List.length s.s_rows in
  pr "total: %d scenarios, %d pass, %d fail, %d timeout, %d error (%.2f s, %.1f/s)@."
    total s.s_pass s.s_fail s.s_timeout s.s_error s.s_wall_s
    (float_of_int total /. Float.max 1e-9 s.s_wall_s)
