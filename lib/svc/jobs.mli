(** Execution of the service verbs that carry real work.

    One function per queued verb, mapping JSON params to the same engine
    entry points the CLI uses and back to a JSON result. Handlers validate
    params up front ([Bad_request] on anything malformed — an invalid
    request must never crash a worker) and thread the pool's [cancel] hook
    into the cancellable engines, translating {!Simkit.Exhaustive.Cancelled},
    {!Efd.Adversary.Cancelled} and {!Efd.Run.Cancelled} into
    [Deadline_exceeded]. *)

val run :
  ?cancel:(unit -> bool) ->
  Protocol.verb ->
  Obs.Json.t ->
  (Obs.Json.t, Protocol.err_code * string) result
(** Dispatch on the verb. [Ping]/[Stats]/[Shutdown] are server-side verbs
    and return [Internal] here; the queued verbs accept:

    - [solve]: [task], [fd], [policy], [n], [k], [j], [l], [crashes]
      ([[i, t], ...] — crash S-process [i] at time [t]), [seed],
      [budget] — one {!Efd.Run.execute}; result
      [{ "ok": bool, "report": <run report> }]. Bounded by [budget] and
      cancellable at every scheduling step.
    - [modelcheck]: [depth], [n_s], [reduce] — exhaustive safe-agreement
      check; result [{ "verdict": "ok"|"counterexample", ... }].
      Cancellable between schedules. With [checkpoint_dir] (plus optional
      [checkpoint_interval_s], default 30) the check runs the partitioned
      journaling engine ({!Ckpt.Local}) and survives a killed server;
      with [resume: true] it continues the record in [checkpoint_dir]
      instead of starting over (ignoring [scenario]/[depth]/[n_s]/[reduce]
      — the record's config wins). The result then carries a
      ["checkpoint"] field. Verdict and credited count are identical
      across all three paths.
    - [fuzz]: [kind], [n], [j], [seed], [budget], [domains] — adversary
      fuzzing; result [{ "found": bool, "fuzz": ..., "witness": ... }].
      Cancellable between trials.
    - [scenario]: params are one {!Scenario.Spec} object — validated
      server-side (malformed input is a [Bad_request] carrying the JSON
      path; unknown names list the valid ones) and dispatched to the
      solve / modelcheck / fuzz handler it describes; result
      [{ "scenario": <name>, "verb": <verb>, "result": <verb result> }].
      Name resolution shares {!Scenario.Build} with the CLI, so client
      and server cannot drift. *)
