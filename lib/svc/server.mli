(** The job server: poll-driven I/O shards over a Unix-domain or TCP
    listening socket ({!Addr}), fronting {!Pool}.

    One accept thread multiplexes the listening socket against a self-pipe
    (so {!shutdown} can interrupt it from a signal handler) and deals
    accepted descriptors round-robin to a fixed set of {e I/O shards}.
    Each shard is one thread running an event loop over its connections'
    non-blocking descriptors via {!Poll} (a [poll(2)] stub —
    [Unix.select] caps at [FD_SETSIZE] = 1024 fds, shards are sized for
    thousands): incremental frame decoding through {!Frame.decoder},
    buffered non-blocking writes, and {e pipelining} — any number of
    requests in flight per connection, responses written in completion
    order and matched by the [id] the protocol already carries.

    Ownership story: a connection belongs to exactly one shard, and that
    shard is the {e only} thread that ever reads, writes or closes the
    descriptor. [ping]/[stats]/[shutdown] are answered inline by the
    shard; job verbs are submitted to the pool in one batch per poll
    wakeup, and workers hand finished responses (serialized on the
    worker) back to the owning shard through its wake pipe rather than
    touching the socket. A connection survives until its write queue is
    flushed and its in-flight jobs have completed, so a client that hangs
    up mid-job can never cause a late reply to land on a kernel-reused
    descriptor — single-writer ownership replaces the old refcounted
    replier. Responses longer than [max_reply] degrade to a bounded
    [oversized] error instead of killing the connection.

    Submission never blocks: a full queue is an immediate [overloaded]
    reply — the backpressure contract — and a draining server answers
    [shutting_down]. Graceful shutdown ({!shutdown} then {!wait}, or a
    signal under {!run}): stop accepting, drain the pool so every
    accepted job is answered, let each shard flush its write queues,
    close the connections, join the threads. Zero accepted in-flight
    jobs are lost.

    Instrumentation: per-verb latency histograms, queue-depth and
    in-flight gauges and accepted/rejected/timed-out counters in the
    registry, [svc.*] events ({!Obs.Event.Name}, including
    [svc.shard.*]) to the optional sink. With no sink, the event paths
    allocate nothing per request. *)

type config = {
  listen : Addr.t;
      (** where to listen: [unix:PATH] or [tcp:HOST:PORT]; TCP port [0]
          lets the kernel pick — read it back with {!listen_addr} *)
  workers : int;  (** pool worker domains executing jobs *)
  shards : int;  (** I/O shard event-loop threads *)
  queue_bound : int;
  default_deadline_ms : int option;
      (** applied when a request carries no [deadline_ms]; [None] = no
          deadline *)
  max_frame : int;  (** request frames beyond this are rejected unread *)
  max_reply : int;
      (** responses beyond this are replaced by an [oversized] error
          (clamped to at least 256 bytes so the error itself fits) *)
}

val default_config : listen:Addr.t -> config
(** workers = 2, shards = 2, queue_bound = 64, no default deadline,
    max_frame = {!Frame.default_max_len},
    max_reply = {!Frame.max_wire_len}. *)

type t

val start : ?sink:Obs.Sink.t -> ?registry:Obs.Metrics.registry -> config -> t
(** Bind, listen, spawn the pool, the shards and the accept thread,
    return immediately. Replaces a stale socket file for Unix-path
    addresses; sets [SO_REUSEADDR] for TCP (restarts must not trip over
    their own [TIME_WAIT] remnants). Ignores [SIGPIPE] process-wide (a
    client hanging up mid-reply must not kill the server). *)

val listen_addr : t -> Addr.t
(** The address actually bound — with [tcp:HOST:0] this carries the port
    the kernel picked, which is how tests and in-process worker fleets
    learn where to connect. *)

val shutdown : t -> unit
(** Trigger graceful shutdown; returns immediately; idempotent.
    Async-signal-safe in the OCaml sense (an atomic store and a pipe
    write), so it can be called from a [Sys.Signal_handle]; after {!wait}
    has completed it is a guarded no-op — it will never write into the
    closed (possibly kernel-reused) wake descriptor. *)

val wait : t -> unit
(** Block until shutdown completes: accept loop joined, pool drained
    (every accepted job replied), shards flushed and joined, connections
    closed. *)

val stats_json : t -> Obs.Json.t
(** The live counters the [stats] verb reports: accepted, rejected,
    served, timed-out, in-flight, queue depth, workers, shards. *)

val run :
  ?sink:Obs.Sink.t ->
  ?registry:Obs.Metrics.registry ->
  ?on_listen:(Addr.t -> unit) ->
  config ->
  unit
(** {!start}, install [SIGTERM]/[SIGINT] handlers that {!shutdown}, then
    {!wait} — the body of [wfa serve]. [on_listen] fires once the socket
    is bound, with {!listen_addr} — how [wfa serve --listen tcp::0]
    announces the kernel-chosen port. The previous signal handlers are
    restored on return (even by exception), so a second server — or the
    process's own handlers — behave correctly afterwards. *)
