(** The job server: a Unix-domain-socket front end over {!Pool}.

    One accept thread multiplexes the listening socket against a self-pipe
    (so {!shutdown} can interrupt it from a signal handler); one systhread
    per connection reads frames, parses and validates them, answers
    [ping]/[stats]/[shutdown] inline and submits the rest to the pool.
    Submission never blocks: a full queue is an immediate [overloaded]
    reply — the backpressure contract — and a draining server answers
    [shutting_down]. A connection's descriptor is reference-counted (conn
    thread + in-flight jobs) and closed by the last holder, so a client
    hanging up mid-job never redirects a late reply onto a reused fd.

    Graceful shutdown ({!shutdown} then {!wait}, or a signal under
    {!run}): stop accepting, drain the pool so every accepted job is
    answered, shut the connection sockets down, join the threads. Zero
    accepted in-flight jobs are lost.

    Instrumentation: per-verb latency histograms, queue-depth and
    in-flight gauges and accepted/rejected/timed-out counters in the
    registry, [svc.*] events ({!Obs.Event.Name}) to the optional sink.
    With no sink, the event paths allocate nothing per request. *)

type config = {
  socket_path : string;
  workers : int;
  queue_bound : int;
  default_deadline_ms : int option;
      (** applied when a request carries no [deadline_ms]; [None] = no
          deadline *)
  max_frame : int;  (** request frames beyond this are rejected unread *)
}

val default_config : socket_path:string -> config
(** workers = 2, queue_bound = 64, no default deadline,
    max_frame = {!Frame.default_max_len}. *)

type t

val start : ?sink:Obs.Sink.t -> ?registry:Obs.Metrics.registry -> config -> t
(** Bind, listen, spawn the pool and the accept thread, return
    immediately. Replaces a stale socket file at [socket_path]. Ignores
    [SIGPIPE] process-wide (a client hanging up mid-reply must not kill
    the server). *)

val shutdown : t -> unit
(** Trigger graceful shutdown; returns immediately; idempotent.
    Async-signal-safe in the OCaml sense (an atomic store and a pipe
    write), so it can be called from a [Sys.Signal_handle]. *)

val wait : t -> unit
(** Block until shutdown completes: accept loop joined, pool drained
    (every accepted job replied), connections closed and joined. *)

val stats_json : t -> Obs.Json.t
(** The live counters the [stats] verb reports: accepted, rejected,
    served, timed-out, in-flight, queue depth, workers. *)

val run : ?sink:Obs.Sink.t -> ?registry:Obs.Metrics.registry -> config -> unit
(** {!start}, install [SIGTERM]/[SIGINT] handlers that {!shutdown}, then
    {!wait} — the body of [wfa serve]. *)
