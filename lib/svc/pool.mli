(** The worker pool: [Domain]s draining the bounded {!Jobq}.

    Each worker pops a job, checks its deadline (a job whose deadline
    passed while it sat in the queue is answered [deadline_exceeded]
    without being started), runs it through {!Jobs.run} with a cancel hook
    that trips once the deadline passes mid-execution, and hands the
    response to the job's [jb_reply] — the server-provided closure that
    owns the socket write and the metrics.

    {!drain} is the graceful half of shutdown: close the queue, let the
    workers finish every job that was already accepted (each gets a
    reply), then join them. *)

type job = {
  jb_req : Protocol.request;
  jb_conn : int;  (** connection id, for events *)
  jb_enq_ns : int64;  (** {!Obs.Clock.now_ns} at enqueue, for latency *)
  jb_deadline_ns : int64 option;  (** absolute monotonic deadline *)
  jb_reply : Protocol.response -> float -> unit;
      (** response and queue+run latency in seconds; must not raise *)
}

type t

val create : workers:int -> queue_bound:int -> t
(** Spawns [workers] ≥ 1 domains immediately. *)

val submit : t -> job -> [ `Ok | `Full | `Closed ]
(** Non-blocking; [`Full] is the backpressure signal. *)

val submit_many : t -> job list -> [ `Ok | `Full | `Closed ] list
(** Submit a batch under one queue-lock acquisition — what an I/O shard
    uses to hand over every request decoded in one poll wakeup. Returns
    one verdict per job, in order; jobs past the bound get [`Full]. *)

val deadline_cancel : int64 -> unit -> bool
(** The cancel hook a worker threads into a job's engine for an absolute
    monotonic deadline: sticky, thread-safe (parallel fuzz domains poll one
    shared closure), and consults the clock on the {e first} call and every
    256th thereafter — so an already-expired deadline trips on the very
    first poll. Exposed for tests. *)

val queue_length : t -> int

val drain : t -> unit
(** Close the queue, run every already-accepted job to a reply, join the
    workers. Idempotent. *)
