external poll_stub :
  Unix.file_descr array -> int array -> int array -> int -> int -> int
  = "svc_poll_stub"

let pollin = 1
let pollout = 2
let pollerr = 4
let pollhup = 8

type t = {
  mutable fds : Unix.file_descr array;
  mutable events : int array;
  mutable revents : int array;
  mutable n : int;
}

(* Unix.stdin is a harmless placeholder for unused slots: entries past
   [n] are never handed to poll(2). *)
let create () =
  {
    fds = Array.make 64 Unix.stdin;
    events = Array.make 64 0;
    revents = Array.make 64 0;
    n = 0;
  }

let clear t = t.n <- 0

let grow t =
  let cap = Array.length t.fds * 2 in
  let fds = Array.make cap Unix.stdin in
  let events = Array.make cap 0 in
  let revents = Array.make cap 0 in
  Array.blit t.fds 0 fds 0 t.n;
  Array.blit t.events 0 events 0 t.n;
  t.fds <- fds;
  t.events <- events;
  t.revents <- revents

let add t fd events =
  if t.n = Array.length t.fds then grow t;
  let i = t.n in
  t.fds.(i) <- fd;
  t.events.(i) <- events;
  t.revents.(i) <- 0;
  t.n <- i + 1;
  i

let wait t ~timeout_ms =
  if t.n = 0 then 0 else poll_stub t.fds t.events t.revents t.n timeout_ms

let revents t i = t.revents.(i)
let length t = t.n
