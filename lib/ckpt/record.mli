(** The checkpoint record: what a deep exhaustive run durably is.

    PR 4 made schedule counts credited and mergeable and PR 6 turned the
    search into independent {!Simkit.Exhaustive.subtree} jobs with a
    commutative, associative merge — so the complete progress of a run is
    nothing more than its configuration (enough to re-derive the identical
    frontier deterministically) plus the set of jobs already answered,
    each with its verdict and stats. Resuming re-splits, skips the
    recorded ids, and folds recorded and fresh results together: the final
    verdict, credited count and lex-least counterexample are those of an
    uninterrupted run {e by construction}, not by luck.

    The record serializes to one {!Obs.Json.t} value (stats via
    {!Simkit.Exhaustive.stats_json}, schedules via [schedule_json] — the
    PR 7 wire codecs), which {!Store} persists in either payload codec. *)

type config = {
  cf_scenario : string;  (** {!Mcheck.Scenario} name *)
  cf_n_s : int;
  cf_depth : int;
  cf_reduce : bool;
  cf_split_depth : int;
}

type done_job = {
  dj_id : int;  (** {!Simkit.Exhaustive.subtree} [sj_id] *)
  dj_verdict : Simkit.Exhaustive.verdict;
  dj_stats : Simkit.Exhaustive.stats;
}

type t = {
  ck_config : config;
  ck_total : int;  (** jobs the frontier splits into under [ck_config] *)
  ck_done : done_job list;  (** ascending [dj_id], each unique, < [ck_total] *)
}

val make : config:config -> total:int -> done_:done_job list -> t
(** Sorts and de-duplicates [done_] by id (first wins — the coordinator's
    first-result-wins rule). Raises [Invalid_argument] on an id outside
    [0, total). *)

val json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result
(** [of_json ∘ json = Ok] (the qcheck battery pins this through the store
    in both codecs). [of_json] validates shape and the id invariants. *)

val equal : t -> t -> bool
(** Structural, [wall_s] included — for round-trip tests. *)
