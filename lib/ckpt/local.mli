(** The single-process checkpointed exhaustive engine.

    Instead of one monolithic {!Simkit.Exhaustive.run} DFS (whose progress
    is unserializable mid-flight — effect continuations cannot be cloned),
    the checkpointed engine runs the {e partitioned} form of the same
    search: {!Simkit.Exhaustive.split} derives the frontier, each subtree
    job runs to completion in order, and a {!Record} of answered jobs is
    written to the {!Store} at start, every [interval_s], and at the end.
    By the merge theorem ([merge_verdicts]/[merge_stats] — commutative,
    associative, credited) the folded verdict, schedule count and
    lex-least counterexample equal the monolithic engine's, so a run
    killed at any instant and {!resume}d finishes with output identical to
    an uninterrupted one.

    On {!Simkit.Exhaustive.Cancelled} (a service-layer deadline), progress
    is saved before the exception propagates: a timed-out checkpointed
    request leaves a store a later request can resume. *)

val default_interval_s : float
(** 30 seconds. *)

val default_split_depth : depth:int -> int
(** The distributed coordinator's default, [max 1 (min 3 (depth - 1))] —
    deep enough for useful journal granularity, shallow enough that the
    split prefix is negligible. *)

val run :
  ?interval_s:float ->
  ?split_depth:int ->
  ?reduce:bool ->
  ?cancel:(unit -> bool) ->
  store:Store.t ->
  scenario:Mcheck.Scenario.t ->
  depth:int ->
  unit ->
  (Simkit.Exhaustive.verdict * Simkit.Exhaustive.stats, string) result
(** Start a fresh checkpointed check ([depth] ≥ 2; [split_depth] defaults
    to the distributed coordinator's [max 1 (min 3 (depth - 1))]).
    [Error] covers configuration mistakes and store I/O failure. *)

val resume :
  ?interval_s:float ->
  ?cancel:(unit -> bool) ->
  store:Store.t ->
  unit ->
  ( Record.config * Simkit.Exhaustive.verdict * Simkit.Exhaustive.stats,
    string )
  result
(** Reload the newest intact record from [store], rebuild the scenario
    from its config, re-split (deterministic, so the frontier is
    identical), skip every recorded job and run the rest. [Error] when the
    store holds no valid record, names an unknown scenario, or its job
    total does not match the re-derived frontier (a record from a
    different engine version). *)

val load_record : Store.t -> (int * Record.t, string) result
(** The newest intact generation parsed as a {!Record} — shared by
    {!resume}, the coordinator's resume path and [wfa resume]. *)
