open Simkit
module J = Obs.Json

type config = {
  cf_scenario : string;
  cf_n_s : int;
  cf_depth : int;
  cf_reduce : bool;
  cf_split_depth : int;
}

type done_job = {
  dj_id : int;
  dj_verdict : Exhaustive.verdict;
  dj_stats : Exhaustive.stats;
}

type t = { ck_config : config; ck_total : int; ck_done : done_job list }

let make ~config ~total ~done_ =
  List.iter
    (fun d ->
      if d.dj_id < 0 || d.dj_id >= total then
        invalid_arg
          (Printf.sprintf "Ckpt.Record.make: job id %d outside [0, %d)"
             d.dj_id total))
    done_;
  let sorted =
    List.stable_sort (fun a b -> compare a.dj_id b.dj_id) done_
  in
  let rec dedup = function
    | a :: (b :: _ as rest) when a.dj_id = b.dj_id ->
      a :: dedup (List.filter (fun d -> d.dj_id <> a.dj_id) rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  { ck_config = config; ck_total = total; ck_done = dedup sorted }

(* -- writing ---------------------------------------------------------------- *)

let config_json c =
  J.Obj
    [
      ("scenario", J.Str c.cf_scenario);
      ("n_s", J.Int c.cf_n_s);
      ("depth", J.Int c.cf_depth);
      ("reduce", J.Bool c.cf_reduce);
      ("split_depth", J.Int c.cf_split_depth);
    ]

(* the same shape the [subtree] verb replies with, so a journal entry and a
   wire result read identically *)
let done_json d =
  J.Obj
    ([ ("id", J.Int d.dj_id) ]
    @ (match d.dj_verdict with
      | Exhaustive.Ok n -> [ ("verdict", J.Str "ok"); ("schedules", J.Int n) ]
      | Exhaustive.Counterexample cex ->
        [
          ("verdict", J.Str "counterexample");
          ("cex", Exhaustive.schedule_json cex);
        ])
    @ [ ("stats", Exhaustive.stats_json d.dj_stats) ])

let json r =
  J.Obj
    [
      ("v", J.Int 1);
      ("config", config_json r.ck_config);
      ("total", J.Int r.ck_total);
      ("done", J.List (List.map done_json r.ck_done));
    ]

(* -- reading ---------------------------------------------------------------- *)

let ( let* ) = Result.bind

let int_field name j =
  match J.member name j with
  | Some v -> (
    match J.to_int_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "field %S is not an integer" name))
  | None -> Error (Printf.sprintf "missing field %S" name)

let str_field name j =
  match J.member name j with
  | Some (J.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S is not a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let bool_field name j =
  match J.member name j with
  | Some (J.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S is not a boolean" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let config_of_json j =
  let* scenario = str_field "scenario" j in
  let* n_s = int_field "n_s" j in
  let* depth = int_field "depth" j in
  let* reduce = bool_field "reduce" j in
  let* split_depth = int_field "split_depth" j in
  Ok
    {
      cf_scenario = scenario;
      cf_n_s = n_s;
      cf_depth = depth;
      cf_reduce = reduce;
      cf_split_depth = split_depth;
    }

let done_of_json j =
  let* id = int_field "id" j in
  let* verdict =
    match J.member "verdict" j with
    | Some (J.Str "ok") ->
      let* n = int_field "schedules" j in
      Ok (Exhaustive.Ok n)
    | Some (J.Str "counterexample") -> (
      match J.member "cex" j with
      | Some c -> (
        match Exhaustive.schedule_of_json c with
        | Ok cex -> Ok (Exhaustive.Counterexample cex)
        | Error _ as e -> e)
      | None -> Error "missing field \"cex\"")
    | _ -> Error "missing or unknown field \"verdict\""
  in
  let* stats =
    match J.member "stats" j with
    | Some s -> Exhaustive.stats_of_json s
    | None -> Error "missing field \"stats\""
  in
  Ok { dj_id = id; dj_verdict = verdict; dj_stats = stats }

let of_json j =
  match j with
  | J.Obj _ -> (
    let* () =
      match J.member "v" j with
      | Some (J.Int 1) -> Ok ()
      | Some _ -> Error "unsupported checkpoint record version"
      | None -> Error "missing field \"v\""
    in
    let* config =
      match J.member "config" j with
      | Some (J.Obj _ as c) -> config_of_json c
      | Some _ -> Error "field \"config\" is not an object"
      | None -> Error "missing field \"config\""
    in
    let* total = int_field "total" j in
    let* done_ =
      match J.member "done" j with
      | Some (J.List items) ->
        let rec go i acc = function
          | [] -> Ok (List.rev acc)
          | item :: rest -> (
            match done_of_json item with
            | Ok d -> go (i + 1) (d :: acc) rest
            | Error msg -> Error (Printf.sprintf "done[%d]: %s" i msg))
        in
        go 0 [] items
      | Some _ -> Error "field \"done\" is not a list"
      | None -> Error "missing field \"done\""
    in
    if total < 0 then Error "field \"total\" must be >= 0"
    else
      match make ~config ~total ~done_ with
      | r -> Ok r
      | exception Invalid_argument msg -> Error msg)
  | _ -> Error "checkpoint record is not an object"

let equal a b = a = b
