module J = Obs.Json

type codec = Json | Binary

type t = {
  dir : string;
  codec : codec;
  keep : int;
  sink : Obs.Sink.t option;
  metrics : Obs.Metrics.registry option;
  mutable next_gen : int;
}

(* -- layout ----------------------------------------------------------------

   gen-NNNNNN.ckpt ::= magic "WFC1" (4B) | codec (1B: 0 json, 1 binary)
                     | payload length (8B BE) | payload bytes
                     | FNV-1a 64 of payload (8B BE)

   The length makes truncation detectable (a torn tail shortens the file
   below header + length + trailer), the checksum makes corruption
   detectable, and the decode pass makes the payload usable — a file must
   clear all three before [load] will return it. *)

let magic = "WFC1"
let header_len = 4 + 1 + 8
let trailer_len = 8

let codec_byte = function Json -> '\x00' | Binary -> '\x01'

let codec_of_byte = function
  | '\x00' -> Some Json
  | '\x01' -> Some Binary
  | _ -> None

let codec_string = function Json -> "json" | Binary -> "binary"

let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let gen_name g = Printf.sprintf "gen-%06d.ckpt" g
let generation_path t g = Filename.concat t.dir (gen_name g)
let dir t = t.dir

let gen_of_name name =
  match Scanf.sscanf_opt name "gen-%d.ckpt%!" Fun.id with
  | Some g when g >= 0 -> Some g
  | _ -> None

let scan_generations dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries |> List.filter_map gen_of_name |> List.sort compare

let generations t = scan_generations t.dir

(* -- observability --------------------------------------------------------- *)

let emit t name fields =
  match t.sink with
  | None -> ()
  | Some s -> Obs.Sink.emit s (Obs.Event.make name fields)

let count t ?(by = 1) name =
  match t.metrics with
  | None -> ()
  | Some reg -> Obs.Metrics.incr ~by (Obs.Metrics.counter reg name)

(* -- open ------------------------------------------------------------------ *)

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(codec = Binary) ?(keep = 3) ?sink ?metrics dir =
  match
    if Sys.file_exists dir then
      if Sys.is_directory dir then Ok ()
      else Error (Printf.sprintf "checkpoint path %S is not a directory" dir)
    else
      match mkdir_p dir with
      | () -> Ok ()
      | exception Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "cannot create checkpoint directory %S: %s" dir
             (Unix.error_message e))
  with
  | Error _ as e -> e
  | Ok () ->
    let gens = scan_generations dir in
    let next_gen =
      match List.rev gens with [] -> 0 | newest :: _ -> newest + 1
    in
    Ok { dir; codec; keep = max 1 keep; sink; metrics; next_gen }

(* -- durable write --------------------------------------------------------- *)

let fsync_dir dir =
  (* best-effort: some filesystems refuse O_RDONLY fsync on directories *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let write_atomic ~dir ~name contents =
  let tmp = Filename.concat dir ("tmp-" ^ name) in
  let final = Filename.concat dir name in
  match
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let len = String.length contents in
        let written = ref 0 in
        while !written < len do
          written :=
            !written
            + Unix.write_substring fd contents !written (len - !written)
        done;
        Unix.fsync fd);
    Unix.rename tmp final;
    fsync_dir dir
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.unlink tmp with Unix.Unix_error _ | Sys_error _ -> ());
    Error (Printf.sprintf "write %s: %s" final (Unix.error_message e))

let encode_payload codec value =
  match codec with
  | Json -> J.to_string value
  | Binary ->
    let buf = Buffer.create 4096 in
    Obs.Binval.add_value buf value;
    Buffer.contents buf

let encode_generation codec value =
  let payload = encode_payload codec value in
  let buf = Buffer.create (header_len + String.length payload + trailer_len) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (codec_byte codec);
  Obs.Binval.add_i64 buf (String.length payload);
  Buffer.add_string buf payload;
  Buffer.add_int64_be buf (fnv64 payload);
  Buffer.contents buf

(* Prune synchronously after a successful save: unlink is cheap, and doing
   it here (rather than on a timer) keeps the store's invariant — at most
   [keep] generations plus whatever an in-progress crash left — local to
   one function. The manifest always names a surviving generation. *)
let prune t =
  let gens = List.rev (scan_generations t.dir) in
  List.iteri
    (fun i g ->
      if i >= t.keep then
        try Sys.remove (generation_path t g) with Sys_error _ -> ())
    gens

let manifest_name = "MANIFEST"

(* The manifest is advisory — [load] scans and validates generation files
   directly and never reads it — so it is renamed into place atomically but
   not fsynced: losing it to a crash costs nothing, and skipping the two
   syncs halves the per-generation journal cost. *)
let write_manifest t gen =
  let tmp = Filename.concat t.dir ("tmp-" ^ manifest_name) in
  let contents =
    J.to_string (J.Obj [ ("v", J.Int 1); ("current", J.Int gen) ])
  in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc contents);
    Unix.rename tmp (Filename.concat t.dir manifest_name)
  with
  | () -> ()
  | exception (Sys_error _ | Unix.Unix_error _) -> (
    try Unix.unlink tmp with Unix.Unix_error _ | Sys_error _ -> ())

let save t value =
  let gen = t.next_gen in
  let contents = encode_generation t.codec value in
  match write_atomic ~dir:t.dir ~name:(gen_name gen) contents with
  | Error _ as e -> e
  | Ok () ->
      write_manifest t gen;
      t.next_gen <- gen + 1;
      prune t;
      count t "ckpt.generations";
      count t ~by:(String.length contents) "ckpt.bytes_written";
      emit t Obs.Event.Name.ckpt_save
        [
          ("gen", J.Int gen);
          ("bytes", J.Int (String.length contents));
          ("codec", J.Str (codec_string t.codec));
        ];
      Ok gen

(* -- load with rollback ---------------------------------------------------- *)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Some s
  | exception Sys_error _ -> None
  | exception End_of_file -> None

let validate contents =
  let n = String.length contents in
  if n < header_len + trailer_len then Error "truncated header"
  else if String.sub contents 0 4 <> magic then Error "bad magic"
  else
    match codec_of_byte contents.[4] with
    | None -> Error "unknown codec byte"
    | Some codec -> (
      let pos = ref 5 in
      match Obs.Binval.get_i64 contents pos with
      | exception Obs.Binval.Error msg -> Error msg
      | len ->
        if len < 0 || n - header_len - trailer_len <> len then
          Error "payload length mismatch (torn write?)"
        else
          let payload = String.sub contents header_len len in
          let stored = String.get_int64_be contents (header_len + len) in
          if not (Int64.equal stored (fnv64 payload)) then
            Error "checksum mismatch"
          else (
            match codec with
            | Json -> (
              match J.of_string payload with
              | Ok v -> Ok v
              | Error msg -> Error ("payload JSON: " ^ msg))
            | Binary -> (
              let p = ref 0 in
              match Obs.Binval.decode_value payload p with
              | exception Obs.Binval.Error msg -> Error ("payload: " ^ msg)
              | v ->
                if !p <> len then Error "payload: trailing garbage"
                else Ok v)))

let load t =
  let rec try_gens = function
    | [] -> None
    | g :: older -> (
      let demote reason =
        count t "ckpt.rollbacks";
        emit t Obs.Event.Name.ckpt_rollback
          [ ("gen", J.Int g); ("reason", J.Str reason) ];
        try_gens older
      in
      match read_file (generation_path t g) with
      | None -> demote "unreadable"
      | Some contents -> (
        match validate contents with
        | Error reason -> demote reason
        | Ok value ->
          count t "ckpt.loads";
          emit t Obs.Event.Name.ckpt_load
            [ ("gen", J.Int g); ("bytes", J.Int (String.length contents)) ];
          Some (g, value)))
  in
  try_gens (List.rev (scan_generations t.dir))

let note_resume t ~gen ~total ~done_ =
  count t "ckpt.resumes";
  emit t Obs.Event.Name.ckpt_resume
    [ ("gen", J.Int gen); ("total", J.Int total); ("done", J.Int done_) ]
