(** A crash-safe generational record store — the durability layer under
    checkpoint/resume (DESIGN.md §8).

    One store is one directory holding monotonically numbered generation
    files [gen-NNNNNN.ckpt] plus a [MANIFEST] naming the newest. Every
    write is atomic and durable: the bytes go to a temp file in the same
    directory, are [fsync]ed, renamed over the final name, and the
    directory itself is [fsync]ed — a crash at any instant leaves either
    the previous state or the new one, never a half-written current
    generation under its final name.

    Each generation file carries a header (magic, version, codec), the
    payload length, the payload — one {!Obs.Json.t} value in either the
    JSON text encoding or the {!Obs.Binval} tagged binary encoding, the
    same bytes the wire protocol uses — and an FNV-1a checksum. {!load}
    validates newest-first and {e rolls back}: a torn tail, a bit flip, a
    lying length or an undecodable payload demotes that generation and the
    next older one is tried, so the loader returns the newest generation
    that is provably intact, or [None] when none is. It never raises on
    corrupt input.

    Old generations are pruned on save (keeping a small tail as rollback
    insurance), so a long run's store stays O(keep) files. *)

type codec = Json | Binary

type t

val create :
  ?codec:codec ->
  ?keep:int ->
  ?sink:Obs.Sink.t ->
  ?metrics:Obs.Metrics.registry ->
  string ->
  (t, string) result
(** Open (creating the directory if needed) a store rooted at the given
    directory. [codec] (default [Binary]) is the payload encoding for
    {e new} generations — {!load} auto-detects per file, so a store may
    mix codecs across its history. [keep] (default 3, min 1) is how many
    newest generations survive pruning. [sink] receives the [ckpt.*]
    events ({!Obs.Event.Name}); [metrics] accumulates the
    [ckpt.generations], [ckpt.bytes_written], [ckpt.loads] and
    [ckpt.rollbacks] counters. [Error] covers an unusable path (exists
    but is a file, cannot be created). *)

val dir : t -> string

val save : t -> Obs.Json.t -> (int, string) result
(** Durably write a new generation holding the value; returns its number
    (one more than the newest generation present at {!create} time or
    written since). [Error] reports I/O failure (disk full, permissions);
    the store's existing generations are untouched in that case. *)

val load : t -> (int * Obs.Json.t) option
(** The newest intact generation and its number. [None] when the store
    holds no valid generation (fresh directory, or all corrupt). *)

val generations : t -> int list
(** Generation numbers currently on disk, ascending (validity not
    checked) — for tests and [wfa resume] diagnostics. *)

val generation_path : t -> int -> string
(** The file a given generation lives in (whether or not it exists). *)

val note_resume : t -> gen:int -> total:int -> done_:int -> unit
(** Emit the [ckpt.resume] event (and bump the [ckpt.resumes] counter)
    through this store's sink — called by the engines when they continue
    from a loaded record. *)
