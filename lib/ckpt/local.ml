open Simkit

let default_interval_s = 30.

(* same default the distributed coordinator uses — deep enough to give the
   journal useful granularity, shallow enough that the split is negligible *)
let default_split_depth ~depth = max 1 (min 3 (depth - 1))

let load_record store =
  match Store.load store with
  | None -> Error "no valid checkpoint generation found"
  | Some (gen, value) -> (
    match Record.of_json value with
    | Ok r -> Ok (gen, r)
    | Error msg ->
      Error (Printf.sprintf "generation %d: invalid record: %s" gen msg))

let ( let* ) = Result.bind

(* The shared engine under [run] and [resume]: split, skip what [pre]
   already answered, run the rest in DFS order, journal on the clock. *)
let continue ~interval_s ~cancel ~store ~sc ~config ~pre () =
  let depth = config.Record.cf_depth in
  let split_depth = config.Record.cf_split_depth in
  let red = Mcheck.Scenario.reduction sc ~reduce:config.Record.cf_reduce in
  let build = sc.Mcheck.Scenario.sc_build in
  let pids = sc.Mcheck.Scenario.sc_pids in
  let prop = sc.Mcheck.Scenario.sc_prop in
  if depth < 2 then Error "checkpointed runs need depth >= 2"
  else if not (split_depth >= 1 && split_depth < depth) then
    Error
      (Printf.sprintf "split depth %d not in [1, %d)" split_depth depth)
  else
    let fr = Exhaustive.split ?reduce:red ~build ~pids ~depth ~split_depth ~prop () in
    let total = List.length fr.Exhaustive.fr_jobs in
    let* () =
      match pre with
      | Some r when r.Record.ck_total <> total ->
        Error
          (Printf.sprintf
             "checkpoint records %d jobs but the frontier splits into %d \
              (record from a different engine?)"
             r.Record.ck_total total)
      | _ -> Ok ()
    in
    let done_ =
      ref (match pre with None -> [] | Some r -> List.rev r.Record.ck_done)
    in
    let answered = Hashtbl.create (max 16 total) in
    List.iter
      (fun d -> Hashtbl.replace answered d.Record.dj_id ())
      (match pre with None -> [] | Some r -> r.Record.ck_done);
    let save () =
      let record = Record.make ~config ~total ~done_:!done_ in
      match Store.save store (Record.json record) with
      | Ok _ -> Ok ()
      | Error _ as e -> e
    in
    (* a generation exists from the first instant: a kill before the first
       interval still leaves a resumable store *)
    let* () = save () in
    let last_save = ref (Obs.Clock.now_ns ()) in
    let maybe_save () =
      if Obs.Clock.elapsed_s ~since:!last_save >= interval_s then begin
        let r = save () in
        last_save := Obs.Clock.now_ns ();
        r
      end
      else Ok ()
    in
    let rec jobs_loop = function
      | [] -> Ok ()
      | sj :: rest ->
        if Hashtbl.mem answered sj.Exhaustive.sj_id then jobs_loop rest
        else begin
          let verdict, stats =
            try
              Exhaustive.run_subtree ?reduce:red ?cancel ~build ~pids ~depth
                ~prop sj
            with Exhaustive.Cancelled ->
              (* persist what completed, then let the deadline surface *)
              ignore (save ());
              raise Exhaustive.Cancelled
          in
          done_ :=
            {
              Record.dj_id = sj.Exhaustive.sj_id;
              dj_verdict = verdict;
              dj_stats = stats;
            }
            :: !done_;
          Hashtbl.replace answered sj.Exhaustive.sj_id ();
          let* () = maybe_save () in
          jobs_loop rest
        end
    in
    let* () = jobs_loop fr.Exhaustive.fr_jobs in
    let* () = save () in
    let sorted =
      List.stable_sort
        (fun a b -> compare a.Record.dj_id b.Record.dj_id)
        !done_
    in
    let verdict =
      List.fold_left
        (fun acc d ->
          Exhaustive.merge_verdicts ~pids acc d.Record.dj_verdict)
        (Exhaustive.Ok fr.Exhaustive.fr_pruned)
        sorted
    in
    let verdict =
      match fr.Exhaustive.fr_cex with
      | None -> verdict
      | Some cex ->
        Exhaustive.merge_verdicts ~pids verdict (Exhaustive.Counterexample cex)
    in
    let stats =
      List.fold_left
        (fun acc d -> Exhaustive.merge_stats acc d.Record.dj_stats)
        fr.Exhaustive.fr_stats sorted
    in
    Ok (verdict, stats)

let run ?(interval_s = default_interval_s) ?split_depth ?(reduce = false)
    ?cancel ~store ~scenario:sc ~depth () =
  let split_depth =
    match split_depth with
    | Some d -> d
    | None -> default_split_depth ~depth
  in
  let config =
    {
      Record.cf_scenario = sc.Mcheck.Scenario.sc_name;
      cf_n_s = sc.Mcheck.Scenario.sc_n_s;
      cf_depth = depth;
      cf_reduce = reduce;
      cf_split_depth = split_depth;
    }
  in
  continue ~interval_s ~cancel ~store ~sc ~config ~pre:None ()

let resume ?(interval_s = default_interval_s) ?cancel ~store () =
  let* gen, r = load_record store in
  let config = r.Record.ck_config in
  let* sc =
    Mcheck.Scenario.find config.Record.cf_scenario
      ~n_s:config.Record.cf_n_s
  in
  Store.note_resume store ~gen ~total:r.Record.ck_total
    ~done_:(List.length r.Record.ck_done);
  let* verdict, stats =
    continue ~interval_s ~cancel ~store ~sc ~config ~pre:(Some r) ()
  in
  Ok (config, verdict, stats)
