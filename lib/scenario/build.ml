open Tasklib
open Efd

type task_kind = [ `Consensus | `Ksa | `Renaming | `Wsb | `Identity ]
type fd_kind = [ `Omega | `Vector | `Silent | `Trivial | `Perfect ]
type policy = Fair | Kconc of int | Uniform of int

let task_assoc : (string * task_kind) list =
  [
    ("consensus", `Consensus);
    ("ksa", `Ksa);
    ("renaming", `Renaming);
    ("wsb", `Wsb);
    ("identity", `Identity);
  ]

let fd_assoc : (string * fd_kind) list =
  [
    ("omega", `Omega);
    ("vector", `Vector);
    ("silent", `Silent);
    ("trivial", `Trivial);
    ("perfect", `Perfect);
  ]

let task_names = List.map fst task_assoc
let fd_names = List.map fst fd_assoc
let fuzz_kinds = [ "strong-renaming"; "consensus-reduction" ]
let alternatives names = String.concat "|" names

let resolve what assoc names s =
  match List.assoc_opt s assoc with
  | Some k -> Ok k
  | None ->
    Error (Printf.sprintf "unknown %s %S (%s)" what s (alternatives names))

let task_kind_of_string s = resolve "task" task_assoc task_names s
let fd_kind_of_string s = resolve "fd" fd_assoc fd_names s

let to_string assoc k =
  fst (List.find (fun (_, k') -> k' = k) assoc)

let task_kind_to_string k = to_string task_assoc k
let fd_kind_to_string k = to_string fd_assoc k

let policy_of_string s =
  let conc mk k =
    match int_of_string_opt k with
    | Some k when k >= 1 -> Ok (mk k)
    | _ ->
      Error (Printf.sprintf "invalid concurrency %S in policy, expected K >= 1" k)
  in
  match String.split_on_char ':' s with
  | [ "fair" ] -> Ok Fair
  | [ "kconc"; k ] -> conc (fun k -> Kconc k) k
  | [ "uniform"; k ] -> conc (fun k -> Uniform k) k
  | _ ->
    Error
      (Printf.sprintf "invalid policy %S (fair|kconc:K|uniform:K)" s)

let policy_to_string = function
  | Fair -> "fair"
  | Kconc k -> Printf.sprintf "kconc:%d" k
  | Uniform k -> Printf.sprintf "uniform:%d" k

let policy_factory = function
  | Fair -> Run.fair_policy
  | Kconc k -> Run.k_concurrent_policy k
  | Uniform k -> Run.k_concurrent_uniform_policy k

let task kind ~n ~k ~j ~l =
  match kind with
  | `Consensus -> Set_agreement.consensus ~n ()
  | `Ksa -> Set_agreement.make ~n ~k ()
  | `Renaming ->
    let l = Option.value l ~default:(j + k - 1) in
    Renaming.make ~n ~j ~l
  | `Wsb -> Wsb.make ~n ~j
  | `Identity -> Trivial_tasks.identity ~n ()

let algo kind task ~k =
  match kind with
  | `Consensus -> Ksa.consensus ()
  | `Ksa -> Ksa.make ~k ()
  | `Renaming -> Renaming_algos.fig4 ()
  | `Wsb -> One_concurrent.make task
  | `Identity -> Kconc_tasks.echo ()

let fd kind ~k =
  match kind with
  | `Omega -> Fdlib.Leader_fds.omega ()
  | `Vector -> Fdlib.Leader_fds.vector_omega_k ~k ()
  | `Silent -> Fdlib.Leader_fds.vector_omega_k_silent ~k ()
  | `Trivial -> Fdlib.Fd.trivial
  | `Perfect -> Fdlib.Classic.perfect ()

let fuzz_target kind ~n ~j =
  match kind with
  | "strong-renaming" -> Ok (Adversary.strong_renaming_target ~n ~j)
  | "consensus-reduction" -> Ok (Adversary.consensus_reduction_target ~n)
  | s ->
    Error
      (Printf.sprintf "unknown fuzz kind %S (%s)" s (alternatives fuzz_kinds))
