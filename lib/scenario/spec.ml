module J = Obs.Json

type expect = Safe | Violation of string option | Solves | Err of string

type solve = {
  sv_task : Build.task_kind;
  sv_fd : Build.fd_kind;
  sv_policy : Build.policy;
  sv_n : int;
  sv_k : int;
  sv_j : int;
  sv_l : int option;
  sv_crashes : (int * int) list;
  sv_seed : int;
  sv_budget : int;
}

type modelcheck = {
  mc_scenario : string;
  mc_n_s : int;
  mc_depth : int;
  mc_reduce : bool;
}

type fuzz = {
  fz_kind : string;
  fz_n : int;
  fz_j : int;
  fz_seed : int;
  fz_budget : int;
  fz_domains : int;
}

type work = Solve of solve | Modelcheck of modelcheck | Fuzz of fuzz

type t = {
  sp_name : string;
  sp_work : work;
  sp_deadline_ms : int option;
  sp_expect : expect;
}

let version = 1

let verb t =
  match t.sp_work with
  | Solve _ -> "solve"
  | Modelcheck _ -> "modelcheck"
  | Fuzz _ -> "fuzz"

let equal (a : t) (b : t) = a = b

let expect_string = function
  | Safe -> "safe"
  | Violation None -> "violation"
  | Violation (Some k) -> "violation:" ^ k
  | Solves -> "solves"
  | Err c -> "error:" ^ c

(* ------------------------------------------------------------- bounds *)

(* Bounds on untrusted numeric input: generous for every legitimate
   scenario, small enough that a hostile file cannot request astronomical
   work or index past any array. *)
let max_procs = 1024
let max_depth = 64
let max_n_s = 64
let max_domains = 256
let max_budget = 1 lsl 30
let max_crashes = 64
let max_crash_time = 1 lsl 30
let max_deadline_ms = 2147483647 (* = Svc.Protocol.max_deadline_ms *)
let max_name_len = 120

let violation_kinds = [ "task_violation"; "undecided"; "not_wait_free" ]

let err_codes =
  [
    "bad_request"; "oversized"; "overloaded"; "deadline_exceeded";
    "shutting_down"; "internal";
  ]

let name_ok s =
  let n = String.length s in
  n >= 1 && n <= max_name_len
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
         | '.' | '_' | '/' | '=' | ',' | ':' | '+' | '-' -> true
         | _ -> false)
       s

(* ------------------------------------------------------------ printing *)

let expect_json = function
  | Safe -> J.Obj [ ("outcome", J.Str "safe") ]
  | Violation None -> J.Obj [ ("outcome", J.Str "violation") ]
  | Violation (Some k) ->
    J.Obj [ ("outcome", J.Str "violation"); ("kind", J.Str k) ]
  | Solves -> J.Obj [ ("outcome", J.Str "solves") ]
  | Err c -> J.Obj [ ("outcome", J.Str "error"); ("code", J.Str c) ]

let params_json t =
  match t.sp_work with
  | Solve s ->
    J.Obj
      ([
         ("task", J.Str (Build.task_kind_to_string s.sv_task));
         ("fd", J.Str (Build.fd_kind_to_string s.sv_fd));
         ("policy", J.Str (Build.policy_to_string s.sv_policy));
         ("n", J.Int s.sv_n);
         ("k", J.Int s.sv_k);
         ("j", J.Int s.sv_j);
       ]
      @ (match s.sv_l with None -> [] | Some l -> [ ("l", J.Int l) ])
      @ (match s.sv_crashes with
        | [] -> []
        | cs ->
          [
            ( "crashes",
              J.List
                (List.map (fun (i, t) -> J.List [ J.Int i; J.Int t ]) cs) );
          ])
      @ [ ("seed", J.Int s.sv_seed); ("budget", J.Int s.sv_budget) ])
  | Modelcheck m ->
    J.Obj
      [
        ("scenario", J.Str m.mc_scenario);
        ("n_s", J.Int m.mc_n_s);
        ("depth", J.Int m.mc_depth);
        ("reduce", J.Bool m.mc_reduce);
      ]
  | Fuzz f ->
    J.Obj
      [
        ("kind", J.Str f.fz_kind);
        ("n", J.Int f.fz_n);
        ("j", J.Int f.fz_j);
        ("seed", J.Int f.fz_seed);
        ("budget", J.Int f.fz_budget);
        ("domains", J.Int f.fz_domains);
      ]

let to_json t =
  J.Obj
    ([
       ("v", J.Int version);
       ("name", J.Str t.sp_name);
       ("verb", J.Str (verb t));
       ("params", params_json t);
     ]
    @ (match t.sp_deadline_ms with
      | None -> []
      | Some d -> [ ("deadline_ms", J.Int d) ])
    @ [ ("expect", expect_json t.sp_expect) ])

let to_string t = J.to_string_pretty (to_json t)

(* ------------------------------------------------------------- parsing *)

(* Every reader threads the JSON path of what it is reading, so a bad file
   fails with the exact location: [$.params.depth: expected an integer]. *)

let fail path fmt = Printf.ksprintf (fun m -> Error (path ^ ": " ^ m)) fmt

let ( let* ) = Result.bind

let obj path = function
  | J.Obj kvs -> Ok kvs
  | _ -> fail path "expected an object"

let reject_unknown path ~known kvs =
  match List.find_opt (fun (k, _) -> not (List.mem k known)) kvs with
  | None -> Ok ()
  | Some (k, _) ->
    fail path "unknown field %S (%s)" k (String.concat "|" known)

let int_in path ~min ~max = function
  | J.Int n when n >= min && n <= max -> Ok n
  | J.Int n -> fail path "%d out of range [%d, %d]" n min max
  | _ -> fail path "expected an integer"

let any_int path = function
  | J.Int n -> Ok n
  | _ -> fail path "expected an integer"

let bool path = function
  | J.Bool b -> Ok b
  | _ -> fail path "expected a boolean"

let str path = function
  | J.Str s -> Ok s
  | _ -> fail path "expected a string"

let field kvs name ~default read =
  match List.assoc_opt name kvs with
  | None -> Ok default
  | Some v -> read v

let req path kvs name read =
  match List.assoc_opt name kvs with
  | None -> fail path "missing field %S" name
  | Some v -> read v

(* resolvers returning [Build]-style "unknown X (a|b|c)" messages, with the
   path prefixed *)
let resolving path = function Ok v -> Ok v | Error m -> Error (path ^ ": " ^ m)

let crashes_of_json path ~n v =
  match v with
  | J.List items ->
    if List.length items > max_crashes then
      fail path "more than %d crashes" max_crashes
    else
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | J.List [ J.Int p; J.Int t ] :: rest ->
          let path = Printf.sprintf "%s[%d]" path i in
          if p < 0 || p >= n then
            fail path "crash index %d out of range (S-processes: 0..%d)" p
              (n - 1)
          else if t < 0 || t > max_crash_time then
            fail path "crash time %d out of range [0, %d]" t max_crash_time
          else go (i + 1) ((p, t) :: acc) rest
        | _ :: _ ->
          fail
            (Printf.sprintf "%s[%d]" path i)
            "expected a [index, time] pair of integers"
      in
      go 0 [] items
  | _ -> fail path "expected a list of [index, time] pairs"

let solve_of_json path kvs =
  let* () =
    reject_unknown path
      ~known:
        [ "task"; "fd"; "policy"; "n"; "k"; "j"; "l"; "crashes"; "seed";
          "budget" ]
      kvs
  in
  let sub name = path ^ "." ^ name in
  let named name ~default resolve =
    field kvs name ~default:(Ok default) (fun v ->
        Ok
          (let* s = str (sub name) v in
           resolving (sub name) (resolve s)))
  in
  let* task = named "task" ~default:`Consensus Build.task_kind_of_string in
  let* sv_task = task in
  let* fd = named "fd" ~default:`Vector Build.fd_kind_of_string in
  let* sv_fd = fd in
  let* policy = named "policy" ~default:Build.Fair Build.policy_of_string in
  let* sv_policy = policy in
  let* sv_n =
    field kvs "n" ~default:4 (int_in (sub "n") ~min:1 ~max:max_procs)
  in
  let* sv_k =
    field kvs "k" ~default:1 (int_in (sub "k") ~min:1 ~max:max_procs)
  in
  let* sv_j =
    field kvs "j" ~default:3 (int_in (sub "j") ~min:1 ~max:max_procs)
  in
  let* sv_l =
    field kvs "l" ~default:None (fun v ->
        Result.map Option.some (int_in (sub "l") ~min:1 ~max:max_procs v))
  in
  let* sv_crashes =
    field kvs "crashes" ~default:[] (crashes_of_json (sub "crashes") ~n:sv_n)
  in
  let* sv_seed = field kvs "seed" ~default:1 (any_int (sub "seed")) in
  let* sv_budget =
    field kvs "budget" ~default:400_000
      (int_in (sub "budget") ~min:1 ~max:max_budget)
  in
  Ok
    (Solve
       {
         sv_task; sv_fd; sv_policy; sv_n; sv_k; sv_j; sv_l; sv_crashes;
         sv_seed; sv_budget;
       })

let modelcheck_of_json path kvs =
  let* () =
    reject_unknown path ~known:[ "scenario"; "n_s"; "depth"; "reduce" ] kvs
  in
  let sub name = path ^ "." ^ name in
  let* mc_scenario =
    field kvs "scenario" ~default:"safe-agreement" (str (sub "scenario"))
  in
  let* () =
    if List.mem mc_scenario Mcheck.Scenario.names then Ok ()
    else
      fail (sub "scenario") "unknown scenario %S (%s)" mc_scenario
        (String.concat "|" Mcheck.Scenario.names)
  in
  let* mc_n_s =
    field kvs "n_s" ~default:1 (int_in (sub "n_s") ~min:1 ~max:max_n_s)
  in
  let* mc_depth =
    field kvs "depth" ~default:8 (int_in (sub "depth") ~min:1 ~max:max_depth)
  in
  let* mc_reduce = field kvs "reduce" ~default:false (bool (sub "reduce")) in
  Ok (Modelcheck { mc_scenario; mc_n_s; mc_depth; mc_reduce })

let fuzz_of_json path kvs =
  let* () =
    reject_unknown path
      ~known:[ "kind"; "n"; "j"; "seed"; "budget"; "domains" ]
      kvs
  in
  let sub name = path ^ "." ^ name in
  let* fz_kind =
    field kvs "kind" ~default:"strong-renaming" (str (sub "kind"))
  in
  let* () =
    if List.mem fz_kind Build.fuzz_kinds then Ok ()
    else
      fail (sub "kind") "unknown fuzz kind %S (%s)" fz_kind
        (String.concat "|" Build.fuzz_kinds)
  in
  let* fz_n =
    field kvs "n" ~default:4 (int_in (sub "n") ~min:1 ~max:max_procs)
  in
  let* fz_j =
    field kvs "j" ~default:3 (int_in (sub "j") ~min:1 ~max:max_procs)
  in
  let* fz_seed = field kvs "seed" ~default:1 (any_int (sub "seed")) in
  let* fz_budget =
    field kvs "budget" ~default:500
      (int_in (sub "budget") ~min:1 ~max:max_budget)
  in
  let* fz_domains =
    field kvs "domains" ~default:1
      (int_in (sub "domains") ~min:1 ~max:max_domains)
  in
  Ok (Fuzz { fz_kind; fz_n; fz_j; fz_seed; fz_budget; fz_domains })

let expect_of_json path ~verb v =
  let* kvs = obj path v in
  let* () = reject_unknown path ~known:[ "outcome"; "kind"; "code" ] kvs in
  let sub name = path ^ "." ^ name in
  let* outcome = req path kvs "outcome" (str (sub "outcome")) in
  let no field =
    match List.assoc_opt field kvs with
    | None -> Ok ()
    | Some _ ->
      fail (sub field) "field %S only applies to outcome %S" field
        (if field = "kind" then "violation" else "error")
  in
  match outcome with
  | "safe" ->
    let* () = no "kind" in
    let* () = no "code" in
    if verb = "solve" then
      fail (sub "outcome")
        "outcome \"safe\" does not apply to solve (use \"solves\")"
    else Ok Safe
  | "solves" ->
    let* () = no "kind" in
    let* () = no "code" in
    if verb <> "solve" then
      fail (sub "outcome")
        "outcome \"solves\" only applies to solve (use \"safe\")"
    else Ok Solves
  | "violation" -> (
    let* () = no "code" in
    match List.assoc_opt "kind" kvs with
    | None -> Ok (Violation None)
    | Some v ->
      let* k = str (sub "kind") v in
      if verb <> "solve" then
        fail (sub "kind") "violation kinds only apply to solve"
      else if not (List.mem k violation_kinds) then
        fail (sub "kind") "unknown violation kind %S (%s)" k
          (String.concat "|" violation_kinds)
      else Ok (Violation (Some k)))
  | "error" ->
    let* () = no "kind" in
    let* code = req path kvs "code" (str (sub "code")) in
    if not (List.mem code err_codes) then
      fail (sub "code") "unknown error code %S (%s)" code
        (String.concat "|" err_codes)
    else Ok (Err code)
  | s ->
    fail (sub "outcome") "unknown outcome %S (%s)" s
      (String.concat "|"
         (if verb = "solve" then [ "solves"; "violation"; "error" ]
          else [ "safe"; "violation"; "error" ]))

(* When a spec omits [expect], derive it from the classification the
   registry predicts (the Theorem 10 vocabulary): a task solves iff the
   schedule's concurrency stays within the task's wait-free level, or the
   failure detector supplies the missing advice. Explicit [expect] always
   overrides — it can pin a violation kind or an error class the
   derivation cannot know. *)
let derive_expect path work =
  match work with
  | Modelcheck m -> (
    match Mcheck.Scenario.expected_safe m.mc_scenario with
    | Some true -> Ok Safe
    | Some false -> Ok (Violation None)
    | None ->
      fail path "cannot derive an expectation for scenario %S; declare it"
        m.mc_scenario)
  | Fuzz _ ->
    fail path "fuzz outcomes depend on seed and budget; declare \"expect\""
  | Solve s ->
    let conc =
      match s.sv_policy with
      | Build.Fair -> s.sv_n
      | Build.Kconc k | Build.Uniform k -> k
    in
    (* the task's maximal wait-free concurrency level, as classified by
       Tasklib.Registry.standard *)
    let level : Tasklib.Registry.expectation =
      match s.sv_task with
      | `Consensus -> Exact 1
      | `Ksa -> Exact s.sv_k
      | `Identity -> Exact s.sv_n
      | `Renaming ->
        let l = match s.sv_l with Some l -> l | None -> s.sv_j + s.sv_k - 1 in
        if l >= (2 * s.sv_j) - 1 then Exact s.sv_n
        else if l = s.sv_j then Exact 1
        else At_least (l - s.sv_j + 1)
      | `Wsb -> At_least 2
    in
    let fd_helps =
      (* only the agreement tasks have advice-backed algorithms in the
         battery; "trivial" is the no-advice baseline *)
      (match s.sv_task with `Consensus | `Ksa -> true | _ -> false)
      &&
      match s.sv_fd with
      | `Omega | `Vector | `Silent | `Perfect -> true
      | `Trivial -> false
    in
    let lower = Tasklib.Registry.expected_lower level in
    if conc <= lower || fd_helps then Ok Solves
    else (
      match level with
      | Exact _ -> Ok (Violation None)
      | At_least _ ->
        fail path
          "task is only classified as level >= %d; cannot derive an \
           expectation for concurrency %d — declare \"expect\""
          lower conc)

let of_json ?(path = "$") j =
  let* kvs = obj path j in
  let* () =
    reject_unknown path
      ~known:[ "v"; "name"; "verb"; "params"; "deadline_ms"; "expect" ]
      kvs
  in
  let sub name = path ^ "." ^ name in
  let* v = req path kvs "v" (any_int (sub "v")) in
  let* () =
    if v = version then Ok ()
    else fail (sub "v") "unsupported version %d (expected %d)" v version
  in
  let* sp_name = req path kvs "name" (str (sub "name")) in
  let* () =
    if name_ok sp_name then Ok ()
    else
      fail (sub "name")
        "invalid name %S (1-%d chars from [a-zA-Z0-9._/=,:+-])" sp_name
        max_name_len
  in
  let* verb = req path kvs "verb" (str (sub "verb")) in
  let* params = req path kvs "params" (obj (sub "params")) in
  let* sp_work =
    match verb with
    | "solve" -> solve_of_json (sub "params") params
    | "modelcheck" -> modelcheck_of_json (sub "params") params
    | "fuzz" -> fuzz_of_json (sub "params") params
    | s -> fail (sub "verb") "unknown verb %S (solve|modelcheck|fuzz)" s
  in
  let* sp_deadline_ms =
    field kvs "deadline_ms" ~default:None (fun v ->
        Result.map Option.some
          (int_in (sub "deadline_ms") ~min:1 ~max:max_deadline_ms v))
  in
  let* sp_expect =
    match List.assoc_opt "expect" kvs with
    | Some v -> expect_of_json (sub "expect") ~verb v
    | None -> derive_expect (sub "expect") sp_work
  in
  Ok { sp_name; sp_work; sp_deadline_ms; sp_expect }

let of_string s =
  let* j = J.of_string s in
  of_json j

let load path =
  match
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  with
  | exception Sys_error msg -> Error (path ^ ": " ^ msg)
  | contents -> (
    match of_string contents with
    | Ok t -> Ok t
    | Error msg -> Error (path ^ ": " ^ msg))

(* ------------------------------------------------- outcome classification *)

type outcome = Pass | Fail | Timeout | Error

let outcome_string = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Timeout -> "timeout"
  | Error -> "error"

(* What the result object says happened, in the same vocabulary as
   [expect]. [None] when the result does not have the verb's shape (an
   internal inconsistency, classified as [Error]). *)
let observed t result =
  match t.sp_work with
  | Solve _ -> (
    match J.member "ok" result with
    | Some (J.Bool true) -> Some Solves
    | Some (J.Bool false) ->
      (* the violation kind, re-derived in [Run.violation_of_report]'s
         checking order from the report's verdict fields *)
      let report_bool name =
        match Option.bind (J.member "report" result) (J.member name) with
        | Some (J.Bool b) -> Some b
        | _ -> None
      in
      Some
        (Violation
           (match
              ( report_bool "task_ok", report_bool "all_decided",
                report_bool "wait_free" )
            with
           | Some false, _, _ -> Some "task_violation"
           | Some true, Some false, _ -> Some "undecided"
           | Some true, Some true, Some false -> Some "not_wait_free"
           | _ -> None))
    | _ -> None)
  | Modelcheck _ -> (
    match J.member "verdict" result with
    | Some (J.Str "ok") -> Some Safe
    | Some (J.Str "counterexample") -> Some (Violation None)
    | _ -> None)
  | Fuzz _ -> (
    match J.member "found" result with
    | Some (J.Bool true) -> Some (Violation None)
    | Some (J.Bool false) -> Some Safe
    | _ -> None)

let classify t result =
  let expected = expect_string t.sp_expect in
  match result with
  | Stdlib.Error (code, msg) -> (
    match t.sp_expect with
    | Err c when c = code -> (Pass, "as expected: error:" ^ code)
    | _ when code = "deadline_exceeded" ->
      (Timeout, Printf.sprintf "expected %s, got deadline_exceeded" expected)
    | _ ->
      ( Error,
        Printf.sprintf "expected %s, got error:%s (%s)" expected code msg ))
  | Stdlib.Ok result -> (
    match observed t result with
    | None ->
      ( Error,
        Printf.sprintf "expected %s, got an unrecognized %s result" expected
          (verb t) )
    | Some obs ->
      let matches =
        match (t.sp_expect, obs) with
        | Safe, Safe | Solves, Solves -> true
        | Violation None, Violation _ -> true
        | Violation (Some k), Violation (Some k') -> k = k'
        | _ -> false
      in
      if matches then (Pass, "as expected: " ^ expect_string obs)
      else
        ( Fail,
          Printf.sprintf "expected %s, got %s" expected (expect_string obs)
        ))
