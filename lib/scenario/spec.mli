(** A scenario as data: one solve / modelcheck / fuzz workload, its
    environment and engine budget, and the outcome it is {e expected} to
    produce — the paper's solvability classification as an executable,
    diffable file format instead of compiled-in configurations.

    The JSON form (canonical field order; [to_string] re-prints a parsed
    canonical file byte-identically):

    {v
    { "v": 1,
      "name": "mc/safe-agreement/d8",
      "verb": "modelcheck",                 // "solve" | "modelcheck" | "fuzz"
      "params": { ... },                    // the verb's parameter object
      "deadline_ms": 2000,                  // optional per-scenario deadline
      "expect": { "outcome": "safe" } }
    v}

    [params] by verb (defaults applied at parse; optional fields omitted on
    print when at their default):
    - [solve]: [task], [fd], [policy], [n], [k], [j], [l]?, [crashes]?
      ([[i, t], ...] — crash S-process [i] at time [t]), [seed], [budget]
    - [modelcheck]: [scenario], [n_s], [depth], [reduce]
    - [fuzz]: [kind], [n], [j], [seed], [budget], [domains]

    [expect.outcome] by verb:
    - [solve]: ["solves"], ["violation"] (optionally with
      ["kind": "task_violation" | "undecided" | "not_wait_free"]), or
      ["error"] with ["code"]
    - [modelcheck]: ["safe"], ["violation"] (a counterexample exists), or
      ["error"]
    - [fuzz]: ["safe"] (no witness within budget), ["violation"] (witness
      found), or ["error"]

    [expect] may be omitted for [solve] and [modelcheck]: the expectation
    is then {e derived} from the registry's solvability classification —
    a task solves iff the policy's concurrency stays within its wait-free
    level ({!Tasklib.Registry.standard}'s table) or the failure detector
    supplies the missing advice; a modelcheck scenario expects the verdict
    it is built to exhibit ({!Mcheck.Scenario.expected_safe}). Derivation
    refuses the genuinely ambiguous cases (fuzz, [At_least]-classified
    tasks above their known level) rather than guessing; an explicit
    [expect] always overrides and can pin violation kinds or error
    classes.

    Parsing is strict and untrusted-input safe: {!of_string} reads through
    {!Obs.Json.of_string}'s guards, every numeric field is bounded, unknown
    fields are rejected (a typo must fail loudly, not silently fall back to
    a default), and every error carries the JSON path of the offending
    field plus the list of valid alternatives where one exists —
    [$.params.scenario: unknown scenario "typo" (safe-agreement|race-false)]
    is one-line diagnosable. *)

type expect =
  | Safe
  | Violation of string option  (** [Some kind] pins the violation kind *)
  | Solves
  | Err of string  (** a protocol error-code name, e.g. ["overloaded"] *)

type solve = {
  sv_task : Build.task_kind;
  sv_fd : Build.fd_kind;
  sv_policy : Build.policy;
  sv_n : int;
  sv_k : int;
  sv_j : int;
  sv_l : int option;
  sv_crashes : (int * int) list;
  sv_seed : int;
  sv_budget : int;
}

type modelcheck = {
  mc_scenario : string;  (** a {!Mcheck.Scenario} registry name *)
  mc_n_s : int;
  mc_depth : int;
  mc_reduce : bool;
}

type fuzz = {
  fz_kind : string;  (** a {!Build.fuzz_kinds} name *)
  fz_n : int;
  fz_j : int;
  fz_seed : int;
  fz_budget : int;
  fz_domains : int;
}

type work = Solve of solve | Modelcheck of modelcheck | Fuzz of fuzz

type t = {
  sp_name : string;
  sp_work : work;
  sp_deadline_ms : int option;
  sp_expect : expect;
}

val version : int
(** [1]. *)

val verb : t -> string
(** ["solve"] / ["modelcheck"] / ["fuzz"] — the service verb this scenario
    executes through. *)

val equal : t -> t -> bool

val expect_string : expect -> string
(** ["safe"], ["violation"], ["violation:KIND"], ["solves"],
    ["error:CODE"] — the stable display form. *)

val to_json : t -> Obs.Json.t
val to_string : t -> string
(** {!Obs.Json.to_string_pretty} of {!to_json} — the canonical bytes. *)

val params_json : t -> Obs.Json.t
(** The params object for this scenario's service verb — what a client
    sends with a [solve] / [modelcheck] / [fuzz] request, and what the
    server-side [scenario] verb re-dispatches internally. *)

val of_json : ?path:string -> Obs.Json.t -> (t, string) result
(** Full validation: names resolved against {!Build} and
    {!Mcheck.Scenario.names}, bounds checked, unknown fields rejected.
    [path] (default ["$"]) prefixes error locations. *)

val of_string : string -> (t, string) result
(** {!Obs.Json.of_string} under its untrusted-input guards, then
    {!of_json}. *)

val load : string -> (t, string) result
(** Read a scenario file; errors (including I/O) are prefixed with the
    file name. *)

(** {1 Outcome classification}

    Comparing what a scenario {e did} against what it {e expected} — the
    campaign runner's verdict per scenario. *)

type outcome =
  | Pass  (** the observed result matches [sp_expect] *)
  | Fail  (** the scenario executed, but its result contradicts the
              expectation *)
  | Timeout
      (** the deadline was exceeded and the expectation was not
          [error:deadline_exceeded] — reported distinctly so a slow
          scenario is not mistaken for a wrong one *)
  | Error
      (** an unexpected transport- or server-side error (including
          unexpected [overloaded] backpressure) *)

val outcome_string : outcome -> string

val classify : t -> (Obs.Json.t, string * string) result -> outcome * string
(** [classify t result] where [result] is the verb's result object on
    success or [(error-code-name, message)] on failure. The string is a
    one-line human detail ("expected X, got Y"). *)
