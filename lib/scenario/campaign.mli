(** Campaign files: a scenario matrix as data.

    A campaign is a list of groups; each group is one scenario template
    plus a set of axes, and expands to the cartesian product of the axis
    values — frenetic's one-line
    [verify description initial program final expected] form, lifted to a
    whole task × algorithm × environment matrix:

    {v
    { "v": 1,
      "name": "conformance",
      "groups": [
        { "name": "mc/safe",
          "template": { "verb": "modelcheck",
                        "params": { "scenario": "safe-agreement" },
                        "expect": { "outcome": "safe" } },
          "axes": [
            { "field": "params.depth", "values": [4, 6, 8] },
            { "field": "params.n_s",   "values": [1, 2] }
          ] } ] }
    v}

    An axis [field] is a dot-separated JSON path set into the template
    (missing intermediate objects are created); a single-valued axis is an
    override. Each expanded scenario gets the generated name
    [<group>:<leaf>=<value>,...] (the group name alone when there are no
    axes), a ["v"] field, and is then validated through {!Spec.of_json} —
    so a campaign can only ever expand into well-formed scenarios, and a
    bad cell fails with its generated name and exact JSON path. *)

type axis = { ax_field : string; ax_values : Obs.Json.t list }
type group = { g_name : string; g_template : Obs.Json.t; g_axes : axis list }
type t = { c_name : string; c_groups : group list }

val max_scenarios : int
(** [10_000] — an expansion larger than this is rejected, bounding the
    work a hostile campaign file can request. *)

val of_json : ?path:string -> Obs.Json.t -> (t, string) result
val of_string : string -> (t, string) result
val load : string -> (t, string) result
(** As {!Spec.load}: file errors are prefixed with the file name. *)

val expand : t -> (Spec.t list, string) result
(** The concrete scenarios, group by group, axes varying rightmost-fastest.
    Fails on a cell that does not validate, on a duplicate generated name,
    and on expansions beyond {!max_scenarios}. *)

val group_of : Spec.t -> string
(** The group a generated scenario came from: its name up to the first
    [':'] (the whole name for ungenerated scenarios). *)
