(** The one place task / algorithm / failure-detector / policy / fuzz-target
    names resolve to constructors.

    [bin/wfa] and [Svc.Jobs] used to carry private copies of these tables;
    a name accepted by the CLI but not the server (or vice versa) was a
    latent drift bug, and scenario files make the names part of a committed
    data format — so the tables live here, and every error message lists
    the valid names from the same list it validated against. *)

type task_kind = [ `Consensus | `Ksa | `Renaming | `Wsb | `Identity ]
type fd_kind = [ `Omega | `Vector | `Silent | `Trivial | `Perfect ]

type policy = Fair | Kconc of int | Uniform of int
(** The schedule policies a scenario can name: ["fair"], ["kconc:K"],
    ["uniform:K"]. *)

val task_assoc : (string * task_kind) list
(** Name table in display order — also the CLI enum. *)

val fd_assoc : (string * fd_kind) list
val task_names : string list
val fd_names : string list

val fuzz_kinds : string list
(** Adversary target kinds: ["strong-renaming"], ["consensus-reduction"]. *)

val task_kind_of_string : string -> (task_kind, string) result
(** [Error] names the unknown input and lists the valid names, as do all
    [_of_string] resolvers below. *)

val fd_kind_of_string : string -> (fd_kind, string) result
val task_kind_to_string : task_kind -> string
val fd_kind_to_string : fd_kind -> string
val policy_of_string : string -> (policy, string) result
val policy_to_string : policy -> string
val policy_factory : policy -> Efd.Run.policy_factory

val task :
  task_kind -> n:int -> k:int -> j:int -> l:int option -> Tasklib.Task.t
(** For [`Renaming], [l] defaults to [j + k - 1]. *)

val algo : task_kind -> Tasklib.Task.t -> k:int -> Efd.Algorithm.t
val fd : fd_kind -> k:int -> Fdlib.Fd.t

val fuzz_target :
  string -> n:int -> j:int -> (Efd.Adversary.target, string) result
(** Resolve a fuzz-target kind; [Error] lists {!fuzz_kinds}. *)
