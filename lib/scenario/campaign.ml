module J = Obs.Json

type axis = { ax_field : string; ax_values : J.t list }
type group = { g_name : string; g_template : J.t; g_axes : axis list }
type t = { c_name : string; c_groups : group list }

let max_scenarios = 10_000
let fail path fmt = Printf.ksprintf (fun m -> Error (path ^ ": " ^ m)) fmt
let ( let* ) = Result.bind

let obj path = function
  | J.Obj kvs -> Ok kvs
  | _ -> fail path "expected an object"

let str path = function
  | J.Str s -> Ok s
  | _ -> fail path "expected a string"

let reject_unknown path ~known kvs =
  match List.find_opt (fun (k, _) -> not (List.mem k known)) kvs with
  | None -> Ok ()
  | Some (k, _) ->
    fail path "unknown field %S (%s)" k (String.concat "|" known)

let req path kvs name read =
  match List.assoc_opt name kvs with
  | None -> fail path "missing field %S" name
  | Some v -> read v

let rec map_result f i = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f i x in
    let* ys = map_result f (i + 1) rest in
    Ok (y :: ys)

(* A field path names only object keys ([params.depth]); each segment must
   look like a key, so a typo'd path fails at parse, not at expansion. *)
let field_path path s =
  let segs = String.split_on_char '.' s in
  if
    segs <> []
    && List.for_all
         (fun seg ->
           seg <> ""
           && String.for_all
                (function
                  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
                  | _ -> false)
                seg)
         segs
  then Ok segs
  else fail path "invalid field path %S (dot-separated keys)" s

let axis_of_json path v =
  let* kvs = obj path v in
  let* () = reject_unknown path ~known:[ "field"; "values" ] kvs in
  let* ax_field = req path kvs "field" (str (path ^ ".field")) in
  let* _ = field_path (path ^ ".field") ax_field in
  let* ax_values =
    req path kvs "values" (function
      | J.List [] -> fail (path ^ ".values") "expected a non-empty list"
      | J.List vs -> Ok vs
      | _ -> fail (path ^ ".values") "expected a non-empty list")
  in
  Ok { ax_field; ax_values }

let group_of_json path v =
  let* kvs = obj path v in
  let* () = reject_unknown path ~known:[ "name"; "template"; "axes" ] kvs in
  let* g_name = req path kvs "name" (str (path ^ ".name")) in
  let* g_template = req path kvs "template" Result.ok in
  let* g_axes =
    match List.assoc_opt "axes" kvs with
    | None -> Ok []
    | Some (J.List axes) ->
      map_result
        (fun i v -> axis_of_json (Printf.sprintf "%s.axes[%d]" path i) v)
        0 axes
    | Some _ -> fail (path ^ ".axes") "expected a list"
  in
  Ok { g_name; g_template; g_axes }

let of_json ?(path = "$") j =
  let* kvs = obj path j in
  let* () = reject_unknown path ~known:[ "v"; "name"; "groups" ] kvs in
  let* v =
    req path kvs "v" (function
      | J.Int n -> Ok n
      | _ -> fail (path ^ ".v") "expected an integer")
  in
  let* () =
    if v = Spec.version then Ok ()
    else fail (path ^ ".v") "unsupported version %d (expected %d)" v Spec.version
  in
  let* c_name = req path kvs "name" (str (path ^ ".name")) in
  let* c_groups =
    req path kvs "groups" (function
      | J.List gs ->
        map_result
          (fun i v -> group_of_json (Printf.sprintf "%s.groups[%d]" path i) v)
          0 gs
      | _ -> fail (path ^ ".groups") "expected a list")
  in
  Ok { c_name; c_groups }

let of_string s =
  let* j = J.of_string s in
  of_json j

let load path =
  match
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  with
  | exception Sys_error msg -> Error (path ^ ": " ^ msg)
  | contents -> (
    match of_string contents with
    | Ok t -> Ok t
    | Error msg -> Error (path ^ ": " ^ msg))

(* ----------------------------------------------------------- expansion *)

let rec set_path j segs v =
  match segs with
  | [] -> Ok v
  | seg :: rest -> (
    match j with
    | J.Obj kvs ->
      let cur = Option.value (List.assoc_opt seg kvs) ~default:(J.Obj []) in
      let* v' = set_path cur rest v in
      if List.mem_assoc seg kvs then
        Ok (J.Obj (List.map (fun (k, x) -> if k = seg then (k, v') else (k, x)) kvs))
      else Ok (J.Obj (kvs @ [ (seg, v') ]))
    | _ -> Error (Printf.sprintf "field path descends into a non-object at %S" seg))

let value_label = function
  | J.Int n -> string_of_int n
  | J.Str s -> s
  | J.Bool b -> string_of_bool b
  | J.Float f -> Printf.sprintf "%g" f
  | v -> J.to_string v

let leaf field =
  match List.rev (String.split_on_char '.' field) with
  | last :: _ -> last
  | [] -> field

(* All assignments of one group's axes, rightmost varying fastest, each as
   (label parts, (path segments, value) list). *)
let assignments axes =
  List.fold_left
    (fun acc ax ->
      let segs = String.split_on_char '.' ax.ax_field in
      List.concat_map
        (fun (labels, sets) ->
          List.map
            (fun v ->
              ( labels @ [ Printf.sprintf "%s=%s" (leaf ax.ax_field) (value_label v) ],
                sets @ [ (segs, v) ] ))
            ax.ax_values)
        acc)
    [ ([], []) ]
    axes

let expand_group ~path g =
  let cells = assignments g.g_axes in
  map_result
    (fun _i (labels, sets) ->
      (* ':' separates the group name from the axis assignments so that
         group names may themselves contain '/' without confusing
         [group_of] *)
      let name =
        if labels = [] then g.g_name
        else g.g_name ^ ":" ^ String.concat "," labels
      in
      let* cell =
        List.fold_left
          (fun acc (segs, v) ->
            let* j = acc in
            match set_path j segs v with
            | Ok j -> Ok j
            | Error m -> fail (Printf.sprintf "%s (cell %s)" path name) "%s" m)
          (Ok g.g_template) sets
      in
      let* cell = set_path cell [ "v" ] (J.Int Spec.version) in
      let* cell = set_path cell [ "name" ] (J.Str name) in
      match Spec.of_json ~path:(Printf.sprintf "%s (cell %s)" path name) cell with
      | Ok sp -> Ok sp
      | Error m -> Error m)
    0 cells

let expand t =
  let total =
    List.fold_left
      (fun acc g ->
        acc
        + List.fold_left (fun n ax -> n * List.length ax.ax_values) 1 g.g_axes)
      0 t.c_groups
  in
  if total > max_scenarios then
    fail "$" "campaign expands to %d scenarios (max %d)" total max_scenarios
  else
    let* groups =
      map_result
        (fun i g -> expand_group ~path:(Printf.sprintf "$.groups[%d]" i) g)
        0 t.c_groups
    in
    let specs = List.concat groups in
    let seen = Hashtbl.create 64 in
    let* () =
      List.fold_left
        (fun acc sp ->
          let* () = acc in
          if Hashtbl.mem seen sp.Spec.sp_name then
            fail "$" "duplicate scenario name %S" sp.Spec.sp_name
          else begin
            Hashtbl.add seen sp.Spec.sp_name ();
            Ok ()
          end)
        (Ok ()) specs
    in
    Ok specs

let group_of sp =
  match String.index_opt sp.Spec.sp_name ':' with
  | None -> sp.Spec.sp_name
  | Some i -> String.sub sp.Spec.sp_name 0 i
