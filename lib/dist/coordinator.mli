(** Distributed exhaustive model checking: frontier-split search fanned
    out over a fleet of job servers (DESIGN.md §6).

    The coordinator runs {!Simkit.Exhaustive.split} locally — a shallow
    exploration to [split_depth] that credits everything it prunes above
    the frontier — and ships each emitted subtree to a worker as a
    [subtree] request ({!Svc.Protocol}), pipelined over one connection
    per worker. Results are merged with the commutative, associative
    {!Simkit.Exhaustive.merge_verdicts}/[merge_stats], so the distributed
    verdict, schedule count and (lex-least) counterexample are {e exactly}
    those of the single-process run, whatever the arrival order.

    Fault handling, all first-result-wins by job id:
    - a worker connection that fails (connect, send or receive) requeues
      the jobs it still owed and retires; the other workers absorb them;
    - a server-side error reply ([deadline_exceeded], [overloaded], ...)
      requeues that one job;
    - an idle worker with an empty queue {e steals} the least-covered
      in-flight job of another worker — straggler insurance, bounded by
      never stealing the same job twice on the same worker.

    The run fails only when every worker is dead and jobs remain. *)

type worker_report = {
  wk_addr : string;  (** the address as given ({!Svc.Addr} textual form) *)
  wk_jobs : int;  (** results accepted from this worker (duplicates lost) *)
  wk_dead : bool;  (** its connection failed at some point *)
}

type report = {
  r_verdict : Simkit.Exhaustive.verdict;
  r_stats : Simkit.Exhaustive.stats;
      (** splitter stats + accepted per-job stats, {!Simkit.Exhaustive.merge_stats}-summed *)
  r_jobs : int;  (** subtree jobs the frontier split into *)
  r_frontier_pruned : int;
      (** schedules credited above the frontier by the splitter itself *)
  r_redispatched : int;  (** re-issues: requeues after failures plus steals *)
  r_workers : worker_report list;
}

val default_split_depth : depth:int -> int
(** [max 1 (min 3 (depth - 1))] — deep enough to out-number a small fleet
    in jobs, shallow enough that the local split is negligible work. *)

val run :
  ?sink:Obs.Sink.t ->
  ?split_depth:int ->
  ?reduce:bool ->
  ?retries:int ->
  ?backoff_ms:int ->
  ?deadline_ms:int ->
  ?window:int ->
  ?checkpoint:Ckpt.Store.t * float ->
  ?resume:Ckpt.Record.t ->
  scenario:Mcheck.Scenario.t ->
  depth:int ->
  workers:string list ->
  unit ->
  (report, string) result
(** Check [scenario] to [depth] over [workers] (each an {!Svc.Addr} in
    textual form). [reduce] enables the scenario's sleep+symmetry
    reduction on splitter and workers alike. [retries]/[backoff_ms]
    (defaults 5/50) are per-worker {!Svc.Client.connect} patience;
    [deadline_ms] rides on every subtree request; [window] (default 4)
    is the per-connection pipelining depth. [sink] receives the [dist.*]
    events ({!Obs.Event.Name}).

    [checkpoint] [(store, interval_s)] journals job completions: a
    {!Ckpt.Record} generation is written before the first dispatch, then
    after accepted results at most every [interval_s] seconds, then at
    completion — all under the coordinator lock, so every generation is a
    consistent snapshot. Workers stay stateless. [resume] seeds the result
    table from a previously journaled record (loaded via
    {!Ckpt.Local.load_record}): only unfinished subtrees are redispatched,
    against the same fleet or a different one. [Error] when the record's
    config or job total does not match this run's.

    [Error] otherwise covers configuration mistakes (no workers, bad
    address, bad [split_depth]) and total fleet failure with jobs
    unresolved; a counterexample is not an error but a {!report} whose
    verdict is [Counterexample]. *)
