open Simkit
module J = Obs.Json
module P = Svc.Protocol

type worker_report = { wk_addr : string; wk_jobs : int; wk_dead : bool }

type report = {
  r_verdict : Exhaustive.verdict;
  r_stats : Exhaustive.stats;
  r_jobs : int;
  r_frontier_pruned : int;
  r_redispatched : int;
  r_workers : worker_report list;
}

type job_result = { jr_verdict : Exhaustive.verdict; jr_stats : Exhaustive.stats }

(* All coordinator state one mutex guards. The sink hides under the same
   mutex — the stock sinks are not thread-safe, and every emission here
   happens on some worker thread. *)
type shared = {
  mutex : Mutex.t;
  cond : Condition.t;
  sink : Obs.Sink.t option;
  pending : Exhaustive.subtree Queue.t;
  jobs : (int, Exhaustive.subtree) Hashtbl.t;
  results : (int, job_result) Hashtbl.t;
  inflight : (int, int) Hashtbl.t;  (* active dispatch count per job id *)
  total : int;
  window : int;
  mutable redispatched : int;
}

let emit st name fields =
  match st.sink with
  | None -> ()
  | Some s -> Obs.Sink.emit s (Obs.Event.make name fields)

let locked st f =
  Mutex.lock st.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.mutex) f

let done_ st = Hashtbl.length st.results = st.total
let unfinished st id = not (Hashtbl.mem st.results id)
let inflight_of st id = Option.value ~default:0 (Hashtbl.find_opt st.inflight id)

(* Re-issue a job whose dispatch came to nothing (worker died, server-side
   error). Only when no other dispatch is still running it — a surviving
   duplicate may yet answer. *)
let requeue st ~reason sj =
  let id = sj.Exhaustive.sj_id in
  if unfinished st id && inflight_of st id = 0 then begin
    Queue.push sj st.pending;
    st.redispatched <- st.redispatched + 1;
    emit st Obs.Event.Name.dist_redispatch
      [ ("job", J.Int id); ("reason", J.Str reason) ];
    Condition.broadcast st.cond
  end

let drop_inflight st id =
  match inflight_of st id with
  | 0 -> ()
  | 1 -> Hashtbl.remove st.inflight id
  | n -> Hashtbl.replace st.inflight id (n - 1)

(* An idle worker with an empty pending queue duplicates the least-covered
   unfinished job of another worker — straggler insurance; first result
   wins. [attempted] bounds it: a worker never steals the same job twice,
   so total dispatches stay <= jobs * workers. *)
let steal_candidate st attempted =
  Hashtbl.fold
    (fun id sj best ->
      if unfinished st id && not (Hashtbl.mem attempted id) then
        match best with
        | Some (_, n) when n <= inflight_of st id -> best
        | _ -> Some (sj, inflight_of st id)
      else best)
    st.jobs None

(* Called with the lock held; returns the next pipelined batch, [] when the
   run is complete (or nothing is left that this worker may take). *)
let rec take_batch st attempted acc =
  if done_ st then List.rev acc
  else if List.length acc >= st.window then List.rev acc
  else
    match Queue.take_opt st.pending with
    | Some sj when not (unfinished st sj.Exhaustive.sj_id) ->
      take_batch st attempted acc (* stale requeue; already answered *)
    | Some sj -> take_batch st attempted (sj :: acc)
    | None -> (
      if acc <> [] then List.rev acc
      else
        match steal_candidate st attempted with
        | Some (sj, _) ->
          st.redispatched <- st.redispatched + 1;
          emit st Obs.Event.Name.dist_redispatch
            [ ("job", J.Int sj.Exhaustive.sj_id); ("reason", J.Str "steal") ];
          [ sj ]
        | None ->
          (* everything unfinished is in flight and already tried here:
             wait for a result, a requeue, or completion *)
          Condition.wait st.cond st.mutex;
          take_batch st attempted acc)

let job_params sc ~depth ~reduce sj =
  J.Obj
    [
      ("scenario", J.Str sc.Mcheck.Scenario.sc_name);
      ("n_s", J.Int sc.Mcheck.Scenario.sc_n_s);
      ("depth", J.Int depth);
      ("reduce", J.Bool reduce);
      ("job", Exhaustive.subtree_json sj);
    ]

let job_result_of_json j =
  let ( let* ) = Result.bind in
  let* stats =
    match J.member "stats" j with
    | Some s -> Exhaustive.stats_of_json s
    | None -> Error "missing field \"stats\""
  in
  let* verdict =
    match J.member "verdict" j with
    | Some (J.Str "ok") -> (
      match J.member "schedules" j with
      | Some v -> (
        match J.to_int_opt v with
        | Some n -> Ok (Exhaustive.Ok n)
        | None -> Error "field \"schedules\" is not an integer")
      | None -> Error "missing field \"schedules\"")
    | Some (J.Str "counterexample") -> (
      match J.member "cex" j with
      | Some c -> (
        match Exhaustive.schedule_of_json c with
        | Ok cex -> Ok (Exhaustive.Counterexample cex)
        | Error _ as e -> e)
      | None -> Error "missing field \"cex\"")
    | _ -> Error "missing or unknown field \"verdict\""
  in
  Ok { jr_verdict = verdict; jr_stats = stats }

(* One worker thread: connect, then loop pipelined batches until the run
   completes or the connection dies. A dead connection requeues whatever
   it still owed and retires the thread — the jobs live on elsewhere. *)
let worker_loop st ~sc ~depth ~reduce ~deadline_ms ~retries ~backoff_ms
    ~accepted ~dead ~journal w addr =
  let attempted = Hashtbl.create 64 in
  let wname = Printf.sprintf "%d:%s" w addr in
  let die client outstanding why =
    (match client with Some c -> Svc.Client.close c | None -> ());
    locked st (fun () ->
        dead.(w) <- true;
        let requeued = Hashtbl.length outstanding in
        emit st Obs.Event.Name.dist_worker_dead
          [
            ("worker", J.Str wname);
            ("error", J.Str why);
            ("requeued", J.Int requeued);
          ];
        Hashtbl.iter
          (fun _ sj ->
            drop_inflight st sj.Exhaustive.sj_id;
            requeue st ~reason:"worker_dead" sj)
          outstanding;
        Condition.broadcast st.cond)
  in
  (* workers get the binary codec when they speak it — subtree results are
     bulky and the hello downgrades transparently against an older fleet *)
  match
    Svc.Client.connect ~retries ~backoff_ms ~codec:Svc.Protocol.Codec.Binary
      addr
  with
  | exception e ->
    die None (Hashtbl.create 0)
      (match e with
      | Unix.Unix_error (err, _, _) -> Unix.error_message err
      | e -> Printexc.to_string e)
  | client -> (
    let outstanding = Hashtbl.create 8 in
    let settle ~rid result =
      match Hashtbl.find_opt outstanding rid with
      | None -> Error (Printf.sprintf "response for unknown request id %d" rid)
      | Some sj ->
        Hashtbl.remove outstanding rid;
        locked st (fun () ->
            let id = sj.Exhaustive.sj_id in
            drop_inflight st id;
            (match result with
            | Ok jr when unfinished st id ->
              Hashtbl.replace st.results id jr;
              accepted.(w) <- accepted.(w) + 1;
              emit st Obs.Event.Name.dist_result
                [
                  ("job", J.Int id);
                  ("worker", J.Str wname);
                  ( "verdict",
                    J.Str
                      (match jr.jr_verdict with
                      | Exhaustive.Ok _ -> "ok"
                      | Exhaustive.Counterexample _ -> "counterexample") );
                ];
              (* journal under the same lock that guards [results]: the
                 generation written is a consistent snapshot *)
              journal st ~force:false
            | Ok _ -> () (* a duplicate lost the race; drop it *)
            | Error reason -> requeue st ~reason sj);
            Condition.broadcast st.cond);
        Ok ()
    in
    let rec serve () =
      let batch =
        locked st (fun () ->
            let batch = take_batch st attempted [] in
            List.iter
              (fun sj ->
                let id = sj.Exhaustive.sj_id in
                Hashtbl.replace st.inflight id (inflight_of st id + 1);
                Hashtbl.replace attempted id ();
                emit st Obs.Event.Name.dist_dispatch
                  [ ("job", J.Int id); ("worker", J.Str wname) ])
              batch;
            batch)
      in
      if batch = [] then Svc.Client.close client
      else
        let rec send_all = function
          | [] -> true
          | sj :: rest -> (
            match
              Svc.Client.send ?deadline_ms
                ~params:(job_params sc ~depth ~reduce sj)
                client P.Subtree
            with
            | Ok rid ->
              Hashtbl.replace outstanding rid sj;
              send_all rest
            | Error _ ->
              (* the write failed, so neither this job nor the rest of the
                 batch was ever on the wire — hand them all back *)
              locked st (fun () ->
                  List.iter
                    (fun sj ->
                      drop_inflight st sj.Exhaustive.sj_id;
                      requeue st ~reason:"send_failed" sj)
                    (sj :: rest);
                  Condition.broadcast st.cond);
              false)
        in
        if not (send_all batch) then
          die (Some client) outstanding "send failed"
        else
          let rec drain () =
            if Hashtbl.length outstanding = 0 then serve ()
            else
              match Svc.Client.recv client with
              | Error e -> die (Some client) outstanding (Svc.Client.error_string e)
              | Ok (rid, payload) -> (
                let result =
                  match payload with
                  | Ok json -> (
                    match job_result_of_json json with
                    | Ok jr -> Ok jr
                    | Error msg -> Error ("bad result: " ^ msg))
                  | Error (Svc.Client.Server (code, _)) ->
                    Error (P.err_code_string code)
                  | Error (Svc.Client.Transport msg) -> Error msg
                in
                match settle ~rid result with
                | Ok () -> drain ()
                | Error why -> die (Some client) outstanding why)
          in
          drain ()
    in
    try serve ()
    with e -> die (Some client) outstanding (Printexc.to_string e))

let default_split_depth ~depth = max 1 (min 3 (depth - 1))

(* The journaling closure: called with [st.mutex] held after every accepted
   result ([force:false] — interval-gated) and once at completion
   ([force:true]). A failed save is reported as an event and otherwise
   ignored: a disk hiccup must not kill a fleet mid-search — the run
   degrades to the previous good generation. *)
let make_journal ~checkpoint ~config ~total =
  match checkpoint with
  | None -> fun _st ~force:_ -> ()
  | Some (store, interval_s) ->
    let interval_s = Float.max 0.05 interval_s in
    let last = ref (Obs.Clock.now_ns ()) in
    fun st ~force ->
      if force || Obs.Clock.elapsed_s ~since:!last >= interval_s then begin
        last := Obs.Clock.now_ns ();
        let done_ =
          Hashtbl.fold
            (fun id jr acc ->
              {
                Ckpt.Record.dj_id = id;
                dj_verdict = jr.jr_verdict;
                dj_stats = jr.jr_stats;
              }
              :: acc)
            st.results []
        in
        let record = Ckpt.Record.make ~config ~total ~done_ in
        match Ckpt.Store.save store (Ckpt.Record.json record) with
        | Ok _ -> ()
        | Error msg -> emit st "ckpt.save.error" [ ("error", J.Str msg) ]
      end

let run ?sink ?split_depth ?(reduce = false) ?(retries = 5) ?(backoff_ms = 50)
    ?deadline_ms ?(window = 4) ?checkpoint ?resume ~scenario:sc ~depth
    ~workers () =
  let pids = sc.Mcheck.Scenario.sc_pids in
  let split_depth =
    match split_depth with Some d -> d | None -> default_split_depth ~depth
  in
  let config =
    {
      Ckpt.Record.cf_scenario = sc.Mcheck.Scenario.sc_name;
      cf_n_s = sc.Mcheck.Scenario.sc_n_s;
      cf_depth = depth;
      cf_reduce = reduce;
      cf_split_depth = split_depth;
    }
  in
  let resume_mismatch =
    match resume with
    | Some r when r.Ckpt.Record.ck_config <> config ->
      Some
        "checkpoint config (scenario/n_s/depth/reduce/split_depth) does not \
         match this run"
    | _ -> None
  in
  if workers = [] then Error "no workers given"
  else if depth < 2 then Error "distributed runs need depth >= 2"
  else if not (split_depth >= 1 && split_depth < depth) then
    Error
      (Printf.sprintf "split depth %d not in [1, %d)" split_depth depth)
  else if resume_mismatch <> None then Error (Option.get resume_mismatch)
  else
    match
      List.filter_map
        (fun a ->
          match Svc.Addr.of_string a with
          | Ok _ -> None
          | Error msg -> Some (Printf.sprintf "worker %S: %s" a msg))
        workers
    with
    | msg :: _ -> Error msg
    | [] -> (
      let red = Mcheck.Scenario.reduction sc ~reduce in
      let fr =
        Exhaustive.split ?reduce:red ~build:sc.Mcheck.Scenario.sc_build ~pids
          ~depth ~split_depth ~prop:sc.Mcheck.Scenario.sc_prop ()
      in
      let total = List.length fr.Exhaustive.fr_jobs in
      match resume with
      | Some r when r.Ckpt.Record.ck_total <> total ->
        Error
          (Printf.sprintf
             "checkpoint records %d jobs but the frontier splits into %d \
              (record from a different engine?)"
             r.Ckpt.Record.ck_total total)
      | _ ->
      let st =
        {
          mutex = Mutex.create ();
          cond = Condition.create ();
          sink;
          pending = Queue.create ();
          jobs = Hashtbl.create (List.length fr.Exhaustive.fr_jobs);
          results = Hashtbl.create (List.length fr.Exhaustive.fr_jobs);
          inflight = Hashtbl.create 16;
          total;
          window = max 1 window;
          redispatched = 0;
        }
      in
      (* prefill journaled completions: those ids never reach [pending], so
         a restarted coordinator redispatches only unfinished subtrees *)
      (match resume with
      | None -> ()
      | Some r ->
        List.iter
          (fun d ->
            Hashtbl.replace st.results d.Ckpt.Record.dj_id
              {
                jr_verdict = d.Ckpt.Record.dj_verdict;
                jr_stats = d.Ckpt.Record.dj_stats;
              })
          r.Ckpt.Record.ck_done);
      List.iter
        (fun sj ->
          Hashtbl.replace st.jobs sj.Exhaustive.sj_id sj;
          if unfinished st sj.Exhaustive.sj_id then Queue.push sj st.pending)
        fr.Exhaustive.fr_jobs;
      emit st Obs.Event.Name.dist_split
        [
          ("jobs", J.Int st.total);
          ("split_depth", J.Int split_depth);
          ("pruned", J.Int fr.Exhaustive.fr_pruned);
        ];
      let journal = make_journal ~checkpoint ~config ~total in
      (* a generation exists before any dispatch: a coordinator killed in
         its first interval still leaves a resumable store *)
      locked st (fun () -> journal st ~force:true);
      let n = List.length workers in
      let accepted = Array.make n 0 and dead = Array.make n false in
      let threads =
        List.mapi
          (fun w addr ->
            Thread.create
              (fun () ->
                worker_loop st ~sc ~depth ~reduce ~deadline_ms ~retries
                  ~backoff_ms ~accepted ~dead ~journal w addr)
              ())
          workers
      in
      List.iter Thread.join threads;
      locked st (fun () -> journal st ~force:true);
      if not (done_ st) then
        Error
          (Printf.sprintf
             "%d of %d subtree jobs unresolved: every worker failed"
             (st.total - Hashtbl.length st.results)
             st.total)
      else begin
        let ids =
          List.sort compare
            (Hashtbl.fold (fun id _ acc -> id :: acc) st.results [])
        in
        let verdict =
          List.fold_left
            (fun acc id ->
              Exhaustive.merge_verdicts ~pids acc
                (Hashtbl.find st.results id).jr_verdict)
            (Exhaustive.Ok fr.Exhaustive.fr_pruned)
            ids
        in
        let verdict =
          match fr.Exhaustive.fr_cex with
          | None -> verdict
          | Some cex ->
            Exhaustive.merge_verdicts ~pids verdict
              (Exhaustive.Counterexample cex)
        in
        let stats =
          List.fold_left
            (fun acc id ->
              Exhaustive.merge_stats acc (Hashtbl.find st.results id).jr_stats)
            fr.Exhaustive.fr_stats ids
        in
        let workers_r =
          List.mapi
            (fun w addr ->
              { wk_addr = addr; wk_jobs = accepted.(w); wk_dead = dead.(w) })
            workers
        in
        emit st Obs.Event.Name.dist_done
          [
            ("jobs", J.Int st.total);
            ("redispatched", J.Int st.redispatched);
            ("workers", J.Int n);
            ("dead", J.Int (List.length (List.filter (fun r -> r.wk_dead) workers_r)));
          ];
        Ok
          {
            r_verdict = verdict;
            r_stats = stats;
            r_jobs = st.total;
            r_frontier_pruned = fr.Exhaustive.fr_pruned;
            r_redispatched = st.redispatched;
            r_workers = workers_r;
          }
      end)
