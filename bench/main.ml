(* The experiment harness: regenerates every table/claim of the paper
   (experiments E1..E12 of DESIGN.md) and runs Bechamel micro-benchmarks.

   Usage:
     dune exec bench/main.exe            -- all experiment tables + benches
     dune exec bench/main.exe -- e5 e12  -- selected experiments only
     dune exec bench/main.exe -- micro   -- micro-benchmarks only          *)

open Simkit
open Tasklib
open Efd

let seeds n = List.init n (fun i -> i + 1)
let line () = Fmt.pr "  %s@." (String.make 72 '-')

(* ------------------------------------------------- machine-readable mode *)

(* With --record, every experiment additionally serializes its table through
   Obs.Bench_record into BENCH_<id>.json (schema "wfa.bench", versioned; see
   EXPERIMENTS.md). The recorder is threaded through [header] and the driver
   loop so each experiment body only has to call [Rec.row]. *)

let recording = ref false

module Rec = struct
  let current : Obs.Bench_record.t option ref = ref None

  let start id ~title =
    if !recording then current := Some (Obs.Bench_record.create ~id ~title ())

  let meta k v =
    match !current with None -> () | Some r -> Obs.Bench_record.meta r k v

  let row ?labels metrics =
    match !current with
    | None -> ()
    | Some r -> Obs.Bench_record.row r ?labels metrics

  let finish () =
    match !current with
    | None -> ()
    | Some r ->
      let path = Obs.Bench_record.write r in
      Fmt.pr "  [recorded %d rows -> %s]@." (Obs.Bench_record.rows r) path;
      current := None
end

let jint i = Obs.Json.Int i
let jfloat f = Obs.Json.Float f
let jbool b = Obs.Json.Bool b

let batch_metrics (pass, failed, total, mean) =
  [
    ("pass", jint pass);
    ("failed", jint failed);
    ("total", jint total);
    ("mean_steps", jfloat mean);
  ]

let header id title =
  Fmt.pr "@.=== %s: %s ===@.@." (String.uppercase_ascii id) title;
  Rec.start id ~title

(* mean steps (float, over the passing runs) of a sweep-like loop; the failed
   count rides along so tables can surface it instead of silently averaging
   over a subset *)
let float_mean steps = function
  | [] -> 0.
  | passed ->
    float_of_int (List.fold_left (fun acc r -> acc + steps r) 0 passed)
    /. float_of_int (List.length passed)

let run_batch ?budget ?policy ~task ~algo ~fd ~env ~n_seeds () =
  let results =
    List.map
      (fun seed ->
        let rng = Random.State.make [| seed; 0xbe |] in
        let pattern = env.Failure.sample rng ~horizon:2_000 in
        let input = Task.sample_input task rng in
        Run.execute ?budget ?policy ~task ~algo ~fd ~pattern ~input ~seed ())
      (seeds n_seeds)
  in
  let passed = List.filter Run.ok results in
  let failed = List.length results - List.length passed in
  (List.length passed, failed, List.length results,
   float_mean (fun r -> r.Run.r_steps) passed)

(* "12/12   314.2" or "10/12   298.5 (2 failed)" *)
let pp_batch ppf (pass, failed, total, mean) =
  Fmt.pf ppf "%4d/%-3d %12.1f%s" pass total mean
    (if failed = 0 then "" else Fmt.str " (%d failed)" failed)

(* ------------------------------------------------------------------ E1 *)

let e1 () =
  header "e1" "Proposition 1 - every task is 1-concurrently solvable";
  Fmt.pr "  %-36s %8s %12s@." "task" "pass" "mean-steps";
  line ();
  List.iter
    (fun e ->
      let task = e.Registry.entry_task in
      let batch =
        run_batch
          ~policy:(Run.k_concurrent_policy 1)
          ~task
          ~algo:(One_concurrent.make task)
          ~fd:Fdlib.Fd.trivial
          ~env:(Failure.wait_free_env 4)
          ~n_seeds:12 ()
      in
      Rec.row ~labels:[ ("task", task.Task.task_name) ] (batch_metrics batch);
      Fmt.pr "  %-36s %a@." task.Task.task_name pp_batch batch)
    (Registry.standard ~n:4)

(* ------------------------------------------------------------------ E2 *)

let e2 () =
  header "e2"
    "Proposition 2 - trivial-FD solvability = wait-free solvability (n >= m)";
  let rows =
    [
      ("identity(n=4)", Trivial_tasks.identity ~n:4 (), Kconc_tasks.echo (), true);
      ( "(3,5)-renaming(n=4)",
        Renaming.make ~n:4 ~j:3 ~l:5,
        Renaming_algos.fig4 (),
        true );
      ( "1-set-agreement(n=4)",
        Set_agreement.make ~n:4 ~k:1 (),
        Kconc_tasks.adoption (),
        false );
      ( "2-set-agreement(n=4)",
        Set_agreement.make ~n:4 ~k:2 (),
        Kconc_tasks.adoption (),
        false );
    ]
  in
  Fmt.pr "  %-24s %18s %10s@." "task" "trivial-FD solves" "expected";
  line ();
  List.iter
    (fun (name, task, algo, expected) ->
      let pass, _, total, _ =
        run_batch ~task ~algo ~fd:Fdlib.Fd.trivial
          ~env:(Failure.wait_free_env 4) ~n_seeds:25 ()
      in
      let crafted =
        (* adversarial lockstep on the most concurrent input *)
        Adversary.search
          ~policy:(Run.k_concurrent_uniform_policy task.Task.arity)
          ~task ~algo ~fd:Fdlib.Fd.trivial
          ~env:(Failure.crash_free 1)
          ~seeds:(seeds 40) ()
      in
      let solves = pass = total && crafted = None in
      Rec.row ~labels:[ ("task", name) ]
        [
          ("solves", jbool solves);
          ("expected", jbool expected);
          ("consistent", jbool (solves = expected));
        ];
      Fmt.pr "  %-24s %18b %10b%s@." name solves expected
        (if solves = expected then "" else "   <-- MISMATCH"))
    rows

(* ------------------------------------------------------------------ E3 *)

let e3 () =
  header "e3" "Section 2.2 - (Pi,n)-set agreement with the trivial detector";
  Fmt.pr "  %-14s %-10s %8s %12s@." "environment" "n_s" "pass" "mean-steps";
  line ();
  List.iter
    (fun (n_s, t) ->
      let task = Set_agreement.make ~n:4 ~k:n_s () in
      let batch =
        run_batch ~task
          ~algo:(Trivial_nsa.make ())
          ~fd:Fdlib.Fd.trivial
          ~env:(Failure.e_t ~n_s ~t)
          ~n_seeds:20 ()
      in
      Rec.row
        ~labels:[ ("env", Fmt.str "E_%d" t); ("n_s", string_of_int n_s) ]
        (batch_metrics batch);
      Fmt.pr "  E_%-12d %-10d %a@." t n_s pp_batch batch)
    [ (2, 1); (3, 2); (4, 3); (5, 4) ]

(* ------------------------------------------------------------------ E4 *)

let e4 () =
  header "e4"
    "Proposition 3 - classically solvable but not EFD-solvable (q1-else-q2)";
  let algo = Ksa.consensus () in
  let fd = Fdlib.Classic.q1_else_q2 () in
  let cases =
    [
      ("no crashes", Some (Failure.failure_free 3), [ 0; 1 ]);
      ("q1 crashed", Some (Failure.pattern ~n_s:3 [ (0, 0) ]), [ 1 ]);
      ("q2 crashed", Some (Failure.pattern ~n_s:3 [ (1, 0) ]), [ 0 ]);
      ("q1,q2 crashed (personified: vacuous)", None, []);
    ]
  in
  Fmt.pr "  %-40s %12s@." "personified case (participants = live U)" "decides";
  line ();
  List.iter
    (fun (name, pattern, u) ->
      match pattern with
      | None ->
        Rec.row ~labels:[ ("case", name) ] [ ("decides", Obs.Json.Null) ];
        Fmt.pr "  %-40s %12s@." name "vacuous"
      | Some pattern ->
        let task = Set_agreement.make ~u ~n:3 ~k:1 () in
        let rng = Random.State.make [| 5 |] in
        let input = Task.sample_input task rng in
        let r = Run.execute ~task ~algo ~fd ~pattern ~input ~seed:5 () in
        Rec.row ~labels:[ ("case", name) ] [ ("decides", jbool (Run.ok r)) ];
        Fmt.pr "  %-40s %12b@." name (Run.ok r))
    cases;
  Fmt.pr "@.  EFD run, q1 and q2 crashed, p1 and p2 must still decide:@.";
  let task = Set_agreement.make ~u:[ 0; 1 ] ~n:3 ~k:1 () in
  let pattern = Failure.pattern ~n_s:3 [ (0, 0); (1, 0) ] in
  let rng = Random.State.make [| 5 |] in
  let input = Task.sample_input task rng in
  let r = Run.execute ~budget:150_000 ~task ~algo ~fd ~pattern ~input ~seed:5 () in
  Rec.row
    ~labels:[ ("case", "efd q1,q2 crashed") ]
    [
      ("decided", jbool r.Run.r_outcome.Schedule.all_decided);
      ("wait_free", jbool r.Run.r_wait_free);
    ];
  Fmt.pr "  decided: %b, wait-free: %b  (the task is NOT EFD-solvable with D)@."
    r.Run.r_outcome.Schedule.all_decided r.Run.r_wait_free

(* ------------------------------------------------------------------ E5 *)

let e5 () =
  header "e5" "Proposition 6 - k-set agreement with vector-Omega-k (three solvers)";
  Fmt.pr "  %-6s %-4s %-22s %8s %12s@." "n" "k" "solver" "pass" "mean-steps";
  line ();
  List.iter
    (fun (n, k) ->
      List.iter
        (fun (solver_name, algo, budget) ->
          let task = Set_agreement.make ~n ~k () in
          let fd = Fdlib.Leader_fds.vector_omega_k ~max_stab:60 ~k () in
          let batch =
            run_batch ~budget ~task ~algo ~fd
              ~env:(Failure.e_t ~n_s:n ~t:(n - 1))
              ~n_seeds:8 ()
          in
          Rec.row
            ~labels:
              [
                ("n", string_of_int n);
                ("k", string_of_int k);
                ("solver", solver_name);
              ]
            (batch_metrics batch);
          Fmt.pr "  %-6d %-4d %-22s %a@." n k solver_name pp_batch batch)
        (("leader-consensus", Ksa.make ~k (), 400_000)
         :: ("machine-consensus", Machine_ksa.make ~k (), 2_000_000)
         ::
         (if k = 1 then [ ("paxos-alpha", Paxos_consensus.make (), 400_000) ]
          else [])))
    [ (3, 1); (3, 2); (4, 1); (4, 2); (4, 3); (5, 2); (6, 3) ]

(* ------------------------------------------------------------------ E6 *)

let e6 () =
  header "e6" "Theorem 7 - (U,k)-agreement on k+1 processes => (Pi,k)-agreement";
  Fmt.pr "  %-6s %-4s %-26s %8s %12s@." "n" "k" "participants" "pass" "mean-steps";
  line ();
  List.iter
    (fun (n, k, label, min_participants) ->
      let task = Set_agreement.make ~n ~k () in
      let algo = Puzzle.make ~k () in
      let fd = Puzzle.demo_fd ~k () in
      let results =
        List.map
          (fun seed ->
            let rng = Random.State.make [| seed; 0xe6 |] in
            let pattern =
              (Failure.e_t ~n_s:n ~t:(n - 1)).Failure.sample rng ~horizon:2_000
            in
            let input = Task.sample_prefix task rng ~min_participants in
            Run.execute ~budget:4_000_000 ~task ~algo ~fd ~pattern ~input ~seed ())
          (seeds 5)
      in
      let passed = List.filter Run.ok results in
      let failed = List.length results - List.length passed in
      let batch =
        (List.length passed, failed, List.length results,
         float_mean (fun r -> r.Run.r_steps) passed)
      in
      Rec.row
        ~labels:
          [
            ("n", string_of_int n);
            ("k", string_of_int k);
            ("participants", label);
          ]
        (batch_metrics batch);
      Fmt.pr "  %-6d %-4d %-26s %a@." n k label pp_batch batch)
    [
      (3, 1, "random", 1);
      (4, 2, "random", 1);
      (5, 2, "random", 1);
      (4, 2, "all (incl. U)", 4);
    ]

(* ------------------------------------------------------------------ E7 *)

let e7 () =
  header "e7" "Theorem 8 / Figure 1 - extracting anti-Omega-k";
  Fmt.pr "  %-8s %-28s %10s %14s@." "k" "pattern" "property" "witnesses";
  line ();
  List.iter
    (fun (n, k, pattern) ->
      let task = Set_agreement.make ~n ~k () in
      let algo = Ksa.make ~max_rounds:128 ~k () in
      let fd = Fdlib.Leader_fds.vector_omega_k_silent ~max_stab:25 ~k () in
      let rng = Random.State.make [| 17 |] in
      let inputs = Task.sample_input task rng in
      let result =
        Extraction.run ~outer_budget:15_000 ~sample_period:400
          ~explore_budget:2_500 ~max_samples:200 ~k ~fd ~algo ~inputs ~n_c:n
          ~pattern ~seed:17 ()
      in
      let ok =
        Fdlib.Props.anti_omega_k_ok pattern result.Extraction.x_outputs ~k
          ~suffix:4_000
      in
      let witnesses =
        Fdlib.Props.anti_omega_k_witnesses pattern result.Extraction.x_outputs
          ~suffix:4_000
      in
      Rec.row
        ~labels:
          [
            ("k", string_of_int k);
            ("pattern", Fmt.str "%a" Failure.pp_pattern pattern);
          ]
        [
          ("property", jbool ok);
          ("witnesses", jint (List.length witnesses));
        ];
      Fmt.pr "  %-8d %-28s %10b %14s@." k
        (Fmt.str "%a" Failure.pp_pattern pattern)
        ok
        (Fmt.str "%a"
           Fmt.(list ~sep:(any ",") (fun ppf q -> pf ppf "q%d" (q + 1)))
           witnesses))
    [
      (3, 1, Failure.failure_free 3);
      (3, 1, Failure.pattern ~n_s:3 [ (2, 300) ]);
      (4, 2, Failure.failure_free 4);
      (4, 2, Failure.pattern ~n_s:4 [ (3, 300) ]);
    ]

(* ------------------------------------------------------------------ E8 *)

let e8 () =
  header "e8"
    "Theorem 9 - the double simulation solves k-concurrent tasks with anti-Omega-k";
  Fmt.pr "  %-28s %-4s %8s %12s@." "task" "k" "pass" "mean-steps";
  line ();
  List.iter
    (fun (task, k, fi) ->
      let algo = Kconcurrent.make ~k ~fi () in
      let fd = Fdlib.Leader_fds.vector_omega_k ~max_stab:50 ~k () in
      let batch =
        run_batch ~budget:3_000_000 ~task ~algo ~fd
          ~env:(Failure.e_t ~n_s:task.Task.arity ~t:(task.Task.arity - 1))
          ~n_seeds:4 ()
      in
      Rec.row
        ~labels:[ ("task", task.Task.task_name); ("k", string_of_int k) ]
        (batch_metrics batch);
      Fmt.pr "  %-28s %-4d %a@." task.Task.task_name k pp_batch batch)
    [
      (Set_agreement.make ~n:3 ~k:1 (), 1, Bglib.Fi_algos.adoption);
      (Set_agreement.make ~n:3 ~k:2 (), 2, Bglib.Fi_algos.adoption);
      (Set_agreement.make ~n:4 ~k:2 (), 2, Bglib.Fi_algos.adoption);
      (Renaming.make ~n:4 ~j:3 ~l:4, 2, Bglib.Fi_algos.fig4_renaming);
      (Wsb.make ~n:4 ~j:3, 2, Bglib.Fi_algos.wsb ~j:3);
      (Trivial_tasks.identity ~n:3 (), 1, Bglib.Fi_algos.echo);
    ]

(* ------------------------------------------------------------------ E9 *)

let e9 () =
  header "e9" "Lemma 11 / Theorem 12 - strong renaming impossibility witnesses";
  let all = seeds 500 in
  List.iter
    (fun j ->
      let labels =
        [ ("kind", "strong-renaming"); ("j", string_of_int j) ]
      in
      match Adversary.strong_renaming_witness ~seeds:all ~n:5 ~j () with
      | Some w ->
        Rec.row ~labels
          [ ("found", jbool true); ("witness_seed", jint w.Adversary.w_seed) ];
        Fmt.pr "  strong %d-renaming, 2-concurrent: witness at seed %d (%s)@."
          j w.Adversary.w_seed w.Adversary.w_desc;
        Fmt.pr "    output %a@." Tasklib.Vectors.pp w.Adversary.w_report.Run.r_output
      | None ->
        Rec.row ~labels
          [ ("found", jbool false); ("witness_seed", Obs.Json.Null) ];
        Fmt.pr "  strong %d-renaming: NO witness found (unexpected)@." j)
    [ 2; 3 ];
  (match Adversary.consensus_reduction_witness ~seeds:all ~n:4 () with
  | Some w ->
    Rec.row
      ~labels:[ ("kind", "consensus-reduction") ]
      [ ("found", jbool true); ("witness_seed", jint w.Adversary.w_seed) ];
    Fmt.pr "  consensus-from-renaming reduction: witness at seed %d (%s)@."
      w.Adversary.w_seed w.Adversary.w_desc
  | None ->
    Rec.row
      ~labels:[ ("kind", "consensus-reduction") ]
      [ ("found", jbool false); ("witness_seed", Obs.Json.Null) ];
    Fmt.pr "  reduction: NO witness found (unexpected)@.");
  let s =
    Run.sweep
      ~policy:(Run.k_concurrent_policy 1)
      ~task:(Renaming.strong ~n:5 ~j:3)
      ~algo:(Renaming_algos.fig4 ())
      ~fd:Fdlib.Fd.trivial
      ~env:(Failure.crash_free 1)
      ~seeds:(seeds 20) ()
  in
  Rec.row
    ~labels:[ ("kind", "control-1-concurrent") ]
    [ ("pass", jint s.Run.passed); ("total", jint s.Run.total) ];
  Fmt.pr "  control: strong 3-renaming 1-concurrently: %d/%d ok@." s.Run.passed
    s.Run.total

(* ----------------------------------------------------------------- E10 *)

let e10 () =
  header "e10" "Theorem 15 - Figure 4 solves (j, j+k-1)-renaming k-concurrently";
  let n = 7 in
  let max_name ~j ~k =
    List.fold_left
      (fun acc seed ->
        let task = Renaming.make ~n ~j ~l:(j + k - 1) in
        let rng = Random.State.make [| seed |] in
        let input = Task.sample_input task rng in
        let r =
          Run.execute
            ~policy:(Run.k_concurrent_uniform_policy k)
            ~task
            ~algo:(Renaming_algos.fig4 ())
            ~fd:Fdlib.Fd.trivial
            ~pattern:(Failure.failure_free 1)
            ~input ~seed ()
        in
        if not (Run.ok r) then max_int
        else
          Array.fold_left
            (fun acc v ->
              match v with Some x -> max acc (Value.to_int x) | None -> acc)
            acc r.Run.r_output)
      0 (seeds 40)
  in
  Fmt.pr "  largest name over 40 runs (bound j+k-1); '!' = violation@.@.";
  Fmt.pr "   j\\k |    1    2    3    4@.  -----+---------------------@.";
  List.iter
    (fun j ->
      Fmt.pr "  %4d |" j;
      List.iter
        (fun k ->
          let labels = [ ("j", string_of_int j); ("k", string_of_int k) ] in
          if k > j then begin
            Rec.row ~labels
              [ ("max_name", Obs.Json.Null); ("violation", jbool false) ];
            Fmt.pr "    -"
          end
          else
            let m = max_name ~j ~k in
            Rec.row ~labels
              [
                ("max_name", if m = max_int then Obs.Json.Null else jint m);
                ("violation", jbool (m = max_int));
                ("bound", jint (j + k - 1));
              ];
            if m = max_int then Fmt.pr "    !" else Fmt.pr " %4d" m)
        [ 1; 2; 3; 4 ];
      Fmt.pr "@.")
    [ 2; 3; 4; 5 ]

(* ----------------------------------------------------------------- E11 *)

let e11 () =
  header "e11"
    "Figure 3 - 1-resilient (j, j+1)-renaming from the 2-concurrent algorithm";
  let n = 6 in
  Fmt.pr "  %-6s %-22s %8s@." "j" "mode" "pass";
  line ();
  List.iter
    (fun j ->
      List.iter
        (fun (mode, starve_one, after) ->
          let task = Renaming.make ~n ~j ~l:(j + 1) in
          let pass = ref 0 and total = ref 0 in
          List.iter
            (fun seed ->
              let rng0 = Random.State.make [| seed; j |] in
              let input = Task.sample_input task rng0 in
              let victim = List.hd (Tasklib.Vectors.participants input) in
              let policy ~participants ~n_c ~n_s ~rng =
                let base =
                  Schedule.shuffled_rounds
                    ~only:(participants @ Pid.all_s n_s)
                    ~n_c ~n_s rng
                in
                if not starve_one then base
                else
                  Schedule.seq base ~steps:after
                    (Schedule.starve [ Pid.c victim ] ~until:max_int base)
              in
              let r =
                Run.execute ~budget:200_000 ~policy ~task
                  ~algo:(Renaming_algos.fig3 ~j)
                  ~fd:Fdlib.Fd.trivial
                  ~pattern:(Failure.failure_free 1)
                  ~input ~seed ()
              in
              incr total;
              let live_ok =
                if not starve_one then Run.ok r
                else
                  r.Run.r_task_ok
                  && List.for_all
                       (fun i -> i = victim || r.Run.r_output.(i) <> None)
                       (Tasklib.Vectors.participants input)
              in
              if live_ok then incr pass)
            (seeds 10);
          Rec.row
            ~labels:[ ("j", string_of_int j); ("mode", mode) ]
            [ ("pass", jint !pass); ("total", jint !total) ];
          Fmt.pr "  %-6d %-22s %4d/%-3d@." j mode !pass !total)
        [ ("all live", false, 0); ("one starved @40", true, 40) ])
    [ 3; 4 ]

(* ----------------------------------------------------------------- E12 *)

let e12 () =
  header "e12" "Theorem 10 - the task hierarchy";
  let table = Classifier.table ~seeds_per_level:15 ~n:4 () in
  List.iter
    (fun m ->
      Rec.row
        ~labels:[ ("task", m.Classifier.m_task_name) ]
        [
          ( "expected",
            Obs.Json.Str
              (Fmt.str "%a" Registry.pp_expectation m.Classifier.m_expected) );
          ("weakest_fd", Obs.Json.Str m.Classifier.m_weakest_fd);
          ("passes_up_to", jint m.Classifier.m_passes_up_to);
          ( "breaks_at",
            match m.Classifier.m_breaks_at with
            | Some k -> jint k
            | None -> Obs.Json.Null );
          ("consistent", jbool (Classifier.consistent m));
        ])
    table;
  Fmt.pr "%a@.@." Classifier.pp_table table;
  Fmt.pr "  all rows consistent with the paper: %b@."
    (List.for_all Classifier.consistent table)

(* --------------------------------------------------- exhaustive checker *)

(* Replay-from-scratch baseline vs the incremental engine (with and without
   the state-fingerprint memo, and with domain sharding), side by side on
   E-series-style small configurations. The acceptance bar for the
   incremental engine is steps_executed >= 3x lower than the baseline at
   identical verdict and schedule count. *)
let checker () =
  header "checker" "exhaustive engines: replay baseline vs incremental";
  let mk_rt ~n_c ~n_s mem c_code =
    Runtime.create
      {
        Runtime.n_c;
        n_s;
        memory = mem;
        pattern = Failure.failure_free (max 1 n_s);
        history = History.trivial;
        record_trace = false;
      }
      ~c_code
      ~s_code:(fun _ () -> ())
  in
  (* the acceptance config: safe agreement, n_c=2, n_s=2, depth 8, every *)
  let sa_build () =
    let mem = Memory.create () in
    let sa = Bglib.Safe_agreement.create mem ~n:2 in
    let c_code i () =
      Bglib.Safe_agreement.propose sa ~me:i (Value.int (100 + i));
      let rec resolve () =
        match Bglib.Safe_agreement.try_resolve sa with
        | Some v -> Runtime.Op.decide v
        | None -> resolve ()
      in
      resolve ()
    in
    mk_rt ~n_c:2 ~n_s:2 mem c_code
  in
  let sa_prop rt =
    match (Runtime.decision rt 0, Runtime.decision rt 1) with
    | Some a, Some b ->
      Value.equal a b && (Value.to_int a = 100 || Value.to_int a = 101)
    | Some a, None | None, Some a ->
      let x = Value.to_int a in
      x = 100 || x = 101
    | None, None -> true
  in
  (* a register-race config with three C-processes *)
  let race_build () =
    let mem = Memory.create () in
    let r = Memory.alloc1 mem () in
    let c_code i () =
      Runtime.Op.write r (Value.int i);
      let v = Runtime.Op.read r in
      Runtime.Op.decide v
    in
    mk_rt ~n_c:3 ~n_s:1 mem c_code
  in
  let race_prop rt =
    List.for_all
      (fun i ->
        match Runtime.decision rt i with
        | None -> true
        | Some v -> Value.to_int v >= 0 && Value.to_int v < 3)
      [ 0; 1; 2 ]
  in
  let configs =
    [
      (* symmetry class: the two idle S-processes are interchangeable *)
      ( "safe-agreement n_c=2 n_s=2 d=8",
        sa_build, sa_prop,
        Pid.all ~n_c:2 ~n_s:2, 8, Exhaustive.Every, [ Pid.all_s 2 ] );
      (* the three C-processes write distinct values: no symmetry *)
      ( "register-race n_c=3 d=7",
        race_build, race_prop,
        Pid.all_c 3, 7, Exhaustive.Every, [] );
    ]
  in
  List.iter
    (fun (name, build, prop, pids, depth, mode, symmetry) ->
      Fmt.pr "  %s@." name;
      Fmt.pr "    %-26s %10s %9s %9s %7s %9s %7s %7s %8s@." "engine"
        "schedules" "nodes" "steps" "replays" "memo" "sleep" "orbits" "wall";
      line ();
      let show label (verdict, st) =
        let scheds =
          match verdict with
          | Exhaustive.Ok n -> string_of_int n
          | Exhaustive.Counterexample _ -> "CEX!"
        in
        Rec.row
          ~labels:[ ("config", name); ("engine", label) ]
          [
            ( "schedules",
              match verdict with
              | Exhaustive.Ok n -> jint n
              | Exhaustive.Counterexample _ -> Obs.Json.Null );
            ("counterexample",
             jbool (match verdict with Exhaustive.Counterexample _ -> true | _ -> false));
            ("nodes", jint st.Exhaustive.nodes);
            ("steps_executed", jint st.Exhaustive.steps_executed);
            ("replays", jint st.Exhaustive.replays);
            ("memo_hits", jint st.Exhaustive.memo_hits);
            ("sleep_pruned", jint st.Exhaustive.sleep_pruned);
            ("orbits_collapsed", jint st.Exhaustive.orbits_collapsed);
            ("wall_s", jfloat st.Exhaustive.wall_s);
          ];
        Fmt.pr "    %-26s %10s %9d %9d %7d %9d %7d %7d %7.3fs@." label scheds
          st.Exhaustive.nodes st.Exhaustive.steps_executed
          st.Exhaustive.replays st.Exhaustive.memo_hits
          st.Exhaustive.sleep_pruned st.Exhaustive.orbits_collapsed
          st.Exhaustive.wall_s;
        st
      in
      let base =
        show "replay baseline" (Exhaustive.run_replay ~mode ~build ~pids ~depth ~prop ())
      in
      let _ =
        show "incremental"
          (Exhaustive.run ~memo:false ~mode ~build ~pids ~depth ~prop ())
      in
      let inc =
        show "incremental+memo"
          (Exhaustive.run ~memo:true ~mode ~build ~pids ~depth ~prop ())
      in
      let _ =
        show "incremental+memo x4 domains"
          (Exhaustive.run ~domains:4 ~memo:true ~mode ~build ~pids ~depth ~prop ())
      in
      let reduce = { Exhaustive.sleep = true; symmetry } in
      let red =
        show "reduced (sleep+symmetry)"
          (Exhaustive.run ~reduce ~mode ~build ~pids ~depth ~prop ())
      in
      let _ =
        show "reduced x4 domains"
          (Exhaustive.run ~domains:4 ~reduce ~mode ~build ~pids ~depth ~prop ())
      in
      let ratio a b =
        float_of_int a.Exhaustive.steps_executed
        /. float_of_int (max 1 b.Exhaustive.steps_executed)
      in
      let vs_baseline = ratio base inc and vs_memo = ratio inc red in
      Rec.row
        ~labels:[ ("config", name); ("engine", "reduction") ]
        [
          ("step_reduction_vs_baseline", jfloat vs_baseline);
          ("step_reduction_vs_memo", jfloat vs_memo);
        ];
      Fmt.pr "    step reduction: incremental+memo x%.1f vs baseline, \
              reduced x%.1f vs memo@.@."
        vs_baseline vs_memo)
    configs

(* ------------------------------------------------------- fuzzer bench *)

(* Seeds/sec of the domain-parallel adversary fuzzer on the Lemma-11 /
   Theorem-12 searches, 1 vs 4 domains, in exhaust mode (no first-witness
   cancellation, so both runs execute exactly the same [trials] trials and
   the ratio is a pure throughput comparison). The speedup row is the
   headline: on a machine with >= 4 cores the sharding should yield >= 2x;
   the committed record also carries [meta.cores] so a 1-core container's
   ~1x is legible as hardware-bound, not a regression. The shrink rows
   demonstrate the delta-debugging minimizer on a fixed witness. *)
let fuzz_bench () =
  header "fuzz" "adversary fuzzer: domain-parallel seeds/sec + witness shrinking";
  Rec.meta "cores" (jint (Domain.recommended_domain_count ()));
  let trials = 5_000 in
  Fmt.pr "  %-24s %8s %8s %10s %12s@." "target" "domains" "found" "wall"
    "seeds/s";
  line ();
  let throughput target requested =
    (* never oversubscribe: domains beyond the hardware only add minor-GC
       synchronization stalls, which would make the 4-domain row measure
       scheduler thrash instead of sharding *)
    let domains =
      max 1 (min requested (Domain.recommended_domain_count ()))
    in
    let res =
      Adversary.fuzz_target ~domains ~exhaust:true ~seed:7 ~budget:trials
        target ()
    in
    let rate =
      float_of_int res.Adversary.f_trials /. Float.max 1e-9 res.Adversary.f_wall_s
    in
    Rec.row
      ~labels:
        [
          ("target", target.Adversary.t_name);
          ("domains", string_of_int requested);
        ]
      [
        ("domains_used", jint res.Adversary.f_domains);
        ("trials", jint res.Adversary.f_trials);
        ("witnesses", jint res.Adversary.f_witnesses);
        ("wall_s", jfloat res.Adversary.f_wall_s);
        ("seeds_per_s", jfloat rate);
      ];
    Fmt.pr "  %-24s %4d(%d) %8d %9.3fs %12.0f@." target.Adversary.t_name
      requested res.Adversary.f_domains res.Adversary.f_witnesses
      res.Adversary.f_wall_s rate;
    rate
  in
  List.iter
    (fun target ->
      let rate1 = throughput target 1 in
      let rate4 = throughput target 4 in
      let speedup = rate4 /. Float.max 1e-9 rate1 in
      Rec.row
        ~labels:[ ("target", target.Adversary.t_name); ("domains", "4v1") ]
        [ ("speedup_vs_1_domain", jfloat speedup) ];
      Fmt.pr "  %-24s %8s %8s %10s %11.2fx@." target.Adversary.t_name "4v1" ""
        "" speedup)
    [
      Adversary.strong_renaming_target ~n:5 ~j:3;
      Adversary.consensus_reduction_target ~n:4;
    ];
  Fmt.pr "@.  shrinking (strong-renaming, root seed 4):@.";
  let target = Adversary.strong_renaming_target ~n:5 ~j:3 in
  let res = Adversary.fuzz_target ~seed:4 ~budget:trials target () in
  match res.Adversary.f_witness with
  | None ->
    Rec.row ~labels:[ ("target", "shrink") ] [ ("found", jbool false) ];
    Fmt.pr "  no witness found (unexpected)@."
  | Some w ->
    let w', sh = Adversary.shrink_target target w in
    Rec.row
      ~labels:[ ("target", "shrink") ]
      [
        ("found", jbool true);
        ("shrink_steps", jint w'.Adversary.w_shrink_steps);
        ("attempts", jint sh.Adversary.sh_attempts);
        ("sched_before", jint (fst sh.Adversary.sh_sched));
        ("sched_after", jint (snd sh.Adversary.sh_sched));
        ("crashes_before", jint (fst sh.Adversary.sh_crashes));
        ("crashes_after", jint (snd sh.Adversary.sh_crashes));
        ("input_before", jint (fst sh.Adversary.sh_input));
        ("input_after", jint (snd sh.Adversary.sh_input));
      ];
    Fmt.pr "  %a@." Adversary.pp_shrink_report sh

(* ------------------------------------------------------- micro-benches *)

let micro () =
  header "micro" "Bechamel micro-benchmarks";
  let open Bechamel in
  (* setup (task construction, input sampling) happens outside the staged
     closures: the benchmark times the run, not the enumeration of input
     vectors *)
  let consensus_run n seed =
    let task = Set_agreement.make ~n ~k:1 () in
    let algo = Ksa.consensus () in
    let fd = Fdlib.Leader_fds.omega ~max_stab:40 () in
    let rng = Random.State.make [| seed |] in
    let input = Task.sample_input task rng in
    fun () ->
      ignore
        (Run.execute ~task ~algo ~fd
           ~pattern:(Failure.failure_free n)
           ~input ~seed ())
  in
  let ksa_run n k =
    let task = Set_agreement.make ~n ~k () in
    let algo = Ksa.make ~k () in
    let fd = Fdlib.Leader_fds.vector_omega_k ~max_stab:40 ~k () in
    let rng = Random.State.make [| 3 |] in
    let input = Task.sample_input task rng in
    fun () ->
      ignore
        (Run.execute ~task ~algo ~fd
           ~pattern:(Failure.failure_free n)
           ~input ~seed:3 ())
  in
  let renaming_run j k =
    let task = Renaming.make ~n:(j + 1) ~j ~l:(j + k - 1) in
    let rng = Random.State.make [| 3 |] in
    let input = Task.sample_input task rng in
    let algo = Renaming_algos.fig4 () in
    fun () ->
      ignore
        (Run.execute
           ~policy:(Run.k_concurrent_policy k)
           ~task ~algo ~fd:Fdlib.Fd.trivial
           ~pattern:(Failure.failure_free 1)
           ~input ~seed:3 ())
  in
  let snapshot_scan n () =
    (* the honest Afek-style snapshot construction, solo *)
    let mem = Memory.create () in
    let h = Snapshot.create mem ~n in
    let rt =
      Runtime.create
        {
          Runtime.n_c = 1;
          n_s = 1;
          memory = mem;
          pattern = Failure.failure_free 1;
          history = History.trivial;
          record_trace = false;
        }
        ~c_code:(fun _ () ->
          Snapshot.update h 0 (Value.int 1);
          ignore (Snapshot.scan h);
          Runtime.Op.decide Value.unit)
        ~s_code:(fun _ () -> ())
    in
    let _ = Schedule.run rt (Schedule.c_solo 0) ~budget:10_000 in
    Runtime.destroy rt
  in
  let extraction_explore () =
    let n = 3 and k = 1 in
    let task = Set_agreement.make ~n ~k () in
    let algo = Ksa.make ~max_rounds:128 ~k () in
    let fd = Fdlib.Leader_fds.vector_omega_k_silent ~max_stab:25 ~k () in
    let pattern = Failure.failure_free 3 in
    let history = Fdlib.Fd.draw fd pattern ~seed:3 in
    let dag = Fdlib.Dag.create ~n_s:3 in
    for t = 0 to 150 do
      ignore
        (Fdlib.Dag.add_sample dag ~q:(t mod 3)
           (History.get history ~q:(t mod 3) ~time:t))
    done;
    let rng = Random.State.make [| 3 |] in
    let inputs = Task.sample_input task rng in
    ignore
      (Extraction.simulate_branch ~algo ~inputs ~n_c:n ~n_s:3 ~k ~dag
         ~stall_on:None ~budget:4_000)
  in
  let tests =
    [
      Test.make ~name:"consensus-omega-n3" (Staged.stage (consensus_run 3 1));
      Test.make ~name:"consensus-omega-n5" (Staged.stage (consensus_run 5 1));
      Test.make ~name:"consensus-omega-n7" (Staged.stage (consensus_run 7 1));
      Test.make ~name:"consensus-omega-n10" (Staged.stage (consensus_run 10 1));
      Test.make ~name:"ksa-n4-k2" (Staged.stage (ksa_run 4 2));
      Test.make ~name:"ksa-n6-k3" (Staged.stage (ksa_run 6 3));
      Test.make ~name:"ksa-n8-k4" (Staged.stage (ksa_run 8 4));
      Test.make ~name:"renaming-j4-k2" (Staged.stage (renaming_run 4 2));
      Test.make ~name:"snapshot-scan-n8" (Staged.stage (snapshot_scan 8));
      Test.make ~name:"snapshot-scan-n32" (Staged.stage (snapshot_scan 32));
      Test.make ~name:"extraction-branch" (Staged.stage extraction_explore);
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let instance = Toolkit.Instance.monotonic_clock in
  Fmt.pr "  %-26s %16s@." "benchmark" "time/run";
  line ();
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            let pretty =
              if est > 1e6 then Fmt.str "%8.2f ms" (est /. 1e6)
              else if est > 1e3 then Fmt.str "%8.2f us" (est /. 1e3)
              else Fmt.str "%8.0f ns" est
            in
            Rec.row ~labels:[ ("benchmark", name) ] [ ("ns_per_run", jfloat est) ];
            Fmt.pr "  %-26s %16s@." name pretty
          | _ -> Fmt.pr "  %-26s %16s@." name "n/a")
        stats)
    tests

(* ----------------------------------------------------------- ablations *)

let ablations () =
  header "ablations" "design-choice ablations (DESIGN.md)";

  (* A1: extraction detector member — silent vs churny vector-Omega-k.
     The steered exploration is provably adequate for the silent member;
     for the churny one, pre-stabilization answer races could in principle
     decide every steered branch. Measured: at these parameters the stall
     branches stay undecided for the churny member too. *)
  Fmt.pr "  A1: extraction vs detector member (k=1, n=3, 4 seeds each)@.";
  List.iter
    (fun (label, fd) ->
      let okc = ref 0 in
      List.iter
        (fun seed ->
          let n = 3 and k = 1 in
          let pattern = Failure.failure_free 3 in
          let task = Set_agreement.make ~n ~k () in
          let algo = Ksa.make ~max_rounds:128 ~k () in
          let rng = Random.State.make [| seed |] in
          let inputs = Task.sample_input task rng in
          let result =
            Extraction.run ~outer_budget:12_000 ~sample_period:400
              ~explore_budget:2_500 ~max_samples:200 ~k ~fd ~algo ~inputs
              ~n_c:n ~pattern ~seed ()
          in
          if
            Fdlib.Props.anti_omega_k_ok pattern result.Extraction.x_outputs ~k
              ~suffix:3_000
          then incr okc)
        (seeds 4);
      Fmt.pr "      %-28s property holds in %d/4 runs@." label !okc)
    [
      ("silent vector-Omega-1", Fdlib.Leader_fds.vector_omega_k_silent ~max_stab:25 ~k:1 ());
      ("churny vector-Omega-1", Fdlib.Leader_fds.vector_omega_k ~max_stab:25 ~k:1 ());
    ];

  (* A2: witness search vs schedule mode. For j = 2 the violating conflict
     occurs even in lockstep; for j = 3 the violation needs a donor stalled
     mid-protocol — near-lockstep rounds cannot produce it at all. *)
  Fmt.pr "@.  A2: strong j-renaming witness rate vs schedule mode (200 seeds)@.";
  List.iter
    (fun j ->
      List.iter
        (fun (label, policy) ->
          let found = ref 0 in
          List.iter
            (fun seed ->
              match
                Adversary.search ~policy
                  ~task:(Renaming.strong ~n:5 ~j)
                  ~algo:(Renaming_algos.fig4 ())
                  ~fd:Fdlib.Fd.trivial
                  ~env:(Failure.crash_free 1)
                  ~seeds:[ seed ] ()
              with
              | Some _ -> incr found
              | None -> ())
            (seeds 200);
          Fmt.pr "      j=%d %-28s %d/200 seeds yield a witness@." j label !found)
        [
          ("rounds (near-lockstep)", Run.k_concurrent_policy 2);
          ("uniform (can stall)", Run.k_concurrent_uniform_policy 2);
        ])
    [ 2; 3 ];

  (* A3: snapshot primitive vs the honest Afek-style construction —
     steps for one update+scan by each of n processes, fair schedule. *)
  Fmt.pr "@.  A3: snapshot primitive vs honest construction (steps to finish)@.";
  List.iter
    (fun n ->
      let run_with honest =
        let mem = Memory.create () in
        let h = Snapshot.create mem ~n in
        let plain = Memory.alloc mem n in
        let c_code i () =
          if honest then begin
            Snapshot.update h i (Value.int i);
            ignore (Snapshot.scan h)
          end
          else begin
            Runtime.Op.write plain.(i) (Value.int i);
            ignore (Runtime.Op.snapshot plain)
          end;
          Runtime.Op.decide Value.unit
        in
        let rt =
          Runtime.create
            {
              Runtime.n_c = n;
              n_s = 1;
              memory = mem;
              pattern = Failure.failure_free 1;
              history = History.trivial;
              record_trace = false;
            }
            ~c_code
            ~s_code:(fun _ () -> ())
        in
        let rng = Random.State.make [| 5 |] in
        let o =
          Schedule.run rt (Schedule.shuffled_rounds ~n_c:n ~n_s:1 rng)
            ~budget:500_000
        in
        Runtime.destroy rt;
        o.Schedule.total_steps
      in
      Fmt.pr "      n=%-3d primitive %6d steps, honest %6d steps (x%.1f)@." n
        (run_with false) (run_with true)
        (float_of_int (run_with true) /. float_of_int (max 1 (run_with false))))
    [ 2; 4; 8 ];

  (* A5: resilience vs advice — Chandra-Toueg over message passing with
     <>S needs a majority of correct S-processes; the Omega solvers
     survive n-1 crashes. *)
  Fmt.pr "@.  A5: consensus resilience vs advice (n=5, 8 seeds)@.";
  List.iter
    (fun (label, algo, fd, t) ->
      let task = Set_agreement.make ~n:5 ~k:1 () in
      let batch =
        run_batch ~budget:600_000 ~task ~algo ~fd
          ~env:(Failure.e_t ~n_s:5 ~t)
          ~n_seeds:8 ()
      in
      Fmt.pr "      %-34s %a steps@." label pp_batch batch)
    [
      ( "CT <>S (majority, t=2)",
        Ct_consensus.make (),
        Fdlib.Classic.eventually_strong ~max_stab:50 (),
        2 );
      ( "Ksa Omega (wait-free, t=4)",
        Ksa.consensus (),
        Fdlib.Leader_fds.omega ~max_stab:50 (),
        4 );
      ( "Paxos Omega (wait-free, t=4)",
        Paxos_consensus.make (),
        Fdlib.Leader_fds.omega ~max_stab:50 (),
        4 );
    ];

  (* A4: the distributed Omega <= <>S emulation (the §2.2 reduction
     machinery exercised end to end) *)
  Fmt.pr "@.  A4: distributed reduction Omega <= <>S (property on suffix)@.";
  List.iter
    (fun (label, pattern) ->
      let result =
        Emulation.run ~budget:30_000
          ~fd:(Fdlib.Classic.eventually_strong ~max_stab:60 ())
          ~pattern ~seed:3 Emulation.omega_from_eventually_strong
      in
      Fmt.pr "      %-28s omega-property %b@." label
        (Fdlib.Props.omega_ok pattern result.Emulation.em_outputs ~suffix:4_000))
    [
      ("failure-free (n=4)", Failure.failure_free 4);
      ("q1 crashed at 0", Failure.pattern ~n_s:4 [ (0, 0) ]);
      ("two staggered crashes", Failure.pattern ~n_s:4 [ (1, 100); (3, 30) ]);
    ]

(* -------------------------------------------- obs instrumentation cost *)

(* The ?obs acceptance bar: with the hook disabled the instrumented runtime
   must step at the same rate as before the hook existed (one [option] match
   per step). Measured against a no-op hook as the noise yardstick: disabled
   throughput must be at least [floor] of no-op-hook throughput — a real
   regression in the disabled path would show up as disabled being *slower*
   than dispatching through a live hook, which no noise can explain. *)
let obs_overhead () =
  header "obs" "runtime ?obs hook: step throughput, disabled vs live hooks";
  let n_c = 4 in
  let steps = 300_000 in
  let build ?obs () =
    let mem = Memory.create () in
    let regs = Memory.alloc mem n_c in
    let c_code i () =
      let rec loop () =
        Runtime.Op.write regs.(i) (Value.int i);
        ignore (Runtime.Op.read regs.((i + 1) mod n_c));
        loop ()
      in
      loop ()
    in
    Runtime.create ?obs
      {
        Runtime.n_c;
        n_s = 1;
        memory = mem;
        pattern = Failure.failure_free 1;
        history = History.trivial;
        record_trace = false;
      }
      ~c_code
      ~s_code:(fun _ () -> ())
  in
  let throughput ?obs () =
    (* best-of-5: the max filters scheduler noise out of a rate comparison *)
    let best = ref 0. in
    for _ = 1 to 5 do
      let rt = build ?obs () in
      let sp = Obs.Span.start () in
      for t = 0 to steps - 1 do
        Runtime.step rt (Pid.c (t mod n_c))
      done;
      let s = Obs.Span.elapsed_s sp in
      Runtime.destroy rt;
      if s > 0. then begin
        let rate = float_of_int steps /. s in
        if rate > !best then best := rate
      end
    done;
    !best
  in
  let disabled = throughput () in
  let noop =
    throughput
      ~obs:
        {
          Runtime.on_sched = (fun _ ~time:_ -> ());
          on_event = (fun _ ~time:_ _ -> ());
        }
      ()
  in
  let reg = Obs.Metrics.registry () in
  let counters = throughput ~obs:(Runtime.obs_counters reg) () in
  let buf, _events = Obs.Sink.buffer () in
  let events = throughput ~obs:(Runtime.obs_events buf) () in
  let floor = 0.7 in
  let within_noise = disabled >= floor *. noop in
  let show label rate =
    Fmt.pr "  %-28s %10.2f Msteps/s (x%.2f vs disabled)@." label (rate /. 1e6)
      (rate /. disabled)
  in
  show "?obs disabled" disabled;
  show "no-op hook" noop;
  show "counters hook" counters;
  show "event-sink hook" events;
  Fmt.pr "  disabled >= %.1fx no-op hook (no measurable slowdown): %b%s@." floor
    within_noise
    (if within_noise then "" else "   <-- REGRESSION");
  Rec.meta "steps_per_trial" (jint steps);
  Rec.meta "within_noise" (jbool within_noise);
  List.iter
    (fun (variant, rate) ->
      Rec.row ~labels:[ ("variant", variant) ]
        [
          ("steps_per_s", jfloat rate);
          ("relative_to_disabled", jfloat (rate /. disabled));
        ])
    [
      ("disabled", disabled);
      ("noop-hook", noop);
      ("counters-hook", counters);
      ("event-sink-hook", events);
    ];
  assert within_noise

(* --------------------------------------------------------- serve bench *)

(* The job-server subsystem (lib/svc, DESIGN.md §5): solve req/s at 1 and 4
   workers, the bounded queue's saturation behaviour (reject-fast, so
   accepted requests keep a bounded wait), a zero-loss drain check, and the
   per-request allocation cost of the event paths under a null sink. *)

let serve_bench () =
  header "serve" "job server: req/s vs workers, saturation, drain, alloc";
  Rec.meta "cores" (jint (Domain.recommended_domain_count ()));
  let sock_n = ref 0 in
  let cfg ?(workers = 1) ?(queue = 64) () =
    incr sock_n;
    let socket_path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "wfa-bench-%d-%d.sock" (Unix.getpid ()) !sock_n)
    in
    {
      (Svc.Server.default_config ~listen:(Svc.Addr.Unix_path socket_path)) with
      Svc.Server.workers;
      queue_bound = queue;
    }
  in
  let sock c = Svc.Addr.to_string c.Svc.Server.listen in
  let solve_params =
    Obs.Json.Obj
      [
        ("task", Obs.Json.Str "consensus");
        ("n", Obs.Json.Int 3);
        ("fd", Obs.Json.Str "omega");
        ("seed", Obs.Json.Int 1);
      ]
  in
  (* [threads] synchronous clients, [per_thread] solve calls each; returns
     (ok, overloaded, other, max ok-latency, wall) *)
  let blast ~threads ~per_thread ~params path =
    let ok = Atomic.make 0
    and overloaded = Atomic.make 0
    and other = Atomic.make 0 in
    let lat_max = Array.make threads 0. in
    let sp = Obs.Span.start () in
    let run t () =
      let c = Svc.Client.connect path in
      for _ = 1 to per_thread do
        let q = Obs.Span.start () in
        match Svc.Client.call ~params c Svc.Protocol.Solve with
        | Ok _ ->
          let s = Obs.Span.elapsed_s q in
          if s > lat_max.(t) then lat_max.(t) <- s;
          Atomic.incr ok
        | Error (Svc.Client.Server (Svc.Protocol.Overloaded, _)) ->
          Atomic.incr overloaded
        | Error _ -> Atomic.incr other
      done;
      Svc.Client.close c
    in
    let ts = List.init threads (fun t -> Thread.create (run t) ()) in
    List.iter Thread.join ts;
    let wall = Obs.Span.elapsed_s sp in
    ( Atomic.get ok,
      Atomic.get overloaded,
      Atomic.get other,
      Array.fold_left Float.max 0. lat_max,
      wall )
  in
  Fmt.pr "  solve throughput (consensus n=3, 4 clients x 40 requests):@.";
  Fmt.pr "  %-10s %8s %8s %10s %12s@." "workers" "used" "ok" "wall" "req/s";
  line ();
  let throughput requested =
    (* same clamp as the fuzz bench: worker domains beyond the hardware
       measure scheduler thrash, not pool sharding *)
    let used = max 1 (min requested (Domain.recommended_domain_count ())) in
    let c = cfg ~workers:used ~queue:128 () in
    let t = Svc.Server.start c in
    let ok, over, other, _lat, wall =
      blast ~threads:4 ~per_thread:40 ~params:solve_params (sock c)
    in
    Svc.Server.shutdown t;
    Svc.Server.wait t;
    (* queue 128 >> 4 in flight: nothing may be rejected here *)
    assert (over = 0 && other = 0);
    let rate = float_of_int ok /. Float.max 1e-9 wall in
    Rec.row
      ~labels:[ ("verb", "solve"); ("workers", string_of_int requested) ]
      [
        ("workers_requested", jint requested);
        ("workers_used", jint used);
        ("ok", jint ok);
        ("wall_s", jfloat wall);
        ("req_per_s", jfloat rate);
      ];
    Fmt.pr "  %-10d %8d %8d %9.3fs %12.0f@." requested used ok wall rate;
    rate
  in
  let r1 = throughput 1 in
  let r4 = throughput 4 in
  let speedup = r4 /. Float.max 1e-9 r1 in
  Rec.row
    ~labels:[ ("verb", "solve"); ("workers", "4v1") ]
    [ ("speedup_vs_1_worker", jfloat speedup) ];
  Fmt.pr "  %-10s %8s %8s %10s %11.2fx@." "4v1" "" "" "" speedup;

  Fmt.pr "@.  saturation (1 worker, queue bound 2, 8 clients x 6 requests):@.";
  let c = cfg ~workers:1 ~queue:2 () in
  let t = Svc.Server.start c in
  let ok, over, other, lat, wall =
    blast ~threads:8 ~per_thread:6 ~params:solve_params (sock c)
  in
  Svc.Server.shutdown t;
  Svc.Server.wait t;
  Rec.row
    ~labels:[ ("verb", "solve"); ("scenario", "saturation") ]
    [
      ("queue_bound", jint 2);
      ("ok", jint ok);
      ("overloaded", jint over);
      ("other", jint other);
      ("max_ok_latency_s", jfloat lat);
      ("wall_s", jfloat wall);
    ];
  Fmt.pr "  ok %d, overloaded %d, other %d, max ok-latency %.4fs@." ok over
    other lat;
  (* the backpressure contract: beyond the high-watermark the queue rejects
     instead of buffering, so overload shows up as explicit [overloaded]
     errors while accepted requests wait at most (bound+1) job times *)
  assert (ok >= 1 && over >= 1 && ok + over + other = 48);

  Fmt.pr "@.  drain (shutdown with accepted jobs in flight):@.";
  let c = cfg ~workers:1 ~queue:8 () in
  let t = Svc.Server.start c in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Svc.Addr.sockaddr c.Svc.Server.listen);
  let jobs = 4 in
  for id = 1 to jobs do
    Svc.Frame.write fd
      (Obs.Json.to_string
         (Svc.Protocol.request_json
            (Svc.Protocol.request ~params:solve_params ~id Svc.Protocol.Solve)))
  done;
  let accepted () =
    match Svc.Server.stats_json t with
    | Obs.Json.Obj kvs -> (
      match List.assoc_opt "accepted" kvs with
      | Some (Obs.Json.Int n) -> n
      | _ -> 0)
    | _ -> 0
  in
  let t0 = Unix.gettimeofday () in
  while accepted () < jobs && Unix.gettimeofday () -. t0 < 10. do
    Unix.sleepf 0.002
  done;
  Svc.Server.shutdown t;
  let answered = ref 0 in
  (try
     for _ = 1 to jobs do
       match Svc.Frame.read fd with
       | Ok _ -> incr answered
       | Error _ -> raise Exit
     done
   with Exit | Unix.Unix_error _ -> ());
  Svc.Server.wait t;
  Unix.close fd;
  let lost = jobs - !answered in
  Rec.row
    ~labels:[ ("scenario", "drain") ]
    [ ("accepted", jint jobs); ("answered", jint !answered); ("lost", jint lost) ];
  Fmt.pr "  accepted %d, answered %d, lost %d@." jobs !answered lost;
  assert (lost = 0);

  Fmt.pr "@.  pipelined ping throughput, codec A/B (1 conn, window 256):@.";
  (* the shard answers pings inline, so a windowed client measures the
     whole I/O path — poll wakeup, incremental decode, write batching —
     with no worker in the loop. Both codecs run the exact same harness
     against the same server: one raw fd, the same id-1 ping frame
     pre-encoded once and repeated [window] times per batch, replies
     counted by byte length (every reply to an id-1 ping is
     byte-identical). The client does no per-request work, so the measured
     difference is the server-side codec cost — and a batch round-trip is
     the latency of a full window in flight. *)
  let c = cfg ~workers:1 () in
  let t = Svc.Server.start c in
  let addr = Svc.Addr.sockaddr c.Svc.Server.listen in
  let window = 256 and batches = 120 in
  let write_all fd b len =
    let off = ref 0 in
    while !off < len do
      match Unix.write fd b !off (len - !off) with
      | n -> off := !off + n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  let read_exactly fd scratch need =
    let got = ref 0 in
    while !got < need do
      match
        Unix.read fd scratch 0 (min (Bytes.length scratch) (need - !got))
      with
      | 0 -> failwith "server closed mid-batch"
      | n -> got := !got + n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  let ping_frame codec =
    Svc.Frame.encode
      (Svc.Protocol.Codec.encode_request codec
         (Svc.Protocol.request ~id:1 Svc.Protocol.Ping))
  in
  let pong_len codec =
    4
    + String.length
        (Svc.Protocol.Codec.encode_response codec
           (Svc.Protocol.ok ~id:1 (Obs.Json.Str "pong")))
  in
  let ping_batch codec =
    let frame = ping_frame codec in
    let flen = String.length frame in
    let batch = Bytes.create (window * flen) in
    for i = 0 to window - 1 do
      Bytes.blit_string frame 0 batch (i * flen) flen
    done;
    batch
  in
  let ping_codec codec =
    let name = Svc.Protocol.Codec.to_string codec in
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd addr;
    let batch = ping_batch codec in
    let reply_bytes = window * pong_len codec in
    let scratch = Bytes.create (max 65536 reply_bytes) in
    let round () =
      write_all fd batch (Bytes.length batch);
      read_exactly fd scratch reply_bytes
    in
    for _ = 1 to 10 do
      round ()
    done;
    let lats = Array.make batches 0. in
    let sp = Obs.Span.start () in
    for b = 0 to batches - 1 do
      let q = Obs.Span.start () in
      round ();
      lats.(b) <- Obs.Span.elapsed_s q
    done;
    let wall = Obs.Span.elapsed_s sp in
    Unix.close fd;
    let n = window * batches in
    let rate = float_of_int n /. Float.max 1e-9 wall in
    Array.sort compare lats;
    let pct q =
      lats.(min (batches - 1) (int_of_float (q *. float_of_int batches)))
    in
    let p50 = pct 0.5 and p99 = pct 0.99 in
    Rec.row
      ~labels:[ ("verb", "ping"); ("mode", "pipelined"); ("codec", name) ]
      [
        ("window", jint window);
        ("ok", jint n);
        ("wall_s", jfloat wall);
        ("req_per_s", jfloat rate);
        ("p50_latency_s", jfloat p50);
        ("p99_latency_s", jfloat p99);
      ];
    Fmt.pr
      "  %-8s ok %d, wall %.3fs, %.0f req/s, batch p50 %.0fus, p99 %.0fus@."
      name n wall rate (p50 *. 1e6) (p99 *. 1e6);
    rate
  in
  let rate_json = ping_codec Svc.Protocol.Codec.Json in
  let rate_bin = ping_codec Svc.Protocol.Codec.Binary in
  Svc.Server.shutdown t;
  Svc.Server.wait t;
  let ratio = rate_bin /. Float.max 1e-9 rate_json in
  Rec.row
    ~labels:
      [ ("verb", "ping"); ("mode", "pipelined"); ("codec", "binary_v_json") ]
    [ ("speedup_vs_json", jfloat ratio) ];
  Fmt.pr "  binary/json %28.1fx@." ratio;
  (* the seed gate (10x the thread-per-connection ~800 req/s) plus this
     PR's gate: the binary fast path must clear 10x the JSON codec at
     identical response payloads *)
  assert (rate_json >= 8000.);
  assert (ratio >= 10.);

  Fmt.pr "@.  open connections (poll scaling, 2 shards):@.";
  (* as many concurrent connections as the fd budget allows, aiming for
     10k: both endpoints live in this process, so each connection costs
     two descriptors against the soft limit *)
  let max_files =
    let parse_line line =
      if String.length line >= 14 && String.sub line 0 14 = "Max open files"
      then
        match
          String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
        with
        | "Max" :: "open" :: "files" :: soft :: _ -> int_of_string_opt soft
        | _ -> None
      else None
    in
    match open_in "/proc/self/limits" with
    | exception Sys_error _ -> 1024
    | ic ->
      let rec go () =
        match input_line ic with
        | exception End_of_file ->
          close_in ic;
          1024
        | line -> (
          match parse_line line with
          | Some n ->
            close_in ic;
            n
          | None -> go ())
      in
      go ()
  in
  let target = min 10_000 ((max_files - 64) / 2) in
  let c = cfg ~workers:1 () in
  let t = Svc.Server.start c in
  let addr = Svc.Addr.sockaddr c.Svc.Server.listen in
  let sp = Obs.Span.start () in
  let fds =
    Array.init target (fun _ ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (* a full backlog surfaces as EAGAIN/ECONNREFUSED on Linux while
           the accept thread catches up: retry, don't fail the row *)
        let rec conn tries =
          match Unix.connect fd addr with
          | () -> ()
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.ECONNREFUSED | Unix.EINTR), _, _)
            when tries < 200 ->
            Unix.sleepf 0.005;
            conn (tries + 1)
        in
        conn 0;
        fd)
  in
  let connect_wall = Obs.Span.elapsed_s sp in
  (* one ping on every connection proves each fd is live in a poll set;
     reading every reply before shutdown is the lost=0 drain check *)
  let sp = Obs.Span.start () in
  Array.iteri
    (fun i fd ->
      Svc.Frame.write fd
        (Obs.Json.to_string
           (Svc.Protocol.request_json (Svc.Protocol.request ~id:i Svc.Protocol.Ping))))
    fds;
  let answered = ref 0 in
  Array.iter
    (fun fd -> match Svc.Frame.read fd with Ok _ -> incr answered | Error _ -> ())
    fds;
  let ping_wall = Obs.Span.elapsed_s sp in
  Array.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) fds;
  Svc.Server.shutdown t;
  Svc.Server.wait t;
  let lost = target - !answered in
  Rec.row
    ~labels:[ ("scenario", "connections") ]
    [
      ("fd_soft_limit", jint max_files);
      ("connections", jint target);
      ("answered", jint !answered);
      ("lost", jint lost);
      ("connect_wall_s", jfloat connect_wall);
      ("ping_wall_s", jfloat ping_wall);
    ];
  Fmt.pr
    "  %d connections (fd limit %d): connect %.2fs, ping-all %.2fs, lost %d@."
    target max_files connect_wall ping_wall lost;
  assert (lost = 0);

  Fmt.pr "@.  per-request allocation, ping (inline domain-0 path):@.";
  let pings path n =
    let cl = Svc.Client.connect path in
    for _ = 1 to n do
      match Svc.Client.call cl Svc.Protocol.Ping with
      | Ok _ -> ()
      | Error e -> failwith (Svc.Client.error_string e)
    done;
    Svc.Client.close cl
  in
  (* client, conn thread and accept thread all run on domain 0, so the
     domain-local minor counter sees the whole request path; the idle
     worker domain contributes nothing *)
  let words_per_req ?sink () =
    let c = cfg ~workers:1 () in
    let t = Svc.Server.start ?sink c in
    pings (sock c) 50;
    let n = 400 in
    let w0 = Gc.minor_words () in
    pings (sock c) n;
    let w1 = Gc.minor_words () in
    Svc.Server.shutdown t;
    Svc.Server.wait t;
    (w1 -. w0) /. float_of_int n
  in
  let bare = words_per_req () in
  let null = words_per_req ~sink:(Obs.Sink.null ()) () in
  let delta = null -. bare in
  Fmt.pr "  no sink   %8.1f words/req@." bare;
  Fmt.pr "  null sink %8.1f words/req (delta %+.1f)@." null delta;
  Rec.row
    ~labels:[ ("verb", "ping"); ("sink", "none") ]
    [ ("minor_words_per_req", jfloat bare) ];
  Rec.row
    ~labels:[ ("verb", "ping"); ("sink", "null") ]
    [ ("minor_words_per_req", jfloat null) ];
  Rec.meta "alloc_delta_words_per_req" (jfloat delta);
  (* a sink may add at most a small constant per request (ping emits no
     events; conn open/close amortize over the run) — anything larger is a
     hotspot on the hot path *)
  assert (delta < 128.);

  Fmt.pr "@.  per-request allocation, binary ping (batched fast path):@.";
  (* the canonical binary ping hits the in-place fast path: no decode, no
     JSON tree, no response encode — the request's id bytes are blitted
     into the shard's preserialized pong and appended to the connection's
     reusable write buffer. Client, shards and the accept thread all
     allocate into domain 0's minor heap, so the counter bounds the whole
     path; batching amortizes the per-poll-iteration bookkeeping the same
     way a pipelining client does. *)
  let c = cfg ~workers:1 () in
  let t = Svc.Server.start ~sink:(Obs.Sink.null ()) c in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Svc.Addr.sockaddr c.Svc.Server.listen);
  let batch = ping_batch Svc.Protocol.Codec.Binary in
  let reply_bytes = window * pong_len Svc.Protocol.Codec.Binary in
  let scratch = Bytes.create (max 65536 reply_bytes) in
  let round () =
    write_all fd batch (Bytes.length batch);
    read_exactly fd scratch reply_bytes
  in
  for _ = 1 to 20 do
    round ()
  done;
  let rounds = 200 in
  let w0 = Gc.minor_words () in
  for _ = 1 to rounds do
    round ()
  done;
  let w1 = Gc.minor_words () in
  Unix.close fd;
  Svc.Server.shutdown t;
  Svc.Server.wait t;
  let per_req = (w1 -. w0) /. float_of_int (rounds * window) in
  Fmt.pr "  null sink %8.2f words/req@." per_req;
  Rec.row
    ~labels:[ ("verb", "ping"); ("codec", "binary"); ("sink", "null") ]
    [ ("minor_words_per_req", jfloat per_req) ];
  (* the allocation-free claim, as a number: the fast path itself allocates
     nothing, so what remains is shared bookkeeping amortized across the
     window — well under 16 minor words per request *)
  assert (per_req < 16.)

(* Distributed model checking (lib/dist, DESIGN.md §6): the deep-check
   config (safe-agreement, depth 10, n_s 2, --reduce) fanned out over
   in-process TCP worker fleets of 1/2/4 servers. Every fleet size must
   reproduce the single-process verdict and credited count exactly; the
   4v1 row carries the scaling claim. *)

let dist_bench () =
  header "dist" "distributed model check: subtree jobs/s vs fleet size";
  let cores = Domain.recommended_domain_count () in
  Rec.meta "cores" (jint cores);
  let depth = 10 and n_s = 2 in
  let expected = 1_048_576 (* 4^10: credited count is reduction-invariant *) in
  let sc =
    match Mcheck.Scenario.find "safe-agreement" ~n_s with
    | Stdlib.Ok sc -> sc
    | Stdlib.Error e -> failwith e
  in
  Fmt.pr "  safe-agreement, depth %d, n_s %d, reduce (split depth %d):@."
    depth n_s
    (Dist.Coordinator.default_split_depth ~depth);
  Fmt.pr "  %-10s %8s %8s %8s %10s %12s@." "workers" "used" "jobs" "redisp"
    "wall" "subtrees/s";
  line ();
  let fleet_run requested =
    (* the fuzz/serve clamp again: server pools beyond the hardware measure
       domain thrash, not distribution *)
    let used = max 1 (min requested cores) in
    let fleet =
      List.init used (fun _ ->
          Svc.Server.start
            {
              (Svc.Server.default_config
                 ~listen:(Svc.Addr.Tcp ("127.0.0.1", 0)))
              with
              Svc.Server.workers = 1;
              shards = 1;
            })
    in
    let workers =
      List.map (fun t -> Svc.Addr.to_string (Svc.Server.listen_addr t)) fleet
    in
    (* best-of-3: one coordinator run is ~64 pipelined RPCs, so a single
       descheduling blip distorts the rate *)
    let best = ref infinity and jobs = ref 0 and redisp = ref 0 in
    for _ = 1 to 3 do
      let sp = Obs.Span.start () in
      let rep =
        match
          Dist.Coordinator.run ~reduce:true ~scenario:sc ~depth ~workers ()
        with
        | Stdlib.Ok r -> r
        | Stdlib.Error e -> failwith e
      in
      let wall = Obs.Span.elapsed_s sp in
      (match rep.Dist.Coordinator.r_verdict with
      | Exhaustive.Ok n -> assert (n = expected)
      | Exhaustive.Counterexample _ -> assert false);
      jobs := rep.Dist.Coordinator.r_jobs;
      redisp := rep.Dist.Coordinator.r_redispatched;
      if wall < !best then best := wall
    done;
    List.iter Svc.Server.shutdown fleet;
    List.iter Svc.Server.wait fleet;
    let rate = float_of_int !jobs /. Float.max 1e-9 !best in
    Rec.row
      ~labels:[ ("scenario", "safe-agreement"); ("workers", string_of_int requested) ]
      [
        ("workers_used", jint used);
        ("depth", jint depth);
        ("jobs", jint !jobs);
        ("schedules", jint expected);
        ("redispatched", jint !redisp);
        ("wall_s", jfloat !best);
        ("subtrees_per_s", jfloat rate);
      ];
    Fmt.pr "  %-10d %8d %8d %8d %9.3fs %12.0f@." requested used !jobs !redisp
      !best rate;
    rate
  in
  let r1 = fleet_run 1 in
  let _r2 = fleet_run 2 in
  let r4 = fleet_run 4 in
  let speedup = r4 /. Float.max 1e-9 r1 in
  Rec.row
    ~labels:[ ("scenario", "safe-agreement"); ("workers", "4v1") ]
    [ ("speedup_vs_1_worker", jfloat speedup) ];
  Fmt.pr "  %-10s %8s %8s %8s %10s %11.2fx@." "4v1" "" "" "" "" speedup;
  (* the scaling gate holds only where 4 worker pools get 4 cores; on
     smaller hosts the clamped fleets share hardware and the row is
     informational *)
  if cores >= 4 then assert (speedup >= 2.5)

(* Checkpoint overhead and resume (lib/ckpt, DESIGN.md §8) on the depth-8
   CI anchor: the journaling engine vs the plain one — the <10% overhead
   claim as an assertion — plus a kill-at-half-way resume row showing the
   second half is all that gets re-run. *)

let ckpt_bench () =
  header "ckpt" "checkpoint: journaling overhead and resume, depth-8 anchor";
  let depth = 8 and n_s = 3 in
  let expected = 390_625 (* 5^8: credited count is reduction-invariant *) in
  let sc =
    match Mcheck.Scenario.find "safe-agreement" ~n_s with
    | Stdlib.Ok sc -> sc
    | Stdlib.Error e -> failwith e
  in
  let split_depth = Ckpt.Local.default_split_depth ~depth in
  let build = sc.Mcheck.Scenario.sc_build in
  let pids = sc.Mcheck.Scenario.sc_pids in
  let prop = sc.Mcheck.Scenario.sc_prop in
  let credited = function
    | Exhaustive.Ok n -> assert (n = expected)
    | Exhaustive.Counterexample _ -> assert false
  in
  let time f =
    let sp = Obs.Span.start () in
    f ();
    Obs.Span.elapsed_s sp
  in
  let best_of f =
    let best = ref infinity in
    for _ = 1 to 5 do
      let w = time f in
      if w < !best then best := w
    done;
    !best
  in
  let tmp_store () =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "wfa-bench-ckpt-%d-%d" (Unix.getpid ())
           (int_of_float (Unix.gettimeofday () *. 1e6) land 0xffffff))
    in
    match Ckpt.Store.create dir with
    | Stdlib.Ok s -> s
    | Stdlib.Error e -> failwith e
  in
  let rm_store store =
    let dir = Ckpt.Store.dir store in
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  Fmt.pr "  safe-agreement, depth %d, n_s %d, split depth %d:@." depth n_s
    split_depth;
  Fmt.pr "  %-28s %10s@." "engine" "wall";
  line ();
  (* context row: the monolithic DFS with its cross-tree memo — faster
     than any partitioned engine, but it cannot checkpoint (or fan out) *)
  let monolithic =
    best_of (fun () ->
        let verdict, _ = Exhaustive.run ~build ~pids ~depth ~prop () in
        credited verdict)
  in
  Fmt.pr "  %-28s %9.3fs@." "monolithic DFS (context)" monolithic;
  (* the no-checkpoint baseline: the SAME split engine the distributed
     coordinator runs, minus the journal — so the overhead row below
     isolates what the checkpoint subsystem itself costs *)
  let run_split_plain () =
    let fr = Exhaustive.split ~build ~pids ~depth ~split_depth ~prop () in
    let verdict, _ =
      List.fold_left
        (fun (v, st) sj ->
          let v', st' = Exhaustive.run_subtree ~build ~pids ~depth ~prop sj in
          (Exhaustive.merge_verdicts ~pids v v', Exhaustive.merge_stats st st'))
        (Exhaustive.Ok fr.Exhaustive.fr_pruned, fr.Exhaustive.fr_stats)
        fr.Exhaustive.fr_jobs
    in
    credited verdict
  in
  (* default interval: a sub-second depth-8 run journals the initial and
     final generations only — the steady-state cost of running under
     --checkpoint, not a fsync-per-second stress test. Store setup and
     teardown stay outside the timers (the row measures what journaling
     adds to a run), and reusing one store across reps also exercises
     steady-state generation pruning. The two engines are timed in
     interleaved pairs so load drift on the host cancels out of the
     overhead ratio instead of landing on one side. *)
  let store = tmp_store () in
  let run_checkpointed () =
    match Ckpt.Local.run ~store ~scenario:sc ~depth () with
    | Stdlib.Ok (verdict, _) -> credited verdict
    | Stdlib.Error e -> failwith e
  in
  let split_plain = ref infinity and checkpointed = ref infinity in
  for _ = 1 to 5 do
    let w = time run_split_plain in
    if w < !split_plain then split_plain := w;
    let w = time run_checkpointed in
    if w < !checkpointed then checkpointed := w
  done;
  rm_store store;
  let split_plain = !split_plain and checkpointed = !checkpointed in
  Fmt.pr "  %-28s %9.3fs@." "split engine, no journal" split_plain;
  let overhead = (checkpointed -. split_plain) /. Float.max 1e-9 split_plain in
  Fmt.pr "  %-28s %9.3fs  (%+.1f%% vs no-journal)@." "checkpointed"
    checkpointed (100. *. overhead);
  Rec.row
    ~labels:[ ("scenario", "safe-agreement"); ("engine", "monolithic") ]
    [ ("depth", jint depth); ("schedules", jint expected);
      ("wall_s", jfloat monolithic) ];
  Rec.row
    ~labels:[ ("scenario", "safe-agreement"); ("engine", "split-no-journal") ]
    [ ("depth", jint depth); ("schedules", jint expected);
      ("split_depth", jint split_depth); ("wall_s", jfloat split_plain);
      ("schedules_per_s", jfloat (float_of_int expected /. split_plain)) ];
  Rec.row
    ~labels:[ ("scenario", "safe-agreement"); ("engine", "checkpointed") ]
    [ ("depth", jint depth); ("schedules", jint expected);
      ("split_depth", jint split_depth); ("wall_s", jfloat checkpointed);
      ("schedules_per_s", jfloat (float_of_int expected /. checkpointed));
      ("overhead_vs_plain", jfloat overhead) ];
  (* kill at half the no-journal wall-clock, resume, and the two legs must
     reproduce the uninterrupted verdict and credited count *)
  let store = tmp_store () in
  let started = Obs.Clock.now_ns () in
  let cancel () = Obs.Clock.elapsed_s ~since:started > split_plain /. 2. in
  let first_leg = Obs.Span.start () in
  let killed =
    match Ckpt.Local.run ~cancel ~store ~scenario:sc ~depth () with
    | exception Exhaustive.Cancelled -> true
    | Stdlib.Ok (verdict, _) ->
      (* too fast to interrupt on this host: still a valid (degenerate)
         resume row — everything is already done *)
      credited verdict;
      false
    | Stdlib.Error e -> failwith e
  in
  let first_leg = Obs.Span.elapsed_s first_leg in
  let resume_leg = Obs.Span.start () in
  (match Ckpt.Local.resume ~store () with
  | Stdlib.Ok (_, verdict, _) -> credited verdict
  | Stdlib.Error e -> failwith e);
  let resume_leg = Obs.Span.elapsed_s resume_leg in
  rm_store store;
  Fmt.pr "  %-28s %9.3fs  (first leg %.3fs, killed: %b)@."
    "resume-half-way" resume_leg first_leg killed;
  Rec.row
    ~labels:[ ("scenario", "safe-agreement"); ("engine", "resume-half-way") ]
    [ ("depth", jint depth); ("schedules", jint expected);
      ("first_leg_wall_s", jfloat first_leg);
      ("resume_wall_s", jfloat resume_leg);
      ("killed_mid_run", Obs.Json.Bool killed) ];
  (* the tentpole's overhead gate: journaling a deep run costs < 10% *)
  assert (overhead < 0.10)

(* -------------------------------------------------------------- driver *)

let all : (string * (unit -> unit)) list =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("ablations", ablations); ("checker", checker);
    ("fuzz", fuzz_bench); ("micro", micro); ("obs", obs_overhead);
    ("serve", serve_bench); ("dist", dist_bench); ("ckpt", ckpt_bench);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if a = "--record" then begin
          recording := true;
          false
        end
        else true)
      args
  in
  let requested = match args with [] -> List.map fst all | ids -> ids in
  Fmt.pr "Wait-Freedom with Advice - experiment harness@.";
  List.iter
    (fun id ->
      match List.assoc_opt id all with
      | Some f ->
        f ();
        Rec.finish ()
      | None ->
        Fmt.epr "unknown experiment %S (known: %s)@." id
          (String.concat " " (List.map fst all)))
    requested
