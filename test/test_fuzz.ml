(* The domain-parallel fuzzer and the delta-debugging shrinker: splittable
   PRNG determinism, domain-count invariance of the winning witness,
   shrink soundness (verdict preserved, no axis grows), the committed
   shrunk witness (strictly smaller than its raw form), and the
   seed-dedupe fix in Adversary.search. *)

open Simkit
open Tasklib
open Efd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------------------------------------------------------- sprng *)

let test_sprng_stream_pure () =
  (* stream is a pure function of (root state, i): two identical roots
     give identical children, and a child is insensitive to its siblings *)
  let a = Sprng.make 42 and b = Sprng.make 42 in
  for i = 0 to 20 do
    let ca = Sprng.stream a i and cb = Sprng.stream b i in
    check_bool "same child draw" true
      (Sprng.next_int64 ca = Sprng.next_int64 cb)
  done;
  let lone = Sprng.stream (Sprng.make 42) 7 in
  let crowded =
    let r = Sprng.make 42 in
    List.iter (fun i -> ignore (Sprng.stream r i)) [ 0; 1; 2; 3 ];
    Sprng.stream r 7
  in
  check_bool "sibling derivations do not perturb a child" true
    (Sprng.next_int64 lone = Sprng.next_int64 crowded)

let test_sprng_streams_differ () =
  let root = Sprng.make 9 in
  let draws =
    List.init 64 (fun i -> Sprng.next_int64 (Sprng.stream root i))
  in
  let distinct = List.sort_uniq compare draws in
  check_int "64 streams, 64 first draws" 64 (List.length distinct)

let test_sprng_bounds () =
  let r = Sprng.make 3 in
  for _ = 1 to 1000 do
    let v = Sprng.next r in
    check_bool "next is non-negative" true (v >= 0);
    let b = Sprng.int r 17 in
    check_bool "int in bound" true (b >= 0 && b < 17)
  done;
  check_bool "split advances the parent deterministically" true
    (let p1 = Sprng.make 5 and p2 = Sprng.make 5 in
     ignore (Sprng.split p1);
     ignore (Sprng.split p2);
     Sprng.next_int64 p1 = Sprng.next_int64 p2)

(* ----------------------------------------------- domain-count invariance *)

let target () = Adversary.strong_renaming_target ~n:5 ~j:3

let test_fuzz_witness_domain_invariant () =
  (* root seed 4 finds a witness at trial 4 (the committed golden); the
     winning trial and its replay seed must not depend on the domain count *)
  let run domains =
    Adversary.fuzz_target ~domains ~seed:4 ~budget:200 (target ()) ()
  in
  let r1 = run 1 and r3 = run 3 in
  (match (r1.Adversary.f_witness, r3.Adversary.f_witness) with
  | Some w1, Some w3 ->
    check_bool "same replay seed" true (w1.Adversary.w_seed = w3.Adversary.w_seed);
    check_bool "same description" true (w1.Adversary.w_desc = w3.Adversary.w_desc)
  | _ -> Alcotest.fail "expected a witness at both domain counts");
  check_bool "same winning trial" true
    (r1.Adversary.f_trial = r3.Adversary.f_trial)

let test_fuzz_exhaust_domain_invariant () =
  (* exhaust mode: every trial runs; the violating-trial count is a pure
     function of (root seed, budget), whatever the parallelism *)
  let run domains =
    Adversary.fuzz_target ~domains ~exhaust:true ~seed:7 ~budget:150
      (target ()) ()
  in
  let r1 = run 1 and r4 = run 4 in
  check_int "all trials executed (1 domain)" 150 r1.Adversary.f_trials;
  check_int "all trials executed (4 domains)" 150 r4.Adversary.f_trials;
  check_int "same witness count" r1.Adversary.f_witnesses r4.Adversary.f_witnesses

let test_fuzz_exhaustion_domain_invariant () =
  (* a correct algorithm never yields a witness: both domain counts must
     report clean exhaustion of the full budget *)
  let t =
    {
      Adversary.t_name = "identity-echo";
      t_task = Trivial_tasks.identity ~n:4 ();
      t_algo = Kconc_tasks.echo ();
      t_fd = Fdlib.Fd.trivial;
      t_env = Failure.crash_free 1;
      t_policy = Run.fair_policy;
    }
  in
  let run domains = Adversary.fuzz_target ~domains ~seed:11 ~budget:40 t () in
  let r1 = run 1 and r2 = run 2 in
  check_bool "no witness (1 domain)" true (r1.Adversary.f_witness = None);
  check_bool "no witness (2 domains)" true (r2.Adversary.f_witness = None);
  check_int "budget exhausted (1 domain)" 40 r1.Adversary.f_trials;
  check_int "budget exhausted (2 domains)" 40 r2.Adversary.f_trials

(* ------------------------------------------------------------- shrinking *)

let shrink_sound =
  QCheck.Test.make ~name:"shrinking preserves the verdict, never grows an axis"
    ~count:8
    QCheck.(int_range 1 1_000)
    (fun root ->
      let t = target () in
      match
        (Adversary.fuzz_target ~seed:root ~budget:120 t ()).Adversary.f_witness
      with
      | None -> QCheck.assume_fail ()
      | Some w ->
        let w', sh = Adversary.shrink_target t w in
        let ( <=! ) (b, a) () = a <= b in
        w'.Adversary.w_desc = w.Adversary.w_desc
        && (sh.Adversary.sh_sched <=! ()) && (sh.Adversary.sh_crashes <=! ())
        && (sh.Adversary.sh_input <=! ())
        && w'.Adversary.w_shrink_steps = sh.Adversary.sh_steps
        && not (Run.ok w'.Adversary.w_report))

let read_json path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Obs.Json.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "%s: invalid JSON: %s" path e

let jpath json keys =
  List.fold_left
    (fun acc key ->
      match Option.bind acc (Obs.Json.member key) with
      | Some v -> Some v
      | None -> None)
    (Some json) keys
  |> Fun.flip Option.bind Obs.Json.to_int_opt
  |> function
  | Some v -> v
  | None -> Alcotest.failf "missing %s" (String.concat "." keys)

let test_committed_witness () =
  (* the committed artifact: the shrunk Lemma-11-chain witness must be
     strictly smaller than its raw form on the schedule AND crash axes, and
     regenerating from the recorded parameters must reproduce its sizes
     (regenerate with:
      wfa fuzz --kind strong-renaming -n 5 -j 3 --seed 4 --budget 2000
        --shrink --json test/golden/witness_lemma11.json) *)
  let j = read_json "golden/witness_lemma11.json" in
  let raw_sched = jpath j [ "fuzz"; "witness"; "schedule_steps" ] in
  let raw_crashes = jpath j [ "fuzz"; "witness"; "crashes" ] in
  let sh_sched = jpath j [ "shrunk"; "schedule_steps" ] in
  let sh_crashes = jpath j [ "shrunk"; "crashes" ] in
  check_bool "schedule strictly shrank" true (sh_sched < raw_sched);
  check_bool "crashes strictly shrank" true (sh_crashes < raw_crashes);
  let t = target () in
  match
    (Adversary.fuzz_target ~seed:4 ~budget:2_000 t ()).Adversary.f_witness
  with
  | None -> Alcotest.fail "root seed 4 no longer yields a witness"
  | Some w ->
    let w', _ = Adversary.shrink_target t w in
    check_int "raw schedule reproduces" raw_sched
      w.Adversary.w_report.Run.r_steps;
    check_int "raw crashes reproduce" raw_crashes
      (List.length (Failure.crashes w.Adversary.w_pattern));
    check_int "shrunk schedule reproduces" sh_sched
      w'.Adversary.w_report.Run.r_steps;
    check_int "shrunk crashes reproduce" sh_crashes
      (List.length (Failure.crashes w'.Adversary.w_pattern))

(* ---------------------------------------------------------- search dedupe *)

let test_search_dedupes_seeds () =
  (* regression: duplicate seeds used to re-run identical trials and
     inflate the reported attempt count *)
  let sink, drain = Obs.Sink.buffer () in
  let t = Trivial_tasks.identity ~n:4 () in
  let found =
    Adversary.search ~sink ~task:t ~algo:(Kconc_tasks.echo ())
      ~fd:Fdlib.Fd.trivial ~env:(Failure.crash_free 1)
      ~seeds:[ 5; 5; 5; 7; 7; 5 ] ()
  in
  check_bool "correct algorithm yields no witness" true (found = None);
  match drain () with
  | [ ev ] ->
    check_bool "exhausted event" true
      (ev.Obs.Event.name = Obs.Event.Name.adversary_exhausted);
    check_int "distinct seeds tried" 2
      (match List.assoc_opt "seeds_tried" ev.Obs.Event.fields with
      | Some (Obs.Json.Int n) -> n
      | _ -> -1)
  | evs -> Alcotest.failf "expected one event, got %d" (List.length evs)

let suite =
  [
    Alcotest.test_case "sprng: stream is pure in (root, i)" `Quick
      test_sprng_stream_pure;
    Alcotest.test_case "sprng: streams are pairwise distinct" `Quick
      test_sprng_streams_differ;
    Alcotest.test_case "sprng: bounds and split determinism" `Quick
      test_sprng_bounds;
    Alcotest.test_case "fuzz: witness invariant under domain count" `Quick
      test_fuzz_witness_domain_invariant;
    Alcotest.test_case "fuzz: exhaust counts invariant under domain count"
      `Quick test_fuzz_exhaust_domain_invariant;
    Alcotest.test_case "fuzz: clean exhaustion invariant under domain count"
      `Quick test_fuzz_exhaustion_domain_invariant;
    QCheck_alcotest.to_alcotest shrink_sound;
    Alcotest.test_case "shrink: committed witness strictly smaller" `Quick
      test_committed_witness;
    Alcotest.test_case "search: duplicate seeds deduped" `Quick
      test_search_dedupes_seeds;
  ]
