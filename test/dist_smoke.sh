#!/bin/sh
# CI smoke test for distributed model checking (DESIGN.md §6): boot two
# `wfa serve` workers on kernel-chosen TCP ports, run the depth-8
# safe-agreement check through the coordinator and diff the mirrored result
# fields against the single-process anchor (plain and --reduce), check the
# race-false counterexample is the identical lex-least schedule, then
# kill -9 one worker mid-run and check the re-dispatch path still completes
# the depth-12 search with the exact credited count.
set -eu

WFA=${WFA:-_build/default/bin/wfa.exe}
D="/tmp/wfa-dist-smoke-$$"
mkdir -p "$D"

cleanup() {
  kill "$W1" "$W2" 2>/dev/null || true
  rm -rf "$D"
}

"$WFA" serve --listen tcp:127.0.0.1:0 --workers 1 > "$D/w1.log" &
W1=$!
"$WFA" serve --listen tcp:127.0.0.1:0 --workers 1 > "$D/w2.log" &
W2=$!
trap cleanup EXIT

# wfa serve prints "listening on tcp:127.0.0.1:PORT" once bound; with port 0
# the kernel picks, so the printed line is the only way to learn the address
bound_addr() {
  i=0
  while ! grep -q 'listening on tcp:' "$1" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 100 ] || {
      echo "dist_smoke: worker never announced its address" >&2
      exit 1
    }
    sleep 0.1
  done
  sed -n 's/.*listening on \(tcp:[0-9.]*:[0-9]*\).*/\1/p' "$1" | head -n 1
}

A1=$(bound_addr "$D/w1.log")
A2=$(bound_addr "$D/w2.log")
FLEET="$A1,$A2"
echo "dist_smoke: workers at $A1 and $A2"

# the mirrored top-level result fields (2-space indent; the stats block
# repeats two of them at deeper indent, with run-dependent wall_s alongside)
fields() {
  grep -E '^  "(verdict|schedules|sleep_pruned|orbits_collapsed)"' "$1"
}

check_matches() { # $1 = scenario flags, $2 = tag
  # shellcheck disable=SC2086
  "$WFA" modelcheck $1 --json "$D/$2-local.json" > /dev/null
  # shellcheck disable=SC2086
  "$WFA" modelcheck $1 --workers "$FLEET" --json "$D/$2-dist.json" > /dev/null
  fields "$D/$2-local.json" > "$D/$2-local.fields"
  fields "$D/$2-dist.json" > "$D/$2-dist.fields"
  diff -u "$D/$2-local.fields" "$D/$2-dist.fields" || {
    echo "dist_smoke: $2: distributed result differs from local" >&2
    exit 1
  }
}

echo "dist_smoke: depth-8 safe-agreement, distributed == local"
check_matches "--depth 8 --n-s 2" plain
grep -q '"verdict": "ok"' "$D/plain-local.fields"
grep -q '"schedules": 65536' "$D/plain-local.fields"

echo "dist_smoke: same under --reduce (credited counts preserved)"
check_matches "--depth 8 --n-s 2 --reduce" reduce
grep -q '"schedules": 65536' "$D/reduce-local.fields"

echo "dist_smoke: race-false counterexample is the identical lex-least schedule"
# wfa modelcheck exits 1 on a violation; only grep's status escapes the pipe
LOCAL_CEX=$("$WFA" modelcheck --scenario race-false --depth 6 --n-s 2 \
  | grep VIOLATION)
DIST_CEX=$("$WFA" modelcheck --scenario race-false --depth 6 --n-s 2 \
  --workers "$FLEET" | grep VIOLATION)
echo "  local: $LOCAL_CEX"
echo "  dist:  $DIST_CEX"
[ -n "$LOCAL_CEX" ] && [ "$LOCAL_CEX" = "$DIST_CEX" ] || {
  echo "dist_smoke: counterexamples differ" >&2
  exit 1
}

echo "dist_smoke: kill -9 a worker mid-run; the survivor absorbs its jobs"
"$WFA" modelcheck --depth 12 --n-s 2 --workers "$FLEET" --split-depth 5 \
  --json "$D/kill.json" > "$D/kill.out" &
RUN=$!
sleep 0.5
kill -9 "$W2" 2>/dev/null || true
wait "$RUN" || {
  echo "dist_smoke: run did not survive the worker kill" >&2
  cat "$D/kill.out" >&2
  exit 1
}
grep -q '"verdict": "ok"' "$D/kill.json" || {
  echo "dist_smoke: kill run lost the verdict" >&2
  exit 1
}
grep -q '"schedules": 16777216' "$D/kill.json" || {
  echo "dist_smoke: kill run miscounted (want 4^12)" >&2
  cat "$D/kill.json" >&2
  exit 1
}
if grep -q '"workers_dead": 1' "$D/kill.json"; then
  echo "  re-dispatch path exercised (1 worker dead, count still exact)"
else
  # the search won the race against the kill: correct, but log it
  echo "  note: run finished before the kill landed"
fi

trap - EXIT
kill "$W1" 2>/dev/null || true
rm -rf "$D"
echo "dist_smoke: ok"
