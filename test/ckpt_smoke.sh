#!/bin/sh
# CI smoke test for durable checkpoint/resume (DESIGN.md §8): run the
# depth-10 safe-agreement check under --checkpoint, SIGKILL it mid-run —
# once as the single-process checkpointed engine, once as the distributed
# coordinator over a live 2-worker TCP fleet — then `wfa resume` each store
# and diff the mirrored --json result fields against an uninterrupted run.
# Interval 0 journals a generation after every subtree job, so the kill
# always lands on a store with recorded progress; the field diff proves the
# verdict, credited count and pruning counters are byte-identical to a run
# that was never interrupted.
set -eu

WFA=${WFA:-_build/default/bin/wfa.exe}
D="/tmp/wfa-ckpt-smoke-$$"
mkdir -p "$D"

W1=""
W2=""
cleanup() {
  [ -n "$W1" ] && kill "$W1" 2>/dev/null || true
  [ -n "$W2" ] && kill "$W2" 2>/dev/null || true
  rm -rf "$D"
}
trap cleanup EXIT

# the mirrored top-level result fields (2-space indent; wall_s and the
# checkpoint/dist sub-objects are run-dependent and excluded by design)
fields() {
  grep -E '^  "(verdict|schedules|sleep_pruned|orbits_collapsed)"' "$1"
}

echo "ckpt_smoke: uninterrupted depth-10 reference"
"$WFA" modelcheck --depth 10 --n-s 2 --json "$D/ref.json" > /dev/null
fields "$D/ref.json" > "$D/ref.fields"
grep -q '"schedules": 1048576' "$D/ref.fields" || {
  echo "ckpt_smoke: reference lost the 4^10 count" >&2
  exit 1
}

# Start a checkpointed run, kill -9 it once the store holds at least two
# generations (i.e. the initial snapshot plus recorded progress), resume,
# and require the resumed result to match the reference field-for-field.
# $1 = store dir, $2 = tag, $3... = extra modelcheck/resume flags
kill_and_resume() {
  STORE=$1
  TAG=$2
  shift 2
  # shellcheck disable=SC2086
  "$WFA" modelcheck --depth 10 --n-s 2 --split-depth 4 \
    --checkpoint "$STORE" --checkpoint-interval-s 0 "$@" \
    --json "$D/$TAG-never.json" > "$D/$TAG-run.out" 2>&1 &
  RUN=$!
  i=0
  while [ "$(ls "$STORE" 2>/dev/null | grep -c '^gen-')" -lt 2 ]; do
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
      echo "ckpt_smoke: $TAG: no progress generation to kill" >&2
      cat "$D/$TAG-run.out" >&2
      exit 1
    fi
    sleep 0.01
  done
  kill -9 "$RUN" 2>/dev/null || true
  wait "$RUN" 2>/dev/null || true
  if [ -f "$D/$TAG-never.json" ]; then
    # the search won the race against the kill: resume still has to
    # reproduce the result from the store, but log the weaker run
    echo "  note: $TAG finished before the kill landed"
  fi
  # shellcheck disable=SC2086
  "$WFA" resume "$STORE" "$@" --json "$D/$TAG-resumed.json" \
    | tee "$D/$TAG-resume.out"
  grep -q 'subtree jobs already done' "$D/$TAG-resume.out" || {
    echo "ckpt_smoke: $TAG: resume did not report journaled progress" >&2
    exit 1
  }
  fields "$D/$TAG-resumed.json" > "$D/$TAG-resumed.fields"
  diff -u "$D/ref.fields" "$D/$TAG-resumed.fields" || {
    echo "ckpt_smoke: $TAG: resumed result differs from uninterrupted" >&2
    exit 1
  }
}

echo "ckpt_smoke: single-process SIGKILL mid-run, resume == uninterrupted"
kill_and_resume "$D/local-store" local

echo "ckpt_smoke: booting a 2-worker fleet for the coordinator variant"
"$WFA" serve --listen tcp:127.0.0.1:0 --workers 1 > "$D/w1.log" &
W1=$!
"$WFA" serve --listen tcp:127.0.0.1:0 --workers 1 > "$D/w2.log" &
W2=$!

bound_addr() {
  i=0
  while ! grep -q 'listening on tcp:' "$1" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -le 100 ] || {
      echo "ckpt_smoke: worker never announced its address" >&2
      exit 1
    }
    sleep 0.1
  done
  sed -n 's/.*listening on \(tcp:[0-9.]*:[0-9]*\).*/\1/p' "$1" | head -n 1
}

A1=$(bound_addr "$D/w1.log")
A2=$(bound_addr "$D/w2.log")
echo "ckpt_smoke: workers at $A1 and $A2"

echo "ckpt_smoke: coordinator SIGKILL mid-run, resume on the same fleet"
kill_and_resume "$D/dist-store" dist --workers "$A1,$A2"

trap - EXIT
kill "$W1" "$W2" 2>/dev/null || true
rm -rf "$D"
echo "ckpt_smoke: ok"
