(* The obs library: metric semantics, JSON writer/parser, sinks, the
   bench-record schema (golden bytes + round-trip), and the live-vs-bridged
   equality of runtime event streams. *)

open Simkit
open Tasklib
open Efd

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------- metrics *)

let test_counter () =
  let reg = Obs.Metrics.registry () in
  let c = Obs.Metrics.counter reg "hits" in
  check_int "fresh counter" 0 (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:41 c;
  check_int "incremented" 42 (Obs.Metrics.counter_value c);
  (* same (name, labels) is the same counter; different labels are not *)
  let c' = Obs.Metrics.counter reg "hits" in
  check_int "same identity" 42 (Obs.Metrics.counter_value c');
  let d = Obs.Metrics.counter reg ~labels:[ ("task", "ksa") ] "hits" in
  check_int "distinct labels" 0 (Obs.Metrics.counter_value d);
  check_bool "negative increment rejected" true
    (try
       Obs.Metrics.incr ~by:(-1) c;
       false
     with Invalid_argument _ -> true);
  check_bool "name/type collision rejected" true
    (try
       ignore (Obs.Metrics.gauge reg "hits");
       false
     with Invalid_argument _ -> true)

let test_gauge () =
  let reg = Obs.Metrics.registry () in
  let g = Obs.Metrics.gauge reg "depth" in
  Obs.Metrics.set g 3.5;
  Obs.Metrics.set g 2.25;
  Alcotest.(check (float 0.)) "last write wins" 2.25 (Obs.Metrics.gauge_value g)

let test_histogram () =
  let reg = Obs.Metrics.registry () in
  let h = Obs.Metrics.histogram reg "lat" in
  check_bool "empty min is nan" true (Float.is_nan (Obs.Metrics.hist_min h));
  let lo, hi = Obs.Metrics.quantile_bounds h 0.5 in
  check_bool "empty bounds are nan" true (Float.is_nan lo && Float.is_nan hi);
  List.iter (Obs.Metrics.observe h) [ 1.0; 2.0; 4.0; 8.0; 0.0; -3.0 ];
  check_int "count" 6 (Obs.Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 12.0 (Obs.Metrics.hist_sum h);
  Alcotest.(check (float 0.)) "min" (-3.0) (Obs.Metrics.hist_min h);
  Alcotest.(check (float 0.)) "max" 8.0 (Obs.Metrics.hist_max h);
  (* extreme quantiles are exact: clipped to the observed min/max *)
  let lo, _ = Obs.Metrics.quantile_bounds h 0.0 in
  Alcotest.(check (float 0.)) "q0 lower" (-3.0) lo;
  let _, hi = Obs.Metrics.quantile_bounds h 1.0 in
  Alcotest.(check (float 0.)) "q1 upper" 8.0 hi;
  let p50lo, p50hi = Obs.Metrics.quantile_bounds h 0.5 in
  (* rank max 1 (ceil (0.5 * 6)) = 3 => sorted sample 1.0 *)
  check_bool "median bracketed" true (p50lo <= 1.0 && 1.0 <= p50hi);
  let est = Obs.Metrics.quantile h 0.5 in
  check_bool "point estimate inside bounds" true (p50lo <= est && est <= p50hi);
  check_bool "gamma <= 1 rejected" true
    (try
       ignore (Obs.Metrics.histogram reg ~gamma:1.0 "bad");
       false
     with Invalid_argument _ -> true)

(* the qcheck property behind quantile_bounds' contract: the returned
   interval brackets the exact rank-based quantile of the raw samples *)
let prop_quantile_bounds =
  QCheck.Test.make ~name:"quantile_bounds brackets the exact quantile"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 150) (float_range (-50.) 10_000.))
        (float_range 0. 1.))
    (fun (samples, q) ->
      let reg = Obs.Metrics.registry () in
      let h = Obs.Metrics.histogram reg "p" in
      List.iter (Obs.Metrics.observe h) samples;
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
      let exact = List.nth sorted (rank - 1) in
      let lo, hi = Obs.Metrics.quantile_bounds h q in
      let tol = 1e-9 *. (abs_float exact +. 1.) in
      lo -. tol <= exact && exact <= hi +. tol)

let test_metrics_json () =
  let reg = Obs.Metrics.registry () in
  Obs.Metrics.incr (Obs.Metrics.counter reg ~labels:[ ("k", "1") ] "runs");
  Obs.Metrics.set (Obs.Metrics.gauge reg "wall_s") 0.125;
  let h = Obs.Metrics.histogram reg "steps" in
  List.iter (Obs.Metrics.observe h) [ 10.; 20.; 30. ];
  let j = Obs.Metrics.to_json reg in
  (* the export is valid JSON and round-trips through the parser *)
  match Obs.Json.of_string (Obs.Json.to_string j) with
  | Error e -> Alcotest.failf "metrics json does not parse: %s" e
  | Ok j' -> check_bool "round-trip" true (Obs.Json.equal j j')

(* ---------------------------------------------------------------- json *)

let test_json_escaping () =
  check_string "control chars" {|"a\nb\tc\u0001"|}
    (Obs.Json.to_string (Obs.Json.Str "a\nb\tc\001"));
  check_string "quote and backslash" {|"\"\\"|}
    (Obs.Json.to_string (Obs.Json.Str "\"\\"));
  check_string "non-finite float is null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.nan));
  check_string "escape_string quotes and wraps" {|"say \"hi\""|}
    (Obs.Json.escape_string {|say "hi"|})

let test_json_roundtrip () =
  let j =
    Obs.Json.Obj
      [
        ("s", Obs.Json.Str "esc \"x\" \n \\ \001 end");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 3.140625);
        ("b", Obs.Json.Bool true);
        ("n", Obs.Json.Null);
        ("l", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Str ""; Obs.Json.Obj [] ]);
      ]
  in
  (match Obs.Json.of_string (Obs.Json.to_string j) with
  | Error e -> Alcotest.failf "compact does not parse: %s" e
  | Ok j' -> check_bool "compact round-trip" true (Obs.Json.equal j j'));
  (match Obs.Json.of_string (Obs.Json.to_string_pretty j) with
  | Error e -> Alcotest.failf "pretty does not parse: %s" e
  | Ok j' -> check_bool "pretty round-trip" true (Obs.Json.equal j j'));
  (* unicode escapes decode to UTF-8 *)
  (match Obs.Json.of_string {|"A\u00e9"|} with
  | Ok (Obs.Json.Str s) -> check_string "unicode escape" "A\xc3\xa9" s
  | _ -> Alcotest.fail "unicode escape did not parse");
  (* malformed inputs are errors, not exceptions *)
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed %S" s)
    [ "{"; "[1,]"; "\"unterminated"; "tru"; "1 2"; "{\"a\" 1}" ]

(* Untrusted-input guards: the parser the service layer aims at wire bytes
   must fail cleanly — never a stack overflow or escaping exception. *)
let test_json_untrusted_guards () =
  let err = function Error _ -> true | Ok _ -> false in
  (* a million open brackets would previously recurse a million deep *)
  let bombs =
    [
      String.make 1_000_000 '[';
      String.make 1_000_000 '{';
      String.concat "" (List.init 200_000 (fun _ -> "[{\"a\":"));
    ]
  in
  List.iter
    (fun s -> check_bool "nesting bomb is a clean error" true
        (err (Obs.Json.of_string s)))
    bombs;
  (* the limits are tunable per call site *)
  check_bool "depth 3 under limit 4" true
    (Obs.Json.of_string ~max_depth:4 "[[[1]]]" |> Result.is_ok);
  check_bool "depth 5 over limit 4" true
    (err (Obs.Json.of_string ~max_depth:4 "[[[[[1]]]]]"));
  check_bool "string over limit" true
    (err (Obs.Json.of_string ~max_string:8 "\"123456789abc\""));
  check_bool "string under limit" true
    (Obs.Json.of_string ~max_string:32 "\"short\"" |> Result.is_ok);
  check_bool "number literal over limit" true
    (err (Obs.Json.of_string ~max_number:8 (String.make 100 '1')));
  check_bool "number under limit" true
    (Obs.Json.of_string ~max_number:8 "1234567" |> Result.is_ok);
  (* guard errors carry a message, and legitimate deep-ish data still
     parses under the defaults *)
  (match Obs.Json.of_string ~max_depth:2 "[[[1]]]" with
  | Error msg -> check_bool "error mentions nesting" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected depth error");
  let nested depth =
    String.concat ""
      (List.concat
         [ List.init depth (fun _ -> "["); [ "0" ];
           List.init depth (fun _ -> "]") ])
  in
  check_bool "depth 100 parses under defaults" true
    (Obs.Json.of_string (nested 100) |> Result.is_ok)

(* --------------------------------------------------------------- sinks *)

let test_sinks () =
  let ev i = Obs.Event.make "tick" [ ("i", Obs.Json.Int i) ] in
  let sink, events = Obs.Sink.buffer () in
  Obs.Sink.emit sink (ev 1);
  Obs.Sink.emit sink (ev 2);
  check_int "count" 2 (Obs.Sink.count sink);
  check_bool "order preserved" true
    (List.for_all2 Obs.Event.equal [ ev 1; ev 2 ] (events ()));
  Obs.Sink.close sink;
  Obs.Sink.emit sink (ev 3);
  check_int "emit after close dropped" 2 (Obs.Sink.count sink);
  let path = Filename.temp_file "obs_test" ".jsonl" in
  let fs = Obs.Sink.file path in
  Obs.Sink.emit fs (ev 7);
  Obs.Sink.emit fs (Obs.Event.make "done" []);
  Obs.Sink.close fs;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  check_int "one line per event" 2 (List.length lines);
  List.iter
    (fun line ->
      match Obs.Json.of_string line with
      | Ok (Obs.Json.Obj (("ev", Obs.Json.Str _) :: _)) -> ()
      | _ -> Alcotest.failf "bad event line %S" line)
    lines

let test_span () =
  let sink, events = Obs.Sink.buffer () in
  let sp = Obs.Span.start ~name:"work" () in
  let s = Obs.Span.finish ~sink sp in
  check_bool "elapsed non-negative" true (s >= 0.);
  match events () with
  | [ e ] ->
    check_bool "span event shape" true
      (match Obs.Event.to_json e with
      | Obs.Json.Obj (("ev", Obs.Json.Str "span") :: _) -> true
      | _ -> false)
  | l -> Alcotest.failf "expected one span event, got %d" (List.length l)

(* -------------------------------------------------------- bench record *)

(* must stay in sync with the committed golden file: regenerate it with this
   exact construction if the schema version is ever bumped *)
let golden_record () =
  let r = Obs.Bench_record.create ~id:"golden" ~title:"golden fixture" () in
  Obs.Bench_record.meta r "seed" (Obs.Json.Int 42);
  Obs.Bench_record.meta r "note" (Obs.Json.Str "fixed fixture \"quoted\"\n");
  Obs.Bench_record.row r
    ~labels:[ ("task", "consensus"); ("k", "1") ]
    [ ("pass", Obs.Json.Int 12); ("mean_steps", Obs.Json.Float 314.25) ];
  Obs.Bench_record.row r
    ~labels:[ ("task", "renaming") ]
    [ ("violation", Obs.Json.Bool false); ("max_name", Obs.Json.Null) ];
  r

let test_bench_record_golden () =
  let got = Obs.Json.to_string_pretty (Obs.Bench_record.to_json (golden_record ())) in
  let path = "golden/bench_record_golden.json" in
  let ic = open_in_bin path in
  let want = really_input_string ic (in_channel_length ic) in
  close_in ic;
  check_string "golden bytes" want got

(* the comparison behind check_bench_json --baseline: pass and fail sides of
   the tolerance gate, on hand-built records *)
let test_baseline_regressions () =
  let record rate extra_row =
    let r = Obs.Bench_record.create ~id:"gate" () in
    Obs.Bench_record.row r
      ~labels:[ ("engine", "incremental"); ("config", "sa") ]
      [
        ("steps_per_s", Obs.Json.Float rate);
        ("nodes", Obs.Json.Int 9);  (* not a throughput metric: never gated *)
      ];
    if extra_row then
      Obs.Bench_record.row r
        ~labels:[ ("engine", "fresh-only") ]
        [ ("steps_per_s", Obs.Json.Float 1.) ];
    Obs.Bench_record.to_json r
  in
  let base = record 300. false in
  (* pass side: exactly at the floor (300 / 3 = 100) is not a regression *)
  let regs, compared =
    Obs.Bench_record.baseline_regressions ~fresh:(record 100. true) ~base ()
  in
  Alcotest.(check int) "one metric compared (unmatched row ignored)" 1
    compared;
  check_bool "at the floor passes" true (regs = []);
  (* fail side: just under the floor regresses, with the numbers reported *)
  (match
     Obs.Bench_record.baseline_regressions ~fresh:(record 99. false) ~base ()
   with
  | [ r ], 1 ->
    check_string "metric" "steps_per_s" r.Obs.Bench_record.reg_metric;
    check_bool "key carries the sorted labels" true
      (r.Obs.Bench_record.reg_key
      = [ ("config", "sa"); ("engine", "incremental") ]);
    check_bool "limit is base / tolerance" true
      (abs_float (r.Obs.Bench_record.reg_limit -. 100.) < 1e-9)
  | regs, n ->
    Alcotest.failf "expected exactly one regression, got %d (%d compared)"
      (List.length regs) n);
  (* the tolerance is a parameter: at 2.0 the same drop fails, a mild one
     passes *)
  (match
     Obs.Bench_record.baseline_regressions ~tolerance:2. ~fresh:(record 149. false)
       ~base ()
   with
  | [ _ ], 1 -> ()
  | _ -> Alcotest.fail "expected a regression at tolerance 2");
  let regs, _ =
    Obs.Bench_record.baseline_regressions ~tolerance:2. ~fresh:(record 151. false)
      ~base ()
  in
  check_bool "151 >= 300/2 passes at tolerance 2" true (regs = []);
  check_bool "tolerance < 1 rejected" true
    (match
       Obs.Bench_record.baseline_regressions ~tolerance:0.5 ~fresh:base ~base ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* latency metrics gate in the opposite direction: a rise beyond
   base * tolerance regresses, a drop never does *)
let test_baseline_latency_direction () =
  let record lat =
    let r = Obs.Bench_record.create ~id:"gate" () in
    Obs.Bench_record.row r
      ~labels:[ ("verb", "ping"); ("codec", "binary") ]
      [
        ("p99_latency_s", Obs.Json.Float lat);
        ("req_per_s", Obs.Json.Float 1000.);
      ];
    Obs.Bench_record.to_json r
  in
  let base = record 0.01 in
  (* pass side: exactly at the ceiling (0.01 * 3) is not a regression, and
     an improvement (lower latency) never is *)
  let regs, compared =
    Obs.Bench_record.baseline_regressions ~fresh:(record 0.03) ~base ()
  in
  Alcotest.(check int) "latency and throughput both compared" 2 compared;
  check_bool "at the ceiling passes" true (regs = []);
  let regs, _ =
    Obs.Bench_record.baseline_regressions ~fresh:(record 0.0001) ~base ()
  in
  check_bool "faster is never a latency regression" true (regs = []);
  (* fail side: above the ceiling regresses, with the ceiling reported *)
  match
    Obs.Bench_record.baseline_regressions ~fresh:(record 0.031) ~base ()
  with
  | [ r ], 2 ->
    check_string "metric" "p99_latency_s" r.Obs.Bench_record.reg_metric;
    check_bool "limit is base * tolerance" true
      (abs_float (r.Obs.Bench_record.reg_limit -. 0.03) < 1e-9)
  | regs, n ->
    Alcotest.failf "expected exactly one regression, got %d (%d compared)"
      (List.length regs) n

let test_bench_record_roundtrip () =
  let r = golden_record () in
  let j = Obs.Bench_record.to_json r in
  (match Obs.Json.of_string (Obs.Json.to_string_pretty j) with
  | Error e -> Alcotest.failf "bench record does not parse: %s" e
  | Ok j' ->
    check_bool "round-trip" true (Obs.Json.equal j j');
    check_bool "schema field" true
      (Obs.Json.member "schema" j' |> Option.map Obs.Json.to_string_opt
      = Some (Some Obs.Bench_record.schema_name));
    check_bool "version field" true
      (Obs.Json.member "version" j' |> Option.map Obs.Json.to_int_opt
      = Some (Some Obs.Bench_record.schema_version)));
  (* stable across runs: building the same record twice gives identical bytes *)
  let bytes () =
    Obs.Json.to_string_pretty (Obs.Bench_record.to_json (golden_record ()))
  in
  check_string "deterministic bytes" (bytes ()) (bytes ())

(* ------------------------------------------- runtime instrumentation *)

let small_run ?obs ~record_trace () =
  let task = Set_agreement.make ~n:3 ~k:1 () in
  let rng = Random.State.make [| 7 |] in
  let input = Task.sample_input task rng in
  Run.execute ?obs ~record_trace ~task ~algo:(Ksa.consensus ())
    ~fd:(Fdlib.Leader_fds.omega ~max_stab:40 ())
    ~pattern:(Failure.failure_free 3)
    ~input ~seed:7 ()

(* the tentpole wiring test: events emitted live through Runtime.obs_events
   equal the events bridged from the recorded trace of the same run *)
let test_live_vs_bridged () =
  let sink, events = Obs.Sink.buffer () in
  let r = small_run ~obs:(Runtime.obs_events sink) ~record_trace:true () in
  let live = events () in
  let bridged = Trace.to_events (Option.get r.Run.r_trace) in
  check_int "same length" (List.length bridged) (List.length live);
  check_bool "same events" true (List.for_all2 Obs.Event.equal bridged live);
  (* Trace.emit is the same bridge, streamed *)
  let sink2, events2 = Obs.Sink.buffer () in
  Trace.emit (Option.get r.Run.r_trace) sink2;
  check_bool "emit = to_events" true
    (List.for_all2 Obs.Event.equal bridged (events2 ()))

let test_runtime_counters () =
  let reg = Obs.Metrics.registry () in
  let r = small_run ~obs:(Runtime.obs_counters reg) ~record_trace:false () in
  check_bool "run ok" true (Run.ok r);
  let get name =
    let v = ref (-1) in
    Obs.Metrics.iter_counters reg (fun n _ c -> if n = name then v := c);
    !v
  in
  check_bool "scheds counted" true (get "runtime.scheds" > 0);
  check_bool "writes counted" true (get "runtime.writes" > 0);
  check_int "all three participants decide" 3 (get "runtime.decides")

let test_exhaustive_stats_export () =
  let build () =
    let mem = Memory.create () in
    let r = Memory.alloc1 mem () in
    Runtime.create
      {
        Runtime.n_c = 2;
        n_s = 1;
        memory = mem;
        pattern = Failure.failure_free 1;
        history = History.trivial;
        record_trace = false;
      }
      ~c_code:(fun i () ->
        Runtime.Op.write r (Value.int i);
        Runtime.Op.decide (Runtime.Op.read r))
      ~s_code:(fun _ () -> ())
  in
  let verdict, st =
    Exhaustive.run ~build
      ~pids:[ Pid.c 0; Pid.c 1 ]
      ~depth:4
      ~prop:(fun _ -> true)
      ()
  in
  check_bool "verdict ok" true (match verdict with Exhaustive.Ok _ -> true | _ -> false);
  check_bool "monotonic wall time" true (st.Exhaustive.wall_s >= 0.);
  (match Obs.Json.of_string (Obs.Json.to_string (Exhaustive.stats_json st)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "stats_json does not parse: %s" e);
  let reg = Obs.Metrics.registry () in
  Exhaustive.record_stats reg st;
  let nodes = ref 0 in
  Obs.Metrics.iter_counters reg (fun n _ c ->
      if n = "exhaustive.nodes" then nodes := c);
  check_int "nodes exported" st.Exhaustive.nodes !nodes

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick test_counter;
    Alcotest.test_case "gauge semantics" `Quick test_gauge;
    Alcotest.test_case "histogram semantics" `Quick test_histogram;
    QCheck_alcotest.to_alcotest prop_quantile_bounds;
    Alcotest.test_case "metrics json export" `Quick test_metrics_json;
    Alcotest.test_case "json escaping" `Quick test_json_escaping;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json untrusted-input guards" `Quick
      test_json_untrusted_guards;
    Alcotest.test_case "sinks" `Quick test_sinks;
    Alcotest.test_case "span" `Quick test_span;
    Alcotest.test_case "bench record golden bytes" `Quick test_bench_record_golden;
    Alcotest.test_case "bench record round-trip" `Quick test_bench_record_roundtrip;
    Alcotest.test_case "baseline tolerance gate (pass + fail)" `Quick
      test_baseline_regressions;
    Alcotest.test_case "baseline latency direction (pass + fail)" `Quick
      test_baseline_latency_direction;
    Alcotest.test_case "live vs bridged event streams" `Quick test_live_vs_bridged;
    Alcotest.test_case "runtime counters hook" `Quick test_runtime_counters;
    Alcotest.test_case "exhaustive stats export" `Quick test_exhaustive_stats_export;
  ]
