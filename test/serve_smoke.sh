#!/bin/sh
# CI smoke test for the job server (DESIGN.md §5): start `wfa serve` in the
# background, script `wfa call` against it, check that an oversized frame is
# rejected without desynchronizing the connection, that the binary codec
# produces field-for-field the same results as JSON, and that SIGTERM
# drains gracefully -- an in-flight call still gets its reply and the
# server exits 0 with the socket unlinked.
set -eu

WFA=${WFA:-_build/default/bin/wfa.exe}
SOCK="/tmp/wfa-smoke-$$.sock"
OUT="/tmp/wfa-smoke-$$.out"

cleanup() {
  kill "$SRV" 2>/dev/null || true
  rm -f "$SOCK" "$OUT" "$OUT.json" "$OUT.binary"
}

"$WFA" serve --socket "$SOCK" --workers 2 --shards 2 --max-frame 4096 &
SRV=$!
trap cleanup EXIT

i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "serve_smoke: socket never appeared" >&2; exit 1; }
  sleep 0.1
done

echo "serve_smoke: solve"
"$WFA" call --socket "$SOCK" solve \
  --params '{"task":"consensus","n":3,"fd":"omega"}'

echo "serve_smoke: modelcheck"
"$WFA" call --socket "$SOCK" modelcheck --params '{"depth":8}'

echo "serve_smoke: pipelined pings on one connection"
PIPE_OUT=$("$WFA" call --socket "$SOCK" ping --pipeline 64)
echo "$PIPE_OUT"
case "$PIPE_OUT" in
  *"ok 64, failed 0"*) ;;
  *) echo "serve_smoke: pipelined calls lost replies" >&2; exit 1 ;;
esac

echo "serve_smoke: oversized frame is rejected"
BIG=$(head -c 8192 /dev/zero | tr '\0' 'a')
if "$WFA" call --socket "$SOCK" ping --params "{\"pad\":\"$BIG\"}"; then
  echo "serve_smoke: oversized frame unexpectedly accepted" >&2
  exit 1
fi

# the connection-level reject must not have broken the server
echo "serve_smoke: server still answers after the reject"
"$WFA" call --socket "$SOCK" stats

# the codec differential: the same deterministic call over each codec must
# print the same JSON, field for field (wall_s is wall-clock, the one
# volatile field in these reports)
codec_diff() {
  echo "serve_smoke: codec differential: $1"
  "$WFA" call --socket "$SOCK" "$1" --params "$2" --codec json \
    | grep -v '"wall_s"' > "$OUT.json"
  "$WFA" call --socket "$SOCK" "$1" --params "$2" --codec binary \
    | grep -v '"wall_s"' > "$OUT.binary"
  if ! diff -u "$OUT.json" "$OUT.binary"; then
    echo "serve_smoke: codec outputs diverge for $1" >&2
    exit 1
  fi
  rm -f "$OUT.json" "$OUT.binary"
}
codec_diff ping '{}'
codec_diff modelcheck '{"depth":7}'
codec_diff solve '{"task":"consensus","n":3,"seed":7}'

echo "serve_smoke: SIGTERM drains the in-flight call"
"$WFA" call --socket "$SOCK" fuzz \
  --params '{"kind":"strong-renaming","n":5,"j":3,"budget":20000}' \
  > "$OUT" &
CALL=$!
sleep 0.3
kill -TERM "$SRV"
wait "$CALL" # the accepted in-flight call must still get its reply
wait "$SRV"  # and the server must drain and exit 0
[ -s "$OUT" ] || { echo "serve_smoke: in-flight reply missing" >&2; exit 1; }
[ ! -S "$SOCK" ] || { echo "serve_smoke: socket not unlinked" >&2; exit 1; }

trap - EXIT
rm -f "$OUT"
echo "serve_smoke: ok"
